package piggyback_test

import (
	"context"
	"net"
	"testing"

	"piggyback"
)

// TestPublicAPIEndToEnd drives the library exactly as a downstream user
// would: generate a workload, stand up an origin with volumes, front it
// with a caching proxy, browse through it, and evaluate with the
// simulator — all through the root package.
func TestPublicAPIEndToEnd(t *testing.T) {
	// Workload.
	log, site := piggyback.GenerateServerLog(piggyback.SiteConfig{
		Name: "api-test", Seed: 5, Pages: 30, Dirs: 4, MaxDepth: 2,
		MeanImagesPerPage: 2, Clients: 8, Requests: 800, Duration: 3600 * 6,
	})
	if len(log) != 800 {
		t.Fatalf("log length %d", len(log))
	}

	// Offline evaluation via the simulator.
	b := piggyback.NewProbBuilder(piggyback.ProbConfig{T: 300, Pt: 0.1})
	for _, rec := range log {
		b.Observe(rec)
	}
	vols := b.Build(0)
	res := piggyback.NewSimulator(piggyback.SimConfig{T: 300, Provider: vols}).Run(log)
	if res.Requests != len(log) {
		t.Fatalf("sim requests %d", res.Requests)
	}
	if res.FractionPredicted() <= 0 {
		t.Error("no predictions on a session workload")
	}

	// Live protocol.
	now := log[0].Time
	clock := func() int64 { return now }
	store := piggyback.NewStore()
	piggyback.LoadSite(store, site)
	origin := piggyback.NewOriginServer(store,
		piggyback.NewDirVolumes(piggyback.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10}), clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	osrv := &piggyback.WireServer{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	px := piggyback.NewProxy(piggyback.ProxyConfig{
		Delta:      600,
		Clock:      clock,
		Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
		BaseFilter: piggyback.Filter{MaxPiggy: 10},
	})
	defer px.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	psrv := &piggyback.WireServer{Handler: px}
	go psrv.Serve(pl)
	defer psrv.Close()

	client := piggyback.NewWireClient()
	defer client.Close()
	for i := 0; i < 100; i++ {
		now = log[i].Time
		req := piggyback.NewWireRequest("GET", "http://www.api.test"+log[i].URL)
		resp, err := client.DoContext(context.Background(), pl.Addr().String(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 200 {
			t.Fatalf("request %d: status %d for %s", i, resp.Status, log[i].URL)
		}
	}
	st := px.Stats()
	if st.ClientRequests != 100 {
		t.Errorf("ClientRequests = %d", st.ClientRequests)
	}
	if st.PiggybacksReceived == 0 {
		t.Error("no piggybacks over the live protocol")
	}
	if px.CacheHitRate() <= 0 {
		t.Error("no cache hits")
	}
}

// TestPublicAPIFilterAndMessage covers the protocol value types exposed at
// the root.
func TestPublicAPIFilterAndMessage(t *testing.T) {
	f, err := piggyback.ParseFilter(`maxpiggy=10; rpv="3,4"`)
	if err != nil || f.MaxPiggy != 10 {
		t.Fatalf("ParseFilter: %+v, %v", f, err)
	}
	m, err := piggyback.ParseMessage("17; /a/b.html 866268400 4096")
	if err != nil || m.Volume != 17 || len(m.Elements) != 1 {
		t.Fatalf("ParseMessage: %+v, %v", m, err)
	}
	rec, err := piggyback.ParseCLF(piggyback.FormatCLF(piggyback.TraceRecord{
		Time: 899637753, Client: "p1", Method: "GET", URL: "/x", Status: 200, Size: 10,
	}))
	if err != nil || rec.URL != "/x" {
		t.Fatalf("CLF roundtrip: %+v, %v", rec, err)
	}
}

// TestPublicAPICachePolicies covers the exported cache surface.
func TestPublicAPICachePolicies(t *testing.T) {
	for _, p := range []piggyback.CachePolicy{
		piggyback.LRU{}, piggyback.LFU{}, &piggyback.GDSize{}, piggyback.PiggybackLRU{},
	} {
		c := piggyback.NewCache(1000, p)
		c.Put(piggyback.CacheEntry{URL: "/x", Size: 100, Expires: 300}, 1)
		if _, ok := c.Get("/x", 2); !ok {
			t.Errorf("%s: miss after put", p.Name())
		}
	}
}
