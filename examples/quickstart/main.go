// Quickstart: the complete piggybacking exchange of §2 over loopback TCP.
//
// A cooperating origin server holds a small site and maintains 1-level
// directory volumes. A caching proxy forwards client requests, attaching a
// Piggy-Filter header with its RPV list; the server answers with the
// resource plus a P-Volume trailer, which the proxy uses to refresh its
// cache. The example prints the actual protocol artifacts: the filter
// header the proxy would send, the piggyback message the server returned,
// and the cache effects.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"piggyback"
)

func main() {
	now := time.Date(1998, 7, 5, 12, 0, 0, 0, time.UTC).Unix()
	clock := func() int64 { return now }

	// --- Origin server: a small site with two directories. ---
	store := piggyback.NewStore()
	for _, r := range []piggyback.Resource{
		{URL: "/news/index.html", Size: 4096, LastModified: now - 7200},
		{URL: "/news/logo.gif", Size: 1024, LastModified: now - 86400},
		{URL: "/news/story1.html", Size: 8192, LastModified: now - 3600},
		{URL: "/papers/volumes.ps", Size: 230000, LastModified: now - 999999},
	} {
		store.Put(r)
	}
	vols := piggyback.NewDirVolumes(piggyback.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	origin := piggyback.NewOriginServer(store, vols, clock)

	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	osrv := &piggyback.WireServer{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()
	fmt.Println("origin server on", ol.Addr())

	// --- Caching proxy. ---
	px := piggyback.NewProxy(piggyback.ProxyConfig{
		Delta:      600, // freshness interval Δ
		Clock:      clock,
		Resolve:    func(host string) (string, error) { return ol.Addr().String(), nil },
		BaseFilter: piggyback.Filter{MaxPiggy: 10},
	})
	defer px.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	psrv := &piggyback.WireServer{Handler: px}
	go psrv.Serve(pl)
	defer psrv.Close()
	fmt.Println("caching proxy on", pl.Addr())

	// --- A client browsing through the proxy. ---
	client := piggyback.NewWireClient()
	defer client.Close()
	get := func(url string) {
		req := piggyback.NewWireRequest("GET", "http://"+url)
		resp, err := client.DoContext(context.Background(), pl.Addr().String(), req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %-34s -> %d, %5d bytes, X-Cache=%s\n",
			url, resp.Status, len(resp.Body), resp.Header.Get("X-Cache"))
	}

	fmt.Println("\n-- first visit: misses populate cache and volumes --")
	get("www.example.com/news/index.html")
	now += 2
	get("www.example.com/news/logo.gif")
	now += 3
	get("www.example.com/news/story1.html")

	// Show the raw exchange a cooperating proxy performs (§2.3): filter
	// on the request, P-Volume in the response trailer.
	fmt.Println("\n-- the raw piggyback exchange (direct to origin) --")
	req := piggyback.NewWireRequest("GET", "/news/index.html")
	filter := piggyback.Filter{MaxPiggy: 10}
	piggyback.SetFilter(req, filter)
	fmt.Printf("request:  GET /news/index.html\n")
	fmt.Printf("          TE: chunked\n")
	fmt.Printf("          Piggy-Filter: %s\n", filter.Header())
	direct := piggyback.NewWireClient()
	defer direct.Close()
	resp, err := direct.DoContext(context.Background(), ol.Addr().String(), req)
	if err != nil {
		log.Fatal(err)
	}
	if m, ok := piggyback.ExtractPiggyback(resp); ok {
		fmt.Printf("response: %d with trailer\n", resp.Status)
		fmt.Printf("          P-Volume: %s\n", m.Encode())
		fmt.Printf("          (%d elements, %d wire bytes)\n", len(m.Elements), m.WireBytes())
	} else {
		fmt.Println("response carried no piggyback")
	}

	fmt.Println("\n-- second visit 10 minutes later: entries are stale, but the piggyback")
	fmt.Println("   on the first request refreshes the rest of the volume --")
	now += 600
	get("www.example.com/news/index.html")  // validates; piggyback refreshes siblings
	get("www.example.com/news/logo.gif")    // fresh again without contacting origin
	get("www.example.com/news/story1.html") // fresh again without contacting origin

	st := px.Stats()
	fmt.Printf("\nproxy: %d client requests, %d fresh hits, %d validations, %d piggybacks, %d refreshes\n",
		st.ClientRequests, st.FreshHits, st.Validations, st.PiggybacksReceived, st.Refreshes)
	fmt.Printf("origin saw %d requests\n", origin.Stats().Requests)
}
