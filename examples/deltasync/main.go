// Deltasync: delta-encoded validations (§4, ref [23]).
//
// A large page changes frequently at the origin. A plain proxy re-fetches
// the whole body on every change; a delta-aware proxy sends
// "A-IM: blockdiff" with its If-Modified-Since and receives a 226 response
// carrying only the changed blocks, reconstructing the new version from
// its cached copy. The example counts the body bytes each proxy pulls over
// the wire for the same client activity.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"piggyback"
)

const pageSize = 64 << 10 // a hefty 64 kB page

func main() {
	now := time.Date(1998, 7, 5, 10, 0, 0, 0, time.UTC).Unix()
	clock := func() int64 { return now }

	store := piggyback.NewStore()
	store.Put(piggyback.Resource{URL: "/reports/daily.html", Size: pageSize, LastModified: now - 50})
	origin := piggyback.NewOriginServer(store, nil, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	osrv := &piggyback.WireServer{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	newProxy := func(delta bool) (*piggyback.Proxy, string) {
		px := piggyback.NewProxy(piggyback.ProxyConfig{
			Delta:         300,
			Clock:         clock,
			Resolve:       func(string) (string, error) { return ol.Addr().String(), nil },
			DeltaEncoding: delta,
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &piggyback.WireServer{Handler: px}
		go srv.Serve(l)
		return px, l.Addr().String()
	}
	plain, plainAddr := newProxy(false)
	smart, smartAddr := newProxy(true)
	defer plain.Close()
	defer smart.Close()

	client := piggyback.NewWireClient()
	defer client.Close()
	get := func(addr string) int {
		resp, err := client.DoContext(context.Background(), addr, piggyback.NewWireRequest("GET", "http://reports.example/reports/daily.html"))
		if err != nil {
			log.Fatal(err)
		}
		if resp.Status != 200 || len(resp.Body) != pageSize {
			log.Fatalf("bad response: %d, %d bytes", resp.Status, len(resp.Body))
		}
		return len(resp.Body)
	}

	fmt.Printf("a %d kB report page changes every ~6 minutes; clients re-read it after each change\n\n", pageSize/1024)
	for round := 0; round < 10; round++ {
		get(plainAddr)
		get(smartAddr)
		now += 360 // past Δ
		store.Modify("/reports/daily.html", now, 0)
		now += 10
	}

	ps, ss := plain.Stats(), smart.Stats()
	os := origin.Stats()
	fmt.Printf("%-14s %-12s %s\n", "proxy", "validations", "delta updates (body bytes saved)")
	fmt.Printf("%-14s %-12d -\n", "plain", ps.Validations)
	fmt.Printf("%-14s %-12d %d (%d)\n", "delta-aware", ss.Validations, ss.DeltaUpdates, ss.DeltaBytesSaved)
	fmt.Printf("\norigin sent %d delta responses, saving %d body bytes on the wire\n",
		os.DeltasSent, os.DeltaBytesSaved)
	if ss.DeltaBytesSaved > 0 {
		pct := 100 * float64(ss.DeltaBytesSaved) / float64(int64(ss.DeltaUpdates)*pageSize)
		fmt.Printf("the delta-aware proxy transferred %.1f%% fewer body bytes per update\n", pct)
	}
}
