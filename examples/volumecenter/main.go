// Volumecenter: transparent piggybacking for servers that know nothing
// about the protocol (§1, §5).
//
// A plain static origin serves two sites. A transparent volume center sits
// on the path between the proxy and the origin: it strips the piggybacking
// headers before forwarding (the origin never sees them), observes the
// relayed traffic to build volumes keyed by host-qualified URL, and
// injects P-Volume trailers into responses for the proxy. The caching
// proxy works unchanged — it cannot tell the center from a cooperating
// server.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"piggyback"
)

func main() {
	now := time.Date(1998, 7, 5, 18, 0, 0, 0, time.UTC).Unix()
	clock := func() int64 { return now }

	// --- A plain origin hosting two sites, no volume engine at all. ---
	stores := map[string]*piggyback.Store{
		"www.alpha.example": piggyback.NewStore(),
		"www.beta.example":  piggyback.NewStore(),
	}
	stores["www.alpha.example"].Put(piggyback.Resource{URL: "/docs/guide.html", Size: 5000, LastModified: now - 5000})
	stores["www.alpha.example"].Put(piggyback.Resource{URL: "/docs/figure.gif", Size: 2500, LastModified: now - 5000})
	stores["www.beta.example"].Put(piggyback.Resource{URL: "/docs/other.html", Size: 1000, LastModified: now - 9999})

	plain := piggyback.WireHandlerFunc(func(ctx context.Context, req *piggyback.WireRequest) *piggyback.WireResponse {
		if req.Header.Has("Piggy-Filter") {
			log.Fatal("piggyback header reached the plain origin — the center must strip it")
		}
		st, ok := stores[req.Header.Get("Host")]
		if !ok {
			return nil
		}
		return piggyback.NewOriginServer(st, nil, clock).ServeWire(ctx, req)
	})
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	osrv := &piggyback.WireServer{Handler: plain}
	go osrv.Serve(ol)
	defer osrv.Close()
	fmt.Println("plain origin (two sites) on", ol.Addr())

	// --- Transparent volume center on the path. ---
	ctr := piggyback.NewVolumeCenter(piggyback.CenterConfig{
		Resolve: func(host string) (string, error) { return ol.Addr().String(), nil },
		Clock:   clock,
	})
	defer ctr.Close()
	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	csrv := &piggyback.WireServer{Handler: ctr}
	go csrv.Serve(cl)
	defer csrv.Close()
	fmt.Println("transparent volume center on", cl.Addr())

	// --- Caching proxy pointed at the center. ---
	px := piggyback.NewProxy(piggyback.ProxyConfig{
		Delta:      600,
		Clock:      clock,
		Resolve:    func(host string) (string, error) { return cl.Addr().String(), nil },
		BaseFilter: piggyback.Filter{MaxPiggy: 10},
	})
	defer px.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	psrv := &piggyback.WireServer{Handler: px}
	go psrv.Serve(pl)
	defer psrv.Close()

	client := piggyback.NewWireClient()
	defer client.Close()
	get := func(url string) {
		resp, err := client.DoContext(context.Background(), pl.Addr().String(), piggyback.NewWireRequest("GET", "http://"+url))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %-36s -> %d X-Cache=%s\n", url, resp.Status, resp.Header.Get("X-Cache"))
	}

	fmt.Println("\n-- browse both sites; the center observes and builds volumes --")
	get("www.alpha.example/docs/guide.html")
	now += 2
	get("www.alpha.example/docs/figure.gif")
	now += 2
	get("www.beta.example/docs/other.html")

	fmt.Println("\n-- 10 minutes later: one request to alpha refreshes its sibling --")
	now += 600
	get("www.alpha.example/docs/guide.html")
	get("www.alpha.example/docs/figure.gif") // refreshed by the piggyback

	ps := px.Stats()
	cs := ctr.Stats()
	fmt.Printf("\nproxy: %d piggybacks received, %d refreshes, %d fresh hits\n",
		ps.PiggybacksReceived, ps.Refreshes, ps.FreshHits)
	fmt.Printf("center: %d relayed, %d piggybacks injected on the origin's behalf\n",
		cs.Relayed, cs.PiggybacksSent)
}
