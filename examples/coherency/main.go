// Coherency: piggyback cache coherency versus plain TTL expiration (§4).
//
// A business-news page changes at the origin every few minutes. A plain
// TTL proxy keeps serving the stale copy until Δ expires; a piggybacking
// proxy learns about the change from the P-Volume trailer on an unrelated
// request in the same volume and invalidates the stale copy immediately.
// The example replays the same client activity against both proxies and
// counts stale responses.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"piggyback"
)

const delta = 900 // freshness interval Δ in seconds

func main() {
	now := time.Date(1998, 7, 5, 9, 0, 0, 0, time.UTC).Unix()
	clock := func() int64 { return now }

	store := piggyback.NewStore()
	store.Put(piggyback.Resource{URL: "/market/quotes.html", Size: 2000, LastModified: now - 60})
	store.Put(piggyback.Resource{URL: "/market/index.html", Size: 3000, LastModified: now - 7200})
	vols := piggyback.NewDirVolumes(piggyback.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	origin := piggyback.NewOriginServer(store, vols, clock)

	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	osrv := &piggyback.WireServer{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	newProxy := func(filter piggyback.Filter) (*piggyback.Proxy, string) {
		px := piggyback.NewProxy(piggyback.ProxyConfig{
			Delta:      delta,
			RPVTimeout: 60, // §2.2: smaller than Δ improves freshness
			Clock:      clock,
			Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
			BaseFilter: filter,
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &piggyback.WireServer{Handler: px}
		go srv.Serve(l)
		return px, l.Addr().String()
	}
	// The plain proxy disables piggybacking entirely; the piggybacking
	// proxy asks for up to 10 elements.
	plain, plainAddr := newProxy(piggyback.Filter{Disabled: true})
	piggy, piggyAddr := newProxy(piggyback.Filter{MaxPiggy: 10})
	defer plain.Close()
	defer piggy.Close()

	client := piggyback.NewWireClient()
	defer client.Close()

	// lastModAt answers "what version should a fresh response carry now".
	get := func(addr, url string) (stale bool) {
		req := piggyback.NewWireRequest("GET", "http://www.biz.example"+url)
		resp, err := client.DoContext(context.Background(), addr, req)
		if err != nil {
			log.Fatal(err)
		}
		current, _ := store.Get(url)
		lm, _ := resp.LastModified()
		return lm < current.LastModified
	}

	staleCount := map[string]int{}
	serves := 0
	for round := 0; round < 12; round++ {
		// Both proxies cache both pages...
		for _, url := range []string{"/market/index.html", "/market/quotes.html"} {
			if get(plainAddr, url) {
				staleCount["plain-ttl"]++
			}
			if get(piggyAddr, url) {
				staleCount["piggyback"]++
			}
			serves++
		}
		// ...the quotes page changes well inside Δ...
		now += 180
		store.Modify("/market/quotes.html", now, 0)

		// ...and a fresh story is published in the same volume. Reading
		// it forces an upstream request, whose response piggybacks the
		// new Last-Modified of quotes.html.
		now += 30
		story := fmt.Sprintf("/market/story-%02d.html", round)
		store.Put(piggyback.Resource{URL: story, Size: 1500, LastModified: now})
		get(plainAddr, story)
		get(piggyAddr, story)
		serves++

		// The next read of quotes.html inside Δ:
		now += 30
		if get(plainAddr, "/market/quotes.html") {
			staleCount["plain-ttl"]++
		}
		if get(piggyAddr, "/market/quotes.html") {
			staleCount["piggyback"]++
		}
		serves++
		now += 120
	}

	fmt.Printf("replayed %d client reads while the quotes page changed every ~6 min (Δ=%ds)\n\n", serves*2, delta)
	fmt.Printf("%-12s %s\n", "proxy", "stale responses served")
	fmt.Printf("%-12s %d\n", "plain-ttl", staleCount["plain-ttl"])
	fmt.Printf("%-12s %d\n", "piggyback", staleCount["piggyback"])

	ps := piggy.Stats()
	fmt.Printf("\npiggybacking proxy: %d piggybacks received, %d invalidations, %d refreshes\n",
		ps.PiggybacksReceived, ps.Invalidations, ps.Refreshes)
	if staleCount["piggyback"] < staleCount["plain-ttl"] {
		fmt.Println("piggyback coherency served fewer stale responses, without shrinking Δ")
	}
}
