// Prefetch: piggyback-guided prefetching and informed fetching (§4).
//
// Two proxies front different client populations on one origin. The
// server's volumes aggregate access patterns across both, so when proxy
// B's clients start browsing a section that only proxy A's clients have
// visited, B's first response piggybacks the section's hot resources —
// and B prefetches them, smallest first (informed fetching), before its
// clients ask.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"piggyback"
)

func main() {
	now := time.Date(1998, 7, 5, 15, 0, 0, 0, time.UTC).Unix()
	clock := func() int64 { return now }

	// Origin: a "software" section with a page and its downloads.
	store := piggyback.NewStore()
	section := []piggyback.Resource{
		{URL: "/software/index.html", Size: 3000, LastModified: now - 86400},
		{URL: "/software/shot1.gif", Size: 18000, LastModified: now - 86400},
		{URL: "/software/shot2.gif", Size: 22000, LastModified: now - 86400},
		{URL: "/software/readme.txt", Size: 900, LastModified: now - 86400},
		{URL: "/software/pkg.tar", Size: 150000, LastModified: now - 86400},
	}
	for _, r := range section {
		store.Put(r)
	}
	vols := piggyback.NewDirVolumes(piggyback.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	origin := piggyback.NewOriginServer(store, vols, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	osrv := &piggyback.WireServer{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	newProxy := func() (*piggyback.Proxy, string) {
		px := piggyback.NewProxy(piggyback.ProxyConfig{
			Delta:      900,
			Clock:      clock,
			Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
			BaseFilter: piggyback.Filter{MaxPiggy: 10},
			Prefetch:   true,
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &piggyback.WireServer{Handler: px}
		go srv.Serve(l)
		return px, l.Addr().String()
	}
	proxyA, addrA := newProxy()
	proxyB, addrB := newProxy()
	defer proxyA.Close()
	defer proxyB.Close()

	client := piggyback.NewWireClient()
	defer client.Close()
	get := func(addr, url string) string {
		resp, err := client.DoContext(context.Background(), addr, piggyback.NewWireRequest("GET", "http://www.sw.example"+url))
		if err != nil {
			log.Fatal(err)
		}
		return resp.Header.Get("X-Cache")
	}

	fmt.Println("-- proxy A's clients browse the software section --")
	for _, r := range section {
		get(addrA, r.URL)
		now += 2
	}

	fmt.Println("-- proxy B's first client opens the section index --")
	get(addrB, "/software/index.html")

	fmt.Println("-- B's piggyback named the section's resources; its informed queue")
	fmt.Println("   holds them smallest-first: --")
	q := proxyB.Queue()
	order := []piggyback.FetchItem{}
	for q.Len() > 0 {
		it, _ := q.Pop()
		order = append(order, it)
		fmt.Printf("   %-28s %7d bytes\n", it.URL, it.Size)
	}
	// Re-queue in the observed order and actually prefetch.
	for _, it := range order {
		q.Push(it)
	}
	n := proxyB.DrainPrefetchesContext(context.Background(), 10)
	fmt.Printf("-- prefetched %d resources --\n", n)

	fmt.Println("-- B's clients now browse the section: --")
	hits := 0
	for _, r := range section[1:] {
		now += 2
		how := get(addrB, r.URL)
		fmt.Printf("   GET %-28s X-Cache=%s\n", r.URL, how)
		if how == "HIT" {
			hits++
		}
	}
	st := proxyB.Stats()
	fmt.Printf("\nproxy B: %d prefetches, %d useful, %d/%d section requests served from cache\n",
		st.Prefetches, st.UsefulPrefetches, hits, len(section)-1)
}
