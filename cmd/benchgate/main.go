// Command benchgate compares two `go test -bench -benchmem` outputs and
// fails when the new run regresses past a threshold — a dependency-free
// stand-in for benchstat's compare mode, built for CI perf gating.
//
// Both inputs are ordinary benchmark logs (the benchstat file format):
//
//	BenchmarkWriteResponse/plain-8   2242028   534.6 ns/op   4 B/op   1 allocs/op
//
// Benchmarks present in only one file are reported but never fail the
// gate, so adding or retiring benchmarks doesn't break CI. Time (ns/op)
// regressions beyond -threshold fail; allocs/op is gated absolutely
// (-allocslack extra allocations allowed) because tiny counts make
// percentages meaningless. The custom writes/op metric (write syscalls
// per request, emitted by the wire benchmarks via b.ReportMetric) is
// likewise gated absolutely (-writeslack): a fresh hit must stay at one
// writev per response, and a fractional threshold on a value of 1.0
// would hide a doubling. B/op and other custom metrics are reported but
// not gated.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.txt -new bench_new.txt [-threshold 0.10] [-allocslack 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	name      string
	nsOp      float64
	bOp       float64
	allocs    float64
	writesOp  float64
	hasMem    bool
	hasWrites bool
}

// parseFile extracts benchmark result lines. Repeated runs of the same
// benchmark (e.g. -count=N) are averaged.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sums := make(map[string]result)
	counts := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s := sums[r.name]
		s.name = r.name
		s.nsOp += r.nsOp
		s.bOp += r.bOp
		s.allocs += r.allocs
		s.writesOp += r.writesOp
		s.hasMem = s.hasMem || r.hasMem
		s.hasWrites = s.hasWrites || r.hasWrites
		sums[r.name] = s
		counts[r.name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, s := range sums {
		n := float64(counts[name])
		s.nsOp /= n
		s.bOp /= n
		s.allocs /= n
		s.writesOp /= n
		sums[name] = s
	}
	return sums, nil
}

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{name: trimProcSuffix(fields[0])}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.nsOp = v
			ok = true
		case "B/op":
			r.bOp = v
			r.hasMem = true
		case "allocs/op":
			r.allocs = v
			r.hasMem = true
		case "writes/op":
			r.writesOp = v
			r.hasWrites = true
		}
	}
	return r, ok
}

// trimProcSuffix drops the trailing -GOMAXPROCS so baselines recorded on
// machines with different core counts still line up.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func main() {
	log.SetFlags(0)
	baselinePath := flag.String("baseline", "BENCH_baseline.txt", "baseline benchmark log")
	newPath := flag.String("new", "", "new benchmark log to compare")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional ns/op regression (0.10 = +10%)")
	allocSlack := flag.Float64("allocslack", 1, "allowed absolute allocs/op increase")
	writeSlack := flag.Float64("writeslack", 0.25, "allowed absolute writes/op (write syscalls per request) increase")
	flag.Parse()
	if *newPath == "" {
		log.Fatal("benchgate: -new is required")
	}
	base, err := parseFile(*baselinePath)
	if err != nil {
		log.Fatalf("benchgate: %v", err)
	}
	cur, err := parseFile(*newPath)
	if err != nil {
		log.Fatalf("benchgate: %v", err)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	fmt.Printf("%-52s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "Δ%")
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("%-52s %14.1f %14s %8s\n", name, b.nsOp, "absent", "-")
			continue
		}
		d := pct(b.nsOp, c.nsOp)
		mark := ""
		if d > *threshold*100 {
			mark = "  REGRESSION"
			failures++
		}
		fmt.Printf("%-52s %14.1f %14.1f %+7.1f%%%s\n", name, b.nsOp, c.nsOp, d, mark)
		if b.hasMem && c.hasMem && c.allocs > b.allocs+*allocSlack {
			fmt.Printf("%-52s %14.1f %14.1f allocs/op  REGRESSION\n", name+" [allocs]", b.allocs, c.allocs)
			failures++
		}
		if b.hasWrites && c.hasWrites && c.writesOp > b.writesOp+*writeSlack {
			fmt.Printf("%-52s %14.2f %14.2f writes/op  REGRESSION\n", name+" [writes]", b.writesOp, c.writesOp)
			failures++
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("%-52s %14s %14.1f %8s\n", name, "(new)", cur[name].nsOp, "-")
		}
	}
	if failures > 0 {
		log.Fatalf("benchgate: %d regression(s) beyond +%.0f%% ns/op, +%g allocs/op, or +%g writes/op",
			failures, *threshold*100, *allocSlack, *writeSlack)
	}
	fmt.Println("benchgate: OK")
}
