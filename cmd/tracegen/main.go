// Command tracegen emits synthetic access logs in Common Log Format —
// the data substitute for the paper's proprietary AIUSA/Apache/Marimba/Sun
// server logs and AT&T/Digital client logs (Appendix A).
//
// Usage:
//
//	tracegen -profile sun [-scale 0.5] [-o sun.log]
//	tracegen -profile att -client [-scale 0.5]
//	tracegen -pages 500 -requests 100000 -seed 7   # custom site
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"piggyback/internal/trace"
	"piggyback/internal/tracegen"
)

func main() {
	profile := flag.String("profile", "", "named profile: aiusa|apache|sun|marimba|att|digital")
	client := flag.Bool("client", false, "generate a client (proxy-side) log for att/digital")
	scale := flag.Float64("scale", 1.0, "request-volume scale factor for named profiles")
	out := flag.String("o", "", "output file (default stdout)")
	pages := flag.Int("pages", 0, "custom site: number of pages")
	requests := flag.Int("requests", 0, "custom site: number of requests")
	clients := flag.Int("clients", 0, "custom site: number of clients")
	seed := flag.Int64("seed", 1, "custom site: seed")
	flag.Parse()

	var logRecs trace.Log
	switch {
	case *profile == "att" || *profile == "digital" || *client:
		var cfg tracegen.ClientLogConfig
		switch *profile {
		case "att", "":
			cfg = tracegen.ProfileATT(*scale)
		case "digital":
			cfg = tracegen.ProfileDigital(*scale)
		default:
			log.Fatalf("client logs support profiles att and digital, not %q", *profile)
		}
		logRecs, _ = tracegen.GenerateClientLog(cfg)
	case *profile != "":
		var cfg tracegen.SiteConfig
		switch *profile {
		case "aiusa":
			cfg = tracegen.ProfileAIUSA(*scale)
		case "apache":
			cfg = tracegen.ProfileApache(*scale)
		case "sun":
			cfg = tracegen.ProfileSun(*scale)
		case "marimba":
			cfg = tracegen.ProfileMarimba(*scale)
		default:
			log.Fatalf("unknown profile %q", *profile)
		}
		logRecs, _ = tracegen.GenerateServerLog(cfg)
	default:
		cfg := tracegen.SiteConfig{Name: "custom", Seed: *seed, Pages: *pages, Requests: *requests, Clients: *clients}
		logRecs, _ = tracegen.GenerateServerLog(cfg)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	tw := trace.NewWriter(w)
	if err := tw.WriteAll(logRecs); err != nil {
		log.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records (%d clients, %d resources)\n",
		len(logRecs), logRecs.Clients(), logRecs.UniqueResources())
}
