// Command loadtest stands up a live server→proxy stack (optionally routed
// through a transparent volume center) on loopback and drives it with the
// concurrent load generator across a scenario matrix — piggybacking on and
// off, a concurrency sweep — reporting end-to-end throughput, latency
// percentiles, and hit ratios, both as a human-readable table and as
// machine-readable BENCH_loadtest.json so successive PRs accumulate a
// performance trajectory.
//
// Usage:
//
//	loadtest [-profile aiusa] [-scale 0.02] [-mode closed|open]
//	         [-workers 1,4,16,64] [-requests 2000] [-warmup 200]
//	         [-piggyback on,off] [-maxpiggy 10] [-delta 900]
//	         [-think 0] [-rate 500] [-center] [-prefetch]
//	         [-proxies 1,3] [-peering on,off] [-cachemb 64]
//	         [-hotkey 0.3] [-killpeer]
//	         [-fault none,brownout] [-faultseed 1] [-uptimeout 250ms]
//	         [-maxstale 3600] [-breaker-failures 5] [-breaker-backoff 500ms]
//	         [-breaker-off] [-json BENCH_loadtest.json] [-seed 1]
//
// Each scenario gets a fresh stack (empty proxy cache, fresh volumes) so
// rows are comparable. The proxies' live /.piggy/stats endpoints are
// snapshotted around every run; their merged deltas supply the proxy-side
// hit ratio and piggyback counts in the report.
//
// The -proxies axis stands up a fleet: closed-loop workers pin to members
// round-robin, and with -peering on the members form a consistent-hash
// cooperative mesh (misses route to the key's ring owner before the
// origin; X-Cache: PEER, the peerhit% column). -peering off is the
// independent-caches baseline: same fleet, same aggregate -cachemb
// capacity, but every member fetches from the origin itself — the origin
// column shows what the mesh saves. -hotkey skews the workload onto one
// URL; -killpeer kills the last member mid-run to demonstrate
// fallback-to-origin with zero client-visible errors.
//
// The -fault axis wraps the origin's listener in a faultconn schedule
// (seeded by -faultseed, so runs replay) and reports the proxy's failure
// telemetry per scenario: stale serves, breaker opens and short-circuits,
// and the wire.upstream.err.* class counters — p99 under brownout sits in
// the same row for comparison against the healthy sweep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"piggyback/internal/cache"
	"piggyback/internal/cache/tiered"
	"piggyback/internal/center"
	"piggyback/internal/core"
	"piggyback/internal/faultconn"
	"piggyback/internal/httpwire"
	"piggyback/internal/loadgen"
	"piggyback/internal/metrics"
	"piggyback/internal/obs"
	"piggyback/internal/proxy"
	"piggyback/internal/server"
	"piggyback/internal/trace"
	"piggyback/internal/tracegen"
)

const host = "www.load.test"

type options struct {
	profile   string
	scale     float64
	mode      string
	workers   []int
	requests  int
	warmup    int
	piggyback []bool
	maxPiggy  int
	delta     int64
	think     time.Duration
	rate      float64
	center    bool
	prefetch  bool
	jsonPath  string
	seed      int64

	faults          []string
	faultSeed       int64
	upTimeout       time.Duration
	maxStale        int64
	breakerFailures int
	breakerBackoff  time.Duration
	breakerOff      bool

	proxies  []int
	peering  []bool
	cacheMB  int64
	hotKey   float64
	killPeer bool

	disk    bool
	diskCap int64
	restart []bool

	cpuprofile string
	memprofile string
}

// scenario is one cell of the matrix plus its outcome.
type scenario struct {
	Name      string          `json:"name"`
	Piggyback bool            `json:"piggyback"`
	Workers   int             `json:"workers"`
	Proxies   int             `json:"proxies"`
	Peering   bool            `json:"peering"`
	HotKey    float64         `json:"hot_key,omitempty"`
	KillPeer  bool            `json:"kill_peer,omitempty"`
	Report    *loadgen.Report `json:"report"`
	// Proxy-side windowed counters for the run (from /.piggy/stats).
	ProxyPiggybacks int64 `json:"proxy_piggybacks"`
	ProxyElements   int64 `json:"proxy_elements"`
	ProxyRefreshes  int64 `json:"proxy_refreshes"`
	OriginRequests  int64 `json:"origin_requests"`
	// Upstream connection-pool counters (wire.upstream.* in the proxy's
	// registry): how many origin connections the run dialed, how often a
	// request had to wait at the per-host bound, and how many pooled
	// connections were open when the run finished.
	UpstreamDials int64 `json:"upstream_dials"`
	PoolWaits     int64 `json:"pool_waits"`
	UpstreamConns int64 `json:"upstream_conns_open"`
	// Syscall budget of the proxies' client-facing servers for the run
	// window: write/read syscalls per request served
	// (wire.server.syscalls.* ÷ wire.server.requests). Vectored writes
	// keep wr/op at ~1 regardless of concurrency; CI asserts the
	// workers=64 fresh-hit row stays ≤ 2.
	ServerWritesPerOp float64 `json:"server_writes_per_op"`
	ServerReadsPerOp  float64 `json:"server_reads_per_op"`
	// Failure telemetry (nonzero only under a -fault profile): expired
	// entries served on upstream failure, breaker activity, and upstream
	// errors by wireerr class.
	Fault                string           `json:"fault"`
	StaleServes          int64            `json:"stale_serves"`
	BreakerOpens         int64            `json:"breaker_opens"`
	BreakerShortCircuits int64            `json:"breaker_short_circuits"`
	UpstreamErrs         int64            `json:"upstream_errs"`
	UpstreamErrsByClass  map[string]int64 `json:"upstream_errs_by_class,omitempty"`
	// Mesh telemetry (fleet-merged peer.* counters, nonzero only with
	// -proxies > 1 and peering on): forwards routed to ring owners, the
	// subset answered by the peer, forwards that fell back to the origin,
	// and piggyback messages re-propagated across the fleet.
	PeerForwards     int64 `json:"peer_forwards"`
	PeerServes       int64 `json:"peer_serves"`
	PeerFallbacks    int64 `json:"peer_fallbacks"`
	PeerPropagations int64 `json:"peer_propagations"`
	// Disk-tier telemetry (fleet-merged across proxy generations when the
	// scenario restarts): with -disk, RAM evictions demoted to segment
	// files, disk lookups served and promoted back to RAM, and the
	// closing disk footprint. Restart marks scenarios whose fleet was
	// killed and relaunched mid-run; with -disk the relaunch reopens the
	// same directories, so origin fetches stay near the no-restart run —
	// CI compares this row's OriginRequests against the diskless restart.
	Disk           bool  `json:"disk,omitempty"`
	Restart        bool  `json:"restart,omitempty"`
	TierDemotions  int64 `json:"tier_demotions,omitempty"`
	TierPromotions int64 `json:"tier_promotions,omitempty"`
	TierDiskHits   int64 `json:"tier_disk_hits,omitempty"`
	TierDiskBytes  int64 `json:"tier_disk_bytes,omitempty"`
}

// benchOutput is the BENCH_loadtest.json schema.
type benchOutput struct {
	Benchmark string     `json:"benchmark"` // "loadtest"
	Timestamp string     `json:"timestamp"` // RFC 3339
	Profile   string     `json:"profile"`
	Scale     float64    `json:"scale"`
	Mode      string     `json:"mode"`
	Requests  int        `json:"requests_per_scenario"`
	Warmup    int        `json:"warmup"`
	Center    bool       `json:"via_center"`
	Scenarios []scenario `json:"scenarios"`
}

func main() {
	log.SetFlags(0)
	opt := parseFlags()

	if opt.cpuprofile != "" {
		f, err := os.Create(opt.cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(opt.memprofile)

	workload, site := buildWorkload(opt)
	fmt.Printf("workload: profile %s ×%.3g → %d requests over %d resources\n",
		opt.profile, opt.scale, len(workload), len(site.Resources))

	out := benchOutput{
		Benchmark: "loadtest",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Profile:   opt.profile,
		Scale:     opt.scale,
		Mode:      opt.mode,
		Requests:  opt.requests,
		Warmup:    opt.warmup,
		Center:    opt.center,
	}
	tbl := &metrics.Table{Header: []string{
		"scenario", "piggy", "workers", "proxies", "peer", "fault", "restart", "reqs", "errs", "rps",
		"p50ms", "p90ms", "p99ms", "maxms", "hit%", "peerhit%", "proxyhit%",
		"piggybacks", "elems", "origin", "dials", "poolwaits", "upconns",
		"wr/op", "rd/op",
		"stale", "bropen", "uperr", "pfwd", "pfall", "prop",
		"demote", "promote", "dhit",
	}}
	for _, fault := range opt.faults {
		for _, piggy := range opt.piggyback {
			for _, nproxies := range opt.proxies {
				// A single proxy has no mesh: the peering axis collapses
				// to one (identical) row.
				peerAxis := opt.peering
				if nproxies == 1 {
					peerAxis = opt.peering[:1]
				}
				for _, peering := range peerAxis {
					for _, restart := range opt.restart {
						for _, workers := range opt.workers {
							sc := runScenario(opt, workload, site, cell{
								piggy: piggy, workers: workers, fault: fault,
								proxies: nproxies, peering: peering,
								restart: restart,
							})
							out.Scenarios = append(out.Scenarios, sc)
							r := sc.Report
							tbl.AddRow(sc.Name, onOff(piggy), workers, sc.Proxies, onOff(sc.Peering),
								fault, onOff(sc.Restart), r.Requests, r.Errors,
								r.ThroughputRPS, ms(r.P50us), ms(r.P90us), ms(r.P99us),
								ms(float64(r.MaxUs)), metrics.Pct(r.HitRatio),
								metrics.Pct(r.PeerHitRatio), pctOrDash(r.ProxyHitRatio),
								sc.ProxyPiggybacks, sc.ProxyElements, sc.OriginRequests,
								sc.UpstreamDials, sc.PoolWaits, sc.UpstreamConns,
								fmt.Sprintf("%.2f", sc.ServerWritesPerOp),
								fmt.Sprintf("%.2f", sc.ServerReadsPerOp),
								sc.StaleServes, sc.BreakerOpens, sc.UpstreamErrs,
								sc.PeerForwards, sc.PeerFallbacks, sc.PeerPropagations,
								sc.TierDemotions, sc.TierPromotions, sc.TierDiskHits)
						}
					}
				}
			}
		}
	}
	fmt.Println()
	fmt.Print(tbl.String())

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(opt.jsonPath, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d scenarios)\n", opt.jsonPath, len(out.Scenarios))
}

// writeMemProfile dumps a post-GC heap profile, so allocation audits see
// retained memory rather than collectable garbage.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Fatal(err)
	}
}

func parseFlags() options {
	var opt options
	var workers, piggy, faults string
	flag.StringVar(&opt.profile, "profile", "aiusa", "tracegen profile: aiusa|apache|sun")
	flag.Float64Var(&opt.scale, "scale", 0.02, "workload scale factor")
	flag.StringVar(&opt.mode, "mode", "closed", "load discipline: closed|open")
	flag.StringVar(&workers, "workers", "1,4,16,64", "comma-separated concurrency sweep")
	flag.IntVar(&opt.requests, "requests", 2000, "requests per scenario")
	flag.IntVar(&opt.warmup, "warmup", 200, "leading completions excluded from the report")
	flag.StringVar(&piggy, "piggyback", "on,off", "piggybacking axis: on, off, or on,off")
	flag.IntVar(&opt.maxPiggy, "maxpiggy", 10, "filter maxpiggy attribute")
	flag.Int64Var(&opt.delta, "delta", 900, "proxy freshness interval Δ (seconds)")
	flag.DurationVar(&opt.think, "think", 0, "closed-loop mean think time")
	flag.Float64Var(&opt.rate, "rate", 500, "open-loop arrival rate (req/s)")
	flag.BoolVar(&opt.center, "center", false, "route through a transparent volume center")
	flag.BoolVar(&opt.prefetch, "prefetch", false, "enable proxy prefetching")
	flag.StringVar(&opt.jsonPath, "json", "BENCH_loadtest.json", "machine-readable output path")
	flag.Int64Var(&opt.seed, "seed", 1, "workload seed")
	flag.StringVar(&faults, "fault", "none",
		"comma-separated fault-profile axis: none|latency|truncate|blackhole|reset|brownout")
	flag.Int64Var(&opt.faultSeed, "faultseed", 1, "fault schedule seed")
	flag.DurationVar(&opt.upTimeout, "uptimeout", 0,
		"proxy upstream exchange timeout (0 = client default)")
	flag.Int64Var(&opt.maxStale, "maxstale", 3600,
		"serve-stale-on-error window in seconds (negative disables)")
	flag.IntVar(&opt.breakerFailures, "breaker-failures", 5,
		"consecutive upstream failures that trip the proxy's circuit breaker")
	flag.DurationVar(&opt.breakerBackoff, "breaker-backoff", 500*time.Millisecond,
		"initial breaker open interval")
	flag.BoolVar(&opt.breakerOff, "breaker-off", false, "disable the circuit breaker")
	var proxies, peering string
	flag.StringVar(&proxies, "proxies", "1", "comma-separated fleet-size axis (e.g. 1,3)")
	flag.StringVar(&peering, "peering", "on",
		"cooperative-mesh axis for multi-proxy fleets: on, off, or on,off")
	flag.Int64Var(&opt.cacheMB, "cachemb", 64,
		"aggregate fleet cache capacity in MiB, split evenly across -proxies")
	flag.Float64Var(&opt.hotKey, "hotkey", 0,
		"hot-key skew: fraction of requests redirected to one popular URL (e.g. 0.3)")
	flag.BoolVar(&opt.killPeer, "killpeer", false,
		"kill the last fleet member once half the requests have completed (requires -proxies > 1)")
	var restart string
	flag.BoolVar(&opt.disk, "disk", false,
		"give each proxy a disk cache tier (temp directory, removed after the run)")
	flag.Int64Var(&opt.diskCap, "disk-cap", 256<<20, "disk tier capacity in bytes per proxy")
	flag.StringVar(&restart, "restart", "off",
		"restart axis: off, on, or on,off — on kills and relaunches the fleet once half the requests have completed (with -disk the relaunch reopens the same directories and serves warm)")
	flag.StringVar(&opt.cpuprofile, "cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.StringVar(&opt.memprofile, "memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	for _, w := range strings.Split(workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || n <= 0 {
			log.Fatalf("loadtest: bad -workers element %q", w)
		}
		opt.workers = append(opt.workers, n)
	}
	for _, p := range strings.Split(proxies, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			log.Fatalf("loadtest: bad -proxies element %q", p)
		}
		opt.proxies = append(opt.proxies, n)
	}
	for _, p := range strings.Split(peering, ",") {
		switch strings.TrimSpace(p) {
		case "on":
			opt.peering = append(opt.peering, true)
		case "off":
			opt.peering = append(opt.peering, false)
		default:
			log.Fatalf("loadtest: bad -peering element %q", p)
		}
	}
	if opt.hotKey < 0 || opt.hotKey >= 1 {
		log.Fatalf("loadtest: -hotkey %g must be in [0, 1)", opt.hotKey)
	}
	for _, r := range strings.Split(restart, ",") {
		switch strings.TrimSpace(r) {
		case "on":
			opt.restart = append(opt.restart, true)
		case "off":
			opt.restart = append(opt.restart, false)
		default:
			log.Fatalf("loadtest: bad -restart element %q", r)
		}
	}
	for _, p := range strings.Split(piggy, ",") {
		switch strings.TrimSpace(p) {
		case "on":
			opt.piggyback = append(opt.piggyback, true)
		case "off":
			opt.piggyback = append(opt.piggyback, false)
		default:
			log.Fatalf("loadtest: bad -piggyback element %q", p)
		}
	}
	for _, f := range strings.Split(faults, ",") {
		f = strings.TrimSpace(f)
		if _, ok := faultconn.Profiles(f); !ok {
			log.Fatalf("loadtest: unknown -fault profile %q", f)
		}
		if f == "" {
			f = "none"
		}
		opt.faults = append(opt.faults, f)
	}
	if opt.mode != "closed" && opt.mode != "open" {
		log.Fatalf("loadtest: bad -mode %q", opt.mode)
	}
	if opt.warmup >= opt.requests {
		log.Fatalf("loadtest: -warmup %d must be < -requests %d", opt.warmup, opt.requests)
	}
	return opt
}

// buildWorkload generates the synthetic trace and site for the profile.
func buildWorkload(opt options) (trace.Log, *tracegen.Site) {
	var cfg tracegen.SiteConfig
	switch opt.profile {
	case "aiusa":
		cfg = tracegen.ProfileAIUSA(opt.scale)
	case "apache":
		cfg = tracegen.ProfileApache(opt.scale)
	case "sun":
		cfg = tracegen.ProfileSun(opt.scale)
	default:
		log.Fatalf("loadtest: unknown profile %q", opt.profile)
	}
	cfg.Seed = opt.seed
	workload, site := tracegen.GenerateServerLog(cfg)
	return applyHotKey(workload.Clean(), opt), site
}

// applyHotKey skews the workload: a -hotkey fraction of the records are
// redirected (seeded, reproducible) to the trace's first URL, modeling a
// flash-crowd resource. On a mesh this concentrates the hot key on one
// ring owner; every other fleet member should absorb it as a local cache
// hit after its first peer fetch.
func applyHotKey(workload trace.Log, opt options) trace.Log {
	if opt.hotKey <= 0 || len(workload) == 0 {
		return workload
	}
	hot := workload[0].URL
	rng := rand.New(rand.NewSource(opt.seed * 31))
	out := make(trace.Log, len(workload))
	copy(out, workload)
	for i := range out {
		if rng.Float64() < opt.hotKey {
			out[i].URL = hot
		}
	}
	return out
}

// cell is one coordinate of the scenario matrix.
type cell struct {
	piggy   bool
	workers int
	proxies int
	peering bool
	fault   string
	restart bool
}

// fleet is one generation of proxies: a restart scenario tears one down
// mid-run and launches a successor over the same disk directories.
type fleet struct {
	pls   []net.Listener
	addrs []string
	pxs   []*proxy.Proxy
	psrvs []*httpwire.Server
}

// close tears the generation down — servers first so no request races the
// proxy Close, then the proxies themselves (a disk-tiered proxy flushes
// its RAM working set and snapshots its index here, exactly like a real
// process handling SIGTERM).
func (f *fleet) close() {
	for _, s := range f.psrvs {
		s.Close()
	}
	for _, l := range f.pls {
		l.Close()
	}
	for _, p := range f.pxs {
		p.Close()
	}
}

// runScenario stands up a fresh stack and drives one load run through it.
func runScenario(opt options, workload trace.Log, site *tracegen.Site, c cell) scenario {
	piggy, workers, fault := c.piggy, c.workers, c.fault
	clock := func() int64 { return time.Now().Unix() }

	// Origin: the site's resources, last modified well before the run.
	st := server.NewStore()
	for _, r := range site.ResourceTable() {
		st.Put(server.Resource{URL: r.URL, Size: r.Size,
			LastModified: r.LastModifiedAt(site.Config.StartTime)})
	}
	vols := core.NewDirVolumes(core.DirConfig{
		Level: 1, MTF: true, ServerMaxPiggy: opt.maxPiggy, PartitionByType: true,
	})
	origin := server.New(st, vols, clock)
	ol := listen()
	// The fault profile sits on the origin's listener, so the proxy (or
	// center) dials through the degraded path.
	profile, _ := faultconn.Profiles(fault)
	fl := faultconn.NewListener(ol, profile, opt.faultSeed)
	osrv := &httpwire.Server{Handler: origin,
		Obs: obs.NewWireMetrics(origin.Obs(), "wire.server")}
	go osrv.Serve(fl)
	defer osrv.Close()

	// Under a fault profile, churn upstream connections during the run:
	// persistent pooled connections only consult the fault schedule at
	// dial time, so a run that rode one lucky healthy connection would
	// measure nothing. Periodic aborts model the flaky-network half of a
	// brownout (exchanges die mid-flight) and force redials through the
	// seeded schedule.
	if fault != "none" {
		churnStop := make(chan struct{})
		defer close(churnStop)
		go func() {
			for {
				select {
				case <-churnStop:
					return
				case <-time.After(100 * time.Millisecond):
					fl.AbortConns()
				}
			}
		}()
	}

	// Optional transparent volume center between proxy and origin.
	upstream := ol.Addr().String()
	if opt.center {
		ctr := center.New(center.Config{
			Clock:   clock,
			Resolve: func(string) (string, error) { return ol.Addr().String(), nil },
		})
		defer ctr.Close()
		cl := listen()
		csrv := &httpwire.Server{Handler: ctr,
			Obs: obs.NewWireMetrics(ctr.Obs(), "wire.server")}
		go csrv.Serve(cl)
		defer csrv.Close()
		upstream = cl.Addr().String()
	}

	filter := core.Filter{MaxPiggy: opt.maxPiggy}
	if !piggy {
		filter = core.Filter{Disabled: true}
	}

	// The fleet: -proxies members, each with an equal slice of the
	// aggregate -cachemb capacity so fleet sizes compare at constant total
	// cache. With peering on, every member advertises its own listener
	// address and the full member list; with peering off the members are
	// independent caches (the "N separate proxies" baseline). With -disk,
	// each member slot gets a persistent temp directory for its disk
	// tier; a restart relaunches the fleet over the same directories, so
	// the successor generation serves the predecessor's working set warm.
	nproxies := c.proxies
	if nproxies <= 0 {
		nproxies = 1
	}
	diskDirs := make([]string, nproxies)
	if opt.disk {
		for i := range diskDirs {
			d, err := os.MkdirTemp("", "loadtest-tier-")
			if err != nil {
				log.Fatal(err)
			}
			diskDirs[i] = d
			defer os.RemoveAll(d)
		}
	}
	// Tier counters live in the store's process memory, so a restart
	// scenario must bank the first generation's numbers before closing it.
	var tierBanked cache.StoreStats
	launchFleet := func() *fleet {
		f := &fleet{
			pls:   make([]net.Listener, nproxies),
			addrs: make([]string, nproxies),
			pxs:   make([]*proxy.Proxy, nproxies),
			psrvs: make([]*httpwire.Server, nproxies),
		}
		for i := range f.pls {
			f.pls[i] = listen()
			f.addrs[i] = f.pls[i].Addr().String()
		}
		for i := range f.pxs {
			pcfg := proxy.Config{
				CacheBytes: opt.cacheMB << 20 / int64(nproxies),
				Delta:      opt.delta, Clock: clock,
				Resolve:         func(string) (string, error) { return upstream, nil },
				BaseFilter:      filter,
				Prefetch:        opt.prefetch,
				UpstreamTimeout: opt.upTimeout,
				MaxStaleOnError: opt.maxStale,
				BreakerFailures: opt.breakerFailures,
				BreakerBackoff:  opt.breakerBackoff,
				BreakerDisabled: opt.breakerOff,
				BreakerSeed:     opt.faultSeed,
			}
			if opt.disk {
				ram := cache.NewSharded(pcfg.CacheBytes, 0, cache.PolicyFactory(cache.PiggybackLRU{}))
				ts, err := tiered.New(ram, tiered.Config{
					Dir: diskDirs[i], DiskBytes: opt.diskCap / int64(nproxies),
				})
				if err != nil {
					log.Fatalf("loadtest: disk tier: %v", err)
				}
				pcfg.Store = ts
			}
			if c.peering && nproxies > 1 {
				pcfg.PeerSelf = f.addrs[i]
				pcfg.Peers = f.addrs
			}
			f.pxs[i] = proxy.New(pcfg)
			f.psrvs[i] = &httpwire.Server{Handler: f.pxs[i],
				Obs: obs.NewWireMetrics(f.pxs[i].Obs(), "wire.server")}
			go f.psrvs[i].Serve(f.pls[i])
		}
		return f
	}
	cur := launchFleet()
	defer func() { cur.close() }()
	pxs, psrvs, pls, addrs := cur.pxs, cur.psrvs, cur.pls, cur.addrs

	// With -killpeer, clients drive every member except the victim (the
	// last one), which participates only as a ring owner; once half the
	// requests have completed it is killed, and the survivors' forwards
	// into its partition must fall back to the origin with no
	// client-visible errors.
	targetAddrs := addrs
	killPeer := opt.killPeer && nproxies > 1
	if killPeer {
		targetAddrs = addrs[:nproxies-1]
		done := make(chan struct{})
		defer close(done)
		go func() {
			half := opt.requests / 2
			for {
				select {
				case <-done:
					return
				case <-time.After(10 * time.Millisecond):
				}
				total := 0
				for _, p := range pxs[:nproxies-1] {
					total += p.Stats().ClientRequests
				}
				if total >= half {
					psrvs[nproxies-1].Close()
					pls[nproxies-1].Close()
					return
				}
			}
		}()
	}

	mode := loadgen.Closed
	if opt.mode == "open" {
		mode = loadgen.Open
	}
	name := fmt.Sprintf("piggy=%s/workers=%d", onOff(piggy), workers)
	if nproxies > 1 {
		name += fmt.Sprintf("/proxies=%d/peering=%s", nproxies, onOff(c.peering))
	}
	if opt.hotKey > 0 {
		name += fmt.Sprintf("/hotkey=%.2g", opt.hotKey)
	}
	if killPeer {
		name += "/killpeer"
	}
	if fault != "none" {
		name += "/fault=" + fault
	}
	if opt.disk {
		name += "/disk"
	}
	if c.restart {
		name += "/restart"
	}
	if c.restart && killPeer {
		log.Fatalf("loadtest: -restart and -killpeer are mutually exclusive")
	}
	fmt.Printf("running %-48s ... ", name)
	runHalf := func(requests, warmup int) *loadgen.Report {
		rep, err := loadgen.RunContext(context.Background(), loadgen.Config{
			Addrs:      targetAddrs,
			Records:    workload,
			Host:       host,
			Mode:       mode,
			Workers:    workers,
			Think:      opt.think,
			Rate:       opt.rate,
			Requests:   requests,
			Warmup:     warmup,
			Seed:       opt.seed,
			StatsAddrs: targetAddrs,
		})
		if err != nil {
			log.Fatalf("loadtest: scenario %s: %v", name, err)
		}
		return rep
	}
	var rep *loadgen.Report
	if c.restart {
		// First half populates the fleet, then the whole fleet is killed
		// and relaunched (with -disk, over the same directories). The
		// reported latency/throughput is the post-restart half — the run
		// that shows whether the restart was warm; requests and errors
		// are summed so the row covers the whole scenario.
		firstHalf := runHalf(opt.requests/2, opt.warmup)
		for _, p := range pxs {
			tierBanked = addTier(tierBanked, p.CacheStats())
		}
		cur.close()
		cur = launchFleet()
		pxs, psrvs, pls, addrs = cur.pxs, cur.psrvs, cur.pls, cur.addrs
		_, _ = psrvs, pls
		targetAddrs = addrs
		rep = runHalf(opt.requests-opt.requests/2, 0)
		rep.Requests += firstHalf.Requests
		rep.Errors += firstHalf.Errors
	} else {
		rep = runHalf(opt.requests, opt.warmup)
	}
	fmt.Printf("%6.0f req/s, p99 %s\n", rep.ThroughputRPS, ms(rep.P99us))

	sc := scenario{Name: name, Piggyback: piggy, Workers: workers, Fault: fault,
		Proxies: nproxies, Peering: c.peering && nproxies > 1,
		HotKey: opt.hotKey, KillPeer: killPeer,
		Disk: opt.disk, Restart: c.restart,
		Report: rep, OriginRequests: int64(origin.Stats().Requests)}
	tier := tierBanked
	for _, p := range pxs {
		tier = addTier(tier, p.CacheStats())
	}
	sc.TierDemotions = tier.Demotions
	sc.TierPromotions = tier.Promotions
	sc.TierDiskHits = tier.DiskHits
	sc.TierDiskBytes = tier.DiskBytes
	if d := rep.StatsDelta; d != nil {
		sc.ProxyPiggybacks = d.Counter("proxy.piggybacks_received")
		sc.ProxyElements = d.Counter("proxy.piggyback_elements")
		sc.ProxyRefreshes = d.Counter("proxy.refreshes")
		sc.UpstreamDials = d.Counter("wire.upstream.dials")
		sc.PoolWaits = d.Counter("wire.upstream.pool_waits")
		if served := d.Counter("wire.server.requests"); served > 0 {
			sc.ServerWritesPerOp = float64(d.Counter("wire.server.syscalls.writes")) / float64(served)
			sc.ServerReadsPerOp = float64(d.Counter("wire.server.syscalls.reads")) / float64(served)
		}
		sc.StaleServes = d.Counter("proxy.stale_serves")
		sc.BreakerOpens = d.Counter("proxy.breaker.opens")
		sc.BreakerShortCircuits = d.Counter("proxy.breaker.short_circuits")
		sc.PeerForwards = d.Counter("peer.forwards")
		sc.PeerServes = d.Counter("peer.serves")
		sc.PeerFallbacks = d.Counter("peer.fallbacks")
		sc.PeerPropagations = d.Counter("peer.propagations_sent")
		for _, class := range []string{"dial_timeout", "request_timeout", "canceled", "circuit_open", "truncated", "other"} {
			if n := d.Counter("wire.upstream.err." + class); n > 0 {
				if sc.UpstreamErrsByClass == nil {
					sc.UpstreamErrsByClass = make(map[string]int64)
				}
				sc.UpstreamErrsByClass[class] = n
				sc.UpstreamErrs += n
			}
		}
	}
	// conns_open is a gauge, so read the live value rather than the
	// run-window delta: it is the fleet's origin fan-out at the end of the
	// sweep.
	for _, p := range pxs {
		sc.UpstreamConns += p.Obs().Snapshot().Counter("wire.upstream.conns_open")
	}
	return sc
}

// addTier accumulates the tier-side counters across fleet members and
// proxy generations (the per-lookup hit/miss fields are left alone: the
// report's proxy hit ratio already covers those).
func addTier(a, b cache.StoreStats) cache.StoreStats {
	a.Demotions += b.Demotions
	a.Promotions += b.Promotions
	a.DiskHits += b.DiskHits
	a.DiskBytes += b.DiskBytes
	a.Compactions += b.Compactions
	return a
}

func listen() net.Listener {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// ms renders microseconds as a millisecond string.
func ms(us float64) string { return fmt.Sprintf("%.2f", us/1000) }

func pctOrDash(v float64) string {
	if v < 0 {
		return "-"
	}
	return metrics.Pct(v)
}
