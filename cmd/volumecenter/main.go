// Command volumecenter runs the transparent volume center: a relay on the
// path between proxies and (non-cooperating) origin servers that builds
// volumes from the traffic it forwards and injects P-Volume trailers on
// the origins' behalf.
//
// Usage:
//
//	volumecenter [-addr :8082] -origin 127.0.0.1:8080 [-level 1] [-maxpiggy 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"piggyback"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8082", "listen address")
	origin := flag.String("origin", "127.0.0.1:8080", "default upstream address")
	hostMap := flag.String("map", "", `per-host upstreams: "www.a.com=10.0.0.1:80,www.b.com=10.0.0.2:80"`)
	level := flag.Int("level", 1, "directory-volume prefix level (host-qualified)")
	maxPiggy := flag.Int("maxpiggy", 10, "piggyback element cap")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 disables)")
	pprofOn := flag.Bool("pprof", false, "serve runtime profiles on "+piggyback.PprofPathPrefix)
	flag.Parse()
	piggyback.EnablePprof(*pprofOn)

	upstreams := make(map[string]string)
	if *hostMap != "" {
		for _, pair := range strings.Split(*hostMap, ",") {
			host, target, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || host == "" || target == "" {
				log.Fatalf("volumecenter: bad -map entry %q", pair)
			}
			upstreams[host] = target
		}
	}

	ctr := piggyback.NewVolumeCenter(piggyback.CenterConfig{
		Volumes: piggyback.NewDirVolumes(piggyback.DirConfig{
			Level: *level, MTF: true, ServerMaxPiggy: *maxPiggy, PartitionByType: true,
		}),
		Resolve: func(host string) (string, error) {
			if target, ok := upstreams[host]; ok {
				return target, nil
			}
			return *origin, nil
		},
		Clock: func() int64 { return time.Now().Unix() },
	})
	defer ctr.Close()

	if *statsEvery > 0 {
		go func() {
			for {
				time.Sleep(*statsEvery)
				st := ctr.Stats()
				fmt.Printf("volumecenter: relayed=%d piggybacks=%d elems=%d originPiggybacks=%d errors=%d\n",
					st.Relayed, st.PiggybacksSent, st.PiggybackElems, st.OriginPiggyback, st.UpstreamErrors)
			}
		}()
	}

	srv := &piggyback.WireServer{Handler: ctr, ErrorLog: log.New(os.Stderr, "volumecenter: ", 0),
		Obs: piggyback.NewWireMetrics(ctr.Obs(), "wire.server")}
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		fmt.Println("\nvolumecenter: shutting down")
		srv.Close()
	}()

	fmt.Printf("volumecenter: listening on %s, upstream %s, %d-level volumes\n", *addr, *origin, *level)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}
