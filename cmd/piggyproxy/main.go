// Command piggyproxy runs the caching piggybacking proxy: clients send it
// absolute-URI or Host-header requests; it caches with a freshness
// interval Δ, attaches Piggy-Filter headers (with per-server RPV lists)
// upstream, and applies P-Volume trailers for coherency, replacement, and
// prefetching.
//
// With no resolver configuration every host is resolved to -origin,
// matching the single-origin testbeds built by piggyserver/volumecenter.
//
// With -peers, the proxy joins a cooperative mesh: the listed fleet
// members (which should include this proxy's own advertised address, or
// pass it separately as -peer-id) partition the URL space over a
// consistent-hash ring, local misses route to the key's ring owner before
// the origin (X-Cache: PEER), and piggybacked volume state re-propagates
// across the fleet.
//
// Usage:
//
//	piggyproxy [-addr :8081] -origin 127.0.0.1:8080 [-cache 64MiB-bytes]
//	           [-shards N] [-delta 900] [-maxpiggy 10] [-prefetch] [-adaptive]
//	           [-peers host:port,host:port,...] [-peer-id host:port]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"piggyback"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8081", "listen address")
	origin := flag.String("origin", "127.0.0.1:8080", "upstream address every host resolves to")
	cacheBytes := flag.Int64("cache", 64<<20, "cache capacity in bytes")
	shards := flag.Int("shards", 0, "cache shard count, rounded up to a power of two (0: smallest power of two covering the CPUs, clamped to [8, 64])")
	delta := flag.Int64("delta", 900, "freshness interval Δ in seconds")
	maxPiggy := flag.Int("maxpiggy", 10, "filter maxpiggy attribute")
	prefetch := flag.Bool("prefetch", false, "prefetch piggybacked resources")
	adaptive := flag.Bool("adaptive", false, "adapt Δ per resource from observed change rates")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 disables)")
	uptimeout := flag.Duration("uptimeout", 0, "upstream exchange timeout (0: wire default, 30s)")
	upInflight := flag.Int("upstream-inflight", 0, "concurrent exchanges multiplexed per upstream connection (0: default 4, 1: classic one-exchange-per-conn pool)")
	breakerFails := flag.Int("breaker-failures", 5, "consecutive upstream failures that trip a host's circuit open")
	breakerBackoff := flag.Duration("breaker-backoff", 500*time.Millisecond, "initial open interval before a half-open probe")
	breakerOff := flag.Bool("breaker-off", false, "disable the per-host circuit breaker")
	maxStale := flag.Int64("maxstale", 3600, "serve expired entries up to this many seconds past expiry on upstream failure (negative disables)")
	peers := flag.String("peers", "", "comma-separated fleet member addresses for the cooperative mesh (empty disables)")
	peerID := flag.String("peer-id", "", "this proxy's advertised peer address (default: -addr)")
	peerTimeout := flag.Duration("peer-timeout", 0, "peer exchange timeout (0: 5s)")
	diskDir := flag.String("disk-dir", "", "directory for the disk cache tier (empty: RAM only); reopening the same directory restarts warm")
	diskCap := flag.Int64("disk-cap", 256<<20, "disk tier capacity in bytes")
	pprofOn := flag.Bool("pprof", false, "serve runtime profiles on "+piggyback.PprofPathPrefix)
	flag.Parse()
	piggyback.EnablePprof(*pprofOn)

	var peerList []string
	self := ""
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		self = *peerID
		if self == "" {
			self = *addr
		}
	}

	// Exit status is deferred behind the proxy's own deferred Close so a
	// serve failure still flushes the disk tier before the process ends.
	exitCode := 0
	defer func() {
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()

	// With -disk-dir, serve from a tiered store: the RAM tier demotes
	// eviction-worthy entries to segment files there, and the proxy's
	// Close (on SIGTERM) snapshots the index so the next run serves warm.
	var store piggyback.CacheStore
	if *diskDir != "" {
		ram := piggyback.NewShardedCache(*cacheBytes, *shards, nil)
		ts, err := piggyback.NewTieredCache(ram, piggyback.TieredCacheConfig{
			Dir: *diskDir, DiskBytes: *diskCap,
		})
		if err != nil {
			log.Fatalf("piggyproxy: disk tier: %v", err)
		}
		store = ts
	}

	px := piggyback.NewProxy(piggyback.ProxyConfig{
		Store:             store,
		CacheBytes:        *cacheBytes,
		CacheShards:       *shards,
		Delta:             *delta,
		BaseFilter:        piggyback.Filter{MaxPiggy: *maxPiggy},
		Clock:             func() int64 { return time.Now().Unix() },
		Resolve:           func(host string) (string, error) { return *origin, nil },
		Prefetch:          *prefetch,
		AdaptiveFreshness: *adaptive,
		UpstreamTimeout:   *uptimeout,
		UpstreamInflight:  *upInflight,
		BreakerFailures:   *breakerFails,
		BreakerBackoff:    *breakerBackoff,
		BreakerDisabled:   *breakerOff,
		MaxStaleOnError:   *maxStale,
		PeerSelf:          self,
		Peers:             peerList,
		PeerTimeout:       *peerTimeout,
	})
	defer px.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *prefetch {
		go func() {
			for ctx.Err() == nil {
				time.Sleep(500 * time.Millisecond)
				px.DrainPrefetchesContext(ctx, 8)
			}
		}()
	}
	if *statsEvery > 0 {
		go func() {
			for {
				time.Sleep(*statsEvery)
				st := px.Stats()
				line := fmt.Sprintf("piggyproxy: req=%d freshHits=%d validations=%d 304s=%d piggybacks=%d refreshes=%d invalidations=%d prefetches=%d staleServes=%d breakerOpen=%d hitRate=%.2f",
					st.ClientRequests, st.FreshHits, st.Validations, st.NotModified,
					st.PiggybacksReceived, st.Refreshes, st.Invalidations, st.Prefetches,
					st.StaleServes, px.BreakerOpenHosts(),
					px.CacheHitRate())
				if px.PeerRing() != nil {
					line += fmt.Sprintf(" peerFwd=%d peerServes=%d peerFallbacks=%d peerProp=%d/%d",
						st.PeerForwards, st.PeerServes, st.PeerFallbacks,
						st.PeerPropagationsSent, st.PeerPropagationsReceived)
				}
				fmt.Println(line)
			}
		}()
	}

	srv := &piggyback.WireServer{Handler: px, ErrorLog: log.New(os.Stderr, "piggyproxy: ", 0),
		Obs: piggyback.NewWireMetrics(px.Obs(), "wire.server")}
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		fmt.Println("\npiggyproxy: shutting down")
		cancel()
		srv.Close()
	}()

	fmt.Printf("piggyproxy: listening on %s, upstream %s, Δ=%ds, cache %d bytes\n",
		*addr, *origin, *delta, *cacheBytes)
	if ring := px.PeerRing(); ring != nil {
		fmt.Printf("piggyproxy: cooperative mesh of %d peers as %s\n", ring.Size(), self)
	}
	// A clean shutdown surfaces as net.ErrClosed from the accept loop;
	// anything else is a real failure. Either way fall through to the
	// deferred px.Close() so the disk tier flushes and snapshots — a
	// log.Fatal here would skip it and cost the next run its warm start.
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Printf("piggyproxy: serve: %v", err)
		exitCode = 1
	}
}
