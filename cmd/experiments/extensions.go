package main

import (
	"fmt"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/metrics"
	"piggyback/internal/sim"
)

// runHier evaluates the §1/§5 hierarchical-caching extension: a two-level
// proxy tree replaying each server workload, with and without piggyback
// coherency flowing from the origin through the parent to the children.
func runHier(l *lab) {
	fmt.Println("-- two-level proxy tree (4 children, LRU, Δ=900s) --")
	tbl := &metrics.Table{Header: []string{
		"log", "piggyback", "child hits", "parent hits", "origin load",
		"refreshes", "avoided validations"}}
	for _, name := range []string{"aiusa", "sun"} {
		log := l.serverLog(name)
		base := sim.ReplayHierarchy(log, sim.HierarchyConfig{
			Children: 4, Delta: 900,
			NewPolicy: func() cache.Policy { return cache.LRU{} },
		})
		vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
		with := sim.ReplayHierarchy(log, sim.HierarchyConfig{
			Children: 4, Delta: 900,
			NewPolicy:  func() cache.Policy { return cache.LRU{} },
			Provider:   vols,
			RPVTimeout: 60,
		})
		tbl.AddRow(name+"-like", "off", metrics.Pct(base.ChildHitRate()),
			metrics.Pct(base.ParentHitRate()), metrics.Pct(base.OriginLoad()),
			base.Refreshes, base.AvoidedValidations)
		tbl.AddRow(name+"-like", "on", metrics.Pct(with.ChildHitRate()),
			metrics.Pct(with.ParentHitRate()), metrics.Pct(with.OriginLoad()),
			with.Refreshes, with.AvoidedValidations)
	}
	fmt.Print(tbl.String())
	fmt.Println("(extension of §1: piggyback freshness propagates down the tree, cutting")
	fmt.Println(" origin load without shrinking Δ)")

	fmt.Println("-- popular-resources fallback volume (Sec 5) --")
	log := l.serverLog("aiusa")
	inner := core.NewDirVolumes(core.DirConfig{Level: 2, MTF: true, ServerMaxPiggy: 10})
	plainRes := sim.New(sim.Config{T: 300, Provider: inner, Feed: true,
		BaseFilter: core.Filter{MinAccess: 10}, UseRPV: true, RPVTimeout: 300}).Run(log)

	inner2 := core.NewDirVolumes(core.DirConfig{Level: 2, MTF: true, ServerMaxPiggy: 10})
	pop := core.NewPopularProvider(inner2, 10)
	popRes := sim.New(sim.Config{T: 300, Provider: pop, Feed: true,
		BaseFilter: core.Filter{MinAccess: 10}, UseRPV: true, RPVTimeout: 300}).Run(log)

	tbl2 := &metrics.Table{Header: []string{"provider", "fraction predicted", "avg piggyback", "piggyback msgs"}}
	tbl2.AddRow("dir volumes", plainRes.FractionPredicted(), plainRes.AvgPiggybackSize(), plainRes.PiggybackMessages)
	tbl2.AddRow("dir + popular fallback", popRes.FractionPredicted(), popRes.AvgPiggybackSize(), popRes.PiggybackMessages)
	fmt.Print(tbl2.String())
	fmt.Println("(the popular volume answers requests whose own volume has nothing to say;")
	fmt.Println(" the RPV list paces it like any other volume)")
}
