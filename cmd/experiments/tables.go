package main

import (
	"fmt"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/metrics"
	"piggyback/internal/sim"
)

// runTable2 reproduces Table 2: client log characteristics. The paper's
// absolute counts are quoted for comparison; synthetic logs are scaled
// down, so the shape to check is the relative ordering (Digital larger in
// requests/servers/resources, AT&T longer in days).
func runTable2(l *lab) {
	paper := map[string][3]string{
		"digital": {"6.41M", "57,832", "2,083,491"},
		"att":     {"1.11M", "18,005", "521,330"},
	}
	tbl := &metrics.Table{Header: []string{"Client Log", "Requests", "Distinct Servers", "Unique Resources", "| paper:", "Requests", "Servers", "Resources"}}
	for _, name := range []string{"digital", "att"} {
		log := l.clientLog(name)
		p := paper[name]
		tbl.AddRow(name+"-like", len(log), log.Servers(), log.UniqueResources(), "|", p[0], p[1], p[2])
	}
	fmt.Print(tbl.String())
	for _, name := range []string{"digital", "att"} {
		log := l.clientLog(name)
		fmt.Printf("%s-like: %d clients, %.1f days, mean response %.0f B\n",
			name, log.Clients(), float64(log.Duration())/86400, log.MeanSize())
	}
}

// runTable3 reproduces Table 3: server log characteristics.
func runTable3(l *lab) {
	paper := map[string][4]string{
		"aiusa":   {"180,324", "7,627", "23.64", "1,102"},
		"marimba": {"222,393", "24,103", "9.23", "94"},
		"apache":  {"2,916,549", "271,687", "10.73", "788"},
		"sun":     {"13,037,895", "218,518", "59.66", "29,436"},
	}
	tbl := &metrics.Table{Header: []string{"Server Log", "Requests", "Clients", "Req/Source", "Resources", "| paper:", "Requests", "Clients", "Req/Src", "Resources"}}
	for _, name := range []string{"aiusa", "marimba", "apache", "sun"} {
		log := l.serverLogRaw(name)
		perSrc := float64(len(log)) / float64(log.Clients())
		p := paper[name]
		tbl.AddRow(name+"-like", len(log), log.Clients(), perSrc, log.UniqueResources(), "|", p[0], p[1], p[2], p[3])
	}
	fmt.Print(tbl.String())
	for _, name := range []string{"aiusa", "marimba", "apache", "sun"} {
		raw := l.serverLogRaw(name)
		popular := l.serverLog(name)
		fmt.Printf("%s-like: top-10%% of resources draw %s of requests (paper: ~85%%); "+
			"resources with >=10 accesses cover %s of requests (paper: 98-99%%)\n",
			name, metrics.Pct(raw.TopResourceShare(0.10)),
			metrics.Pct(float64(len(popular))/float64(len(raw))))
	}
}

// runTable1 reproduces Table 1: update fraction for probability-based
// volumes at p_t = 0.25, effective threshold 0.2, T = 300, C = 7200.
func runTable1(l *lab) {
	paper := map[string][4]string{
		"aiusa":  {"6.5%", "3.6% (55%)", "2.0% (31%)", "2.9"},
		"apache": {"11.5%", "5.4% (47%)", "2.2% (19%)", "1.6"},
		"sun":    {"23.7%", "9.6% (41%)", "11.0% (46%)", "5.0"},
	}
	tbl := &metrics.Table{Header: []string{
		"Server Log", "prev<2hr", "prev<5min", "piggyback-updated", "avg piggyback",
		"| paper:", "prev<2hr", "prev<5min", "updated", "avg"}}
	for _, name := range []string{"aiusa", "apache", "sun"} {
		log := l.serverLog(name)
		vols := l.baseProb(name).WithPt(0.25).Thin(log, 0.2)
		r := sim.New(sim.Config{T: 300, C: 7200, Provider: vols}).Run(log)
		prevC := r.FracPrevWithinC()
		prevT := r.FracPrevWithinT()
		updTC := r.FracUpdatedTC()
		pctOf := func(x float64) string {
			if prevC == 0 {
				return "-"
			}
			return metrics.Pct(x / prevC)
		}
		p := paper[name]
		tbl.AddRow(name+"-like",
			metrics.Pct(prevC),
			fmt.Sprintf("%s (%s)", metrics.Pct(prevT), pctOf(prevT)),
			fmt.Sprintf("%s (%s)", metrics.Pct(updTC), pctOf(updTC)),
			r.AvgPiggybackSize(),
			"|", p[0], p[1], p[2], p[3])
	}
	fmt.Print(tbl.String())
	fmt.Println("update rate = prev<5min + piggyback-updated (paper: Sun 20.6%)")
}

// runAblation exercises the design choices DESIGN.md calls out.
func runAblation(l *lab) {
	log := l.serverLog("aiusa")

	// 1. Sampled pair counters: memory vs accuracy.
	fmt.Println("-- sampled counter creation (Sec 3.3.1) --")
	exact := core.NewProbBuilder(core.ProbConfig{T: 300, Pt: 0.25})
	exact.ObserveLog(log)
	tbl := &metrics.Table{Header: []string{"builder", "pair counters", "fraction predicted", "avg piggyback"}}
	ev := exact.Build(0.02)
	ev.Pt = 0.25
	r := sim.New(sim.Config{T: 300, Provider: ev}).Run(log)
	tbl.AddRow("exact", exact.NumCounters(), r.FractionPredicted(), r.AvgPiggybackSize())
	for _, k := range []float64{4, 1} {
		b := core.NewProbBuilder(core.ProbConfig{T: 300, Pt: 0.25, Sampling: true, SampleK: k, UnbiasedInit: true, Seed: 11})
		b.ObserveLog(log)
		v := b.Build(0.02)
		v.Pt = 0.25
		r := sim.New(sim.Config{T: 300, Provider: v}).Run(log)
		tbl.AddRow(fmt.Sprintf("sampled K=%g", k), b.NumCounters(), r.FractionPredicted(), r.AvgPiggybackSize())
	}
	fmt.Print(tbl.String())

	// 2. Move-to-front vs FIFO ordering in directory volumes.
	fmt.Println("-- move-to-front vs FIFO (Sec 3.2.1) --")
	// A tight server-side cap makes ordering matter: with room for only
	// 5 elements, move-to-front keeps the hot ones in the message.
	tbl2 := &metrics.Table{Header: []string{"ordering", "fraction predicted", "true prediction", "avg piggyback"}}
	for _, mtf := range []bool{true, false} {
		d := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: mtf, ServerMaxPiggy: 5})
		r := sim.New(sim.Config{T: 300, Provider: d, Feed: true}).Run(log)
		name := "fifo"
		if mtf {
			name = "move-to-front"
		}
		tbl2.AddRow(name, r.FractionPredicted(), r.TruePredictionFraction(), r.AvgPiggybackSize())
	}
	fmt.Print(tbl2.String())

	// 3. Replacement policies with and without piggyback pinning.
	fmt.Println("-- cache replacement (Sec 4) --")
	capacity := int64(64 << 10) // tight cache to force evictions
	tbl3 := &metrics.Table{Header: []string{"policy", "hit rate", "byte hit rate", "evictions", "pinned saves"}}
	newDir := func() core.Provider {
		return core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	}
	runs := []struct {
		name     string
		policy   cache.Policy
		provider core.Provider
	}{
		{"lru", cache.LRU{}, nil},
		{"lfu", cache.LFU{}, nil},
		{"gdsize", &cache.GDSize{}, nil},
		{"piggyback-lru", cache.PiggybackLRU{}, newDir()},
		{"server-gd", &cache.ServerGD{}, newDir()},
	}
	for _, rn := range runs {
		res := sim.ReplayReplacement(log, capacity, rn.policy, rn.provider, 300)
		tbl3.AddRow(rn.name, res.HitRate, res.ByteHitRate, res.Evictions, res.PinnedSaves)
	}
	fmt.Print(tbl3.String())
}
