// Command experiments regenerates every table and figure of the paper's
// evaluation (§2.3, §3, §4) on synthetic workloads shaped like the
// original logs. Each experiment prints the paper's reported values next
// to the measured ones so the shape of every result can be compared.
//
// Usage:
//
//	experiments [-scale S] [experiment...]
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 table1 table2
// table3 sec23 sec4 ablation hier seeds e2e, or "all" (the default).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/trace"
	"piggyback/internal/tracegen"
)

// lab carries shared state: generated logs are cached so one process run
// reuses them across experiments.
type lab struct {
	scale   float64
	srvLogs map[string]trace.Log
	srvSite map[string]*tracegen.Site
	cliLogs map[string]trace.Log
	probs   map[string]*core.ProbVolumes // built base volumes per profile
}

func newLab(scale float64) *lab {
	return &lab{
		scale:   scale,
		srvLogs: make(map[string]trace.Log),
		srvSite: make(map[string]*tracegen.Site),
		cliLogs: make(map[string]trace.Log),
		probs:   make(map[string]*core.ProbVolumes),
	}
}

// serverLogRaw returns the (cached) synthetic server log for a profile
// name, cleaned but with unpopular resources retained (Table 3 reports raw
// log characteristics).
func (l *lab) serverLogRaw(name string) trace.Log {
	key := name + "/raw"
	if log, ok := l.srvLogs[key]; ok {
		return log
	}
	cfg := l.profile(name)
	log, site := tracegen.GenerateServerLog(cfg)
	log = log.Clean()
	l.srvLogs[key] = log
	l.srvSite[name] = site
	return log
}

// serverLog returns the analysis log: raw log restricted to resources
// accessed at least ten times (App. A: these account for 98-99% of
// requests in the original logs).
func (l *lab) serverLog(name string) trace.Log {
	if log, ok := l.srvLogs[name]; ok {
		return log
	}
	log := l.serverLogRaw(name).FilterPopular(10)
	l.srvLogs[name] = log
	return log
}

func (l *lab) profile(name string) tracegen.SiteConfig {
	switch name {
	case "aiusa":
		return tracegen.ProfileAIUSA(l.scale)
	case "apache":
		return tracegen.ProfileApache(l.scale)
	case "sun":
		return tracegen.ProfileSun(l.scale)
	case "marimba":
		return tracegen.ProfileMarimba(l.scale)
	default:
		panic("unknown profile " + name)
	}
}

// clientLog returns the (cached) synthetic client log for att/digital.
func (l *lab) clientLog(name string) trace.Log {
	if log, ok := l.cliLogs[name]; ok {
		return log
	}
	var cfg tracegen.ClientLogConfig
	switch name {
	case "att":
		cfg = tracegen.ProfileATT(l.scale)
	case "digital":
		cfg = tracegen.ProfileDigital(l.scale)
	default:
		panic("unknown client profile " + name)
	}
	log, _ := tracegen.GenerateClientLog(cfg)
	log = log.Clean()
	l.cliLogs[name] = log
	return log
}

// baseProb builds (and caches) the base probability volumes for a server
// profile: T=300, a low base threshold so query-time sweeps can raise it.
func (l *lab) baseProb(name string) *core.ProbVolumes {
	if v, ok := l.probs[name]; ok {
		return v
	}
	log := l.serverLog(name)
	b := core.NewProbBuilder(core.ProbConfig{T: 300, Pt: 0.05})
	b.ObserveLog(log)
	v := b.Build(0.02)
	l.probs[name] = v
	return v
}

type experiment struct {
	name string
	desc string
	run  func(*lab)
}

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale factor (1.0 = full scaled-down profiles)")
	flag.Parse()

	experiments := []experiment{
		{"table2", "Table 2: client log characteristics", runTable2},
		{"table3", "Table 3: server log characteristics", runTable3},
		{"fig1", "Fig 1: directory-prefix locality (AT&T-like client log)", runFig1},
		{"fig2", "Fig 2: piggyback size vs access filter (directory volumes)", runFig2},
		{"fig3", "Fig 3: accuracy of directory volumes", runFig3},
		{"fig4", "Fig 4: RPV minimum time between piggybacks (Apache-like)", runFig4},
		{"fig5", "Fig 5: fraction predicted vs probability threshold (Sun-like)", runFig5},
		{"fig6", "Fig 6: fraction predicted vs piggyback size (probability volumes)", runFig6},
		{"fig7", "Fig 7: true predictions vs piggyback size (probability volumes)", runFig7},
		{"fig8", "Fig 8: precision vs recall", runFig8},
		{"table1", "Table 1: update fraction for probability volumes", runTable1},
		{"sec23", "Sec 2.3: piggyback wire overheads", runSec23},
		{"sec4", "Sec 4: proxy applications (coherency, prefetching, replacement)", runSec4},
		{"ablation", "Ablations: sampling, MTF vs FIFO, replacement policies", runAblation},
		{"hier", "Extensions: hierarchical caching + popular volume (Sec 1, Sec 5)", runHier},
		{"seeds", "Robustness: headline metrics across workload seeds", runSeeds},
		{"e2e", "End-to-end protocol over loopback TCP", runE2E},
	}

	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, e := range experiments {
			want = append(want, e.name)
		}
	}
	byName := make(map[string]experiment, len(experiments))
	for _, e := range experiments {
		byName[e.name] = e
	}

	l := newLab(*scale)
	for _, name := range want {
		e, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			names := make([]string, 0, len(byName))
			for n := range byName {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "available: %v\n", names)
			os.Exit(2)
		}
		fmt.Printf("==== %s — %s (scale %.2f) ====\n", e.name, e.desc, *scale)
		start := time.Now()
		e.run(l)
		fmt.Printf("---- %s done in %v ----\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}
