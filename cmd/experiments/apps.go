package main

import (
	"context"
	"fmt"
	"net"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/httpwire"
	"piggyback/internal/metrics"
	"piggyback/internal/proxy"
	"piggyback/internal/server"
	"piggyback/internal/sim"
	"piggyback/internal/tracegen"
)

// runSec23 reproduces the §2.3 wire-overhead arithmetic: element size,
// message size for the Sun workload, and the packet-savings argument.
func runSec23(l *lab) {
	log := l.serverLog("sun")
	vols := l.baseProb("sun").WithPt(0.25).Thin(log, 0.2)
	r := sim.New(sim.Config{T: 300, Provider: vols}).Run(log)

	// Element cost: URL length + 8B Last-Modified + 8B size.
	var urlBytes, n int
	seen := map[string]bool{}
	for i := range log {
		if !seen[log[i].URL] {
			seen[log[i].URL] = true
			urlBytes += len(log[i].URL)
			n++
		}
	}
	avgURL := float64(urlBytes) / float64(n)
	tbl := &metrics.Table{Header: []string{"quantity", "measured", "paper"}}
	tbl.AddRow("avg URL length (B)", avgURL, "~50")
	tbl.AddRow("bytes per element", avgURL+16, "66")
	tbl.AddRow("avg piggyback elements (sun-like)", r.AvgPiggybackSize(), "6")
	tbl.AddRow("avg piggyback message (B)", r.AvgPiggybackBytes(), "398")
	tbl.AddRow("mean response size (B)", log.MeanSize(), "13900")
	tbl.AddRow("median response size (B)", log.MedianSize(), "1530")
	fmt.Print(tbl.String())

	// Packet accounting: a piggyback under ~1460B of spare MSS often
	// rides free; every future TCP connection obviated saves >= 2 pkts.
	free := 0
	if r.AvgPiggybackBytes() < 1460 {
		free = 1
	}
	fmt.Printf("piggyback fits alongside the response without a new packet: %v;\n", free == 1)
	fmt.Printf("predicted requests that could reuse/skip connections: %s of accesses\n",
		metrics.Pct(r.FractionPredicted()))
}

// runSec4 reproduces the §4 application numbers: cache coherency a-priori
// refreshes, prefetching tradeoffs, and informed-fetching coverage.
func runSec4(l *lab) {
	fmt.Println("-- coherency: a-priori refreshment of cached requests --")
	tbl := &metrics.Table{Header: []string{"log", "cached (<2h)", "quick repeat (<5m, of cached)", "a-priori refresh (of cached)", "avg piggyback", "| paper refresh", "22-46%"}}
	for _, name := range []string{"aiusa", "apache", "sun"} {
		log := l.serverLog(name)
		vols := l.baseProb(name).WithPt(0.25).Thin(log, 0.2)
		r := sim.New(sim.Config{T: 300, C: 7200, Provider: vols}).Run(log)
		rep := sim.Coherency(r)
		tbl.AddRow(name+"-like", metrics.Pct(rep.CachedShare), metrics.Pct(rep.QuickRepeatShare),
			metrics.Pct(rep.APrioriRefreshShare), rep.AvgPiggybackSize, "|", "")
	}
	fmt.Print(tbl.String())
	fmt.Println("(paper: 40-50% of cached requests repeat within 5 minutes; best volumes")
	fmt.Println(" refresh an additional 22-46% with piggyback sizes of only 1-5)")

	fmt.Println("-- prefetching: recall vs futile fetches --")
	tbl2 := &metrics.Table{Header: []string{"log", "p_t", "prefetchable", "futile fetches", "bandwidth increase"}}
	for _, name := range []string{"apache", "sun"} {
		log := l.serverLog(name)
		eff2 := l.baseProb(name).Thin(log, 0.2)
		for _, p := range sim.PrefetchTradeoff(log, eff2, []float64{0.1, 0.25, 0.5, 0.7}) {
			tbl2.AddRow(name+"-like", p.Threshold, metrics.Pct(p.Recall),
				metrics.Pct(p.FutileFraction), metrics.Pct(p.BandwidthIncrease))
		}
	}
	fmt.Print(tbl2.String())
	fmt.Println("(paper: Apache 40% prefetched at 20% futile (10% bandwidth) or 55% at 50%;")
	fmt.Println(" Sun 30% at 15% futile (5% bandwidth) or 70% at 50% (35%))")

	fmt.Println("-- informed fetching: requests with meta-attributes known in advance --")
	tbl3 := &metrics.Table{Header: []string{"log", "fraction informed", "avg piggyback"}}
	for _, name := range []string{"aiusa", "apache", "sun"} {
		log := l.serverLog(name)
		vols := l.baseProb(name).WithPt(0.1).Thin(log, 0.2)
		r := sim.New(sim.Config{T: 300, Provider: vols}).Run(log)
		tbl3.AddRow(name+"-like", metrics.Pct(r.FractionPredicted()), r.AvgPiggybackSize())
	}
	fmt.Print(tbl3.String())
	fmt.Println("(paper: best volumes inform 55-80% of requests with very small piggybacks)")
}

// runE2E drives the full protocol stack over loopback TCP: a generated
// site served by a cooperating origin, a caching proxy with prefetching,
// and a client replaying part of the trace — then repeats the exchange
// through a transparent volume center in front of a non-cooperating origin.
func runE2E(l *lab) {
	cfg := tracegen.SiteConfig{
		Name: "e2e", Seed: 77, Pages: 40, Dirs: 5, MaxDepth: 2,
		MeanImagesPerPage: 2, Clients: 10, Requests: 1200,
		Duration: 6 * 3600,
	}
	log, site := tracegen.GenerateServerLog(cfg)
	now := log[0].Time
	clock := func() int64 { return now }

	st := server.NewStore()
	for _, r := range site.ResourceTable() {
		st.Put(server.Resource{URL: r.URL, Size: r.Size, LastModified: r.LastModifiedAt(now)})
	}
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10, PartitionByType: true})
	origin := server.New(st, vols, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen:", err)
		return
	}
	osrv := &httpwire.Server{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	// Two proxies share the origin: the server's volumes aggregate
	// access patterns across proxies, so each proxy's piggybacks can
	// name resources it has never seen — the prefetching case.
	var proxies [2]*proxy.Proxy
	var addrs [2]string
	for i := range proxies {
		px := proxy.New(proxy.Config{
			Delta:         900,
			Clock:         clock,
			Resolve:       func(string) (string, error) { return ol.Addr().String(), nil },
			Prefetch:      true,
			ReportHits:    true,
			DeltaEncoding: true,
		})
		defer px.Close()
		pl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Println("listen:", err)
			return
		}
		psrv := &httpwire.Server{Handler: px, IdleTimeout: 5 * time.Second}
		go psrv.Serve(pl)
		defer psrv.Close()
		proxies[i] = px
		addrs[i] = pl.Addr().String()
	}

	client := httpwire.NewClient()
	defer client.Close()
	replay := log
	if len(replay) > 800 {
		replay = replay[:800]
	}
	start := time.Now()
	resources := site.ResourceTable()
	for i := range replay {
		now = replay[i].Time
		// Each trace client is homed at one of the two proxies.
		which := 0
		if len(replay[i].Client) > 0 && replay[i].Client[len(replay[i].Client)-1]%2 == 1 {
			which = 1
		}
		req := httpwire.NewRequest("GET", "http://www.e2e.test"+replay[i].URL)
		if _, err := client.DoContext(context.Background(), addrs[which], req); err != nil {
			fmt.Println("client request:", err)
			return
		}
		if i%10 == 0 {
			proxies[which].DrainPrefetchesContext(context.Background(), 4)
		}
		// Content churn: a resource changes every ~40 requests, so
		// stale validations exercise the delta-encoding path.
		if i%40 == 39 {
			st.Modify(resources[i%len(resources)].URL, now, 0)
		}
	}
	elapsed := time.Since(start)

	os := origin.Stats()
	tbl := &metrics.Table{Header: []string{"metric", "proxy A", "proxy B"}}
	pa, pb := proxies[0].Stats(), proxies[1].Stats()
	tbl.AddRow("client requests", pa.ClientRequests, pb.ClientRequests)
	tbl.AddRow("served fresh from cache", pa.FreshHits, pb.FreshHits)
	tbl.AddRow("validations (IMS)", pa.Validations, pb.Validations)
	tbl.AddRow("piggybacks received", pa.PiggybacksReceived, pb.PiggybacksReceived)
	tbl.AddRow("piggyback refreshes", pa.Refreshes, pb.Refreshes)
	tbl.AddRow("prefetches", pa.Prefetches, pb.Prefetches)
	tbl.AddRow("useful prefetches", pa.UsefulPrefetches, pb.UsefulPrefetches)
	tbl.AddRow("delta updates (bytes saved)",
		fmt.Sprintf("%d (%d)", pa.DeltaUpdates, pa.DeltaBytesSaved),
		fmt.Sprintf("%d (%d)", pb.DeltaUpdates, pb.DeltaBytesSaved))
	tbl.AddRow("cache hits reported", pa.HitsReported, pb.HitsReported)
	tbl.AddRow("cache hit rate", proxies[0].CacheHitRate(), proxies[1].CacheHitRate())
	fmt.Print(tbl.String())
	fmt.Printf("origin requests: %d for %d client requests; piggybacks sent: %d; wall time %v\n",
		os.Requests, len(replay), os.PiggybacksSent, elapsed.Round(time.Millisecond))
	if pa.PiggybacksReceived+pb.PiggybacksReceived == 0 {
		fmt.Println("WARNING: no piggybacks flowed end to end")
	}
}
