package main

import (
	"fmt"
	"math"

	"piggyback/internal/core"
	"piggyback/internal/metrics"
	"piggyback/internal/sim"
	"piggyback/internal/tracegen"
)

// runSeeds checks that the headline results are properties of the workload
// *shape*, not artifacts of one random seed: the AIUSA-like profile is
// regenerated under several seeds and the key metrics re-measured.
func runSeeds(l *lab) {
	seeds := []int64{0, 101, 202, 303}
	type row struct {
		pred, prec, size, updTC float64
	}
	var rows []row
	for _, off := range seeds {
		cfg := tracegen.ProfileAIUSA(l.scale)
		cfg.Seed += off
		log, _ := tracegen.GenerateServerLog(cfg)
		log = log.Clean().FilterPopular(10)
		b := core.NewProbBuilder(core.ProbConfig{T: 300, Pt: 0.05})
		b.ObserveLog(log)
		vols := b.Build(0.02).WithPt(0.25).Thin(log, 0.2)
		r := sim.New(sim.Config{T: 300, C: 7200, Provider: vols}).Run(log)
		rows = append(rows, row{
			pred:  r.FractionPredicted(),
			prec:  r.TruePredictionFraction(),
			size:  r.AvgPiggybackSize(),
			updTC: r.FracUpdatedTC(),
		})
	}
	tbl := &metrics.Table{Header: []string{"seed offset", "fraction predicted", "true prediction", "avg piggyback", "piggyback-updated"}}
	for i, r := range rows {
		tbl.AddRow(seeds[i], r.pred, r.prec, r.size, r.updTC)
	}
	fmt.Print(tbl.String())

	meanSD := func(get func(row) float64) (float64, float64) {
		var sum, sq float64
		for _, r := range rows {
			v := get(r)
			sum += v
			sq += v * v
		}
		n := float64(len(rows))
		mean := sum / n
		return mean, math.Sqrt(sq/n - mean*mean)
	}
	mp, sp := meanSD(func(r row) float64 { return r.pred })
	mt, st := meanSD(func(r row) float64 { return r.prec })
	fmt.Printf("fraction predicted: %.3f ± %.3f; true prediction: %.3f ± %.3f over %d seeds\n",
		mp, sp, mt, st, len(seeds))
	if sp < 0.05 && st < 0.05 {
		fmt.Println("headline metrics are stable across workload seeds")
	} else {
		fmt.Println("WARNING: metrics vary noticeably across seeds")
	}
}
