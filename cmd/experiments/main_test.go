package main

import (
	"testing"
)

func TestLabCachesLogs(t *testing.T) {
	l := newLab(0.02)
	a := l.serverLog("aiusa")
	b := l.serverLog("aiusa")
	if len(a) == 0 {
		t.Fatal("empty log")
	}
	if &a[0] != &b[0] {
		t.Error("serverLog not cached")
	}
	raw := l.serverLogRaw("aiusa")
	if len(raw) < len(a) {
		t.Errorf("raw log (%d) smaller than filtered (%d)", len(raw), len(a))
	}
}

func TestLabProfiles(t *testing.T) {
	l := newLab(0.02)
	for _, name := range []string{"aiusa", "apache", "sun", "marimba"} {
		if cfg := l.profile(name); cfg.Requests <= 0 {
			t.Errorf("profile %s has no requests", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown profile did not panic")
		}
	}()
	l.profile("nope")
}

func TestLabClientLogs(t *testing.T) {
	l := newLab(0.02)
	for _, name := range []string{"att", "digital"} {
		log := l.clientLog(name)
		if len(log) == 0 {
			t.Fatalf("%s: empty", name)
		}
		if log.Servers() < 2 {
			t.Errorf("%s: %d servers", name, log.Servers())
		}
	}
}

func TestLabBaseProbCached(t *testing.T) {
	l := newLab(0.02)
	v1 := l.baseProb("aiusa")
	v2 := l.baseProb("aiusa")
	if v1 != v2 {
		t.Error("baseProb not cached")
	}
	if v1.NumPairs() == 0 {
		t.Error("no pairs built")
	}
}

// TestExperimentsRunAll smoke-runs every experiment at a tiny scale; each
// must complete without panicking.
func TestExperimentsRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	l := newLab(0.02)
	for _, e := range []struct {
		name string
		run  func(*lab)
	}{
		{"table2", runTable2},
		{"table3", runTable3},
		{"fig1", runFig1},
		{"fig4", runFig4},
		{"fig5", runFig5},
		{"table1", runTable1},
		{"sec23", runSec23},
		{"hier", runHier},
	} {
		t.Run(e.name, func(t *testing.T) { e.run(l) })
	}
}
