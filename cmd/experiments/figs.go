package main

import (
	"fmt"

	"piggyback/internal/core"
	"piggyback/internal/metrics"
	"piggyback/internal/sim"
	"piggyback/internal/trace"
)

// dirSim replays a server log against fresh directory volumes.
func dirSim(log trace.Log, level, minAccess, maxPiggy int, useRPV bool, rpvTimeout int64, T int64) sim.Result {
	d := core.NewDirVolumes(core.DirConfig{Level: level, MTF: true, ServerMaxPiggy: maxPiggy})
	return sim.New(sim.Config{
		T: T, C: 7200,
		Provider:   d,
		Feed:       true,
		BaseFilter: core.Filter{MinAccess: minAccess},
		UseRPV:     useRPV,
		RPVTimeout: rpvTimeout,
	}).Run(log)
}

// runFig1 reproduces Fig 1: spacing of requests within directory-based
// volumes for an AT&T-like proxy trace.
func runFig1(l *lab) {
	log := l.clientLog("att")
	levels := []int{0, 1, 2, 3, 4}
	paperSeen := []string{"98.5%", "91.8%", "78.0%", "66.3%", "61.6%"}
	paperMed := []string{"0.9s", "1.5s", "19.7s", "766.2s", "1812.0s"}

	fmt.Println("-- Fig 1(a): directory prefix statistics --")
	tbl := &metrics.Table{Header: []string{"Level", "% Seen Before", "Median Interarrival", "| paper:", "%Seen", "Median"}}
	stats := sim.AnalyzeLocality(log, levels, true)
	for i, st := range stats {
		tbl.AddRow(st.Level, metrics.Pct(st.SeenBefore),
			fmt.Sprintf("%.1fs", st.MedianInterarrival),
			"|", paperSeen[i], paperMed[i])
	}
	fmt.Print(tbl.String())

	fmt.Println("-- Fig 1(b): CDF of interarrival times (P[gap <= x]) --")
	cdfXs := []float64{1, 10, 50, 100, 1000, 7200}
	tbl2 := &metrics.Table{Header: []string{"Level", "1s", "10s", "50s", "100s", "1000s", "2hr"}}
	for _, st := range stats {
		row := []interface{}{st.Level}
		for _, x := range cdfXs {
			row = append(row, metrics.Pct(st.PredictableWithin(x)))
		}
		tbl2.AddRow(row...)
	}
	fmt.Print(tbl2.String())
	two := stats[2]
	fmt.Printf("level-2 volumes: %s of accesses within 50s of a same-volume request (paper: >55%%); %s within 2hr (paper: >82%%)\n",
		metrics.Pct(two.PredictableWithin(50)), metrics.Pct(two.PredictableWithin(7200)))

	fmt.Println("-- Fig 1 with embedded images removed --")
	noEmb := sim.AnalyzeLocality(log, levels, false)
	tbl3 := &metrics.Table{Header: []string{"Level", "% Seen Before", "Median Interarrival", "median change"}}
	for i, st := range noEmb {
		change := "-"
		if stats[i].MedianInterarrival > 0 {
			change = fmt.Sprintf("%+.0f%%", 100*(st.MedianInterarrival-stats[i].MedianInterarrival)/stats[i].MedianInterarrival)
		}
		tbl3.AddRow(st.Level, metrics.Pct(st.SeenBefore), fmt.Sprintf("%.1fs", st.MedianInterarrival), change)
	}
	fmt.Print(tbl3.String())
	fmt.Println("(paper: medians rise 10-20% and the distributions keep their shape)")
}

// fig2Filters is the access-filter sweep. The paper sweeps 1..5000 on logs
// of up to 13M requests; scaled-down logs hit the same relative thresholds
// at proportionally smaller absolute counts, so the axis stops at 1000.
var fig2Filters = []int{1, 2, 5, 10, 25, 50, 100, 250, 1000}

// runFig2 reproduces Fig 2: average piggyback size vs access filter for
// directory-based volumes, AIUSA-like and Sun-like logs.
func runFig2(l *lab) {
	for _, name := range []string{"aiusa", "sun"} {
		log := l.serverLog(name)
		levels := []int{0, 1, 2}
		if name == "sun" {
			// The paper skips 0-level for Sun: it would be a single
			// 29,436-element volume.
			levels = []int{1, 2, 3}
		}
		fmt.Printf("-- Fig 2 (%s-like): avg piggyback size vs access filter --\n", name)
		header := []string{"filter"}
		for _, lv := range levels {
			header = append(header, fmt.Sprintf("level %d", lv))
		}
		tbl := &metrics.Table{Header: header}
		for _, f := range fig2Filters {
			row := []interface{}{f}
			for _, lv := range levels {
				r := dirSim(log, lv, f, 0, false, 0, 300)
				size := r.AvgPiggybackSize()
				if size > 200 {
					// Paper: "graphed the region with an average
					// piggyback size of less than 200".
					row = append(row, fmt.Sprintf(">200 (%.0f)", size))
				} else {
					row = append(row, size)
				}
			}
			tbl.AddRow(row...)
		}
		fmt.Print(tbl.String())
	}
	fmt.Println("(paper: sizes drop dramatically with deeper prefixes and stronger filters;")
	fmt.Println(" Sun 1-level < 20 elements at filter 5000)")
}

// runFig3 reproduces Fig 3: accuracy of directory-based volumes — fraction
// predicted and update fraction vs average piggyback size.
func runFig3(l *lab) {
	for _, name := range []string{"sun", "aiusa"} {
		log := l.serverLog(name)
		levels := []int{1, 2}
		fmt.Printf("-- Fig 3(a) (%s-like): fraction predicted vs avg piggyback size --\n", name)
		tbl := &metrics.Table{Header: []string{"level", "filter", "avg piggyback", "fraction predicted"}}
		for _, lv := range levels {
			for _, f := range fig2Filters {
				r := dirSim(log, lv, f, 0, false, 0, 300)
				if r.AvgPiggybackSize() > 200 {
					continue
				}
				tbl.AddRow(lv, f, r.AvgPiggybackSize(), r.FractionPredicted())
			}
		}
		fmt.Print(tbl.String())

		fmt.Printf("-- Fig 3(b) (%s-like): update fraction (5-min and 15-min windows) --\n", name)
		tbl2 := &metrics.Table{Header: []string{"level", "filter", "avg piggyback", "update (T=5min)", "update (T=15min)"}}
		for _, lv := range levels {
			for _, f := range []int{10, 100, 1000} {
				r5 := dirSim(log, lv, f, 0, false, 0, 300)
				r15 := dirSim(log, lv, f, 0, false, 0, 900)
				if r5.AvgPiggybackSize() > 200 {
					continue
				}
				tbl2.AddRow(lv, f, r5.AvgPiggybackSize(), r5.UpdateFraction(), r15.UpdateFraction())
			}
		}
		fmt.Print(tbl2.String())
	}
	fmt.Println("(paper: Sun 1-/2-level predict ~60% at ~30 elements; AIUSA peaks ~80% with")
	fmt.Println(" smaller piggybacks; Sun update ~20% at 5min, slightly more at 15min;")
	fmt.Println(" AIUSA/Apache update 5-10%)")
}

// runFig4 reproduces Fig 4: enforcing a minimum time between piggybacks via
// the RPV list, Apache-like log.
func runFig4(l *lab) {
	log := l.serverLog("apache")
	timeouts := []int64{0, 5, 10, 30, 60, 120}
	fmt.Println("-- Fig 4 (apache-like): RPV minimum time between piggybacks --")
	tbl := &metrics.Table{Header: []string{"level", "filter", "rpv timeout", "avg size/response", "fraction predicted", "piggyback msgs", "size/msg"}}
	for _, lv := range []int{0, 1} {
		for _, f := range []int{10, 50} {
			for _, to := range timeouts {
				r := dirSim(log, lv, f, 0, to > 0, to, 300)
				// Fig 4(a)'s "average piggyback size" spreads the
				// elements over every response: the RPV list thins
				// whole messages, not elements within them.
				tbl.AddRow(lv, f, to, r.AvgPiggybackSizePerRequest(), r.FractionPredicted(), r.PiggybackMessages, r.AvgPiggybackSize())
			}
		}
	}
	fmt.Print(tbl.String())
	fmt.Println("(paper: RPV sharply cuts piggyback traffic with no significant recall loss;")
	fmt.Println(" a 30-second minimum achieves most of the reduction)")
}

var ptSweep = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.7, 0.9}

// probEval runs one probability-volume simulation.
func probEval(log trace.Log, v *core.ProbVolumes) sim.Result {
	return sim.New(sim.Config{T: 300, C: 7200, Provider: v}).Run(log)
}

// runFig5 reproduces Fig 5: fraction predicted vs probability threshold,
// and the distribution of implication probabilities, Sun-like log.
func runFig5(l *lab) {
	log := l.serverLog("sun")
	base := l.baseProb("sun")
	eff1 := base.Thin(log, 0.1)
	eff2 := base.Thin(log, 0.2)
	combined := base.RestrictSameDir(1)

	fmt.Println("-- Fig 5(a) (sun-like): fraction predicted vs probability threshold --")
	tbl := &metrics.Table{Header: []string{"p_t", "base", "effective 0.1", "effective 0.2", "combined (1-level)"}}
	for _, pt := range ptSweep {
		tbl.AddRow(pt,
			probEval(log, base.WithPt(pt)).FractionPredicted(),
			probEval(log, eff1.WithPt(pt)).FractionPredicted(),
			probEval(log, eff2.WithPt(pt)).FractionPredicted(),
			probEval(log, combined.WithPt(pt)).FractionPredicted())
	}
	fmt.Print(tbl.String())
	fmt.Println("(paper: thinning barely lowers the prediction rate)")

	fmt.Println("-- Fig 5(b): distribution of implication probabilities --")
	ps := base.ProbDistribution()
	cdf := metrics.NewCDF(ps)
	tbl2 := &metrics.Table{Header: []string{"p", "P[p_s|r <= p]"}}
	for _, x := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		tbl2.AddRow(x, cdf.P(x))
	}
	fmt.Print(tbl2.String())
	fmt.Printf("pairs: %d over %d resources\n", base.NumPairs(), base.Resources())

	st := base.WithPt(0.2).Stats(0.2)
	fmt.Printf("volume structure at p_t=0.2, T=300: self-members %s, symmetric %s (paper: ~1%% self, 3-18%% symmetric)\n",
		metrics.Pct(float64(st.SelfMembers)/float64(maxInt(st.Resources, 1))),
		metrics.Pct(float64(st.SymmetricPairs)/float64(maxInt(st.Pairs, 1))))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runFig6 reproduces Fig 6: fraction predicted vs average piggyback size
// for probability volumes, AIUSA-like and Sun-like logs.
func runFig6(l *lab) {
	for _, name := range []string{"aiusa", "sun"} {
		log := l.serverLog(name)
		base := l.baseProb(name)
		eff2 := base.Thin(log, 0.2)
		combined := base.RestrictSameDir(1)
		fmt.Printf("-- Fig 6 (%s-like): recall vs avg piggyback size --\n", name)
		tbl := &metrics.Table{Header: []string{"p_t", "variant", "avg piggyback", "fraction predicted"}}
		for _, pt := range ptSweep {
			for _, v := range []struct {
				name string
				vols *core.ProbVolumes
			}{{"base", base}, {"effective 0.2", eff2}, {"combined", combined}} {
				r := probEval(log, v.vols.WithPt(pt))
				tbl.AddRow(pt, v.name, r.AvgPiggybackSize(), r.FractionPredicted())
			}
		}
		fmt.Print(tbl.String())
	}
	fmt.Println("(paper: probability volumes reach a given recall with smaller piggybacks than")
	fmt.Println(" directory volumes (Fig 3a); thinning cuts size further, most for Sun)")
}

// runFig7 reproduces Fig 7: true prediction vs average piggyback size.
func runFig7(l *lab) {
	for _, name := range []string{"aiusa", "sun"} {
		log := l.serverLog(name)
		base := l.baseProb(name)
		eff2 := base.Thin(log, 0.2)
		fmt.Printf("-- Fig 7 (%s-like): precision vs avg piggyback size --\n", name)
		tbl := &metrics.Table{Header: []string{"p_t", "variant", "avg piggyback", "true prediction"}}
		for _, pt := range ptSweep {
			for _, v := range []struct {
				name string
				vols *core.ProbVolumes
			}{{"base", base}, {"effective 0.2", eff2}} {
				r := probEval(log, v.vols.WithPt(pt))
				tbl.AddRow(pt, v.name, r.AvgPiggybackSize(), r.TruePredictionFraction())
			}
		}
		fmt.Print(tbl.String())
	}
	fmt.Println("(paper: smaller piggybacks should be more precise; the Sun base curve is")
	fmt.Println(" non-monotonic — high-implication/low-effectiveness pairs — and effective")
	fmt.Println(" thinning restores monotonicity)")
}

// runFig8 reproduces Fig 8: precision vs recall for volumes thinned at
// effective probability 0.2.
func runFig8(l *lab) {
	fmt.Println("-- Fig 8: precision vs recall (effective threshold 0.2) --")
	tbl := &metrics.Table{Header: []string{"log", "p_t", "recall (fraction predicted)", "precision (true prediction)"}}
	for _, name := range []string{"aiusa", "apache", "sun"} {
		log := l.serverLog(name)
		eff2 := l.baseProb(name).Thin(log, 0.2)
		for _, pt := range ptSweep {
			r := probEval(log, eff2.WithPt(pt))
			tbl.AddRow(name+"-like", pt, r.FractionPredicted(), r.TruePredictionFraction())
		}
	}
	fmt.Print(tbl.String())
	fmt.Println("(paper: precision falls as recall rises; effective-0.2 volumes gave the best")
	fmt.Println(" tradeoff for a given piggyback size)")
}
