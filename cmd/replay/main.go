// Command replay drives an access log (Common Log Format, e.g. produced
// by cmd/tracegen or taken from a real httpd) through a live
// origin + caching-proxy pair over loopback TCP, reporting end-to-end
// protocol statistics. It is the bridge between the trace-driven
// simulations and the real wire implementation: the same workload, every
// byte over real sockets.
//
// Usage:
//
//	tracegen -profile aiusa -scale 0.1 -o aiusa.log
//	replay -log aiusa.log [-delta 900] [-maxpiggy 10] [-prefetch] [-limit 5000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"piggyback"
	"piggyback/internal/trace"
)

func main() {
	logPath := flag.String("log", "", "Common Log Format file to replay (required)")
	delta := flag.Int64("delta", 900, "proxy freshness interval Δ (seconds)")
	maxPiggy := flag.Int("maxpiggy", 10, "filter maxpiggy attribute")
	level := flag.Int("level", 1, "origin directory-volume level")
	prefetch := flag.Bool("prefetch", false, "enable proxy prefetching")
	reportHits := flag.Bool("reporthits", false, "enable Piggy-Hits upstream reporting")
	limit := flag.Int("limit", 0, "replay at most this many records (0 = all)")
	flag.Parse()
	if *logPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*logPath)
	if err != nil {
		log.Fatal(err)
	}
	records, err := trace.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	records.SortByTime()
	if *limit > 0 && len(records) > *limit {
		records = records[:*limit]
	}
	if len(records) == 0 {
		log.Fatal("replay: empty log")
	}

	// Simulated clock follows the trace.
	now := records[0].Time
	clock := func() int64 { return now }

	// Origin: resources discovered from the log itself (the log carries
	// sizes; Last-Modified defaults to well before the trace).
	store := piggyback.NewStore()
	for i := range records {
		r := &records[i]
		if _, ok := store.Get(r.URL); !ok && r.Size > 0 {
			store.Put(piggyback.Resource{URL: r.URL, Size: r.Size, LastModified: r.Time - 86400})
		}
	}
	vols := piggyback.NewDirVolumes(piggyback.DirConfig{
		Level: *level, MTF: true, ServerMaxPiggy: *maxPiggy, PartitionByType: true,
	})
	origin := piggyback.NewOriginServer(store, vols, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	osrv := &piggyback.WireServer{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	px := piggyback.NewProxy(piggyback.ProxyConfig{
		Delta:      *delta,
		BaseFilter: piggyback.Filter{MaxPiggy: *maxPiggy},
		Clock:      clock,
		Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
		Prefetch:   *prefetch,
		ReportHits: *reportHits,
	})
	defer px.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	psrv := &piggyback.WireServer{Handler: px, IdleTimeout: 10 * time.Second}
	go psrv.Serve(pl)
	defer psrv.Close()

	client := piggyback.NewWireClient()
	defer client.Close()

	start := time.Now()
	replayed, errors := 0, 0
	for i := range records {
		r := &records[i]
		if r.Method != "" && r.Method != "GET" {
			continue
		}
		now = r.Time
		req := piggyback.NewWireRequest("GET", "http://replay.local"+r.URL)
		if _, err := client.DoContext(context.Background(), pl.Addr().String(), req); err != nil {
			errors++
			if errors > 10 {
				log.Fatalf("replay: too many errors, last: %v", err)
			}
			continue
		}
		replayed++
		if *prefetch && replayed%20 == 0 {
			px.DrainPrefetchesContext(context.Background(), 4)
		}
	}
	wall := time.Since(start)

	ps := px.Stats()
	os := origin.Stats()
	fmt.Printf("replayed %d requests in %v (%.0f req/s), %d errors\n",
		replayed, wall.Round(time.Millisecond), float64(replayed)/wall.Seconds(), errors)
	fmt.Printf("proxy:  fresh hits %d (%.1f%%), validations %d, misses %d, hit rate %.3f\n",
		ps.FreshHits, 100*float64(ps.FreshHits)/float64(replayed),
		ps.Validations, ps.MissFetches, px.CacheHitRate())
	fmt.Printf("piggy:  %d piggybacks (%d elements), %d refreshes, %d invalidations, %d prefetches (%d useful), %d hits reported\n",
		ps.PiggybacksReceived, ps.PiggybackElements, ps.Refreshes, ps.Invalidations,
		ps.Prefetches, ps.UsefulPrefetches, ps.HitsReported)
	fmt.Printf("origin: %d requests (%.1f%% absorbed by the proxy), %d piggybacks sent (%d bytes)\n",
		os.Requests, 100*(1-float64(os.Requests)/float64(replayed)), os.PiggybacksSent, os.PiggybackBytes)
}
