// Command piggyserver runs a cooperating piggybacking origin server: it
// serves a synthetic site (or resources described by a manifest) over the
// project's HTTP/1.1 wire layer, maintains directory-based volumes online,
// and answers cooperating proxies with P-Volume trailers.
//
// Usage:
//
//	piggyserver [-addr :8080] [-level 1] [-maxpiggy 10] [-pages 200] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"piggyback"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	level := flag.Int("level", 1, "directory-volume prefix level")
	maxPiggy := flag.Int("maxpiggy", 10, "server-side piggyback element cap")
	pages := flag.Int("pages", 200, "synthetic site size in pages")
	seed := flag.Int64("seed", 1, "site generation seed")
	pprofOn := flag.Bool("pprof", false, "serve runtime profiles on "+piggyback.PprofPathPrefix)
	flag.Parse()
	piggyback.EnablePprof(*pprofOn)

	site := pagesSite(*pages, *seed)
	store := piggyback.NewStore()
	piggyback.LoadSite(store, site)
	vols := piggyback.NewDirVolumes(piggyback.DirConfig{
		Level:           *level,
		MTF:             true,
		ServerMaxPiggy:  *maxPiggy,
		PartitionByType: true,
	})
	origin := piggyback.NewOriginServer(store, vols, func() int64 { return time.Now().Unix() })

	srv := &piggyback.WireServer{Handler: origin, ErrorLog: log.New(os.Stderr, "piggyserver: ", 0),
		Obs: piggyback.NewWireMetrics(origin.Obs(), "wire.server")}
	go handleSignals(func() { srv.Close() })

	fmt.Printf("piggyserver: %d resources, %d-level volumes, listening on %s\n",
		store.Len(), *level, *addr)
	for i, r := range site.ResourceTable() {
		if i >= 3 {
			break
		}
		fmt.Printf("piggyserver: sample resource %s (%d bytes)\n", r.URL, r.Size)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}

func pagesSite(pages int, seed int64) *piggyback.Site {
	_, site := piggyback.GenerateServerLog(piggyback.SiteConfig{
		Name: "piggyserver", Seed: seed, Pages: pages,
		Dirs: 5 + pages/40, MaxDepth: 3, MeanImagesPerPage: 2.5,
		Requests: 1, // the site is what we want, not the log
	})
	return site
}

func handleSignals(stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("\npiggyserver: shutting down")
	stop()
}
