// Package piggyback is an implementation of the end-to-end Web performance
// architecture of Cohen, Krishnamurthy, and Rexford, "Improving End-to-End
// Performance of the Web Using Server Volumes and Proxy Filters" (SIGCOMM
// 1998): servers group related resources into volumes, proxies send
// filters, and servers piggyback customized volume information (URL, size,
// Last-Modified) onto response messages as HTTP/1.1 chunked trailers. The
// proxy uses the piggybacked information for cache coherency, cache
// replacement, prefetching, adaptive freshness intervals, and informed
// fetching.
//
// The package re-exports the building blocks:
//
//   - Volume engines: NewDirVolumes (directory-based, §3.2) and
//     NewProbBuilder/ProbVolumes (probability-based with thinning, §3.3).
//   - Filters and piggyback messages: Filter, Message, Element, RPV lists.
//   - A from-scratch HTTP/1.1 wire layer with chunked trailers
//     (WireServer, WireClient, WireRequest, WireResponse).
//   - A cooperating origin server (NewOriginServer), a caching proxy
//     (NewProxy) with replacement policies, prefetching, and adaptive
//     freshness, and a transparent volume center (NewVolumeCenter).
//   - Synthetic workload generation (GenerateServerLog, profiles matching
//     the paper's logs) and the trace-driven evaluation harness
//     (NewSimulator) computing the paper's §3.1 metrics.
//
// See examples/ for runnable end-to-end setups and cmd/experiments for the
// harness that regenerates every table and figure in the paper.
package piggyback

import (
	"context"
	"io"
	"net"

	"piggyback/internal/cache"
	"piggyback/internal/cache/tiered"
	"piggyback/internal/center"
	"piggyback/internal/core"
	"piggyback/internal/faultconn"
	"piggyback/internal/httpwire"
	"piggyback/internal/httpwire/wireerr"
	"piggyback/internal/loadgen"
	"piggyback/internal/obs"
	"piggyback/internal/peer"
	"piggyback/internal/proxy"
	"piggyback/internal/server"
	"piggyback/internal/sim"
	"piggyback/internal/trace"
	"piggyback/internal/tracegen"
)

// Core protocol types (§2).
type (
	// Filter is a proxy-generated piggyback filter (§2.2).
	Filter = core.Filter
	// Element is one piggyback element: URL, size, Last-Modified (§2.1).
	Element = core.Element
	// Message is a piggyback message: volume id plus elements (§2.3).
	Message = core.Message
	// VolumeID identifies a volume within a server (2 bytes, §2.3).
	VolumeID = core.VolumeID
	// Provider is a volume engine generating piggyback messages.
	Provider = core.Provider
	// RPVList tracks recently piggybacked volumes for one server (§2.2).
	RPVList = core.RPVList
	// RPVTable maps servers to RPV lists (§2.2).
	RPVTable = core.RPVTable
	// FrequencyControl is the stateless piggyback pacing of §2.2.
	FrequencyControl = core.FrequencyControl
)

// Volume engines (§3).
type (
	// DirConfig configures directory-based volumes (§3.2).
	DirConfig = core.DirConfig
	// DirVolumes is the directory-based volume engine.
	DirVolumes = core.DirVolumes
	// ProbConfig configures probability-based volume construction (§3.3).
	ProbConfig = core.ProbConfig
	// ProbBuilder estimates pairwise implication probabilities.
	ProbBuilder = core.ProbBuilder
	// ProbVolumes is the probability-based volume engine.
	ProbVolumes = core.ProbVolumes
	// OnlineProbVolumes rebuilds probability volumes from live traffic
	// (§3.3.1 "online fashion").
	OnlineProbVolumes = core.OnlineProbVolumes
	// Implication is one probability-volume membership pair.
	Implication = core.Implication
)

// NewOnlineProbVolumes returns an online probability-volume engine that
// rebuilds its snapshot every rebuildEvery observations.
func NewOnlineProbVolumes(cfg ProbConfig, rebuildEvery int) *OnlineProbVolumes {
	return core.NewOnlineProbVolumes(cfg, rebuildEvery)
}

// ParseFilter parses a Piggy-Filter header value.
func ParseFilter(s string) (Filter, error) { return core.ParseFilter(s) }

// ParseMessage parses a P-Volume trailer value.
func ParseMessage(s string) (Message, error) { return core.ParseMessage(s) }

// NewDirVolumes returns a directory-based volume engine.
func NewDirVolumes(cfg DirConfig) *DirVolumes { return core.NewDirVolumes(cfg) }

// NewProbBuilder returns a probability-volume builder.
func NewProbBuilder(cfg ProbConfig) *ProbBuilder { return core.NewProbBuilder(cfg) }

// NewRPVList returns an RPV list with the given timeout and max length.
func NewRPVList(timeout int64, maxLen int) *RPVList { return core.NewRPVList(timeout, maxLen) }

// NewRPVTable returns a per-server RPV table.
func NewRPVTable(timeout int64, maxLen int) *RPVTable { return core.NewRPVTable(timeout, maxLen) }

// HTTP/1.1 wire layer (§2.3).
type (
	// WireRequest is an HTTP/1.1 request message.
	WireRequest = httpwire.Request
	// WireResponse is an HTTP/1.1 response message with trailer support.
	WireResponse = httpwire.Response
	// WireHeader holds header fields.
	WireHeader = httpwire.Header
	// WireServer serves HTTP/1.1 with persistent connections.
	WireServer = httpwire.Server
	// WireClient issues requests over persistent connections.
	WireClient = httpwire.Client
	// WireHandler responds to requests; the per-request context is
	// cancelled on connection teardown and server shutdown.
	WireHandler = httpwire.Handler
	// WireHandlerFunc adapts a context-taking function to WireHandler.
	WireHandlerFunc = httpwire.HandlerFunc
)

// Wire-layer failure taxonomy (errors.Is-able; see internal/httpwire/wireerr).
var (
	// ErrDialTimeout: upstream connection establishment timed out.
	ErrDialTimeout = wireerr.ErrDialTimeout
	// ErrRequestTimeout: an exchange exceeded its deadline (flat timeout
	// or context deadline).
	ErrRequestTimeout = wireerr.ErrRequestTimeout
	// ErrCanceled: the caller's context was cancelled mid-exchange.
	ErrCanceled = wireerr.ErrCanceled
	// ErrCircuitOpen: the proxy's per-host circuit breaker refused the
	// request without dialing.
	ErrCircuitOpen = wireerr.ErrCircuitOpen
	// ErrTruncatedBody: the connection closed before a complete response.
	ErrTruncatedBody = wireerr.ErrTruncatedBody
)

// WireErrClass buckets a wire-layer error into its taxonomy class name
// ("dial_timeout", "request_timeout", "canceled", "circuit_open",
// "truncated", or "other") — the suffixes of the wire.upstream.err.*
// telemetry counters.
func WireErrClass(err error) string { return wireerr.Class(err) }

// PprofPathPrefix is the reserved origin-form path prefix serving live
// runtime profiles when EnablePprof(true) has been called.
const PprofPathPrefix = httpwire.PprofPathPrefix

// EnablePprof turns the /.piggy/pprof/ profiling endpoint on or off
// process-wide for every wire handler (server, proxy, volume center).
func EnablePprof(on bool) { httpwire.EnablePprof(on) }

// Fault injection (testing and load scenarios).
type (
	// Fault describes what one connection does to its traffic: first-byte
	// latency, mid-body truncation, blackholing, or an immediate reset.
	Fault = faultconn.Fault
	// FaultProfile is a probabilistic per-connection fault schedule.
	FaultProfile = faultconn.Profile
	// FaultListener wraps a net.Listener, applying a seeded deterministic
	// fault schedule to accepted connections.
	FaultListener = faultconn.Listener
)

// NewFaultListener wraps inner with the profile, drawing per-connection
// faults deterministically from seed.
func NewFaultListener(inner net.Listener, profile FaultProfile, seed int64) *FaultListener {
	return faultconn.NewListener(inner, profile, seed)
}

// FaultProfileByName resolves a named fault profile ("none", "latency",
// "truncate", "blackhole", "reset", "brownout").
func FaultProfileByName(name string) (FaultProfile, bool) {
	return faultconn.Profiles(name)
}

// NewWireRequest returns a request for the given method and path.
func NewWireRequest(method, path string) *WireRequest { return httpwire.NewRequest(method, path) }

// NewWireClient returns a client with persistent connections.
func NewWireClient() *WireClient { return httpwire.NewClient() }

// SetFilter attaches a proxy filter (and TE: chunked) to a request.
func SetFilter(req *WireRequest, f Filter) { httpwire.SetFilter(req, f) }

// ExtractPiggyback parses the P-Volume trailer from a response.
func ExtractPiggyback(resp *WireResponse) (Message, bool) { return httpwire.ExtractPiggyback(resp) }

// Origin server (§2.1).
type (
	// OriginServer is a cooperating piggybacking origin server.
	OriginServer = server.Server
	// Store is the origin's resource table.
	Store = server.Store
	// Resource is one origin resource.
	Resource = server.Resource
)

// NewStore returns an empty resource store.
func NewStore() *Store { return server.NewStore() }

// NewOriginServer returns an origin server over the store and volume
// engine; clock supplies the current Unix time (use func() int64 {
// return time.Now().Unix() } outside simulations).
func NewOriginServer(st *Store, vols Provider, clock func() int64) *OriginServer {
	return server.New(st, vols, clock)
}

// Caching proxy (§2.1, §4).
type (
	// Proxy is the caching piggybacking proxy.
	Proxy = proxy.Proxy
	// ProxyConfig parameterizes a proxy.
	ProxyConfig = proxy.Config
	// ProxyStats counts proxy activity.
	ProxyStats = proxy.Stats
	// FetchItem is one pending (pre)fetch with piggybacked attributes.
	FetchItem = proxy.FetchItem
	// InformedQueue is the smallest-first fetch queue (§4).
	InformedQueue = proxy.InformedQueue
	// FreshnessEstimator adapts per-resource freshness intervals (§4).
	FreshnessEstimator = proxy.FreshnessEstimator
)

// NewProxy returns a caching proxy.
func NewProxy(cfg ProxyConfig) *Proxy { return proxy.New(cfg) }

// Cooperative proxy mesh (§1 hierarchical caching as a wire-level tier).
type (
	// PeerRing is the immutable consistent-hash ring partitioning the URL
	// key space across a proxy fleet. Proxies join a mesh via
	// ProxyConfig.PeerSelf/Peers; local misses route to the key's ring
	// owner before the origin (X-Cache: PEER).
	PeerRing = peer.Ring
	// PeerTracker records which peers recently requested into a proxy's
	// partition — the targets of piggyback re-propagation.
	PeerTracker = peer.Tracker
)

// DefaultPeerVNodes is the virtual-node count per peer when
// ProxyConfig.PeerVNodes is zero.
const DefaultPeerVNodes = peer.DefaultVNodes

// NewPeerRing builds a consistent-hash ring over the given peer addresses;
// vnodes <= 0 means DefaultPeerVNodes.
func NewPeerRing(peers []string, vnodes int) *PeerRing { return peer.NewRing(peers, vnodes) }

// NewPeerTracker returns a requester tracker with the given interest
// window in seconds (<= 0 means 60).
func NewPeerTracker(window int64) *PeerTracker { return peer.NewTracker(window) }

// Cache policies (§4 cache replacement).
type (
	// Cache is the byte-capacity proxy cache (single-threaded; the
	// trace-driven simulators use it directly).
	Cache = cache.Cache
	// ShardedCache is the concurrent sharded cache the proxy serves from:
	// power-of-two shards keyed by URL hash, each with its own lock and
	// policy instance.
	ShardedCache = cache.Sharded
	// CacheView is one entry's servable state, copied out of a
	// ShardedCache under its shard lock.
	CacheView = cache.View
	// CacheEntry is one cached resource.
	CacheEntry = cache.Entry
	// CachePolicy assigns eviction priorities.
	CachePolicy = cache.Policy
	// LRU, LFU, GDSize, PiggybackLRU, and ServerGD are replacement
	// policies.
	LRU          = cache.LRU
	LFU          = cache.LFU
	GDSize       = cache.GDSize
	PiggybackLRU = cache.PiggybackLRU
	ServerGD     = cache.ServerGD
	// CacheStore is the cache surface the proxy serves from; Cache,
	// ShardedCache, and TieredCache all satisfy it, so ProxyConfig.Store
	// accepts any of them.
	CacheStore = cache.Store
	// CacheStoreStats is a Store's aggregate counters, including the
	// disk-tier fields (zero for RAM-only stores).
	CacheStoreStats = cache.StoreStats
	// TieredCache layers an append-only segment-file disk tier under a
	// ShardedCache: RAM evictions worth keeping demote to disk, disk
	// hits promote back to RAM, and Close snapshots the index so a
	// restarted proxy serves warm from the same directory.
	TieredCache = tiered.Tiered
	// TieredCacheConfig parameterizes a TieredCache.
	TieredCacheConfig = tiered.Config
)

// NewCache returns a cache with the given capacity and policy.
func NewCache(capacity int64, p CachePolicy) *Cache { return cache.New(capacity, p) }

// NewShardedCache returns a concurrent sharded cache. shards is rounded up
// to a power of two (zero means DefaultCacheShards); each shard gets an
// independent policy instance from CachePolicyFactory(p).
func NewShardedCache(capacity int64, shards int, p CachePolicy) *ShardedCache {
	return cache.NewSharded(capacity, shards, cache.PolicyFactory(p))
}

// DefaultCacheShards returns the shard count used when none is configured:
// the smallest power of two covering the machine's CPUs, clamped to [8, 64].
func DefaultCacheShards() int { return cache.DefaultShards() }

// CachePolicyFactory derives a per-shard policy constructor from a
// prototype instance (stateless built-ins shared, stateful ones cloned per
// shard, unknown implementations serialized behind one lock).
func CachePolicyFactory(p CachePolicy) func() CachePolicy { return cache.PolicyFactory(p) }

// NewTieredCache layers a disk tier under ram per cfg. An empty cfg.Dir
// yields a RAM-only store (a transparent wrapper). Close the returned
// store (directly or via the owning proxy's Close) to flush the RAM
// working set and snapshot the index for a warm restart.
func NewTieredCache(ram *ShardedCache, cfg TieredCacheConfig) (*TieredCache, error) {
	return tiered.New(ram, cfg)
}

// Transparent volume center (§1, §5).
type (
	// VolumeCenter is the transparent piggybacking intermediary.
	VolumeCenter = center.Center
	// CenterConfig parameterizes a volume center.
	CenterConfig = center.Config
)

// NewVolumeCenter returns a transparent volume center.
func NewVolumeCenter(cfg CenterConfig) *VolumeCenter { return center.New(cfg) }

// Traces and workloads (Appendix A).
type (
	// TraceRecord is one access-log entry.
	TraceRecord = trace.Record
	// TraceLog is a time-ordered access log.
	TraceLog = trace.Log
	// SiteConfig describes a synthetic site and client population.
	SiteConfig = tracegen.SiteConfig
	// ClientLogConfig describes a synthetic proxy-side client log.
	ClientLogConfig = tracegen.ClientLogConfig
	// Site is a generated resource tree.
	Site = tracegen.Site
)

// GenerateServerLog produces a synthetic server log and its site.
func GenerateServerLog(cfg SiteConfig) (TraceLog, *Site) { return tracegen.GenerateServerLog(cfg) }

// GenerateClientLog produces a synthetic proxy-side client log.
func GenerateClientLog(cfg ClientLogConfig) (TraceLog, map[string]*Site) {
	return tracegen.GenerateClientLog(cfg)
}

// ParseCLF parses a Common Log Format line.
func ParseCLF(line string) (TraceRecord, error) { return trace.ParseCLF(line) }

// ParseSquid parses a Squid native access.log line.
func ParseSquid(line string) (TraceRecord, error) { return trace.ParseSquid(line) }

// ParseAnyLog parses a line in any supported log dialect (CLF or Squid).
func ParseAnyLog(line string) (TraceRecord, error) { return trace.ParseAny(line) }

// FormatCLF renders a record as a Common Log Format line.
func FormatCLF(r TraceRecord) string { return trace.FormatCLF(r) }

// Evaluation harness (§3.1).
type (
	// Simulator replays a log through the piggyback protocol.
	Simulator = sim.Simulator
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// SimResult holds the §3.1 metrics.
	SimResult = sim.Result
)

// NewSimulator returns a trace-driven protocol simulator.
func NewSimulator(cfg SimConfig) *Simulator { return sim.New(cfg) }

// LoadSite populates a store from a generated site — convenience for
// standing up an origin server on a synthetic workload.
func LoadSite(st *Store, site *Site) {
	for _, r := range site.ResourceTable() {
		st.Put(Resource{URL: r.URL, Size: r.Size, LastModified: r.LastModifiedAt(site.Config.StartTime)})
	}
}

// Extensions and analysis helpers.

type (
	// PopularProvider adds the §5 popular-resources fallback volume.
	PopularProvider = core.PopularProvider
	// HierarchyConfig parameterizes the two-level caching replay.
	HierarchyConfig = sim.HierarchyConfig
	// HierarchyResult reports the two-level caching replay.
	HierarchyResult = sim.HierarchyResult
	// CoherencyReport summarizes the §4 cache-coherency arithmetic.
	CoherencyReport = sim.CoherencyReport
	// PrefetchPoint is one point of the §4 prefetching tradeoff.
	PrefetchPoint = sim.PrefetchPoint
	// ReplacementResult reports a cache-replacement replay.
	ReplacementResult = sim.ReplacementResult
	// LocalityStats summarizes directory-prefix locality (Fig 1).
	LocalityStats = sim.LocalityStats
)

// NewPopularProvider wraps a volume engine with a popular-resources
// fallback volume (§5).
func NewPopularProvider(inner Provider, topN int) *PopularProvider {
	return core.NewPopularProvider(inner, topN)
}

// ReadProbVolumes loads probability volumes written by
// (*ProbVolumes).WriteTo — servers build volumes offline (§3.3.1) and
// reload them at startup.
func ReadProbVolumes(r io.Reader) (*ProbVolumes, error) { return core.ReadProbVolumes(r) }

// ReplayHierarchy replays a log through a two-level proxy tree with
// piggyback coherency propagation (§1 hierarchical caching).
func ReplayHierarchy(log TraceLog, cfg HierarchyConfig) HierarchyResult {
	return sim.ReplayHierarchy(log, cfg)
}

// Coherency derives the §4 coherency report from a simulation result.
func Coherency(r SimResult) CoherencyReport { return sim.Coherency(r) }

// PrefetchTradeoff sweeps probability thresholds to produce the §4
// prefetching tradeoff curve.
func PrefetchTradeoff(log TraceLog, vols *ProbVolumes, thresholds []float64) []PrefetchPoint {
	return sim.PrefetchTradeoff(log, vols, thresholds)
}

// ReplayReplacement replays a log through a cache policy, optionally with
// piggyback pinning (§4 cache replacement).
func ReplayReplacement(log TraceLog, capacity int64, policy CachePolicy, provider Provider, t int64) ReplacementResult {
	return sim.ReplayReplacement(log, capacity, policy, provider, t)
}

// AnalyzeLocality computes the directory-prefix locality of Fig 1.
func AnalyzeLocality(log TraceLog, levels []int, includeEmbedded bool) []LocalityStats {
	return sim.AnalyzeLocality(log, levels, includeEmbedded)
}

// --- Telemetry and load generation ---

type (
	// ObsRegistry is the live telemetry registry every wire-speaking
	// component (origin, proxy, center) maintains and serves as JSON on
	// GET /.piggy/stats.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time copy of a registry, with Sub/Merge
	// algebra for windowed measurements.
	ObsSnapshot = obs.Snapshot
	// LoadConfig configures a load-generation run (closed or open loop).
	LoadConfig = loadgen.Config
	// LoadReport is the run's client-side report.
	LoadReport = loadgen.Report
)

// WireMetrics instruments a WireServer or WireClient (requests, errors,
// retries, dials, bytes, latency histogram) into an ObsRegistry.
type WireMetrics = obs.WireMetrics

// NewWireMetrics registers wire counters under prefix (e.g. "wire.server")
// in r and returns them for assignment to a WireServer/WireClient Obs
// field.
func NewWireMetrics(r *ObsRegistry, prefix string) *WireMetrics {
	return obs.NewWireMetrics(r, prefix)
}

// StatsPath is the origin-form URL path serving a live ObsSnapshot.
const StatsPath = obs.StatsPath

// RunLoadContext drives a workload against a live stack; cancelling ctx
// stops the run. See internal/loadgen.
func RunLoadContext(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	return loadgen.RunContext(ctx, cfg)
}

// FetchStats retrieves a live telemetry snapshot from addr's stats
// endpoint.
func FetchStats(addr string) (ObsSnapshot, error) { return loadgen.FetchStats(addr) }
