// Benchmarks: one per table and figure of the paper, plus the ablations
// DESIGN.md calls out and micro-benchmarks of the protocol hot paths. Each
// table/figure bench runs a scaled-down version of the corresponding
// cmd/experiments experiment and reports its headline metric via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the shape of
// the entire evaluation.
package piggyback_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/delta"
	"piggyback/internal/httpwire"
	"piggyback/internal/loadgen"
	"piggyback/internal/obs"
	"piggyback/internal/proxy"
	"piggyback/internal/server"
	"piggyback/internal/sim"
	"piggyback/internal/trace"
	"piggyback/internal/tracegen"
)

// benchScale keeps per-iteration work small; the experiments command runs
// the full-scale versions.
const benchScale = 0.05

var (
	benchOnce sync.Once
	benchLogs map[string]trace.Log
	benchCli  trace.Log
	benchProb map[string]*core.ProbVolumes
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchLogs = make(map[string]trace.Log)
		benchProb = make(map[string]*core.ProbVolumes)
		for _, p := range []struct {
			name string
			cfg  tracegen.SiteConfig
		}{
			{"aiusa", tracegen.ProfileAIUSA(benchScale)},
			{"apache", tracegen.ProfileApache(benchScale)},
			{"sun", tracegen.ProfileSun(benchScale)},
		} {
			log, _ := tracegen.GenerateServerLog(p.cfg)
			benchLogs[p.name] = log.Clean().FilterPopular(10)
		}
		cli, _ := tracegen.GenerateClientLog(tracegen.ProfileATT(benchScale))
		benchCli = cli.Clean()
		for name, log := range benchLogs {
			bld := core.NewProbBuilder(core.ProbConfig{T: 300, Pt: 0.05})
			bld.ObserveLog(log)
			benchProb[name] = bld.Build(0.02)
		}
	})
}

func reportSim(b *testing.B, r sim.Result) {
	b.Helper()
	b.ReportMetric(r.FractionPredicted(), "fracPredicted")
	b.ReportMetric(r.TruePredictionFraction(), "truePrediction")
	b.ReportMetric(r.AvgPiggybackSize(), "avgPiggyback")
}

func BenchmarkFig1DirectoryLocality(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		stats := sim.AnalyzeLocality(benchCli, []int{0, 1, 2, 3, 4}, true)
		b.ReportMetric(stats[2].SeenBefore, "level2SeenBefore")
	}
}

func BenchmarkFig2PiggybackSizeVsFilter(b *testing.B) {
	benchSetup(b)
	log := benchLogs["aiusa"]
	for i := 0; i < b.N; i++ {
		var last sim.Result
		for _, f := range []int{10, 100} {
			d := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true})
			last = sim.New(sim.Config{T: 300, Provider: d, Feed: true,
				BaseFilter: core.Filter{MinAccess: f}}).Run(log)
		}
		b.ReportMetric(last.AvgPiggybackSize(), "avgPiggyback@filter100")
	}
}

func BenchmarkFig3DirVolumeAccuracy(b *testing.B) {
	benchSetup(b)
	log := benchLogs["sun"]
	for i := 0; i < b.N; i++ {
		d := core.NewDirVolumes(core.DirConfig{Level: 2, MTF: true})
		r := sim.New(sim.Config{T: 300, C: 7200, Provider: d, Feed: true,
			BaseFilter: core.Filter{MinAccess: 10}}).Run(log)
		reportSim(b, r)
		b.ReportMetric(r.UpdateFraction(), "updateFraction")
	}
}

func BenchmarkFig4RPVThinning(b *testing.B) {
	benchSetup(b)
	log := benchLogs["apache"]
	for i := 0; i < b.N; i++ {
		d := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true})
		r := sim.New(sim.Config{T: 300, Provider: d, Feed: true,
			BaseFilter: core.Filter{MinAccess: 10},
			UseRPV:     true, RPVTimeout: 30}).Run(log)
		b.ReportMetric(float64(r.PiggybackMessages), "piggybackMsgs")
		b.ReportMetric(r.FractionPredicted(), "fracPredicted")
	}
}

func BenchmarkFig5ProbThreshold(b *testing.B) {
	benchSetup(b)
	log := benchLogs["sun"]
	base := benchProb["sun"]
	for i := 0; i < b.N; i++ {
		r := sim.New(sim.Config{T: 300, Provider: base.WithPt(0.2)}).Run(log)
		reportSim(b, r)
	}
}

func BenchmarkFig6ProbRecallVsSize(b *testing.B) {
	benchSetup(b)
	log := benchLogs["aiusa"]
	base := benchProb["aiusa"]
	for i := 0; i < b.N; i++ {
		thinned := base.Thin(log, 0.2)
		r := sim.New(sim.Config{T: 300, Provider: thinned.WithPt(0.25)}).Run(log)
		reportSim(b, r)
	}
}

func BenchmarkFig7Precision(b *testing.B) {
	benchSetup(b)
	log := benchLogs["sun"]
	base := benchProb["sun"]
	thinned := base.Thin(log, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.New(sim.Config{T: 300, Provider: thinned.WithPt(0.25)}).Run(log)
		b.ReportMetric(r.TruePredictionFraction(), "truePrediction")
		b.ReportMetric(r.AvgPiggybackSize(), "avgPiggyback")
	}
}

func BenchmarkFig8PrecisionRecall(b *testing.B) {
	benchSetup(b)
	log := benchLogs["apache"]
	thinned := benchProb["apache"].Thin(log, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.New(sim.Config{T: 300, Provider: thinned.WithPt(0.3)}).Run(log)
		b.ReportMetric(r.FractionPredicted(), "recall")
		b.ReportMetric(r.TruePredictionFraction(), "precision")
	}
}

func BenchmarkTable1UpdateFraction(b *testing.B) {
	benchSetup(b)
	log := benchLogs["sun"]
	vols := benchProb["sun"].WithPt(0.25).Thin(log, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.New(sim.Config{T: 300, C: 7200, Provider: vols}).Run(log)
		b.ReportMetric(r.FracPrevWithinC(), "prevWithin2hr")
		b.ReportMetric(r.FracUpdatedTC(), "piggybackUpdated")
	}
}

func BenchmarkTable2ClientLogs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log, _ := tracegen.GenerateClientLog(tracegen.ProfileATT(benchScale))
		b.ReportMetric(float64(log.UniqueResources()), "uniqueResources")
	}
}

func BenchmarkTable3ServerLogs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log, _ := tracegen.GenerateServerLog(tracegen.ProfileAIUSA(benchScale))
		b.ReportMetric(float64(len(log))/float64(log.Clients()), "reqPerSource")
	}
}

func BenchmarkSec23Overheads(b *testing.B) {
	benchSetup(b)
	log := benchLogs["sun"]
	vols := benchProb["sun"].WithPt(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.New(sim.Config{T: 300, Provider: vols}).Run(log)
		b.ReportMetric(r.AvgPiggybackBytes(), "piggybackBytes")
	}
}

func BenchmarkSec4Applications(b *testing.B) {
	benchSetup(b)
	log := benchLogs["apache"]
	thinned := benchProb["apache"].Thin(log, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := sim.PrefetchTradeoff(log, thinned, []float64{0.25})
		b.ReportMetric(pts[0].Recall, "prefetchRecall")
		b.ReportMetric(pts[0].FutileFraction, "futileFraction")
	}
}

func BenchmarkAblationSampledCounters(b *testing.B) {
	benchSetup(b)
	log := benchLogs["aiusa"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := core.NewProbBuilder(core.ProbConfig{T: 300, Pt: 0.25, Sampling: true, SampleK: 2, UnbiasedInit: true, Seed: 5})
		bld.ObserveLog(log)
		b.ReportMetric(float64(bld.NumCounters()), "pairCounters")
	}
}

func BenchmarkAblationMTFvsFIFO(b *testing.B) {
	benchSetup(b)
	log := benchLogs["aiusa"]
	for _, mtf := range []bool{true, false} {
		name := "fifo"
		if mtf {
			name = "mtf"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: mtf, ServerMaxPiggy: 5})
				r := sim.New(sim.Config{T: 300, Provider: d, Feed: true}).Run(log)
				b.ReportMetric(r.FractionPredicted(), "fracPredicted")
			}
		})
	}
}

func BenchmarkAblationReplacement(b *testing.B) {
	benchSetup(b)
	log := benchLogs["aiusa"]
	policies := []struct {
		name   string
		make   func() cache.Policy
		piggyb bool
	}{
		{"lru", func() cache.Policy { return cache.LRU{} }, false},
		{"gdsize", func() cache.Policy { return &cache.GDSize{} }, false},
		{"piggyback-lru", func() cache.Policy { return cache.PiggybackLRU{} }, true},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var prov core.Provider
				if p.piggyb {
					prov = core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
				}
				r := sim.ReplayReplacement(log, 64<<10, p.make(), prov, 300)
				b.ReportMetric(r.HitRate, "hitRate")
			}
		})
	}
}

func BenchmarkE2EProxyServer(b *testing.B) {
	// Live protocol over loopback TCP: origin + proxy + client.
	now := int64(899637753)
	clock := func() int64 { return now }
	st := server.NewStore()
	for i := 0; i < 20; i++ {
		st.Put(server.Resource{URL: fmt.Sprintf("/a/r%02d.html", i), Size: 2000, LastModified: now - 1000})
	}
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	origin := server.New(st, vols, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	px := proxy.New(proxy.Config{
		Delta: 600, Clock: clock,
		Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
		BaseFilter: core.Filter{MaxPiggy: 10},
	})
	defer px.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	psrv := &httpwire.Server{Handler: px}
	go psrv.Serve(pl)
	defer psrv.Close()

	client := httpwire.NewClient()
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("http://www.bench.test/a/r%02d.html", i%20)
		if _, err := client.DoContext(context.Background(), pl.Addr().String(), httpwire.NewRequest("GET", url)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadgenE2E drives the same loopback stack through the
// concurrent load generator — closed loop, 4 workers — and reports the
// generator's own throughput and p99 alongside the usual ns/op. One
// iteration is one full load run.
func BenchmarkLoadgenE2E(b *testing.B) {
	now := time.Now().Unix()
	clock := func() int64 { return time.Now().Unix() }
	const nRes = 20
	st := server.NewStore()
	log := make(trace.Log, nRes)
	for i := 0; i < nRes; i++ {
		url := fmt.Sprintf("/a/r%02d.html", i)
		st.Put(server.Resource{URL: url, Size: 2000, LastModified: now - 86400})
		log[i] = trace.Record{Method: "GET", URL: url}
	}
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	origin := server.New(st, vols, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	px := proxy.New(proxy.Config{
		Delta: 3600, Clock: clock,
		Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
		BaseFilter: core.Filter{MaxPiggy: 10},
	})
	defer px.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	psrv := &httpwire.Server{Handler: px}
	go psrv.Serve(pl)
	defer psrv.Close()

	b.ResetTimer()
	var rps, p99 float64
	for i := 0; i < b.N; i++ {
		rep, err := loadgen.RunContext(context.Background(), loadgen.Config{
			Addr:     pl.Addr().String(),
			Records:  log,
			Mode:     loadgen.Closed,
			Workers:  4,
			Requests: 400,
			Warmup:   50,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors != 0 {
			b.Fatalf("load run had %d errors", rep.Errors)
		}
		rps += rep.ThroughputRPS
		p99 += rep.P99us
	}
	b.ReportMetric(rps/float64(b.N), "req/s")
	b.ReportMetric(p99/float64(b.N), "p99-µs")
}

// BenchmarkProxyUpstreamPoolParallel drives ServeWire from many
// goroutines with an expired cache (Δ=0), so every request revalidates
// upstream and the proxy's per-host connection pool carries the
// concurrency. GOMAXPROCS parallel clients over pooled origin
// connections is the configuration the paper's proxy runs in.
func BenchmarkProxyUpstreamPoolParallel(b *testing.B) {
	now := time.Now().Unix()
	clock := func() int64 { return time.Now().Unix() }
	const nRes = 32
	st := server.NewStore()
	for i := 0; i < nRes; i++ {
		st.Put(server.Resource{URL: fmt.Sprintf("/a/r%02d.html", i),
			Size: 2000, LastModified: now - 86400})
	}
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	origin := server.New(st, vols, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	// The proxy's clock jumps far past Δ on every call, so each request
	// finds its cached copy stale and revalidates upstream.
	var vnow atomic.Int64
	vnow.Store(now)
	px := proxy.New(proxy.Config{
		Delta:      60,
		Clock:      func() int64 { return vnow.Add(10_000) },
		Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
		BaseFilter: core.Filter{MaxPiggy: 10},
	})
	defer px.Close()

	b.ResetTimer()
	// Workers beyond GOMAXPROCS still overlap on upstream I/O, which is
	// what the pool multiplexes; don't let a small box serialize them.
	b.SetParallelism(16)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			path := fmt.Sprintf("/a/r%02d.html", i%nRes)
			i++
			req := httpwire.NewRequest("GET", "http://www.bench.test"+path)
			resp := px.ServeWire(context.Background(), req)
			if resp.Status != 200 {
				b.Errorf("status %d for %s", resp.Status, path)
				return
			}
		}
	})
	b.StopTimer()
	snap := px.Obs().Snapshot()
	b.ReportMetric(float64(snap.Counter("wire.upstream.conns_open")), "pooled-conns")
	b.ReportMetric(float64(snap.Counter("wire.upstream.dials")), "dials")
}

// BenchmarkProxyFreshHitParallel measures the fully-cached hot path — the
// one the sharded cache parallelized — at GOMAXPROCS 1, 4, and 8: a primed
// proxy serves fresh hits only (no upstream I/O), so throughput is bounded
// by cache locking. With the single global mutex this curve was flat;
// sharding should scale it with procs.
func BenchmarkProxyFreshHitParallel(b *testing.B) {
	now := int64(899637753)
	clock := func() int64 { return now }
	const nRes = 64
	st := server.NewStore()
	for i := 0; i < nRes; i++ {
		st.Put(server.Resource{URL: fmt.Sprintf("/a/r%02d.html", i),
			Size: 2000, LastModified: now - 86400})
	}
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	origin := server.New(st, vols, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	px := proxy.New(proxy.Config{
		Delta:      1 << 30, // primed entries never go stale
		Clock:      clock,
		Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
		BaseFilter: core.Filter{MaxPiggy: 10},
	})
	defer px.Close()
	for i := 0; i < nRes; i++ {
		req := httpwire.NewRequest("GET", fmt.Sprintf("http://www.bench.test/a/r%02d.html", i))
		if resp := px.ServeWire(context.Background(), req); resp.Status != 200 {
			b.Fatalf("prime: status %d", resp.Status)
		}
	}

	// Requests are prebuilt and reused (ServeWire treats them as
	// read-only) so the benchmark counts the serving path's allocations,
	// not the harness's own request construction.
	reqs := make([]*httpwire.Request, nRes)
	for i := range reqs {
		reqs[i] = httpwire.NewRequest("GET", fmt.Sprintf("http://www.bench.test/a/r%02d.html", i))
	}
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					req := reqs[i%nRes]
					i++
					resp := px.ServeWire(context.Background(), req)
					if resp.Status != 200 || resp.Header.Get("X-Cache") != "HIT" {
						b.Errorf("%s: status %d X-Cache %q", req.Path, resp.Status, resp.Header.Get("X-Cache"))
						return
					}
				}
			})
		})
	}
}

// Micro-benchmarks of the protocol hot paths.

func BenchmarkDirVolumePiggyback(b *testing.B) {
	d := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10, PartitionByType: true})
	for i := 0; i < 200; i++ {
		d.Observe(core.Access{Source: "s", Time: int64(i),
			Element: core.Element{URL: fmt.Sprintf("/a/r%03d.html", i), Size: int64(i)}})
	}
	f := core.Filter{MaxPiggy: 10, MinAccess: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Piggyback("/a/r000.html", int64(i), f)
	}
}

func BenchmarkProbVolumePiggyback(b *testing.B) {
	benchSetup(b)
	vols := benchProb["aiusa"].WithPt(0.2)
	log := benchLogs["aiusa"]
	f := core.Filter{MaxPiggy: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vols.Piggyback(log[i%len(log)].URL, int64(i), f)
	}
}

func BenchmarkProbBuilderObserve(b *testing.B) {
	benchSetup(b)
	log := benchLogs["aiusa"]
	b.ResetTimer()
	bld := core.NewProbBuilder(core.ProbConfig{T: 300, Pt: 0.2})
	for i := 0; i < b.N; i++ {
		bld.Observe(log[i%len(log)])
	}
}

func BenchmarkFilterHeaderRoundTrip(b *testing.B) {
	f := core.Filter{MaxPiggy: 10, RPV: []core.VolumeID{3, 4, 9}, MinAccess: 50, ProbThreshold: 0.25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := f.Header()
		if _, err := core.ParseFilter(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkedTrailerRoundTrip(b *testing.B) {
	resp := httpwire.NewResponse(200)
	resp.Body = bytes.Repeat([]byte("x"), 1530)
	resp.Trailer = httpwire.Header{}
	msg := core.Message{Volume: 17, Elements: []core.Element{
		{URL: "/products/java/docs/page-0001-index.html", Size: 13900, LastModified: 899637753},
		{URL: "/products/java/docs/inline-img-0001-0.gif", Size: 2000, LastModified: 899630000},
	}}
	httpwire.AttachPiggyback(resp, msg)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := httpwire.WriteResponse(bufio.NewWriter(&buf), resp, false); err != nil {
			b.Fatal(err)
		}
		if _, err := httpwire.ReadResponse(bufio.NewReader(&buf), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	c := cache.New(1<<20, cache.PiggybackLRU{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("/r%04d", i%2000)
		if _, ok := c.Get(url, int64(i)); !ok {
			c.Put(cache.Entry{URL: url, Size: 700, Expires: int64(i + 300)}, int64(i))
		}
	}
}

// Extension benches: hierarchical caching (§1) and the popular-resources
// fallback volume (§5).

func BenchmarkExtHierarchicalCaching(b *testing.B) {
	benchSetup(b)
	log := benchLogs["aiusa"]
	for i := 0; i < b.N; i++ {
		vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
		r := sim.ReplayHierarchy(log, sim.HierarchyConfig{
			Children: 4, Delta: 900, Provider: vols, RPVTimeout: 60,
		})
		b.ReportMetric(r.OriginLoad(), "originLoad")
		b.ReportMetric(float64(r.AvoidedValidations), "avoidedValidations")
	}
}

func BenchmarkExtPopularVolume(b *testing.B) {
	benchSetup(b)
	log := benchLogs["aiusa"]
	for i := 0; i < b.N; i++ {
		inner := core.NewDirVolumes(core.DirConfig{Level: 2, MTF: true, ServerMaxPiggy: 10})
		pop := core.NewPopularProvider(inner, 10)
		r := sim.New(sim.Config{T: 300, Provider: pop, Feed: true,
			BaseFilter: core.Filter{MinAccess: 10}, UseRPV: true, RPVTimeout: 300}).Run(log)
		b.ReportMetric(r.FractionPredicted(), "fracPredicted")
	}
}

func BenchmarkExtVolumePersistence(b *testing.B) {
	benchSetup(b)
	vols := benchProb["aiusa"]
	var buf bytes.Buffer
	var written int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		n, err := vols.WriteTo(&buf)
		if err != nil {
			b.Fatal(err)
		}
		written = n
		if _, err := core.ReadProbVolumes(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(written), "bytes")
}

func BenchmarkExtDeltaEncoding(b *testing.B) {
	old := bytes.Repeat([]byte("the quick brown fox "), 1600) // 32 kB
	new := append([]byte(nil), old...)
	new[100] = 'X'
	new[20000] = 'Y'
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := delta.Make(old, new, delta.DefaultBlockSize)
		enc := p.Encode()
		dec, err := delta.Decode(enc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := delta.Apply(old, dec); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(enc)), "patchBytes")
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	addr := benchEchoServer(b)
	client := httpwire.NewClient()
	defer client.Close()
	reqs := make([]*httpwire.Request, 8)
	for i := range reqs {
		reqs[i] = httpwire.NewRequest("GET", fmt.Sprintf("/r%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.DoAllContext(context.Background(), addr, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEchoServer(b *testing.B) string {
	b.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := &httpwire.Server{Handler: httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		resp := httpwire.NewResponse(200)
		resp.Body = []byte(req.Path)
		return resp
	})}
	go srv.Serve(l)
	b.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// TestProxyFreshHitAllocBudget pins the serving path's allocation count:
// a fully-cached hit must stay within budget or the perf work regresses
// silently. The budget has one alloc of slack over the measured count
// (response struct, pre-sized header map, cache key, View copy-out).
func TestProxyFreshHitAllocBudget(t *testing.T) {
	now := int64(899637753)
	clock := func() int64 { return now }
	st := server.NewStore()
	st.Put(server.Resource{URL: "/a/x.html", Size: 2000, LastModified: now - 86400})
	origin := server.New(st, core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true}), clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	px := proxy.New(proxy.Config{
		Delta:   1 << 30,
		Clock:   clock,
		Resolve: func(string) (string, error) { return ol.Addr().String(), nil },
	})
	defer px.Close()
	req := httpwire.NewRequest("GET", "http://www.bench.test/a/x.html")
	ctx := context.Background()
	if resp := px.ServeWire(ctx, req); resp.Status != 200 {
		t.Fatalf("prime: status %d", resp.Status)
	}

	const budget = 5
	avg := testing.AllocsPerRun(200, func() {
		resp := px.ServeWire(ctx, req)
		if resp.Status != 200 || resp.Header.Get("X-Cache") != "HIT" {
			t.Fatalf("status %d X-Cache %q", resp.Status, resp.Header.Get("X-Cache"))
		}
	})
	if avg > budget {
		t.Errorf("fresh hit allocates %.1f/op, budget %d", avg, budget)
	}
}

// BenchmarkWireFreshHit drives fresh cache hits through the full wire
// stack — real TCP client → proxy server — and reports the syscall budget
// alongside time: writes/op and reads/op are the proxy server's
// wire.server.syscalls.* counters divided by requests served. The vectored
// write path must answer a fresh hit (status line + headers + body) in ONE
// write syscall; cmd/benchgate gates the writes/op column absolutely.
func BenchmarkWireFreshHit(b *testing.B) {
	now := int64(899637753)
	clock := func() int64 { return now }
	st := server.NewStore()
	st.Put(server.Resource{URL: "/a/x.html", Size: 2000, LastModified: now - 86400})
	origin := server.New(st, core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true}), clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: origin}
	go osrv.Serve(ol)
	defer osrv.Close()

	px := proxy.New(proxy.Config{
		Delta:   1 << 30,
		Clock:   clock,
		Resolve: func(string) (string, error) { return ol.Addr().String(), nil },
	})
	defer px.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	wm := obs.NewWireMetrics(px.Obs(), "wire.server")
	psrv := &httpwire.Server{Handler: px, Obs: wm}
	go psrv.Serve(pl)
	defer psrv.Close()

	client := httpwire.NewClient()
	defer client.Close()
	req := httpwire.NewRequest("GET", "http://www.bench.test/a/x.html")
	if resp, err := client.DoContext(context.Background(), pl.Addr().String(), req); err != nil || resp.Status != 200 {
		b.Fatalf("prime: %v (status %v)", err, resp)
	}

	reqs0, writes0, reads0 := wm.Requests.Load(), wm.WriteOps.Load(), wm.ReadOps.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.DoContext(context.Background(), pl.Addr().String(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != 200 || resp.Header.Get("X-Cache") != "HIT" {
			b.Fatalf("status %d X-Cache %q", resp.Status, resp.Header.Get("X-Cache"))
		}
	}
	b.StopTimer()
	served := float64(wm.Requests.Load() - reqs0)
	if served > 0 {
		b.ReportMetric(float64(wm.WriteOps.Load()-writes0)/served, "writes/op")
		b.ReportMetric(float64(wm.ReadOps.Load()-reads0)/served, "reads/op")
	}
}
