// Package metrics provides the small statistical and rendering helpers the
// evaluation harness uses: quantiles, CDFs, and plain-text tables matching
// the paper's presentation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between the two order statistics straddling rank
// q*(n-1) — the "R-7" estimator — so e.g. the 0.25-quantile of
// {10,20,30,40} is 17.5, not an element of xs. xs need not be sorted; it
// is not modified. An empty slice yields NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := q * float64(len(s)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// P returns P(X <= x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(c.sorted, q)
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Table renders aligned plain-text tables in the style of the paper's
// tables: a header row followed by data rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells rendered with fmt.Sprint.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to read.
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) sequence — one curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as "name: (x, y) (x, y) ..." rows, one point
// per line for readability.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series %s:\n", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, "  x=%s y=%s\n", FormatFloat(s.X[i]), FormatFloat(s.Y[i]))
	}
	return b.String()
}

// Pct renders a fraction as a percentage string ("12.3%").
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}
