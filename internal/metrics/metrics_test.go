package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("Q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("Q.25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("interpolated median = %v", got)
	}
}

// TestQuantileNotNearestRank pins the estimator: rank q*(n-1) with linear
// interpolation between straddling order statistics, NOT nearest-rank
// (which would always return an element of xs).
func TestQuantileNotNearestRank(t *testing.T) {
	xs := []float64{40, 10, 30, 20} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.25, 17.5}, {0.5, 25}, {0.75, 32.5}, {0.9, 37}, {1, 40},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Nearest-rank of q=0.25 over 4 samples would be 10; interpolation
	// gives a value not present in xs at all.
	for _, x := range xs {
		if Quantile(xs, 0.25) == x {
			t.Errorf("Quantile(0.25) = %v is an element of xs; nearest-rank behaviour", x)
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.P(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("P(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.Quantile(0.5); got != 2.5 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 100
	}
	c := NewCDF(samples)
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return c.P(a) <= c.P(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = rng.Float64() * 50
	}
	c := NewCDF(samples)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x := c.Quantile(q)
		if p := c.P(x); p < q-0.01 {
			t.Errorf("P(Quantile(%v)) = %v < %v", q, p, q)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"Server", "Requests", "Frac"}}
	tbl.AddRow("sun-like", 300000, 0.206)
	tbl.AddRow("aiusa", 60000, 0.056)
	s := tbl.String()
	if !strings.Contains(s, "sun-like") || !strings.Contains(s, "0.206") {
		t.Errorf("table missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines:\n%s", len(lines), s)
	}
	// Columns aligned: header and separator same width.
	if len(lines[0]) == 0 || len(lines[1]) == 0 {
		t.Error("empty header or separator")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{0.5, "0.500"},
		{123.456, "123.5"},
		{math.NaN(), "-"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "fig2-level1"}
	s.Add(10, 42.5)
	s.Add(100, 7)
	out := s.String()
	if !strings.Contains(out, "fig2-level1") || !strings.Contains(out, "42.5") {
		t.Errorf("series output: %s", out)
	}
	if len(s.X) != 2 || s.Y[1] != 7 {
		t.Error("Add broken")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.206); got != "20.6%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(math.NaN()); got != "-" {
		t.Errorf("Pct(NaN) = %q", got)
	}
}

func TestQuantileMatchesSortedDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// With 101 points, quantile q lands exactly on index 100q.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		want := sorted[int(q*100)]
		if got := Quantile(xs, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}
