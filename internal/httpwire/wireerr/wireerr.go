// Package wireerr defines the typed error taxonomy of the wire layer:
// every failure mode a request can hit on its way to an origin — dial
// timeouts, exchange timeouts, caller cancellation, an open circuit
// breaker, a response cut off mid-body — has one errors.Is-able sentinel,
// so callers branch on failure class instead of parsing error strings, and
// the telemetry layer can count each class separately
// (wire.upstream.err.*).
//
// The package depends on nothing in the repository so any layer (httpwire,
// proxy, obs consumers) can import it without cycles.
package wireerr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
)

// The taxonomy. Wrap sites use fmt.Errorf("...: %w", Err...) (often
// chaining the underlying error with a second %w) so errors.Is holds on
// every path out of the wire layer.
var (
	// ErrDialTimeout: connection establishment to the upstream timed out.
	ErrDialTimeout = errors.New("wire: dial timeout")
	// ErrRequestTimeout: a request/response exchange exceeded its
	// deadline — the per-request timeout or the caller's context deadline,
	// whichever was sooner.
	ErrRequestTimeout = errors.New("wire: request timeout")
	// ErrCanceled: the caller's context was canceled before the exchange
	// completed. Not an upstream fault — circuit breakers must not count
	// it.
	ErrCanceled = errors.New("wire: canceled")
	// ErrCircuitOpen: the per-host circuit breaker is open; the request
	// was refused without dialing.
	ErrCircuitOpen = errors.New("wire: circuit open")
	// ErrTruncatedBody: the connection closed before a complete response
	// was read (mid-chunk, mid-body, or before the status line).
	ErrTruncatedBody = errors.New("wire: truncated body")
)

// Class buckets an error for metrics: one of "dial_timeout",
// "request_timeout", "canceled", "circuit_open", "truncated", or "other".
// The class names match the wire.upstream.err.* counter suffixes
// obs.WireMetrics registers.
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrCircuitOpen):
		return "circuit_open"
	case errors.Is(err, ErrDialTimeout):
		return "dial_timeout"
	case errors.Is(err, ErrRequestTimeout):
		return "request_timeout"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrTruncatedBody):
		return "truncated"
	default:
		return "other"
	}
}

// FromContext maps a context error (ctx.Err()) into the taxonomy: a
// deadline becomes ErrRequestTimeout, a cancellation ErrCanceled. The
// original error stays in the chain, so errors.Is against
// context.DeadlineExceeded / context.Canceled holds too.
func FromContext(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrRequestTimeout, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}

// Exchange classifies an error from a request/response exchange whose
// connection deadline was derived from ctx. Cancellation and deadline
// expiry surface as net timeouts on the connection, so the context is
// consulted first to tell "the caller gave up" from "the upstream stalled".
func Exchange(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if alreadyClassified(err) {
		return err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			return fmt.Errorf("%w: %w", ErrRequestTimeout, err)
		}
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return fmt.Errorf("%w: %w", ErrRequestTimeout, err)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		// The peer closed (or was cut) before a complete response.
		return fmt.Errorf("%w: %w", ErrTruncatedBody, err)
	}
	return err
}

// Dial classifies an error from connection establishment under ctx.
func Dial(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if alreadyClassified(err) {
		return err
	}
	if ctxErr := ctx.Err(); ctxErr != nil && !errors.Is(ctxErr, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	var nerr net.Error
	if (errors.As(err, &nerr) && nerr.Timeout()) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDialTimeout, err)
	}
	return err
}

// alreadyClassified reports whether err carries a taxonomy sentinel, so
// classifying twice (e.g. acquire inside Do) never double-wraps.
func alreadyClassified(err error) bool {
	return errors.Is(err, ErrDialTimeout) || errors.Is(err, ErrRequestTimeout) ||
		errors.Is(err, ErrCanceled) || errors.Is(err, ErrCircuitOpen) ||
		errors.Is(err, ErrTruncatedBody)
}
