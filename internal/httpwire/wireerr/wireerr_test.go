package wireerr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

// timeoutErr is a minimal net.Error with Timeout() == true, standing in for
// the os.ErrDeadlineExceeded-wrapped errors a net.Conn returns after
// SetDeadline fires.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrDialTimeout, "dial_timeout"},
		{ErrRequestTimeout, "request_timeout"},
		{ErrCanceled, "canceled"},
		{ErrCircuitOpen, "circuit_open"},
		{ErrTruncatedBody, "truncated"},
		{fmt.Errorf("do host: %w", ErrRequestTimeout), "request_timeout"},
		{fmt.Errorf("%w: %w", ErrTruncatedBody, io.ErrUnexpectedEOF), "truncated"},
		{errors.New("some dial failure"), "other"},
	}
	for _, tc := range cases {
		if got := Class(tc.err); got != tc.want {
			t.Errorf("Class(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestExchangeClassification(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()

	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want error
	}{
		{"nil", context.Background(), nil, nil},
		{"deadline ctx wins", expired, timeoutErr{}, ErrRequestTimeout},
		{"canceled ctx wins", canceled, timeoutErr{}, ErrCanceled},
		{"net timeout", context.Background(), timeoutErr{}, ErrRequestTimeout},
		{"eof is truncation", context.Background(), io.EOF, ErrTruncatedBody},
		{"unexpected eof is truncation", context.Background(), io.ErrUnexpectedEOF, ErrTruncatedBody},
		{"wrapped eof is truncation", context.Background(), fmt.Errorf("read body: %w", io.ErrUnexpectedEOF), ErrTruncatedBody},
		{"already classified passes through", context.Background(), fmt.Errorf("x: %w", ErrDialTimeout), ErrDialTimeout},
	}
	for _, tc := range cases {
		got := Exchange(tc.ctx, tc.err)
		if tc.want == nil {
			if got != nil {
				t.Errorf("%s: Exchange = %v, want nil", tc.name, got)
			}
			continue
		}
		if !errors.Is(got, tc.want) {
			t.Errorf("%s: Exchange(%v) = %v, not Is(%v)", tc.name, tc.err, got, tc.want)
		}
	}

	// The cause must stay in the chain.
	got := Exchange(context.Background(), io.ErrUnexpectedEOF)
	if !errors.Is(got, io.ErrUnexpectedEOF) {
		t.Errorf("Exchange lost the cause: %v", got)
	}
	if Class(got) != "truncated" {
		t.Errorf("Class(%v) = %q, want truncated", got, Class(got))
	}
}

func TestDialClassification(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want error
	}{
		{"nil", context.Background(), nil, nil},
		{"net timeout", context.Background(), timeoutErr{}, ErrDialTimeout},
		{"ctx deadline", context.Background(), context.DeadlineExceeded, ErrDialTimeout},
		{"ctx canceled", canceled, errors.New("dial: operation canceled"), ErrCanceled},
	}
	for _, tc := range cases {
		got := Dial(tc.ctx, tc.err)
		if tc.want == nil {
			if got != nil {
				t.Errorf("%s: Dial = %v, want nil", tc.name, got)
			}
			continue
		}
		if !errors.Is(got, tc.want) {
			t.Errorf("%s: Dial(%v) = %v, not Is(%v)", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestFromContext(t *testing.T) {
	if got := FromContext(context.DeadlineExceeded); !errors.Is(got, ErrRequestTimeout) || !errors.Is(got, context.DeadlineExceeded) {
		t.Errorf("FromContext(DeadlineExceeded) = %v", got)
	}
	if got := FromContext(context.Canceled); !errors.Is(got, ErrCanceled) || !errors.Is(got, context.Canceled) {
		t.Errorf("FromContext(Canceled) = %v", got)
	}
	if got := FromContext(nil); got != nil {
		t.Errorf("FromContext(nil) = %v", got)
	}
}

func TestNoDoubleWrap(t *testing.T) {
	// Re-classifying an already-classified error must not re-wrap it into a
	// different (or nested) class.
	err := Exchange(context.Background(), io.EOF) // → truncated
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	again := Exchange(canceled, err)
	if !errors.Is(again, ErrTruncatedBody) || errors.Is(again, ErrCanceled) {
		t.Errorf("double classification changed class: %v", again)
	}
}
