package httpwire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"piggyback/internal/core"
)

func TestCanonicalKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"content-length", "Content-Length"},
		{"PIGGY-FILTER", "Piggy-Filter"},
		{"p-volume", "P-Volume"},
		{"te", "Te"},
		{"x", "X"},
	}
	for _, c := range cases {
		if got := CanonicalKey(c.in); got != c.want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHeaderSetGet(t *testing.T) {
	h := make(Header)
	h.Set("piggy-filter", "maxpiggy=10")
	if got := h.Get("PIGGY-FILTER"); got != "maxpiggy=10" {
		t.Errorf("Get = %q", got)
	}
	if !h.Has("Piggy-Filter") {
		t.Error("Has failed")
	}
	h.Del("piggy-FILTER")
	if h.Has("Piggy-Filter") {
		t.Error("Del failed")
	}
}

func TestHTTPDateRoundTrip(t *testing.T) {
	const unix = 899637753 // 1998-07-05 11:22:33 UTC
	s := FormatHTTPDate(unix)
	if s != "Sun, 05 Jul 1998 11:22:33 GMT" {
		t.Errorf("FormatHTTPDate = %q", s)
	}
	got, err := ParseHTTPDate(s)
	if err != nil || got != unix {
		t.Errorf("ParseHTTPDate = %d, %v", got, err)
	}
	if _, err := ParseHTTPDate("yesterday"); err == nil {
		t.Error("bad date accepted")
	}
}

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRequest(bufio.NewWriter(&buf), req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadRequest: %v\nwire:\n%s", err, buf.String())
	}
	return got
}

func roundTripResponse(t *testing.T, resp *Response, noBody bool) *Response {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&buf), resp, noBody); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf), noBody)
	if err != nil {
		t.Fatalf("ReadResponse: %v\nwire:\n%s", err, buf.String())
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	req := NewRequest("GET", "/mafia.html")
	req.Header.Set("Host", "sig.com")
	req.Header.Set("TE", "chunked")
	req.Header.Set("Piggy-Filter", `maxpiggy=10; rpv="3,4"`)
	got := roundTripRequest(t, req)
	if got.Method != "GET" || got.Path != "/mafia.html" || got.Proto != "HTTP/1.1" {
		t.Errorf("request line: %+v", got)
	}
	if got.Header.Get("Piggy-Filter") != `maxpiggy=10; rpv="3,4"` {
		t.Errorf("filter header: %q", got.Header.Get("Piggy-Filter"))
	}
	if !got.AcceptsChunkedTrailer() {
		t.Error("TE: chunked not recognized")
	}
}

func TestRequestWithBodyRoundTrip(t *testing.T) {
	req := NewRequest("POST", "/submit")
	req.Body = []byte("key=value&x=1")
	got := roundTripRequest(t, req)
	if string(got.Body) != "key=value&x=1" {
		t.Errorf("body = %q", got.Body)
	}
}

func TestResponseContentLengthRoundTrip(t *testing.T) {
	resp := NewResponse(200)
	resp.Header.Set("Last-Modified", FormatHTTPDate(899637753))
	resp.Body = []byte("<html>hello</html>")
	got := roundTripResponse(t, resp, false)
	if got.Status != 200 || string(got.Body) != "<html>hello</html>" {
		t.Errorf("got %+v body=%q", got, got.Body)
	}
	if lm, ok := got.LastModified(); !ok || lm != 899637753 {
		t.Errorf("LastModified = %d, %v", lm, ok)
	}
	if got.Trailer != nil {
		t.Error("unexpected trailer")
	}
}

func TestResponseChunkedTrailerRoundTrip(t *testing.T) {
	resp := NewResponse(200)
	resp.Body = []byte("body bytes here")
	resp.Trailer = Header{}
	resp.Trailer.Set("P-Volume", "17; /a/b.html 866268400 4096")
	got := roundTripResponse(t, resp, false)
	if string(got.Body) != "body bytes here" {
		t.Errorf("body = %q", got.Body)
	}
	if got.Trailer.Get("P-Volume") != "17; /a/b.html 866268400 4096" {
		t.Errorf("trailer = %v", got.Trailer)
	}
}

func TestChunkedWireFormat(t *testing.T) {
	// The response must follow §2.3: Trailer header announcing P-Volume,
	// chunked body, zero-length chunk, trailer field.
	resp := NewResponse(200)
	resp.Body = []byte("xyz")
	resp.Trailer = Header{}
	resp.Trailer.Set("P-Volume", "5; /a 1 2")
	var buf bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&buf), resp, false); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	for _, want := range []string{
		"HTTP/1.1 200 OK\r\n",
		"Trailer: P-Volume\r\n",
		"Transfer-Encoding: chunked\r\n",
		"3\r\nxyz\r\n",
		"0\r\n",
		"P-Volume: 5; /a 1 2\r\n",
	} {
		if !strings.Contains(wire, want) {
			t.Errorf("wire missing %q:\n%s", want, wire)
		}
	}
	if strings.Contains(wire, "Content-Length") {
		t.Errorf("chunked response must not carry Content-Length:\n%s", wire)
	}
}

func TestNotModifiedWithPiggybackTrailer(t *testing.T) {
	// A 304 can still carry a piggyback in a chunked trailer.
	resp := NewResponse(304)
	resp.Trailer = Header{}
	resp.Trailer.Set("P-Volume", "9; /x 5 6")
	got := roundTripResponse(t, resp, false)
	if got.Status != 304 {
		t.Fatalf("status = %d", got.Status)
	}
	if len(got.Body) != 0 {
		t.Errorf("304 body = %q", got.Body)
	}
	if got.Trailer.Get("P-Volume") != "9; /x 5 6" {
		t.Errorf("trailer = %v", got.Trailer)
	}
}

func TestPlain304HasNoBody(t *testing.T) {
	resp := NewResponse(304)
	got := roundTripResponse(t, resp, false)
	if got.Status != 304 || len(got.Body) != 0 || got.Trailer != nil {
		t.Errorf("got %+v", got)
	}
}

func TestHeadResponseKeepsFraming(t *testing.T) {
	resp := NewResponse(200)
	resp.Body = []byte("should not be sent")
	var buf bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&buf), resp, true); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	if !strings.Contains(wire, "Content-Length: 18") {
		t.Errorf("HEAD response lost Content-Length:\n%s", wire)
	}
	if strings.Contains(wire, "should not be sent") {
		t.Errorf("HEAD response carried a body:\n%s", wire)
	}
	got, err := ReadResponse(bufio.NewReader(&buf), true)
	if err != nil || len(got.Body) != 0 {
		t.Errorf("reading HEAD response: %v body=%q", err, got.Body)
	}
}

func TestReadRequestErrors(t *testing.T) {
	bad := []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / SPDY/3\r\n\r\n",
		"GET / HTTP/1.1\r\nBad Header Line\r\n\r\n",
		"GET / HTTP/1.1\r\nBad Key: v\r\n\r\n",
	}
	for _, s := range bad {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(s))); err == nil {
			t.Errorf("ReadRequest(%q) succeeded", s)
		}
	}
}

func TestReadResponseErrors(t *testing.T) {
	bad := []string{
		"HTTP/1.1 xyz OK\r\n\r\n",
		"NOTHTTP 200 OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: -4\r\n\r\n",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
	}
	for _, s := range bad {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(s)), false); err == nil {
			t.Errorf("ReadResponse(%q) succeeded", s)
		}
	}
}

func TestReadResponseToEOF(t *testing.T) {
	// No framing headers: body extends to connection close (HTTP/1.0
	// style).
	s := "HTTP/1.1 200 OK\r\n\r\nraw body to eof"
	got, err := ReadResponse(bufio.NewReader(strings.NewReader(s)), false)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "raw body to eof" {
		t.Errorf("body = %q", got.Body)
	}
}

func TestResponseRoundTripProperty(t *testing.T) {
	f := func(body []byte, status uint8, withTrailer bool) bool {
		// Status range avoids 304, whose body is dropped by design.
		resp := NewResponse(200 + int(status)%99)
		resp.Body = body
		if withTrailer {
			resp.Trailer = Header{}
			resp.Trailer.Set("P-Volume", "1; /x 2 3")
		}
		var buf bytes.Buffer
		if err := WriteResponse(bufio.NewWriter(&buf), resp, false); err != nil {
			return false
		}
		got, err := ReadResponse(bufio.NewReader(&buf), false)
		if err != nil {
			return false
		}
		if got.Status != resp.Status {
			return false
		}
		if !bytes.Equal(got.Body, body) && !(len(got.Body) == 0 && len(body) == 0) {
			return false
		}
		if withTrailer && got.Trailer.Get("P-Volume") != "1; /x 2 3" {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPiggybackHelpers(t *testing.T) {
	req := NewRequest("GET", "/r.html")
	filter := core.Filter{MaxPiggy: 10, RPV: []core.VolumeID{3, 4}}
	SetFilter(req, filter)
	if !req.AcceptsChunkedTrailer() {
		t.Error("SetFilter must add TE: chunked")
	}
	got, ok := GetFilter(req)
	if !ok || got.MaxPiggy != 10 || len(got.RPV) != 2 {
		t.Errorf("GetFilter = %+v, %v", got, ok)
	}

	resp := NewResponse(200)
	msg := core.Message{Volume: 7, Elements: []core.Element{{URL: "/a", Size: 1, LastModified: 2}}}
	AttachPiggyback(resp, msg)
	rt := roundTripResponse(t, resp, false)
	got2, ok := ExtractPiggyback(rt)
	if !ok || got2.Volume != 7 || len(got2.Elements) != 1 || got2.Elements[0].URL != "/a" {
		t.Errorf("ExtractPiggyback = %+v, %v", got2, ok)
	}
}

func TestGetFilterAbsentOrMalformed(t *testing.T) {
	req := NewRequest("GET", "/x")
	if _, ok := GetFilter(req); ok {
		t.Error("absent filter reported present")
	}
	req.Header.Set(FieldPiggyFilter, "pt=nonsense")
	if _, ok := GetFilter(req); ok {
		t.Error("malformed filter reported present")
	}
}

func TestExtractPiggybackAbsent(t *testing.T) {
	resp := NewResponse(200)
	if _, ok := ExtractPiggyback(resp); ok {
		t.Error("absent piggyback reported present")
	}
	resp.Trailer = Header{}
	resp.Trailer.Set(FieldPVolume, "not parseable")
	if _, ok := ExtractPiggyback(resp); ok {
		t.Error("malformed piggyback reported present")
	}
}
