package httpwire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piggyback/internal/core"
)

// startServer runs a Server on a loopback listener and returns its address
// and a cleanup func.
func startServer(t *testing.T, h Handler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h, IdleTimeout: 2 * time.Second}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func echoHandler(_ context.Context, req *Request) *Response {
	resp := NewResponse(200)
	resp.Body = []byte("echo:" + req.Path)
	return resp
}

func TestClientServerBasic(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()
	resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/hello"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "echo:/hello" {
		t.Fatalf("got %d %q", resp.Status, resp.Body)
	}
}

func TestPersistentConnectionReuse(t *testing.T) {
	var conns int32
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingListener{Listener: l, n: &conns}
	srv := &Server{Handler: HandlerFunc(echoHandler)}
	go srv.Serve(counting)
	defer srv.Close()

	c := NewClient()
	defer c.Close()
	for i := 0; i < 10; i++ {
		resp, err := c.DoContext(context.Background(), l.Addr().String(), NewRequest("GET", fmt.Sprintf("/r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 200 {
			t.Fatalf("status = %d", resp.Status)
		}
	}
	if got := atomic.LoadInt32(&conns); got != 1 {
		t.Errorf("10 requests used %d connections, want 1 (persistent)", got)
	}
}

type countingListener struct {
	net.Listener
	n *int32
}

func (c *countingListener) Accept() (net.Conn, error) {
	conn, err := c.Listener.Accept()
	if err == nil {
		atomic.AddInt32(c.n, 1)
	}
	return conn, err
}

func TestConnectionCloseHonored(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()
	req := NewRequest("GET", "/bye")
	req.Header.Set("Connection", "close")
	resp, err := c.DoContext(context.Background(), addr, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.WantsClose() {
		t.Error("server should echo Connection: close")
	}
	// Next request must transparently redial.
	resp, err = c.DoContext(context.Background(), addr, NewRequest("GET", "/again"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("redial failed: %v", err)
	}
}

func TestClientRetriesStaleConnection(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()
	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/a")); err != nil {
		t.Fatal(err)
	}
	// Kill the pooled idle connection behind the client's back.
	closeIdleConns(c)
	resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/b"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("retry on stale connection failed: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClient()
			defer c.Close()
			for i := 0; i < 20; i++ {
				path := fmt.Sprintf("/g%d/r%d", g, i)
				resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", path))
				if err != nil {
					t.Errorf("do: %v", err)
					return
				}
				if string(resp.Body) != "echo:"+path {
					t.Errorf("wrong body %q for %s", resp.Body, path)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSharedClientConcurrent(t *testing.T) {
	// One client shared by many goroutines: each in-flight request owns
	// its pooled connection exclusively, so bodies never cross wires.
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				path := fmt.Sprintf("/s%d-%d", g, i)
				resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", path))
				if err != nil || string(resp.Body) != "echo:"+path {
					t.Errorf("shared client: %v %q", err, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestEndToEndPiggybackExchange(t *testing.T) {
	// A handler that applies the real filter/piggyback helpers over a
	// live TCP connection — the §2.3 exchange end to end.
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true})
	vols.Observe(core.Access{Source: "seed", Time: 1, Element: core.Element{URL: "/a/x.html", Size: 10, LastModified: 5}})
	vols.Observe(core.Access{Source: "seed", Time: 2, Element: core.Element{URL: "/a/y.html", Size: 20, LastModified: 6}})

	h := HandlerFunc(func(_ context.Context, req *Request) *Response {
		resp := NewResponse(200)
		resp.Body = []byte("content of " + req.Path)
		if f, ok := GetFilter(req); ok && req.AcceptsChunkedTrailer() {
			if m, ok := vols.Piggyback(req.Path, 3, f); ok {
				AttachPiggyback(resp, m)
			}
		}
		return resp
	})
	addr := startServer(t, h)
	c := NewClient()
	defer c.Close()

	req := NewRequest("GET", "/a/x.html")
	SetFilter(req, core.Filter{MaxPiggy: 10})
	resp, err := c.DoContext(context.Background(), addr, req)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "content of /a/x.html" {
		t.Fatalf("body = %q", resp.Body)
	}
	m, ok := ExtractPiggyback(resp)
	if !ok {
		t.Fatal("no piggyback in trailer")
	}
	if len(m.Elements) != 1 || m.Elements[0].URL != "/a/y.html" {
		t.Fatalf("piggyback = %+v", m)
	}

	// Second request listing the volume in the RPV filter: no piggyback.
	req2 := NewRequest("GET", "/a/x.html")
	SetFilter(req2, core.Filter{MaxPiggy: 10, RPV: []core.VolumeID{m.Volume}})
	resp2, err := c.DoContext(context.Background(), addr, req2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ExtractPiggyback(resp2); ok {
		t.Error("RPV-suppressed request still got a piggyback")
	}
}

func TestServerMalformedRequestGets400(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("NONSENSE\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := conn.Read(buf)
	if n == 0 {
		t.Fatal("no response to malformed request")
	}
	if got := string(buf[:n]); !contains(got, "400") {
		t.Errorf("expected 400, got %q", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestServerCloseUnblocksServe(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: HandlerFunc(echoHandler)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	time.Sleep(50 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
