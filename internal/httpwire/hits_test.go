package httpwire

import (
	"reflect"
	"strings"
	"testing"
)

func TestHitsRoundTrip(t *testing.T) {
	req := NewRequest("GET", "/x")
	SetHits(req, []string{"/a/one.html", "/a/two.gif"})
	got := GetHits(req)
	// Most-recent-first encoding reverses the slice.
	want := []string{"/a/two.gif", "/a/one.html"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GetHits = %v, want %v", got, want)
	}
}

func TestHitsEmpty(t *testing.T) {
	req := NewRequest("GET", "/x")
	SetHits(req, nil)
	if req.Header.Has(FieldPiggyHits) {
		t.Error("empty hits should not set the header")
	}
	if GetHits(req) != nil {
		t.Error("GetHits on absent header")
	}
}

func TestHitsSkipsUnencodableURLs(t *testing.T) {
	req := NewRequest("GET", "/x")
	SetHits(req, []string{"/ok.html", "/bad url.html", "/with,comma", ""})
	got := GetHits(req)
	if len(got) != 1 || got[0] != "/ok.html" {
		t.Fatalf("GetHits = %v", got)
	}
}

func TestHitsBudget(t *testing.T) {
	var urls []string
	for i := 0; i < 500; i++ {
		urls = append(urls, "/directory/with/long/path/resource-"+strings.Repeat("x", 20)+".html")
	}
	req := NewRequest("GET", "/x")
	SetHits(req, urls)
	if len(req.Header.Get(FieldPiggyHits)) > maxHitsHeader {
		t.Errorf("header exceeds budget: %d bytes", len(req.Header.Get(FieldPiggyHits)))
	}
	if len(GetHits(req)) == 0 {
		t.Error("budget truncation dropped everything")
	}
	// The freshest (last) hit must survive truncation.
	urls[len(urls)-1] = "/freshest.html"
	req2 := NewRequest("GET", "/x")
	SetHits(req2, urls)
	got := GetHits(req2)
	if got[0] != "/freshest.html" {
		t.Errorf("freshest hit lost: first = %q", got[0])
	}
}
