package httpwire

import (
	"piggyback/internal/core"
)

// Piggybacking header fields (§2.3). The proxy's GET or HEAD request
// carries "TE: chunked" and a Piggy-Filter header; a cooperating server
// appends a P-Volume field in the chunked trailer of the response.
const (
	// FieldPiggyFilter is the request header carrying the proxy filter.
	FieldPiggyFilter = "Piggy-Filter"
	// FieldPVolume is the trailer field carrying the piggyback message.
	FieldPVolume = "P-Volume"
)

// SetFilter attaches a proxy filter to the request, along with the TE
// header announcing that a chunked trailer is acceptable.
func SetFilter(req *Request, f core.Filter) {
	if req.Header == nil {
		req.Header = make(Header)
	}
	req.Header.Set("TE", "chunked")
	req.Header.Set(FieldPiggyFilter, f.Header())
}

// GetFilter extracts the proxy filter from a request. ok is false when the
// request carries no Piggy-Filter field; a malformed filter also yields
// ok=false (a server must not fail a regular request over a bad hint).
func GetFilter(req *Request) (core.Filter, bool) {
	v := req.Header.Get(FieldPiggyFilter)
	if v == "" {
		return core.Filter{}, false
	}
	f, err := core.ParseFilter(v)
	if err != nil {
		return core.Filter{}, false
	}
	return f, true
}

// AttachPiggyback adds the piggyback message to the response's trailer,
// switching the response to chunked framing when written.
func AttachPiggyback(resp *Response, m core.Message) {
	if resp.Trailer == nil {
		resp.Trailer = make(Header)
	}
	resp.Trailer.Set(FieldPVolume, m.Encode())
}

// ExtractPiggyback parses the piggyback message from a response trailer.
// ok is false when no P-Volume field is present or it is malformed.
func ExtractPiggyback(resp *Response) (core.Message, bool) {
	if resp.Trailer == nil {
		return core.Message{}, false
	}
	v := resp.Trailer.Get(FieldPVolume)
	if v == "" {
		return core.Message{}, false
	}
	m, err := core.ParseMessage(v)
	if err != nil {
		return core.Message{}, false
	}
	return m, true
}
