package httpwire

import (
	"bufio"
	"context"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"piggyback/internal/httpwire/wireerr"
	"piggyback/internal/obs"
)

// Handler responds to a request. Implementations must be safe for
// concurrent use; one goroutine serves each connection. ctx is the
// per-request context: it is cancelled when the serving connection tears
// down or the Server is closed, so long-running handlers (upstream
// fetches, single-flight waits) can abandon work nobody will read.
type Handler interface {
	ServeWire(ctx context.Context, req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(context.Context, *Request) *Response

// ServeWire calls f.
func (f HandlerFunc) ServeWire(ctx context.Context, req *Request) *Response {
	return f(ctx, req)
}

// Server serves HTTP/1.1 over a listener with persistent connections:
// requests on one connection are handled in order, and the connection
// stays open until the client sends Connection: close, the idle timeout
// fires, or either side closes (§1: persistent connections avoid the
// round-trip delays of establishing a TCP connection per transfer).
type Server struct {
	Handler Handler
	// IdleTimeout closes connections with no request activity. Zero
	// means 60 seconds, the uniform timeout the paper mentions.
	IdleTimeout time.Duration
	// ErrorLog receives connection-level errors; nil discards them.
	ErrorLog *log.Logger
	// Obs, when non-nil, receives wire-level telemetry: per-request
	// handle+write latency, exchange counts, and body bytes.
	Obs *obs.WireMetrics

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
}

// context returns the server-lifetime context, creating it on first use.
// Caller holds s.mu.
func (s *Server) contextLocked() context.Context {
	if s.baseCtx == nil {
		s.baseCtx, s.cancel = context.WithCancel(context.Background())
	}
	return s.baseCtx
}

// Serve accepts connections on l until Close. It always returns a non-nil
// error; after Close it returns net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	base := s.contextLocked()
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(base, conn)
	}
}

// ListenAndServe listens on addr and serves. The returned address is
// available via Addr after the listener is bound; for tests, bind first
// with net.Listen and call Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close shuts the listener and all live connections, cancels every
// in-flight request context, then waits for connection goroutines to
// drain. Handlers that honor their context return promptly instead of
// lingering until a read deadline fires.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.cancel != nil {
		s.cancel()
	}
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return 60 * time.Second
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}

func (s *Server) serveConn(base context.Context, conn net.Conn) {
	defer s.wg.Done()
	// The per-connection context: cancelled when this connection is done
	// or the whole server shuts down (base). Requests served on this
	// connection share it — a connection carries one request at a time.
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	src := io.Reader(conn)
	if s.Obs != nil {
		src = &countingReader{r: conn, ops: s.Obs.ReadOps}
	}
	br := GetReader(src)
	defer PutReader(br)
	// Responses accumulate as writev segments and go to the socket in one
	// vectored write per coalesced batch — a pipelined burst of requests
	// costs one read and one write syscall for the whole burst.
	out := getVec()
	defer putVec(out)
	pending := 0
	flush := func() error {
		if pending == 0 {
			return nil
		}
		err := writeVec(conn, out)
		if s.Obs != nil {
			s.Obs.WriteOps.Inc()
			s.Obs.WriteBatch.Observe(int64(pending))
		}
		out.reset()
		pending = 0
		return err
	}
	for {
		// Only flush queued responses and arm the idle deadline when the
		// next request isn't already sitting in the read buffer; never
		// block on the socket while owing the client a response.
		if !requestBuffered(br) {
			if err := flush(); err != nil {
				if s.Obs != nil {
					s.Obs.Errors.Inc()
				}
				s.logf("httpwire: write response to %s: %v", conn.RemoteAddr(), err)
				return
			}
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout())); err != nil {
				return
			}
		}
		req, err := ReadRequest(br)
		if err != nil {
			_ = flush()
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				var nerr net.Error
				if !(errors.As(err, &nerr) && nerr.Timeout()) {
					s.logf("httpwire: read request from %s: %v", conn.RemoteAddr(), err)
					if errors.Is(err, ErrMalformed) {
						resp := NewResponse(400)
						resp.Header.Set("Connection", "close")
						out.appendResponse(resp, false)
						pending++
						_ = flush()
					}
				}
			}
			return
		}
		req.RemoteAddr = conn.RemoteAddr().String()
		start := time.Now()
		resp := s.Handler.ServeWire(ctx, req)
		if resp == nil {
			resp = NewResponse(500)
		}
		close := req.Header.WantsClose() || req.Proto == "HTTP/1.0"
		if close {
			if resp.Header == nil {
				resp.Header = make(Header)
			}
			resp.Header.Set("Connection", "close")
		}
		out.appendResponse(resp, req.Method == "HEAD")
		pending++
		if s.Obs != nil {
			s.Obs.Requests.Inc()
			s.Obs.BytesIn.Add(int64(len(req.Body)))
			s.Obs.BytesOut.Add(int64(len(resp.Body)))
			s.Obs.Latency.Observe(time.Since(start).Microseconds())
		}
		if close || resp.Header.WantsClose() {
			if err := flush(); err != nil {
				if s.Obs != nil {
					s.Obs.Errors.Inc()
				}
				s.logf("httpwire: write response to %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		// Bound the batch so a long pipeline doesn't pin unbounded body
		// bytes before anything reaches the wire.
		if out.size() >= maxResponseBatchBytes {
			if err := flush(); err != nil {
				if s.Obs != nil {
					s.Obs.Errors.Inc()
				}
				s.logf("httpwire: write response to %s: %v", conn.RemoteAddr(), err)
				return
			}
		}
	}
}

// maxResponseBatchBytes caps how many serialized response bytes the serve
// loop queues before forcing a vectored write.
const maxResponseBatchBytes = 256 << 10

// Client issues requests over a per-host pool of persistent connections (a
// proxy multiplexes many clients onto persistent connections to each
// server, §1). Each origin gets up to MaxConnsPerHost concurrent
// connections; idle connections are kept in a LIFO free list and reaped
// after IdleConnTimeout. When every connection is busy and the host is at
// its bound, acquirers wait for a release instead of dialing — so a burst
// of N concurrent requests coalesces onto at most MaxConnsPerHost dials.
type Client struct {
	// DialTimeout bounds connection establishment; zero means 5s. A
	// sooner context deadline wins.
	DialTimeout time.Duration
	// RequestTimeout caps one request/response exchange; zero = 30s. The
	// effective deadline is the sooner of this cap and the caller's
	// context deadline.
	RequestTimeout time.Duration
	// MaxConnsPerHost bounds the pool size per origin address; zero
	// means 16. Requests beyond the bound queue for a released
	// connection rather than dialing.
	MaxConnsPerHost int
	// IdleConnTimeout is how long an idle pooled connection survives
	// before being reaped; zero means 60s (the server-side idle timeout,
	// so the two ends age connections on the same clock).
	IdleConnTimeout time.Duration
	// RetryBackoff is the pause before the single retry after a failure
	// on a reused connection; zero means 2ms.
	RetryBackoff time.Duration
	// MaxInflightPerConn, when > 1, multiplexes that many concurrent
	// exchanges onto each persistent connection: a writer goroutine
	// coalesces queued requests into single writev bursts and a reader
	// goroutine demuxes the pipelined responses in order, so N in-flight
	// requests to one host share one read/write pair instead of N. An
	// exchange that fails on a multiplexed connection (possibly another
	// exchange's fault) falls back to the classic one-exchange-per-conn
	// pool. Zero or one keeps the classic path exclusively.
	MaxInflightPerConn int
	// Obs, when non-nil, receives wire-level telemetry: per-exchange
	// round-trip latency, retries, dials, body bytes, per-class failure
	// counters, and the pool gauges (open/idle connections, waits,
	// reaped conns).
	Obs *obs.WireMetrics

	mu       sync.Mutex
	pools    map[string]*pool
	muxHosts map[string]*muxHost
	closed   bool
}

// pool is the per-origin connection pool: every open connection is in
// live; the ones not currently carrying a request are also in idle.
// active counts open connections plus in-flight dials and never exceeds
// the client's MaxConnsPerHost.
type pool struct {
	c    *Client
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	idle   []*clientConn // oldest first; reused LIFO from the tail
	live   map[*clientConn]struct{}
	active int
	closed bool
}

type clientConn struct {
	pool     *pool
	conn     net.Conn
	br       *bufio.Reader
	lastUsed time.Time
}

// releaseBuffers returns the connection's pooled reader (requests go out
// as vectored writes, so there is no writer to pool). Callers must hold
// exclusive use of the connection (its holder, or the pool for a conn on
// the idle list); a busy connection's buffers are released by its holder
// via discardConn, never by Close underneath it.
func (cc *clientConn) releaseBuffers() {
	if cc.br != nil {
		PutReader(cc.br)
		cc.br = nil
	}
}

// NewClient returns a Client ready for use.
func NewClient() *Client { return &Client{pools: make(map[string]*pool)} }

func (c *Client) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 5 * time.Second
}

func (c *Client) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 30 * time.Second
}

func (c *Client) maxConnsPerHost() int {
	if c.MaxConnsPerHost > 0 {
		return c.MaxConnsPerHost
	}
	return 16
}

func (c *Client) idleConnTimeout() time.Duration {
	if c.IdleConnTimeout > 0 {
		return c.IdleConnTimeout
	}
	return 60 * time.Second
}

func (c *Client) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 2 * time.Millisecond
}

// sleepBackoff pauses for d unless ctx ends first. A cancelled caller gets
// wireerr.FromContext immediately instead of burning the full backoff — the
// retry path must never outlive the request it serves.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return wireerr.FromContext(ctx.Err())
	}
}

// countError records a failed exchange: the total plus its taxonomy class.
func (c *Client) countError(err error) {
	if c.Obs == nil {
		return
	}
	c.Obs.Errors.Inc()
	c.Obs.CountErrClass(wireerr.Class(err))
}

// DoContext sends req to the server at addr ("host:port") and returns its
// response. With MaxInflightPerConn > 1 the exchange rides a multiplexed
// persistent connection shared with other concurrent exchanges to addr
// (one writev burst and one reader for all of them); a failure there that
// isn't the caller's own cancellation falls back to the classic pooled
// one-exchange-per-connection path. The exchange is bounded by the sooner
// of ctx's deadline and RequestTimeout; cancelling ctx interrupts the
// exchange. Failures are classified per the wireerr taxonomy: errors.Is
// against wireerr.ErrDialTimeout, ErrRequestTimeout, ErrCanceled, and
// ErrTruncatedBody holds on the corresponding paths.
func (c *Client) DoContext(ctx context.Context, addr string, req *Request) (*Response, error) {
	if c.MaxInflightPerConn > 1 {
		start := time.Now()
		resp, fallback, err := c.muxDo(ctx, addr, req)
		if err == nil {
			if c.Obs != nil {
				c.Obs.Requests.Inc()
				c.Obs.BytesOut.Add(int64(len(req.Body)))
				c.Obs.BytesIn.Add(int64(len(resp.Body)))
				c.Obs.Latency.Observe(time.Since(start).Microseconds())
			}
			return resp, nil
		}
		if !fallback || ctx.Err() != nil {
			c.countError(err)
			return nil, err
		}
		// The multiplexed connection died under this exchange — possibly
		// another exchange's fault — so the request itself may still be
		// serviceable; retry it with a connection of its own.
		if c.Obs != nil {
			c.Obs.Retries.Inc()
		}
	}
	return c.doPooled(ctx, addr, req)
}

// doPooled runs one exchange on an exclusively-held pooled connection:
// a request that fails on a reused connection (the server may have timed
// it out) is retried once on a fresh connection after a short backoff.
func (c *Client) doPooled(ctx context.Context, addr string, req *Request) (*Response, error) {
	start := time.Now()
	cc, reused, err := c.acquire(ctx, addr)
	if err != nil {
		c.countError(err)
		return nil, err
	}
	resp, err := c.roundTrip(ctx, cc, req)
	// Only retry a reused-connection failure while the caller still
	// wants the response; a cancelled context makes the retry pointless.
	if err != nil && reused && ctx.Err() == nil {
		if c.Obs != nil {
			c.Obs.Retries.Inc()
		}
		c.discardConn(cc)
		if serr := sleepBackoff(ctx, c.retryBackoff()); serr != nil {
			c.countError(serr)
			return nil, serr
		}
		cc, _, err = c.acquire(ctx, addr)
		if err != nil {
			c.countError(err)
			return nil, err
		}
		resp, err = c.roundTrip(ctx, cc, req)
	}
	if err != nil {
		c.discardConn(cc)
		c.countError(err)
		return nil, err
	}
	// A context that ended during the exchange may have poked the conn's
	// deadline (see roundTrip); don't park a possibly-poisoned conn.
	if resp.Header.WantsClose() || ctx.Err() != nil {
		c.discardConn(cc)
	} else {
		c.releaseConn(cc)
	}
	if c.Obs != nil {
		c.Obs.Requests.Inc()
		c.Obs.BytesOut.Add(int64(len(req.Body)))
		c.Obs.BytesIn.Add(int64(len(resp.Body)))
		c.Obs.Latency.Observe(time.Since(start).Microseconds())
	}
	return resp, nil
}

// roundTrip runs one exchange on a connection the caller owns exclusively.
// The connection deadline is the sooner of ctx's deadline and the flat
// RequestTimeout; cancellation is propagated by yanking the deadline into
// the past, which fails the blocked read/write with a net timeout that
// wireerr.Exchange then reports as ErrCanceled.
func (c *Client) roundTrip(ctx context.Context, cc *clientConn, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireerr.FromContext(err)
	}
	deadline := time.Now().Add(c.requestTimeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := cc.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() {
		cc.conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	v := getVec()
	v.appendRequest(req)
	err := writeVec(cc.conn, v)
	putVec(v)
	if c.Obs != nil {
		c.Obs.WriteOps.Inc()
		c.Obs.WriteBatch.Observe(1)
	}
	if err != nil {
		return nil, wireerr.Exchange(ctx, err)
	}
	resp, err := ReadResponse(cc.br, req.Method == "HEAD")
	if err != nil {
		return nil, wireerr.Exchange(ctx, err)
	}
	return resp, nil
}

// getPool returns the pool for addr, creating it on first use.
func (c *Client) getPool(addr string) (*pool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, net.ErrClosed
	}
	if c.pools == nil {
		c.pools = make(map[string]*pool)
	}
	p, ok := c.pools[addr]
	if !ok {
		p = &pool{c: c, addr: addr, live: make(map[*clientConn]struct{})}
		p.cond = sync.NewCond(&p.mu)
		c.pools[addr] = p
	}
	return p, nil
}

// acquire hands the caller exclusive use of a connection to addr: a pooled
// idle one (reused), a fresh dial when the pool is under its bound, or —
// at the bound — the next released connection. The caller must hand it
// back via releaseConn or discardConn.
func (c *Client) acquire(ctx context.Context, addr string) (*clientConn, bool, error) {
	p, err := c.getPool(addr)
	if err != nil {
		return nil, false, err
	}
	return p.get(ctx)
}

func (p *pool) get(ctx context.Context) (*clientConn, bool, error) {
	max := p.c.maxConnsPerHost()
	// A cancelled waiter must wake from cond.Wait; broadcast on ctx done.
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	waited := false
	for {
		if err := ctx.Err(); err != nil {
			p.mu.Unlock()
			return nil, false, wireerr.FromContext(err)
		}
		if p.closed {
			p.mu.Unlock()
			return nil, false, net.ErrClosed
		}
		p.reapLocked(time.Now())
		if n := len(p.idle); n > 0 {
			cc := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			if p.c.Obs != nil {
				p.c.Obs.ConnsIdle.Add(-1)
			}
			return cc, true, nil
		}
		if p.active < max {
			p.active++
			p.mu.Unlock()
			return p.dial(ctx)
		}
		if !waited {
			waited = true
			if p.c.Obs != nil {
				p.c.Obs.PoolWaits.Inc()
			}
		}
		p.cond.Wait()
	}
}

// dial establishes a new connection for a slot the caller already holds.
func (p *pool) dial(ctx context.Context) (*clientConn, bool, error) {
	d := net.Dialer{Timeout: p.c.dialTimeout()}
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		p.mu.Lock()
		p.active--
		p.cond.Signal()
		p.mu.Unlock()
		return nil, false, wireerr.Dial(ctx, err)
	}
	src := io.Reader(conn)
	if p.c.Obs != nil {
		src = &countingReader{r: conn, ops: p.c.Obs.ReadOps}
	}
	cc := &clientConn{pool: p, conn: conn, br: GetReader(src)}
	p.mu.Lock()
	if p.closed {
		p.active--
		p.mu.Unlock()
		conn.Close()
		cc.releaseBuffers()
		return nil, false, net.ErrClosed
	}
	p.live[cc] = struct{}{}
	p.mu.Unlock()
	if p.c.Obs != nil {
		p.c.Obs.Dials.Inc()
		p.c.Obs.ConnsOpen.Inc()
	}
	return cc, false, nil
}

// reapLocked closes idle connections older than IdleConnTimeout. Caller
// holds p.mu.
func (p *pool) reapLocked(now time.Time) {
	timeout := p.c.idleConnTimeout()
	reaped := 0
	for len(p.idle) > 0 && now.Sub(p.idle[0].lastUsed) > timeout {
		cc := p.idle[0]
		p.idle = p.idle[1:]
		delete(p.live, cc)
		p.active--
		cc.conn.Close()
		cc.releaseBuffers()
		reaped++
	}
	if reaped > 0 {
		if p.c.Obs != nil {
			p.c.Obs.ConnsIdle.Add(-int64(reaped))
			p.c.Obs.ConnsOpen.Add(-int64(reaped))
			p.c.Obs.IdleClosed.Add(int64(reaped))
		}
		p.cond.Broadcast()
	}
}

// releaseConn returns a healthy connection to its pool's idle list.
func (c *Client) releaseConn(cc *clientConn) {
	p := cc.pool
	// Clear the per-request deadline so the parked connection doesn't
	// fail its next exchange with a stale timeout.
	cc.conn.SetDeadline(time.Time{})
	cc.lastUsed = time.Now()
	p.mu.Lock()
	if p.closed {
		p.removeLocked(cc)
		p.mu.Unlock()
		cc.conn.Close()
		return
	}
	p.idle = append(p.idle, cc)
	p.cond.Signal()
	p.mu.Unlock()
	if c.Obs != nil {
		c.Obs.ConnsIdle.Inc()
	}
}

// discardConn closes a connection and frees its pool slot. The caller holds
// exclusive use of cc, so its pooled buffers go back here — even when the
// pool was closed underneath it (Close skips busy connections' buffers for
// exactly this handoff).
func (c *Client) discardConn(cc *clientConn) {
	p := cc.pool
	p.mu.Lock()
	removed := p.removeLocked(cc)
	p.cond.Signal()
	p.mu.Unlock()
	cc.conn.Close()
	cc.releaseBuffers()
	if removed && c.Obs != nil {
		c.Obs.ConnsOpen.Add(-1)
	}
}

// removeLocked drops cc from the pool's books if still present. Caller
// holds p.mu.
func (p *pool) removeLocked(cc *clientConn) bool {
	if _, ok := p.live[cc]; !ok {
		return false
	}
	delete(p.live, cc)
	p.active--
	return true
}

// Close shuts all pooled connections and fails waiting acquirers.
// Connections currently carrying a request are closed too; their holders
// see the exchange fail. Multiplexed connections are torn down, failing
// their in-flight exchanges.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	pools := c.pools
	c.pools = make(map[string]*pool)
	hosts := c.muxHosts
	c.muxHosts = nil
	c.mu.Unlock()
	for _, h := range hosts {
		h.closeAll()
	}
	for _, p := range pools {
		p.mu.Lock()
		p.closed = true
		open, idle := len(p.live), len(p.idle)
		for cc := range p.live {
			cc.conn.Close()
		}
		// Idle connections are held by nobody, so their buffers can be
		// repooled; busy ones are mid-exchange — their holders return the
		// buffers via discardConn when the exchange fails.
		for _, cc := range p.idle {
			cc.releaseBuffers()
		}
		p.live = make(map[*clientConn]struct{})
		p.idle = nil
		p.active = 0
		p.cond.Broadcast()
		p.mu.Unlock()
		if c.Obs != nil {
			c.Obs.ConnsOpen.Add(-int64(open))
			c.Obs.ConnsIdle.Add(-int64(idle))
		}
	}
}
