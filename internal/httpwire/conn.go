package httpwire

import (
	"bufio"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"piggyback/internal/obs"
)

// Handler responds to a request. Implementations must be safe for
// concurrent use; one goroutine serves each connection.
type Handler interface {
	ServeWire(req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(*Request) *Response

// ServeWire calls f.
func (f HandlerFunc) ServeWire(req *Request) *Response { return f(req) }

// Server serves HTTP/1.1 over a listener with persistent connections:
// requests on one connection are handled in order, and the connection
// stays open until the client sends Connection: close, the idle timeout
// fires, or either side closes (§1: persistent connections avoid the
// round-trip delays of establishing a TCP connection per transfer).
type Server struct {
	Handler Handler
	// IdleTimeout closes connections with no request activity. Zero
	// means 60 seconds, the uniform timeout the paper mentions.
	IdleTimeout time.Duration
	// ErrorLog receives connection-level errors; nil discards them.
	ErrorLog *log.Logger
	// Obs, when non-nil, receives wire-level telemetry: per-request
	// handle+write latency, exchange counts, and body bytes.
	Obs *obs.WireMetrics

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// Serve accepts connections on l until Close. It always returns a non-nil
// error; after Close it returns net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves. The returned address is
// available via Addr after the listener is bound; for tests, bind first
// with net.Listen and call Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close shuts the listener and all live connections, then waits for
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return 60 * time.Second
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout())); err != nil {
			return
		}
		req, err := ReadRequest(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				var nerr net.Error
				if !(errors.As(err, &nerr) && nerr.Timeout()) {
					s.logf("httpwire: read request from %s: %v", conn.RemoteAddr(), err)
					if errors.Is(err, ErrMalformed) {
						resp := NewResponse(400)
						resp.Header.Set("Connection", "close")
						_ = WriteResponse(bw, resp, false)
					}
				}
			}
			return
		}
		req.RemoteAddr = conn.RemoteAddr().String()
		start := time.Now()
		resp := s.Handler.ServeWire(req)
		if resp == nil {
			resp = NewResponse(500)
		}
		close := req.Header.WantsClose() || req.Proto == "HTTP/1.0"
		if close {
			if resp.Header == nil {
				resp.Header = make(Header)
			}
			resp.Header.Set("Connection", "close")
		}
		if err := WriteResponse(bw, resp, req.Method == "HEAD"); err != nil {
			if s.Obs != nil {
				s.Obs.Errors.Inc()
			}
			s.logf("httpwire: write response to %s: %v", conn.RemoteAddr(), err)
			return
		}
		if s.Obs != nil {
			s.Obs.Requests.Inc()
			s.Obs.BytesIn.Add(int64(len(req.Body)))
			s.Obs.BytesOut.Add(int64(len(resp.Body)))
			s.Obs.Latency.Observe(time.Since(start).Microseconds())
		}
		if close || resp.Header.WantsClose() {
			return
		}
	}
}

// Client issues requests over persistent connections, one connection per
// server address, serializing requests on each (a proxy lets multiple
// clients share a single persistent connection to a server, §1).
type Client struct {
	// DialTimeout bounds connection establishment; zero means 5s.
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response exchange; zero = 30s.
	RequestTimeout time.Duration
	// Obs, when non-nil, receives wire-level telemetry: per-exchange
	// round-trip latency, retries, dials, and body bytes.
	Obs *obs.WireMetrics

	mu    sync.Mutex
	conns map[string]*clientConn
}

type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewClient returns a Client ready for use.
func NewClient() *Client { return &Client{conns: make(map[string]*clientConn)} }

func (c *Client) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 5 * time.Second
}

func (c *Client) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 30 * time.Second
}

// Do sends req to the server at addr ("host:port") and returns its
// response, transparently reusing or re-establishing the persistent
// connection. A request that fails on a reused connection (the server may
// have timed it out) is retried once on a fresh connection.
func (c *Client) Do(addr string, req *Request) (*Response, error) {
	start := time.Now()
	cc, reused, err := c.conn(addr)
	if err != nil {
		if c.Obs != nil {
			c.Obs.Errors.Inc()
		}
		return nil, err
	}
	resp, err := c.roundTrip(cc, addr, req)
	if err != nil && reused {
		if c.Obs != nil {
			c.Obs.Retries.Inc()
		}
		c.drop(addr, cc)
		cc, _, err = c.conn(addr)
		if err != nil {
			if c.Obs != nil {
				c.Obs.Errors.Inc()
			}
			return nil, err
		}
		resp, err = c.roundTrip(cc, addr, req)
	}
	if err != nil {
		c.drop(addr, cc)
		if c.Obs != nil {
			c.Obs.Errors.Inc()
		}
		return nil, err
	}
	if resp.Header.WantsClose() {
		c.drop(addr, cc)
	}
	if c.Obs != nil {
		c.Obs.Requests.Inc()
		c.Obs.BytesOut.Add(int64(len(req.Body)))
		c.Obs.BytesIn.Add(int64(len(resp.Body)))
		c.Obs.Latency.Observe(time.Since(start).Microseconds())
	}
	return resp, nil
}

func (c *Client) roundTrip(cc *clientConn, addr string, req *Request) (*Response, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.conn == nil {
		return nil, net.ErrClosed
	}
	if err := cc.conn.SetDeadline(time.Now().Add(c.requestTimeout())); err != nil {
		return nil, err
	}
	if err := WriteRequest(cc.bw, req); err != nil {
		return nil, err
	}
	return ReadResponse(cc.br, req.Method == "HEAD")
}

// conn returns the live connection for addr, dialing if needed, and
// whether it was reused.
func (c *Client) conn(addr string) (*clientConn, bool, error) {
	c.mu.Lock()
	if cc, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return cc, true, nil
	}
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, c.dialTimeout())
	if err != nil {
		return nil, false, err
	}
	if c.Obs != nil {
		c.Obs.Dials.Inc()
	}
	cc := &clientConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	c.mu.Lock()
	if old, ok := c.conns[addr]; ok {
		// Lost a race; use the established one.
		c.mu.Unlock()
		conn.Close()
		return old, true, nil
	}
	c.conns[addr] = cc
	c.mu.Unlock()
	return cc, false, nil
}

// drop closes and forgets the connection for addr if it is still cc.
func (c *Client) drop(addr string, cc *clientConn) {
	c.mu.Lock()
	if cur, ok := c.conns[addr]; ok && cur == cc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
	cc.mu.Lock()
	if cc.conn != nil {
		cc.conn.Close()
		cc.conn = nil
	}
	cc.mu.Unlock()
}

// Close shuts all pooled connections.
func (c *Client) Close() {
	c.mu.Lock()
	conns := c.conns
	c.conns = make(map[string]*clientConn)
	c.mu.Unlock()
	for _, cc := range conns {
		cc.mu.Lock()
		if cc.conn != nil {
			cc.conn.Close()
			cc.conn = nil
		}
		cc.mu.Unlock()
	}
}
