package httpwire

import (
	"piggyback/internal/core"
)

// Cooperative proxy mesh metadata. A fleet of proxies partitions the URL
// space with a consistent-hash ring (internal/peer); a proxy routes a
// local miss to the key's owner over the ordinary wire client. Two pieces
// of request metadata make that safe and useful:
//
//   - Piggy-Peer marks a request as peer-originated and names the sender.
//     It is the hop marker: a proxy receiving a Piggy-Peer request serves
//     it locally (cache or origin) and never forwards it again, so ring
//     disagreements or a dead owner can bounce a request at most one hop —
//     no forwarding loops. It also tells the owner who to re-propagate
//     piggyback volume state to.
//   - PeerPiggybackPath is the internal endpoint carrying that
//     re-propagation: when the owner of a partition receives a P-Volume
//     trailer from the origin, it POSTs the encoded message to the peers
//     that recently requested into its partition, so one peer's
//     invalidation/refresh freshens the whole fleet.
const (
	// FieldPeerFrom marks a peer-forwarded request; its value is the
	// sending proxy's advertised peer address.
	FieldPeerFrom = "Piggy-Peer"
	// PeerPiggybackPath is the origin-form path peers POST re-propagated
	// P-Volume messages to. The Host header names the origin server whose
	// volume state the body carries.
	PeerPiggybackPath = "/.piggy/peer/piggyback"
)

// SetPeerFrom marks req as peer-originated, naming the sending proxy.
func SetPeerFrom(req *Request, id string) {
	if req.Header == nil {
		req.Header = make(Header)
	}
	req.Header.Set(FieldPeerFrom, id)
}

// PeerFrom returns the sending proxy named by a peer-forwarded request;
// ok is false for ordinary client requests.
func PeerFrom(req *Request) (id string, ok bool) {
	id = req.Header.Get(FieldPeerFrom)
	return id, id != ""
}

// IsPeerPiggybackRequest reports whether req is a peer piggyback
// re-propagation (a POST to PeerPiggybackPath).
func IsPeerPiggybackRequest(req *Request) bool {
	return req.Method == "POST" && req.Path == PeerPiggybackPath
}

// NewPeerPiggybackRequest builds the re-propagation request: a POST to
// PeerPiggybackPath carrying m's encoding as its body, the origin host in
// the Host header, and the sender in Piggy-Peer.
func NewPeerPiggybackRequest(originHost, from string, m core.Message) *Request {
	req := NewRequest("POST", PeerPiggybackPath)
	req.Header.Set("Host", originHost)
	req.Body = []byte(m.Encode())
	SetPeerFrom(req, from)
	return req
}

// ParsePeerPiggyback extracts the origin host and message from a
// re-propagation request built by NewPeerPiggybackRequest.
func ParsePeerPiggyback(req *Request) (originHost string, m core.Message, err error) {
	originHost = req.Header.Get("Host")
	if originHost == "" {
		return "", core.Message{}, errPeerNoHost
	}
	m, err = core.ParseMessage(string(req.Body))
	if err != nil {
		return "", core.Message{}, err
	}
	return originHost, m, nil
}

var errPeerNoHost = errorString("httpwire: peer piggyback request has no Host header")

// errorString is a tiny constant-error helper.
type errorString string

func (e errorString) Error() string { return string(e) }
