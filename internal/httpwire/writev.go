package httpwire

import (
	"bufio"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
)

// Vectored message serialization. Messages are built as a segment vector —
// head bytes (status/request line + headers + framing) appended into one
// pooled scratch buffer, bodies referenced in place with zero copy, chunked
// tails appended after — and the whole vector goes to the socket as a
// single writev (net.Buffers) instead of buffered writes plus Flush. One
// response, or a whole coalesced batch of responses, costs one write
// syscall. Profiles of the 64-worker loadtest motivated this: after the
// PR 7 allocation audit, ~48% of CPU samples were raw socket syscalls.

// wvec accumulates one or more serialized messages as writev segments.
// segs may alias both head (serialized framing bytes) and caller-owned
// message bodies; reset drops the body references so a pooled wvec never
// retains a cached body.
type wvec struct {
	segs [][]byte
	head []byte // framing scratch; appended segments slice into it
	msgs int    // messages appended since the last reset
}

var vecPool = sync.Pool{New: func() any {
	return &wvec{segs: make([][]byte, 0, 16), head: make([]byte, 0, 1024)}
}}

func getVec() *wvec { return vecPool.Get().(*wvec) }

func putVec(v *wvec) {
	v.reset()
	vecPool.Put(v)
}

// reset clears the vector for reuse, zeroing segment entries so pooled
// vectors don't pin message bodies (head's capacity is kept).
func (v *wvec) reset() {
	for i := range v.segs {
		v.segs[i] = nil
	}
	v.segs = v.segs[:0]
	v.head = v.head[:0]
	v.msgs = 0
}

// mark opens a head segment: bytes appended to v.head after mark are
// sealed into one segment by seal. Append-growth of head is safe: earlier
// sealed segments keep pointing into the superseded array, whose contents
// never change.
func (v *wvec) mark() int { return len(v.head) }

func (v *wvec) seal(mark int) {
	if len(v.head) > mark {
		v.segs = append(v.segs, v.head[mark:])
	}
}

// body appends a caller-owned segment (message body) without copying.
func (v *wvec) body(b []byte) {
	if len(b) > 0 {
		v.segs = append(v.segs, b)
	}
}

// size returns the total byte length of the queued segments.
func (v *wvec) size() int {
	n := 0
	for _, s := range v.segs {
		n += len(s)
	}
	return n
}

// appendHeaderX appends h's fields plus up to two extra fields (empty key
// means absent) in one sorted walk, omitting skip. An extra overrides a
// same-named field in h. When x1int is set, x1's value is the integer x1n
// rendered in place — Content-Length goes out without a strconv.Itoa
// string allocation.
func appendHeaderX(dst []byte, h Header, skip, x1k, x1v string, x1n int64, x1int bool, x2k, x2v string) []byte {
	scratch := getKeyScratch()
	keys := *scratch
	for k := range h {
		if k == skip || k == x1k || k == x2k {
			continue
		}
		keys = append(keys, k)
	}
	if x1k != "" {
		keys = append(keys, x1k)
	}
	if x2k != "" {
		keys = append(keys, x2k)
	}
	sort.Strings(keys)
	*scratch = keys // keep any growth for the pool
	for _, k := range keys {
		dst = append(dst, k...)
		dst = append(dst, ": "...)
		switch k {
		case x1k:
			if x1int {
				dst = strconv.AppendInt(dst, x1n, 10)
			} else {
				dst = append(dst, x1v...)
			}
		case x2k:
			dst = append(dst, x2v...)
		default:
			dst = append(dst, h[k]...)
		}
		dst = append(dst, '\r', '\n')
	}
	putKeyScratch(scratch)
	return dst
}

// appendRequest queues req's serialization onto the vector. Requests with
// a body are framed with Content-Length.
func (v *wvec) appendRequest(req *Request) {
	proto := req.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	m := v.mark()
	h := v.head
	h = append(h, req.Method...)
	h = append(h, ' ')
	h = append(h, req.Path...)
	h = append(h, ' ')
	h = append(h, proto...)
	h = append(h, '\r', '\n')
	var clk string
	if len(req.Body) > 0 || req.Method == "POST" || req.Method == "PUT" {
		clk = "Content-Length"
	}
	h = appendHeaderX(h, req.Header, "", clk, "", int64(len(req.Body)), true, "", "")
	h = append(h, '\r', '\n')
	v.head = h
	v.seal(m)
	v.body(req.Body)
	v.msgs++
}

// appendResponse queues resp's serialization onto the vector.
//
// When resp.Trailer is non-empty the body is sent with chunked
// transfer-coding: a Trailer header names the trailer fields, the body goes
// out in one chunk immediately (never delayed while the piggyback is
// constructed, §2.3), and the trailer fields follow the mandatory
// zero-length chunk. Otherwise the body is framed with Content-Length.
// noBody suppresses body bytes (HEAD responses) while keeping the framing
// headers. Wire output is byte-identical to the historical bufio path.
func (v *wvec) appendResponse(resp *Response, noBody bool) {
	proto := resp.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := resp.Reason
	if reason == "" {
		reason = StatusText(resp.Status)
	}
	m := v.mark()
	h := v.head
	h = append(h, proto...)
	h = append(h, ' ')
	h = strconv.AppendInt(h, int64(resp.Status), 10)
	h = append(h, ' ')
	h = append(h, reason...)
	h = append(h, '\r', '\n')

	chunked := len(resp.Trailer) > 0
	switch {
	case chunked:
		// §2.3: "The server must include a Trailer header field
		// indicating the later appearance of the P-volume response
		// header field."
		h = appendHeaderX(h, resp.Header, "Content-Length",
			"Trailer", trailerNames(resp.Trailer), 0, false,
			"Transfer-Encoding", "chunked")
	case resp.Status != 304:
		h = appendHeaderX(h, resp.Header, "",
			"Content-Length", "", int64(len(resp.Body)), true, "", "")
	default:
		h = appendHeaderX(h, resp.Header, "", "", "", 0, false, "", "")
	}
	h = append(h, '\r', '\n')

	switch {
	case chunked:
		withBody := !noBody && len(resp.Body) > 0
		if withBody {
			h = strconv.AppendInt(h, int64(len(resp.Body)), 16)
			h = append(h, '\r', '\n')
		}
		v.head = h
		v.seal(m)
		if withBody {
			v.body(resp.Body)
			m = v.mark()
			h = append(v.head, '\r', '\n')
		} else {
			m = v.mark()
			h = v.head
		}
		// Mandatory zero-length chunk, then the trailer section.
		h = append(h, "0\r\n"...)
		h = appendHeaderX(h, resp.Trailer, "", "", "", 0, false, "", "")
		h = append(h, '\r', '\n')
		v.head = h
		v.seal(m)
	default:
		v.head = h
		v.seal(m)
		if !noBody && resp.Status != 304 {
			v.body(resp.Body)
		}
	}
	v.msgs++
}

// writeTo writes the queued segments through a bufio.Writer (the
// compatibility path for callers holding a buffered writer; no flush).
func (v *wvec) writeTo(bw *bufio.Writer) error {
	for _, s := range v.segs {
		if _, err := bw.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// writeVec writes the queued segments to w in one vectored write where the
// platform allows. On a *net.TCPConn the segments go out as one writev
// syscall via net.Buffers (the runtime loops on partial writev results).
// Any other writer gets a sequential per-segment loop that tolerates short
// writes — net.Buffers.WriteTo is NOT used there because a generic writer
// returning (n < len, nil) would silently lose the remainder.
//
// Either way the vector is consumed; reset (or putVec) before reuse.
func writeVec(w io.Writer, v *wvec) error {
	if len(v.segs) == 0 {
		return nil
	}
	if tc, ok := w.(*net.TCPConn); !raceEnabled && ok {
		bufs := net.Buffers(v.segs)
		_, err := bufs.WriteTo(tc)
		return err
	}
	for _, s := range v.segs {
		for len(s) > 0 {
			n, err := w.Write(s)
			if err != nil {
				return err
			}
			if n <= 0 {
				return io.ErrShortWrite
			}
			s = s[n:]
		}
	}
	return nil
}
