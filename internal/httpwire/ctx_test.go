package httpwire

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"piggyback/internal/faultconn"
	"piggyback/internal/httpwire/wireerr"
	"piggyback/internal/obs"
)

// blockingHandler waits for its context (or a release channel) before
// answering — a stand-in for a stalled upstream exchange.
func blockingHandler(release <-chan struct{}) Handler {
	return HandlerFunc(func(ctx context.Context, req *Request) *Response {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return NewResponse(200)
	})
}

func TestDoContextDeadlineExceeded(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	addr := startServer(t, blockingHandler(release))

	reg := obs.NewRegistry()
	c := NewClient()
	c.Obs = obs.NewWireMetrics(reg, "wire")
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.DoContext(ctx, addr, NewRequest("GET", "/stall"))
	if !errors.Is(err, wireerr.ErrRequestTimeout) {
		t.Fatalf("err = %v, want errors.Is ErrRequestTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline ignored: returned after %v", d)
	}
	if got := reg.Counter("wire.err.request_timeout").Load(); got != 1 {
		t.Fatalf("wire.err.request_timeout = %d, want 1", got)
	}
}

func TestDoContextCancelMidExchange(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	addr := startServer(t, blockingHandler(release))

	c := NewClient()
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	_, err := c.DoContext(ctx, addr, NewRequest("GET", "/stall"))
	if !errors.Is(err, wireerr.ErrCanceled) {
		t.Fatalf("err = %v, want errors.Is ErrCanceled", err)
	}
	if errors.Is(err, wireerr.ErrRequestTimeout) {
		t.Fatalf("cancellation misclassified as timeout: %v", err)
	}
	if got := wireerr.Class(err); got != "canceled" {
		t.Fatalf("Class(err) = %q, want canceled", got)
	}
}

func TestDoContextPreCanceled(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.DoContext(ctx, addr, NewRequest("GET", "/x")); !errors.Is(err, wireerr.ErrCanceled) {
		t.Fatalf("err = %v, want errors.Is ErrCanceled", err)
	}
}

func TestDoContextReusesConnAfterDeadline(t *testing.T) {
	// A connection poked by a deadline must not poison later requests:
	// after a timeout the client discards it and a fresh exchange works.
	release := make(chan struct{})
	block := false
	var mu sync.Mutex
	addr := startServer(t, HandlerFunc(func(ctx context.Context, req *Request) *Response {
		mu.Lock()
		b := block
		mu.Unlock()
		if b {
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		return NewResponse(200)
	}))
	c := NewClient()
	defer c.Close()

	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/warm")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	block = true
	mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if _, err := c.DoContext(ctx, addr, NewRequest("GET", "/stall")); !errors.Is(err, wireerr.ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", err)
	}
	cancel()
	close(release)
	mu.Lock()
	block = false
	mu.Unlock()
	resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/after"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("exchange after timeout: %v %v", resp, err)
	}
}

func TestTruncatedBodyClassified(t *testing.T) {
	// The origin cuts the response mid-body; the client must surface
	// ErrTruncatedBody, not a bare EOF.
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultconn.NewListener(inner, faultconn.Profile{}, 1)
	fl.SetFault(&faultconn.Fault{TruncateAfter: 256})
	srv := &Server{Handler: HandlerFunc(func(_ context.Context, req *Request) *Response {
		resp := NewResponse(200)
		resp.Body = make([]byte, 8192)
		return resp
	})}
	go srv.Serve(fl)
	defer srv.Close()

	c := NewClient()
	defer c.Close()
	_, err = c.DoContext(context.Background(), inner.Addr().String(), NewRequest("GET", "/big"))
	if !errors.Is(err, wireerr.ErrTruncatedBody) {
		t.Fatalf("err = %v, want errors.Is ErrTruncatedBody", err)
	}
	if got := wireerr.Class(err); got != "truncated" {
		t.Fatalf("Class(err) = %q, want truncated", got)
	}
}

// TestServerCloseReleasesBlockedHandlers is the regression test for the
// lingering-goroutine bug: Close must cancel in-flight request contexts so
// handlers blocked on ctx.Done() return, instead of pinning their
// connection goroutines until the idle timeout.
func TestServerCloseReleasesBlockedHandlers(t *testing.T) {
	before := runtime.NumGoroutine()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	started := make(chan struct{})
	srv := &Server{Handler: HandlerFunc(func(ctx context.Context, req *Request) *Response {
		once.Do(func() { close(started) })
		<-ctx.Done() // blocks until Close cancels the request context
		return NewResponse(503)
	})}
	go srv.Serve(l)

	c := NewClient()
	go c.DoContext(context.Background(), l.Addr().String(), NewRequest("GET", "/hang"))
	<-started

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Server.Close did not return while a handler was blocked")
	}
	c.Close()

	// Goroutine count settles back to the pre-test snapshot (manual
	// snapshot diff; no goleak dependency available).
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(20 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked after Close: before=%d after=%d\n%s",
			before, got, buf[:runtime.Stack(buf, true)])
	}
}

func TestHandlerFuncBackground(t *testing.T) {
	// A handler that ignores its context composes with a Background()
	// client call — the minimal post-migration surface.
	addr := startServer(t, HandlerFunc(func(_ context.Context, req *Request) *Response {
		resp := NewResponse(200)
		resp.Body = []byte("plain")
		return resp
	}))
	c := NewClient()
	defer c.Close()
	resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/plain"))
	if err != nil || string(resp.Body) != "plain" {
		t.Fatalf("background Do: %v %v", resp, err)
	}
}
