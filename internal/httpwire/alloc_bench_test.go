package httpwire

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
)

// Allocation-budget benchmarks for the wire hot paths. The ceilings pinned
// by the companion TestAllocBudgets are the regression gate: the workers=64
// throughput cliff was allocation churn in exactly these functions, so a
// change that re-introduces per-header-line formatting or per-exchange
// buffer allocation fails the budget instead of silently shifting the
// cliff back.

// benchResponse builds a representative proxy hit response: status line,
// four header fields, a 2 KiB body.
func benchResponse() *Response {
	resp := NewResponse(200)
	resp.Body = bytes.Repeat([]byte("x"), 2048)
	resp.Header.Set("Content-Type", "text/html")
	resp.Header.Set("Last-Modified", "Fri, 05 Jul 1998 12:02:33 GMT")
	resp.Header.Set("X-Cache", "HIT")
	return resp
}

// benchTrailerResponse adds a piggyback trailer, forcing chunked framing.
func benchTrailerResponse() *Response {
	resp := benchResponse()
	resp.Trailer = Header{}
	resp.Trailer.Set("P-Volume", "17; /a/b.html 866268400 4096, /a/c.gif 866268401 512")
	return resp
}

// benchRequest builds a representative proxy-bound request: method line and
// four header fields, no body.
func benchRequest() *Request {
	req := NewRequest("GET", "http://www.bench.test/a/r01.html")
	req.Header.Set("Host", "www.bench.test")
	req.Header.Set("TE", "chunked")
	req.Header.Set("Piggy-Filter", "maxpiggy=10")
	return req
}

func BenchmarkWriteResponse(b *testing.B) {
	run := func(b *testing.B, resp *Response) {
		bw := bufio.NewWriter(io.Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := WriteResponse(bw, resp, false); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, benchResponse()) })
	b.Run("trailer", func(b *testing.B) { run(b, benchTrailerResponse()) })
}

func BenchmarkWriteRequest(b *testing.B) {
	req := benchRequest()
	bw := bufio.NewWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteRequest(bw, req); err != nil {
			b.Fatal(err)
		}
	}
}

// replayReader replays one serialized message forever without allocating.
type replayReader struct {
	msg []byte
	off int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off == len(r.msg) {
		r.off = 0
	}
	n := copy(p, r.msg[r.off:])
	r.off += n
	return n, nil
}

func serializeRequest(b *testing.B, req *Request) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := WriteRequest(bufio.NewWriter(&buf), req); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func serializeResponse(b *testing.B, resp *Response) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&buf), resp, false); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadRequest(b *testing.B) {
	wire := serializeRequest(b, benchRequest())
	br := bufio.NewReader(&replayReader{msg: wire})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadRequest(br); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadResponse(b *testing.B) {
	run := func(b *testing.B, wire []byte) {
		br := bufio.NewReader(&replayReader{msg: wire})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ReadResponse(br, false); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, serializeResponse(b, benchResponse())) })
	b.Run("trailer", func(b *testing.B) { run(b, serializeResponse(b, benchTrailerResponse())) })
}

// TestAllocBudgets pins allocs/op ceilings on the wire hot paths with
// testing.AllocsPerRun. The budgets have headroom over the measured values
// (so GC noise doesn't flake) but sit far below the pre-pooling numbers —
// e.g. WriteResponse/plain measured ~30 allocs/op before the fmt removal
// and key-scratch pooling, ~1 after.
func TestAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budgets need steady-state runs")
	}
	bw := bufio.NewWriter(io.Discard)
	// Pre-built messages: serialization does not mutate them, so the runs
	// measure the write path alone with no construction cost to subtract.
	plain := benchResponse()
	trailer := benchTrailerResponse()
	req := benchRequest()
	cases := []struct {
		name   string
		budget float64
		fn     func()
	}{
		{"WriteResponse/plain", 3, func() {
			if err := WriteResponse(bw, plain, false); err != nil {
				t.Fatal(err)
			}
		}},
		// The chunked/trailer path shares the pooled segment vector with
		// the plain path; it must not re-introduce per-chunk formatting
		// allocs. Measured 0/op: chunk-size hex, tail framing, and trailer
		// fields all land in the pooled head scratch.
		{"WriteResponse/trailer", 1, func() {
			if err := WriteResponse(bw, trailer, false); err != nil {
				t.Fatal(err)
			}
		}},
		{"WriteRequest", 3, func() {
			if err := WriteRequest(bw, req); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// One warmup run primes the scratch pools.
			tc.fn()
			got := testing.AllocsPerRun(200, tc.fn)
			if got > tc.budget {
				t.Errorf("%s: %.1f allocs/op, budget %.1f", tc.name, got, tc.budget)
			}
		})
	}
}

// TestWriteVecTCPAllocBudget pins the vectored fast path over a real
// socket: one response per writev must cost at most the unavoidable
// net.Buffers header escape — no per-segment or per-header allocation.
func TestWriteVecTCPAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budgets need steady-state runs")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	resp := benchResponse()
	run := func() {
		v := getVec()
		v.appendResponse(resp, false)
		if err := writeVec(conn, v); err != nil {
			t.Fatal(err)
		}
		putVec(v)
	}
	run()
	const budget = 2
	if got := testing.AllocsPerRun(200, run); got > budget {
		t.Errorf("writeVec over TCP: %.1f allocs/op, budget %d", got, budget)
	}
}
