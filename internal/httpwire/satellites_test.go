package httpwire

import (
	"bufio"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"piggyback/internal/httpwire/wireerr"
)

// Regression: readHeader used h.Set, so the last repeated field silently
// overwrote the earlier ones. RFC 7230 §3.2.2 semantics join them with
// ", " in arrival order.
func TestReadHeaderJoinsDuplicateFields(t *testing.T) {
	raw := "GET /x HTTP/1.1\r\n" +
		"Cache-Control: no-cache\r\n" +
		"Piggy-Hits: /a/1.html\r\n" +
		"cache-control: max-age=0\r\n" +
		"Piggy-Hits: /a/2.html\r\n" +
		"Piggy-Hits: /a/3.html\r\n" +
		"\r\n"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := req.Header.Get("Cache-Control"), "no-cache, max-age=0"; got != want {
		t.Errorf("Cache-Control = %q, want %q", got, want)
	}
	if got, want := req.Header.Get("Piggy-Hits"), "/a/1.html, /a/2.html, /a/3.html"; got != want {
		t.Errorf("Piggy-Hits = %q, want %q", got, want)
	}
}

func TestHeaderAdd(t *testing.T) {
	h := make(Header)
	h.Add("x-one", "a")
	if got := h.Get("X-One"); got != "a" {
		t.Fatalf("first Add: %q", got)
	}
	h.Add("X-ONE", "b")
	if got := h.Get("X-One"); got != "a, b" {
		t.Fatalf("second Add: %q", got)
	}
}

// Regression: readLine trimmed with TrimRight("\r\n"), eating every
// trailing CR — a legitimate "\r" at the end of a field value was
// silently corrupted. Exactly one terminator must be stripped.
func TestReadLineTerminatorHandling(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"plain\r\n", "plain"},
		{"bare-lf\n", "bare-lf"},
		{"keeps-cr\r\r\n", "keeps-cr\r"},
		{"keeps-many\r\r\r\n", "keeps-many\r\r"},
		{"cr-before-bare-lf\r\n", "cr-before-bare-lf"},
		{"\r\n", ""},
		{"\n", ""},
		{"\r\r\n", "\r"},
		{"interior\rcr\r\n", "interior\rcr"},
		// A line longer than the bufio buffer exercises the multi-
		// fragment slow path.
		{strings.Repeat("x", 9000) + "\r\r\n", strings.Repeat("x", 9000) + "\r"},
	}
	for _, tc := range cases {
		got, err := readLine(bufio.NewReader(strings.NewReader(tc.in)))
		if err != nil {
			t.Errorf("readLine(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("readLine(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestReadLineEOFWithoutTerminator(t *testing.T) {
	if _, err := readLine(bufio.NewReader(strings.NewReader("trunc"))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("partial line: err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := readLine(bufio.NewReader(strings.NewReader(""))); !errors.Is(err, io.EOF) {
		t.Errorf("empty input: err = %v, want EOF", err)
	}
}

// Regression: the retry pause between attempts was a bare time.Sleep, so a
// canceled caller still waited out the backoff. sleepBackoff must return
// as soon as the context ends, classified as a wireerr.
func TestSleepBackoffCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sleepBackoff(ctx, 10*time.Second)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sleepBackoff ignored cancellation (took %v)", elapsed)
	}
	if !errors.Is(err, wireerr.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestSleepBackoffCompletes(t *testing.T) {
	if err := sleepBackoff(context.Background(), time.Millisecond); err != nil {
		t.Errorf("uncanceled sleepBackoff: %v", err)
	}
}

func TestSleepBackoffDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := sleepBackoff(ctx, 10*time.Second)
	if !errors.Is(err, wireerr.ErrRequestTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want a deadline classification", err)
	}
}

func TestPprofEndpointGated(t *testing.T) {
	defer EnablePprof(false)
	req := NewRequest("GET", PprofPathPrefix+"heap")
	if !IsPprofRequest(req) {
		t.Fatal("IsPprofRequest = false for a pprof path")
	}
	EnablePprof(false)
	if resp := PprofResponse(req); resp.Status != 404 {
		t.Fatalf("disabled: status %d, want 404", resp.Status)
	}
	EnablePprof(true)
	resp := PprofResponse(req)
	if resp.Status != 200 || len(resp.Body) == 0 {
		t.Fatalf("enabled heap: status %d, %d body bytes", resp.Status, len(resp.Body))
	}
	if resp := PprofResponse(NewRequest("GET", PprofPathPrefix+"nosuch")); resp.Status != 404 {
		t.Fatalf("unknown profile: status %d, want 404", resp.Status)
	}
	if IsPprofRequest(NewRequest("GET", "/a/x.html")) {
		t.Fatal("ordinary path classified as pprof")
	}
}
