package httpwire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/httpwire/wireerr"
)

func TestPipelineBasic(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()

	var reqs []*Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, NewRequest("GET", fmt.Sprintf("/p%d", i)))
	}
	resps, err := c.DoAllContext(context.Background(), addr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses", len(resps))
	}
	for i, r := range resps {
		want := fmt.Sprintf("echo:/p%d", i)
		if string(r.Body) != want {
			t.Fatalf("response %d = %q, want %q (ordering!)", i, r.Body, want)
		}
	}
}

func TestPipelineEmpty(t *testing.T) {
	c := NewClient()
	defer c.Close()
	resps, err := c.DoAllContext(context.Background(), "127.0.0.1:1", nil)
	if err != nil || resps != nil {
		t.Fatalf("empty pipeline: %v, %v", resps, err)
	}
}

func TestPipelineWithHEAD(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()
	reqs := []*Request{
		NewRequest("GET", "/a"),
		NewRequest("HEAD", "/b"),
		NewRequest("GET", "/c"),
	}
	resps, err := c.DoAllContext(context.Background(), addr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if string(resps[0].Body) != "echo:/a" || string(resps[2].Body) != "echo:/c" {
		t.Errorf("GET bodies wrong: %q %q", resps[0].Body, resps[2].Body)
	}
	if len(resps[1].Body) != 0 {
		t.Errorf("HEAD response carried a body: %q", resps[1].Body)
	}
}

func TestPipelineWithTrailers(t *testing.T) {
	// Piggyback trailers must frame correctly under pipelining: each
	// chunked response terminates before the next begins.
	h := HandlerFunc(func(_ context.Context, req *Request) *Response {
		resp := NewResponse(200)
		resp.Body = []byte("body:" + req.Path)
		if f, ok := GetFilter(req); ok && f.MaxPiggy > 0 {
			AttachPiggyback(resp, core.Message{Volume: 3, Elements: []core.Element{
				{URL: req.Path + ".sibling", Size: 1, LastModified: 2},
			}})
		}
		return resp
	})
	addr := startServer(t, h)
	c := NewClient()
	defer c.Close()
	var reqs []*Request
	for i := 0; i < 5; i++ {
		req := NewRequest("GET", fmt.Sprintf("/r%d", i))
		SetFilter(req, core.Filter{MaxPiggy: 5})
		reqs = append(reqs, req)
	}
	resps, err := c.DoAllContext(context.Background(), addr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if string(r.Body) != fmt.Sprintf("body:/r%d", i) {
			t.Fatalf("response %d body %q", i, r.Body)
		}
		m, ok := ExtractPiggyback(r)
		if !ok || m.Elements[0].URL != fmt.Sprintf("/r%d.sibling", i) {
			t.Fatalf("response %d piggyback %+v %v", i, m, ok)
		}
	}
}

func TestPipelineReusesConnectionAfterDo(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()
	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/warm")); err != nil {
		t.Fatal(err)
	}
	resps, err := c.DoAllContext(context.Background(), addr, []*Request{NewRequest("GET", "/a"), NewRequest("GET", "/b")})
	if err != nil || len(resps) != 2 {
		t.Fatalf("pipelined on reused conn: %v", err)
	}
	// And Do still works afterwards.
	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/after")); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineRetriesStaleConnection(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	defer c.Close()
	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/warm")); err != nil {
		t.Fatal(err)
	}
	closeIdleConns(c)
	resps, err := c.DoAllContext(context.Background(), addr, []*Request{NewRequest("GET", "/x"), NewRequest("GET", "/y")})
	if err != nil || len(resps) != 2 {
		t.Fatalf("pipeline retry failed: %v (%d responses)", err, len(resps))
	}
}

func TestPipelinePerExchangeDeadlines(t *testing.T) {
	// Regression for the shared batch deadline: three responses that each
	// take ~100ms must survive a 200ms RequestTimeout, because every read
	// gets its own remaining-time budget from the moment it starts. The
	// old single SetDeadline for the whole batch expired before the third
	// response. Bodies are sized past maxResponseBatchBytes so the server
	// flushes each response as it finishes instead of coalescing the
	// batch — the arrivals must be spread in time to discriminate.
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	body := bytes.Repeat([]byte("x"), maxResponseBatchBytes+1024)
	h := HandlerFunc(func(_ context.Context, req *Request) *Response {
		time.Sleep(100 * time.Millisecond)
		resp := NewResponse(200)
		resp.Header.Set("X-Path", req.Path)
		resp.Body = body
		return resp
	})
	addr := startServer(t, h)
	c := NewClient()
	c.RequestTimeout = 200 * time.Millisecond
	defer c.Close()

	reqs := []*Request{
		NewRequest("GET", "/d0"),
		NewRequest("GET", "/d1"),
		NewRequest("GET", "/d2"),
	}
	resps, err := c.DoAllContext(context.Background(), addr, reqs)
	if err != nil {
		t.Fatalf("pipeline with per-exchange budgets: %v (%d responses)", err, len(resps))
	}
	for i, r := range resps {
		if r.Header.Get("X-Path") != fmt.Sprintf("/d%d", i) {
			t.Fatalf("response %d answered %q", i, r.Header.Get("X-Path"))
		}
	}
}

func TestPipelineContextDeadlineStillBounds(t *testing.T) {
	// The per-exchange budget must not extend past the caller's own
	// context deadline: a batch that cannot finish in time fails with the
	// timeout taxonomy instead of running RequestTimeout-per-read long.
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	h := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		time.Sleep(80 * time.Millisecond)
		return echoHandler(ctx, req)
	})
	addr := startServer(t, h)
	c := NewClient()
	c.RequestTimeout = 5 * time.Second
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.DoAllContext(ctx, addr, []*Request{
		NewRequest("GET", "/a"), NewRequest("GET", "/b"), NewRequest("GET", "/c"),
	})
	if !errors.Is(err, wireerr.ErrRequestTimeout) {
		t.Fatalf("got %v, want ErrRequestTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("batch outlived its context by %v", elapsed)
	}
}
