package httpwire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Framing limits: generous for the protocol's needs, tight enough to bound
// a misbehaving peer.
const (
	maxLineBytes   = 64 << 10
	maxHeaderCount = 256
	maxBodyBytes   = 64 << 20
)

// ErrMalformed reports an unparsable message.
var ErrMalformed = errors.New("httpwire: malformed message")

// readLine reads one CRLF- (or bare-LF-) terminated line, stripping exactly
// one terminator: "value\r\r\n" yields "value\r" — a legitimate trailing CR
// in a field value survives (the old TrimRight stripped every trailing CR
// and LF, silently corrupting such values). The maxLineBytes bound is
// enforced while reading — an endless line from a misbehaving peer fails
// after at most one buffer beyond the limit instead of accumulating
// unboundedly.
//
// The common case — the whole line already buffered — returns a string cut
// straight from one ReadSlice fragment, with no intermediate []byte append.
func readLine(br *bufio.Reader) (string, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		if len(line)+len(frag) > maxLineBytes {
			return "", fmt.Errorf("%w: header line too long", ErrMalformed)
		}
		if err == nil {
			if line == nil {
				return string(trimTerminator(frag)), nil
			}
			line = append(line, frag...)
			break
		}
		line = append(line, frag...)
		if err == bufio.ErrBufferFull {
			continue
		}
		if err == io.EOF {
			if len(line) > 0 {
				return "", io.ErrUnexpectedEOF
			}
			return "", io.EOF
		}
		return "", err
	}
	return string(trimTerminator(line)), nil
}

// trimTerminator strips one trailing "\r\n" or bare "\n".
func trimTerminator(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		if n > 1 && line[n-2] == '\r' {
			return line[:n-2]
		}
		return line[:n-1]
	}
	return line
}

// readHeader reads header fields until the blank line. Repeated fields are
// joined with ", " (RFC 7230 §3.2.2) rather than the last line overwriting
// the rest — a server sending Piggy-Hits or Cache-Control across multiple
// lines loses nothing.
func readHeader(br *bufio.Reader) (Header, error) {
	h := make(Header)
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		if len(h) >= maxHeaderCount {
			return nil, fmt.Errorf("%w: too many header fields", ErrMalformed)
		}
		key, val, found := strings.Cut(line, ":")
		if !found || key == "" || strings.ContainsAny(key, " \t") {
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		h.Add(key, strings.TrimSpace(val))
	}
}

// ReadRequest parses one request message from br. io.EOF is returned
// cleanly when the connection closes between requests.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.Fields(line)
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Path: parts[1], Proto: parts[2]}
	if !strings.HasPrefix(req.Proto, "HTTP/1.") {
		return nil, fmt.Errorf("%w: unsupported protocol %q", ErrMalformed, req.Proto)
	}
	if req.Header, err = readHeader(br); err != nil {
		return nil, fmt.Errorf("reading request header: %w", err)
	}
	body, _, err := readBody(br, req.Header, false)
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	req.Body = body
	return req, nil
}

// ReadResponse parses one response message from br. Responses to HEAD
// requests and 304s carry no body regardless of framing headers; pass
// noBody accordingly.
func ReadResponse(br *bufio.Reader, noBody bool) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	proto, rest, found := strings.Cut(line, " ")
	if !found || !strings.HasPrefix(proto, "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	codeStr, reason, _ := strings.Cut(rest, " ")
	code, err := strconv.Atoi(codeStr)
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformed, codeStr)
	}
	resp := &Response{Proto: proto, Status: code, Reason: reason}
	if resp.Header, err = readHeader(br); err != nil {
		return nil, fmt.Errorf("reading response header: %w", err)
	}
	if noBody || code == 304 || code/100 == 1 {
		// 304s still carry the chunked trailer when the server used
		// chunked framing to attach a piggyback.
		if isChunked(resp.Header) {
			body, trailer, err := readChunked(br)
			if err != nil {
				return nil, err
			}
			resp.Body, resp.Trailer = body, trailer
		}
		return resp, nil
	}
	body, trailer, err := readBody(br, resp.Header, true)
	if err != nil {
		return nil, fmt.Errorf("reading response body: %w", err)
	}
	resp.Body, resp.Trailer = body, trailer
	return resp, nil
}

func isChunked(h Header) bool {
	return strings.EqualFold(strings.TrimSpace(h.Get("Transfer-Encoding")), "chunked")
}

// readBody consumes the message body per the framing headers. Responses
// (allowEOF) without explicit framing read to connection close.
func readBody(br *bufio.Reader, h Header, allowEOF bool) (body []byte, trailer Header, err error) {
	if isChunked(h) {
		return readChunked(br)
	}
	if cl := h.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 || n > maxBodyBytes {
			return nil, nil, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
		}
		if n == 0 {
			return nil, nil, nil
		}
		body = make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, nil, err
		}
		return body, nil, nil
	}
	if !allowEOF {
		return nil, nil, nil // requests without framing have no body
	}
	body, err = io.ReadAll(io.LimitReader(br, maxBodyBytes))
	return body, nil, err
}

// requestBuffered reports whether br's buffer already holds at least one
// complete request — the head through the blank line plus any declared
// body — so a serve loop can parse it without blocking on the socket and
// answer a pipelined burst with one read/write pair. The sniff is
// conservative: a false negative only costs a coalescing opportunity,
// while a false positive would stall the connection parsing a half-arrived
// request behind queued responses, so chunked request bodies and bare-LF
// heads never report buffered.
func requestBuffered(br *bufio.Reader) bool {
	n := br.Buffered()
	if n == 0 {
		return false
	}
	buf, err := br.Peek(n)
	if err != nil {
		return false
	}
	i := bytes.Index(buf, []byte("\r\n\r\n"))
	if i < 0 {
		return false
	}
	cl, ok := sniffContentLength(buf[:i+2])
	if !ok {
		return false
	}
	return int64(len(buf)-(i+4)) >= cl
}

// sniffContentLength scans a raw request head for body framing without a
// full parse: the declared Content-Length (0 when absent — unframed
// requests carry no body, matching readBody), or ok=false when the framing
// is chunked or unparsable.
func sniffContentLength(head []byte) (cl int64, ok bool) {
	for len(head) > 0 {
		var line []byte
		if j := bytes.IndexByte(head, '\n'); j >= 0 {
			line, head = head[:j], head[j+1:]
		} else {
			line, head = head, nil
		}
		k := bytes.IndexByte(line, ':')
		if k < 0 {
			continue
		}
		key := line[:k]
		if asciiEqualFold(key, "Transfer-Encoding") {
			return 0, false
		}
		if !asciiEqualFold(key, "Content-Length") {
			continue
		}
		v := bytes.Trim(line[k+1:], " \t\r")
		if len(v) == 0 {
			return 0, false
		}
		cl = 0
		for _, c := range v {
			if c < '0' || c > '9' {
				return 0, false
			}
			cl = cl*10 + int64(c-'0')
			if cl > maxBodyBytes {
				return 0, false
			}
		}
		// Keep scanning: a later Transfer-Encoding overrides the
		// Content-Length framing (readBody checks chunked first).
	}
	return cl, true
}

// asciiEqualFold reports ASCII case-insensitive equality of b and s
// without allocating.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= d && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

// readChunked consumes a chunked body and its trailer section.
func readChunked(br *bufio.Reader) (body []byte, trailer Header, err error) {
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, nil, err
		}
		// Chunk extensions after ';' are ignored.
		sizeStr, _, _ := strings.Cut(line, ";")
		size, err := strconv.ParseInt(strings.TrimSpace(sizeStr), 16, 64)
		if err != nil || size < 0 {
			return nil, nil, fmt.Errorf("%w: bad chunk size %q", ErrMalformed, line)
		}
		if size == 0 {
			break
		}
		if int64(len(body))+size > maxBodyBytes {
			return nil, nil, fmt.Errorf("%w: chunked body too large", ErrMalformed)
		}
		// Grow body and read the chunk straight into it — no per-chunk
		// scratch buffer and copy.
		start := len(body)
		body = append(body, make([]byte, size)...)
		if _, err := io.ReadFull(br, body[start:]); err != nil {
			return nil, nil, err
		}
		// Trailing CRLF after the chunk data.
		if line, err := readLine(br); err != nil {
			return nil, nil, err
		} else if line != "" {
			return nil, nil, fmt.Errorf("%w: missing chunk terminator", ErrMalformed)
		}
	}
	// Trailer fields until the final blank line.
	trailer, err = readHeader(br)
	if err != nil {
		return nil, nil, err
	}
	if len(trailer) == 0 {
		trailer = nil
	}
	return body, trailer, nil
}
