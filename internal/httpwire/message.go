// Package httpwire is a from-scratch HTTP/1.1 subset over net.Conn,
// implementing exactly what the piggybacking protocol needs (§2.3):
// request/response framing with Content-Length bodies, chunked
// transfer-coding with trailer fields (the P-Volume response header rides
// in the trailer so the body is never delayed while the piggyback is
// constructed), persistent connections, and conditional requests
// (If-Modified-Since / 304 Not Modified).
package httpwire

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Header holds message header fields. Keys are stored in canonical form
// (Piggy-Filter, Content-Length). Each field is single-valued, which the
// piggybacking protocol never needs to exceed.
type Header map[string]string

// CanonicalKey converts a header field name to canonical form: the first
// letter and any letter following a hyphen upper-cased, the rest lowered.
// Keys already in canonical form — every key this package itself writes —
// are returned as-is without allocating, which keeps Header.Set/Get off the
// allocator on the request hot path.
func CanonicalKey(k string) string {
	upper := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (upper && 'a' <= c && c <= 'z') || (!upper && 'A' <= c && c <= 'Z') {
			return canonicalKeySlow(k)
		}
		upper = c == '-'
	}
	return k
}

func canonicalKeySlow(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - ('a' - 'A')
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// Set stores a field, canonicalizing the key.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = value }

// Add appends a field value: a repeated field is joined onto the existing
// value with ", ", the RFC 7230 §3.2.2 equivalence for fields whose values
// are comma-separated lists. Message parsing uses Add so duplicate lines
// (repeated Piggy-Hits, split Cache-Control) combine instead of the last
// line silently overwriting the rest.
func (h Header) Add(key, value string) {
	k := CanonicalKey(key)
	if prev, ok := h[k]; ok && prev != "" {
		h[k] = prev + ", " + value
		return
	}
	h[k] = value
}

// Get returns the field value, or "" when absent.
func (h Header) Get(key string) string { return h[CanonicalKey(key)] }

// Has reports whether the field is present.
func (h Header) Has(key string) bool {
	_, ok := h[CanonicalKey(key)]
	return ok
}

// Del removes a field.
func (h Header) Del(key string) { delete(h, CanonicalKey(key)) }

// Clone copies the header.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// Request is an HTTP/1.1 request message.
type Request struct {
	Method string
	Path   string
	Proto  string // "HTTP/1.1"
	Header Header
	Body   []byte
	// RemoteAddr is the peer address, set by Server for incoming
	// requests and ignored when writing.
	RemoteAddr string
}

// NewRequest returns a GET request for path with an empty header set.
func NewRequest(method, path string) *Request {
	// Sized for the usual field count so Set never regrows the buckets.
	return &Request{Method: method, Path: path, Proto: "HTTP/1.1", Header: make(Header, 8)}
}

// Response is an HTTP/1.1 response message. Trailer carries fields received
// (or to be sent) after a chunked body.
type Response struct {
	Proto   string
	Status  int
	Reason  string
	Header  Header
	Body    []byte
	Trailer Header
}

// NewResponse returns a response with the given status and an empty header
// set.
func NewResponse(status int) *Response {
	// Sized for the usual field count so Set never regrows the buckets.
	return &Response{Proto: "HTTP/1.1", Status: status, Reason: StatusText(status), Header: make(Header, 8)}
}

// StatusText returns the canonical reason phrase for the handful of status
// codes the protocol uses.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 226:
		return "IM Used"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 501:
		return "Not Implemented"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	case 504:
		return "Gateway Timeout"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// httpTimeLayout is the RFC 1123 format HTTP/1.1 requires, always GMT.
const httpTimeLayout = "Mon, 02 Jan 2006 15:04:05 GMT"

// FormatHTTPDate renders a Unix time as an HTTP-date.
func FormatHTTPDate(unix int64) string {
	return time.Unix(unix, 0).UTC().Format(httpTimeLayout)
}

// ParseHTTPDate parses an HTTP-date into a Unix time.
func ParseHTTPDate(s string) (int64, error) {
	t, err := time.Parse(httpTimeLayout, strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("httpwire: bad HTTP date %q: %v", s, err)
	}
	return t.Unix(), nil
}

// WantsClose reports whether the header requests closing the connection
// after this message (Connection: close).
func (h Header) WantsClose() bool {
	return strings.EqualFold(strings.TrimSpace(h.Get("Connection")), "close")
}

// AcceptsChunkedTrailer reports whether a request advertised willingness to
// receive chunked transfer-coding with trailer fields (TE: chunked, §2.3;
// "trailers" per RFC 2616 is accepted too).
func (r *Request) AcceptsChunkedTrailer() bool {
	te := r.Header.Get("TE")
	for _, part := range strings.Split(te, ",") {
		p := strings.ToLower(strings.TrimSpace(part))
		if p == "chunked" || p == "trailers" {
			return true
		}
	}
	return false
}

// IfModifiedSince returns the request's If-Modified-Since time, if present
// and valid.
func (r *Request) IfModifiedSince() (int64, bool) {
	v := r.Header.Get("If-Modified-Since")
	if v == "" {
		return 0, false
	}
	t, err := ParseHTTPDate(v)
	if err != nil {
		return 0, false
	}
	return t, true
}

// LastModified returns the response's Last-Modified time, if present and
// valid.
func (r *Response) LastModified() (int64, bool) {
	v := r.Header.Get("Last-Modified")
	if v == "" {
		return 0, false
	}
	t, err := ParseHTTPDate(v)
	if err != nil {
		return 0, false
	}
	return t, true
}
