package httpwire

import (
	"bufio"
	"bytes"
	"testing"
)

// Fuzz targets: the wire parsers face bytes from the network and must
// never panic, whatever arrives. `go test` runs the seed corpus; extend
// with `go test -fuzz FuzzReadResponse ./internal/httpwire`.

func FuzzReadRequest(f *testing.F) {
	f.Add([]byte("GET /a/x.html HTTP/1.1\r\nHost: example.com\r\nPiggy-Filter: maxpiggy=10\r\n\r\n"))
	f.Add([]byte("POST /s HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"))
	f.Add([]byte("GET / HTTP/1.0\r\n\r\n"))
	f.Add([]byte("GARBAGE"))
	f.Add([]byte("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// A successfully parsed request must re-serialize without error.
		var buf bytes.Buffer
		if werr := WriteRequest(bufio.NewWriter(&buf), req); werr != nil {
			t.Fatalf("reserialize: %v", werr)
		}
	})
}

func FuzzReadResponse(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"))
	f.Add([]byte("HTTP/1.1 304 Not Modified\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nTrailer: P-Volume\r\n\r\n3\r\nabc\r\n0\r\nP-Volume: 1; /a 2 3\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nffffffffffffffff\r\n"))
	f.Add([]byte("NOT HTTP AT ALL"))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)), false)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteResponse(bufio.NewWriter(&buf), resp, false); werr != nil {
			t.Fatalf("reserialize: %v", werr)
		}
	})
}
