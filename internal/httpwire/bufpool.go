package httpwire

import (
	"bufio"
	"io"
	"sync"

	"piggyback/internal/obs"
)

// Pools for the wire layer's recurring scratch allocations. A proxy under
// load opens and drops connections constantly; without reuse every accepted
// or dialed connection allocates a fresh 4 KiB bufio.Reader and Writer, and
// every serialized message allocates a sorted-key slice — churn that
// dominated the heap profile at 64 concurrent workers. Bodies are NOT
// pooled: they outlive the exchange (cached, returned to callers), so only
// ownership-bounded scratch lives here.

// readerSize/writerSize match bufio's default; one pool class keeps Put/Get
// type-stable.
const bufioSize = 4096

var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, bufioSize) }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, bufioSize) }}

	// keyScratchPool holds the sorted-key slices writeHeader uses; the
	// indirection through a pointer avoids allocating a slice header on
	// every Put.
	keyScratchPool = sync.Pool{New: func() any {
		s := make([]string, 0, 16)
		return &s
	}}
)

// GetReader returns a pooled bufio.Reader reset to read from r.
func GetReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutReader returns a reader to the pool. The caller must be done with it;
// any buffered-but-unread bytes are discarded.
func PutReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}

// GetWriter returns a pooled bufio.Writer reset to write to w.
func GetWriter(w io.Writer) *bufio.Writer {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// PutWriter returns a writer to the pool without flushing; callers flush as
// part of the exchange (WriteRequest/WriteResponse always flush), so
// anything still buffered belongs to a failed exchange nobody will read.
func PutWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	writerPool.Put(bw)
}

// countingReader wraps a connection to count read syscalls: a bufio
// reader issues exactly one Read per buffer fill, so the counter tracks
// prefix.syscalls.reads one-to-one with socket reads.
type countingReader struct {
	r   io.Reader
	ops *obs.Counter
}

func (c *countingReader) Read(p []byte) (int, error) {
	c.ops.Inc()
	return c.r.Read(p)
}

func getKeyScratch() *[]string {
	return keyScratchPool.Get().(*[]string)
}

func putKeyScratch(s *[]string) {
	*s = (*s)[:0]
	keyScratchPool.Put(s)
}
