package httpwire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"piggyback/internal/httpwire/wireerr"
)

// Multiplexed upstream exchanges. The classic pool gives every in-flight
// request an exclusive connection: N concurrent misses to one origin cost
// N write syscalls, N read syscalls, and N pool slots. The mux path
// generalizes pipeline.go's batch-only pipelining into a persistent
// per-connection exchange: callers enqueue requests on a shared
// connection, a writer goroutine coalesces whatever is queued into a
// single writev burst, and a reader goroutine demuxes the responses in
// FIFO order back to the callers. HTTP/1.1 responses carry no exchange
// IDs, so order IS the correlation — the writer records each call on the
// in-flight queue before its bytes reach the wire, and the reader answers
// calls strictly in that order.
//
// Failure semantics mirror DoContext: per-call deadlines (the sooner of
// RequestTimeout and the caller's context deadline) are enforced by the
// reader via SetReadDeadline before each response; a caller whose context
// ends mid-flight detaches immediately (wireerr.ErrCanceled /
// ErrRequestTimeout) and the reader later discards its response, keeping
// the stream in sync. Any connection-level error tears the whole
// connection down and fails every queued exchange — their callers fall
// back to the classic pool, so one bad multiplexed conn degrades to
// one-exchange-per-conn instead of failing requests.

// muxWriteQueueCap bounds responses the writer can have in flight to the
// reader; pushes beyond it apply backpressure to the writer, not callers.
const muxWriteQueueCap = 64

// muxCall is one exchange riding a multiplexed connection.
type muxCall struct {
	req      *Request
	deadline time.Time
	resp     *Response
	err      error
	done     chan struct{}
	// abandoned marks a caller that stopped waiting (context ended): the
	// reader still consumes the response to keep the pipeline in sync,
	// then discards it.
	abandoned atomic.Bool
	// finished guards single completion: reader delivery, writer-side
	// failure, and teardown drains can race on the same call.
	finished atomic.Bool
}

// muxHost is the set of multiplexed connections to one address.
type muxHost struct {
	c    *Client
	addr string

	mu    sync.Mutex
	cond  *sync.Cond // signaled when a dial completes (either way)
	conns []*muxConn
	dials int // in-flight dials, counted against maxConnsPerHost
}

// muxConn is one multiplexed connection: submitters append to queue, the
// writer goroutine drains it in writev bursts and records written calls on
// rq, the reader goroutine answers rq in order.
type muxConn struct {
	host *muxHost
	conn net.Conn
	br   *bufio.Reader

	mu    sync.Mutex
	dead  bool
	queue []*muxCall

	kick     chan struct{} // wakes the writer; capacity 1
	rq       chan *muxCall // written calls awaiting responses, FIFO
	inflight atomic.Int64  // queued + awaiting-response exchanges
	closed   chan struct{}
	once     sync.Once
	failure  atomic.Value // error
}

// muxDo runs one exchange over the multiplexed tier. fallback reports
// whether the classic pool may retry the request: true for failures of a
// shared connection (another exchange may be at fault), false when
// retrying would repeat the same failure (dial errors, caller's own
// context ending).
func (c *Client) muxDo(ctx context.Context, addr string, req *Request) (resp *Response, fallback bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, wireerr.FromContext(err)
	}
	h, err := c.muxHostFor(addr)
	if err != nil {
		return nil, false, err
	}
	mc, err := h.pick(ctx)
	if err != nil {
		return nil, false, err
	}
	deadline := time.Now().Add(c.requestTimeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	call := &muxCall{req: req, deadline: deadline, done: make(chan struct{})}
	if !mc.submit(call) {
		// Lost the race with a teardown; the pooled path can retry.
		return nil, true, mc.err()
	}
	select {
	case <-call.done:
		if call.err != nil {
			// Fall back only while the call's own time budget remains: a
			// failure at (or past) its deadline would just repeat on the
			// pool — and could otherwise race ctx.Err() into a doomed
			// zero-budget pooled dial.
			return nil, time.Now().Before(call.deadline), call.err
		}
		return call.resp, false, nil
	case <-ctx.Done():
		call.abandoned.Store(true)
		return nil, false, wireerr.FromContext(ctx.Err())
	}
}

// muxHostFor returns the mux host for addr, creating it on first use.
func (c *Client) muxHostFor(addr string) (*muxHost, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, net.ErrClosed
	}
	if c.muxHosts == nil {
		c.muxHosts = make(map[string]*muxHost)
	}
	h, ok := c.muxHosts[addr]
	if !ok {
		h = &muxHost{c: c, addr: addr}
		h.cond = sync.NewCond(&h.mu)
		c.muxHosts[addr] = h
	}
	return h, nil
}

// pick chooses the least-loaded live connection, dialing a new one when
// every conn is at MaxInflightPerConn and the per-host bound allows.
// Past the bound the least-loaded conn absorbs the overflow — exchanges
// queue on it rather than failing.
func (h *muxHost) pick(ctx context.Context) (*muxConn, error) {
	maxInflight := int64(h.c.MaxInflightPerConn)
	bound := h.c.maxConnsPerHost()
	// A waiter parked on cond must wake when the caller gives up.
	stop := context.AfterFunc(ctx, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop()
	h.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			h.mu.Unlock()
			return nil, wireerr.FromContext(err)
		}
		live := h.conns[:0]
		for _, mc := range h.conns {
			select {
			case <-mc.closed:
			default:
				live = append(live, mc)
			}
		}
		h.conns = live
		var best *muxConn
		for _, mc := range h.conns {
			if best == nil || mc.inflight.Load() < best.inflight.Load() {
				best = mc
			}
		}
		if best != nil && (best.inflight.Load() < maxInflight || len(h.conns)+h.dials >= bound) {
			h.mu.Unlock()
			return best, nil
		}
		if len(h.conns)+h.dials < bound {
			h.dials++
			break
		}
		// No usable connection and the host is at its dial bound (a
		// cold-start storm): wait for an in-flight dial to land.
		h.cond.Wait()
	}
	h.mu.Unlock()
	mc, err := h.dial(ctx)
	h.mu.Lock()
	h.dials--
	if err == nil {
		h.conns = append(h.conns, mc)
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return mc, nil
}

// dial establishes one multiplexed connection and starts its goroutine
// pair.
func (h *muxHost) dial(ctx context.Context) (*muxConn, error) {
	d := net.Dialer{Timeout: h.c.dialTimeout()}
	conn, err := d.DialContext(ctx, "tcp", h.addr)
	if err != nil {
		return nil, wireerr.Dial(ctx, err)
	}
	src := io.Reader(conn)
	if h.c.Obs != nil {
		src = &countingReader{r: conn, ops: h.c.Obs.ReadOps}
	}
	mc := &muxConn{
		host:   h,
		conn:   conn,
		br:     GetReader(src),
		kick:   make(chan struct{}, 1),
		rq:     make(chan *muxCall, muxWriteQueueCap),
		closed: make(chan struct{}),
	}
	if h.c.Obs != nil {
		h.c.Obs.Dials.Inc()
		h.c.Obs.ConnsOpen.Inc()
	}
	go mc.writeLoop()
	go mc.readLoop()
	return mc, nil
}

// submit enqueues a call for the writer. It reports false when the
// connection is already dead — the call was not queued and will not be
// finished.
func (mc *muxConn) submit(call *muxCall) bool {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return false
	}
	mc.queue = append(mc.queue, call)
	mc.inflight.Add(1)
	mc.mu.Unlock()
	select {
	case mc.kick <- struct{}{}:
	default:
	}
	return true
}

// finish completes a call exactly once and releases its inflight slot.
func (mc *muxConn) finish(call *muxCall, resp *Response, err error) {
	if !call.finished.CompareAndSwap(false, true) {
		return
	}
	call.resp, call.err = resp, err
	mc.inflight.Add(-1)
	close(call.done)
}

// err returns the teardown cause, for failing calls that never made it
// onto the wire.
func (mc *muxConn) err() error {
	if v := mc.failure.Load(); v != nil {
		return v.(error)
	}
	return fmt.Errorf("%w: multiplexed connection closed", net.ErrClosed)
}

// teardown kills the connection once: marks it dead (no new submissions),
// closes the socket (unblocking both loops), and unregisters it from the
// host. Draining and failing queued calls is the loops' exit duty — the
// writer owns queue, both loops drain rq.
func (mc *muxConn) teardown(cause error) {
	mc.once.Do(func() {
		if cause == nil {
			cause = net.ErrClosed
		}
		mc.failure.Store(cause)
		mc.mu.Lock()
		mc.dead = true
		mc.mu.Unlock()
		close(mc.closed)
		mc.conn.Close()
		h := mc.host
		h.mu.Lock()
		for i, x := range h.conns {
			if x == mc {
				h.conns = append(h.conns[:i], h.conns[i+1:]...)
				break
			}
		}
		h.mu.Unlock()
		if h.c.Obs != nil {
			h.c.Obs.ConnsOpen.Add(-1)
		}
	})
}

// writeLoop drains the submission queue into writev bursts: every queued
// request that accumulated while the previous burst was on the wire goes
// out in one syscall. Each call is recorded on rq before its bytes are
// written so the reader can never see a response for an unknown call.
func (mc *muxConn) writeLoop() {
	c := mc.host.c
	for {
		select {
		case <-mc.kick:
		case <-mc.closed:
			mc.exitWriter()
			return
		}
		for {
			mc.mu.Lock()
			batch := mc.queue
			mc.queue = nil
			mc.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			v := getVec()
			n := 0
			var latest time.Time
			aborted := false
			for i, call := range batch {
				if call.abandoned.Load() {
					// Not yet written: drop it entirely rather than
					// wasting origin work and reader discards.
					mc.finish(call, nil, wireerr.FromContext(context.Canceled))
					continue
				}
				select {
				case mc.rq <- call:
				case <-mc.closed:
					mc.failCalls(batch[i:])
					aborted = true
				}
				if aborted {
					break
				}
				v.appendRequest(call.req)
				if call.deadline.After(latest) {
					latest = call.deadline
				}
				n++
			}
			if aborted || n == 0 {
				putVec(v)
				if aborted {
					mc.exitWriter()
					return
				}
				continue
			}
			mc.conn.SetWriteDeadline(latest)
			err := writeVec(mc.conn, v)
			putVec(v)
			if c.Obs != nil {
				c.Obs.WriteOps.Inc()
				c.Obs.WriteBatch.Observe(int64(n))
			}
			if err != nil {
				mc.teardown(wireerr.Exchange(context.Background(), err))
				mc.exitWriter()
				return
			}
		}
	}
}

// exitWriter fails everything the writer is responsible for after
// teardown: the unwritten submission queue and (shared with the reader's
// exit) anything left on rq.
func (mc *muxConn) exitWriter() {
	mc.mu.Lock()
	queued := mc.queue
	mc.queue = nil
	mc.mu.Unlock()
	mc.failCalls(queued)
	mc.drainRQ()
}

// readLoop answers written calls in FIFO order, enforcing each call's own
// deadline on its response read. Responses for abandoned callers are read
// and discarded — consuming them is what keeps the pipeline correlated.
func (mc *muxConn) readLoop() {
	// The reader owns br exclusively; repool it once the loop is done
	// (teardown has closed the socket by then on every exit path).
	defer PutReader(mc.br)
	for {
		var call *muxCall
		select {
		case call = <-mc.rq:
		case <-mc.closed:
			mc.drainRQ()
			return
		}
		mc.conn.SetReadDeadline(call.deadline)
		resp, err := ReadResponse(mc.br, call.req.Method == "HEAD")
		if err != nil {
			err = classifyMuxRead(err)
			mc.finish(call, nil, err)
			mc.teardown(err)
			mc.drainRQ()
			return
		}
		wantsClose := resp.Header.WantsClose()
		if call.abandoned.Load() {
			mc.finish(call, nil, wireerr.FromContext(context.Canceled))
		} else {
			mc.finish(call, resp, nil)
		}
		if wantsClose {
			mc.teardown(fmt.Errorf("%w: server closed multiplexed connection", net.ErrClosed))
			mc.drainRQ()
			return
		}
	}
}

// drainRQ fails every call still awaiting a response. Both loops call it
// on exit; finish's CAS makes the overlap harmless, and the writer never
// pushes to rq after observing closed, so nothing is left behind.
func (mc *muxConn) drainRQ() {
	for {
		select {
		case call := <-mc.rq:
			mc.finish(call, nil, mc.err())
		default:
			return
		}
	}
}

func (mc *muxConn) failCalls(calls []*muxCall) {
	for _, call := range calls {
		mc.finish(call, nil, mc.err())
	}
}

// classifyMuxRead maps a response-read error into the wireerr taxonomy.
// There is no single caller context here — the deadline on the conn came
// from the call being read — so net timeouts become ErrRequestTimeout
// directly.
func classifyMuxRead(err error) error {
	var nerr net.Error
	switch {
	case errors.As(err, &nerr) && nerr.Timeout():
		return fmt.Errorf("%w: %w", wireerr.ErrRequestTimeout, err)
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return fmt.Errorf("%w: %w", wireerr.ErrTruncatedBody, err)
	default:
		return err
	}
}

// closeAll tears down every connection of the host (Client.Close).
func (h *muxHost) closeAll() {
	h.mu.Lock()
	conns := append([]*muxConn(nil), h.conns...)
	h.mu.Unlock()
	for _, mc := range conns {
		mc.teardown(net.ErrClosed)
	}
}
