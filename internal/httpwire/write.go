package httpwire

import (
	"bufio"
	"sort"
	"strconv"
)

// The serializers below avoid fmt and per-message map clones: profiles of
// the 64-worker loadtest showed the per-header-line fmt.Fprintf boxing and
// the Header.Clone needed to inject framing fields dominating hot-path
// allocation. Framing fields (Content-Length, Transfer-Encoding, Trailer)
// are instead merged into the sorted key walk as "extras", and the sorted
// key slice itself comes from a pool.

// writeInt writes n in the given base without allocating: the digits are
// appended into the writer's own spare buffer capacity.
func writeInt(bw *bufio.Writer, n int64, base int) error {
	_, err := bw.Write(strconv.AppendInt(bw.AvailableBuffer(), n, base))
	return err
}

func writeField(bw *bufio.Writer, k, v string) error {
	if _, err := bw.WriteString(k); err != nil {
		return err
	}
	if _, err := bw.WriteString(": "); err != nil {
		return err
	}
	if _, err := bw.WriteString(v); err != nil {
		return err
	}
	_, err := bw.WriteString("\r\n")
	return err
}

// writeHeader emits header fields in sorted order (deterministic wire
// output simplifies testing and debugging).
func writeHeader(bw *bufio.Writer, h Header) error {
	return writeHeaderX(bw, h, "", "", "", "", "")
}

// writeHeaderX emits h's fields plus up to two extra fields (x1, x2 — empty
// key means absent) in one sorted walk, omitting skip. An extra overrides a
// same-named field in h. Extras are how the serializers inject framing
// fields without cloning the caller's header map.
func writeHeaderX(bw *bufio.Writer, h Header, skip, x1k, x1v, x2k, x2v string) error {
	scratch := getKeyScratch()
	defer putKeyScratch(scratch)
	keys := *scratch
	for k := range h {
		if k == skip || k == x1k || k == x2k {
			continue
		}
		keys = append(keys, k)
	}
	if x1k != "" {
		keys = append(keys, x1k)
	}
	if x2k != "" {
		keys = append(keys, x2k)
	}
	sort.Strings(keys)
	*scratch = keys // keep any growth for the pool
	for _, k := range keys {
		v := h[k]
		switch k {
		case x1k:
			v = x1v
		case x2k:
			v = x2v
		}
		if err := writeField(bw, k, v); err != nil {
			return err
		}
	}
	return nil
}

// WriteRequest serializes req to bw and flushes. Requests with a body are
// framed with Content-Length.
func WriteRequest(bw *bufio.Writer, req *Request) error {
	proto := req.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	for _, s := range []string{req.Method, " ", req.Path, " ", proto, "\r\n"} {
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	var clk, clv string
	if len(req.Body) > 0 || req.Method == "POST" || req.Method == "PUT" {
		clk, clv = "Content-Length", strconv.Itoa(len(req.Body))
	}
	if err := writeHeaderX(bw, req.Header, "", clk, clv, "", ""); err != nil {
		return err
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}
	if len(req.Body) > 0 {
		if _, err := bw.Write(req.Body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// trailerNames renders the sorted, comma-separated Trailer header value.
// The single-field trailer (one P-Volume field, the protocol's usual case)
// needs no building at all.
func trailerNames(t Header) string {
	if len(t) == 1 {
		for k := range t {
			return k
		}
	}
	scratch := getKeyScratch()
	defer putKeyScratch(scratch)
	keys := *scratch
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	*scratch = keys
	n := 0
	for _, k := range keys {
		n += len(k) + 2
	}
	out := make([]byte, 0, n)
	for i, k := range keys {
		if i > 0 {
			out = append(out, ", "...)
		}
		out = append(out, k...)
	}
	return string(out)
}

// WriteResponse serializes resp to bw and flushes.
//
// When resp.Trailer is non-empty the body is sent with chunked
// transfer-coding: a Trailer header names the trailer fields, the body goes
// out in one chunk immediately (never delayed while the piggyback is
// constructed, §2.3), and the trailer fields follow the mandatory
// zero-length chunk. Otherwise the body is framed with Content-Length.
// noBody suppresses body bytes (HEAD responses) while keeping the framing
// headers.
func WriteResponse(bw *bufio.Writer, resp *Response, noBody bool) error {
	proto := resp.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := resp.Reason
	if reason == "" {
		reason = StatusText(resp.Status)
	}
	if _, err := bw.WriteString(proto); err != nil {
		return err
	}
	if err := bw.WriteByte(' '); err != nil {
		return err
	}
	if err := writeInt(bw, int64(resp.Status), 10); err != nil {
		return err
	}
	if err := bw.WriteByte(' '); err != nil {
		return err
	}
	if _, err := bw.WriteString(reason); err != nil {
		return err
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}

	chunked := len(resp.Trailer) > 0
	var err error
	switch {
	case chunked:
		// §2.3: "The server must include a Trailer header field
		// indicating the later appearance of the P-volume response
		// header field."
		err = writeHeaderX(bw, resp.Header, "Content-Length",
			"Trailer", trailerNames(resp.Trailer),
			"Transfer-Encoding", "chunked")
	case resp.Status != 304:
		err = writeHeaderX(bw, resp.Header, "",
			"Content-Length", strconv.Itoa(len(resp.Body)), "", "")
	default:
		err = writeHeader(bw, resp.Header)
	}
	if err != nil {
		return err
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}

	switch {
	case chunked:
		if !noBody && len(resp.Body) > 0 {
			if err := writeInt(bw, int64(len(resp.Body)), 16); err != nil {
				return err
			}
			if _, err := bw.WriteString("\r\n"); err != nil {
				return err
			}
			if _, err := bw.Write(resp.Body); err != nil {
				return err
			}
			if _, err := bw.WriteString("\r\n"); err != nil {
				return err
			}
		}
		// Mandatory zero-length chunk, then the trailer section.
		if _, err := bw.WriteString("0\r\n"); err != nil {
			return err
		}
		if err := writeHeader(bw, resp.Trailer); err != nil {
			return err
		}
		if _, err := bw.WriteString("\r\n"); err != nil {
			return err
		}
	case !noBody && resp.Status != 304 && len(resp.Body) > 0:
		if _, err := bw.Write(resp.Body); err != nil {
			return err
		}
	}
	return bw.Flush()
}
