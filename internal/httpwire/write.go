package httpwire

import (
	"bufio"
	"sort"
)

// The serializers avoid fmt and per-message map clones: profiles of the
// 64-worker loadtest showed per-header-line fmt.Fprintf boxing and the
// Header.Clone needed to inject framing fields dominating hot-path
// allocation. Framing fields (Content-Length, Transfer-Encoding, Trailer)
// are merged into the sorted key walk as "extras", and the sorted key
// slice itself comes from a pool. Since the writev rework the single
// source of serialization truth is the segment builders in writev.go
// (appendRequest/appendResponse); the bufio entry points below feed the
// same segments through a buffered writer for callers that hold one.

// WriteRequest serializes req to bw and flushes. Requests with a body are
// framed with Content-Length.
func WriteRequest(bw *bufio.Writer, req *Request) error {
	v := getVec()
	v.appendRequest(req)
	err := v.writeTo(bw)
	putVec(v)
	if err != nil {
		return err
	}
	return bw.Flush()
}

// trailerNames renders the sorted, comma-separated Trailer header value.
// The single-field trailer (one P-Volume field, the protocol's usual case)
// needs no building at all.
func trailerNames(t Header) string {
	if len(t) == 1 {
		for k := range t {
			return k
		}
	}
	scratch := getKeyScratch()
	defer putKeyScratch(scratch)
	keys := *scratch
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	*scratch = keys
	n := 0
	for _, k := range keys {
		n += len(k) + 2
	}
	out := make([]byte, 0, n)
	for i, k := range keys {
		if i > 0 {
			out = append(out, ", "...)
		}
		out = append(out, k...)
	}
	return string(out)
}

// WriteResponse serializes resp to bw and flushes.
//
// When resp.Trailer is non-empty the body is sent with chunked
// transfer-coding: a Trailer header names the trailer fields, the body goes
// out in one chunk immediately (never delayed while the piggyback is
// constructed, §2.3), and the trailer fields follow the mandatory
// zero-length chunk. Otherwise the body is framed with Content-Length.
// noBody suppresses body bytes (HEAD responses) while keeping the framing
// headers.
func WriteResponse(bw *bufio.Writer, resp *Response, noBody bool) error {
	v := getVec()
	v.appendResponse(resp, noBody)
	err := v.writeTo(bw)
	putVec(v)
	if err != nil {
		return err
	}
	return bw.Flush()
}
