package httpwire

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
)

// writeHeader emits header fields in sorted order (deterministic wire
// output simplifies testing and debugging).
func writeHeader(bw *bufio.Writer, h Header) error {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "%s: %s\r\n", k, h[k]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRequest serializes req to bw and flushes. Requests with a body are
// framed with Content-Length.
func WriteRequest(bw *bufio.Writer, req *Request) error {
	proto := req.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	if _, err := fmt.Fprintf(bw, "%s %s %s\r\n", req.Method, req.Path, proto); err != nil {
		return err
	}
	h := req.Header
	if h == nil {
		h = make(Header)
	}
	if len(req.Body) > 0 || req.Method == "POST" || req.Method == "PUT" {
		h = h.Clone()
		h.Set("Content-Length", strconv.Itoa(len(req.Body)))
	}
	if err := writeHeader(bw, h); err != nil {
		return err
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}
	if len(req.Body) > 0 {
		if _, err := bw.Write(req.Body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteResponse serializes resp to bw and flushes.
//
// When resp.Trailer is non-empty the body is sent with chunked
// transfer-coding: a Trailer header names the trailer fields, the body goes
// out in one chunk immediately (never delayed while the piggyback is
// constructed, §2.3), and the trailer fields follow the mandatory
// zero-length chunk. Otherwise the body is framed with Content-Length.
// noBody suppresses body bytes (HEAD responses) while keeping the framing
// headers.
func WriteResponse(bw *bufio.Writer, resp *Response, noBody bool) error {
	proto := resp.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := resp.Reason
	if reason == "" {
		reason = StatusText(resp.Status)
	}
	if _, err := fmt.Fprintf(bw, "%s %d %s\r\n", proto, resp.Status, reason); err != nil {
		return err
	}
	h := resp.Header
	if h == nil {
		h = make(Header)
	}
	h = h.Clone()

	chunked := len(resp.Trailer) > 0
	if chunked {
		h.Set("Transfer-Encoding", "chunked")
		h.Del("Content-Length")
		// §2.3: "The server must include a Trailer header field
		// indicating the later appearance of the P-volume response
		// header field."
		names := make([]string, 0, len(resp.Trailer))
		for k := range resp.Trailer {
			names = append(names, k)
		}
		sort.Strings(names)
		trailerList := ""
		for i, n := range names {
			if i > 0 {
				trailerList += ", "
			}
			trailerList += n
		}
		h.Set("Trailer", trailerList)
	} else if resp.Status != 304 {
		h.Set("Content-Length", strconv.Itoa(len(resp.Body)))
	}

	if err := writeHeader(bw, h); err != nil {
		return err
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}

	switch {
	case chunked:
		if !noBody && len(resp.Body) > 0 {
			if _, err := fmt.Fprintf(bw, "%x\r\n", len(resp.Body)); err != nil {
				return err
			}
			if _, err := bw.Write(resp.Body); err != nil {
				return err
			}
			if _, err := bw.WriteString("\r\n"); err != nil {
				return err
			}
		}
		// Mandatory zero-length chunk, then the trailer section.
		if _, err := bw.WriteString("0\r\n"); err != nil {
			return err
		}
		if err := writeHeader(bw, resp.Trailer); err != nil {
			return err
		}
		if _, err := bw.WriteString("\r\n"); err != nil {
			return err
		}
	case !noBody && resp.Status != 304 && len(resp.Body) > 0:
		if _, err := bw.Write(resp.Body); err != nil {
			return err
		}
	}
	return bw.Flush()
}
