package httpwire

import "piggyback/internal/obs"

// StatsResponse serializes a live telemetry snapshot of reg as the
// GET /.piggy/stats payload: a 200 application/json response. The server,
// proxy, and volume center all answer the reserved origin-form path
// obs.StatsPath with this, so the load generator (or an operator with
// netcat) can watch counters move under live traffic.
func StatsResponse(reg *obs.Registry) *Response {
	resp := NewResponse(200)
	resp.Body = reg.Snapshot().JSON()
	resp.Header.Set("Content-Type", "application/json")
	resp.Header.Set("Cache-Control", "no-store")
	return resp
}

// IsStatsRequest reports whether req addresses the reserved telemetry
// endpoint: a GET for the origin-form stats path. Handlers check this
// before any routing (the path intentionally has no Host, so a proxy
// answers for itself rather than forwarding).
func IsStatsRequest(req *Request) bool {
	return req.Method == "GET" && req.Path == obs.StatsPath
}
