package httpwire

import "strings"

// Proxy-to-server hit reporting (§5 future work): "we are studying ways
// for the proxy to piggyback information to the server about accesses that
// are satisfied at the cache." Without it, a server's volumes only see
// cache misses and validations; hot cached resources fade from the
// popularity order even while clients hammer them at the proxy.
//
// The proxy accumulates the URLs it served from cache since its last
// upstream request to a server and attaches them as a Piggy-Hits request
// header; a cooperating server (or volume center) feeds them back into its
// volume maintenance.

// FieldPiggyHits is the request header carrying cache-satisfied URLs.
const FieldPiggyHits = "Piggy-Hits"

// maxHitsHeader bounds the encoded header size.
const maxHitsHeader = 2048

// SetHits attaches cache-hit URLs to the request, dropping entries that
// would overflow the header budget (most recent first, so the freshest
// hits survive).
func SetHits(req *Request, urls []string) {
	if len(urls) == 0 {
		return
	}
	if req.Header == nil {
		req.Header = make(Header)
	}
	var b strings.Builder
	for i := len(urls) - 1; i >= 0; i-- {
		u := urls[i]
		if u == "" || strings.ContainsAny(u, ", \t") {
			continue
		}
		if b.Len()+len(u)+1 > maxHitsHeader {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(u)
	}
	if b.Len() > 0 {
		req.Header.Set(FieldPiggyHits, b.String())
	}
}

// GetHits extracts the cache-hit URLs from a request.
func GetHits(req *Request) []string {
	v := req.Header.Get(FieldPiggyHits)
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
