package httpwire

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"piggyback/internal/faultconn"
	"piggyback/internal/obs"
)

// writeCounter counts Write calls on a net.Conn, so a test can prove a
// faulted conn really did split the vector into many short writes.
type writeCounter struct {
	net.Conn
	n atomic.Int64
}

func (w *writeCounter) Write(b []byte) (int, error) {
	w.n.Add(1)
	return w.Conn.Write(b)
}

// vecCases enumerates the framing shapes the vectored writer produces:
// Content-Length bodies, chunked bodies with trailers, trailer-only 304s,
// HEAD framing without body bytes, and requests with bodies.
func vecCases() map[string]func(v *wvec) {
	plain := NewResponse(200)
	plain.Header.Set("Content-Type", "text/html")
	plain.Body = []byte("<html>short-write survivor</html>")

	trailer := NewResponse(200)
	trailer.Body = []byte("chunked body bytes")
	trailer.Trailer = Header{}
	trailer.Trailer.Set("P-Volume", "17; /a/b.html 866268400 4096")

	notMod := NewResponse(304)
	notMod.Trailer = Header{}
	notMod.Trailer.Set("P-Volume", "9; /x 5 6")

	head := NewResponse(200)
	head.Body = []byte("head body is framed, not sent")

	req := NewRequest("POST", "/submit")
	req.Header.Set("Host", "sig.com")
	req.Body = []byte("key=value")

	return map[string]func(v *wvec){
		"plain":   func(v *wvec) { v.appendResponse(plain, false) },
		"trailer": func(v *wvec) { v.appendResponse(trailer, false) },
		"304":     func(v *wvec) { v.appendResponse(notMod, false) },
		"head":    func(v *wvec) { v.appendResponse(head, true) },
		"request": func(v *wvec) { v.appendRequest(req) },
		"batch": func(v *wvec) {
			v.appendResponse(plain, false)
			v.appendResponse(trailer, false)
			v.appendResponse(notMod, false)
		},
	}
}

// TestWriteVecShortWrites drives every framing shape through a conn that
// accepts at most 3 bytes per Write — the adversarial stand-in for a
// congested socket splitting a vectored write — and checks the peer sees
// byte-identical output. writeVec's fallback loop must tolerate the
// contract-violating (n < len, nil) returns.
func TestWriteVecShortWrites(t *testing.T) {
	for name, build := range vecCases() {
		t.Run(name, func(t *testing.T) {
			want := vecBytes(build)

			client, server := net.Pipe()
			defer server.Close()
			wc := &writeCounter{Conn: client}
			fc := faultconn.Wrap(wc, faultconn.Fault{MaxWriteBytes: 3})

			errc := make(chan error, 1)
			go func() {
				v := getVec()
				build(v)
				err := writeVec(fc, v)
				putVec(v)
				fc.Close()
				errc <- err
			}()

			got, err := io.ReadAll(server)
			if err != nil {
				t.Fatalf("reading peer: %v", err)
			}
			if err := <-errc; err != nil {
				t.Fatalf("writeVec: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("short-write wire mismatch:\ngot  %q\nwant %q", got, want)
			}
			if n := wc.n.Load(); n < int64(len(want)/3) {
				t.Fatalf("fault did not split writes: %d calls for %d bytes", n, len(want))
			}
		})
	}
}

// TestShortWriteResponseParses round-trips a trailered response through the
// short-writing conn and the real parser: framing, body, and piggyback
// trailer all survive 3-byte fragments.
func TestShortWriteResponseParses(t *testing.T) {
	resp := NewResponse(200)
	resp.Body = []byte("body bytes here")
	resp.Trailer = Header{}
	resp.Trailer.Set("P-Volume", "17; /a/b.html 866268400 4096")

	client, server := net.Pipe()
	defer server.Close()
	fc := faultconn.Wrap(client, faultconn.Fault{MaxWriteBytes: 3})

	errc := make(chan error, 1)
	go func() {
		v := getVec()
		v.appendResponse(resp, false)
		err := writeVec(fc, v)
		putVec(v)
		fc.Close()
		errc <- err
	}()

	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := ReadResponse(bufio.NewReader(server), false)
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if werr := <-errc; werr != nil {
		t.Fatalf("writeVec: %v", werr)
	}
	if got.Status != 200 || string(got.Body) != "body bytes here" {
		t.Fatalf("got %d %q", got.Status, got.Body)
	}
	if got.Trailer.Get("P-Volume") != "17; /a/b.html 866268400 4096" {
		t.Fatalf("trailer = %v", got.Trailer)
	}
}

// vecBytes serializes a vector through the buffered compatibility path,
// which shares the segment construction with writeVec — the reference
// output for the short-write comparison.
func vecBytes(build func(v *wvec)) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	v := getVec()
	build(v)
	if err := v.writeTo(bw); err != nil {
		panic(err)
	}
	putVec(v)
	bw.Flush()
	return buf.Bytes()
}

// TestVectoredWireGolden pins the exact bytes of the vectored serialization
// so the writev restructuring cannot drift from the historical bufio
// output (headers sorted, CRLF framing, chunked tail shape).
func TestVectoredWireGolden(t *testing.T) {
	plain := NewResponse(200)
	plain.Header.Set("Content-Type", "text/html")
	plain.Body = []byte("hello")
	var buf bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&buf), plain, false); err != nil {
		t.Fatal(err)
	}
	wantPlain := "HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Type: text/html\r\n\r\nhello"
	if buf.String() != wantPlain {
		t.Errorf("plain wire:\ngot  %q\nwant %q", buf.String(), wantPlain)
	}

	chunked := NewResponse(200)
	chunked.Body = []byte("xyz")
	chunked.Trailer = Header{}
	chunked.Trailer.Set("P-Volume", "5; /a 1 2")
	buf.Reset()
	if err := WriteResponse(bufio.NewWriter(&buf), chunked, false); err != nil {
		t.Fatal(err)
	}
	wantChunked := "HTTP/1.1 200 OK\r\nTrailer: P-Volume\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"3\r\nxyz\r\n0\r\nP-Volume: 5; /a 1 2\r\n\r\n"
	if buf.String() != wantChunked {
		t.Errorf("chunked wire:\ngot  %q\nwant %q", buf.String(), wantChunked)
	}
}

// TestWvecResetDropsBodyRefs guards the pool-safety invariant: a recycled
// vector must not pin message bodies (cached documents) in segment slots.
func TestWvecResetDropsBodyRefs(t *testing.T) {
	v := getVec()
	resp := NewResponse(200)
	resp.Body = []byte("cached body")
	v.appendResponse(resp, false)
	segs := v.segs[:cap(v.segs)]
	v.reset()
	for i := range segs {
		if segs[i] != nil {
			t.Fatalf("seg %d still referenced after reset", i)
		}
	}
	putVec(v)
}

// TestServerCoalescesPipelinedResponses proves the read-side coalescing +
// vectored write combination: three requests pipelined in one TCP segment
// come back as one writev burst — wire.server.syscalls.writes counts 1
// write for 3 responses.
func TestServerCoalescesPipelinedResponses(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := &Server{
		Handler: HandlerFunc(echoHandler),
		Obs:     obs.NewWireMetrics(reg, "wire.server"),
	}
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var pipelined bytes.Buffer
	bw := bufio.NewWriter(&pipelined)
	for i := 0; i < 3; i++ {
		if err := WriteRequest(bw, NewRequest("GET", fmt.Sprintf("/p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	if _, err := conn.Write(pipelined.Bytes()); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		resp, err := ReadResponse(br, false)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if want := fmt.Sprintf("echo:/p%d", i); string(resp.Body) != want {
			t.Fatalf("response %d body = %q, want %q", i, resp.Body, want)
		}
	}

	writes := srv.Obs.WriteOps.Load()
	if writes >= 3 {
		t.Errorf("3 pipelined responses took %d write syscalls; coalescing inactive", writes)
	}
	if srv.Obs.WriteBatch.Count() == 0 {
		t.Error("no response batch recorded")
	}
	if srv.Obs.ReadOps.Load() == 0 {
		t.Error("read syscalls not counted")
	}
}
