//go:build race

package httpwire

// raceEnabled disables the net.Buffers writev fast path under the race
// detector. syscall.Write carries a race-release annotation (ioSync) that
// makes socket byte order visible to the detector as a happens-before
// edge; the writev syscall used by net.Buffers.WriteTo has no such
// annotation, so vectored writes would surface false "unsynchronized"
// races between a handler goroutine and the peer that read its response.
// Race builds take the sequential per-segment Write loop instead — same
// bytes, annotated syscalls.
const raceEnabled = true
