package httpwire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piggyback/internal/faultconn"
	"piggyback/internal/httpwire/wireerr"
	"piggyback/internal/obs"
)

// newMuxClient returns a client with the multiplexed upstream tier enabled
// and metrics attached.
func newMuxClient(inflight int) *Client {
	c := NewClient()
	c.MaxInflightPerConn = inflight
	c.Obs = obs.NewWireMetrics(obs.NewRegistry(), "wire.mux")
	return c
}

func TestMuxBasicMultiplexing(t *testing.T) {
	var conns int32
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: HandlerFunc(echoHandler)}
	go srv.Serve(&countingListener{Listener: l, n: &conns})
	defer srv.Close()

	c := newMuxClient(8)
	defer c.Close()

	const requests = 40
	var wg sync.WaitGroup
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/mux%d", i)
			resp, err := c.DoContext(context.Background(), l.Addr().String(), NewRequest("GET", path))
			if err != nil {
				errs[i] = err
				return
			}
			if string(resp.Body) != "echo:"+path {
				errs[i] = fmt.Errorf("body %q for %s", resp.Body, path)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Responses demuxed back to the right callers over far fewer
	// connections than requests — the whole point of the tier.
	got := atomic.LoadInt32(&conns)
	if got >= requests {
		t.Errorf("%d requests used %d connections; multiplexing inactive", requests, got)
	}
	if max := int32(c.maxConnsPerHost()); got > max {
		t.Errorf("%d connections exceeds per-host bound %d", got, max)
	}
	if c.Obs.WriteBatch.Count() == 0 {
		t.Error("no writev batches recorded on the mux path")
	}
}

func TestMuxSequentialOrdering(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := newMuxClient(4)
	defer c.Close()
	// Sequential requests on one multiplexed conn must come back in
	// submission order (FIFO is the HTTP/1.1 correlation).
	for i := 0; i < 25; i++ {
		path := fmt.Sprintf("/seq%d", i)
		resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", path))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if string(resp.Body) != "echo:"+path {
			t.Fatalf("request %d got %q", i, resp.Body)
		}
	}
}

// resetFirstListener resets the first accepted connection on its first
// write and passes the rest through untouched.
type resetFirstListener struct {
	net.Listener
	accepted atomic.Int32
}

func (l *resetFirstListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.accepted.Add(1) == 1 {
		return faultconn.Wrap(conn, faultconn.Fault{Reset: true}), nil
	}
	return conn, nil
}

func TestMuxFallsBackToPool(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rfl := &resetFirstListener{Listener: l}
	srv := &Server{Handler: HandlerFunc(echoHandler)}
	go srv.Serve(rfl)
	defer srv.Close()

	c := newMuxClient(4)
	defer c.Close()
	// The first (multiplexed) connection dies mid-exchange; DoContext must
	// transparently retry on the classic pool.
	resp, err := c.DoContext(context.Background(), l.Addr().String(), NewRequest("GET", "/fallback"))
	if err != nil {
		t.Fatalf("fallback request failed: %v", err)
	}
	if string(resp.Body) != "echo:/fallback" {
		t.Fatalf("body = %q", resp.Body)
	}
	if c.Obs.Retries.Load() == 0 {
		t.Error("fallback did not count a retry")
	}
	if rfl.accepted.Load() < 2 {
		t.Error("fallback never reached the pool path")
	}
}

func TestMuxCanceledCallerDetaches(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	h := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		if req.Path == "/slow" {
			select {
			case <-release:
			case <-time.After(5 * time.Second):
			}
		}
		return echoHandler(ctx, req)
	})
	addr := startServer(t, h)
	c := newMuxClient(4)
	defer c.Close()

	// Establish the multiplexed connection first so the short deadline
	// below races the exchange, never the dial.
	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/warm")); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.DoContext(ctx, addr, NewRequest("GET", "/slow"))
	if !errors.Is(err, wireerr.ErrRequestTimeout) && !errors.Is(err, wireerr.ErrCanceled) {
		t.Fatalf("canceled caller got %v, want wireerr timeout/cancel", err)
	}
	once.Do(func() { close(release) })

	// The connection must still be usable: the reader discards the
	// abandoned response and stays correlated.
	resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/after"))
	if err != nil {
		t.Fatalf("request after cancellation: %v", err)
	}
	if string(resp.Body) != "echo:/after" {
		t.Fatalf("stream desynchronized: %q", resp.Body)
	}
}

// TestMuxCancellationHammer is the -race stress for the multiplexed tier:
// many goroutines share a few connections while a third of the callers
// abandon mid-flight, exercising every submit/finish/teardown interleaving.
func TestMuxCancellationHammer(t *testing.T) {
	h := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		if len(req.Path)%3 == 0 {
			time.Sleep(time.Millisecond)
		}
		return echoHandler(ctx, req)
	})
	addr := startServer(t, h)
	c := newMuxClient(4)
	defer c.Close()

	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	var failures atomic.Int32
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				path := fmt.Sprintf("/h%d-%d", g, i)
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if i%3 == 0 {
					// Deadline short enough to abandon some calls
					// mid-flight, long enough that others land.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*500*time.Microsecond)
				}
				resp, err := c.DoContext(ctx, addr, NewRequest("GET", path))
				cancel()
				switch {
				case err == nil:
					if string(resp.Body) != "echo:"+path {
						t.Errorf("cross-wired body %q for %s", resp.Body, path)
						failures.Add(1)
						return
					}
				case errors.Is(err, wireerr.ErrCanceled),
					errors.Is(err, wireerr.ErrRequestTimeout),
					errors.Is(err, wireerr.ErrDialTimeout),
					errors.Is(err, wireerr.ErrTruncatedBody),
					errors.Is(err, net.ErrClosed):
					// Expected outcomes for abandoned or collateral calls
					// (a sub-millisecond deadline can expire inside a dial).
				default:
					t.Errorf("unclassified error for %s: %v", path, err)
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatal("hammer saw failures")
	}
	// Steady state after the storm: a fresh exchange must still work.
	resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/steady"))
	if err != nil || string(resp.Body) != "echo:/steady" {
		t.Fatalf("post-hammer exchange: %v %q", err, resp)
	}
}

func TestMuxClientCloseFailsInflight(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		<-block
		return echoHandler(ctx, req)
	})
	addr := startServer(t, h)
	c := newMuxClient(4)

	done := make(chan error, 1)
	go func() {
		_, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/blocked"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	close(block)
	select {
	case err := <-done:
		if err == nil {
			t.Error("in-flight exchange survived Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exchange hung after Close")
	}
}
