package httpwire

import (
	"bytes"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// PprofPathPrefix is the reserved origin-form path prefix under which live
// runtime profiles are served: /.piggy/pprof/<name> answers with the named
// runtime/pprof profile (heap, allocs, goroutine, block, mutex, ...), and
// /.piggy/pprof/profile?seconds=N with an N-second CPU profile. Like the
// stats endpoint, the path has no Host so a proxy answers for itself.
//
// The endpoint is off by default — profiles expose internals, so a process
// opts in with EnablePprof (the -pprof flag on the daemons).
const PprofPathPrefix = "/.piggy/pprof/"

var pprofEnabled atomic.Bool

// EnablePprof turns the /.piggy/pprof/ endpoint on or off process-wide.
func EnablePprof(on bool) { pprofEnabled.Store(on) }

// IsPprofRequest reports whether req addresses the profiling endpoint.
// Handlers check this before routing, exactly like IsStatsRequest.
func IsPprofRequest(req *Request) bool {
	return req.Method == "GET" && strings.HasPrefix(req.Path, PprofPathPrefix)
}

// maxCPUProfileSeconds bounds how long one request may keep the (global,
// single-consumer) CPU profiler running.
const maxCPUProfileSeconds = 60

// PprofResponse serves a profiling request. When profiling is not enabled
// it answers 404 without revealing the endpoint exists.
func PprofResponse(req *Request) *Response {
	if !pprofEnabled.Load() {
		return NewResponse(404)
	}
	name, query, _ := strings.Cut(strings.TrimPrefix(req.Path, PprofPathPrefix), "?")
	if name == "profile" {
		return cpuProfileResponse(query)
	}
	p := pprof.Lookup(name)
	if p == nil {
		return NewResponse(404)
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return NewResponse(500)
	}
	return profileBytes(buf.Bytes())
}

// cpuProfileResponse runs the CPU profiler for seconds= (default 5) and
// returns the pprof-format profile. The sleep here is intentional — the
// profile *is* the wait — and the endpoint is an opt-in debugging tool,
// not the serving path.
func cpuProfileResponse(query string) *Response {
	secs := 5
	for _, kv := range strings.Split(query, "&") {
		if v, ok := strings.CutPrefix(kv, "seconds="); ok {
			if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= maxCPUProfileSeconds {
				secs = n
			}
		}
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another CPU profile is already running (flag collision or a
		// concurrent request): the profiler is a singleton.
		resp := NewResponse(503)
		resp.Body = []byte(err.Error())
		return resp
	}
	time.Sleep(time.Duration(secs) * time.Second)
	pprof.StopCPUProfile()
	return profileBytes(buf.Bytes())
}

func profileBytes(b []byte) *Response {
	resp := NewResponse(200)
	resp.Body = b
	resp.Header.Set("Content-Type", "application/octet-stream")
	resp.Header.Set("Cache-Control", "no-store")
	return resp
}
