package httpwire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// dripReader returns at most one byte per Read call — the adversarial
// network that exposes any assumption that frames arrive whole.
type dripReader struct {
	data []byte
	pos  int
}

func (d *dripReader) Read(p []byte) (int, error) {
	if d.pos >= len(d.data) {
		return 0, io.EOF
	}
	p[0] = d.data[d.pos]
	d.pos++
	return 1, nil
}

func TestReadResponseFromDrippingConnection(t *testing.T) {
	resp := NewResponse(200)
	resp.Body = []byte("a body that arrives one byte at a time")
	resp.Trailer = Header{}
	resp.Trailer.Set("P-Volume", "3; /a/b.html 100 200")
	var buf bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&buf), resp, false); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&dripReader{data: buf.Bytes()}), false)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != string(resp.Body) {
		t.Errorf("body = %q", got.Body)
	}
	if got.Trailer.Get("P-Volume") != "3; /a/b.html 100 200" {
		t.Errorf("trailer = %v", got.Trailer)
	}
}

func TestReadRequestFromDrippingConnection(t *testing.T) {
	req := NewRequest("GET", "/a/x.html")
	req.Header.Set("Host", "example.com")
	req.Header.Set("Piggy-Filter", "maxpiggy=10")
	var buf bytes.Buffer
	if err := WriteRequest(bufio.NewWriter(&buf), req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&dripReader{data: buf.Bytes()}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != "/a/x.html" || got.Header.Get("Piggy-Filter") != "maxpiggy=10" {
		t.Errorf("got %+v", got)
	}
}

func TestReadResponseTruncatedMidChunk(t *testing.T) {
	resp := NewResponse(200)
	resp.Body = bytes.Repeat([]byte("x"), 1000)
	resp.Trailer = Header{}
	resp.Trailer.Set("P-Volume", "1; /a 1 2")
	var buf bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&buf), resp, false); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut the stream at several points inside the body and trailer: each
	// must yield an error, never a silently truncated message.
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		_, err := ReadResponse(bufio.NewReader(bytes.NewReader(full[:cut])), false)
		if err == nil {
			t.Errorf("truncation at %d of %d not detected", cut, len(full))
		}
	}
}

func TestReadRequestTruncatedBody(t *testing.T) {
	req := NewRequest("POST", "/submit")
	req.Body = bytes.Repeat([]byte("d"), 500)
	var buf bytes.Buffer
	if err := WriteRequest(bufio.NewWriter(&buf), req); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(full[:len(full)-100]))); err == nil {
		t.Error("truncated request body not detected")
	}
}

func TestPipelinedResponsesBackToBack(t *testing.T) {
	// Several framed messages on one stream, mixed framing: each read
	// must consume exactly its own bytes.
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)

	r1 := NewResponse(200)
	r1.Body = []byte("first")
	if err := WriteResponse(bw, r1, false); err != nil {
		t.Fatal(err)
	}
	r2 := NewResponse(200)
	r2.Body = []byte("second, chunked")
	r2.Trailer = Header{}
	r2.Trailer.Set("P-Volume", "2; /x 1 1")
	if err := WriteResponse(bw, r2, false); err != nil {
		t.Fatal(err)
	}
	r3 := NewResponse(304)
	if err := WriteResponse(bw, r3, false); err != nil {
		t.Fatal(err)
	}
	r4 := NewResponse(200)
	r4.Body = []byte("fourth")
	if err := WriteResponse(bw, r4, false); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(&dripReader{data: buf.Bytes()})
	g1, err := ReadResponse(br, false)
	if err != nil || string(g1.Body) != "first" {
		t.Fatalf("r1: %v %q", err, g1.Body)
	}
	g2, err := ReadResponse(br, false)
	if err != nil || string(g2.Body) != "second, chunked" || g2.Trailer.Get("P-Volume") == "" {
		t.Fatalf("r2: %v %q", err, g2.Body)
	}
	g3, err := ReadResponse(br, false)
	if err != nil || g3.Status != 304 || len(g3.Body) != 0 {
		t.Fatalf("r3: %v %+v", err, g3)
	}
	g4, err := ReadResponse(br, false)
	if err != nil || string(g4.Body) != "fourth" {
		t.Fatalf("r4: %v %q", err, g4.Body)
	}
}

func TestChunkExtensionsIgnored(t *testing.T) {
	wire := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5;ext=value\r\nhello\r\n0\r\n\r\n"
	got, err := ReadResponse(bufio.NewReader(bytes.NewReader([]byte(wire))), false)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "hello" {
		t.Errorf("body = %q", got.Body)
	}
}

// endlessLineReader emits an unterminated header line forever, counting
// how many bytes the parser actually consumed.
type endlessLineReader struct {
	prefix   []byte // emitted once before the endless run of filler
	pos      int
	consumed int64
}

func (e *endlessLineReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if e.pos < len(e.prefix) {
			p[n] = e.prefix[e.pos]
			e.pos++
		} else {
			p[n] = 'a'
		}
		n++
	}
	e.consumed += int64(n)
	return n, nil
}

func TestEndlessHeaderLineBounded(t *testing.T) {
	// A peer streaming an endless header line must be rejected after
	// maxLineBytes, not buffered until memory runs out.
	r := &endlessLineReader{prefix: []byte("GET / HTTP/1.1\r\nX-Evil: ")}
	_, err := ReadRequest(bufio.NewReader(r))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("endless header line: err = %v, want ErrMalformed", err)
	}
	// Consumption stays within the line bound plus one reader buffer.
	if limit := int64(maxLineBytes + 64<<10); r.consumed > limit {
		t.Errorf("parser consumed %d bytes of an endless line, want <= %d", r.consumed, limit)
	}
}

func TestEndlessRequestLineBounded(t *testing.T) {
	r := &endlessLineReader{}
	_, err := ReadRequest(bufio.NewReader(r))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("endless request line: err = %v, want ErrMalformed", err)
	}
}

func TestMaxLengthLineStillAccepted(t *testing.T) {
	// A line of exactly maxLineBytes (terminator included) parses fine.
	long := strings.Repeat("a", maxLineBytes-len("X-Long: ")-2)
	wire := "GET / HTTP/1.1\r\nX-Long: " + long + "\r\n\r\n"
	req, err := ReadRequest(bufio.NewReader(bytes.NewReader([]byte(wire))))
	if err != nil {
		t.Fatalf("max-length header line rejected: %v", err)
	}
	if got := req.Header.Get("X-Long"); got != long {
		t.Errorf("long header truncated: %d bytes, want %d", len(got), len(long))
	}
}

func TestHeaderLimitEnforced(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i < maxHeaderCount+10; i++ {
		buf.WriteString("X-Filler-")
		buf.WriteString(string(rune('a' + i%26)))
		buf.WriteString(string(rune('a' + (i/26)%26)))
		buf.WriteString(string(rune('a' + (i/676)%26)))
		buf.WriteString(": v\r\n")
	}
	buf.WriteString("\r\n")
	if _, err := ReadRequest(bufio.NewReader(&buf)); err == nil {
		t.Error("header count limit not enforced")
	}
}
