package httpwire

import (
	"context"
	"time"

	"piggyback/internal/httpwire/wireerr"
)

// Pipelining (§1: persistent connections "enable pipelining of multiple
// requests and responses" — e.g. the embedded images of an HTML document
// without per-request round trips). Do sends one request and waits; DoAll
// writes the whole batch before reading any response, so the pipe carries
// at most one round-trip of latency for the entire page.

// DoAllContext pipelines the requests to addr over one pooled persistent
// connection and returns the responses in order. On any error the
// connection is dropped and the error returned; responses received before
// the failure are returned alongside it. HEAD requests are pipelined
// correctly (their responses carry no body). The whole batch is bounded by
// the sooner of ctx's deadline and the scaled RequestTimeout; cancelling
// ctx interrupts the batch mid-flight.
func (c *Client) DoAllContext(ctx context.Context, addr string, reqs []*Request) ([]*Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	start := time.Now()
	cc, reused, err := c.acquire(ctx, addr)
	if err != nil {
		c.countError(err)
		return nil, err
	}
	resps, err := c.pipeline(ctx, cc, reqs)
	if err != nil && reused && len(resps) == 0 && ctx.Err() == nil {
		// The idle connection may have been closed by the server;
		// retry the whole batch once on a fresh connection.
		if c.Obs != nil {
			c.Obs.Retries.Inc()
		}
		c.discardConn(cc)
		if serr := sleepBackoff(ctx, c.retryBackoff()); serr != nil {
			c.countError(serr)
			return nil, serr
		}
		cc, _, err = c.acquire(ctx, addr)
		if err != nil {
			c.countError(err)
			return nil, err
		}
		resps, err = c.pipeline(ctx, cc, reqs)
	}
	if err != nil {
		c.discardConn(cc)
		c.countError(err)
		return resps, err
	}
	drop := ctx.Err() != nil // possibly-poked deadline; see DoContext
	for _, r := range resps {
		if r.Header.WantsClose() {
			drop = true
			break
		}
	}
	if drop {
		c.discardConn(cc)
	} else {
		c.releaseConn(cc)
	}
	if c.Obs != nil {
		// The batch shares one wire round trip, so it contributes one
		// latency sample; counts and bytes are per exchange.
		c.Obs.Requests.Add(int64(len(resps)))
		for i, r := range resps {
			c.Obs.BytesOut.Add(int64(len(reqs[i].Body)))
			c.Obs.BytesIn.Add(int64(len(r.Body)))
		}
		c.Obs.Latency.Observe(time.Since(start).Microseconds())
	}
	return resps, nil
}

// pipeline runs one batch on a connection the caller owns exclusively.
// The whole batch goes out as one vectored write, and each response read
// gets its own remaining-time budget — the sooner of RequestTimeout from
// the moment its read starts and the caller's context deadline — so a
// slow early response cannot starve later pipelined responses of theirs
// (the old single scaled batch deadline did exactly that).
func (c *Client) pipeline(ctx context.Context, cc *clientConn, reqs []*Request) ([]*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireerr.FromContext(err)
	}
	if err := cc.conn.SetWriteDeadline(perExchangeDeadline(ctx, c)); err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() {
		cc.conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	v := getVec()
	for _, req := range reqs {
		v.appendRequest(req)
	}
	err := writeVec(cc.conn, v)
	putVec(v)
	if c.Obs != nil {
		c.Obs.WriteOps.Inc()
		c.Obs.WriteBatch.Observe(int64(len(reqs)))
	}
	if err != nil {
		return nil, wireerr.Exchange(ctx, err)
	}
	resps := make([]*Response, 0, len(reqs))
	for _, req := range reqs {
		// Re-arming the read deadline would mask the AfterFunc poke of a
		// context that already ended; check first. (A poke racing in
		// between still fails the read within one request timeout.)
		if err := ctx.Err(); err != nil {
			return resps, wireerr.FromContext(err)
		}
		if err := cc.conn.SetReadDeadline(perExchangeDeadline(ctx, c)); err != nil {
			return resps, err
		}
		resp, err := ReadResponse(cc.br, req.Method == "HEAD")
		if err != nil {
			return resps, wireerr.Exchange(ctx, err)
		}
		resps = append(resps, resp)
	}
	return resps, nil
}

// perExchangeDeadline is the budget for one wire step started now: the
// flat RequestTimeout, cut short by the caller's context deadline.
func perExchangeDeadline(ctx context.Context, c *Client) time.Time {
	d := time.Now().Add(c.requestTimeout())
	if cd, ok := ctx.Deadline(); ok && cd.Before(d) {
		d = cd
	}
	return d
}
