package httpwire

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piggyback/internal/obs"
)

func listenLoopback(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// closeIdleConns kills every pooled idle connection behind the client's
// back, simulating a server-side timeout of the persistent connection.
func closeIdleConns(c *Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.pools {
		p.mu.Lock()
		for _, cc := range p.idle {
			cc.conn.Close()
		}
		p.mu.Unlock()
	}
}

// testWireMetrics returns a fresh metrics bundle for pool assertions.
func testWireMetrics() *obs.WireMetrics {
	return obs.NewWireMetrics(obs.NewRegistry(), "wire.test")
}

func TestPoolRetryCountsAndRecovers(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	c.Obs = testWireMetrics()
	defer c.Close()
	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/a")); err != nil {
		t.Fatal(err)
	}
	closeIdleConns(c)
	resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/b"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("retry on stale connection failed: %v", err)
	}
	if got := c.Obs.Retries.Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := c.Obs.Dials.Load(); got != 2 {
		t.Errorf("dials = %d, want 2 (original + replacement)", got)
	}
	if got := c.Obs.ConnsOpen.Load(); got != 1 {
		t.Errorf("conns_open = %d, want 1 after stale conn dropped", got)
	}
}

func TestPoolDropsConnectionOnClose(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	c.Obs = testWireMetrics()
	defer c.Close()
	req := NewRequest("GET", "/bye")
	req.Header.Set("Connection", "close")
	if _, err := c.DoContext(context.Background(), addr, req); err != nil {
		t.Fatal(err)
	}
	if got := c.Obs.ConnsOpen.Load(); got != 0 {
		t.Errorf("conns_open = %d after Connection: close, want 0", got)
	}
	if got := c.Obs.ConnsIdle.Load(); got != 0 {
		t.Errorf("conns_idle = %d after Connection: close, want 0", got)
	}
	// The next request must transparently redial.
	if resp, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/again")); err != nil || resp.Status != 200 {
		t.Fatalf("redial failed: %v", err)
	}
	if got := c.Obs.Dials.Load(); got != 2 {
		t.Errorf("dials = %d, want 2", got)
	}
}

func TestPoolBoundsConnsPerHost(t *testing.T) {
	var conns int32
	release := make(chan struct{})
	slow := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		<-release
		return echoHandler(ctx, req)
	})
	l := listenLoopback(t)
	counting := &countingListener{Listener: l, n: &conns}
	srv := &Server{Handler: slow}
	go srv.Serve(counting)
	t.Cleanup(func() { srv.Close() })

	c := NewClient()
	c.MaxConnsPerHost = 2
	c.Obs = testWireMetrics()
	defer c.Close()

	const inFlight = 6
	var wg sync.WaitGroup
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.DoContext(context.Background(), l.Addr().String(), NewRequest("GET", "/slow"))
			errs <- err
		}()
	}
	// Let the burst land: two requests get connections, the rest queue.
	deadline := time.Now().Add(2 * time.Second)
	for c.Obs.PoolWaits.Load() < inFlight-2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("pooled request failed: %v", err)
		}
	}
	if got := atomic.LoadInt32(&conns); got != 2 {
		t.Errorf("%d concurrent requests opened %d connections, want 2 (MaxConnsPerHost)", inFlight, got)
	}
	if got := c.Obs.PoolWaits.Load(); got < inFlight-2 {
		t.Errorf("pool_waits = %d, want >= %d", got, inFlight-2)
	}
	if got := c.Obs.ConnsOpen.Load(); got != 2 {
		t.Errorf("conns_open = %d, want 2", got)
	}
}

func TestPoolSpreadsConcurrentRequests(t *testing.T) {
	release := make(chan struct{})
	slow := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		<-release
		return echoHandler(ctx, req)
	})
	addr := startServer(t, slow)
	c := NewClient()
	c.Obs = testWireMetrics()
	defer c.Close()

	const inFlight = 4
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/r")); err != nil {
				t.Errorf("do: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Obs.ConnsOpen.Load() < inFlight && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := c.Obs.Dials.Load(); got != inFlight {
		t.Errorf("dials = %d, want %d (one connection per in-flight request)", got, inFlight)
	}
	if got := c.Obs.ConnsIdle.Load(); got != inFlight {
		t.Errorf("conns_idle = %d after completion, want %d", got, inFlight)
	}
}

func TestPoolReapsIdleConns(t *testing.T) {
	addr := startServer(t, HandlerFunc(echoHandler))
	c := NewClient()
	c.IdleConnTimeout = 20 * time.Millisecond
	c.Obs = testWireMetrics()
	defer c.Close()
	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/a")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	// The next acquisition reaps the expired idle conn and dials afresh.
	if _, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/b")); err != nil {
		t.Fatal(err)
	}
	if got := c.Obs.IdleClosed.Load(); got != 1 {
		t.Errorf("idle_closed = %d, want 1", got)
	}
	if got := c.Obs.Dials.Load(); got != 2 {
		t.Errorf("dials = %d, want 2 (idle conn was reaped)", got)
	}
	if got := c.Obs.ConnsOpen.Load(); got != 1 {
		t.Errorf("conns_open = %d, want 1", got)
	}
}

func TestPoolCloseUnblocksWaiters(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		<-release
		return echoHandler(ctx, req)
	})
	addr := startServer(t, slow)
	c := NewClient()
	c.MaxConnsPerHost = 1
	c.Obs = testWireMetrics()

	go c.DoContext(context.Background(), addr, NewRequest("GET", "/hog"))
	deadline := time.Now().Add(2 * time.Second)
	for c.Obs.ConnsOpen.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.DoContext(context.Background(), addr, NewRequest("GET", "/waiting"))
		waiterErr <- err
	}()
	for c.Obs.PoolWaits.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	select {
	case err := <-waiterErr:
		if err == nil {
			t.Error("waiter succeeded after Close, want error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock pool waiter")
	}
}
