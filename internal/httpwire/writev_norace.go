//go:build !race

package httpwire

// raceEnabled selects the writev fast path. See writev_race.go.
const raceEnabled = false
