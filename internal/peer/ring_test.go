package peer

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("www.load.test/dir%d/resource%d.html", i%37, i)
	}
	return out
}

func peersN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	return out
}

func countOwners(r *Ring, ks []string) map[string]int {
	out := make(map[string]int)
	for _, k := range ks {
		out[r.Owner(k)]++
	}
	return out
}

// Balance: with virtual nodes, every peer's share of 1k keys stays within
// ±20% of the even split, across several fleet sizes.
func TestRingBalance(t *testing.T) {
	ks := keys(1000)
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(peersN(n), 0)
		counts := countOwners(r, ks)
		even := float64(len(ks)) / float64(n)
		for _, p := range r.Peers() {
			got := float64(counts[p])
			if got < 0.8*even || got > 1.2*even {
				t.Errorf("n=%d peer %s owns %.0f keys, outside ±20%% of even %.1f",
					n, p, got, even)
			}
		}
	}
}

// Determinism: the ring is a pure function of the member set — order and
// duplicates don't matter, and every key has exactly one owner.
func TestRingDeterministic(t *testing.T) {
	ps := peersN(4)
	a := NewRing(ps, 64)
	b := NewRing([]string{ps[2], ps[0], ps[3], ps[1], ps[0]}, 64)
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across construction orders: %q vs %q",
				k, a.Owner(k), b.Owner(k))
		}
	}
	if a.Size() != 4 || !a.Contains(ps[0]) || a.Contains("nope") {
		t.Fatalf("membership: size=%d", a.Size())
	}
}

// Join: adding a peer moves keys only TO the new peer, and roughly 1/(N+1)
// of them (within 2× of ideal — consistent hashing's minimal-remapping
// property).
func TestRingJoinMinimalRemapping(t *testing.T) {
	ks := keys(1000)
	ps := peersN(5)
	before := NewRing(ps, 0)
	joined := "127.0.0.1:9990"
	after := NewRing(append(append([]string{}, ps...), joined), 0)

	moved := 0
	for _, k := range ks {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != joined {
			t.Fatalf("key %q moved %q -> %q, not to the joining peer", k, oldOwner, newOwner)
		}
	}
	ideal := float64(len(ks)) / float64(after.Size())
	if f := float64(moved); f == 0 || f > 2*ideal {
		t.Errorf("join moved %d keys; want (0, %.0f] (~1/N of %d)", moved, 2*ideal, len(ks))
	}
}

// Leave: removing a peer moves only the keys it owned; everyone else's
// keys keep their owner.
func TestRingLeaveMinimalRemapping(t *testing.T) {
	ks := keys(1000)
	ps := peersN(5)
	before := NewRing(ps, 0)
	departed := ps[2]
	after := NewRing(append(append([]string{}, ps[:2]...), ps[3:]...), 0)

	moved := 0
	for _, k := range ks {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if oldOwner != departed {
			t.Fatalf("key %q moved %q -> %q though its owner never left", k, oldOwner, newOwner)
		}
		if newOwner == departed {
			t.Fatalf("key %q assigned to the departed peer", k)
		}
	}
	ideal := float64(len(ks)) / float64(before.Size())
	if f := float64(moved); f == 0 || f > 2*ideal {
		t.Errorf("leave moved %d keys; want (0, %.0f] (~1/N of %d)", moved, 2*ideal, len(ks))
	}
}

// An empty ring owns nothing; a single-peer ring owns everything.
func TestRingDegenerate(t *testing.T) {
	if got := NewRing(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	one := NewRing([]string{"127.0.0.1:9000"}, 0)
	for _, k := range keys(50) {
		if one.Owner(k) != "127.0.0.1:9000" {
			t.Fatalf("single-peer ring misrouted %q", k)
		}
	}
}
