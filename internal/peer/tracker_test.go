package peer

import (
	"sort"
	"sync"
	"testing"
)

func TestTrackerWindow(t *testing.T) {
	tr := NewTracker(50)
	tr.Note("a", 100)
	tr.Note("b", 120)
	tr.Note("", 120) // ignored

	got := tr.Recent(130)
	sort.Strings(got)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Recent(130) = %v, want [a b]", got)
	}

	// a's last request was 55s ago: expired and pruned; b (40s) survives.
	got = tr.Recent(155)
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("Recent(155) = %v, want [b]", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after prune = %d, want 1", tr.Len())
	}

	// A new request renews the pruned entry.
	tr.Note("a", 160)
	got = tr.Recent(165)
	sort.Strings(got)
	if len(got) != 2 {
		t.Fatalf("Recent(165) = %v, want both", got)
	}
}

func TestTrackerDefaultWindow(t *testing.T) {
	if w := NewTracker(0).Window(); w != 60 {
		t.Fatalf("default window = %d, want 60", w)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(60)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := []string{"a", "b", "c", "d"}
			for i := 0; i < 200; i++ {
				tr.Note(ids[(g+i)%len(ids)], int64(100+i))
				tr.Recent(int64(100 + i))
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Recent(300)); got != 4 {
		t.Fatalf("Recent after hammer = %d peers, want 4", got)
	}
}
