// Package peer is the cooperative proxy mesh layer: a consistent-hash
// ring that partitions the URL key space across a fleet of proxies, and a
// tracker of which peers recently requested into this proxy's partition
// (the targets of piggyback re-propagation). The ring gives every key a
// single owner, so a fleet of N proxies fetches each resource from the
// origin once instead of N times — the paper's hierarchical-caching
// direction (§1) promoted to a real wire-level tier, in the spirit of the
// cooperative proxy-server and chained-transfer architectures it cites.
//
// The package holds only the partitioning and bookkeeping; the wire work
// (forwarding a miss to the owner, propagating piggyback volume state)
// lives in internal/proxy, which already owns the pooled httpwire client
// and circuit breaker the mesh reuses per peer.
package peer

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per peer when the caller passes
// zero. More virtual nodes smooth the partition (relative imbalance decays
// roughly with 1/√vnodes); 256 keeps a small fleet within ±20% of even.
const DefaultVNodes = 256

// fnv1a is the 32-bit FNV-1a hash — the same function internal/cache uses
// to pick shards, so one pass over the key costs no allocation.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// mix32 finalizes a hash with the murmur3 avalanche step. Raw FNV-1a over
// near-identical strings (peer addresses differing in one digit, vnode
// labels "#0".."#255") lands clustered on the circle, which skews arc
// lengths badly; the finalizer spreads those correlated values uniformly.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// ringHash positions a string on the hash circle.
func ringHash(s string) uint32 { return mix32(fnv1a(s)) }

// point is one virtual node: a position on the hash circle and the peer
// that owns the arc ending there.
type point struct {
	hash  uint32
	owner int // index into peers
}

// Ring is an immutable consistent-hash ring over a set of peer IDs
// (advertised host:port addresses). Each peer contributes vnodes virtual
// points; a key belongs to the first point clockwise from its hash.
// Immutability keeps lookups lock-free: membership changes build a new
// Ring, and consistent hashing guarantees only the departed/arrived peer's
// share of keys changes owner.
type Ring struct {
	peers  []string // sorted, deduplicated
	points []point  // sorted by (hash, owner) for deterministic ties
	vnodes int
}

// NewRing builds a ring over the given peer IDs. Duplicates are dropped
// and order is irrelevant: two rings over the same member set are
// identical regardless of construction order. vnodes <= 0 means
// DefaultVNodes. A ring over zero peers is valid; Owner returns "".
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]struct{}, len(peers))
	for _, p := range peers {
		if p == "" {
			continue
		}
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{
		peers:  uniq,
		points: make([]point, 0, len(uniq)*vnodes),
		vnodes: vnodes,
	}
	for i, p := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:  ringHash(p + "#" + strconv.Itoa(v)),
				owner: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].owner < r.points[b].owner
	})
	return r
}

// Owner returns the peer that owns key: the first virtual node clockwise
// from the key's hash (wrapping past the top of the circle). An empty ring
// owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.peers[r.points[i].owner]
}

// Peers returns the ring's members, sorted. The slice is shared; callers
// must not mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Size returns the number of peers on the ring.
func (r *Ring) Size() int { return len(r.peers) }

// VNodes returns the virtual-node count per peer.
func (r *Ring) VNodes() int { return r.vnodes }

// Contains reports whether id is a ring member.
func (r *Ring) Contains(id string) bool {
	i := sort.SearchStrings(r.peers, id)
	return i < len(r.peers) && r.peers[i] == id
}
