package peer

import "sync"

// Tracker records which peers recently requested into this proxy's
// partition. When the owner of a key receives fresh piggyback volume state
// from the origin, the peers the Tracker holds are the ones whose caches
// may hold (now possibly stale) copies served from here — they are the
// targets of re-propagation, so one owner's refresh freshens the fleet.
//
// Entries expire after window seconds of silence; Recent prunes lazily, so
// an idle tracker holds at most one stale entry per peer ever seen.
type Tracker struct {
	window int64 // seconds a requester stays interesting

	mu       sync.Mutex
	lastSeen map[string]int64 // peer id -> Unix time of last request
}

// NewTracker returns a tracker with the given interest window in seconds;
// window <= 0 means 60.
func NewTracker(window int64) *Tracker {
	if window <= 0 {
		window = 60
	}
	return &Tracker{window: window, lastSeen: make(map[string]int64)}
}

// Note records a request from peer id at Unix time now.
func (t *Tracker) Note(id string, now int64) {
	if id == "" {
		return
	}
	t.mu.Lock()
	t.lastSeen[id] = now
	t.mu.Unlock()
}

// Recent returns the peers seen within the window ending at now, pruning
// expired entries. The result order is unspecified.
func (t *Tracker) Recent(now int64) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.lastSeen))
	for id, at := range t.lastSeen {
		if now-at > t.window {
			delete(t.lastSeen, id)
			continue
		}
		out = append(out, id)
	}
	return out
}

// Len returns the number of tracked peers, including any not yet pruned.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lastSeen)
}

// Window returns the tracker's interest window in seconds.
func (t *Tracker) Window() int64 { return t.window }
