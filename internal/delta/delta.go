// Package delta implements block-level delta encoding for HTTP responses —
// the §4 enhancement the paper cites from Mogul et al. [23]: "Instead of
// simply removing stale resources from the cache, the proxy could
// construct an updated version by requesting that the server transmit the
// difference between the old and new versions... this should be very
// effective in reducing the amount of data transfer, since most changes
// are small, relative to the size of the resource."
//
// The encoding is deliberately simple: both sides split the resource into
// fixed-size blocks; the patch carries only the blocks that differ plus
// the new length. It is self-describing and line-framed so it can ride as
// an HTTP body.
package delta

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DefaultBlockSize is the block granularity used when callers pass 0.
const DefaultBlockSize = 512

// maxPatchBytes bounds decoded patches.
const maxPatchBytes = 64 << 20

// Patch is a block-level difference between two versions of a resource.
type Patch struct {
	// BlockSize is the block granularity.
	BlockSize int
	// NewLen is the total length of the new version.
	NewLen int
	// Blocks are the changed blocks, ascending by index. The final
	// block may be shorter than BlockSize.
	Blocks []Block
}

// Block is one changed block.
type Block struct {
	Index int
	Data  []byte
}

// ErrBadPatch reports a malformed or inapplicable patch.
var ErrBadPatch = errors.New("delta: bad patch")

// Make computes the patch that transforms old into new using the given
// block size (0 = DefaultBlockSize).
func Make(oldBody, newBody []byte, blockSize int) Patch {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	p := Patch{BlockSize: blockSize, NewLen: len(newBody)}
	nBlocks := (len(newBody) + blockSize - 1) / blockSize
	for i := 0; i < nBlocks; i++ {
		lo := i * blockSize
		hi := lo + blockSize
		if hi > len(newBody) {
			hi = len(newBody)
		}
		newBlock := newBody[lo:hi]
		// The corresponding old block (may be short or absent).
		var oldBlock []byte
		if lo < len(oldBody) {
			oh := hi
			if oh > len(oldBody) {
				oh = len(oldBody)
			}
			oldBlock = oldBody[lo:oh]
		}
		if !bytes.Equal(newBlock, oldBlock) {
			p.Blocks = append(p.Blocks, Block{Index: i, Data: newBlock})
		}
	}
	return p
}

// Apply reconstructs the new version from the old body and the patch.
func Apply(oldBody []byte, p Patch) ([]byte, error) {
	if p.BlockSize <= 0 || p.NewLen < 0 || p.NewLen > maxPatchBytes {
		return nil, fmt.Errorf("%w: block size %d, new length %d", ErrBadPatch, p.BlockSize, p.NewLen)
	}
	out := make([]byte, p.NewLen)
	// Start from the old content truncated/extended to the new length.
	copy(out, oldBody)
	for _, b := range p.Blocks {
		lo := b.Index * p.BlockSize
		if b.Index < 0 || lo >= p.NewLen && len(b.Data) > 0 {
			return nil, fmt.Errorf("%w: block %d beyond new length %d", ErrBadPatch, b.Index, p.NewLen)
		}
		if lo+len(b.Data) > p.NewLen {
			return nil, fmt.Errorf("%w: block %d overflows new length", ErrBadPatch, b.Index)
		}
		if len(b.Data) > p.BlockSize {
			return nil, fmt.Errorf("%w: block %d larger than block size", ErrBadPatch, b.Index)
		}
		copy(out[lo:], b.Data)
	}
	return out, nil
}

// WireSize returns the encoded patch size in bytes.
func (p Patch) WireSize() int {
	n := len(p.header())
	for _, b := range p.Blocks {
		n += len(blockHeader(b)) + len(b.Data) + 1
	}
	return n
}

func (p Patch) header() string {
	return fmt.Sprintf("blockdiff %d %d %d\n", p.BlockSize, p.NewLen, len(p.Blocks))
}

func blockHeader(b Block) string {
	return fmt.Sprintf("%d %d\n", b.Index, len(b.Data))
}

// Encode renders the patch as a self-describing byte stream:
//
//	blockdiff <blockSize> <newLen> <numBlocks>\n
//	<index> <len>\n<data>\n   (per changed block)
func (p Patch) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(p.header())
	for _, b := range p.Blocks {
		buf.WriteString(blockHeader(b))
		buf.Write(b.Data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Decode parses an encoded patch.
func Decode(data []byte) (Patch, error) {
	var p Patch
	br := bufio.NewReader(bytes.NewReader(data))
	header, err := br.ReadString('\n')
	if err != nil {
		return p, fmt.Errorf("%w: missing header", ErrBadPatch)
	}
	fields := strings.Fields(header)
	if len(fields) != 4 || fields[0] != "blockdiff" {
		return p, fmt.Errorf("%w: bad header %q", ErrBadPatch, header)
	}
	bs, err1 := strconv.Atoi(fields[1])
	nl, err2 := strconv.Atoi(fields[2])
	nb, err3 := strconv.Atoi(fields[3])
	if err1 != nil || err2 != nil || err3 != nil ||
		bs <= 0 || nl < 0 || nl > maxPatchBytes || nb < 0 || nb > nl/bs+1 {
		return p, fmt.Errorf("%w: bad header values %q", ErrBadPatch, header)
	}
	p.BlockSize = bs
	p.NewLen = nl
	for i := 0; i < nb; i++ {
		bh, err := br.ReadString('\n')
		if err != nil {
			return p, fmt.Errorf("%w: truncated block header", ErrBadPatch)
		}
		bf := strings.Fields(bh)
		if len(bf) != 2 {
			return p, fmt.Errorf("%w: bad block header %q", ErrBadPatch, bh)
		}
		idx, err1 := strconv.Atoi(bf[0])
		blen, err2 := strconv.Atoi(bf[1])
		if err1 != nil || err2 != nil || idx < 0 || blen < 0 || blen > bs {
			return p, fmt.Errorf("%w: bad block header values %q", ErrBadPatch, bh)
		}
		blockData := make([]byte, blen)
		if _, err := io.ReadFull(br, blockData); err != nil {
			return p, fmt.Errorf("%w: truncated block data", ErrBadPatch)
		}
		if nl, err := br.ReadByte(); err != nil || nl != '\n' {
			return p, fmt.Errorf("%w: missing block terminator", ErrBadPatch)
		}
		p.Blocks = append(p.Blocks, Block{Index: idx, Data: blockData})
	}
	return p, nil
}
