package delta

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic the patch decoder, and any
// patch that decodes must re-encode/decode to an equivalent patch.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("blockdiff 512 1024 1\n0 3\nabc\n"))
	f.Add([]byte("blockdiff 512 0 0\n"))
	f.Add([]byte("not a patch"))
	f.Add(Make(bytes.Repeat([]byte("x"), 2000), bytes.Repeat([]byte("y"), 1500), 256).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		p2, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if p2.NewLen != p.NewLen || len(p2.Blocks) != len(p.Blocks) {
			t.Fatalf("re-decode drifted: %+v vs %+v", p2, p)
		}
	})
}

// FuzzMakeApply: for any (old, new, blockSize), applying the made patch
// reconstructs new exactly.
func FuzzMakeApply(f *testing.F) {
	f.Add([]byte("old content"), []byte("new content"), 4)
	f.Add([]byte{}, []byte("grown from nothing"), 512)
	f.Add([]byte("shrink me away"), []byte{}, 3)
	f.Fuzz(func(t *testing.T, oldBody, newBody []byte, blockSize int) {
		if blockSize < 0 || blockSize > 1<<20 || len(newBody) > 1<<20 {
			return
		}
		p := Make(oldBody, newBody, blockSize)
		got, err := Apply(oldBody, p)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if !bytes.Equal(got, newBody) {
			t.Fatalf("reconstruction mismatch: %d vs %d bytes", len(got), len(newBody))
		}
	})
}
