package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeApplyIdentity(t *testing.T) {
	body := bytes.Repeat([]byte("same old content "), 100)
	p := Make(body, body, 64)
	if len(p.Blocks) != 0 {
		t.Fatalf("identical bodies produced %d changed blocks", len(p.Blocks))
	}
	got, err := Apply(body, p)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("identity apply: %v", err)
	}
}

func TestMakeApplySmallChange(t *testing.T) {
	old := bytes.Repeat([]byte("x"), 4096)
	new := append([]byte(nil), old...)
	new[1000] = 'Y' // one byte in one block
	p := Make(old, new, 512)
	if len(p.Blocks) != 1 || p.Blocks[0].Index != 1 {
		t.Fatalf("changed blocks = %+v", p.Blocks)
	}
	got, err := Apply(old, p)
	if err != nil || !bytes.Equal(got, new) {
		t.Fatalf("apply: %v", err)
	}
	// The delta should be far smaller than the body (§4: "most changes
	// are small, relative to the size of the resource").
	if p.WireSize() >= len(new)/2 {
		t.Errorf("patch %d B not smaller than body %d B", p.WireSize(), len(new))
	}
}

func TestMakeApplyGrowShrink(t *testing.T) {
	old := bytes.Repeat([]byte("a"), 1000)
	grown := append(append([]byte(nil), old...), bytes.Repeat([]byte("b"), 700)...)
	p := Make(old, grown, 256)
	got, err := Apply(old, p)
	if err != nil || !bytes.Equal(got, grown) {
		t.Fatalf("grow: %v", err)
	}
	shrunk := old[:300]
	p = Make(old, shrunk, 256)
	got, err = Apply(old, p)
	if err != nil || !bytes.Equal(got, shrunk) {
		t.Fatalf("shrink: %v (len %d)", err, len(got))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	old := bytes.Repeat([]byte("0123456789"), 300)
	new := append([]byte(nil), old...)
	new[5] = 'Z'
	new[2000] = 'Q'
	p := Make(old, new, 512)
	dec, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(old, dec)
	if err != nil || !bytes.Equal(got, new) {
		t.Fatalf("after roundtrip: %v", err)
	}
	if got := p.WireSize(); got != len(p.Encode()) {
		t.Errorf("WireSize = %d, encoded = %d", got, len(p.Encode()))
	}
}

func TestApplyMakeProperty(t *testing.T) {
	// For arbitrary old/new byte strings: Apply(old, Make(old, new)) == new,
	// including through the wire encoding.
	f := func(oldSeed, newSeed int64, oldLen, newLen uint16, bs uint8) bool {
		blockSize := int(bs)%1000 + 1
		old := randBytes(oldSeed, int(oldLen)%5000)
		new := randBytes(newSeed, int(newLen)%5000)
		p := Make(old, new, blockSize)
		dec, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		got, err := Apply(old, dec)
		return err == nil && bytes.Equal(got, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyMakePropertyCorrelated(t *testing.T) {
	// The realistic case: new is old with sparse point mutations.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		old := randBytes(int64(i), rng.Intn(8000)+100)
		new := append([]byte(nil), old...)
		for m := rng.Intn(5); m >= 0; m-- {
			new[rng.Intn(len(new))] ^= 0xFF
		}
		p := Make(old, new, 512)
		got, err := Apply(old, p)
		if err != nil || !bytes.Equal(got, new) {
			t.Fatalf("case %d: %v", i, err)
		}
		// Sparse mutations on a large body must yield a small patch:
		// at most (changedBlocks * blockSize) + per-block framing.
		if budget := len(p.Blocks)*(512+24) + 64; p.WireSize() > budget {
			t.Errorf("case %d: patch %d B exceeds budget %d B", i, p.WireSize(), budget)
		}
	}
}

func randBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("not a patch\n"),
		[]byte("blockdiff 0 100 1\n"),
		[]byte("blockdiff 512 -1 0\n"),
		[]byte("blockdiff 512 100 999\n"),
		[]byte("blockdiff 512 1024 1\n5\n"),
		[]byte("blockdiff 512 1024 1\n0 9999\n"),
		[]byte("blockdiff 512 1024 1\n0 4\nab"),
		[]byte("blockdiff 512 1024 1\n0 2\nabX"),
	}
	for _, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(%q) succeeded", b)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	old := make([]byte, 100)
	cases := []Patch{
		{BlockSize: 0, NewLen: 10},
		{BlockSize: 10, NewLen: -1},
		{BlockSize: 10, NewLen: 20, Blocks: []Block{{Index: 5, Data: []byte("xxxxx")}}},
		{BlockSize: 10, NewLen: 20, Blocks: []Block{{Index: 1, Data: make([]byte, 15)}}},
		{BlockSize: 10, NewLen: 20, Blocks: []Block{{Index: -1, Data: []byte("x")}}},
	}
	for i, p := range cases {
		if _, err := Apply(old, p); err == nil {
			t.Errorf("case %d succeeded", i)
		}
	}
}
