package tracegen

import (
	"fmt"
	"math"
	"math/rand"
)

// SiteConfig describes one synthetic Web site: its resource tree and the
// behaviour of the client population requesting it.
type SiteConfig struct {
	// Name labels the profile (e.g. "sun-like").
	Name string
	// Host, when non-empty, prefixes every URL with the host name —
	// used for client (proxy-side) logs. Server logs leave it empty.
	Host string
	// Seed fixes all randomness.
	Seed int64

	// Site structure.
	// Dirs is the number of first-level directories.
	Dirs int
	// MaxDepth is the maximum directory depth (>= 1).
	MaxDepth int
	// Pages is the number of HTML pages spread over the tree.
	Pages int
	// MeanImagesPerPage is the mean number of embedded images per page;
	// images live in the page's own directory.
	MeanImagesPerPage float64
	// SharedImageProb is the chance an embedded slot reuses an existing
	// image from the same directory (site-wide logos etc.) rather than
	// a page-private one.
	SharedImageProb float64
	// LinksPerPage is the mean outgoing HREF links per page.
	LinksPerPage float64
	// CrossDirLinkProb is the chance a link points outside the page's
	// first-level directory.
	CrossDirLinkProb float64

	// Client behaviour.
	// Clients is the number of distinct sources.
	Clients int
	// Requests is the target request count for the generated log.
	Requests int
	// Duration is the time the log spans, in seconds.
	Duration int64
	// StartTime is the Unix time of the first request; zero means
	// 1998-07-01 00:00:00 UTC, keeping generated logs in the paper's era.
	StartTime int64
	// ZipfPages is the popularity skew over entry pages.
	ZipfPages float64
	// ZipfClients is the activity skew over clients (App. A: often 10%
	// of clients produce half the requests).
	ZipfClients float64
	// FollowLinkProb is the chance a session follows a link to another
	// page rather than ending.
	FollowLinkProb float64
	// MeanThinkTime is the mean seconds between page views in a session.
	MeanThinkTime float64
	// MeanImageGap is the mean seconds between a page and each of its
	// embedded images.
	MeanImageGap float64
	// ImageFetchProb is the chance a client session fetches embedded
	// images at all (clients on slow links disable image loading, §2.2).
	ImageFetchProb float64

	// Sizes (bytes).
	HTMLMedian, HTMLMean   float64
	ImageMedian, ImageMean float64

	// MeanChangeInterval is the mean seconds between modifications of a
	// resource; zero disables modification. Individual resources get
	// intervals spread around the mean (some change often, most rarely).
	MeanChangeInterval int64

	// PostFraction is the fraction of requests using POST instead of
	// GET (the Marimba log is practically all POST, App. A).
	PostFraction float64

	// ClientCacheTTL models browser/proxy caching downstream of the
	// logged server: a repeat request for a URL the same source fetched
	// within this many seconds is suppressed (never reaches the server
	// log) with probability CacheSuppressProb. Real server logs show few
	// quick same-source repeats for exactly this reason (Table 1:
	// 6.5-23.7% of requests repeat within two hours). TTL zero means
	// 1800s; a negative TTL disables suppression.
	ClientCacheTTL int64
	// CacheSuppressProb defaults to 0.9 — sources are proxies fronting
	// many users, so some repeats still leak through.
	CacheSuppressProb float64

	// SessionReturnProb is the chance a source's next session starts
	// shortly after its previous one rather than at a uniform time —
	// proxies fronting active user populations revisit in bursts,
	// producing the repeat-access spacing of Table 1. Default 0.6.
	SessionReturnProb float64
	// ReturnGapMean is the mean seconds between such clustered
	// sessions. Default 2400.
	ReturnGapMean float64

	// DiurnalAmplitude, in [0,1), modulates session arrival density over
	// the day: density(t) = 1 + A*sin(2π·hour/24 - π/2), peaking mid-day
	// and bottoming out at night, as real 1998 logs do. Zero (default)
	// keeps arrivals uniform.
	DiurnalAmplitude float64
}

func (c *SiteConfig) fillDefaults() {
	if c.Dirs <= 0 {
		c.Dirs = 10
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 2
	}
	if c.Pages <= 0 {
		c.Pages = 100
	}
	if c.Clients <= 0 {
		c.Clients = 50
	}
	if c.Requests <= 0 {
		c.Requests = 10000
	}
	if c.Duration <= 0 {
		c.Duration = 7 * 24 * 3600
	}
	if c.StartTime == 0 {
		c.StartTime = 899251200 // 1998-07-01 00:00:00 UTC
	}
	if c.ZipfPages <= 0 {
		c.ZipfPages = 0.8
	}
	if c.ZipfClients <= 0 {
		c.ZipfClients = 0.9
	}
	if c.FollowLinkProb <= 0 {
		c.FollowLinkProb = 0.6
	}
	if c.MeanThinkTime <= 0 {
		c.MeanThinkTime = 30
	}
	if c.MeanImageGap <= 0 {
		c.MeanImageGap = 1.5
	}
	if c.ImageFetchProb <= 0 {
		c.ImageFetchProb = 0.9
	}
	if c.HTMLMedian <= 0 {
		c.HTMLMedian = 1530
	}
	if c.HTMLMean <= 0 {
		c.HTMLMean = 8000
	}
	if c.ImageMedian <= 0 {
		c.ImageMedian = 2000
	}
	if c.ImageMean <= 0 {
		c.ImageMean = 16000
	}
	if c.LinksPerPage <= 0 {
		c.LinksPerPage = 4
	}
	if c.CrossDirLinkProb <= 0 {
		c.CrossDirLinkProb = 0.15
	}
	if c.SharedImageProb <= 0 {
		c.SharedImageProb = 0.5
	}
	if c.ClientCacheTTL == 0 {
		c.ClientCacheTTL = 1800
	}
	if c.CacheSuppressProb <= 0 {
		c.CacheSuppressProb = 0.9
	}
	if c.SessionReturnProb <= 0 {
		c.SessionReturnProb = 0.6
	}
	if c.ReturnGapMean <= 0 {
		c.ReturnGapMean = 2400
	}
}

// Resource is one file at the synthetic site.
type Resource struct {
	URL  string
	Size int64
	// birth and changeInterval drive LastModifiedAt.
	birth          int64
	changeInterval int64
}

// LastModifiedAt returns the resource's Last-Modified time as of t: the
// most recent tick of its modification process at or before t.
func (r *Resource) LastModifiedAt(t int64) int64 {
	if r.changeInterval <= 0 || t <= r.birth {
		return r.birth
	}
	n := (t - r.birth) / r.changeInterval
	return r.birth + n*r.changeInterval
}

// ChangesBetween reports whether the resource is modified in (t1, t2].
func (r *Resource) ChangesBetween(t1, t2 int64) bool {
	return r.LastModifiedAt(t2) > r.LastModifiedAt(t1)
}

// Page is an HTML page with embedded images and outgoing links.
type Page struct {
	Res    *Resource
	Images []*Resource
	Links  []int // indices into Site.Pages
	dir    string
}

// Site is a generated resource tree.
type Site struct {
	Config    SiteConfig
	Pages     []*Page
	Resources map[string]*Resource
	dirs      []string
}

// BuildSite constructs the resource tree for cfg deterministically.
func BuildSite(cfg SiteConfig) *Site {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Site{Config: cfg, Resources: make(map[string]*Resource)}

	htmlSize := NewLogNormal(rng, cfg.HTMLMedian, cfg.HTMLMean)
	imgSize := NewLogNormal(rng, cfg.ImageMedian, cfg.ImageMean)

	// Directory tree: Dirs first-level directories, each with a chain of
	// subdirectories up to MaxDepth.
	for d := 0; d < cfg.Dirs; d++ {
		path := fmt.Sprintf("/section-%02d", d)
		s.dirs = append(s.dirs, path)
		depth := 1 + rng.Intn(cfg.MaxDepth)
		for k := 1; k < depth; k++ {
			path += fmt.Sprintf("/area-%d", k)
			s.dirs = append(s.dirs, path)
		}
	}

	birth := func() int64 {
		// Resources predate the log by up to ~a year.
		return cfg.StartTime - int64(rng.Intn(365*24*3600)) - 1
	}
	changeInterval := func() int64 {
		if cfg.MeanChangeInterval <= 0 {
			return 0
		}
		// Heavy-tailed: a few resources change frequently, most
		// rarely. Spread factors uniformly in log-space around 1.
		f := math.Exp(rng.Float64()*4 - 2) // ~0.14x .. ~7.4x
		iv := int64(float64(cfg.MeanChangeInterval) * f)
		if iv < 60 {
			iv = 60
		}
		return iv
	}

	// Pages are spread over directories with a bias toward shallow ones:
	// real sites keep most content near the root, so deep prefixes are
	// rare and repeat rarely (the level gradient of Fig 1).
	dirWeights := make([]float64, len(s.dirs))
	var wsum float64
	for i, d := range s.dirs {
		depth := 0
		for _, c := range d {
			if c == '/' {
				depth++
			}
		}
		w := 1.0
		for k := 1; k < depth; k++ {
			w /= 2
		}
		wsum += w
		dirWeights[i] = wsum
	}
	pickDir := func() string {
		u := rng.Float64() * wsum
		for i, w := range dirWeights {
			if u <= w {
				return s.dirs[i]
			}
		}
		return s.dirs[len(s.dirs)-1]
	}
	dirImages := make(map[string][]*Resource)
	for p := 0; p < cfg.Pages; p++ {
		dir := pickDir()
		url := fmt.Sprintf("%s/page-%04d-index.html", dir, p)
		res := &Resource{URL: cfg.Host + url, Size: htmlSize.Next(), birth: birth(), changeInterval: changeInterval()}
		s.Resources[res.URL] = res
		page := &Page{Res: res, dir: dir}

		// Deep content is file-like: embedded images thin out with
		// directory depth (depth-1 pages carry the configured mean).
		imgMean := cfg.MeanImagesPerPage
		for k := 1; k < pathDepthOf(dir); k++ {
			imgMean /= 2.5
		}
		nImg := poissonish(rng, imgMean)
		for i := 0; i < nImg; i++ {
			pool := dirImages[dir]
			if len(pool) > 0 && rng.Float64() < cfg.SharedImageProb {
				page.Images = append(page.Images, pool[rng.Intn(len(pool))])
				continue
			}
			iu := fmt.Sprintf("%s/inline-img-%04d-%d.gif", dir, p, i)
			ir := &Resource{URL: cfg.Host + iu, Size: imgSize.Next(), birth: birth(), changeInterval: changeInterval()}
			s.Resources[ir.URL] = ir
			dirImages[dir] = append(dirImages[dir], ir)
			page.Images = append(page.Images, ir)
		}
		s.Pages = append(s.Pages, page)
	}

	// Links: mostly within the same first-level directory.
	byTopDir := make(map[string][]int)
	topOf := func(dir string) string {
		// dir is like /d03 or /d03/s1/s2; top is /d03.
		for i := 1; i < len(dir); i++ {
			if dir[i] == '/' {
				return dir[:i]
			}
		}
		return dir
	}
	for i, p := range s.Pages {
		byTopDir[topOf(p.dir)] = append(byTopDir[topOf(p.dir)], i)
	}
	// Link targets are popularity-biased (hub pages attract links): page
	// index p was already assigned Zipf rank order by the entry-page
	// sampler, so Zipf-sample link targets over the same index space.
	globalLink := NewZipf(rng, 1.0, len(s.Pages))
	localLink := make(map[string]*Zipf)
	for _, p := range s.Pages {
		n := poissonish(rng, cfg.LinksPerPage)
		for l := 0; l < n; l++ {
			var target int
			top := topOf(p.dir)
			if rng.Float64() < cfg.CrossDirLinkProb || len(byTopDir[top]) < 2 {
				target = globalLink.Next()
			} else {
				local := byTopDir[top]
				z, ok := localLink[top]
				if !ok {
					z = NewZipf(rng, 1.0, len(local))
					localLink[top] = z
				}
				target = local[z.Next()]
			}
			p.Links = append(p.Links, target)
		}
	}
	return s
}

// pathDepthOf counts the directory levels of a dir path like "/d03/s1".
func pathDepthOf(dir string) int {
	n := 0
	for _, c := range dir {
		if c == '/' {
			n++
		}
	}
	return n
}

// poissonish returns a small nonnegative count with the given mean — a
// geometric-ish approximation that avoids a full Poisson sampler.
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := 0
	for rng.Float64() < mean/(mean+1) {
		n++
		if n > 50 {
			break
		}
	}
	return n
}
