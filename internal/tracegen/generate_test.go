package tracegen

import (
	"math"
	"math/rand"
	"testing"

	"piggyback/internal/trace"
)

func smallConfig() SiteConfig {
	return SiteConfig{
		Name:              "test",
		Seed:              42,
		Pages:             60,
		Dirs:              6,
		MaxDepth:          2,
		MeanImagesPerPage: 2,
		Clients:           20,
		Requests:          5000,
		Duration:          days(2),
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 0.8, 1000)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[100] || counts[100] <= counts[900] {
		t.Errorf("Zipf not skewed: c0=%d c100=%d c900=%d", counts[0], counts[100], counts[900])
	}
	// Rank 0 should get roughly 1/H share where H = sum 1/i^0.8.
	if counts[0] < n/100 {
		t.Errorf("top rank too rare: %d", counts[0])
	}
}

func TestZipfSupportsSBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 0.5, 10)
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v < 0 || v >= 10 {
			t.Fatalf("sample out of range: %d", v)
		}
	}
	if NewZipf(rng, 0.7, 0).N() != 1 {
		t.Error("n<1 should clamp to 1")
	}
}

func TestLogNormalMedianAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ln := NewLogNormal(rng, 1530, 13900)
	const n = 200000
	samples := make([]int64, n)
	var sum float64
	for i := range samples {
		samples[i] = ln.Next()
		sum += float64(samples[i])
	}
	mean := sum / n
	if mean < 9000 || mean > 20000 {
		t.Errorf("mean = %v, want ~13900", mean)
	}
	// Median check: count below target median.
	below := 0
	for _, s := range samples {
		if s < 1530 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("median off: %.3f of samples below 1530", frac)
	}
}

func TestBuildSiteDeterministic(t *testing.T) {
	a := BuildSite(smallConfig())
	b := BuildSite(smallConfig())
	if len(a.Resources) != len(b.Resources) || len(a.Pages) != len(b.Pages) {
		t.Fatal("site generation not deterministic in structure")
	}
	for url, ra := range a.Resources {
		rb, ok := b.Resources[url]
		if !ok || ra.Size != rb.Size || ra.birth != rb.birth {
			t.Fatalf("resource %s differs between builds", url)
		}
	}
}

func TestBuildSiteStructure(t *testing.T) {
	s := BuildSite(smallConfig())
	if len(s.Pages) != 60 {
		t.Fatalf("pages = %d", len(s.Pages))
	}
	for _, p := range s.Pages {
		// Images live in the page's directory.
		pd := trace.DirPrefix(p.Res.URL, 10)
		for _, img := range p.Images {
			if trace.DirPrefix(img.URL, 10) != pd {
				t.Errorf("image %s outside page dir %s", img.URL, pd)
			}
		}
		for _, l := range p.Links {
			if l < 0 || l >= len(s.Pages) {
				t.Fatalf("link index out of range: %d", l)
			}
		}
	}
}

func TestGenerateServerLogBasics(t *testing.T) {
	log, site := GenerateServerLog(smallConfig())
	if len(log) != 5000 {
		t.Fatalf("len = %d, want 5000", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].Time < log[i-1].Time {
			t.Fatal("log not sorted by time")
		}
	}
	for i := range log {
		r := &log[i]
		if _, ok := site.Resources[r.URL]; !ok {
			t.Fatalf("unknown resource %s", r.URL)
		}
		if r.Status == 200 && r.Size <= 0 {
			t.Fatalf("200 with no size: %+v", r)
		}
		if r.Status == 304 && r.Size != 0 {
			t.Fatalf("304 with size: %+v", r)
		}
		if r.LastModified > r.Time {
			t.Fatalf("Last-Modified in the future: %+v", r)
		}
	}
	if log.Clients() < 2 {
		t.Error("too few clients")
	}
}

func TestGenerateServerLogDeterministic(t *testing.T) {
	a, _ := GenerateServerLog(smallConfig())
	b, _ := GenerateServerLog(smallConfig())
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGeneratedLogHasEmbeddedLocality(t *testing.T) {
	// Embedded images mostly follow a page by the same client within
	// seconds — the structure behind Fig 1. (Not always: downstream
	// cache suppression can drop the page while an image leaks through.)
	log, _ := GenerateServerLog(smallConfig())
	lastPage := make(map[string]trace.Record)
	checked, close := 0, 0
	for i := range log {
		r := log[i]
		if !r.Embedded {
			if trace.ContentType(r.URL) == "text/html" {
				lastPage[r.Client] = r
			}
			continue
		}
		p, ok := lastPage[r.Client]
		if !ok {
			continue
		}
		checked++
		if r.Time-p.Time <= 120 {
			close++
		}
	}
	if checked < 100 {
		t.Fatalf("too few embedded requests to check: %d", checked)
	}
	if frac := float64(close) / float64(checked); frac < 0.6 {
		t.Errorf("only %.2f of embedded images within 120s of a page", frac)
	}
}

func TestGeneratedLogZipfShare(t *testing.T) {
	// App. A: ~85% of requests go to <10% of unique resources. Synthetic
	// logs should show strong concentration (>= 50% to top 10%).
	cfg := ProfileAIUSA(0.2)
	log, _ := GenerateServerLog(cfg)
	share := log.TopResourceShare(0.10)
	if share < 0.6 {
		t.Errorf("top-10%% share = %.2f, want >= 0.6 (paper: ~0.85)", share)
	}
}

func TestProfilesShape(t *testing.T) {
	for _, cfg := range ServerProfiles(0.05) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			log, site := GenerateServerLog(cfg)
			if len(log) == 0 {
				t.Fatal("empty log")
			}
			perSource := float64(len(log)) / float64(log.Clients())
			if perSource < 1 {
				t.Errorf("requests per source = %v", perSource)
			}
			if len(site.Resources) == 0 {
				t.Fatal("no resources")
			}
		})
	}
}

func TestProfileResourceCounts(t *testing.T) {
	// Resource totals should approximate Table 3 (within 2x).
	cases := []struct {
		cfg  SiteConfig
		want int
	}{
		{ProfileAIUSA(0.05), 1102},
		{ProfileApache(0.05), 788},
		{ProfileMarimba(0.05), 94},
	}
	for _, c := range cases {
		site := BuildSite(c.cfg)
		n := len(site.Resources)
		if n < c.want/2 || n > c.want*2 {
			t.Errorf("%s: %d resources, want ~%d", c.cfg.Name, n, c.want)
		}
	}
}

func TestMarimbaIsPostDominated(t *testing.T) {
	log, _ := GenerateServerLog(ProfileMarimba(0.05))
	posts := 0
	for i := range log {
		if log[i].Method == "POST" {
			posts++
		}
	}
	if frac := float64(posts) / float64(len(log)); frac < 0.9 {
		t.Errorf("POST fraction = %.2f, want >= 0.9", frac)
	}
}

func TestGenerateClientLog(t *testing.T) {
	cfg := ClientLogConfig{Name: "t", Seed: 9, Servers: 20, Clients: 30, Requests: 8000, Duration: days(3)}
	log, sites := GenerateClientLog(cfg)
	if len(log) != 8000 {
		t.Fatalf("len = %d", len(log))
	}
	if len(sites) != 20 {
		t.Fatalf("sites = %d", len(sites))
	}
	if got := log.Servers(); got < 10 || got > 20 {
		t.Errorf("distinct servers in log = %d", got)
	}
	for i := range log {
		if log[i].URL[0] == '/' {
			t.Fatalf("client log URL not host-qualified: %s", log[i].URL)
		}
	}
	// Zipf across servers: top server way above median.
	perServer := map[string]int{}
	for i := range log {
		perServer[trace.DirPrefix(log[i].URL, 0)]++
	}
	max := 0
	for _, c := range perServer {
		if c > max {
			max = c
		}
	}
	if max < len(log)/10 {
		t.Errorf("no hot server: max share %d/%d", max, len(log))
	}
}

func TestResourceModificationProcess(t *testing.T) {
	r := &Resource{URL: "/x", Size: 1, birth: 1000, changeInterval: 100}
	if lm := r.LastModifiedAt(999); lm != 1000 {
		t.Errorf("before birth: %d", lm)
	}
	if lm := r.LastModifiedAt(1050); lm != 1000 {
		t.Errorf("mid-interval: %d", lm)
	}
	if lm := r.LastModifiedAt(1250); lm != 1200 {
		t.Errorf("after two ticks: %d", lm)
	}
	if !r.ChangesBetween(1050, 1150) {
		t.Error("change at 1100 missed")
	}
	if r.ChangesBetween(1110, 1190) {
		t.Error("phantom change")
	}
	static := &Resource{URL: "/s", birth: 500}
	if static.LastModifiedAt(1e9) != 500 || static.ChangesBetween(0, 1e9) {
		t.Error("static resource must never change")
	}
}

func TestResourceTableSorted(t *testing.T) {
	s := BuildSite(smallConfig())
	tab := s.ResourceTable()
	if len(tab) != len(s.Resources) {
		t.Fatal("table size mismatch")
	}
	for i := 1; i < len(tab); i++ {
		if tab[i-1].URL >= tab[i].URL {
			t.Fatal("table not sorted")
		}
	}
}

func TestDiurnalArrivals(t *testing.T) {
	cfg := smallConfig()
	cfg.Requests = 20000
	cfg.Duration = days(4)
	cfg.DiurnalAmplitude = 0.9
	log, _ := GenerateServerLog(cfg)

	day, night := 0, 0
	for i := range log {
		hour := (log[i].Time % 86400) / 3600
		switch {
		case hour >= 10 && hour < 16: // around the sine peak
			day++
		case hour >= 22 || hour < 4: // around the trough
			night++
		}
	}
	if day <= night*2 {
		t.Errorf("no diurnal shape: day=%d night=%d", day, night)
	}

	// Amplitude 0 keeps the distribution roughly flat.
	cfg.DiurnalAmplitude = 0
	cfg.Seed++ // avoid any caching illusions
	flat, _ := GenerateServerLog(cfg)
	day, night = 0, 0
	for i := range flat {
		hour := (flat[i].Time % 86400) / 3600
		switch {
		case hour >= 10 && hour < 16:
			day++
		case hour >= 22 || hour < 4:
			night++
		}
	}
	if day > night*2 {
		t.Errorf("uniform arrivals look diurnal: day=%d night=%d", day, night)
	}
}
