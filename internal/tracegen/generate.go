package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"piggyback/internal/trace"
)

// GenerateServerLog produces a synthetic server access log for cfg: client
// sessions arrive over the log duration, each browsing the site page by
// page, fetching embedded images seconds after each page — the reference
// locality that directory volumes (Fig 1) and probability volumes (§3.3)
// exploit. The log is returned sorted by time along with the site, whose
// resources carry the authoritative sizes and modification processes.
func GenerateServerLog(cfg SiteConfig) (trace.Log, *Site) {
	site := BuildSite(cfg)
	cfg = site.Config // defaults filled
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	pageZipf := NewZipf(rng, cfg.ZipfPages, len(site.Pages))
	clientZipf := NewZipf(rng, cfg.ZipfClients, cfg.Clients)
	caches := make(map[string]map[string]int64)
	lastEnd := make(map[string]int64)

	log := make(trace.Log, 0, cfg.Requests+cfg.Requests/8)
	for len(log) < cfg.Requests {
		client := fmt.Sprintf("c%05d", clientZipf.Next())
		// Sources are proxies fronting user populations: activity
		// clusters, so a fair share of sessions start within a couple
		// of hours of the source's previous one — producing the
		// repeat-access spacing of Table 1.
		var start int64
		if prev, ok := lastEnd[client]; ok && rng.Float64() < cfg.SessionReturnProb {
			start = prev + int64(expDuration(rng, cfg.ReturnGapMean, 60))
			if start >= cfg.StartTime+cfg.Duration {
				start = diurnalStart(rng, &cfg)
			}
		} else {
			start = diurnalStart(rng, &cfg)
		}
		log = appendSession(log, site, rng, client, start, pageZipf, clientCache(caches, client))
		if len(log) > 0 {
			lastEnd[client] = log[len(log)-1].Time
		}
	}
	if len(log) > cfg.Requests {
		log = log[:cfg.Requests]
	}
	log.SortByTime()
	return log, site
}

// diurnalStart draws a session start time, modulated by the configured
// diurnal cycle via rejection sampling (uniform when amplitude is 0).
func diurnalStart(rng *rand.Rand, cfg *SiteConfig) int64 {
	for {
		t := cfg.StartTime + int64(rng.Int63n(cfg.Duration))
		if cfg.DiurnalAmplitude <= 0 {
			return t
		}
		hour := float64(t%86400) / 3600
		density := 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*hour/24-math.Pi/2)
		if rng.Float64()*(1+cfg.DiurnalAmplitude) < density {
			return t
		}
	}
}

func clientCache(caches map[string]map[string]int64, client string) map[string]int64 {
	c, ok := caches[client]
	if !ok {
		c = make(map[string]int64)
		caches[client] = c
	}
	return c
}

// appendSession simulates one browsing session. cache holds the client's
// last fetch time per URL, modeling the downstream browser/proxy cache that
// keeps most quick repeats out of real server logs.
func appendSession(log trace.Log, site *Site, rng *rand.Rand, client string, start int64, pageZipf *Zipf, cache map[string]int64) trace.Log {
	cfg := &site.Config
	now := float64(start)
	pageIdx := pageZipf.Next()
	fetchImages := rng.Float64() < cfg.ImageFetchProb

	emit := func(t int64, res *Resource, embedded bool) {
		if cfg.ClientCacheTTL > 0 {
			if last, ok := cache[res.URL]; ok {
				gap := t - last
				if gap < 0 {
					gap = -gap // sessions are generated out of order
				}
				if gap < cfg.ClientCacheTTL && rng.Float64() < cfg.CacheSuppressProb {
					return // served from the client's own cache
				}
			}
		}
		cache[res.URL] = t
		log = append(log, requestRecord(site, rng, client, t, res, embedded))
	}

	for {
		page := site.Pages[pageIdx]
		emit(int64(now), page.Res, false)
		if fetchImages {
			t := now
			for _, img := range page.Images {
				t += expDuration(rng, cfg.MeanImageGap, 0.1)
				emit(int64(t), img, true)
			}
			if t > now {
				now = t
			}
		}
		if len(page.Links) == 0 || rng.Float64() >= cfg.FollowLinkProb {
			return log
		}
		pageIdx = page.Links[rng.Intn(len(page.Links))]
		now += expDuration(rng, cfg.MeanThinkTime, 1)
	}
}

// requestRecord renders one request for res at time t. A share of requests
// to unmodified resources arrive with If-Modified-Since and yield 304s with
// zero size, matching the 15-25% Not-Modified share the paper reports.
func requestRecord(site *Site, rng *rand.Rand, client string, t int64, res *Resource, embedded bool) trace.Record {
	cfg := &site.Config
	method := "GET"
	if cfg.PostFraction > 0 && rng.Float64() < cfg.PostFraction {
		method = "POST"
	}
	rec := trace.Record{
		Time:         t,
		Client:       client,
		Method:       method,
		URL:          res.URL,
		Status:       200,
		Size:         res.Size,
		LastModified: res.LastModifiedAt(t),
		Embedded:     embedded,
	}
	// ~18% of GETs validate a cached copy and see 304 Not Modified
	// (App. A: 15.8% and 18.7% for the Digital and AT&T logs).
	if method == "GET" && rng.Float64() < 0.18 {
		rec.Status = 304
		rec.Size = 0
	}
	return rec
}

// ClientLogConfig describes a proxy-side client log spanning many servers
// (the Digital and AT&T logs of Table 2).
type ClientLogConfig struct {
	Name string
	Seed int64
	// Servers is the number of distinct sites.
	Servers int
	// Clients is the proxy's client population.
	Clients int
	// Requests is the target total request count.
	Requests int
	// Duration is the covered time span in seconds.
	Duration int64
	// ZipfServers skews traffic across servers (App. A: the top 1% of
	// servers draw over half the requests).
	ZipfServers float64
	// PagesPerServer is the mean pages per site; individual sites vary
	// around it.
	PagesPerServer int
	// StartTime as in SiteConfig.
	StartTime int64
}

func (c *ClientLogConfig) fillDefaults() {
	if c.Servers <= 0 {
		c.Servers = 100
	}
	if c.Clients <= 0 {
		c.Clients = 200
	}
	if c.Requests <= 0 {
		c.Requests = 50000
	}
	if c.Duration <= 0 {
		c.Duration = 7 * 24 * 3600
	}
	if c.ZipfServers <= 0 {
		c.ZipfServers = 1.1
	}
	if c.PagesPerServer <= 0 {
		c.PagesPerServer = 40
	}
	if c.StartTime == 0 {
		c.StartTime = 899251200
	}
}

// GenerateClientLog produces a proxy-side client log: sessions pick a
// server by Zipf popularity, browse it for a while, and sometimes hop to
// another server within the same session — yielding the multi-level
// directory locality of Fig 1.
func GenerateClientLog(cfg ClientLogConfig) (trace.Log, map[string]*Site) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	sites := make(map[string]*Site, cfg.Servers)
	hostPages := make([]*Zipf, cfg.Servers)
	hosts := make([]string, cfg.Servers)
	hostRngs := make([]*rand.Rand, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		host := fmt.Sprintf("www.server-%04d.example.com", i)
		hosts[i] = host
		pages := cfg.PagesPerServer/2 + rng.Intn(cfg.PagesPerServer+1)
		sc := SiteConfig{
			Name:              host,
			Host:              host,
			Seed:              cfg.Seed + int64(i)*977,
			Pages:             pages,
			Dirs:              3 + pages/20,
			MaxDepth:          4,
			MeanImagesPerPage: 2.5,
			Clients:           cfg.Clients,
			StartTime:         cfg.StartTime,
			Duration:          cfg.Duration,
			FollowLinkProb:    0.75,
			MeanThinkTime:     25,
		}
		site := BuildSite(sc)
		sites[host] = site
		hostRngs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*131 + 7))
		hostPages[i] = NewZipf(hostRngs[i], 0.8, len(site.Pages))
	}
	serverZipf := NewZipf(rng, cfg.ZipfServers, cfg.Servers)
	clientZipf := NewZipf(rng, 0.9, cfg.Clients)
	caches := make(map[string]map[string]int64)

	log := make(trace.Log, 0, cfg.Requests+cfg.Requests/8)
	for len(log) < cfg.Requests {
		client := fmt.Sprintf("c%05d", clientZipf.Next())
		start := cfg.StartTime + int64(rng.Int63n(cfg.Duration))
		// A session may visit a few servers in sequence.
		now := start
		for hop := 0; hop == 0 || (hop < 4 && rng.Float64() < 0.3); hop++ {
			si := serverZipf.Next()
			site := sites[hosts[si]]
			log = appendSession(log, site, hostRngs[si], client, now, hostPages[si], clientCache(caches, client))
			if len(log) > 0 {
				now = log[len(log)-1].Time + int64(expDuration(rng, 45, 2))
			}
		}
	}
	if len(log) > cfg.Requests {
		log = log[:cfg.Requests]
	}
	log.SortByTime()
	return log, sites
}

// ResourceTable returns the site's resources sorted by URL — handy for
// loading an origin server's store.
func (s *Site) ResourceTable() []*Resource {
	out := make([]*Resource, 0, len(s.Resources))
	for _, r := range s.Resources {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
