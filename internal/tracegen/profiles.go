package tracegen

// Profiles approximating the shape of the paper's logs (Appendix A,
// Tables 2 and 3), with request and client counts scaled down so each
// experiment runs in seconds. Resource counts and requests-per-source
// ratios follow the originals; all reported metrics are ratios, so the
// scale-down preserves curve shapes. scale multiplies the request volume
// (clients scale with it to hold requests-per-source).

// days converts days to seconds.
func days(d int64) int64 { return d * 24 * 3600 }

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// ProfileAIUSA approximates the Amnesty International USA log: 28 days,
// 1,102 resources, 23.64 requests per source. Original: 180,324 requests
// from 7,627 clients; here 60k·scale requests.
func ProfileAIUSA(scale float64) SiteConfig {
	req := scaled(60000, scale)
	return SiteConfig{
		Name:               "aiusa-like",
		Seed:               1001,
		Pages:              490, // ≈1,100 resources with shared images
		Dirs:               25,
		MaxDepth:           3,
		MeanImagesPerPage:  2.5,
		SharedImageProb:    0.5,
		ZipfPages:          1.2,
		Clients:            scaled(req, 1.0/23.64),
		Requests:           req,
		Duration:           days(28),
		MeanChangeInterval: days(3),
	}
}

// ProfileApache approximates the Apache Group log: 49 days, 788 resources,
// 10.73 requests per source. Original: 2.92M requests from 271,687
// clients; here 150k·scale requests.
func ProfileApache(scale float64) SiteConfig {
	req := scaled(150000, scale)
	return SiteConfig{
		Name:               "apache-like",
		Seed:               2002,
		Pages:              350,
		Dirs:               15,
		MaxDepth:           3,
		MeanImagesPerPage:  2.5,
		SharedImageProb:    0.5,
		ZipfPages:          1.2,
		Clients:            scaled(req, 1.0/10.73),
		Requests:           req,
		Duration:           days(49),
		MeanChangeInterval: days(7),
	}
}

// ProfileSun approximates the Sun Microsystems log: 9 days, 29,436
// resources, 59.66 requests per source — the largest and most popular
// site, where thinning matters most. Original: 13.04M requests from
// 218,518 clients; here 300k·scale requests.
func ProfileSun(scale float64) SiteConfig {
	req := scaled(300000, scale)
	return SiteConfig{
		Name:               "sun-like",
		Seed:               3003,
		Pages:              13000, // ≈29k resources with shared images
		Dirs:               80,
		MaxDepth:           4,
		MeanImagesPerPage:  2.5,
		SharedImageProb:    0.5,
		ZipfPages:          1.2,
		Clients:            scaled(req, 1.0/59.66),
		Requests:           req,
		Duration:           days(9),
		MeanChangeInterval: days(2),
		// The Sun site's sources repeat far more than the others
		// (Table 1: 23.7% of requests re-request within two hours):
		// sessions cluster tightly and downstream caches leak more.
		SessionReturnProb: 0.85,
		ReturnGapMean:     1500,
		CacheSuppressProb: 0.72,
	}
}

// ProfileMarimba approximates the Marimba log: 21 days, 94 resources,
// practically all POST requests transmitting data to the server — the
// profile on which piggyback prediction fails (App. A: "very low
// prediction probabilities"). Original: 222,393 requests from 24,103
// clients; here 40k·scale requests.
func ProfileMarimba(scale float64) SiteConfig {
	req := scaled(40000, scale)
	return SiteConfig{
		Name:              "marimba-like",
		Seed:              4004,
		Pages:             94,
		Dirs:              4,
		MaxDepth:          1,
		MeanImagesPerPage: 0, // data service, no embedded structure
		ZipfPages:         1.2,
		LinksPerPage:      0.2,
		FollowLinkProb:    0.1,
		Clients:           scaled(req, 1.0/9.23),
		Requests:          req,
		Duration:          days(21),
		PostFraction:      0.97,
	}
}

// ServerProfiles returns the four server-log profiles in paper order.
func ServerProfiles(scale float64) []SiteConfig {
	return []SiteConfig{
		ProfileAIUSA(scale),
		ProfileMarimba(scale),
		ProfileApache(scale),
		ProfileSun(scale),
	}
}

// ProfileATT approximates the AT&T client log: 18 days, 18,005 servers,
// 521,330 resources. Original 1.11M requests; here 60k·scale requests
// over 400·scale servers.
func ProfileATT(scale float64) ClientLogConfig {
	return ClientLogConfig{
		Name:           "att-like",
		Seed:           5005,
		Servers:        scaled(400, scale),
		Clients:        scaled(300, scale),
		Requests:       scaled(60000, scale),
		Duration:       days(18),
		ZipfServers:    1.1,
		PagesPerServer: 40,
	}
}

// ProfileDigital approximates the Digital client log: 7 days, 57,832
// servers, 2.08M resources. Original 6.41M requests; here 120k·scale
// requests over 800·scale servers.
func ProfileDigital(scale float64) ClientLogConfig {
	return ClientLogConfig{
		Name:           "digital-like",
		Seed:           6006,
		Servers:        scaled(800, scale),
		Clients:        scaled(600, scale),
		Requests:       scaled(120000, scale),
		Duration:       days(7),
		ZipfServers:    1.1,
		PagesPerServer: 40,
	}
}
