// Package tracegen generates synthetic Web workloads that stand in for the
// proprietary 1997-98 logs the paper evaluates (Digital and AT&T client
// logs; AIUSA, Apache, Marimba, and Sun server logs — Appendix A).
//
// The generator reproduces the structural properties the paper's results
// depend on: a directory-tree site model with embedded images and mostly
// intra-directory links, Zipf resource and client popularity, session-based
// reference locality (images fetched within seconds of their page, think
// times between pages), heavy-tailed response sizes, and per-resource
// modification processes. Every generator is deterministic given its seed.
package tracegen

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples from a generalized Zipf distribution over {0, ..., n-1}
// where P(i) is proportional to 1/(i+1)^s. Unlike math/rand's Zipf it
// supports any s > 0 (Web popularity skews are typically 0.6-0.9).
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf returns a Zipf sampler over n items with skew s, drawing
// randomness from rng.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next sample: rank 0 is the most popular item.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.cdf) }

// LogNormal samples sizes with the given median and mean (mean > median),
// matching the paper's response-size statistics (§2.3: mean 13900 bytes,
// median 1530 bytes).
type LogNormal struct {
	mu, sigma float64
	rng       *rand.Rand
}

// NewLogNormal derives lognormal parameters from a target median and mean.
func NewLogNormal(rng *rand.Rand, median, mean float64) *LogNormal {
	if median <= 0 {
		median = 1
	}
	if mean <= median {
		mean = median * 1.5
	}
	mu := math.Log(median)
	sigma := math.Sqrt(2 * math.Log(mean/median))
	return &LogNormal{mu: mu, sigma: sigma, rng: rng}
}

// Next returns a sample, at least 1.
func (ln *LogNormal) Next() int64 {
	v := math.Exp(ln.mu + ln.sigma*ln.rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	if v > 1<<30 {
		v = 1 << 30
	}
	return int64(v)
}

// expDuration draws an exponential duration with the given mean seconds,
// at least min.
func expDuration(rng *rand.Rand, mean, min float64) float64 {
	d := rng.ExpFloat64() * mean
	if d < min {
		d = min
	}
	return d
}
