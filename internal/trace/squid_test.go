package trace

import (
	"testing"
	"testing/quick"
)

const squidLine = "899637753.123 87 10.1.2.3 TCP_MISS/200 4316 GET http://www.foo.com/a/x.html - DIRECT/10.9.8.7 text/html"

func TestParseSquid(t *testing.T) {
	r, err := ParseSquid(squidLine)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time != 899637753 {
		t.Errorf("Time = %d", r.Time)
	}
	if r.Client != "10.1.2.3" || r.Method != "GET" {
		t.Errorf("client/method = %q %q", r.Client, r.Method)
	}
	if r.URL != "www.foo.com/a/x.html" {
		t.Errorf("URL = %q (scheme must be stripped)", r.URL)
	}
	if r.Status != 200 || r.Size != 4316 {
		t.Errorf("status/size = %d/%d", r.Status, r.Size)
	}
}

func TestParseSquidErrors(t *testing.T) {
	bad := []string{
		"",
		"too few fields",
		"notatime 87 c TCP_MISS/200 10 GET http://x -",
		"899637753.1 87 c TCPMISS200 10 GET http://x -",
		"899637753.1 87 c TCP_MISS/xx 10 GET http://x -",
		"899637753.1 87 c TCP_MISS/200 zz GET http://x -",
	}
	for _, s := range bad {
		if _, err := ParseSquid(s); err == nil {
			t.Errorf("ParseSquid(%q) succeeded", s)
		}
	}
}

func TestSquidRoundTrip(t *testing.T) {
	f := func(tsec uint32, status bool, size uint32, cn uint8) bool {
		r := Record{
			Time:   int64(tsec),
			Client: "10.0.0." + string(rune('1'+cn%9)),
			Method: "GET",
			URL:    "www.example.com/d/f.html",
			Status: 200,
			Size:   int64(size % 1000000),
		}
		if status {
			r.Status = 304
		}
		got, err := ParseSquid(FormatSquid(r))
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatSquidServerRelative(t *testing.T) {
	r := Record{Time: 1, Client: "c", URL: "/a/x.html", Status: 200, Size: 5}
	got, err := ParseSquid(FormatSquid(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.URL != "localhost/a/x.html" {
		t.Errorf("URL = %q", got.URL)
	}
}

func TestDetectFormat(t *testing.T) {
	clf := FormatCLF(Record{Time: 899637753, Client: "c", Method: "GET", URL: "/x", Status: 200, Size: 1})
	if DetectFormat(clf) != FormatCLFLog {
		t.Error("CLF not detected")
	}
	if DetectFormat(squidLine) != FormatSquidLog {
		t.Error("squid not detected")
	}
	if DetectFormat("garbage in, garbage out") != FormatUnknown {
		t.Error("garbage detected as a format")
	}
}

func TestParseAny(t *testing.T) {
	clf := FormatCLF(Record{Time: 899637753, Client: "c", Method: "GET", URL: "/x", Status: 200, Size: 1})
	if _, err := ParseAny(clf); err != nil {
		t.Errorf("ParseAny(CLF): %v", err)
	}
	if _, err := ParseAny(squidLine); err != nil {
		t.Errorf("ParseAny(squid): %v", err)
	}
	if _, err := ParseAny("nonsense"); err == nil {
		t.Error("ParseAny accepted nonsense")
	}
}
