package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDirPrefixHostQualified(t *testing.T) {
	cases := []struct {
		url   string
		level int
		want  string
	}{
		{"www.foo.com/a/b.html", 0, "www.foo.com"},
		{"www.foo.com/a/b.html", 1, "www.foo.com/a"},
		{"www.foo.com/a/d/e.html", 1, "www.foo.com/a"},
		{"www.foo.com/a/d/e.html", 2, "www.foo.com/a/d"},
		{"www.foo.com/f/g.html", 1, "www.foo.com/f"},
		{"www.foo.com/top.html", 1, "www.foo.com"},
		{"www.foo.com/top.html", 4, "www.foo.com"},
		{"www.foo.com", 0, "www.foo.com"},
		{"www.foo.com", 2, "www.foo.com"},
		{"www.foo.com/a/b/c/d/e.html", 3, "www.foo.com/a/b/c"},
	}
	for _, c := range cases {
		if got := DirPrefix(c.url, c.level); got != c.want {
			t.Errorf("DirPrefix(%q, %d) = %q, want %q", c.url, c.level, got, c.want)
		}
	}
}

func TestDirPrefixServerRelative(t *testing.T) {
	cases := []struct {
		url   string
		level int
		want  string
	}{
		{"/a/b.html", 0, "/"},
		{"/a/b.html", 1, "/a"},
		{"/a/d/e.html", 1, "/a"},
		{"/a/d/e.html", 2, "/a/d"},
		{"/top.html", 1, "/"},
		{"/top.html", 3, "/"},
		{"/", 0, "/"},
		{"/", 2, "/"},
	}
	for _, c := range cases {
		if got := DirPrefix(c.url, c.level); got != c.want {
			t.Errorf("DirPrefix(%q, %d) = %q, want %q", c.url, c.level, got, c.want)
		}
	}
}

// The paper's volume semantics require prefix monotonicity: two URLs that
// share a level-k prefix share every level-j prefix for j < k.
func TestDirPrefixMonotone(t *testing.T) {
	f := func(a, b uint8, depthA, depthB uint8) bool {
		urlA := synthURL(int(a), int(depthA)%5)
		urlB := synthURL(int(b), int(depthB)%5)
		for k := 4; k > 0; k-- {
			if DirPrefix(urlA, k) == DirPrefix(urlB, k) {
				for j := 0; j < k; j++ {
					if DirPrefix(urlA, j) != DirPrefix(urlB, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func synthURL(n, depth int) string {
	var b strings.Builder
	b.WriteString("srv")
	b.WriteByte(byte('0' + n%3))
	b.WriteString(".example.com")
	for i := 0; i <= depth; i++ {
		b.WriteByte('/')
		b.WriteByte(byte('a' + (n>>uint(i))%4))
	}
	b.WriteString("/x.html")
	return b.String()
}

func TestPathDepth(t *testing.T) {
	cases := []struct {
		url  string
		want int
	}{
		{"/a/b/c.html", 2},
		{"/c.html", 0},
		{"www.foo.com/a/b.html", 1},
		{"www.foo.com", 0},
		{"/", 0},
	}
	for _, c := range cases {
		if got := PathDepth(c.url); got != c.want {
			t.Errorf("PathDepth(%q) = %d, want %d", c.url, got, c.want)
		}
	}
}

func TestContentType(t *testing.T) {
	cases := []struct{ url, want string }{
		{"/a/b.html", "text/html"},
		{"/a/b.GIF", "image/gif"},
		{"/a/b.jpg", "image/jpeg"},
		{"/dir.with.dots/file", "text/html"}, // dot in dir name, not an extension
		{"/plain", "text/html"},              // extensionless path treated as a page
		{"/a/b.pdf", "application/pdf"},
		{"/a/b.ps", "application/postscript"},
	}
	for _, c := range cases {
		if got := ContentType(c.url); got != c.want {
			t.Errorf("ContentType(%q) = %q, want %q", c.url, got, c.want)
		}
	}
	if !IsImage("/x/y.png") || IsImage("/x/y.html") {
		t.Error("IsImage misclassifies")
	}
}

func TestUncachableAndClean(t *testing.T) {
	l := Log{
		{URL: "/cgi-bin/run", Time: 1},
		{URL: "/search?q=x", Time: 2},
		{URL: "/a/", Time: 3},
		{URL: "/a", Time: 4},
		{URL: "/", Time: 5},
	}
	cl := l.Clean()
	if len(cl) != 3 {
		t.Fatalf("Clean kept %d records, want 3", len(cl))
	}
	if cl[0].URL != "/a" || cl[1].URL != "/a" {
		t.Errorf("Clean did not canonicalize trailing slash: %q %q", cl[0].URL, cl[1].URL)
	}
	if cl[2].URL != "/" {
		t.Errorf("root path mangled: %q", cl[2].URL)
	}
}

func TestLogStats(t *testing.T) {
	l := Log{
		{Time: 10, Client: "c1", URL: "a.com/x.html", Size: 100},
		{Time: 5, Client: "c2", URL: "a.com/y.html", Size: 300},
		{Time: 20, Client: "c1", URL: "b.com/x.html", Size: 200},
		{Time: 15, Client: "c3", URL: "a.com/x.html", Size: 0},
	}
	l.SortByTime()
	if l[0].Time != 5 || l[3].Time != 20 {
		t.Errorf("SortByTime order wrong: %v", l)
	}
	if got := l.Clients(); got != 3 {
		t.Errorf("Clients = %d, want 3", got)
	}
	if got := l.UniqueResources(); got != 3 {
		t.Errorf("UniqueResources = %d, want 3", got)
	}
	if got := l.Servers(); got != 2 {
		t.Errorf("Servers = %d, want 2", got)
	}
	if got := l.Duration(); got != 15 {
		t.Errorf("Duration = %d, want 15", got)
	}
	if got := l.MeanSize(); got != 200 {
		t.Errorf("MeanSize = %v, want 200", got)
	}
	if got := l.MedianSize(); got != 200 {
		t.Errorf("MedianSize = %v, want 200", got)
	}
}

func TestFilterPopular(t *testing.T) {
	var l Log
	for i := 0; i < 10; i++ {
		l = append(l, Record{URL: "/hot.html", Time: int64(i)})
	}
	l = append(l, Record{URL: "/cold.html", Time: 99})
	fl := l.FilterPopular(2)
	if len(fl) != 10 {
		t.Fatalf("FilterPopular kept %d, want 10", len(fl))
	}
	for i := range fl {
		if fl[i].URL != "/hot.html" {
			t.Fatalf("unexpected record %v", fl[i])
		}
	}
}

func TestTopResourceShare(t *testing.T) {
	// 1 resource with 90 requests, 9 resources with ~1 request each:
	// the top 10% of resources should carry ~91% of requests.
	var l Log
	for i := 0; i < 90; i++ {
		l = append(l, Record{URL: "/hot.html"})
	}
	for i := 0; i < 9; i++ {
		l = append(l, Record{URL: "/cold" + string(rune('0'+i)) + ".html"})
	}
	share := l.TopResourceShare(0.1)
	if share < 0.9 || share > 0.95 {
		t.Errorf("TopResourceShare(0.1) = %v, want ~0.91", share)
	}
}

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a/", "/a"},
		{"/a", "/a"},
		{"/", "/"},
		{"www.foo.com/", "www.foo.com"},
		{"//", "/"},
	}
	for _, c := range cases {
		if got := Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDirPrefixIsPrefixProperty(t *testing.T) {
	// The level-k prefix plus "/" is always a string prefix of the URL
	// (or equals the URL's host for host-only URLs).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		url := synthURL(rng.Intn(1000), rng.Intn(5))
		for k := 0; k < 6; k++ {
			p := DirPrefix(url, k)
			if p != url && !strings.HasPrefix(url, p+"/") {
				t.Fatalf("DirPrefix(%q,%d)=%q is not a path prefix", url, k, p)
			}
		}
	}
}
