package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Common Log Format support. The 1998 server logs the paper analyzes
// (AIUSA, Apache, Marimba, Sun) are httpd access logs in CLF:
//
//	host ident authuser [day/month/year:hour:minute:second zone] "METHOD url PROTO" status bytes
//
// ParseCLF and the Writer round-trip this format so real logs can be fed to
// the harness in place of the synthetic ones.

const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// ErrBadLine reports an unparsable log line.
var ErrBadLine = errors.New("trace: malformed common log format line")

// ParseCLF parses one Common Log Format line into a Record.
// A "-" bytes field parses as size 0.
func ParseCLF(line string) (Record, error) {
	var r Record

	// host ident authuser
	rest := strings.TrimSpace(line)
	host, rest, ok := cutField(rest)
	if !ok {
		return r, fmt.Errorf("%w: missing host: %q", ErrBadLine, line)
	}
	if _, rest, ok = cutField(rest); !ok { // ident
		return r, fmt.Errorf("%w: missing ident: %q", ErrBadLine, line)
	}
	if _, rest, ok = cutField(rest); !ok { // authuser
		return r, fmt.Errorf("%w: missing authuser: %q", ErrBadLine, line)
	}

	// [timestamp]
	if len(rest) == 0 || rest[0] != '[' {
		return r, fmt.Errorf("%w: missing timestamp: %q", ErrBadLine, line)
	}
	end := strings.IndexByte(rest, ']')
	if end < 0 {
		return r, fmt.Errorf("%w: unterminated timestamp: %q", ErrBadLine, line)
	}
	ts, err := time.Parse(clfTimeLayout, rest[1:end])
	if err != nil {
		return r, fmt.Errorf("%w: bad timestamp: %v", ErrBadLine, err)
	}
	rest = strings.TrimSpace(rest[end+1:])

	// "METHOD url PROTO"
	if len(rest) == 0 || rest[0] != '"' {
		return r, fmt.Errorf("%w: missing request: %q", ErrBadLine, line)
	}
	end = strings.IndexByte(rest[1:], '"')
	if end < 0 {
		return r, fmt.Errorf("%w: unterminated request: %q", ErrBadLine, line)
	}
	req := rest[1 : 1+end]
	rest = strings.TrimSpace(rest[end+2:])
	parts := strings.Fields(req)
	if len(parts) < 2 {
		return r, fmt.Errorf("%w: short request line %q", ErrBadLine, req)
	}

	// status bytes
	statusStr, rest, ok := cutField(rest)
	if !ok {
		return r, fmt.Errorf("%w: missing status: %q", ErrBadLine, line)
	}
	status, err := strconv.Atoi(statusStr)
	if err != nil {
		return r, fmt.Errorf("%w: bad status %q", ErrBadLine, statusStr)
	}
	sizeStr, _, _ := cutField(rest)
	var size int64
	if sizeStr != "" && sizeStr != "-" {
		size, err = strconv.ParseInt(sizeStr, 10, 64)
		if err != nil {
			return r, fmt.Errorf("%w: bad size %q", ErrBadLine, sizeStr)
		}
	}

	r = Record{
		Time:   ts.Unix(),
		Client: host,
		Method: parts[0],
		URL:    parts[1],
		Status: status,
		Size:   size,
	}
	return r, nil
}

// cutField splits the first whitespace-delimited field off s.
func cutField(s string) (field, rest string, ok bool) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return "", "", false
	}
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", true
	}
	return s[:i], strings.TrimLeft(s[i:], " \t"), true
}

// FormatCLF renders the record as a Common Log Format line.
func FormatCLF(r Record) string {
	method := r.Method
	if method == "" {
		method = "GET"
	}
	size := "-"
	if r.Size > 0 {
		size = strconv.FormatInt(r.Size, 10)
	}
	ts := time.Unix(r.Time, 0).UTC().Format(clfTimeLayout)
	return fmt.Sprintf("%s - - [%s] \"%s %s HTTP/1.0\" %d %s", r.Client, ts, method, r.URL, r.Status, size)
}

// Reader streams Records from a Common Log Format log.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader returns a Reader over r. Lines up to 1MB are supported.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{s: s}
}

// Read returns the next record, or io.EOF at end of input. Blank lines are
// skipped; malformed lines return an error identifying the line number.
// Both Common Log Format and Squid native lines are accepted (formats may
// even be mixed; each line is parsed independently).
func (rd *Reader) Read() (Record, error) {
	for rd.s.Scan() {
		rd.line++
		line := strings.TrimSpace(rd.s.Text())
		if line == "" {
			continue
		}
		rec, err := ParseAny(line)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", rd.line, err)
		}
		return rec, nil
	}
	if err := rd.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll consumes the remaining records into a Log.
func (rd *Reader) ReadAll() (Log, error) {
	var l Log
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return l, nil
		}
		if err != nil {
			return l, err
		}
		l = append(l, rec)
	}
}

// Writer streams Records as Common Log Format lines.
type Writer struct {
	w *bufio.Writer
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (wr *Writer) Write(r Record) error {
	if _, err := wr.w.WriteString(FormatCLF(r)); err != nil {
		return err
	}
	return wr.w.WriteByte('\n')
}

// WriteAll appends every record in l.
func (wr *Writer) WriteAll(l Log) error {
	for i := range l {
		if err := wr.Write(l[i]); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output.
func (wr *Writer) Flush() error { return wr.w.Flush() }
