package trace

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseCLF(t *testing.T) {
	line := `192.0.2.7 - - [05/Jul/1998:11:22:33 +0000] "GET /a/b.html HTTP/1.0" 200 1530`
	r, err := ParseCLF(line)
	if err != nil {
		t.Fatal(err)
	}
	if r.Client != "192.0.2.7" {
		t.Errorf("Client = %q", r.Client)
	}
	if r.Method != "GET" || r.URL != "/a/b.html" {
		t.Errorf("request = %q %q", r.Method, r.URL)
	}
	if r.Status != 200 || r.Size != 1530 {
		t.Errorf("status/size = %d/%d", r.Status, r.Size)
	}
	// 1998-07-05 11:22:33 UTC
	if r.Time != 899637753 {
		t.Errorf("Time = %d, want 899637753", r.Time)
	}
}

func TestParseCLFDashSize(t *testing.T) {
	line := `host - - [05/Jul/1998:11:22:33 +0000] "GET / HTTP/1.0" 304 -`
	r, err := ParseCLF(line)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 0 || r.Status != 304 {
		t.Errorf("got size=%d status=%d", r.Size, r.Status)
	}
}

func TestParseCLFErrors(t *testing.T) {
	bad := []string{
		"",
		"host",
		"host - -",
		`host - - [notadate] "GET / HTTP/1.0" 200 1`,
		`host - - [05/Jul/1998:11:22:33 +0000] GET / 200 1`,
		`host - - [05/Jul/1998:11:22:33 +0000] "GET / HTTP/1.0" xx 1`,
		`host - - [05/Jul/1998:11:22:33 +0000] "GET / HTTP/1.0"`,
		`host - - [05/Jul/1998:11:22:33 +0000] "GET / HTTP/1.0" 200 zz`,
		`host - - [05/Jul/1998:11:22:33 +0000] "GETONLY" 200 1`,
	}
	for _, line := range bad {
		if _, err := ParseCLF(line); err == nil {
			t.Errorf("ParseCLF(%q) succeeded, want error", line)
		}
	}
}

func TestCLFRoundTrip(t *testing.T) {
	f := func(tsec uint32, status uint16, size uint32, cn, pn uint8) bool {
		r := Record{
			Time:   int64(tsec),
			Client: "c" + string(rune('a'+cn%26)),
			Method: "GET",
			URL:    "/d" + string(rune('a'+pn%26)) + "/f.html",
			Status: 200 + int(status%400),
			Size:   int64(size%1000000) + 1,
		}
		got, err := ParseCLF(FormatCLF(r))
		if err != nil {
			return false
		}
		return got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var in Log
	for i := 0; i < 100; i++ {
		in = append(in, Record{
			Time:   int64(900000000 + i*7),
			Client: "client" + string(rune('0'+rng.Intn(10))),
			Method: "GET",
			URL:    "/dir/f" + string(rune('0'+rng.Intn(10))) + ".html",
			Status: 200,
			Size:   int64(rng.Intn(5000) + 1),
		})
	}
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := w.WriteAll(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d records, wrote %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: got %v, want %v", i, out[i], in[i])
		}
	}
}

func TestReaderSkipsBlankAndReportsLine(t *testing.T) {
	input := "\n" + FormatCLF(Record{Time: 900000000, Client: "a", Method: "GET", URL: "/x", Status: 200, Size: 1}) + "\n\nnot a log line\n"
	rd := NewReader(strings.NewReader(input))
	if _, err := rd.Read(); err != nil {
		t.Fatalf("first read: %v", err)
	}
	_, err := rd.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("expected parse error, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error should name line 4 (blank lines counted): %v", err)
	}
}

func TestReaderEOF(t *testing.T) {
	rd := NewReader(strings.NewReader(""))
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}
