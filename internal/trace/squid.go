package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Squid native access.log support. Squid is the proxy whose logs (and
// descendants of whose logs) are the most common real-world source of
// client traces like the paper's AT&T/Digital logs ([2] cites Squid
// directly). The native format is:
//
//	timestamp elapsed client action/code size method URL ident hierarchy/from type
//
// e.g.
//
//	899637753.123 87 10.1.2.3 TCP_MISS/200 4316 GET http://www.foo.com/x.html - DIRECT/10.9.8.7 text/html

// ParseSquid parses one Squid native access.log line. The URL's scheme is
// stripped so records carry host-qualified URLs like the client logs the
// analyzers expect.
func ParseSquid(line string) (Record, error) {
	var r Record
	fields := strings.Fields(line)
	if len(fields) < 7 {
		return r, fmt.Errorf("%w: squid line needs >= 7 fields: %q", ErrBadLine, line)
	}
	tsFloat, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return r, fmt.Errorf("%w: bad squid timestamp %q", ErrBadLine, fields[0])
	}
	actionCode := fields[3]
	slash := strings.LastIndexByte(actionCode, '/')
	if slash < 0 {
		return r, fmt.Errorf("%w: bad squid action/code %q", ErrBadLine, actionCode)
	}
	status, err := strconv.Atoi(actionCode[slash+1:])
	if err != nil {
		return r, fmt.Errorf("%w: bad squid status in %q", ErrBadLine, actionCode)
	}
	size, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil {
		return r, fmt.Errorf("%w: bad squid size %q", ErrBadLine, fields[4])
	}
	url := fields[6]
	url = strings.TrimPrefix(url, "http://")
	url = strings.TrimPrefix(url, "https://")

	r = Record{
		Time:   int64(tsFloat),
		Client: fields[2],
		Method: fields[5],
		URL:    url,
		Status: status,
		Size:   size,
	}
	return r, nil
}

// FormatSquid renders a record as a Squid native access.log line. The
// cache action is synthesized from the status (TCP_MISS for 200s,
// TCP_REFRESH_HIT for 304s).
func FormatSquid(r Record) string {
	action := "TCP_MISS"
	if r.Status == 304 {
		action = "TCP_REFRESH_HIT"
	}
	method := r.Method
	if method == "" {
		method = "GET"
	}
	url := r.URL
	if strings.HasPrefix(url, "/") {
		url = "localhost" + url
	}
	return fmt.Sprintf("%d.000 10 %s %s/%d %d %s http://%s - DIRECT/- -",
		r.Time, r.Client, action, r.Status, r.Size, method, url)
}

// LogFormat identifies an access-log dialect.
type LogFormat int

const (
	// FormatUnknown means detection failed.
	FormatUnknown LogFormat = iota
	// FormatCLFLog is Common Log Format (httpd server logs).
	FormatCLFLog
	// FormatSquidLog is Squid's native access.log.
	FormatSquidLog
)

// DetectFormat guesses the dialect of one log line.
func DetectFormat(line string) LogFormat {
	if _, err := ParseCLF(line); err == nil {
		return FormatCLFLog
	}
	if _, err := ParseSquid(line); err == nil {
		return FormatSquidLog
	}
	return FormatUnknown
}

// ParseAny parses a line in either supported dialect.
func ParseAny(line string) (Record, error) {
	if rec, err := ParseCLF(line); err == nil {
		return rec, nil
	}
	rec, err := ParseSquid(line)
	if err != nil {
		return Record{}, fmt.Errorf("%w: neither CLF nor squid: %q", ErrBadLine, line)
	}
	return rec, nil
}
