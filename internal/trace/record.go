// Package trace defines the access-log record model shared by the workload
// generator, the volume engine, and the trace-driven evaluation harness.
//
// A Record is one line of a Web access log: a timestamped request from a
// source (a client IP in a server log, or a client id in a proxy/client log)
// for a URL. Server logs carry server-relative paths ("/a/b.html"); client
// logs carry host-qualified URLs ("www.foo.com/a/b.html"). The directory
// prefix helpers understand both forms.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Record is a single access-log entry.
type Record struct {
	// Time is the request time in Unix seconds.
	Time int64
	// Client identifies the request source (IP address or client id).
	Client string
	// Method is the HTTP method, usually GET.
	Method string
	// URL is the requested resource. Server logs use server-relative
	// paths; client logs prepend the host name.
	URL string
	// Status is the HTTP response status (200, 304, ...).
	Status int
	// Size is the response body size in bytes.
	Size int64
	// LastModified is the resource's Last-Modified time in Unix seconds,
	// or zero when the log does not record it.
	LastModified int64
	// Embedded marks requests for resources embedded in an enclosing
	// page (inline images). Client logs with full content allow these to
	// be identified; the generator labels them directly (App. A, Fig 1).
	Embedded bool
}

// Log is an in-memory access log ordered by time.
type Log []Record

// SortByTime orders the log by timestamp, preserving the relative order of
// records with equal timestamps (stable, so per-source request order within
// one second survives).
func (l Log) SortByTime() {
	sort.SliceStable(l, func(i, j int) bool { return l[i].Time < l[j].Time })
}

// Clients returns the number of distinct sources in the log.
func (l Log) Clients() int {
	seen := make(map[string]struct{})
	for i := range l {
		seen[l[i].Client] = struct{}{}
	}
	return len(seen)
}

// UniqueResources returns the number of distinct URLs in the log.
func (l Log) UniqueResources() int {
	seen := make(map[string]struct{})
	for i := range l {
		seen[l[i].URL] = struct{}{}
	}
	return len(seen)
}

// Servers returns the number of distinct level-0 prefixes (hosts) in the
// log. For server-relative logs this is 1.
func (l Log) Servers() int {
	seen := make(map[string]struct{})
	for i := range l {
		seen[DirPrefix(l[i].URL, 0)] = struct{}{}
	}
	return len(seen)
}

// Duration returns the time span covered by the log in seconds.
func (l Log) Duration() int64 {
	if len(l) == 0 {
		return 0
	}
	min, max := l[0].Time, l[0].Time
	for i := range l {
		if l[i].Time < min {
			min = l[i].Time
		}
		if l[i].Time > max {
			max = l[i].Time
		}
	}
	return max - min
}

// MeanSize returns the mean response size across records with Size > 0.
func (l Log) MeanSize() float64 {
	var sum int64
	var n int
	for i := range l {
		if l[i].Size > 0 {
			sum += l[i].Size
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// MedianSize returns the median response size across records with Size > 0.
func (l Log) MedianSize() int64 {
	sizes := make([]int64, 0, len(l))
	for i := range l {
		if l[i].Size > 0 {
			sizes = append(sizes, l[i].Size)
		}
	}
	if len(sizes) == 0 {
		return 0
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return sizes[len(sizes)/2]
}

// FilterPopular returns a log restricted to resources accessed at least
// minAccess times, mirroring the paper's App. A post-processing ("our
// analysis focused on resources that were accessed at least ten times").
func (l Log) FilterPopular(minAccess int) Log {
	counts := make(map[string]int, len(l)/4)
	for i := range l {
		counts[l[i].URL]++
	}
	out := make(Log, 0, len(l))
	for i := range l {
		if counts[l[i].URL] >= minAccess {
			out = append(out, l[i])
		}
	}
	return out
}

// AccessCounts returns the number of requests per URL.
func (l Log) AccessCounts() map[string]int {
	counts := make(map[string]int, len(l)/4)
	for i := range l {
		counts[l[i].URL]++
	}
	return counts
}

// TopResourceShare reports the fraction of requests that go to the most
// popular fraction `frac` of unique resources (e.g. frac=0.1 answers "what
// share of requests hit the top 10% of resources", App. A).
func (l Log) TopResourceShare(frac float64) float64 {
	if len(l) == 0 {
		return 0
	}
	counts := l.AccessCounts()
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cs)))
	k := int(frac * float64(len(cs)))
	if k < 1 {
		k = 1
	}
	var top, total int
	for i, c := range cs {
		total += c
		if i < k {
			top += c
		}
	}
	return float64(top) / float64(total)
}

// DirPrefix returns the level-k directory prefix of url.
//
// For a host-qualified URL ("www.foo.com/a/b/c.html"), level 0 is the host,
// level 1 is "www.foo.com/a", and so on. For a server-relative path
// ("/a/b/c.html"), level 0 is "/" (the whole site) and level 1 is "/a".
// A prefix deeper than the resource's own directory is the directory itself:
// the file component never contributes to the prefix.
func DirPrefix(url string, level int) string {
	host := ""
	path := url
	if !strings.HasPrefix(url, "/") {
		// Host-qualified.
		if i := strings.IndexByte(url, '/'); i >= 0 {
			host, path = url[:i], url[i:]
		} else {
			host, path = url, "/"
		}
	}
	if level <= 0 {
		if host != "" {
			return host
		}
		return "/"
	}
	// Walk path segments; the last segment is the file and is excluded.
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(segs) > 0 {
		segs = segs[:len(segs)-1] // drop file component
	}
	if level < len(segs) {
		segs = segs[:level]
	}
	if len(segs) == 0 {
		if host != "" {
			return host
		}
		return "/"
	}
	return host + "/" + strings.Join(segs, "/")
}

// PathDepth returns the number of directory levels in the URL's path (the
// file component excluded). "www.foo.com/a/b/c.html" and "/a/b/c.html" both
// have depth 2.
func PathDepth(url string) int {
	path := url
	if !strings.HasPrefix(url, "/") {
		if i := strings.IndexByte(url, '/'); i >= 0 {
			path = url[i:]
		} else {
			return 0
		}
	}
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(segs) == 0 {
		return 0
	}
	return len(segs) - 1
}

// ContentType guesses a coarse content type from the URL extension,
// matching the classes the paper's filters distinguish (§2.2: a proxy for
// low-bandwidth clients may exclude images; volumes partition elements by
// content type).
func ContentType(url string) string {
	u := url
	if i := strings.IndexByte(u, '?'); i >= 0 {
		u = u[:i]
	}
	dot := strings.LastIndexByte(u, '.')
	slash := strings.LastIndexByte(u, '/')
	if dot < 0 || dot < slash {
		return "text/html"
	}
	switch strings.ToLower(u[dot+1:]) {
	case "html", "htm", "shtml":
		return "text/html"
	case "txt", "text":
		return "text/plain"
	case "gif":
		return "image/gif"
	case "jpg", "jpeg":
		return "image/jpeg"
	case "png":
		return "image/png"
	case "ps":
		return "application/postscript"
	case "pdf":
		return "application/pdf"
	case "gz", "z", "zip", "tar":
		return "application/octet-stream"
	case "class", "jar":
		return "application/java"
	case "js":
		return "application/javascript"
	case "css":
		return "text/css"
	default:
		return "application/octet-stream"
	}
}

// IsImage reports whether the URL names an image resource.
func IsImage(url string) bool {
	return strings.HasPrefix(ContentType(url), "image/")
}

// Uncachable reports whether the URL should be treated as uncachable, using
// the paper's App. A cleaning rule: resources containing "cgi" or query
// URLs with "?" are deleted from the logs before analysis.
func Uncachable(url string) bool {
	return strings.Contains(url, "cgi") || strings.ContainsRune(url, '?')
}

// Clean applies the paper's App. A log-cleaning rules: drop uncachable
// responses and canonicalize trailing slashes so identical resources merge
// (http://www.foo.com/ and http://www.foo.com).
func (l Log) Clean() Log {
	out := make(Log, 0, len(l))
	for i := range l {
		r := l[i]
		if Uncachable(r.URL) {
			continue
		}
		r.URL = Canonical(r.URL)
		out = append(out, r)
	}
	return out
}

// Canonical merges identical resources that differ only by a trailing
// slash: a URL ending in "/" maps to the same resource as the URL without
// it, except the bare root path.
func Canonical(url string) string {
	if len(url) > 1 && strings.HasSuffix(url, "/") {
		trimmed := strings.TrimRight(url, "/")
		if trimmed == "" {
			return "/"
		}
		return trimmed
	}
	return url
}

// String renders the record compactly for debugging.
func (r Record) String() string {
	return fmt.Sprintf("%d %s %s %s %d %d", r.Time, r.Client, r.Method, r.URL, r.Status, r.Size)
}
