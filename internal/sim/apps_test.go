package sim

import (
	"strconv"
	"testing"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/trace"
)

func TestCoherencyReport(t *testing.T) {
	r := Result{
		Requests:    100,
		PrevWithinC: 40,
		PrevWithinT: 18,
		UpdatedTC:   10,

		PiggybackMessages: 50,
		PiggybackElements: 150,
	}
	rep := Coherency(r)
	if rep.CachedShare != 0.4 {
		t.Errorf("CachedShare = %v", rep.CachedShare)
	}
	if rep.QuickRepeatShare != 0.45 {
		t.Errorf("QuickRepeatShare = %v", rep.QuickRepeatShare)
	}
	if rep.APrioriRefreshShare != 0.25 {
		t.Errorf("APrioriRefreshShare = %v", rep.APrioriRefreshShare)
	}
	if rep.AvgPiggybackSize != 3 {
		t.Errorf("AvgPiggybackSize = %v", rep.AvgPiggybackSize)
	}
	if empty := Coherency(Result{Requests: 10}); empty.QuickRepeatShare != 0 {
		t.Error("empty coherency division by zero")
	}
}

// appTrace: page followed by image every visit; visits spaced beyond T.
func appTrace(visits int) trace.Log {
	var l trace.Log
	tt := int64(1000)
	for v := 0; v < visits; v++ {
		c := "c" + strconv.Itoa(v%4)
		l = append(l, trace.Record{Time: tt, Client: c, URL: "/a/p.html", Size: 1000})
		l = append(l, trace.Record{Time: tt + 3, Client: c, URL: "/a/i.gif", Size: 500})
		if v%2 == 0 {
			l = append(l, trace.Record{Time: tt + 60, Client: c, URL: "/a/q.html", Size: 2000})
		}
		tt += 1000
	}
	l.SortByTime()
	return l
}

func TestPrefetchTradeoffMonotone(t *testing.T) {
	log := appTrace(40)
	b := core.NewProbBuilder(core.ProbConfig{T: 300, Pt: 0.05})
	b.ObserveLog(log)
	vols := b.Build(0)
	points := PrefetchTradeoff(log, vols, []float64{0.1, 0.6})
	if len(points) != 2 {
		t.Fatal("point count")
	}
	lo, hi := points[0], points[1]
	// Raising the threshold can only reduce recall, and should reduce
	// futile fetches (q.html at p=0.5 is dropped at pt=0.6).
	if hi.Recall > lo.Recall {
		t.Errorf("recall rose with threshold: %v -> %v", lo.Recall, hi.Recall)
	}
	if hi.FutileFraction > lo.FutileFraction {
		t.Errorf("futile fraction rose with threshold: %v -> %v", lo.FutileFraction, hi.FutileFraction)
	}
	if lo.BandwidthIncrease <= 0 {
		t.Errorf("expected bandwidth overhead at low threshold: %+v", lo)
	}
}

func TestReplayReplacementLRUBaseline(t *testing.T) {
	log := appTrace(50)
	r := ReplayReplacement(log, 1<<20, cache.LRU{}, nil, 300)
	if r.Requests != len(log) {
		t.Fatalf("requests = %d", r.Requests)
	}
	// Everything fits: all repeats hit.
	if r.HitRate <= 0.5 {
		t.Errorf("hit rate = %v", r.HitRate)
	}
	if r.Policy != "lru" {
		t.Errorf("policy = %q", r.Policy)
	}
}

func TestReplayReplacementPiggybackPins(t *testing.T) {
	log := appTrace(60)
	build := func() core.Provider {
		d := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true})
		return d
	}
	// Tight cache forces evictions; with piggyback pinning, predicted
	// entries survive and PinnedSaves appear.
	withPig := ReplayReplacement(log, 2600, cache.PiggybackLRU{}, build(), 300)
	if withPig.PinnedSaves == 0 {
		t.Errorf("no pinned saves: %+v", withPig)
	}
	plain := ReplayReplacement(log, 2600, cache.LRU{}, nil, 300)
	if plain.PinnedSaves != 0 {
		t.Error("plain LRU reported pinned saves")
	}
}

func TestReplayReplacement304ChargesKnownSize(t *testing.T) {
	log := trace.Log{
		{Time: 1, Client: "c", URL: "/x", Size: 1000, Status: 200},
		{Time: 2, Client: "c", URL: "/x", Size: 0, Status: 304},
	}
	r := ReplayReplacement(log, 1<<20, cache.LRU{}, nil, 300)
	if r.ByteHitRate != 0.5 {
		t.Errorf("ByteHitRate = %v, want 0.5 (304 charged at known size)", r.ByteHitRate)
	}
}
