package sim

import (
	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/trace"
)

// CoherencyReport summarizes the §4 cache-coherency arithmetic from a
// Result: of the requests that plausibly hit the cache (a previous
// occurrence within C), how many were within T anyway (already fresh under
// any reasonable Δ) and how many more a piggyback refreshed a priori —
// "our best volumes enabled a priori refreshment for an additional 22-46%
// of requests made to cached resources".
type CoherencyReport struct {
	// CachedShare is the fraction of all requests with a previous
	// occurrence within C (plausible cache hits).
	CachedShare float64
	// QuickRepeatShare, of cached requests: previous occurrence within
	// T (the cache plausibly holds a fresh copy regardless).
	QuickRepeatShare float64
	// APrioriRefreshShare, of cached requests: refreshed by a piggyback
	// (predicted within T, previous occurrence in (T, C]).
	APrioriRefreshShare float64
	// AvgPiggybackSize is the cost paid for the refreshes.
	AvgPiggybackSize float64
}

// Coherency derives the report from a Result.
func Coherency(r Result) CoherencyReport {
	rep := CoherencyReport{
		CachedShare:      r.FracPrevWithinC(),
		AvgPiggybackSize: r.AvgPiggybackSize(),
	}
	if r.PrevWithinC > 0 {
		rep.QuickRepeatShare = float64(r.PrevWithinT) / float64(r.PrevWithinC)
		rep.APrioriRefreshShare = float64(r.UpdatedTC) / float64(r.PrevWithinC)
	}
	return rep
}

// PrefetchPoint is one point of the §4 prefetching tradeoff: prefetching
// every prediction at some volume configuration yields this recall at this
// futile-fetch cost.
type PrefetchPoint struct {
	// Threshold is the probability threshold that produced the point.
	Threshold float64
	// Recall is the fraction of accesses that would be prefetched in
	// time (fraction predicted).
	Recall float64
	// FutileFraction is the share of prefetched resources never used.
	FutileFraction float64
	// BandwidthIncrease is wasted prefetch bytes over demand bytes.
	BandwidthIncrease float64
	// AvgPiggybackSize is the piggyback cost at this configuration.
	AvgPiggybackSize float64
}

// PrefetchTradeoff sweeps probability thresholds over one built volume set,
// producing the §4 prefetching tradeoff curve (e.g. "40% of accesses can be
// prefetched with 20% futile fetches").
func PrefetchTradeoff(log trace.Log, vols *core.ProbVolumes, thresholds []float64) []PrefetchPoint {
	out := make([]PrefetchPoint, 0, len(thresholds))
	for _, pt := range thresholds {
		r := New(Config{Provider: vols.WithPt(pt), T: vols.T}).Run(log)
		out = append(out, PrefetchPoint{
			Threshold:         pt,
			Recall:            r.FractionPredicted(),
			FutileFraction:    r.FutileFetchFraction(),
			BandwidthIncrease: r.PrefetchBandwidthIncrease(),
			AvgPiggybackSize:  r.AvgPiggybackSize(),
		})
	}
	return out
}

// ReplacementResult reports a cache-replacement replay.
type ReplacementResult struct {
	Policy      string
	Requests    int
	HitRate     float64
	ByteHitRate float64
	Evictions   int
	PinnedSaves int // hits on entries that were pinned by a piggyback
}

// ReplayReplacement replays the log through a cache of the given byte
// capacity and policy. When provider is non-nil, each request's piggyback
// message pins predicted entries (§4 cache replacement: "the proxy could
// continue to cache items that have appeared in recent piggyback
// messages"); pass nil to measure the policy alone.
func ReplayReplacement(log trace.Log, capacity int64, policy cache.Policy, provider core.Provider, T int64) ReplacementResult {
	if T <= 0 {
		T = 300
	}
	c := cache.New(capacity, policy)
	res := ReplacementResult{Policy: policy.Name()}
	var hitBytes, totalBytes int64
	sizes := make(map[string]int64)

	for i := range log {
		rec := &log[i]
		now := rec.Time
		size := rec.Size
		if size <= 0 {
			size = sizes[rec.URL] // 304s: charge the known size
		} else {
			sizes[rec.URL] = size
		}
		res.Requests++
		totalBytes += size
		if e, ok := c.Get(rec.URL, now); ok {
			hitBytes += size
			if e.PinnedUntil() >= now {
				res.PinnedSaves++
			}
		} else if size > 0 {
			c.Put(cache.Entry{URL: rec.URL, Size: size, LastModified: rec.LastModified, Expires: now + T}, now)
		}
		if provider != nil {
			if m, ok := provider.Piggyback(rec.URL, now, core.Filter{}); ok {
				for _, el := range m.Elements {
					c.Hint(el.URL, now+T, now)
				}
			}
			provider.Observe(core.Access{Source: rec.Client, Time: now,
				Element: core.Element{URL: rec.URL, Size: size, LastModified: rec.LastModified}})
		}
	}
	res.HitRate = c.HitRate()
	if totalBytes > 0 {
		res.ByteHitRate = float64(hitBytes) / float64(totalBytes)
	}
	res.Evictions = c.Evictions
	return res
}
