package sim

import (
	"piggyback/internal/metrics"
	"piggyback/internal/trace"
)

// LocalityStats summarizes request spacing within directory-based volumes
// at one prefix level — the data behind Fig 1.
type LocalityStats struct {
	// Level is the directory-prefix depth.
	Level int
	// Requests is the number of requests analyzed.
	Requests int
	// SeenBefore is the fraction of requests whose level-k prefix
	// occurred earlier in the trace (by any client — Fig 1(a) "% Seen
	// Before").
	SeenBefore float64
	// MedianInterarrival is the median seconds between successive
	// accesses to the same prefix (Fig 1(a)).
	MedianInterarrival float64
	// MeanInterarrival is the mean of the same distribution.
	MeanInterarrival float64
	// Interarrivals is the empirical CDF of interarrival times,
	// Fig 1(b).
	Interarrivals *metrics.CDF
}

// AnalyzeLocality computes directory-prefix locality for each level. When
// includeEmbedded is false, records marked Embedded are dropped first —
// the paper's check that locality is not an artifact of inline images.
// At level k >= 1, only requests whose path is at least k directories deep
// participate: a shallow resource has no level-k prefix of its own, and
// counting its directory again at every deeper level would flatten the
// level gradient of Fig 1(a). The log must be sorted by time.
func AnalyzeLocality(log trace.Log, levels []int, includeEmbedded bool) []LocalityStats {
	out := make([]LocalityStats, 0, len(levels))
	for _, level := range levels {
		lastSeen := make(map[string]int64)
		seen := 0
		var inter []float64
		n := 0
		for i := range log {
			rec := &log[i]
			if !includeEmbedded && rec.Embedded {
				continue
			}
			if level >= 1 && trace.PathDepth(rec.URL) < level {
				continue
			}
			n++
			p := trace.DirPrefix(rec.URL, level)
			if prev, ok := lastSeen[p]; ok {
				seen++
				inter = append(inter, float64(rec.Time-prev))
			}
			lastSeen[p] = rec.Time
		}
		st := LocalityStats{Level: level, Requests: n}
		if n > 0 {
			st.SeenBefore = float64(seen) / float64(n)
		}
		if len(inter) > 0 {
			st.MedianInterarrival = metrics.Median(inter)
			st.MeanInterarrival = metrics.Mean(inter)
			st.Interarrivals = metrics.NewCDF(inter)
		}
		out = append(out, st)
	}
	return out
}

// PredictableWithin returns the fraction of same-prefix interarrivals at or
// below the given number of seconds — e.g. the paper's "over 55% of
// accesses occur less than fifty seconds after another request in the same
// 2-level volume".
func (s LocalityStats) PredictableWithin(seconds float64) float64 {
	if s.Interarrivals == nil {
		return 0
	}
	return s.Interarrivals.P(seconds)
}
