package sim

import (
	"strconv"
	"testing"

	"piggyback/internal/core"
	"piggyback/internal/trace"
)

// hierTrace: many clients re-reading a small working set; re-reads happen
// after Δ so freshness matters.
func hierTrace(clients, rounds int, gap int64) trace.Log {
	var l trace.Log
	tt := int64(1000)
	for r := 0; r < rounds; r++ {
		for c := 0; c < clients; c++ {
			client := "c" + strconv.Itoa(c)
			l = append(l, trace.Record{Time: tt, Client: client, URL: "/a/page.html", Size: 1000, LastModified: 10})
			l = append(l, trace.Record{Time: tt + 3, Client: client, URL: "/a/img.gif", Size: 500, LastModified: 10})
			tt += 10
		}
		tt += gap
	}
	l.SortByTime()
	return l
}

func TestHierarchyLevels(t *testing.T) {
	log := hierTrace(8, 3, 60) // re-reads within Δ: plenty of cache hits
	res := ReplayHierarchy(log, HierarchyConfig{Children: 2, Delta: 900})
	if res.Requests != len(log) {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.ChildHits == 0 || res.ParentHits == 0 || res.OriginFetches == 0 {
		t.Fatalf("levels not exercised: %+v", res)
	}
	// Conservation: every request lands at exactly one level.
	total := res.ChildHits + res.ParentHits + res.OriginFetches + res.Validations
	if total != res.Requests {
		t.Fatalf("level counts %d != requests %d", total, res.Requests)
	}
	// The parent aggregates children: its first fetch serves the other
	// child's first request.
	if res.OriginFetches >= res.Requests/2 {
		t.Errorf("parent not absorbing misses: %+v", res)
	}
}

func TestHierarchyPiggybackAvoidsValidations(t *testing.T) {
	// Rounds spaced beyond Δ: without piggybacking every round
	// revalidates; with it, the piggyback on the page fetch freshens
	// the image at both levels.
	log := hierTrace(6, 8, 1200)
	without := ReplayHierarchy(log, HierarchyConfig{Children: 2, Delta: 900})

	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	with := ReplayHierarchy(log, HierarchyConfig{
		Children: 2, Delta: 900,
		Provider: vols,
	})
	if with.Refreshes == 0 {
		t.Fatalf("no piggyback refreshes: %+v", with)
	}
	if with.AvoidedValidations == 0 {
		t.Fatalf("no avoided validations: %+v", with)
	}
	if with.OriginLoad() >= without.OriginLoad() {
		t.Errorf("piggybacking did not reduce origin load: %.3f vs %.3f",
			with.OriginLoad(), without.OriginLoad())
	}
}

func TestHierarchyChildAffinity(t *testing.T) {
	// The same source must always map to the same child.
	log := hierTrace(1, 4, 30)
	res := ReplayHierarchy(log, HierarchyConfig{Children: 4, Delta: 900})
	// One client: after the first fetch, everything within Δ is a child
	// hit; no parent hits possible for a single source.
	if res.ParentHits != 0 {
		t.Errorf("single source produced parent hits: %+v", res)
	}
}

func TestHierarchyRPVPacesPiggybacks(t *testing.T) {
	// A short Δ forces origin contact every round, so the difference is
	// purely the RPV pacing of piggybacks to the parent.
	log := hierTrace(6, 8, 300)
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	noPace := ReplayHierarchy(log, HierarchyConfig{Children: 2, Delta: 100, Provider: vols})
	vols2 := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	paced := ReplayHierarchy(log, HierarchyConfig{Children: 2, Delta: 100, Provider: vols2, RPVTimeout: 600})
	if paced.PiggybackMessages >= noPace.PiggybackMessages {
		t.Errorf("RPV did not pace piggybacks: %d vs %d",
			paced.PiggybackMessages, noPace.PiggybackMessages)
	}
}

func TestHierarchyResultRatios(t *testing.T) {
	r := HierarchyResult{Requests: 100, ChildHits: 40, ParentHits: 30, OriginFetches: 20, Validations: 10}
	if r.ChildHitRate() != 0.4 {
		t.Errorf("ChildHitRate = %v", r.ChildHitRate())
	}
	if r.ParentHitRate() != 0.5 {
		t.Errorf("ParentHitRate = %v", r.ParentHitRate())
	}
	if r.OriginLoad() != 0.3 {
		t.Errorf("OriginLoad = %v", r.OriginLoad())
	}
}
