// Package sim is the trace-driven evaluation harness: it replays a server
// log (treated as a pseudo-proxy trace: each source IP is a proxy, App. A)
// against a volume provider, simulating the piggyback exchange per source
// and computing the paper's three metrics (§3.1) plus piggyback cost.
package sim

import (
	"piggyback/internal/core"
	"piggyback/internal/trace"
)

// Config parameterizes one simulation run.
type Config struct {
	// T is the prediction window in seconds (§3.1; the paper uses 300).
	T int64
	// C is the "cached recently" window for the update-fraction metric,
	// C > T (the paper uses 7200 — two hours).
	C int64
	// Provider is the volume engine under evaluation.
	Provider core.Provider
	// BaseFilter is the filter each simulated proxy attaches to
	// requests (before its RPV list is added).
	BaseFilter core.Filter
	// UseRPV enables per-source RPV lists with the given timeout: the
	// minimum time between successive piggybacks of one volume (Fig 4's
	// x-axis). RPVMaxLen caps the list (0 = 32).
	UseRPV     bool
	RPVTimeout int64
	RPVMaxLen  int
	// Feed controls whether requests are fed to Provider.Observe during
	// the replay. Directory volumes are maintained online and need it;
	// probability volumes are built offline and ignore it.
	Feed bool
}

// Result accumulates the evaluation metrics of §3.1.
type Result struct {
	// Requests is the number of replayed requests.
	Requests int
	// Predicted counts requests whose resource appeared in a piggyback
	// message to the same source within the last T seconds — the
	// numerator of the fraction-predicted (recall) metric.
	Predicted int
	// PrevWithinT counts requests whose resource was requested by the
	// same source within the last T seconds (Table 1 column 3: the
	// cache plausibly holds a fresh copy already).
	PrevWithinT int
	// PrevWithinC counts requests with a previous occurrence within C
	// seconds (Table 1 column 2: plausible cache hits).
	PrevWithinC int
	// UpdatedTC counts requests that were predicted within T and whose
	// previous occurrence lies in (T, C] seconds ago (Table 1 column 4:
	// a piggyback updated an older cached copy).
	UpdatedTC int
	// UpdateEvents counts requests predicted within T with any previous
	// occurrence within C — the §3.1 update-fraction numerator
	// (Fig 3(b)).
	UpdateEvents int

	// Piggyback cost accounting.
	PiggybackMessages int
	PiggybackElements int
	PiggybackBytes    int64

	// Prediction instance accounting for the true-prediction (precision)
	// metric. Re-piggybacks of a live prediction merge into one instance
	// (§3.1: "counted as a single prediction").
	TotalPredictions     int
	FulfilledPredictions int

	// Byte accounting for the §4 prefetching tradeoffs: if the proxy
	// prefetched every predicted resource, FulfilledBytes would be
	// useful transfers and FutileBytes wasted bandwidth, against
	// ResponseBytes of demand traffic.
	FulfilledBytes int64
	FutileBytes    int64
	ResponseBytes  int64
}

// FutileFetchFraction is the share of prefetches that would be wasted.
func (r Result) FutileFetchFraction() float64 {
	return ratio(r.TotalPredictions-r.FulfilledPredictions, r.TotalPredictions)
}

// PrefetchBandwidthIncrease estimates the §4 bandwidth overhead of
// prefetching every prediction: wasted bytes over demand bytes.
func (r Result) PrefetchBandwidthIncrease() float64 {
	if r.ResponseBytes == 0 {
		return 0
	}
	return float64(r.FutileBytes) / float64(r.ResponseBytes)
}

// FractionPredicted is the recall metric: the likelihood that a requested
// resource appeared in a piggyback to the same source in the last T seconds.
func (r Result) FractionPredicted() float64 { return ratio(r.Predicted, r.Requests) }

// TruePredictionFraction is the precision metric: the likelihood that a
// piggybacked resource is requested within the next T seconds.
func (r Result) TruePredictionFraction() float64 {
	return ratio(r.FulfilledPredictions, r.TotalPredictions)
}

// UpdateFraction is the §3.1 update metric: requests predicted within T
// that also occurred previously within C.
func (r Result) UpdateFraction() float64 { return ratio(r.UpdateEvents, r.Requests) }

// FracPrevWithinT and FracPrevWithinC are Table 1 columns 3 and 2.
func (r Result) FracPrevWithinT() float64 { return ratio(r.PrevWithinT, r.Requests) }
func (r Result) FracPrevWithinC() float64 { return ratio(r.PrevWithinC, r.Requests) }

// FracUpdatedTC is Table 1 column 4.
func (r Result) FracUpdatedTC() float64 { return ratio(r.UpdatedTC, r.Requests) }

// AvgPiggybackSize is the mean number of elements per non-empty piggyback
// message.
func (r Result) AvgPiggybackSize() float64 {
	return ratio(r.PiggybackElements, r.PiggybackMessages)
}

// AvgPiggybackSizePerRequest spreads elements over all requests (the cost
// per response including responses with no piggyback).
func (r Result) AvgPiggybackSizePerRequest() float64 {
	return ratio(r.PiggybackElements, r.Requests)
}

// AvgPiggybackBytes is the mean wire bytes per non-empty piggyback message.
func (r Result) AvgPiggybackBytes() float64 {
	if r.PiggybackMessages == 0 {
		return 0
	}
	return float64(r.PiggybackBytes) / float64(r.PiggybackMessages)
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// predInstance is one live prediction of a resource for a source.
type predInstance struct {
	expiry    int64
	fulfilled bool
	size      int64
}

// srcState is the per-source (per-proxy) simulation state.
type srcState struct {
	lastReq map[string]int64
	pred    map[string]*predInstance
	rpv     *core.RPVList
}

// Simulator replays a log through the piggyback protocol.
type Simulator struct {
	cfg     Config
	sources map[string]*srcState
	res     Result
}

// New returns a Simulator for cfg. Zero T defaults to 300, zero C to 7200.
func New(cfg Config) *Simulator {
	if cfg.T <= 0 {
		cfg.T = 300
	}
	if cfg.C <= 0 {
		cfg.C = 7200
	}
	return &Simulator{cfg: cfg, sources: make(map[string]*srcState)}
}

func (s *Simulator) state(src string) *srcState {
	st, ok := s.sources[src]
	if !ok {
		st = &srcState{
			lastReq: make(map[string]int64),
			pred:    make(map[string]*predInstance),
		}
		if s.cfg.UseRPV {
			st.rpv = core.NewRPVList(s.cfg.RPVTimeout, s.cfg.RPVMaxLen)
		}
		s.sources[src] = st
	}
	return st
}

// Step replays one request.
func (s *Simulator) Step(rec trace.Record) {
	st := s.state(rec.Client)
	now := rec.Time
	url := rec.URL
	s.res.Requests++

	// 1. Prediction (recall) check against live piggybacked predictions.
	predicted := false
	if pi, ok := st.pred[url]; ok {
		if now <= pi.expiry {
			predicted = true
			if !pi.fulfilled {
				pi.fulfilled = true
				s.res.FulfilledPredictions++
				s.res.FulfilledBytes += pi.size
			}
		} else {
			s.finish(st, url, pi)
		}
	}
	if predicted {
		s.res.Predicted++
	}

	// 2. Update-fraction bookkeeping against the previous occurrence.
	if prev, ok := st.lastReq[url]; ok {
		age := now - prev
		if age <= s.cfg.T {
			s.res.PrevWithinT++
		}
		if age <= s.cfg.C {
			s.res.PrevWithinC++
			if predicted {
				s.res.UpdateEvents++
				if age > s.cfg.T {
					s.res.UpdatedTC++
				}
			}
		}
	}
	st.lastReq[url] = now
	s.res.ResponseBytes += rec.Size

	// 3. The server observes the request (maintains online volumes).
	elem := core.Element{URL: url, Size: rec.Size, LastModified: rec.LastModified}
	if s.cfg.Feed {
		s.cfg.Provider.Observe(core.Access{Source: rec.Client, Time: now, Element: elem})
	}

	// 4. The response carries a piggyback, subject to the proxy filter
	// and its RPV list.
	f := s.cfg.BaseFilter
	if st.rpv != nil {
		f.RPV = st.rpv.Snapshot(now)
	}
	msg, ok := s.cfg.Provider.Piggyback(url, now, f)
	if !ok {
		return
	}
	s.res.PiggybackMessages++
	s.res.PiggybackElements += len(msg.Elements)
	s.res.PiggybackBytes += int64(msg.WireBytes())
	if st.rpv != nil {
		st.rpv.Note(msg.Volume, now)
	}
	for _, e := range msg.Elements {
		s.predict(st, e.URL, e.Size, now)
	}
}

// predict records a piggybacked element for the source: a new prediction
// instance, or an extension of the live one (single-prediction counting).
func (s *Simulator) predict(st *srcState, url string, size, now int64) {
	if pi, ok := st.pred[url]; ok {
		if now <= pi.expiry {
			pi.expiry = now + s.cfg.T
			return
		}
		s.finish(st, url, pi)
	}
	st.pred[url] = &predInstance{expiry: now + s.cfg.T, size: size}
}

// finish closes an expired prediction instance.
func (s *Simulator) finish(st *srcState, url string, pi *predInstance) {
	s.res.TotalPredictions++
	if !pi.fulfilled {
		s.res.FutileBytes += pi.size
	}
	delete(st.pred, url)
}

// Run replays an entire log (which must be sorted by time) and returns the
// final result.
func (s *Simulator) Run(log trace.Log) Result {
	for i := range log {
		s.Step(log[i])
	}
	return s.Finish()
}

// Finish closes the remaining live prediction instances (instances enter
// TotalPredictions only when they close) and returns the result.
func (s *Simulator) Finish() Result {
	for _, st := range s.sources {
		for _, pi := range st.pred {
			s.res.TotalPredictions++
			if !pi.fulfilled {
				s.res.FutileBytes += pi.size
			}
		}
		st.pred = make(map[string]*predInstance)
	}
	return s.res
}

// Result returns the metrics accumulated so far without flushing.
func (s *Simulator) Result() Result { return s.res }
