package sim

import (
	"math"
	"testing"

	"piggyback/internal/core"
	"piggyback/internal/trace"
)

// stubProvider piggybacks a fixed element list per URL, honoring RPV and
// Disabled so the simulator's filter plumbing can be observed.
type stubProvider struct {
	vols     map[string]core.Message
	observed int
}

func (p *stubProvider) Observe(a core.Access) { p.observed++ }

func (p *stubProvider) Piggyback(url string, now int64, f core.Filter) (core.Message, bool) {
	if f.Disabled {
		return core.Message{}, false
	}
	m, ok := p.vols[url]
	if !ok {
		return core.Message{}, false
	}
	if f.HasRPV(m.Volume) {
		return core.Message{}, false
	}
	return m, true
}

func rec(t int64, src, url string) trace.Record {
	return trace.Record{Time: t, Client: src, URL: url, Size: 100, Status: 200}
}

func el(url string) core.Element { return core.Element{URL: url, Size: 100, LastModified: 1} }

func TestFractionPredicted(t *testing.T) {
	// /a predicts /b. Request /a then /b within T: /b is predicted.
	p := &stubProvider{vols: map[string]core.Message{
		"/a": {Volume: 1, Elements: []core.Element{el("/b")}},
	}}
	s := New(Config{T: 300, C: 7200, Provider: p})
	res := s.Run(trace.Log{
		rec(100, "p1", "/a"),
		rec(150, "p1", "/b"),
	})
	if res.Predicted != 1 || res.Requests != 2 {
		t.Fatalf("Predicted=%d Requests=%d", res.Predicted, res.Requests)
	}
	if got := res.FractionPredicted(); got != 0.5 {
		t.Errorf("FractionPredicted = %v", got)
	}
}

func TestPredictionExpires(t *testing.T) {
	p := &stubProvider{vols: map[string]core.Message{
		"/a": {Volume: 1, Elements: []core.Element{el("/b")}},
	}}
	s := New(Config{T: 300, Provider: p})
	res := s.Run(trace.Log{
		rec(100, "p1", "/a"),
		rec(500, "p1", "/b"), // 400s later: prediction expired
	})
	if res.Predicted != 0 {
		t.Errorf("expired prediction counted: %d", res.Predicted)
	}
	// The expired instance is an unfulfilled prediction.
	if res.TotalPredictions != 1 || res.FulfilledPredictions != 0 {
		t.Errorf("Total=%d Fulfilled=%d", res.TotalPredictions, res.FulfilledPredictions)
	}
}

func TestPredictionsArePerSource(t *testing.T) {
	p := &stubProvider{vols: map[string]core.Message{
		"/a": {Volume: 1, Elements: []core.Element{el("/b")}},
	}}
	s := New(Config{T: 300, Provider: p})
	res := s.Run(trace.Log{
		rec(100, "p1", "/a"),
		rec(150, "p2", "/b"), // other proxy: not predicted for it
	})
	if res.Predicted != 0 {
		t.Errorf("cross-source prediction: %d", res.Predicted)
	}
}

func TestTruePredictionMergesInstances(t *testing.T) {
	// /a predicts /b; /a requested twice in quick succession => a single
	// prediction instance; then /b arrives => precision 1/1.
	p := &stubProvider{vols: map[string]core.Message{
		"/a": {Volume: 1, Elements: []core.Element{el("/b")}},
	}}
	s := New(Config{T: 300, Provider: p})
	res := s.Run(trace.Log{
		rec(100, "p1", "/a"),
		rec(120, "p1", "/a"),
		rec(200, "p1", "/b"),
	})
	if res.TotalPredictions != 1 {
		t.Fatalf("TotalPredictions = %d, want 1 (merged)", res.TotalPredictions)
	}
	if res.FulfilledPredictions != 1 {
		t.Fatalf("FulfilledPredictions = %d", res.FulfilledPredictions)
	}
	if got := res.TruePredictionFraction(); got != 1.0 {
		t.Errorf("TruePredictionFraction = %v", got)
	}
}

func TestFalsePredictionsCounted(t *testing.T) {
	p := &stubProvider{vols: map[string]core.Message{
		"/a": {Volume: 1, Elements: []core.Element{el("/b"), el("/c")}},
	}}
	s := New(Config{T: 300, Provider: p})
	res := s.Run(trace.Log{
		rec(100, "p1", "/a"),
		rec(200, "p1", "/b"), // /c never requested
	})
	if res.TotalPredictions != 2 || res.FulfilledPredictions != 1 {
		t.Fatalf("Total=%d Fulfilled=%d, want 2/1", res.TotalPredictions, res.FulfilledPredictions)
	}
	if got := res.TruePredictionFraction(); got != 0.5 {
		t.Errorf("TruePredictionFraction = %v", got)
	}
}

func TestUpdateFractionWindows(t *testing.T) {
	// /b requested at t=100 (goes into cache), again at t=1000: the
	// second request is predicted (piggyback at 900) and its previous
	// occurrence is 900s ago — within C, beyond T => UpdatedTC.
	p := &stubProvider{vols: map[string]core.Message{
		"/a": {Volume: 1, Elements: []core.Element{el("/b")}},
	}}
	s := New(Config{T: 300, C: 7200, Provider: p})
	res := s.Run(trace.Log{
		rec(100, "p1", "/b"),
		rec(900, "p1", "/a"),
		rec(1000, "p1", "/b"),
	})
	if res.Predicted != 1 {
		t.Fatalf("Predicted = %d", res.Predicted)
	}
	if res.UpdateEvents != 1 || res.UpdatedTC != 1 {
		t.Errorf("UpdateEvents=%d UpdatedTC=%d", res.UpdateEvents, res.UpdatedTC)
	}
	if res.PrevWithinC != 1 || res.PrevWithinT != 0 {
		t.Errorf("PrevWithinC=%d PrevWithinT=%d", res.PrevWithinC, res.PrevWithinT)
	}
}

func TestPrevWithinTCounting(t *testing.T) {
	p := &stubProvider{vols: map[string]core.Message{}}
	s := New(Config{T: 300, C: 7200, Provider: p})
	res := s.Run(trace.Log{
		rec(100, "p1", "/x"),
		rec(200, "p1", "/x"),   // 100s: within T and C
		rec(5000, "p1", "/x"),  // 4800s: within C only
		rec(99999, "p1", "/x"), // beyond C
	})
	if res.PrevWithinT != 1 {
		t.Errorf("PrevWithinT = %d, want 1", res.PrevWithinT)
	}
	if res.PrevWithinC != 2 {
		t.Errorf("PrevWithinC = %d, want 2", res.PrevWithinC)
	}
}

func TestRPVSuppressesRepeatPiggybacks(t *testing.T) {
	p := &stubProvider{vols: map[string]core.Message{
		"/a": {Volume: 1, Elements: []core.Element{el("/b")}},
	}}
	s := New(Config{T: 300, Provider: p, UseRPV: true, RPVTimeout: 60})
	res := s.Run(trace.Log{
		rec(100, "p1", "/a"),
		rec(110, "p1", "/a"), // within RPV timeout: suppressed
		rec(200, "p1", "/a"), // after timeout: piggybacked again
	})
	if res.PiggybackMessages != 2 {
		t.Errorf("PiggybackMessages = %d, want 2", res.PiggybackMessages)
	}
}

func TestRPVIsPerSource(t *testing.T) {
	p := &stubProvider{vols: map[string]core.Message{
		"/a": {Volume: 1, Elements: []core.Element{el("/b")}},
	}}
	s := New(Config{T: 300, Provider: p, UseRPV: true, RPVTimeout: 600})
	res := s.Run(trace.Log{
		rec(100, "p1", "/a"),
		rec(110, "p2", "/a"), // different proxy: gets its own piggyback
	})
	if res.PiggybackMessages != 2 {
		t.Errorf("PiggybackMessages = %d, want 2", res.PiggybackMessages)
	}
}

func TestFeedCallsObserve(t *testing.T) {
	p := &stubProvider{vols: map[string]core.Message{}}
	New(Config{Provider: p, Feed: true}).Run(trace.Log{rec(1, "p1", "/a"), rec(2, "p1", "/b")})
	if p.observed != 2 {
		t.Errorf("observed = %d, want 2", p.observed)
	}
	p2 := &stubProvider{vols: map[string]core.Message{}}
	New(Config{Provider: p2, Feed: false}).Run(trace.Log{rec(1, "p1", "/a")})
	if p2.observed != 0 {
		t.Errorf("observed = %d, want 0 without Feed", p2.observed)
	}
}

func TestPiggybackCostAccounting(t *testing.T) {
	msg := core.Message{Volume: 1, Elements: []core.Element{el("/b"), el("/c")}}
	p := &stubProvider{vols: map[string]core.Message{"/a": msg}}
	s := New(Config{T: 300, Provider: p})
	res := s.Run(trace.Log{rec(100, "p1", "/a")})
	if res.PiggybackMessages != 1 || res.PiggybackElements != 2 {
		t.Fatalf("messages=%d elements=%d", res.PiggybackMessages, res.PiggybackElements)
	}
	if res.PiggybackBytes != int64(msg.WireBytes()) {
		t.Errorf("bytes = %d, want %d", res.PiggybackBytes, msg.WireBytes())
	}
	if got := res.AvgPiggybackSize(); got != 2 {
		t.Errorf("AvgPiggybackSize = %v", got)
	}
}

func TestResultRatiosEmpty(t *testing.T) {
	var r Result
	if r.FractionPredicted() != 0 || r.TruePredictionFraction() != 0 || r.AvgPiggybackSize() != 0 {
		t.Error("empty result ratios should be 0")
	}
}

func TestSimulatorEndToEndWithDirVolumes(t *testing.T) {
	// Integration: directory volumes fed online; a page and its image
	// requested twice by the same proxy. The second image access should
	// be predicted by the piggyback on the second page access.
	d := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true})
	s := New(Config{T: 300, Provider: d, Feed: true})
	res := s.Run(trace.Log{
		rec(100, "p1", "/a/page.html"),
		rec(102, "p1", "/a/img.gif"),
		rec(1000, "p1", "/a/page.html"), // piggyback includes img
		rec(1002, "p1", "/a/img.gif"),   // predicted
	})
	if res.Predicted < 1 {
		t.Errorf("Predicted = %d, want >= 1", res.Predicted)
	}
	if res.PiggybackMessages == 0 {
		t.Error("no piggybacks generated")
	}
}

func TestAnalyzeLocality(t *testing.T) {
	log := trace.Log{
		{Time: 0, Client: "c1", URL: "www.x.com/a/p.html"},
		{Time: 10, Client: "c2", URL: "www.x.com/a/q.html"},
		{Time: 30, Client: "c1", URL: "www.x.com/b/r.html"},
		{Time: 40, Client: "c1", URL: "www.y.com/a/s.html"},
	}
	stats := AnalyzeLocality(log, []int{0, 1}, true)
	// Level 0: prefixes x.com (3 requests) and y.com (1). Seen before:
	// requests 2 and 3 (x.com repeats) => 2/4.
	if got := stats[0].SeenBefore; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("level0 SeenBefore = %v, want 0.5", got)
	}
	// Level 1: x.com/a repeats once => 1/4.
	if got := stats[1].SeenBefore; math.Abs(got-0.25) > 1e-9 {
		t.Errorf("level1 SeenBefore = %v, want 0.25", got)
	}
	// Level-0 interarrivals: 10 (a->a), 20 (a->b), 10? x.com seq times
	// 0,10,30 => gaps 10, 20. Median 15.
	if got := stats[0].MedianInterarrival; math.Abs(got-15) > 1e-9 {
		t.Errorf("level0 median = %v, want 15", got)
	}
	if got := stats[1].PredictableWithin(10); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("PredictableWithin(10) = %v", got)
	}
}

func TestAnalyzeLocalityExcludesEmbedded(t *testing.T) {
	log := trace.Log{
		{Time: 0, Client: "c1", URL: "www.x.com/a/p.html"},
		{Time: 1, Client: "c1", URL: "www.x.com/a/i.gif", Embedded: true},
		{Time: 50, Client: "c1", URL: "www.x.com/a/q.html"},
	}
	with := AnalyzeLocality(log, []int{1}, true)
	without := AnalyzeLocality(log, []int{1}, false)
	if with[0].Requests != 3 || without[0].Requests != 2 {
		t.Fatalf("requests: with=%d without=%d", with[0].Requests, without[0].Requests)
	}
	// Excluding images lengthens the median interarrival.
	if !(without[0].MedianInterarrival > with[0].MedianInterarrival) {
		t.Errorf("median with=%v without=%v", with[0].MedianInterarrival, without[0].MedianInterarrival)
	}
}
