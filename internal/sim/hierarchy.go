package sim

import (
	"hash/fnv"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/trace"
)

// Hierarchical caching (§1: "we focus on one-level caching, though our
// techniques are applicable to the general case of hierarchical caching").
// ReplayHierarchy models a two-level tree: client sources hash onto child
// proxies, child misses go to one parent proxy, parent misses go to the
// origin. Piggybacks generated at the origin flow to the parent and are
// propagated down to the requesting child, freshening cached copies at
// both levels so fewer requests need validation.

// HierarchyConfig parameterizes the replay.
type HierarchyConfig struct {
	// Children is the number of child proxies; zero means 4.
	Children int
	// ChildCapacity and ParentCapacity are cache sizes in bytes.
	ChildCapacity, ParentCapacity int64
	// NewPolicy constructs a replacement policy per cache; nil = LRU.
	NewPolicy func() cache.Policy
	// Provider is the origin's volume engine (fed online); nil disables
	// piggybacking.
	Provider core.Provider
	// Delta is the freshness interval in seconds; zero means 900.
	Delta int64
	// T is the prediction/refresh window; zero means 300.
	T int64
	// Filter is attached (with the parent's RPV list) to origin fetches.
	Filter core.Filter
	// RPVTimeout paces origin piggybacks to the parent; zero disables.
	RPVTimeout int64
}

// HierarchyResult reports the replay.
type HierarchyResult struct {
	Requests int
	// ChildHits were served fresh at a child; ParentHits fresh at the
	// parent (after a child miss); OriginFetches reached the origin.
	ChildHits, ParentHits, OriginFetches int
	// Validations are requests that found only a stale copy and had to
	// revalidate at the origin.
	Validations int
	// Refreshes counts cache entries (parent or child) freshened by a
	// piggyback; AvoidedValidations counts requests served fresh from a
	// copy whose freshness came from a piggyback rather than a fetch.
	Refreshes          int
	AvoidedValidations int
	PiggybackMessages  int
	PiggybackElements  int
}

// ChildHitRate returns fresh child hits over all requests.
func (r HierarchyResult) ChildHitRate() float64 { return ratio(r.ChildHits, r.Requests) }

// ParentHitRate returns fresh parent hits over child misses.
func (r HierarchyResult) ParentHitRate() float64 {
	return ratio(r.ParentHits, r.Requests-r.ChildHits)
}

// OriginLoad returns origin contacts (fetches + validations) over requests.
func (r HierarchyResult) OriginLoad() float64 {
	return ratio(r.OriginFetches+r.Validations, r.Requests)
}

type hierEntry struct {
	// piggybackFresh marks entries whose current freshness was granted
	// by a piggyback, to attribute later fresh hits.
	piggybackFresh bool
}

// ReplayHierarchy replays the log through the two-level tree.
func ReplayHierarchy(log trace.Log, cfg HierarchyConfig) HierarchyResult {
	if cfg.Children <= 0 {
		cfg.Children = 4
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 900
	}
	if cfg.T <= 0 {
		cfg.T = 300
	}
	if cfg.NewPolicy == nil {
		cfg.NewPolicy = func() cache.Policy { return cache.LRU{} }
	}
	if cfg.ChildCapacity <= 0 {
		cfg.ChildCapacity = 16 << 20
	}
	if cfg.ParentCapacity <= 0 {
		cfg.ParentCapacity = 64 << 20
	}

	children := make([]*cache.Cache, cfg.Children)
	marks := make([]map[string]*hierEntry, cfg.Children)
	for i := range children {
		children[i] = cache.New(cfg.ChildCapacity, cfg.NewPolicy())
		marks[i] = make(map[string]*hierEntry)
	}
	parent := cache.New(cfg.ParentCapacity, cfg.NewPolicy())
	parentMarks := make(map[string]*hierEntry)
	var parentRPV *core.RPVList
	if cfg.RPVTimeout > 0 {
		parentRPV = core.NewRPVList(cfg.RPVTimeout, 0)
	}

	var res HierarchyResult
	sizes := make(map[string]int64)

	childOf := func(src string) int {
		h := fnv.New32a()
		h.Write([]byte(src))
		return int(h.Sum32() % uint32(cfg.Children))
	}

	mark := func(m map[string]*hierEntry, url string) *hierEntry {
		e, ok := m[url]
		if !ok {
			e = &hierEntry{}
			m[url] = e
		}
		return e
	}

	for i := range log {
		rec := &log[i]
		now := rec.Time
		url := rec.URL
		size := rec.Size
		if size <= 0 {
			size = sizes[url]
			if size <= 0 {
				size = 1
			}
		} else {
			sizes[url] = size
		}
		res.Requests++
		ci := childOf(rec.Client)
		child := children[ci]

		// 1. Child level.
		if e, ok := child.Get(url, now); ok && e.Fresh(now) {
			res.ChildHits++
			if m := marks[ci][url]; m != nil && m.piggybackFresh {
				res.AvoidedValidations++
			}
			continue
		}

		// 2. Parent level.
		if e, ok := parent.Get(url, now); ok && e.Fresh(now) {
			res.ParentHits++
			if m := parentMarks[url]; m != nil && m.piggybackFresh {
				res.AvoidedValidations++
			}
			// Copy down.
			child.Put(cache.Entry{URL: url, Size: size, LastModified: e.LastModified, Expires: e.Expires}, now)
			mark(marks[ci], url).piggybackFresh = false
			continue
		}

		// 3. Origin: a fetch (miss) or validation (stale copy anywhere).
		_, childStale := child.Peek(url)
		_, parentStale := parent.Peek(url)
		if childStale || parentStale {
			res.Validations++
		} else {
			res.OriginFetches++
		}
		expires := now + cfg.Delta
		parent.Put(cache.Entry{URL: url, Size: size, LastModified: rec.LastModified, Expires: expires}, now)
		parentMarks[url] = &hierEntry{}
		child.Put(cache.Entry{URL: url, Size: size, LastModified: rec.LastModified, Expires: expires}, now)
		mark(marks[ci], url).piggybackFresh = false

		if cfg.Provider == nil {
			continue
		}
		cfg.Provider.Observe(core.Access{Source: "parent", Time: now,
			Element: core.Element{URL: url, Size: size, LastModified: rec.LastModified}})
		f := cfg.Filter
		if parentRPV != nil {
			f.RPV = parentRPV.Snapshot(now)
		}
		m, ok := cfg.Provider.Piggyback(url, now, f)
		if !ok {
			continue
		}
		res.PiggybackMessages++
		res.PiggybackElements += len(m.Elements)
		if parentRPV != nil {
			parentRPV.Note(m.Volume, now)
		}
		for _, el := range m.Elements {
			// Freshen (or invalidate) at the parent and at the
			// requesting child — the piggyback's reach in a
			// hierarchy.
			refresh := func(c *cache.Cache, mk map[string]*hierEntry) {
				e, ok := c.Peek(el.URL)
				if !ok {
					return
				}
				if el.LastModified > e.LastModified {
					c.Delete(el.URL)
					delete(mk, el.URL)
					return
				}
				if c.Freshen(el.URL, now+cfg.Delta) {
					res.Refreshes++
					mark(mk, el.URL).piggybackFresh = true
				}
			}
			refresh(parent, parentMarks)
			refresh(child, marks[ci])
		}
	}
	return res
}
