package proxy

import (
	"testing"
	"time"

	"piggyback/internal/obs"
)

// testBreaker returns a breaker with an injectable clock. The returned
// advance function moves the clock forward.
func testBreaker(t *testing.T, cfg breakerSettings) (*breaker, func(time.Duration)) {
	t.Helper()
	b := newBreaker(cfg, obs.NewRegistry(), "", 1)
	now := time.Unix(1_000_000, 0)
	b.now = func() time.Time { return now }
	return b, func(d time.Duration) { now = now.Add(d) }
}

func TestBreakerNilIsTransparent(t *testing.T) {
	var b *breaker
	if !b.Allow("h") {
		t.Fatal("nil breaker denied a request")
	}
	b.Success("h")
	b.Failure("h")
	if b.OpenHosts() != 0 {
		t.Fatal("nil breaker reports open hosts")
	}
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := testBreaker(t, breakerSettings{failures: 3, backoff: time.Second})
	for i := 0; i < 2; i++ {
		if !b.Allow("h") {
			t.Fatalf("denied while closed after %d failures", i)
		}
		b.Failure("h")
	}
	if b.OpenHosts() != 0 {
		t.Fatal("tripped before threshold")
	}
	b.Failure("h") // third consecutive failure trips
	if b.OpenHosts() != 1 {
		t.Fatalf("OpenHosts = %d after threshold, want 1", b.OpenHosts())
	}
	if b.opens.Load() != 1 {
		t.Fatalf("opens counter = %d, want 1", b.opens.Load())
	}
	if b.Allow("h") {
		t.Fatal("open circuit allowed a request inside the backoff window")
	}
	if b.shortCircuits.Load() != 1 {
		t.Fatalf("shortCircuits = %d, want 1", b.shortCircuits.Load())
	}
	// Other hosts are unaffected.
	if !b.Allow("other") {
		t.Fatal("unrelated host denied")
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := testBreaker(t, breakerSettings{failures: 3, backoff: time.Second})
	b.Failure("h")
	b.Failure("h")
	b.Success("h") // breaks the consecutive run
	b.Failure("h")
	b.Failure("h")
	if b.OpenHosts() != 0 {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Failure("h")
	if b.OpenHosts() != 1 {
		t.Fatal("three consecutive failures after reset did not trip")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, advance := testBreaker(t, breakerSettings{failures: 1, backoff: time.Second})
	b.Failure("h")
	if b.Allow("h") {
		t.Fatal("allowed during open window")
	}
	// Jitter caps the window at 1.5× backoff; past that a probe is let in.
	advance(1500 * time.Millisecond)
	if !b.Allow("h") {
		t.Fatal("no probe admitted after backoff elapsed")
	}
	// Only ONE probe: concurrent requests still short-circuit.
	if b.Allow("h") {
		t.Fatal("second concurrent probe admitted")
	}
	b.Success("h")
	if b.OpenHosts() != 0 {
		t.Fatalf("OpenHosts = %d after successful probe, want 0", b.OpenHosts())
	}
	if !b.Allow("h") {
		t.Fatal("closed circuit denied a request")
	}
}

func TestBreakerFailedProbeDoublesBackoff(t *testing.T) {
	b, advance := testBreaker(t, breakerSettings{failures: 1, backoff: time.Second, maxBackoff: 3 * time.Second})
	b.Failure("h")
	advance(1500 * time.Millisecond)
	if !b.Allow("h") {
		t.Fatal("no probe admitted")
	}
	b.Failure("h") // probe fails: backoff doubles to 2s
	if got := b.hosts["h"].backoff; got != 2*time.Second {
		t.Fatalf("backoff after failed probe = %v, want 2s", got)
	}
	if b.OpenHosts() != 1 {
		t.Fatalf("OpenHosts = %d after failed probe, want 1 (still tripped)", b.OpenHosts())
	}
	if b.opens.Load() != 2 {
		t.Fatalf("opens = %d, want 2 (initial trip + re-open)", b.opens.Load())
	}
	// Minimum jitter is 0.5×: 2s backoff can open as soon as 1s out.
	if b.Allow("h") {
		t.Fatal("re-opened circuit allowed immediately")
	}
	advance(3 * time.Second) // past 1.5×2s
	if !b.Allow("h") {
		t.Fatal("no probe after doubled backoff elapsed")
	}
	b.Failure("h") // doubles to 4s, capped at maxBackoff=3s
	if got := b.hosts["h"].backoff; got != 3*time.Second {
		t.Fatalf("backoff = %v, want capped 3s", got)
	}
	advance(5 * time.Second)
	if !b.Allow("h") {
		t.Fatal("no probe after capped backoff")
	}
	b.Success("h")
	if b.OpenHosts() != 0 || b.openGauge.Load() != 0 {
		t.Fatal("gauge not cleared after recovery")
	}
}

func TestBreakerStragglerFailureWhileOpen(t *testing.T) {
	// A failure reported by an exchange that was already in flight when the
	// circuit tripped must not extend or double the window.
	b, _ := testBreaker(t, breakerSettings{failures: 1, backoff: time.Second})
	b.Failure("h")
	until := b.hosts["h"].openUntil
	b.Failure("h") // straggler
	if got := b.hosts["h"].openUntil; !got.Equal(until) {
		t.Fatalf("straggler moved openUntil from %v to %v", until, got)
	}
	if got := b.hosts["h"].backoff; got != time.Second {
		t.Fatalf("straggler changed backoff: %v", got)
	}
	if b.opens.Load() != 1 {
		t.Fatalf("straggler re-counted an open: opens = %d", b.opens.Load())
	}
}

func TestBreakerJitterWithinBounds(t *testing.T) {
	// The open window must land in [0.5×, 1.5×) of the nominal backoff.
	for seed := int64(1); seed <= 20; seed++ {
		b := newBreaker(breakerSettings{failures: 1, backoff: time.Second}, obs.NewRegistry(), "", seed)
		now := time.Unix(1_000_000, 0)
		b.now = func() time.Time { return now }
		b.Failure("h")
		win := b.hosts["h"].openUntil.Sub(now)
		if win < 500*time.Millisecond || win >= 1500*time.Millisecond {
			t.Fatalf("seed %d: open window %v outside [0.5s, 1.5s)", seed, win)
		}
	}
}
