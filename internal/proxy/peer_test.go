package proxy

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/httpwire"
	"piggyback/internal/server"
)

// fleet wires N meshed proxies in front of one origin over loopback, with
// a shared controllable clock.
type fleet struct {
	origin     *server.Server
	originAddr string
	store      *server.Store
	px         []*Proxy
	srvs       []*httpwire.Server
	ls         []net.Listener
	addrs      []string
	client     *httpwire.Client
	now        int64
}

func newFleet(t *testing.T, n int, cfg Config) *fleet {
	t.Helper()
	f := &fleet{now: 10000}
	clock := func() int64 { return f.now }

	f.store = server.NewStore()
	f.store.Put(server.Resource{URL: "/a/x.html", Size: 100, LastModified: 1000})
	f.store.Put(server.Resource{URL: "/a/y.gif", Size: 50, LastModified: 1500})
	f.store.Put(server.Resource{URL: "/a/big.pdf", Size: 5000, LastModified: 1200})
	for i := 0; i < 6; i++ {
		f.store.Put(server.Resource{URL: fmt.Sprintf("/a/r%d.html", i), Size: 200, LastModified: 1100})
	}
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true})
	f.origin = server.New(f.store, vols, clock)

	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: f.origin}
	go osrv.Serve(ol)
	t.Cleanup(func() { osrv.Close() })
	originAddr := ol.Addr().String()
	f.originAddr = originAddr

	// Bind every proxy's listener first: the ring is built over the
	// advertised addresses, which must be known before New.
	f.ls = make([]net.Listener, n)
	for i := range f.ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.ls[i] = l
		f.addrs = append(f.addrs, l.Addr().String())
	}
	for i := 0; i < n; i++ {
		c := cfg
		c.Clock = clock
		c.Resolve = func(host string) (string, error) { return originAddr, nil }
		c.PeerSelf = f.addrs[i]
		c.Peers = f.addrs
		p := New(c)
		f.px = append(f.px, p)
		t.Cleanup(p.Close)
		srv := &httpwire.Server{Handler: p, IdleTimeout: 5 * time.Second}
		f.srvs = append(f.srvs, srv)
		go srv.Serve(f.ls[i])
		t.Cleanup(func() { srv.Close() })
	}

	f.client = httpwire.NewClient()
	t.Cleanup(f.client.Close)
	return f
}

// get issues a client request through proxy i (absolute-URI form).
func (f *fleet) get(t *testing.T, i int, url string) *httpwire.Response {
	t.Helper()
	resp, err := f.client.DoContext(context.Background(), f.addrs[i], httpwire.NewRequest("GET", "http://"+url))
	if err != nil {
		t.Fatalf("request for %s via proxy %d: %v", url, i, err)
	}
	return resp
}

// ownerIndex returns which fleet member owns key on the ring.
func (f *fleet) ownerIndex(t *testing.T, key string) int {
	t.Helper()
	owner := f.px[0].PeerRing().Owner(key)
	for i, a := range f.addrs {
		if a == owner {
			return i
		}
	}
	t.Fatalf("owner %q of %q is not a fleet member", owner, key)
	return -1
}

func TestMeshForwardServesPeerAndCachesLocally(t *testing.T) {
	f := newFleet(t, 3, Config{Delta: 600})
	const key = "www.site.com/a/x.html"
	o := f.ownerIndex(t, key)
	r := (o + 1) % 3

	resp := f.get(t, r, key)
	if resp.Status != 200 || resp.Header.Get("X-Cache") != "PEER" {
		t.Fatalf("forwarded miss: %d %s", resp.Status, resp.Header.Get("X-Cache"))
	}
	if got := f.origin.Stats().Requests; got != 1 {
		t.Errorf("origin requests = %d, want 1 (owner fetches once)", got)
	}
	st := f.px[r].Stats()
	if st.PeerForwards != 1 || st.PeerServes != 1 || st.PeerFallbacks != 0 {
		t.Errorf("requester peer stats = %+v", st)
	}
	if got := f.px[o].Stats().PeerRequestsServed; got != 1 {
		t.Errorf("owner PeerRequestsServed = %d, want 1", got)
	}

	// Both sides cached the body: re-requests are local fresh hits and
	// cost the origin nothing.
	f.now += 10
	if got := f.get(t, r, key).Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("requester re-request = %s, want HIT", got)
	}
	if got := f.get(t, o, key).Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("owner re-request = %s, want HIT", got)
	}
	if got := f.origin.Stats().Requests; got != 1 {
		t.Errorf("origin requests after hits = %d, want 1", got)
	}
}

func TestMeshPeerMarkedRequestNotReforwarded(t *testing.T) {
	f := newFleet(t, 3, Config{Delta: 600})
	const key = "www.site.com/a/x.html"
	o := f.ownerIndex(t, key)
	r := (o + 1) % 3

	// A peer-marked request landing on a proxy that does NOT own the key
	// (as happens briefly when rings disagree) must be served locally,
	// never bounced onward.
	req := httpwire.NewRequest("GET", "http://"+key)
	httpwire.SetPeerFrom(req, f.addrs[o])
	resp, err := f.client.DoContext(context.Background(), f.addrs[r], req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("peer-marked request: %d %s, want 200 MISS (served locally)", resp.Status, resp.Header.Get("X-Cache"))
	}
	st := f.px[r].Stats()
	if st.PeerForwards != 0 {
		t.Errorf("peer-marked request was re-forwarded: %+v", st)
	}
	if st.PeerRequestsServed != 1 {
		t.Errorf("PeerRequestsServed = %d, want 1", st.PeerRequestsServed)
	}
}

func TestMeshDeadOwnerFallsBackToOrigin(t *testing.T) {
	f := newFleet(t, 3, Config{Delta: 600})
	const key = "www.site.com/a/x.html"
	o := f.ownerIndex(t, key)
	r := (o + 1) % 3

	// The owner dies. Close the listener too: Server.Close skips it when
	// the Serve goroutine hasn't registered it yet, and a kernel-accepted
	// but never-served connection would stall the forward until the peer
	// timeout instead of refusing instantly.
	f.srvs[o].Close()
	f.ls[o].Close()

	resp := f.get(t, r, key)
	if resp.Status != 200 || resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("with dead owner: %d %s, want 200 MISS via origin", resp.Status, resp.Header.Get("X-Cache"))
	}
	st := f.px[r].Stats()
	if st.PeerForwards != 1 || st.PeerFallbacks != 1 || st.PeerServes != 0 {
		t.Errorf("peer stats = %+v, want one forward falling back", st)
	}
	if st.UpstreamErrors != 0 {
		t.Errorf("UpstreamErrors = %d; a peer fallback is not an origin failure", st.UpstreamErrors)
	}
}

func TestMeshPropagatesPiggybackToRecentRequester(t *testing.T) {
	f := newFleet(t, 2, Config{Delta: 600})
	const key = "www.site.com/a/x.html"
	o := f.ownerIndex(t, key)
	r := 1 - o

	// Warm the origin's /a/ volume with a direct (non-proxied) exchange:
	// dir volumes learn members from served requests, and the requested
	// URL itself is excluded from its own piggyback, so the volume must
	// already hold another member for x.html's response to carry one.
	wreq := httpwire.NewRequest("GET", "/a/y.gif")
	wreq.Header.Set("Host", "www.site.com")
	httpwire.SetFilter(wreq, core.Filter{})
	if _, err := f.client.DoContext(context.Background(), f.originAddr, wreq); err != nil {
		t.Fatal(err)
	}

	// r routes a miss to owner o; o's origin exchange carries a P-Volume
	// trailer, which o re-propagates to r (its one recent requester).
	if got := f.get(t, r, key).Header.Get("X-Cache"); got != "PEER" {
		t.Fatalf("forwarded miss = %s, want PEER", got)
	}

	// The receiver counts before the sender's exchange returns, so wait
	// for both sides.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) &&
		(f.px[r].Stats().PeerPropagationsReceived == 0 || f.px[o].Stats().PeerPropagationsSent == 0) {
		time.Sleep(5 * time.Millisecond)
	}
	rs := f.px[r].Stats()
	if rs.PeerPropagationsReceived == 0 {
		t.Fatalf("requester never received the propagated piggyback: %+v", rs)
	}
	// The propagated message went through the ordinary piggyback
	// processing path even though r itself never spoke to the origin.
	if rs.PiggybacksReceived == 0 || rs.PiggybackElements == 0 {
		t.Errorf("propagated message not processed: %+v", rs)
	}
	if os := f.px[o].Stats(); os.PeerPropagationsSent == 0 {
		t.Errorf("owner sent no propagation: %+v", os)
	}
}

func TestMeshDisabledConfigs(t *testing.T) {
	clock := func() int64 { return 0 }
	res := func(string) (string, error) { return "", nil }
	for name, cfg := range map[string]Config{
		"no self":    {Clock: clock, Resolve: res, Peers: []string{"a:1", "b:1"}},
		"self alone": {Clock: clock, Resolve: res, PeerSelf: "a:1", Peers: []string{"a:1"}},
	} {
		p := New(cfg)
		if p.PeerRing() != nil {
			t.Errorf("%s: mesh unexpectedly enabled", name)
		}
		p.Close()
	}
}

func TestMeshConcurrentFleetHammer(t *testing.T) {
	f := newFleet(t, 3, Config{Delta: 600})
	urls := []string{
		"www.site.com/a/x.html", "www.site.com/a/y.gif", "www.site.com/a/big.pdf",
		"www.site.com/a/r0.html", "www.site.com/a/r1.html", "www.site.com/a/r2.html",
		"www.site.com/a/r3.html", "www.site.com/a/r4.html", "www.site.com/a/r5.html",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := httpwire.NewClient()
			defer cl.Close()
			for i := 0; i < 40; i++ {
				u := urls[(g*7+i)%len(urls)]
				resp, err := cl.DoContext(context.Background(), f.addrs[(g+i)%len(f.addrs)], httpwire.NewRequest("GET", "http://"+u))
				if err != nil {
					errs <- fmt.Sprintf("goroutine %d: %v", g, err)
					return
				}
				if resp.Status != 200 {
					errs <- fmt.Sprintf("goroutine %d: status %d for %s", g, resp.Status, u)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// The mesh actually routed: someone forwarded, someone served.
	var forwards, serves int
	for _, p := range f.px {
		st := p.Stats()
		forwards += st.PeerForwards
		serves += st.PeerServes
	}
	if forwards == 0 || serves == 0 {
		t.Errorf("hammer never exercised the mesh: forwards=%d serves=%d", forwards, serves)
	}
}
