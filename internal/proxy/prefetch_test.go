package proxy

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

func TestInformedQueueSmallestFirst(t *testing.T) {
	q := NewInformedQueue()
	q.Push(FetchItem{Host: "h", URL: "/big", Size: 5000})
	q.Push(FetchItem{Host: "h", URL: "/small", Size: 10})
	q.Push(FetchItem{Host: "h", URL: "/mid", Size: 500})
	want := []string{"/small", "/mid", "/big"}
	for _, w := range want {
		it, ok := q.Pop()
		if !ok || it.URL != w {
			t.Fatalf("Pop = %+v, want %s", it, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop from empty queue")
	}
}

func TestInformedQueueDedup(t *testing.T) {
	q := NewInformedQueue()
	if !q.Push(FetchItem{Host: "h", URL: "/x", Size: 1}) {
		t.Fatal("first push rejected")
	}
	if q.Push(FetchItem{Host: "h", URL: "/x", Size: 1}) {
		t.Fatal("duplicate push accepted")
	}
	if q.Len() != 1 || !q.Contains("h/x") {
		t.Errorf("len=%d", q.Len())
	}
	q.Pop()
	if !q.Push(FetchItem{Host: "h", URL: "/x", Size: 1}) {
		t.Error("re-push after pop rejected")
	}
}

func TestInformedQueueOverflowDropsLargest(t *testing.T) {
	q := NewInformedQueue()
	q.MaxLen = 3
	q.Push(FetchItem{Host: "h", URL: "/a", Size: 100})
	q.Push(FetchItem{Host: "h", URL: "/b", Size: 300})
	q.Push(FetchItem{Host: "h", URL: "/c", Size: 200})
	// Queue full; a smaller item displaces the largest (/b).
	if !q.Push(FetchItem{Host: "h", URL: "/d", Size: 50}) {
		t.Fatal("small item rejected on overflow")
	}
	if q.Contains("h/b") {
		t.Error("largest item not dropped")
	}
	// A larger-than-everything item is rejected.
	if q.Push(FetchItem{Host: "h", URL: "/e", Size: 999}) {
		t.Error("oversized item accepted on overflow")
	}
	if q.Len() != 3 {
		t.Errorf("len = %d, want 3", q.Len())
	}
}

func TestInformedQueueHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := NewInformedQueue()
	q.MaxLen = 4096
	for i := 0; i < 1000; i++ {
		q.Push(FetchItem{Host: "h", URL: "/r" + strconv.Itoa(i), Size: int64(rng.Intn(10000))})
	}
	last := int64(-1)
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		if it.Size < last {
			t.Fatalf("pop order not nondecreasing: %d after %d", it.Size, last)
		}
		last = it.Size
	}
}

func TestInformedQueueConcurrent(t *testing.T) {
	q := NewInformedQueue()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q.Push(FetchItem{Host: "h", URL: "/g" + strconv.Itoa(g) + "-" + strconv.Itoa(i), Size: int64(i)})
				if i%3 == 0 {
					q.Pop()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFreshnessEstimatorDefaults(t *testing.T) {
	f := NewFreshnessEstimator(600, 60, 86400)
	if d := f.Delta("/never-seen"); d != 600 {
		t.Errorf("Delta = %d, want default 600", d)
	}
	// One observation (no change yet): still default.
	f.Observe("/x", 1000)
	if d := f.Delta("/x"); d != 600 {
		t.Errorf("Delta after single obs = %d", d)
	}
}

func TestFreshnessEstimatorLearnsChangeRate(t *testing.T) {
	f := NewFreshnessEstimator(600, 10, 86400)
	f.Observe("/x", 1000)
	f.Observe("/x", 1200) // change interval 200
	if d := f.Delta("/x"); d != 100 {
		t.Errorf("Delta = %d, want 100 (half of 200)", d)
	}
	if f.ChangeCount("/x") != 1 {
		t.Errorf("ChangeCount = %d", f.ChangeCount("/x"))
	}
	// Stale or equal Last-Modified values are ignored.
	f.Observe("/x", 1100)
	f.Observe("/x", 1200)
	if f.ChangeCount("/x") != 1 {
		t.Error("non-increasing LM counted as change")
	}
}

func TestFreshnessEstimatorClamps(t *testing.T) {
	f := NewFreshnessEstimator(600, 100, 1000)
	f.Observe("/fast", 1000)
	f.Observe("/fast", 1010) // interval 10 => Δ=5, clamped up to 100
	if d := f.Delta("/fast"); d != 100 {
		t.Errorf("Delta = %d, want clamped 100", d)
	}
	f.Observe("/slow", 1000)
	f.Observe("/slow", 1000000) // huge interval, clamped down to 1000
	if d := f.Delta("/slow"); d != 1000 {
		t.Errorf("Delta = %d, want clamped 1000", d)
	}
	if f.Tracked() != 2 {
		t.Errorf("Tracked = %d", f.Tracked())
	}
}

func TestFreshnessEstimatorEWMA(t *testing.T) {
	f := NewFreshnessEstimator(600, 1, 1<<40)
	f.Observe("/x", 1000)
	f.Observe("/x", 1100) // first change: ewma = 100
	f.Observe("/x", 1300) // interval 200: ewma = 0.3*200 + 0.7*100 = 130
	if d := f.Delta("/x"); d != 65 {
		t.Errorf("Delta = %d, want 65 (ewma 130 / 2)", d)
	}
}

func TestFreshnessEstimatorIgnoresZero(t *testing.T) {
	f := NewFreshnessEstimator(600, 1, 1<<40)
	f.Observe("/x", 0)
	if f.Tracked() != 0 {
		t.Error("zero Last-Modified tracked")
	}
}
