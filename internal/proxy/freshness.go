package proxy

import "sync"

// FreshnessEstimator implements the adaptive freshness interval of §4:
// "Since the piggyback includes the Last-Modified time of each resource,
// the proxy can estimate and record how often the resource changes... the
// proxy can use the rate-of-change information to... select an appropriate
// freshness interval (Δ) for that resource."
//
// For each resource it tracks an exponentially weighted mean of the
// observed intervals between Last-Modified changes and derives Δ as a
// configurable fraction of that interval, clamped to [Min, Max].
type FreshnessEstimator struct {
	// Default is Δ for resources with no change observations yet.
	Default int64
	// Min and Max clamp the adaptive interval.
	Min, Max int64
	// Fraction of the mean change interval used as Δ; zero means 0.5 —
	// validate roughly twice per expected change.
	Fraction float64

	mu  sync.Mutex
	obs map[string]*freshObs
}

type freshObs struct {
	lastLM  int64
	ewma    float64
	changes int
}

// NewFreshnessEstimator returns an estimator with the given default Δ and
// clamp range (seconds).
func NewFreshnessEstimator(def, min, max int64) *FreshnessEstimator {
	return &FreshnessEstimator{Default: def, Min: min, Max: max, obs: make(map[string]*freshObs)}
}

// Observe records a Last-Modified value seen for url (from a response or a
// piggyback element).
func (f *FreshnessEstimator) Observe(url string, lastModified int64) {
	if lastModified <= 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	o, ok := f.obs[url]
	if !ok {
		f.obs[url] = &freshObs{lastLM: lastModified}
		return
	}
	if lastModified <= o.lastLM {
		return // same or older version: no new information
	}
	interval := float64(lastModified - o.lastLM)
	o.lastLM = lastModified
	o.changes++
	if o.changes == 1 {
		o.ewma = interval
	} else {
		const alpha = 0.3
		o.ewma = alpha*interval + (1-alpha)*o.ewma
	}
}

// Delta returns the freshness interval to assign url's cached copy.
func (f *FreshnessEstimator) Delta(url string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	o, ok := f.obs[url]
	if !ok || o.changes == 0 {
		return f.Default
	}
	frac := f.Fraction
	if frac <= 0 {
		frac = 0.5
	}
	d := int64(o.ewma * frac)
	if f.Min > 0 && d < f.Min {
		d = f.Min
	}
	if f.Max > 0 && d > f.Max {
		d = f.Max
	}
	return d
}

// ChangeCount returns how many modifications have been observed for url.
func (f *FreshnessEstimator) ChangeCount(url string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if o, ok := f.obs[url]; ok {
		return o.changes
	}
	return 0
}

// Tracked returns the number of resources with observations.
func (f *FreshnessEstimator) Tracked() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.obs)
}
