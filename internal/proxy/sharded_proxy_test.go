package proxy

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/httpwire"
)

// TestDrainPrefetchJoinsClientMissFlight pins the Peek-then-fetch fix:
// a prefetch drain and a client miss racing on one cold key must cost one
// origin exchange, with the client served from the drain's flight.
func TestDrainPrefetchJoinsClientMissFlight(t *testing.T) {
	var originReqs atomic.Int64
	leaderIn := make(chan struct{}, 1)
	release := make(chan struct{})
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		originReqs.Add(1)
		leaderIn <- struct{}{}
		<-release
		resp := httpwire.NewResponse(200)
		resp.Body = []byte("prefetched body")
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(5000))
		resp.Header.Set("Content-Type", "text/html")
		return resp
	}))

	p := New(Config{
		Delta:    600,
		Prefetch: true,
		Clock:    func() int64 { return 10_000 },
		Resolve:  func(string) (string, error) { return origin, nil },
	})
	defer p.Close()

	p.queue.Push(FetchItem{Host: "www.pf.test", URL: "/cold.html", Size: 15})

	// The drain becomes the flight leader and parks inside the origin.
	drained := make(chan int, 1)
	go func() { drained <- p.DrainPrefetchesContext(context.Background(), 1) }()
	<-leaderIn

	// A client miss for the same key arrives while the drain's fetch is
	// in flight: it must join the flight, not fetch again.
	clientDone := make(chan *httpwire.Response, 1)
	go func() { clientDone <- proxyGet(p, "www.pf.test/cold.html") }()
	time.Sleep(20 * time.Millisecond) // let the client reach the flight
	close(release)

	if got := <-drained; got != 1 {
		t.Fatalf("drain fetched %d, want 1", got)
	}
	resp := <-clientDone
	if resp.Status != 200 || string(resp.Body) != "prefetched body" {
		t.Fatalf("client: %d %q", resp.Status, resp.Body)
	}
	if resp.Header.Get("X-Cache") != "SHARED" {
		t.Fatalf("client X-Cache = %q, want SHARED", resp.Header.Get("X-Cache"))
	}
	if got := originReqs.Load(); got != 1 {
		t.Fatalf("drain + racing miss cost %d origin fetches, want 1", got)
	}
	s := p.Stats()
	if s.Prefetches != 1 || s.MissFetches != 0 || s.SingleflightShared != 1 {
		t.Fatalf("stats: prefetches=%d missFetches=%d shared=%d, want 1/0/1",
			s.Prefetches, s.MissFetches, s.SingleflightShared)
	}

	// The next client request hits the prefetched entry and counts it
	// useful exactly once.
	resp = proxyGet(p, "www.pf.test/cold.html")
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("follow-up X-Cache = %q, want HIT", resp.Header.Get("X-Cache"))
	}
	if s := p.Stats(); s.UsefulPrefetches != 1 {
		t.Fatalf("useful prefetches = %d, want 1", s.UsefulPrefetches)
	}
}

// TestDrainSkipsKeyAlreadyInFlight covers the mirror ordering: a client
// miss is already fetching when the drain reaches the same key — the drain
// must wait on that flight and issue no fetch of its own.
func TestDrainSkipsKeyAlreadyInFlight(t *testing.T) {
	var originReqs atomic.Int64
	leaderIn := make(chan struct{}, 1)
	release := make(chan struct{})
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		originReqs.Add(1)
		leaderIn <- struct{}{}
		<-release
		resp := httpwire.NewResponse(200)
		resp.Body = []byte("client body")
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(5000))
		return resp
	}))

	p := New(Config{
		Delta:    600,
		Prefetch: true,
		Clock:    func() int64 { return 10_000 },
		Resolve:  func(string) (string, error) { return origin, nil },
	})
	defer p.Close()

	clientDone := make(chan *httpwire.Response, 1)
	go func() { clientDone <- proxyGet(p, "www.pf2.test/cold.html") }()
	<-leaderIn

	p.queue.Push(FetchItem{Host: "www.pf2.test", URL: "/cold.html", Size: 11})
	drained := make(chan int, 1)
	go func() { drained <- p.DrainPrefetchesContext(context.Background(), 1) }()
	time.Sleep(20 * time.Millisecond) // let the drain reach the flight
	close(release)

	if got := <-drained; got != 0 {
		t.Fatalf("drain fetched %d for an in-flight key, want 0", got)
	}
	if resp := <-clientDone; resp.Status != 200 {
		t.Fatalf("client: %d", resp.Status)
	}
	if got := originReqs.Load(); got != 1 {
		t.Fatalf("origin fetches = %d, want 1", got)
	}
	if s := p.Stats(); s.Prefetches != 0 {
		t.Fatalf("prefetches = %d, want 0", s.Prefetches)
	}
}

// TestProxyServesContentType pins the Content-Type satellite end to end:
// the header the origin sent comes back on the miss, on fresh hits, and on
// 304-validated responses served from the cached copy.
func TestProxyServesContentType(t *testing.T) {
	const ct = "text/html; charset=utf-8"
	var validate atomic.Bool
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		if validate.Load() && req.Header.Has("If-Modified-Since") {
			return httpwire.NewResponse(304)
		}
		resp := httpwire.NewResponse(200)
		resp.Body = []byte("<html>hi</html>")
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(2000))
		resp.Header.Set("Content-Type", ct)
		return resp
	}))
	var now atomic.Int64
	now.Store(10_000)
	p := New(Config{
		Delta:   600,
		Clock:   func() int64 { return now.Load() },
		Resolve: func(string) (string, error) { return origin, nil },
	})
	defer p.Close()

	const key = "www.ct.test/page.html"
	if resp := proxyGet(p, key); resp.Header.Get("Content-Type") != ct {
		t.Fatalf("miss Content-Type = %q, want %q", resp.Header.Get("Content-Type"), ct)
	}
	resp := proxyGet(p, key)
	if resp.Header.Get("X-Cache") != "HIT" || resp.Header.Get("Content-Type") != ct {
		t.Fatalf("hit: X-Cache=%q Content-Type=%q", resp.Header.Get("X-Cache"), resp.Header.Get("Content-Type"))
	}
	validate.Store(true)
	now.Store(11_000) // past Delta: stale, must validate
	resp = proxyGet(p, key)
	if resp.Status != 200 || resp.Header.Get("Content-Type") != ct {
		t.Fatalf("304-validated: status=%d Content-Type=%q, want 200 %q",
			resp.Status, resp.Header.Get("Content-Type"), ct)
	}
	if s := p.Stats(); s.NotModified != 1 {
		t.Fatalf("not modified = %d, want 1", s.NotModified)
	}
}

// TestHitsDroppedBeyondPerHostBound covers the hits_dropped satellite: fresh
// hits past the 32-path per-host reporting bound are dropped and counted,
// and the next upstream request carries exactly the buffered 32.
func TestHitsDroppedBeyondPerHostBound(t *testing.T) {
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		resp := httpwire.NewResponse(200)
		resp.Body = []byte("x")
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(2000))
		return resp
	}))
	p := New(Config{
		Delta:      600,
		ReportHits: true,
		Clock:      func() int64 { return 10_000 },
		Resolve:    func(string) (string, error) { return origin, nil },
	})
	defer p.Close()

	const host = "www.drop.test"
	const paths = maxPendingHits + 8
	for i := 0; i < paths; i++ {
		proxyGet(p, fmt.Sprintf("%s/p%02d.html", host, i)) // warm: misses
	}
	for i := 0; i < paths; i++ {
		resp := proxyGet(p, fmt.Sprintf("%s/p%02d.html", host, i))
		if resp.Header.Get("X-Cache") != "HIT" {
			t.Fatalf("path %d not a fresh hit", i)
		}
	}
	s := p.Stats()
	if s.HitsDropped != paths-maxPendingHits {
		t.Fatalf("hits dropped = %d, want %d", s.HitsDropped, paths-maxPendingHits)
	}
	if got := p.Obs().Snapshot().Counter("proxy.hits_dropped"); got != int64(paths-maxPendingHits) {
		t.Fatalf("proxy.hits_dropped counter = %d, want %d", got, paths-maxPendingHits)
	}
	// The next miss to the host drains the buffered 32 onto its request.
	proxyGet(p, host+"/fresh-path.html")
	if s := p.Stats(); s.HitsReported != maxPendingHits {
		t.Fatalf("hits reported = %d, want %d", s.HitsReported, maxPendingHits)
	}
}

// TestProxyMixedConcurrentHammer is the tentpole's -race workout: parallel
// clients over a shared key space (fresh hits, stale validations, cold
// misses), origin responses carrying P-Volume trailers that refresh,
// invalidate, and seed prefetches, concurrent prefetch drains, and stats
// readers — all against the sharded cache with no proxy-global lock.
func TestProxyMixedConcurrentHammer(t *testing.T) {
	const keys = 30
	var originReqs atomic.Int64
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		n := originReqs.Add(1)
		if req.Header.Has("If-Modified-Since") && n%2 == 0 {
			return httpwire.NewResponse(304)
		}
		resp := httpwire.NewResponse(200)
		resp.Body = []byte("body-" + req.Path)
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(1000))
		resp.Header.Set("Content-Type", "text/plain")
		// Piggyback three elements: one refresh (old Last-Modified), one
		// invalidation (newer), one likely-uncached prefetch seed.
		httpwire.AttachPiggyback(resp, core.Message{Volume: 1, Elements: []core.Element{
			{URL: fmt.Sprintf("/r%02d.html", n%keys), LastModified: 500, Size: 40},
			{URL: fmt.Sprintf("/r%02d.html", (n+7)%keys), LastModified: 2000, Size: 40},
			{URL: fmt.Sprintf("/x%02d.html", n%11), LastModified: 900, Size: 20},
		}})
		return resp
	}))

	var now atomic.Int64
	now.Store(10_000)
	p := New(Config{
		Delta:      600,
		Prefetch:   true,
		ReportHits: true,
		// Each call advances the clock, so entries cycle fresh -> stale
		// over the run and the mix covers hits, validations, and misses.
		Clock:   func() int64 { return now.Add(3) },
		Resolve: func(string) (string, error) { return origin, nil },
	})
	defer p.Close()

	const clients, perC = 8, 200
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				url := fmt.Sprintf("www.mix.test/r%02d.html", (c*7+i)%keys)
				if resp := proxyGet(p, url); resp.Status != 200 {
					t.Errorf("client %d: status %d for %s", c, resp.Status, url)
					return
				}
			}
		}(c)
	}
	// Two drain workers and a stats reader run until the clients finish.
	var aux sync.WaitGroup
	for d := 0; d < 2; d++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-done:
					return
				default:
					p.DrainPrefetchesContext(context.Background(), 4)
					runtime.Gosched()
				}
			}
		}()
	}
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = p.Stats()
				_ = p.CacheHitRate()
				_ = p.Obs().Snapshot()
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	close(done)
	aux.Wait()

	s := p.Stats()
	if s.ClientRequests != clients*perC {
		t.Errorf("client requests = %d, want %d", s.ClientRequests, clients*perC)
	}
	if s.FreshHits == 0 || s.PiggybacksReceived == 0 || s.Invalidations == 0 {
		t.Errorf("hammer missed a mode: hits=%d piggybacks=%d invalidations=%d",
			s.FreshHits, s.PiggybacksReceived, s.Invalidations)
	}
}
