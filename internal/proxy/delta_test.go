package proxy

import (
	"testing"

	"piggyback/internal/server"
)

// deltaTestbed uses a large resource so delta responses pay off.
func deltaTestbed(t *testing.T, deltaOn bool) *testbed {
	tb := newTestbed(t, Config{Delta: 600, DeltaEncoding: deltaOn})
	tb.store.Put(server.Resource{URL: "/a/big-page.html", Size: 16384, LastModified: 1000})
	return tb
}

func TestDeltaEncodingEndToEnd(t *testing.T) {
	tb := deltaTestbed(t, true)
	r1 := tb.get(t, "www.site.com/a/big-page.html")
	if r1.Status != 200 || len(r1.Body) != 16384 {
		t.Fatalf("initial fetch: %d, %d bytes", r1.Status, len(r1.Body))
	}

	// The resource changes; the stale validation should come back as a
	// small delta rather than a full body.
	tb.store.Modify("/a/big-page.html", 5000, 0)
	tb.now += 700
	r2 := tb.get(t, "www.site.com/a/big-page.html")
	if r2.Status != 200 {
		t.Fatalf("status = %d", r2.Status)
	}
	if len(r2.Body) != 16384 {
		t.Fatalf("reconstructed body = %d bytes, want 16384", len(r2.Body))
	}
	if lm, _ := r2.LastModified(); lm != 5000 {
		t.Errorf("Last-Modified = %d, want 5000", lm)
	}

	ps := tb.proxy.Stats()
	if ps.DeltaUpdates != 1 {
		t.Fatalf("DeltaUpdates = %d: %+v", ps.DeltaUpdates, ps)
	}
	if ps.DeltaBytesSaved <= 0 {
		t.Errorf("DeltaBytesSaved = %d", ps.DeltaBytesSaved)
	}
	os := tb.origin.Stats()
	if os.DeltasSent != 1 || os.DeltaBytesSaved <= 0 {
		t.Errorf("origin delta stats: %+v", os)
	}

	// The reconstructed body must be byte-identical to a fresh fetch.
	tb.now += 700
	tb.store.Modify("/a/big-page.html", 5000, 0) // no-op, keeps LM
	fresh := tb.get(t, "www.site.com/a/big-page.html")
	if string(fresh.Body) != string(r2.Body) {
		t.Error("reconstructed body differs from origin content")
	}
}

func TestDeltaEncodingOffByDefault(t *testing.T) {
	tb := deltaTestbed(t, false)
	tb.get(t, "www.site.com/a/big-page.html")
	tb.store.Modify("/a/big-page.html", 5000, 0)
	tb.now += 700
	r := tb.get(t, "www.site.com/a/big-page.html")
	if r.Status != 200 || len(r.Body) != 16384 {
		t.Fatalf("full fetch expected: %d, %d bytes", r.Status, len(r.Body))
	}
	if tb.proxy.Stats().DeltaUpdates != 0 || tb.origin.Stats().DeltasSent != 0 {
		t.Error("delta path active without DeltaEncoding")
	}
}

func TestDeltaFallsBackOnSmallResources(t *testing.T) {
	// For a tiny resource the patch (header + whole changed block) is
	// not smaller than the body: the server must send a plain 200.
	tb := newTestbed(t, Config{Delta: 600, DeltaEncoding: true})
	tb.get(t, "www.site.com/a/x.html") // 100 bytes
	tb.store.Modify("/a/x.html", 5000, 0)
	tb.now += 700
	r := tb.get(t, "www.site.com/a/x.html")
	if r.Status != 200 || len(r.Body) != 100 {
		t.Fatalf("fallback fetch: %d, %d bytes", r.Status, len(r.Body))
	}
	if tb.origin.Stats().DeltasSent != 0 {
		t.Error("delta sent although not profitable")
	}
}

func TestDeltaValidationStillWorksUnchanged(t *testing.T) {
	// Unchanged resource + A-IM: the 304 path must be unaffected.
	tb := deltaTestbed(t, true)
	tb.get(t, "www.site.com/a/big-page.html")
	tb.now += 700
	r := tb.get(t, "www.site.com/a/big-page.html")
	if r.Status != 200 {
		t.Fatalf("status = %d", r.Status)
	}
	ps := tb.proxy.Stats()
	if ps.NotModified != 1 || ps.DeltaUpdates != 0 {
		t.Errorf("stats = %+v", ps)
	}
}
