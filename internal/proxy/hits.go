package proxy

import "sync"

// maxPendingHits bounds the cache-hit paths buffered per host between
// upstream requests (the Piggy-Hits report, §5 future work). Beyond the
// bound, further hits are dropped and counted (proxy.hits_dropped) rather
// than silently discarded.
const maxPendingHits = 32

// hitStripes is the number of lock stripes in hostHits (power of two).
// Hits on hosts in different stripes never contend, so hit reporting stays
// off the fresh-hit fast path's critical section.
const hitStripes = 16

// hostHits is the striped per-host pending-hit-report table that replaces
// the pendingHits map formerly guarded by the proxy's global mutex.
type hostHits struct {
	stripes [hitStripes]hitStripe
}

type hitStripe struct {
	mu sync.Mutex
	m  map[string][]string
}

func newHostHits() *hostHits {
	h := &hostHits{}
	for i := range h.stripes {
		h.stripes[i].m = make(map[string][]string)
	}
	return h
}

func (h *hostHits) stripe(host string) *hitStripe {
	// FNV-1a, as in the cache's shard selector.
	v := uint32(2166136261)
	for i := 0; i < len(host); i++ {
		v ^= uint32(host[i])
		v *= 16777619
	}
	return &h.stripes[v&(hitStripes-1)]
}

// add buffers one cache-hit path for host. It reports false when the
// per-host bound is full and the hit was dropped.
func (h *hostHits) add(host, path string) bool {
	st := h.stripe(host)
	st.mu.Lock()
	defer st.mu.Unlock()
	hits := st.m[host]
	if len(hits) >= maxPendingHits {
		return false
	}
	st.m[host] = append(hits, path)
	return true
}

// take removes and returns the buffered paths for host.
func (h *hostHits) take(host string) []string {
	st := h.stripe(host)
	st.mu.Lock()
	defer st.mu.Unlock()
	hits, ok := st.m[host]
	if !ok {
		return nil
	}
	delete(st.m, host)
	return hits
}
