package proxy

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piggyback/internal/faultconn"
	"piggyback/internal/httpwire"
	"piggyback/internal/server"
)

// faultBed wires origin -> proxy with a fault-injecting listener between
// them. The proxy handler is driven directly (ServeWire) so tests control
// the caller context.
type faultBed struct {
	mu    sync.Mutex
	now   int64
	fl    *faultconn.Listener
	store *server.Store
	proxy *Proxy
}

func (fb *faultBed) clock() int64 {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.now
}

func (fb *faultBed) advance(d int64) {
	fb.mu.Lock()
	fb.now += d
	fb.mu.Unlock()
}

func newFaultBed(t *testing.T, cfg Config) *faultBed {
	t.Helper()
	fb := &faultBed{now: 10000}
	fb.store = server.NewStore()
	fb.store.Put(server.Resource{URL: "/a/x.html", Size: 400, LastModified: 1000})
	fb.store.Put(server.Resource{URL: "/a/y.gif", Size: 200, LastModified: 1500})
	origin := server.New(fb.store, nil, fb.clock)

	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb.fl = faultconn.NewListener(inner, faultconn.Profile{}, 1)
	osrv := &httpwire.Server{Handler: origin, IdleTimeout: time.Minute}
	go osrv.Serve(fb.fl)
	t.Cleanup(func() { osrv.Close() })
	addr := inner.Addr().String()

	cfg.Clock = fb.clock
	cfg.Resolve = func(host string) (string, error) { return addr, nil }
	fb.proxy = New(cfg)
	t.Cleanup(fb.proxy.Close)
	return fb
}

func (fb *faultBed) get(ctx context.Context, url string) *httpwire.Response {
	return fb.proxy.ServeWire(ctx, httpwire.NewRequest("GET", "http://"+url))
}

// TestProxyServesStaleOnBlackhole is the acceptance scenario: with the
// upstream blackholed mid-run, a proxy holding an expired entry answers
// within the caller's deadline with the stale copy; after the failure
// threshold the breaker opens and requests stop dialing; once the fault
// clears and the backoff elapses, a half-open probe restores service.
func TestProxyServesStaleOnBlackhole(t *testing.T) {
	fb := newFaultBed(t, Config{
		Delta:           100,
		UpstreamTimeout: 150 * time.Millisecond,
		BreakerFailures: 3,
		BreakerBackoff:  50 * time.Millisecond,
		MaxStaleOnError: 100000,
	})

	// Healthy warm-up fills the cache.
	warm := fb.get(context.Background(), "www.site.com/a/x.html")
	if warm.Status != 200 || warm.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("warm-up: %d %s", warm.Status, warm.Header.Get("X-Cache"))
	}

	// The entry expires, then the origin goes dark.
	fb.advance(200)
	fb.fl.SetFault(&faultconn.Fault{Blackhole: true})
	fb.fl.AbortConns()

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		start := time.Now()
		resp := fb.get(ctx, "www.site.com/a/x.html")
		cancel()
		if resp.Status != 200 || resp.Header.Get("X-Cache") != "STALE" {
			t.Fatalf("request %d during blackhole: %d %s", i, resp.Status, resp.Header.Get("X-Cache"))
		}
		if w := resp.Header.Get("Warning"); w != `110 - "Response is Stale"` {
			t.Fatalf("request %d Warning = %q", i, w)
		}
		if string(resp.Body) != string(warm.Body) {
			t.Fatalf("request %d stale body differs from cached copy", i)
		}
		if d := time.Since(start); d > 1500*time.Millisecond {
			t.Fatalf("request %d took %v, deadline not honored", i, d)
		}
	}

	st := fb.proxy.Stats()
	if st.StaleServes != 3 {
		t.Fatalf("StaleServes = %d, want 3", st.StaleServes)
	}
	if st.BreakerOpens < 1 || fb.proxy.BreakerOpenHosts() != 1 {
		t.Fatalf("breaker not open after threshold: opens=%d openHosts=%d",
			st.BreakerOpens, fb.proxy.BreakerOpenHosts())
	}

	// Open circuit: requests short-circuit without dialing upstream.
	dialed := fb.fl.Accepted()
	for i := 0; i < 2; i++ {
		resp := fb.get(context.Background(), "www.site.com/a/x.html")
		if resp.Status != 200 || resp.Header.Get("X-Cache") != "STALE" {
			t.Fatalf("short-circuit %d: %d %s", i, resp.Status, resp.Header.Get("X-Cache"))
		}
	}
	if got := fb.fl.Accepted(); got != dialed {
		t.Fatalf("open circuit still dialed: accepted %d -> %d", dialed, got)
	}
	if st := fb.proxy.Stats(); st.BreakerShortCircuits < 2 {
		t.Fatalf("BreakerShortCircuits = %d, want >= 2", st.BreakerShortCircuits)
	}

	// Fault clears; past the (jittered, <= 1.5x) backoff a probe goes
	// through and closes the circuit.
	fb.fl.SetFault(&faultconn.Fault{})
	time.Sleep(150 * time.Millisecond)
	resp := fb.get(context.Background(), "www.site.com/a/x.html")
	if resp.Status != 200 || resp.Header.Get("X-Cache") == "STALE" {
		t.Fatalf("probe after recovery: %d %s", resp.Status, resp.Header.Get("X-Cache"))
	}
	if fb.proxy.BreakerOpenHosts() != 0 {
		t.Fatalf("breaker still open after successful probe: %d hosts", fb.proxy.BreakerOpenHosts())
	}
}

func TestProxyStaleWindowExhausted(t *testing.T) {
	fb := newFaultBed(t, Config{
		Delta:           10,
		UpstreamTimeout: 100 * time.Millisecond,
		MaxStaleOnError: 50,
	})
	if resp := fb.get(context.Background(), "www.site.com/a/x.html"); resp.Status != 200 {
		t.Fatalf("warm-up: %d", resp.Status)
	}
	// Expired at +10, stale window ends at +60; +100 is beyond it.
	fb.advance(100)
	fb.fl.SetFault(&faultconn.Fault{Blackhole: true})
	fb.fl.AbortConns()
	resp := fb.get(context.Background(), "www.site.com/a/x.html")
	if resp.Status != 504 {
		t.Fatalf("beyond stale window: status %d, want 504 (timeout class)", resp.Status)
	}
	if fb.proxy.Stats().StaleServes != 0 {
		t.Fatal("served stale beyond MaxStaleOnError")
	}
}

func TestProxyCanceledCallerNoStaleNoBreaker(t *testing.T) {
	// A caller that gives up is not upstream failure: no stale serve, no
	// breaker feed.
	fb := newFaultBed(t, Config{
		Delta:           10,
		BreakerFailures: 2,
		MaxStaleOnError: 100000,
	})
	if resp := fb.get(context.Background(), "www.site.com/a/x.html"); resp.Status != 200 {
		t.Fatalf("warm-up: %d", resp.Status)
	}
	fb.advance(50) // entry expired: a refresh must dial upstream
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 4; i++ {
		resp := fb.get(ctx, "www.site.com/a/x.html")
		if resp.Header.Get("X-Cache") == "STALE" {
			t.Fatalf("request %d: cancellation served stale", i)
		}
		if resp.Status != 502 {
			t.Fatalf("request %d: status %d, want 502", i, resp.Status)
		}
	}
	st := fb.proxy.Stats()
	if st.BreakerOpens != 0 || fb.proxy.BreakerOpenHosts() != 0 {
		t.Fatalf("cancellations tripped the breaker: opens=%d", st.BreakerOpens)
	}
	if st.StaleServes != 0 {
		t.Fatalf("StaleServes = %d, want 0", st.StaleServes)
	}
}

// TestProxyChaosBrownout hammers the proxy concurrently while the origin
// browns out (slow, truncating, dead, and resetting connections drawn from
// a seeded schedule). Run under -race. The proxy must never corrupt the
// cache (every 200 body matches the origin's), and with all entries
// expired every qualifying upstream failure falls back to the stale copy.
func TestProxyChaosBrownout(t *testing.T) {
	fb := newFaultBed(t, Config{
		Delta:           100,
		UpstreamTimeout: 100 * time.Millisecond,
		BreakerFailures: 50, // keep traffic flowing through the fault schedule
		MaxStaleOnError: 1 << 30,
	})
	urls := []string{"www.site.com/a/x.html", "www.site.com/a/y.gif"}

	// Warm both entries while healthy and record the authoritative bodies.
	want := make(map[string]string)
	for _, u := range urls {
		resp := fb.get(context.Background(), u)
		if resp.Status != 200 {
			t.Fatalf("warm-up %s: %d", u, resp.Status)
		}
		want[u] = string(resp.Body)
	}
	fb.advance(200) // everything expired: failures must degrade to STALE

	pr, ok := faultconn.Profiles("brownout")
	if !ok {
		t.Fatal("brownout profile missing")
	}
	fb.fl.SetProfile(pr)
	fb.fl.AbortConns()

	const workers = 4
	const perWorker = 30
	var bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%5 == 4 {
					// Cut live connections so the pool redials through
					// the fault schedule instead of riding one lucky
					// healthy connection.
					fb.fl.AbortConns()
				}
				// Advance past Delta so refreshed entries expire again and
				// every round exercises the upstream (or degrade) path.
				fb.advance(150)
				u := urls[(w+i)%len(urls)]
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				resp := fb.get(ctx, u)
				cancel()
				switch resp.Status {
				case 200:
					if string(resp.Body) != want[u] {
						bad.Add(1)
						t.Errorf("corrupt body for %s (X-Cache=%s): %d bytes",
							u, resp.Header.Get("X-Cache"), len(resp.Body))
					}
				case 502, 504:
					// acceptable degradation when no stale copy applies
				default:
					bad.Add(1)
					t.Errorf("unexpected status %d for %s", resp.Status, u)
				}
			}
		}(w)
	}
	wg.Wait()

	if bad.Load() > 0 {
		t.Fatalf("%d corrupted or invalid responses", bad.Load())
	}
	st := fb.proxy.Stats()
	if st.StaleServes == 0 {
		t.Error("brownout produced no stale fallbacks — fault injection not reaching the proxy")
	}
	if st.UpstreamErrors == 0 {
		t.Error("brownout produced no upstream errors")
	}
	t.Logf("chaos: %d stale serves, %d upstream errors, %d validations, breaker opens %d",
		st.StaleServes, st.UpstreamErrors, st.Validations, st.BreakerOpens)
}
