package proxy

import (
	"container/heap"
	"sync"
)

// FetchItem is one pending fetch with the meta-attributes learned from a
// piggyback element (§4 informed fetching: "shorter files can be fetched
// first").
type FetchItem struct {
	Host string
	URL  string // server-relative path
	Size int64
	// LastModified from the piggyback element; recent modification can
	// demote a prefetch ("the proxy may decide not to prefetch items
	// that have a recent Last-Modified time", §4).
	LastModified int64
}

// Key returns the cache key (host-qualified URL).
func (it FetchItem) Key() string { return it.Host + it.URL }

// InformedQueue is a size-prioritized fetch queue: smallest resources
// first, the §4 informed-fetching schedule that minimizes average per-user
// latency on a congested path. It is safe for concurrent use.
type InformedQueue struct {
	mu     sync.Mutex
	h      fetchHeap
	queued map[string]bool
	// MaxLen bounds the queue; zero means 1024. Overflow drops the
	// largest queued item (smallest-first service order means largest
	// items are the least likely to be serviced anyway).
	MaxLen int
}

// NewInformedQueue returns an empty queue.
func NewInformedQueue() *InformedQueue {
	return &InformedQueue{queued: make(map[string]bool)}
}

func (q *InformedQueue) maxLen() int {
	if q.MaxLen <= 0 {
		return 1024
	}
	return q.MaxLen
}

// Push enqueues an item unless an equal key is already queued.
// It reports whether the item was added.
func (q *InformedQueue) Push(it FetchItem) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.queued[it.Key()] {
		return false
	}
	if len(q.h) >= q.maxLen() {
		// Drop the largest queued item to admit the new one — unless
		// the new item is itself the largest.
		li := q.largestIdx()
		if li < 0 || q.h[li].Size <= it.Size {
			return false
		}
		dropped := q.h[li]
		heap.Remove(&q.h, li)
		delete(q.queued, dropped.Key())
	}
	heap.Push(&q.h, it)
	q.queued[it.Key()] = true
	return true
}

func (q *InformedQueue) largestIdx() int {
	// The largest element of a min-heap is among the leaves; a linear
	// scan is fine at this queue's size.
	best := -1
	for i := range q.h {
		if best < 0 || q.h[i].Size > q.h[best].Size {
			best = i
		}
	}
	return best
}

// Pop dequeues the smallest item.
func (q *InformedQueue) Pop() (FetchItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return FetchItem{}, false
	}
	it := heap.Pop(&q.h).(FetchItem)
	delete(q.queued, it.Key())
	return it, true
}

// Len returns the queue length.
func (q *InformedQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

// Contains reports whether a key is queued.
func (q *InformedQueue) Contains(key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued[key]
}

type fetchHeap []FetchItem

func (h fetchHeap) Len() int            { return len(h) }
func (h fetchHeap) Less(i, j int) bool  { return h[i].Size < h[j].Size }
func (h fetchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fetchHeap) Push(x interface{}) { *h = append(*h, x.(FetchItem)) }
func (h *fetchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
