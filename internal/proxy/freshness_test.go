package proxy

import (
	"fmt"
	"sync"
	"testing"
)

func TestFreshnessDefaultUntilFirstChange(t *testing.T) {
	f := NewFreshnessEstimator(900, 60, 86400)
	if got := f.Delta("/a"); got != 900 {
		t.Errorf("untracked Delta = %d, want default 900", got)
	}
	// A single observation establishes a baseline Last-Modified but is not
	// a change yet.
	f.Observe("/a", 1000)
	if got := f.Delta("/a"); got != 900 {
		t.Errorf("Delta after first observation = %d, want default 900", got)
	}
	if f.Tracked() != 1 || f.ChangeCount("/a") != 0 {
		t.Errorf("tracked/changes = %d/%d, want 1/0", f.Tracked(), f.ChangeCount("/a"))
	}
}

func TestFreshnessFirstChangeSetsInterval(t *testing.T) {
	f := NewFreshnessEstimator(900, 0, 0)
	f.Observe("/a", 1000)
	f.Observe("/a", 3000) // changed after 2000s
	if got := f.ChangeCount("/a"); got != 1 {
		t.Fatalf("changes = %d, want 1", got)
	}
	// Default fraction 0.5: validate twice per expected change.
	if got := f.Delta("/a"); got != 1000 {
		t.Errorf("Delta = %d, want 2000*0.5 = 1000", got)
	}
}

func TestFreshnessEWMA(t *testing.T) {
	f := NewFreshnessEstimator(900, 0, 0)
	f.Fraction = 1 // expose the mean directly
	f.Observe("/a", 1000)
	f.Observe("/a", 2000) // interval 1000 → ewma = 1000
	f.Observe("/a", 2500) // interval 500  → ewma = 0.3*500 + 0.7*1000 = 850
	if got := f.Delta("/a"); got != 850 {
		t.Errorf("Delta = %d, want EWMA 850", got)
	}
}

func TestFreshnessIgnoresStaleLastModified(t *testing.T) {
	f := NewFreshnessEstimator(900, 0, 0)
	f.Observe("/a", 5000)
	f.Observe("/a", 5000) // same version
	f.Observe("/a", 4000) // older version (e.g. stale piggyback)
	f.Observe("/a", 0)    // absent Last-Modified
	if got := f.ChangeCount("/a"); got != 0 {
		t.Errorf("changes = %d, want 0: non-increasing LM is not a change", got)
	}
	if got := f.Delta("/a"); got != 900 {
		t.Errorf("Delta = %d, want default 900", got)
	}
}

func TestFreshnessClamp(t *testing.T) {
	f := NewFreshnessEstimator(900, 600, 7200)
	f.Observe("/fast", 1000)
	f.Observe("/fast", 1010) // changes every 10s → raw Δ 5 → clamped up
	if got := f.Delta("/fast"); got != 600 {
		t.Errorf("fast-changing Delta = %d, want Min 600", got)
	}
	f.Observe("/slow", 0xF4240)
	f.Observe("/slow", 0xF4240+1000000) // ~11.6 days → raw Δ 500000 → clamped down
	if got := f.Delta("/slow"); got != 7200 {
		t.Errorf("slow-changing Delta = %d, want Max 7200", got)
	}
}

func TestFreshnessConcurrent(t *testing.T) {
	f := NewFreshnessEstimator(900, 60, 86400)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			url := fmt.Sprintf("/r%d", w%4)
			for i := int64(0); i < 200; i++ {
				f.Observe(url, 1000+i*100)
				f.Delta(url)
			}
		}(w)
	}
	wg.Wait()
	if f.Tracked() != 4 {
		t.Errorf("tracked = %d, want 4", f.Tracked())
	}
}
