package proxy

import (
	"math/rand"
	"sync"
	"time"

	"piggyback/internal/obs"
)

// The paper's piggyback exchange is best-effort (§2.1): a proxy must keep
// serving when an origin stalls or disappears. The per-host circuit
// breaker turns repeated upstream failures into fast local refusals —
// after breakerSettings.failures consecutive qualifying failures the host
// trips open and requests short-circuit without dialing; after a jittered
// backoff a single half-open probe is let through, and its outcome either
// closes the circuit or re-opens it with doubled backoff.

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breakerSettings are the proxy's breaker knobs after defaulting.
type breakerSettings struct {
	failures   int           // consecutive failures to trip
	backoff    time.Duration // initial open interval
	maxBackoff time.Duration // backoff doubling cap
}

// breaker tracks one state machine per upstream host. A nil *breaker
// (breaker disabled) allows everything and counts nothing.
type breaker struct {
	cfg breakerSettings
	// now is injectable for deterministic state-machine tests.
	now func() time.Time

	opens         *obs.Counter // cumulative open transitions
	openGauge     *obs.Counter // gauge: hosts currently tripped (open or half-open)
	shortCircuits *obs.Counter // requests refused without dialing

	mu    sync.Mutex
	rng   *rand.Rand
	hosts map[string]*hostBreaker
}

type hostBreaker struct {
	state     breakerState
	fails     int           // consecutive failures while closed
	openUntil time.Time     // when the open circuit admits a probe
	backoff   time.Duration // current open interval
	probing   bool          // a half-open probe is in flight
}

// newBreaker wires a breaker's counters into the proxy registry under
// prefix ("proxy.breaker" for the upstream breaker, "peer.breaker" for the
// mesh's per-peer one); empty means "proxy.breaker".
func newBreaker(cfg breakerSettings, reg *obs.Registry, prefix string, seed int64) *breaker {
	if prefix == "" {
		prefix = "proxy.breaker"
	}
	if cfg.failures <= 0 {
		cfg.failures = 5
	}
	if cfg.backoff <= 0 {
		cfg.backoff = 500 * time.Millisecond
	}
	if cfg.maxBackoff <= 0 {
		cfg.maxBackoff = 30 * time.Second
	}
	return &breaker{
		cfg:           cfg,
		now:           time.Now,
		opens:         reg.Counter(prefix + ".opens"),
		openGauge:     reg.Counter(prefix + ".open"),
		shortCircuits: reg.Counter(prefix + ".short_circuits"),
		rng:           rand.New(rand.NewSource(seed)),
		hosts:         make(map[string]*hostBreaker),
	}
}

// Allow reports whether a request to host may dial upstream. An open
// circuit past its backoff admits exactly one half-open probe; refusals
// are counted as short-circuits.
func (b *breaker) Allow(host string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb, ok := b.hosts[host]
	if !ok {
		return true
	}
	switch hb.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if !b.now().Before(hb.openUntil) {
			hb.state = breakerHalfOpen
			hb.probing = true
			return true
		}
	case breakerHalfOpen:
		if !hb.probing {
			hb.probing = true
			return true
		}
	}
	b.shortCircuits.Inc()
	return false
}

// Success records a completed exchange with host: the circuit closes and
// the failure run resets.
func (b *breaker) Success(host string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb, ok := b.hosts[host]
	if !ok {
		return
	}
	if hb.state != breakerClosed {
		b.openGauge.Add(-1)
	}
	delete(b.hosts, host)
}

// Failure records a qualifying upstream failure (anything but caller
// cancellation) for host.
func (b *breaker) Failure(host string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb, ok := b.hosts[host]
	if !ok {
		hb = &hostBreaker{backoff: b.cfg.backoff}
		b.hosts[host] = hb
	}
	switch hb.state {
	case breakerClosed:
		hb.fails++
		if hb.fails >= b.cfg.failures {
			b.openGauge.Inc()
			b.tripLocked(hb)
		}
	case breakerHalfOpen:
		// The probe failed: re-open with doubled backoff. The gauge
		// already counts this host (half-open is still tripped).
		hb.probing = false
		hb.backoff *= 2
		if hb.backoff > b.cfg.maxBackoff {
			hb.backoff = b.cfg.maxBackoff
		}
		b.tripLocked(hb)
	case breakerOpen:
		// A straggler from before the trip; no state change.
	}
}

// tripLocked moves hb to open with a jittered backoff window (0.5×–1.5×
// the nominal interval, so a fleet of proxies doesn't probe in lockstep).
// Caller holds b.mu.
func (b *breaker) tripLocked(hb *hostBreaker) {
	hb.state = breakerOpen
	hb.fails = 0
	jittered := time.Duration(float64(hb.backoff) * (0.5 + b.rng.Float64()))
	hb.openUntil = b.now().Add(jittered)
	b.opens.Inc()
}

// OpenHosts returns how many hosts are currently tripped (the
// proxy.breaker.open gauge).
func (b *breaker) OpenHosts() int {
	if b == nil {
		return 0
	}
	return int(b.openGauge.Load())
}
