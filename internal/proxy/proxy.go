// Package proxy implements the caching Web proxy of §2.1 and the §4
// applications: cache lookup with a freshness interval Δ, If-Modified-Since
// validation, piggyback filters on upstream requests (with per-server RPV
// lists), and processing of P-Volume trailers — freshening and invalidating
// cached entries, guiding replacement, feeding the prefetch queue, and
// adapting per-resource freshness intervals.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/delta"
	"piggyback/internal/httpwire"
	"piggyback/internal/httpwire/wireerr"
	"piggyback/internal/obs"
	"piggyback/internal/peer"
)

// Config parameterizes a Proxy.
type Config struct {
	// Store is the cache the proxy serves from. Nil means a fresh
	// cache.Sharded built from CacheBytes/CacheShards/Policy below; set
	// it explicitly to serve from a tiered (RAM+disk) store or any other
	// cache.Store implementation. When Store is set, CacheBytes,
	// CacheShards, and Policy are ignored. The proxy owns the store and
	// closes it in Close.
	Store cache.Store
	// CacheBytes is the cache capacity; zero means 64 MiB.
	CacheBytes int64
	// Policy is the replacement policy; nil means PiggybackLRU. Each
	// cache shard gets its own instance (stateful policies carry
	// per-shard state; see cache.PolicyFactory).
	Policy cache.Policy
	// CacheShards is the number of cache shards, rounded up to a power
	// of two; zero means cache.DefaultShards() (the smallest power of
	// two covering the machine's CPUs, clamped to [8, 64]).
	CacheShards int
	// Delta is the default freshness interval in seconds (§2.1); zero
	// means 3600.
	Delta int64
	// BaseFilter is attached to upstream requests (the per-server RPV
	// list is added per request).
	BaseFilter core.Filter
	// RPVTimeout and RPVMaxLen configure the per-server RPV lists
	// (§2.2); timeout zero means Delta (its upper bound).
	RPVTimeout int64
	RPVMaxLen  int
	// Resolve maps a host name to a dialable address. Required: the
	// testbed has no DNS.
	Resolve func(host string) (string, error)
	// Clock returns the current Unix time. Required.
	Clock func() int64
	// Prefetch enables speculative fetching of piggybacked resources
	// not in the cache (§4), via the informed (smallest-first) queue.
	Prefetch bool
	// AdaptiveFreshness enables per-resource Δ from observed
	// modification rates (§4); off, every entry gets the default Δ.
	AdaptiveFreshness bool
	// ReportHits piggybacks the URLs served from cache since the last
	// upstream request onto the next request to that server (Piggy-Hits
	// header, §5 future work), so the server's volumes keep seeing the
	// popularity of resources the proxy absorbs.
	ReportHits bool
	// DeltaEncoding requests block-level deltas (A-IM: blockdiff) when
	// validating stale entries, reconstructing the new version from the
	// cached body plus the server's patch (§4, ref [23]).
	DeltaEncoding bool
	// MinDelta/MaxDelta clamp adaptive Δ; zero means Delta/10 and
	// Delta*24.
	MinDelta, MaxDelta int64
	// UpstreamTimeout caps one upstream exchange (the client's
	// RequestTimeout); zero keeps the wire default (30s).
	UpstreamTimeout time.Duration
	// UpstreamInflight is how many concurrent exchanges share one
	// multiplexed upstream connection (writev-batched requests, one
	// reader demuxing pipelined responses — httpwire's
	// MaxInflightPerConn). Zero means 4; 1 disables multiplexing and
	// keeps the classic one-exchange-per-connection pool. The peer
	// client is unaffected either way.
	UpstreamInflight int
	// BreakerFailures is the consecutive-failure threshold that trips a
	// host's circuit open; zero means 5.
	BreakerFailures int
	// BreakerBackoff is the initial open interval before a half-open
	// probe (jittered 0.5×–1.5×, doubling per failed probe up to
	// BreakerMaxBackoff); zeros mean 500ms and 30s.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// BreakerDisabled turns the per-host circuit breaker off.
	BreakerDisabled bool
	// BreakerSeed seeds the breaker's backoff jitter; zero means 1
	// (deterministic by default).
	BreakerSeed int64
	// MaxStaleOnError bounds serve-stale-on-error: on a qualifying
	// upstream failure (or an open circuit) an expired cache entry is
	// still served — marked X-Cache: STALE with Warning: 110 — if it
	// expired no more than this many seconds ago. Zero means 3600;
	// negative disables serve-stale (failures surface as 502/504).
	MaxStaleOnError int64
	// PeerSelf is this proxy's advertised peer address (the host:port of
	// its own wire listener). Empty disables the cooperative mesh.
	PeerSelf string
	// Peers lists the other fleet members' advertised addresses; the
	// consistent-hash ring is built over Peers ∪ {PeerSelf}. A ring of
	// fewer than two members disables the mesh.
	Peers []string
	// PeerVNodes is the virtual-node count per peer on the ring; zero
	// means peer.DefaultVNodes.
	PeerVNodes int
	// PeerTimeout caps one peer exchange — a forwarded request or a
	// piggyback propagation; zero means 5s.
	PeerTimeout time.Duration
	// PeerWindow is how long (seconds) after a peer's last forwarded
	// request it keeps receiving re-propagated piggybacks; zero means
	// RPVTimeout.
	PeerWindow int64
}

// Stats counts proxy-side protocol activity.
type Stats struct {
	ClientRequests int
	// FreshHits were served entirely from the cache.
	FreshHits int
	// Validations are conditional GETs sent upstream for stale entries.
	Validations int
	// NotModified counts 304s received for those validations.
	NotModified int
	// MissFetches are full fetches for resources not in the cache.
	MissFetches int
	// PiggybacksReceived counts P-Volume trailers processed.
	PiggybacksReceived int
	PiggybackElements  int
	// Refreshes are cached entries freshened by a piggyback element;
	// Invalidations are cached entries found stale by one (§4 cache
	// coherency).
	Refreshes     int
	Invalidations int
	// Prefetches counts speculative fetches issued; UsefulPrefetches
	// those later hit by a client request.
	Prefetches       int
	UsefulPrefetches int
	// HitsReported counts cache-hit URLs piggybacked upstream (§5);
	// HitsDropped counts fresh hits not buffered for reporting because
	// the per-host pending bound was full.
	HitsReported int
	HitsDropped  int
	// DeltaUpdates counts 226 delta responses applied; DeltaBytesSaved
	// the body bytes they avoided transferring (§4, ref [23]).
	DeltaUpdates    int
	DeltaBytesSaved int64
	// SingleflightShared counts client requests served from another
	// in-flight fetch of the same key instead of their own origin
	// exchange (miss de-duplication).
	SingleflightShared int
	// UpstreamErrors counts failed origin exchanges.
	UpstreamErrors int
	// StaleServes counts responses served from an expired cache entry
	// because the upstream was failing (X-Cache: STALE).
	StaleServes int
	// BreakerOpens counts circuit-open transitions; BreakerShortCircuits
	// counts requests refused without dialing while a circuit was open.
	BreakerOpens         int
	BreakerShortCircuits int
	// PeerForwards counts local misses routed to their key's ring owner;
	// PeerServes those answered by the peer (X-Cache: PEER);
	// PeerFallbacks forwards that fell through to the origin instead
	// (dead peer, open circuit, unusable status).
	PeerForwards  int
	PeerServes    int
	PeerFallbacks int
	// PeerRequestsServed counts peer-forwarded requests this proxy served
	// as the owner of their partition.
	PeerRequestsServed int
	// PeerPropagationsSent/Received count piggyback volume messages
	// re-propagated across the mesh.
	PeerPropagationsSent     int
	PeerPropagationsReceived int
}

// Proxy is a caching piggybacking proxy, served over httpwire.
type Proxy struct {
	cfg    Config
	client *httpwire.Client
	rpv    *core.RPVTable
	fresh  *FreshnessEstimator
	queue  *InformedQueue
	obs    *obs.Registry
	c      proxyCounters

	// cache is the store the proxy serves from — a cache.Sharded by
	// default (every operation locks only the shard owning its key, so
	// fresh hits on different shards proceed in parallel), or whatever
	// Config.Store supplied (e.g. a tiered RAM+disk store).
	cache cache.Store
	// hits stripes the per-host pending hit reports (§5) the same way.
	hits *hostHits

	// flights de-duplicates concurrent fetches of one key — client
	// misses and prefetch drains alike: the first requester of a cold
	// key becomes the leader and fetches; the rest wait on its flight
	// and share the response, so N fetchers of one cold URL cost one
	// origin exchange.
	sfMu    sync.Mutex
	flights map[string]*flight

	// breaker is the per-host circuit breaker (nil when disabled): it
	// trips after consecutive upstream failures so a dead origin costs a
	// map lookup instead of a dial timeout per request.
	breaker *breaker

	// mesh is the cooperative peer tier (nil when not configured): the
	// consistent-hash ring, peer wire client, per-peer breaker, and the
	// piggyback re-propagation worker. See peer.go.
	mesh *mesh
}

// flight is one in-progress leader fetch. resp is written once, before
// done is closed; waiters read it only after <-done.
type flight struct {
	done chan struct{}
	resp *httpwire.Response
}

// proxyCounters caches the registry's counter pointers: stat updates are
// single atomic adds, outside the cache mutex.
type proxyCounters struct {
	clientRequests     *obs.Counter
	freshHits          *obs.Counter
	validations        *obs.Counter
	notModified        *obs.Counter
	missFetches        *obs.Counter
	piggybacksReceived *obs.Counter
	piggybackElements  *obs.Counter
	refreshes          *obs.Counter
	invalidations      *obs.Counter
	prefetches         *obs.Counter
	usefulPrefetches   *obs.Counter
	hitsReported       *obs.Counter
	hitsDropped        *obs.Counter
	deltaUpdates       *obs.Counter
	deltaBytesSaved    *obs.Counter
	singleflightShared *obs.Counter
	upstreamErrors     *obs.Counter
	staleServes        *obs.Counter
}

// New returns a Proxy for cfg.
func New(cfg Config) *Proxy {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.Policy == nil {
		cfg.Policy = cache.PiggybackLRU{}
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 3600
	}
	if cfg.RPVTimeout <= 0 || cfg.RPVTimeout > cfg.Delta {
		// §2.2: the RPV timeout must not exceed the freshness
		// interval Δ.
		cfg.RPVTimeout = cfg.Delta
	}
	if cfg.MinDelta <= 0 {
		cfg.MinDelta = cfg.Delta / 10
	}
	if cfg.MaxDelta <= 0 {
		cfg.MaxDelta = cfg.Delta * 24
	}
	if cfg.MaxStaleOnError == 0 {
		cfg.MaxStaleOnError = 3600
	}
	store := cfg.Store
	if store == nil {
		store = cache.NewSharded(cfg.CacheBytes, cfg.CacheShards, cache.PolicyFactory(cfg.Policy))
	}
	reg := obs.NewRegistry()
	p := &Proxy{
		cfg:     cfg,
		client:  httpwire.NewClient(),
		rpv:     core.NewRPVTable(cfg.RPVTimeout, cfg.RPVMaxLen),
		cache:   store,
		queue:   NewInformedQueue(),
		hits:    newHostHits(),
		flights: make(map[string]*flight),
		obs:     reg,
		c: proxyCounters{
			clientRequests:     reg.Counter("proxy.client_requests"),
			freshHits:          reg.Counter("proxy.fresh_hits"),
			validations:        reg.Counter("proxy.validations"),
			notModified:        reg.Counter("proxy.not_modified"),
			missFetches:        reg.Counter("proxy.miss_fetches"),
			piggybacksReceived: reg.Counter("proxy.piggybacks_received"),
			piggybackElements:  reg.Counter("proxy.piggyback_elements"),
			refreshes:          reg.Counter("proxy.refreshes"),
			invalidations:      reg.Counter("proxy.invalidations"),
			prefetches:         reg.Counter("proxy.prefetches"),
			usefulPrefetches:   reg.Counter("proxy.useful_prefetches"),
			hitsReported:       reg.Counter("proxy.hits_reported"),
			hitsDropped:        reg.Counter("proxy.hits_dropped"),
			deltaUpdates:       reg.Counter("proxy.delta_updates"),
			deltaBytesSaved:    reg.Counter("proxy.delta_bytes_saved"),
			singleflightShared: reg.Counter("proxy.singleflight_shared"),
			upstreamErrors:     reg.Counter("proxy.upstream_errors"),
			staleServes:        reg.Counter("proxy.stale_serves"),
		},
	}
	if !cfg.BreakerDisabled {
		seed := cfg.BreakerSeed
		if seed == 0 {
			seed = 1
		}
		p.breaker = newBreaker(breakerSettings{
			failures:   cfg.BreakerFailures,
			backoff:    cfg.BreakerBackoff,
			maxBackoff: cfg.BreakerMaxBackoff,
		}, reg, "", seed)
	}
	p.mesh = newMesh(cfg, reg)
	if cfg.UpstreamTimeout > 0 {
		p.client.RequestTimeout = cfg.UpstreamTimeout
	}
	switch {
	case cfg.UpstreamInflight == 0:
		p.client.MaxInflightPerConn = 4
	case cfg.UpstreamInflight > 1:
		p.client.MaxInflightPerConn = cfg.UpstreamInflight
	}
	// The upstream client's wire metrics (round-trip latency, retries,
	// dials) land in the same registry under wire.upstream.*, and the
	// cache's shard-occupancy and eviction gauges under cache.*.
	p.client.Obs = obs.NewWireMetrics(reg, "wire.upstream")
	p.cache.Instrument(reg, "cache")
	if cfg.AdaptiveFreshness {
		p.fresh = NewFreshnessEstimator(cfg.Delta, cfg.MinDelta, cfg.MaxDelta)
	}
	return p
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	s := Stats{
		ClientRequests:     int(p.c.clientRequests.Load()),
		FreshHits:          int(p.c.freshHits.Load()),
		Validations:        int(p.c.validations.Load()),
		NotModified:        int(p.c.notModified.Load()),
		MissFetches:        int(p.c.missFetches.Load()),
		PiggybacksReceived: int(p.c.piggybacksReceived.Load()),
		PiggybackElements:  int(p.c.piggybackElements.Load()),
		Refreshes:          int(p.c.refreshes.Load()),
		Invalidations:      int(p.c.invalidations.Load()),
		Prefetches:         int(p.c.prefetches.Load()),
		UsefulPrefetches:   int(p.c.usefulPrefetches.Load()),
		HitsReported:       int(p.c.hitsReported.Load()),
		HitsDropped:        int(p.c.hitsDropped.Load()),
		DeltaUpdates:       int(p.c.deltaUpdates.Load()),
		DeltaBytesSaved:    p.c.deltaBytesSaved.Load(),
		SingleflightShared: int(p.c.singleflightShared.Load()),
		UpstreamErrors:     int(p.c.upstreamErrors.Load()),
		StaleServes:        int(p.c.staleServes.Load()),
	}
	if p.breaker != nil {
		s.BreakerOpens = int(p.breaker.opens.Load())
		s.BreakerShortCircuits = int(p.breaker.shortCircuits.Load())
	}
	if m := p.mesh; m != nil {
		s.PeerForwards = int(m.c.forwards.Load())
		s.PeerServes = int(m.c.serves.Load())
		s.PeerFallbacks = int(m.c.fallbacks.Load())
		s.PeerRequestsServed = int(m.c.requestsServed.Load())
		s.PeerPropagationsSent = int(m.c.propagationsSent.Load())
		s.PeerPropagationsReceived = int(m.c.propagationsReceived.Load())
	}
	return s
}

// PeerRing exposes the mesh's consistent-hash ring (nil when the mesh is
// not configured).
func (p *Proxy) PeerRing() *peer.Ring {
	if p.mesh == nil {
		return nil
	}
	return p.mesh.ring
}

// BreakerOpenHosts returns how many upstream hosts currently have a
// tripped circuit (the proxy.breaker.open gauge).
func (p *Proxy) BreakerOpenHosts() int { return p.breaker.OpenHosts() }

// Obs returns the proxy's telemetry registry (also served live on
// obs.StatsPath).
func (p *Proxy) Obs() *obs.Registry { return p.obs }

// CacheHitRate returns the cache's hit rate across all tiers.
func (p *Proxy) CacheHitRate() float64 { return p.cache.Stats().HitRate() }

// CacheStats returns the store's aggregate counters (all tiers).
func (p *Proxy) CacheStats() cache.StoreStats { return p.cache.Stats() }

// Queue exposes the informed fetch queue (for draining in tests and the
// prefetch loop).
func (p *Proxy) Queue() *InformedQueue { return p.queue }

// Freshness exposes the adaptive freshness estimator (nil when disabled).
func (p *Proxy) Freshness() *FreshnessEstimator { return p.fresh }

// Close stops the mesh's propagation worker (when one is running),
// releases upstream and peer connections, and closes the cache store —
// a tiered store flushes its RAM working set to disk and snapshots its
// index here, which is what makes a restart warm.
func (p *Proxy) Close() {
	if p.mesh != nil {
		p.mesh.close()
	}
	p.client.Close()
	if err := p.cache.Close(); err != nil {
		log.Printf("proxy: cache close: %v", err)
	}
}

// splitTarget extracts (host, path) from a proxy request: absolute-URI
// form "http://host/path", or Host header + origin-form path.
func splitTarget(req *httpwire.Request) (host, path string, err error) {
	t := req.Path
	if strings.HasPrefix(t, "http://") {
		rest := strings.TrimPrefix(t, "http://")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return rest[:i], rest[i:], nil
		}
		return rest, "/", nil
	}
	host = req.Header.Get("Host")
	if host == "" {
		return "", "", fmt.Errorf("proxy: request has neither absolute URI nor Host header")
	}
	if !strings.HasPrefix(t, "/") {
		t = "/" + t
	}
	return host, t, nil
}

// upstreamState carries what one request needs across the upstream
// exchange: the target, and — when a stale copy exists — the cached body,
// Last-Modified, and Content-Type, copied out under the shard lock (a
// cache.View) so no *cache.Entry pointer is touched while other goroutines
// mutate the cache.
type upstreamState struct {
	key, host, path string
	hit             bool
	cachedLM        int64
	cachedLMDate    string
	cachedBody      []byte
	cachedCT        string
	cachedExpires   int64
}

// ServeWire implements httpwire.Handler. ctx is the per-request context:
// cancellation (connection teardown, server shutdown) propagates into the
// upstream exchange and detaches single-flight followers.
func (p *Proxy) ServeWire(ctx context.Context, req *httpwire.Request) *httpwire.Response {
	if httpwire.IsStatsRequest(req) {
		return httpwire.StatsResponse(p.obs)
	}
	if httpwire.IsPprofRequest(req) {
		return httpwire.PprofResponse(req)
	}
	if p.mesh != nil && httpwire.IsPeerPiggybackRequest(req) {
		return p.servePeerPiggyback(req)
	}
	now := p.cfg.Clock()
	host, path, err := splitTarget(req)
	if err != nil || req.Method != "GET" {
		if err == nil && req.Method != "GET" {
			return httpwire.NewResponse(501)
		}
		return httpwire.NewResponse(400)
	}
	key := host + path

	// A Piggy-Peer-marked request came from a fleet member that routed a
	// miss here: serve it locally (cache or origin), never forward it
	// again — the hop marker is what makes forwarding loop-free — and
	// remember the sender as a re-propagation target.
	fromPeer := false
	if p.mesh != nil {
		if from, ok := httpwire.PeerFrom(req); ok {
			fromPeer = true
			p.notePeerRequest(from, now)
		}
	}

	p.c.clientRequests.Inc()
	st, resp := p.lookup(key, host, path, now)
	if resp != nil {
		return resp // fresh hit
	}
	if !st.hit {
		// Cold key: de-duplicate concurrent misses. Only one goroutine
		// fetches; the rest share its response.
		if shared, ok := p.joinFlight(ctx, key); ok {
			p.c.singleflightShared.Inc()
			return shared
		}
		out := p.fetchRouted(ctx, st, now, fromPeer)
		p.finishFlight(key, out)
		return out
	}
	// Stale copy: each holder validates with its own conditional GET (or,
	// for a key owned elsewhere on the mesh, asks the owner first).
	return p.fetchRouted(ctx, st, now, fromPeer)
}

// fetchRouted is the mesh-aware upstream exchange: when the mesh is on,
// the request is not itself peer-forwarded, and the key's ring owner is a
// remote peer, the owner is asked first; a nil answer (dead peer, open
// circuit, unusable status) falls back to the ordinary origin fetch, so
// peering never adds a client-visible failure mode.
func (p *Proxy) fetchRouted(ctx context.Context, st upstreamState, now int64, fromPeer bool) *httpwire.Response {
	if p.mesh != nil && !fromPeer {
		if owner, remote := p.mesh.owner(st.key); remote {
			if out := p.forwardToPeer(ctx, owner, st, now); out != nil {
				return out
			}
		}
	}
	return p.fetch(ctx, st, now)
}

// lookup runs the cache-side half of a request. It returns a response for
// a fresh hit, or the state the upstream exchange needs. The only lock it
// takes is the shard lock inside cache.Lookup, which also copies out the
// servable state and clears the prefetch mark atomically.
func (p *Proxy) lookup(key, host, path string, now int64) (upstreamState, *httpwire.Response) {
	st := upstreamState{key: key, host: host, path: path}
	v, hit := p.cache.Lookup(key, now)
	if hit && v.WasPrefetched {
		p.c.usefulPrefetches.Inc()
	}
	if hit && v.Fresh(now) {
		p.c.freshHits.Inc()
		if p.cfg.ReportHits && !p.hits.add(host, path) {
			p.c.hitsDropped.Inc()
		}
		resp := serveCopy(v.Body, v.LastModified, v.LastModifiedHTTP, v.ContentType)
		resp.Header.Set("X-Cache", "HIT")
		return st, resp
	}
	st.hit = hit
	if hit {
		st.cachedLM = v.LastModified
		st.cachedLMDate = v.LastModifiedHTTP
		st.cachedBody = v.Body
		st.cachedCT = v.ContentType
		st.cachedExpires = v.Expires
	}
	return st, nil
}

// joinFlight waits on an existing flight for key and returns its shared
// response, or registers the caller as the flight leader (ok == false). A
// follower whose ctx ends detaches with a gateway-timeout response; the
// leader's fetch — and the other waiters — are unaffected.
func (p *Proxy) joinFlight(ctx context.Context, key string) (*httpwire.Response, bool) {
	p.sfMu.Lock()
	if f, ok := p.flights[key]; ok {
		p.sfMu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return httpwire.NewResponse(504), true
		}
		out := httpwire.NewResponse(f.resp.Status)
		for k, v := range f.resp.Header {
			out.Header[k] = v
		}
		out.Body = f.resp.Body // bodies are never mutated once built
		out.Header.Set("X-Cache", "SHARED")
		return out, true
	}
	p.flights[key] = &flight{done: make(chan struct{})}
	p.sfMu.Unlock()
	return nil, false
}

// finishFlight publishes the leader's response and releases the waiters.
func (p *Proxy) finishFlight(key string, out *httpwire.Response) {
	p.sfMu.Lock()
	f := p.flights[key]
	delete(p.flights, key)
	p.sfMu.Unlock()
	f.resp = out
	close(f.done)
}

// fetch runs the upstream exchange for st — conditional when a stale copy
// exists (§2.1) — and the per-shard cache update that follows. On an open
// circuit or a qualifying upstream failure it degrades to the expired
// cached copy (X-Cache: STALE) when one is within MaxStaleOnError.
func (p *Proxy) fetch(ctx context.Context, st upstreamState, now int64) *httpwire.Response {
	if !p.breaker.Allow(st.host) {
		p.client.Obs.CountErrClass("circuit_open")
		return p.degrade(st, now, wireerr.ErrCircuitOpen)
	}

	// Snapshot the filter state (the RPV table locks internally) and
	// drain this host's pending hit reports from its stripe.
	filter := p.cfg.BaseFilter
	filter.RPV = p.rpv.Snapshot(st.host, now)
	var reportHits []string
	if p.cfg.ReportHits {
		reportHits = p.hits.take(st.host)
		p.c.hitsReported.Add(int64(len(reportHits)))
	}

	oreq := httpwire.NewRequest("GET", st.path)
	oreq.Header.Set("Host", st.host)
	if st.hit {
		ims := st.cachedLMDate
		if ims == "" {
			ims = httpwire.FormatHTTPDate(st.cachedLM)
		}
		oreq.Header.Set("If-Modified-Since", ims)
		if p.cfg.DeltaEncoding {
			oreq.Header.Set("A-IM", "blockdiff")
		}
	}
	httpwire.SetFilter(oreq, filter)
	httpwire.SetHits(oreq, reportHits)

	addr, err := p.cfg.Resolve(st.host)
	if err != nil {
		p.countUpstreamError()
		return httpwire.NewResponse(502)
	}
	resp, err := p.client.DoContext(ctx, addr, oreq)
	if err != nil {
		p.countUpstreamError()
		if qualifyingFailure(err) {
			p.breaker.Failure(st.host)
		}
		return p.degrade(st, now, err)
	}
	p.breaker.Success(st.host)

	key := st.key

	var out *httpwire.Response
	switch {
	case resp.Status == 226 && st.hit:
		// Delta response: reconstruct the new version from the cached
		// body and the patch (§4, ref [23]).
		newBody, lm, err := applyDelta(st.cachedBody, resp)
		if err != nil {
			// A malformed delta falls back to a plain refetch next
			// time; serve the stale copy rather than failing the
			// client.
			p.c.upstreamErrors.Inc()
			out = serveCopy(st.cachedBody, st.cachedLM, st.cachedLMDate, st.cachedCT)
			break
		}
		p.c.validations.Inc()
		p.c.deltaUpdates.Inc()
		p.c.deltaBytesSaved.Add(int64(len(newBody) - len(resp.Body)))
		ct := resp.Header.Get("Content-Type")
		if ct == "" {
			// The delta carries the patched body of the same resource:
			// its type is the cached copy's.
			ct = st.cachedCT
		}
		lmDate := resp.Header.Get("Last-Modified")
		e := cache.Entry{
			URL:              key,
			Size:             int64(len(newBody)),
			LastModified:     lm,
			LastModifiedHTTP: lmDate,
			Expires:          now + p.delta(key),
			FetchedAt:        now,
			Body:             newBody,
			ContentType:      ct,
		}
		if p.fresh != nil {
			p.fresh.Observe(key, lm)
		}
		p.cache.Put(e, now)
		out = serveCopy(newBody, lm, lmDate, ct)
	case resp.Status == 304 && st.hit:
		p.c.validations.Inc()
		p.c.notModified.Inc()
		p.cache.Freshen(key, now+p.delta(key))
		// Serve the validated copy, not whatever the cache holds now —
		// a concurrent fetch may have replaced the entry since lookup.
		out = serveCopy(st.cachedBody, st.cachedLM, st.cachedLMDate, st.cachedCT)
	case resp.Status == 200:
		if st.hit {
			p.c.validations.Inc()
		} else {
			p.c.missFetches.Inc()
		}
		lm, _ := resp.LastModified()
		ct := resp.Header.Get("Content-Type")
		lmDate := resp.Header.Get("Last-Modified")
		e := cache.Entry{
			URL:              key,
			Size:             int64(len(resp.Body)),
			LastModified:     lm,
			LastModifiedHTTP: lmDate,
			Expires:          now + p.delta(key),
			FetchedAt:        now,
			Body:             resp.Body,
			ContentType:      ct,
		}
		if p.fresh != nil {
			p.fresh.Observe(key, lm)
		}
		p.cache.Put(e, now)
		out = serveCopy(resp.Body, lm, lmDate, ct)
	case resp.Status == 304 || resp.Status == 226:
		// Conditional-only statuses for a request that carried no
		// condition (or no cached base for a delta): the origin is
		// confused; a client that sent a plain GET cannot interpret
		// them, so surface a gateway error instead of forwarding.
		p.c.upstreamErrors.Inc()
		out = httpwire.NewResponse(502)
	default:
		// Pass other statuses through without caching.
		out = httpwire.NewResponse(resp.Status)
		out.Body = resp.Body
	}
	out.Header.Set("X-Cache", "MISS")

	if m, ok := httpwire.ExtractPiggyback(resp); ok {
		p.processPiggyback(st.host, m, now)
		if p.mesh != nil {
			// We just heard fresh volume state from the origin for a
			// partition we (mostly) own: push it to the peers that
			// recently requested into it, so one proxy's piggyback
			// freshens the whole fleet.
			p.enqueuePropagation(st.host, m, now)
		}
	}
	return out
}

// applyDelta reconstructs the new body from a 226 response.
func applyDelta(cachedBody []byte, resp *httpwire.Response) (body []byte, lastModified int64, err error) {
	if !strings.EqualFold(strings.TrimSpace(resp.Header.Get("IM")), "blockdiff") {
		return nil, 0, fmt.Errorf("proxy: 226 without IM: blockdiff")
	}
	patch, err := delta.Decode(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	body, err = delta.Apply(cachedBody, patch)
	if err != nil {
		return nil, 0, err
	}
	lm, _ := resp.LastModified()
	return body, lm, nil
}

// serveCopy builds a 200 response from a body, Last-Modified, and
// Content-Type copied out of the cache earlier; it never touches a live
// *cache.Entry. lmDate is the pre-rendered HTTP-date of lastModified when
// the caller has one (a cached View, an origin header) — empty falls back
// to formatting, so the hit path normally skips FormatHTTPDate entirely.
func serveCopy(body []byte, lastModified int64, lmDate, contentType string) *httpwire.Response {
	resp := httpwire.NewResponse(200)
	resp.Body = body
	if lastModified > 0 {
		if lmDate == "" {
			lmDate = httpwire.FormatHTTPDate(lastModified)
		}
		resp.Header.Set("Last-Modified", lmDate)
	}
	if contentType != "" {
		resp.Header.Set("Content-Type", contentType)
	}
	return resp
}

func (p *Proxy) countUpstreamError() { p.c.upstreamErrors.Inc() }

// qualifyingFailure reports whether an upstream error should feed the
// circuit breaker. Caller cancellation is the client's fault, not the
// origin's.
func qualifyingFailure(err error) bool {
	return err != nil && !errors.Is(err, wireerr.ErrCanceled)
}

// degrade answers a request whose upstream exchange failed (err carries
// the wireerr class; it may be ErrCircuitOpen). The coherency/availability
// tradeoff of §5 tilts toward availability: an expired-but-present cached
// copy that expired no more than MaxStaleOnError seconds ago is served
// with X-Cache: STALE and Warning: 110 rather than failing the client.
// With no servable copy, timeouts map to 504 and everything else to 502.
func (p *Proxy) degrade(st upstreamState, now int64, err error) *httpwire.Response {
	if st.hit && p.cfg.MaxStaleOnError >= 0 && !errors.Is(err, wireerr.ErrCanceled) &&
		now <= st.cachedExpires+p.cfg.MaxStaleOnError {
		p.c.staleServes.Inc()
		out := serveCopy(st.cachedBody, st.cachedLM, st.cachedLMDate, st.cachedCT)
		out.Header.Set("X-Cache", "STALE")
		out.Header.Set("Warning", `110 - "Response is Stale"`)
		return out
	}
	if errors.Is(err, wireerr.ErrRequestTimeout) || errors.Is(err, wireerr.ErrDialTimeout) {
		return httpwire.NewResponse(504)
	}
	return httpwire.NewResponse(502)
}

// delta returns the freshness interval for key.
func (p *Proxy) delta(key string) int64 {
	if p.fresh != nil {
		return p.fresh.Delta(key)
	}
	return p.cfg.Delta
}

// processPiggyback applies a P-Volume message (§2.1): note the volume in
// the server's RPV list, freshen or invalidate cached copies, pin predicted
// entries for replacement, queue prefetches, and feed the freshness
// estimator. Each element is one shard-local critical section
// (cache.ApplyPiggyback), so a large trailer never stalls hits on
// unrelated shards — it only ever holds one shard's lock at a time.
func (p *Proxy) processPiggyback(host string, m core.Message, now int64) {
	p.c.piggybacksReceived.Inc()
	p.c.piggybackElements.Add(int64(len(m.Elements)))
	p.rpv.Note(host, m.Volume, now)
	for _, el := range m.Elements {
		// A transparent volume center may piggyback host-qualified
		// elements covering multiple sites; plain servers send
		// server-relative paths.
		key := host + el.URL
		elHost, elPath := host, el.URL
		if !strings.HasPrefix(el.URL, "/") {
			key = el.URL
			if i := strings.IndexByte(el.URL, '/'); i >= 0 {
				elHost, elPath = el.URL[:i], el.URL[i:]
			} else {
				elHost, elPath = el.URL, "/"
			}
		}
		if p.fresh != nil {
			p.fresh.Observe(key, el.LastModified)
		}
		switch p.cache.ApplyPiggyback(key, el.LastModified, now+p.delta(key), now+p.cfg.RPVTimeout, now) {
		case cache.PiggybackInvalidated:
			// Stale copy: deleted; a fresh copy could be prefetched
			// (§2.1).
			p.c.invalidations.Inc()
			if p.cfg.Prefetch {
				p.queue.Push(FetchItem{Host: elHost, URL: elPath, Size: el.Size, LastModified: el.LastModified})
			}
		case cache.PiggybackRefreshed:
			p.c.refreshes.Inc()
		case cache.PiggybackMiss:
			if p.cfg.Prefetch {
				p.queue.Push(FetchItem{Host: elHost, URL: elPath, Size: el.Size, LastModified: el.LastModified})
			}
		}
	}
}

// DrainPrefetchesContext synchronously services up to max queued
// prefetches (smallest first), returning how many were fetched; it stops
// early when ctx ends. Prefetch requests disable piggybacking to avoid
// speculative cascades. Each fetch goes through the same single-flight map
// as client misses, closing the Peek-then-fetch window where two
// concurrent drains — or a drain racing a client miss — would both fetch
// one key: the loser joins the winner's flight (or skips) instead of
// issuing its own origin exchange.
func (p *Proxy) DrainPrefetchesContext(ctx context.Context, max int) int {
	fetched := 0
	for fetched < max {
		if ctx.Err() != nil {
			return fetched
		}
		it, ok := p.queue.Pop()
		if !ok {
			return fetched
		}
		now := p.cfg.Clock()
		key := it.Key()
		if p.cache.Contains(key) {
			continue
		}
		if _, shared := p.joinFlight(ctx, key); shared {
			// Another drain or a client miss is already fetching this
			// key; its Put will populate the cache.
			continue
		}
		out, ok := p.prefetchOne(ctx, it, key, now)
		p.finishFlight(key, out)
		if ok {
			fetched++
		}
	}
	return fetched
}

// prefetchOne runs one speculative origin fetch as a flight leader. It
// always returns a response for the flight's waiters (a joined client miss
// is served the prefetched body) and reports whether a 200 was cached.
func (p *Proxy) prefetchOne(ctx context.Context, it FetchItem, key string, now int64) (*httpwire.Response, bool) {
	if !p.breaker.Allow(it.Host) {
		// Don't burn speculative fetches against a tripped host.
		p.client.Obs.CountErrClass("circuit_open")
		return httpwire.NewResponse(502), false
	}
	addr, err := p.cfg.Resolve(it.Host)
	if err != nil {
		p.countUpstreamError()
		return httpwire.NewResponse(502), false
	}
	oreq := httpwire.NewRequest("GET", it.URL)
	oreq.Header.Set("Host", it.Host)
	httpwire.SetFilter(oreq, core.Filter{Disabled: true})
	resp, err := p.client.DoContext(ctx, addr, oreq)
	if err != nil {
		p.countUpstreamError()
		if qualifyingFailure(err) {
			p.breaker.Failure(it.Host)
		}
		return httpwire.NewResponse(502), false
	}
	p.breaker.Success(it.Host)
	if resp.Status != 200 {
		out := httpwire.NewResponse(resp.Status)
		out.Body = resp.Body
		return out, false
	}
	lm, _ := resp.LastModified()
	ct := resp.Header.Get("Content-Type")
	lmDate := resp.Header.Get("Last-Modified")
	p.c.prefetches.Inc()
	p.cache.Put(cache.Entry{
		URL:              key,
		Size:             int64(len(resp.Body)),
		LastModified:     lm,
		LastModifiedHTTP: lmDate,
		Expires:          now + p.delta(key),
		FetchedAt:        now,
		Body:             resp.Body,
		ContentType:      ct,
		Prefetched:       true,
	}, now)
	out := serveCopy(resp.Body, lm, lmDate, ct)
	out.Header.Set("X-Cache", "MISS")
	return out, true
}
