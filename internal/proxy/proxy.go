// Package proxy implements the caching Web proxy of §2.1 and the §4
// applications: cache lookup with a freshness interval Δ, If-Modified-Since
// validation, piggyback filters on upstream requests (with per-server RPV
// lists), and processing of P-Volume trailers — freshening and invalidating
// cached entries, guiding replacement, feeding the prefetch queue, and
// adapting per-resource freshness intervals.
package proxy

import (
	"fmt"
	"strings"
	"sync"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/delta"
	"piggyback/internal/httpwire"
	"piggyback/internal/obs"
)

// Config parameterizes a Proxy.
type Config struct {
	// CacheBytes is the cache capacity; zero means 64 MiB.
	CacheBytes int64
	// Policy is the replacement policy; nil means PiggybackLRU.
	Policy cache.Policy
	// Delta is the default freshness interval in seconds (§2.1); zero
	// means 3600.
	Delta int64
	// BaseFilter is attached to upstream requests (the per-server RPV
	// list is added per request).
	BaseFilter core.Filter
	// RPVTimeout and RPVMaxLen configure the per-server RPV lists
	// (§2.2); timeout zero means Delta (its upper bound).
	RPVTimeout int64
	RPVMaxLen  int
	// Resolve maps a host name to a dialable address. Required: the
	// testbed has no DNS.
	Resolve func(host string) (string, error)
	// Clock returns the current Unix time. Required.
	Clock func() int64
	// Prefetch enables speculative fetching of piggybacked resources
	// not in the cache (§4), via the informed (smallest-first) queue.
	Prefetch bool
	// AdaptiveFreshness enables per-resource Δ from observed
	// modification rates (§4); off, every entry gets the default Δ.
	AdaptiveFreshness bool
	// ReportHits piggybacks the URLs served from cache since the last
	// upstream request onto the next request to that server (Piggy-Hits
	// header, §5 future work), so the server's volumes keep seeing the
	// popularity of resources the proxy absorbs.
	ReportHits bool
	// DeltaEncoding requests block-level deltas (A-IM: blockdiff) when
	// validating stale entries, reconstructing the new version from the
	// cached body plus the server's patch (§4, ref [23]).
	DeltaEncoding bool
	// MinDelta/MaxDelta clamp adaptive Δ; zero means Delta/10 and
	// Delta*24.
	MinDelta, MaxDelta int64
}

// Stats counts proxy-side protocol activity.
type Stats struct {
	ClientRequests int
	// FreshHits were served entirely from the cache.
	FreshHits int
	// Validations are conditional GETs sent upstream for stale entries.
	Validations int
	// NotModified counts 304s received for those validations.
	NotModified int
	// MissFetches are full fetches for resources not in the cache.
	MissFetches int
	// PiggybacksReceived counts P-Volume trailers processed.
	PiggybacksReceived int
	PiggybackElements  int
	// Refreshes are cached entries freshened by a piggyback element;
	// Invalidations are cached entries found stale by one (§4 cache
	// coherency).
	Refreshes     int
	Invalidations int
	// Prefetches counts speculative fetches issued; UsefulPrefetches
	// those later hit by a client request.
	Prefetches       int
	UsefulPrefetches int
	// HitsReported counts cache-hit URLs piggybacked upstream (§5).
	HitsReported int
	// DeltaUpdates counts 226 delta responses applied; DeltaBytesSaved
	// the body bytes they avoided transferring (§4, ref [23]).
	DeltaUpdates    int
	DeltaBytesSaved int64
	// SingleflightShared counts client requests served from another
	// in-flight fetch of the same key instead of their own origin
	// exchange (miss de-duplication).
	SingleflightShared int
	// UpstreamErrors counts failed origin exchanges.
	UpstreamErrors int
}

// Proxy is a caching piggybacking proxy, served over httpwire.
type Proxy struct {
	cfg    Config
	client *httpwire.Client
	rpv    *core.RPVTable
	fresh  *FreshnessEstimator
	queue  *InformedQueue
	obs    *obs.Registry
	c      proxyCounters

	mu          sync.Mutex
	cache       *cache.Cache
	pendingHits map[string][]string // host -> cache-hit paths to report

	// flights de-duplicates concurrent misses: the first requester of a
	// cold key becomes the leader and fetches; the rest wait on its
	// flight and share the response, so N clients hitting one cold URL
	// cost one origin exchange.
	sfMu    sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress leader fetch. resp is written once, before
// done is closed; waiters read it only after <-done.
type flight struct {
	done chan struct{}
	resp *httpwire.Response
}

// proxyCounters caches the registry's counter pointers: stat updates are
// single atomic adds, outside the cache mutex.
type proxyCounters struct {
	clientRequests     *obs.Counter
	freshHits          *obs.Counter
	validations        *obs.Counter
	notModified        *obs.Counter
	missFetches        *obs.Counter
	piggybacksReceived *obs.Counter
	piggybackElements  *obs.Counter
	refreshes          *obs.Counter
	invalidations      *obs.Counter
	prefetches         *obs.Counter
	usefulPrefetches   *obs.Counter
	hitsReported       *obs.Counter
	deltaUpdates       *obs.Counter
	deltaBytesSaved    *obs.Counter
	singleflightShared *obs.Counter
	upstreamErrors     *obs.Counter
}

// New returns a Proxy for cfg.
func New(cfg Config) *Proxy {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.Policy == nil {
		cfg.Policy = cache.PiggybackLRU{}
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 3600
	}
	if cfg.RPVTimeout <= 0 || cfg.RPVTimeout > cfg.Delta {
		// §2.2: the RPV timeout must not exceed the freshness
		// interval Δ.
		cfg.RPVTimeout = cfg.Delta
	}
	if cfg.MinDelta <= 0 {
		cfg.MinDelta = cfg.Delta / 10
	}
	if cfg.MaxDelta <= 0 {
		cfg.MaxDelta = cfg.Delta * 24
	}
	reg := obs.NewRegistry()
	p := &Proxy{
		cfg:         cfg,
		client:      httpwire.NewClient(),
		rpv:         core.NewRPVTable(cfg.RPVTimeout, cfg.RPVMaxLen),
		cache:       cache.New(cfg.CacheBytes, cfg.Policy),
		queue:       NewInformedQueue(),
		pendingHits: make(map[string][]string),
		flights:     make(map[string]*flight),
		obs:         reg,
		c: proxyCounters{
			clientRequests:     reg.Counter("proxy.client_requests"),
			freshHits:          reg.Counter("proxy.fresh_hits"),
			validations:        reg.Counter("proxy.validations"),
			notModified:        reg.Counter("proxy.not_modified"),
			missFetches:        reg.Counter("proxy.miss_fetches"),
			piggybacksReceived: reg.Counter("proxy.piggybacks_received"),
			piggybackElements:  reg.Counter("proxy.piggyback_elements"),
			refreshes:          reg.Counter("proxy.refreshes"),
			invalidations:      reg.Counter("proxy.invalidations"),
			prefetches:         reg.Counter("proxy.prefetches"),
			usefulPrefetches:   reg.Counter("proxy.useful_prefetches"),
			hitsReported:       reg.Counter("proxy.hits_reported"),
			deltaUpdates:       reg.Counter("proxy.delta_updates"),
			deltaBytesSaved:    reg.Counter("proxy.delta_bytes_saved"),
			singleflightShared: reg.Counter("proxy.singleflight_shared"),
			upstreamErrors:     reg.Counter("proxy.upstream_errors"),
		},
	}
	// The upstream client's wire metrics (round-trip latency, retries,
	// dials) land in the same registry under wire.upstream.*.
	p.client.Obs = obs.NewWireMetrics(reg, "wire.upstream")
	if cfg.AdaptiveFreshness {
		p.fresh = NewFreshnessEstimator(cfg.Delta, cfg.MinDelta, cfg.MaxDelta)
	}
	return p
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		ClientRequests:     int(p.c.clientRequests.Load()),
		FreshHits:          int(p.c.freshHits.Load()),
		Validations:        int(p.c.validations.Load()),
		NotModified:        int(p.c.notModified.Load()),
		MissFetches:        int(p.c.missFetches.Load()),
		PiggybacksReceived: int(p.c.piggybacksReceived.Load()),
		PiggybackElements:  int(p.c.piggybackElements.Load()),
		Refreshes:          int(p.c.refreshes.Load()),
		Invalidations:      int(p.c.invalidations.Load()),
		Prefetches:         int(p.c.prefetches.Load()),
		UsefulPrefetches:   int(p.c.usefulPrefetches.Load()),
		HitsReported:       int(p.c.hitsReported.Load()),
		DeltaUpdates:       int(p.c.deltaUpdates.Load()),
		DeltaBytesSaved:    p.c.deltaBytesSaved.Load(),
		SingleflightShared: int(p.c.singleflightShared.Load()),
		UpstreamErrors:     int(p.c.upstreamErrors.Load()),
	}
}

// Obs returns the proxy's telemetry registry (also served live on
// obs.StatsPath).
func (p *Proxy) Obs() *obs.Registry { return p.obs }

// CacheHitRate returns the cache's hit rate.
func (p *Proxy) CacheHitRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cache.HitRate()
}

// Queue exposes the informed fetch queue (for draining in tests and the
// prefetch loop).
func (p *Proxy) Queue() *InformedQueue { return p.queue }

// Freshness exposes the adaptive freshness estimator (nil when disabled).
func (p *Proxy) Freshness() *FreshnessEstimator { return p.fresh }

// Close releases upstream connections.
func (p *Proxy) Close() { p.client.Close() }

// splitTarget extracts (host, path) from a proxy request: absolute-URI
// form "http://host/path", or Host header + origin-form path.
func splitTarget(req *httpwire.Request) (host, path string, err error) {
	t := req.Path
	if strings.HasPrefix(t, "http://") {
		rest := strings.TrimPrefix(t, "http://")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return rest[:i], rest[i:], nil
		}
		return rest, "/", nil
	}
	host = req.Header.Get("Host")
	if host == "" {
		return "", "", fmt.Errorf("proxy: request has neither absolute URI nor Host header")
	}
	if !strings.HasPrefix(t, "/") {
		t = "/" + t
	}
	return host, t, nil
}

// upstreamState carries what one request needs across the unlocked
// upstream exchange: the target, and — when a stale copy exists — the
// cached body and Last-Modified, copied under p.mu so no *cache.Entry
// pointer is touched while other goroutines mutate the cache.
type upstreamState struct {
	key, host, path string
	hit             bool
	cachedLM        int64
	cachedBody      []byte
}

// ServeWire implements httpwire.Handler.
func (p *Proxy) ServeWire(req *httpwire.Request) *httpwire.Response {
	if httpwire.IsStatsRequest(req) {
		return httpwire.StatsResponse(p.obs)
	}
	now := p.cfg.Clock()
	host, path, err := splitTarget(req)
	if err != nil || req.Method != "GET" {
		if err == nil && req.Method != "GET" {
			return httpwire.NewResponse(501)
		}
		return httpwire.NewResponse(400)
	}
	key := host + path

	p.c.clientRequests.Inc()
	st, resp := p.lookup(key, host, path, now)
	if resp != nil {
		return resp // fresh hit
	}
	if !st.hit {
		// Cold key: de-duplicate concurrent misses. Only one goroutine
		// fetches; the rest share its response.
		if shared, ok := p.joinFlight(key); ok {
			p.c.singleflightShared.Inc()
			return shared
		}
		out := p.fetch(st, now)
		p.finishFlight(key, out)
		return out
	}
	// Stale copy: each holder validates with its own conditional GET.
	return p.fetch(st, now)
}

// lookup runs the locked cache-side half of a request. It returns a
// response for a fresh hit, or the state the upstream exchange needs.
func (p *Proxy) lookup(key, host, path string, now int64) (upstreamState, *httpwire.Response) {
	st := upstreamState{key: key, host: host, path: path}
	p.mu.Lock()
	defer p.mu.Unlock()
	entry, hit := p.cache.Get(key, now)
	if hit && entry.Fresh(now) {
		resp := p.serveEntry(entry)
		if entry.Prefetched {
			entry.Prefetched = false
			p.c.usefulPrefetches.Inc()
		}
		p.c.freshHits.Inc()
		if p.cfg.ReportHits {
			hits := p.pendingHits[host]
			if len(hits) < 32 {
				p.pendingHits[host] = append(hits, path)
			}
		}
		resp.Header.Set("X-Cache", "HIT")
		return st, resp
	}
	st.hit = hit
	if hit {
		// Copy the fields the exchange needs while the lock is held;
		// entry itself must not escape this function.
		st.cachedLM = entry.LastModified
		st.cachedBody = entry.Body
		if entry.Prefetched {
			entry.Prefetched = false
			p.c.usefulPrefetches.Inc()
		}
	}
	return st, nil
}

// joinFlight waits on an existing flight for key and returns its shared
// response, or registers the caller as the flight leader (ok == false).
func (p *Proxy) joinFlight(key string) (*httpwire.Response, bool) {
	p.sfMu.Lock()
	if f, ok := p.flights[key]; ok {
		p.sfMu.Unlock()
		<-f.done
		out := httpwire.NewResponse(f.resp.Status)
		for k, v := range f.resp.Header {
			out.Header[k] = v
		}
		out.Body = f.resp.Body // bodies are never mutated once built
		out.Header.Set("X-Cache", "SHARED")
		return out, true
	}
	p.flights[key] = &flight{done: make(chan struct{})}
	p.sfMu.Unlock()
	return nil, false
}

// finishFlight publishes the leader's response and releases the waiters.
func (p *Proxy) finishFlight(key string, out *httpwire.Response) {
	p.sfMu.Lock()
	f := p.flights[key]
	delete(p.flights, key)
	p.sfMu.Unlock()
	f.resp = out
	close(f.done)
}

// fetch runs the upstream exchange for st — conditional when a stale copy
// exists (§2.1) — and the locked cache update that follows.
func (p *Proxy) fetch(st upstreamState, now int64) *httpwire.Response {
	// Snapshot the filter state and pending hit reports under the lock.
	p.mu.Lock()
	filter := p.cfg.BaseFilter
	filter.RPV = p.rpv.Snapshot(st.host, now)
	var reportHits []string
	if p.cfg.ReportHits {
		reportHits = p.pendingHits[st.host]
		delete(p.pendingHits, st.host)
		p.c.hitsReported.Add(int64(len(reportHits)))
	}
	p.mu.Unlock()

	oreq := httpwire.NewRequest("GET", st.path)
	oreq.Header.Set("Host", st.host)
	if st.hit {
		oreq.Header.Set("If-Modified-Since", httpwire.FormatHTTPDate(st.cachedLM))
		if p.cfg.DeltaEncoding {
			oreq.Header.Set("A-IM", "blockdiff")
		}
	}
	httpwire.SetFilter(oreq, filter)
	httpwire.SetHits(oreq, reportHits)

	addr, err := p.cfg.Resolve(st.host)
	if err != nil {
		p.countUpstreamError()
		return httpwire.NewResponse(502)
	}
	resp, err := p.client.Do(addr, oreq)
	if err != nil {
		p.countUpstreamError()
		return httpwire.NewResponse(502)
	}

	key := st.key
	p.mu.Lock()
	defer p.mu.Unlock()

	var out *httpwire.Response
	switch {
	case resp.Status == 226 && st.hit:
		// Delta response: reconstruct the new version from the cached
		// body and the patch (§4, ref [23]).
		newBody, lm, err := applyDelta(st.cachedBody, resp)
		if err != nil {
			// A malformed delta falls back to a plain refetch next
			// time; serve the stale copy rather than failing the
			// client.
			p.c.upstreamErrors.Inc()
			out = serveCopy(st.cachedBody, st.cachedLM)
			break
		}
		p.c.validations.Inc()
		p.c.deltaUpdates.Inc()
		p.c.deltaBytesSaved.Add(int64(len(newBody) - len(resp.Body)))
		e := cache.Entry{
			URL:          key,
			Size:         int64(len(newBody)),
			LastModified: lm,
			Expires:      now + p.delta(key),
			FetchedAt:    now,
			Body:         newBody,
		}
		if p.fresh != nil {
			p.fresh.Observe(key, lm)
		}
		p.cache.Put(e, now)
		out = httpwire.NewResponse(200)
		out.Body = newBody
		if lm > 0 {
			out.Header.Set("Last-Modified", httpwire.FormatHTTPDate(lm))
		}
	case resp.Status == 304 && st.hit:
		p.c.validations.Inc()
		p.c.notModified.Inc()
		p.cache.Freshen(key, now+p.delta(key))
		// Serve the validated copy, not whatever the cache holds now —
		// a concurrent fetch may have replaced the entry since we
		// unlocked.
		out = serveCopy(st.cachedBody, st.cachedLM)
	case resp.Status == 200:
		if st.hit {
			p.c.validations.Inc()
		} else {
			p.c.missFetches.Inc()
		}
		lm, _ := resp.LastModified()
		e := cache.Entry{
			URL:          key,
			Size:         int64(len(resp.Body)),
			LastModified: lm,
			Expires:      now + p.delta(key),
			FetchedAt:    now,
			Body:         resp.Body,
		}
		if p.fresh != nil {
			p.fresh.Observe(key, lm)
		}
		p.cache.Put(e, now)
		out = httpwire.NewResponse(200)
		out.Body = resp.Body
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			out.Header.Set("Content-Type", ct)
		}
		if lm > 0 {
			out.Header.Set("Last-Modified", httpwire.FormatHTTPDate(lm))
		}
	case resp.Status == 304 || resp.Status == 226:
		// Conditional-only statuses for a request that carried no
		// condition (or no cached base for a delta): the origin is
		// confused; a client that sent a plain GET cannot interpret
		// them, so surface a gateway error instead of forwarding.
		p.c.upstreamErrors.Inc()
		out = httpwire.NewResponse(502)
	default:
		// Pass other statuses through without caching.
		out = httpwire.NewResponse(resp.Status)
		out.Body = resp.Body
	}
	out.Header.Set("X-Cache", "MISS")

	if m, ok := httpwire.ExtractPiggyback(resp); ok {
		p.processPiggyback(st.host, m, now)
	}
	return out
}

// applyDelta reconstructs the new body from a 226 response.
func applyDelta(cachedBody []byte, resp *httpwire.Response) (body []byte, lastModified int64, err error) {
	if !strings.EqualFold(strings.TrimSpace(resp.Header.Get("IM")), "blockdiff") {
		return nil, 0, fmt.Errorf("proxy: 226 without IM: blockdiff")
	}
	patch, err := delta.Decode(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	body, err = delta.Apply(cachedBody, patch)
	if err != nil {
		return nil, 0, err
	}
	lm, _ := resp.LastModified()
	return body, lm, nil
}

// serveEntry builds a 200 response from a cached entry. Caller holds p.mu.
func (p *Proxy) serveEntry(e *cache.Entry) *httpwire.Response {
	return serveCopy(e.Body, e.LastModified)
}

// serveCopy builds a 200 response from a body and Last-Modified copied out
// of the cache earlier; it never touches a live *cache.Entry.
func serveCopy(body []byte, lastModified int64) *httpwire.Response {
	resp := httpwire.NewResponse(200)
	resp.Body = body
	if lastModified > 0 {
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(lastModified))
	}
	return resp
}

func (p *Proxy) countUpstreamError() { p.c.upstreamErrors.Inc() }

// delta returns the freshness interval for key.
func (p *Proxy) delta(key string) int64 {
	if p.fresh != nil {
		return p.fresh.Delta(key)
	}
	return p.cfg.Delta
}

// processPiggyback applies a P-Volume message (§2.1): note the volume in
// the server's RPV list, freshen or invalidate cached copies, pin predicted
// entries for replacement, queue prefetches, and feed the freshness
// estimator. Caller holds p.mu.
func (p *Proxy) processPiggyback(host string, m core.Message, now int64) {
	p.c.piggybacksReceived.Inc()
	p.c.piggybackElements.Add(int64(len(m.Elements)))
	p.rpv.Note(host, m.Volume, now)
	for _, el := range m.Elements {
		// A transparent volume center may piggyback host-qualified
		// elements covering multiple sites; plain servers send
		// server-relative paths.
		key := host + el.URL
		elHost, elPath := host, el.URL
		if !strings.HasPrefix(el.URL, "/") {
			key = el.URL
			if i := strings.IndexByte(el.URL, '/'); i >= 0 {
				elHost, elPath = el.URL[:i], el.URL[i:]
			} else {
				elHost, elPath = el.URL, "/"
			}
		}
		if p.fresh != nil {
			p.fresh.Observe(key, el.LastModified)
		}
		if e, ok := p.cache.Peek(key); ok {
			if el.LastModified > e.LastModified {
				// Stale copy: delete; a fresh copy could be
				// prefetched (§2.1).
				p.cache.Delete(key)
				p.c.invalidations.Inc()
				if p.cfg.Prefetch {
					p.queue.Push(FetchItem{Host: elHost, URL: elPath, Size: el.Size, LastModified: el.LastModified})
				}
			} else {
				p.cache.Freshen(key, now+p.delta(key))
				p.cache.Hint(key, now+p.cfg.RPVTimeout, now)
				p.c.refreshes.Inc()
			}
			continue
		}
		if p.cfg.Prefetch {
			p.queue.Push(FetchItem{Host: elHost, URL: elPath, Size: el.Size, LastModified: el.LastModified})
		}
	}
}

// DrainPrefetches synchronously services up to max queued prefetches
// (smallest first), returning how many were fetched. Prefetch requests
// disable piggybacking to avoid speculative cascades.
func (p *Proxy) DrainPrefetches(max int) int {
	fetched := 0
	for fetched < max {
		it, ok := p.queue.Pop()
		if !ok {
			return fetched
		}
		now := p.cfg.Clock()
		key := it.Key()
		p.mu.Lock()
		_, cached := p.cache.Peek(key)
		p.mu.Unlock()
		if cached {
			continue
		}
		addr, err := p.cfg.Resolve(it.Host)
		if err != nil {
			p.countUpstreamError()
			continue
		}
		oreq := httpwire.NewRequest("GET", it.URL)
		oreq.Header.Set("Host", it.Host)
		httpwire.SetFilter(oreq, core.Filter{Disabled: true})
		resp, err := p.client.Do(addr, oreq)
		if err != nil {
			p.countUpstreamError()
			continue
		}
		if resp.Status != 200 {
			continue
		}
		lm, _ := resp.LastModified()
		p.mu.Lock()
		p.c.prefetches.Inc()
		p.cache.Put(cache.Entry{
			URL:          key,
			Size:         int64(len(resp.Body)),
			LastModified: lm,
			Expires:      now + p.delta(key),
			FetchedAt:    now,
			Body:         resp.Body,
			Prefetched:   true,
		}, now)
		p.mu.Unlock()
		fetched++
	}
	return fetched
}
