package proxy

import (
	"context"
	"net"
	"testing"
	"time"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/httpwire"
	"piggyback/internal/server"
)

// testbed wires origin -> proxy over loopback with a controllable clock.
type testbed struct {
	origin  *server.Server
	store   *server.Store
	proxy   *Proxy
	client  *httpwire.Client
	prxAddr string
	now     int64
}

func newTestbed(t *testing.T, cfg Config) *testbed {
	t.Helper()
	tb := &testbed{now: 10000}
	clock := func() int64 { return tb.now }

	tb.store = server.NewStore()
	tb.store.Put(server.Resource{URL: "/a/x.html", Size: 100, LastModified: 1000})
	tb.store.Put(server.Resource{URL: "/a/y.gif", Size: 50, LastModified: 1500})
	tb.store.Put(server.Resource{URL: "/a/big.pdf", Size: 5000, LastModified: 1200})
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true})
	tb.origin = server.New(tb.store, vols, clock)

	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: tb.origin}
	go osrv.Serve(ol)
	t.Cleanup(func() { osrv.Close() })
	originAddr := ol.Addr().String()

	cfg.Clock = clock
	cfg.Resolve = func(host string) (string, error) { return originAddr, nil }
	tb.proxy = New(cfg)
	t.Cleanup(tb.proxy.Close)

	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	psrv := &httpwire.Server{Handler: tb.proxy, IdleTimeout: 5 * time.Second}
	go psrv.Serve(pl)
	t.Cleanup(func() { psrv.Close() })
	tb.prxAddr = pl.Addr().String()

	tb.client = httpwire.NewClient()
	t.Cleanup(tb.client.Close)
	return tb
}

// get issues a client request through the proxy (absolute-URI form).
func (tb *testbed) get(t *testing.T, url string) *httpwire.Response {
	t.Helper()
	resp, err := tb.client.DoContext(context.Background(), tb.prxAddr, httpwire.NewRequest("GET", "http://"+url))
	if err != nil {
		t.Fatalf("client request for %s: %v", url, err)
	}
	return resp
}

func TestProxyMissThenFreshHit(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600})
	r1 := tb.get(t, "www.site.com/a/x.html")
	if r1.Status != 200 || r1.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first: %d %s", r1.Status, r1.Header.Get("X-Cache"))
	}
	tb.now += 10
	r2 := tb.get(t, "www.site.com/a/x.html")
	if r2.Status != 200 || r2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second: %d %s", r2.Status, r2.Header.Get("X-Cache"))
	}
	if string(r1.Body) != string(r2.Body) {
		t.Error("cached body differs")
	}
	st := tb.proxy.Stats()
	if st.MissFetches != 1 || st.FreshHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The origin saw exactly one request.
	if tb.origin.Stats().Requests != 1 {
		t.Errorf("origin requests = %d", tb.origin.Stats().Requests)
	}
}

func TestProxyValidatesStaleEntry(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600})
	tb.get(t, "www.site.com/a/x.html")
	tb.now += 700 // past Δ: stale
	r := tb.get(t, "www.site.com/a/x.html")
	if r.Status != 200 {
		t.Fatalf("status = %d", r.Status)
	}
	st := tb.proxy.Stats()
	if st.Validations != 1 || st.NotModified != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Freshened: immediate re-request is a fresh hit.
	tb.now += 10
	tb.get(t, "www.site.com/a/x.html")
	if tb.proxy.Stats().FreshHits != 1 {
		t.Errorf("freshened entry not hit: %+v", tb.proxy.Stats())
	}
}

func TestProxyFetchesModifiedVersion(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600})
	tb.get(t, "www.site.com/a/x.html")
	tb.store.Modify("/a/x.html", 2000, 120)
	tb.now += 700
	r := tb.get(t, "www.site.com/a/x.html")
	if r.Status != 200 {
		t.Fatalf("status = %d", r.Status)
	}
	if lm, _ := r.LastModified(); lm != 2000 {
		t.Errorf("Last-Modified = %d, want 2000", lm)
	}
	if len(r.Body) != 120 {
		t.Errorf("body = %d bytes, want 120", len(r.Body))
	}
}

func TestProxyPiggybackRefreshesCachedEntry(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600})
	tb.get(t, "www.site.com/a/y.gif")  // cache y
	tb.now += 590                      // y nearly stale
	tb.get(t, "www.site.com/a/x.html") // piggyback refreshes y
	st := tb.proxy.Stats()
	if st.PiggybacksReceived == 0 {
		t.Fatal("no piggyback received")
	}
	if st.Refreshes == 0 {
		t.Fatalf("piggyback did not freshen cached entry: %+v", st)
	}
	// y stays fresh past its original Δ without contacting the origin.
	tb.now += 100
	origin := tb.origin.Stats().Requests
	r := tb.get(t, "www.site.com/a/y.gif")
	if r.Header.Get("X-Cache") != "HIT" {
		t.Error("refreshed entry was not served from cache")
	}
	if tb.origin.Stats().Requests != origin {
		t.Error("refreshed entry still validated at origin")
	}
}

func TestProxyPiggybackInvalidatesStaleEntry(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600})
	tb.get(t, "www.site.com/a/y.gif")
	tb.store.Modify("/a/y.gif", 5000, 0) // y changes at the origin
	tb.now += 10
	tb.get(t, "www.site.com/a/x.html") // piggyback reveals the change
	st := tb.proxy.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d: %+v", st.Invalidations, st)
	}
	// Next access must fetch the new version (miss, not hit).
	tb.now += 10
	r := tb.get(t, "www.site.com/a/y.gif")
	if r.Header.Get("X-Cache") != "MISS" {
		t.Error("invalidated entry served from cache")
	}
	if lm, _ := r.LastModified(); lm != 5000 {
		t.Errorf("Last-Modified = %d, want 5000", lm)
	}
}

func TestProxyRPVSuppressesSecondPiggyback(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600, RPVTimeout: 300})
	tb.get(t, "www.site.com/a/x.html")
	tb.now += 5
	tb.get(t, "www.site.com/a/y.gif") // same volume: RPV suppresses
	if got := tb.origin.Stats().PiggybacksSent; got != 1 {
		t.Errorf("origin sent %d piggybacks, want 1 (RPV)", got)
	}
	tb.now += 400 // RPV expired
	tb.get(t, "www.site.com/a/big.pdf")
	if got := tb.origin.Stats().PiggybacksSent; got != 2 {
		t.Errorf("origin sent %d piggybacks, want 2 after RPV expiry", got)
	}
}

func TestProxyPrefetchQueueAndDrain(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600, Prefetch: true})
	// Seed volume with two resources via direct origin traffic (another
	// proxy's activity).
	seed := httpwire.NewClient()
	defer seed.Close()
	addr, _ := tb.proxy.cfg.Resolve("www.site.com")
	for _, p := range []string{"/a/y.gif", "/a/big.pdf"} {
		if _, err := seed.DoContext(context.Background(), addr, httpwire.NewRequest("GET", p)); err != nil {
			t.Fatal(err)
		}
	}
	tb.get(t, "www.site.com/a/x.html")
	if tb.proxy.Queue().Len() != 2 {
		t.Fatalf("queue = %d, want 2", tb.proxy.Queue().Len())
	}
	n := tb.proxy.DrainPrefetchesContext(context.Background(), 10)
	if n != 2 {
		t.Fatalf("prefetched %d, want 2", n)
	}
	// Both now served from cache.
	tb.now += 10
	if r := tb.get(t, "www.site.com/a/y.gif"); r.Header.Get("X-Cache") != "HIT" {
		t.Error("prefetched resource missed")
	}
	st := tb.proxy.Stats()
	if st.Prefetches != 2 || st.UsefulPrefetches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyAdaptiveFreshness(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600, AdaptiveFreshness: true, MinDelta: 60, MaxDelta: 86400})
	// Modifications ~100s apart teach the estimator a short change
	// interval => Δ well below the 600s default (clamped at MinDelta).
	tb.store.Modify("/a/x.html", tb.now-100, 0)
	tb.get(t, "www.site.com/a/x.html")
	tb.store.Modify("/a/x.html", tb.now, 0)
	tb.now += 700
	tb.get(t, "www.site.com/a/x.html")
	tb.store.Modify("/a/x.html", tb.now-600, 0) // 600s after previous mod
	tb.get(t, "www.site.com/a/x.html")

	d := tb.proxy.Freshness().Delta("www.site.com/a/x.html")
	if d >= 600 {
		t.Errorf("adaptive Δ = %d, want < default for fast-changing resource", d)
	}
	if d < 60 {
		t.Errorf("adaptive Δ = %d, below MinDelta", d)
	}
}

func TestProxyRejectsNonGET(t *testing.T) {
	tb := newTestbed(t, Config{})
	req := httpwire.NewRequest("POST", "http://www.site.com/a/x.html")
	resp, err := tb.client.DoContext(context.Background(), tb.prxAddr, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 501 {
		t.Errorf("status = %d, want 501", resp.Status)
	}
}

func TestProxyHostHeaderForm(t *testing.T) {
	tb := newTestbed(t, Config{})
	req := httpwire.NewRequest("GET", "/a/x.html")
	req.Header.Set("Host", "www.site.com")
	resp, err := tb.client.DoContext(context.Background(), tb.prxAddr, req)
	if err != nil || resp.Status != 200 {
		t.Fatalf("host-form request: %v %d", err, resp.Status)
	}
	// Missing host entirely: 400.
	req2 := httpwire.NewRequest("GET", "/a/x.html")
	resp2, err := tb.client.DoContext(context.Background(), tb.prxAddr, req2)
	if err != nil || resp2.Status != 400 {
		t.Fatalf("hostless request: %v %d", err, resp2.Status)
	}
}

func TestProxyUpstreamErrorIs502(t *testing.T) {
	clock := func() int64 { return 1 }
	p := New(Config{
		Clock:   clock,
		Resolve: func(host string) (string, error) { return "127.0.0.1:1", nil },
	})
	defer p.Close()
	req := httpwire.NewRequest("GET", "http://dead.example.com/x")
	resp := p.ServeWire(context.Background(), req)
	if resp.Status != 502 {
		t.Errorf("status = %d, want 502", resp.Status)
	}
	if p.Stats().UpstreamErrors != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestProxyEvictionUnderPressure(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600, CacheBytes: 150, Policy: cache.LRU{}})
	tb.get(t, "www.site.com/a/x.html") // 100 bytes
	tb.now++
	tb.get(t, "www.site.com/a/y.gif") // 50 bytes: fits alongside
	tb.now++
	tb.get(t, "www.site.com/a/big.pdf") // 5000: uncachable at this size
	tb.now++
	r := tb.get(t, "www.site.com/a/x.html")
	if r.Header.Get("X-Cache") != "HIT" {
		t.Error("small entries should survive oversize fetch")
	}
}

func TestProxyServesPipelinedClients(t *testing.T) {
	// A client pipelines a page and its embedded resources through the
	// proxy on one connection: responses come back in order, correctly
	// framed, mixing hits and misses.
	tb := newTestbed(t, Config{Delta: 600})
	tb.get(t, "www.site.com/a/y.gif") // warm one entry

	reqs := []*httpwire.Request{
		httpwire.NewRequest("GET", "http://www.site.com/a/x.html"),
		httpwire.NewRequest("GET", "http://www.site.com/a/y.gif"),
		httpwire.NewRequest("GET", "http://www.site.com/a/big.pdf"),
	}
	resps, err := tb.client.DoAllContext(context.Background(), tb.prxAddr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("got %d responses", len(resps))
	}
	wantLen := []int{100, 50, 5000}
	wantCache := []string{"MISS", "HIT", "MISS"}
	for i, r := range resps {
		if r.Status != 200 || len(r.Body) != wantLen[i] {
			t.Errorf("response %d: %d, %d bytes (want %d)", i, r.Status, len(r.Body), wantLen[i])
		}
		if got := r.Header.Get("X-Cache"); got != wantCache[i] {
			t.Errorf("response %d: X-Cache=%s, want %s", i, got, wantCache[i])
		}
	}
}
