package proxy

import (
	"testing"

	"piggyback/internal/core"
)

func TestProxyReportsCacheHits(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600, ReportHits: true})
	tb.get(t, "www.site.com/a/x.html") // miss
	tb.now += 5
	tb.get(t, "www.site.com/a/x.html") // fresh hit -> pending report
	tb.get(t, "www.site.com/a/x.html") // another fresh hit
	tb.now += 5
	tb.get(t, "www.site.com/a/y.gif") // miss: carries the report upstream

	ps := tb.proxy.Stats()
	if ps.HitsReported != 2 {
		t.Errorf("HitsReported = %d, want 2", ps.HitsReported)
	}
	os := tb.origin.Stats()
	if os.HitReports != 2 {
		t.Errorf("origin HitReports = %d, want 2", os.HitReports)
	}
	// The server's volume saw 2 extra accesses for /a/x.html: with a
	// MinAccess filter of 3 it now passes (1 direct + 2 reported).
	m, ok := tb.origin.Volumes().Piggyback("/a/y.gif", tb.now, mustFilter(t, "minaccess=3"))
	if !ok {
		t.Fatal("no piggyback")
	}
	found := false
	for _, e := range m.Elements {
		if e.URL == "/a/x.html" {
			found = true
		}
	}
	if !found {
		t.Errorf("reported hits did not raise popularity: %+v", m.Elements)
	}
}

func TestProxyHitReportingOffByDefault(t *testing.T) {
	tb := newTestbed(t, Config{Delta: 600})
	tb.get(t, "www.site.com/a/x.html")
	tb.now += 5
	tb.get(t, "www.site.com/a/x.html") // fresh hit
	tb.now += 5
	tb.get(t, "www.site.com/a/y.gif")
	if tb.proxy.Stats().HitsReported != 0 || tb.origin.Stats().HitReports != 0 {
		t.Error("hit reporting active without ReportHits")
	}
}

func mustFilter(t *testing.T, s string) core.Filter {
	t.Helper()
	f, err := core.ParseFilter(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
