package proxy

import (
	"context"
	"time"

	"piggyback/internal/cache"
	"piggyback/internal/core"
	"piggyback/internal/httpwire"
	"piggyback/internal/obs"
	"piggyback/internal/peer"
)

// The cooperative proxy mesh (ROADMAP item 1, in the spirit of the
// cooperative-proxy and chained-transfer architectures of PAPERS.md): a
// consistent-hash ring partitions the URL key space across a fleet of
// proxies. A local miss or stale copy of a key owned elsewhere is routed
// to its owner over the ordinary wire client before falling back to the
// origin, so N proxies fetch each resource from the origin once instead of
// N times. The forwarded request carries the Piggy-Peer hop marker: the
// owner serves it locally (cache or origin) and never forwards again, so a
// dead owner or a transient ring disagreement costs at most one hop — no
// loops. Peer-served responses are cached locally (the fleet is an L1
// everywhere, the owner its L2) and tagged X-Cache: PEER for the client.
//
// The mesh also carries the paper's coherency story at fleet scale: when
// an owner receives a P-Volume trailer from the origin, it re-propagates
// the message to the peers that recently requested into its partition
// (peer.Tracker), so one peer's invalidation/refresh freshens every cache
// in the fleet without extra origin traffic.

// mesh holds the proxy's peer-tier state: the ring, the recent-requester
// tracker, a dedicated wire client and circuit breaker for peer traffic,
// the async propagation queue, and the peer.* counters.
type mesh struct {
	self    string
	ring    *peer.Ring
	tracker *peer.Tracker
	client  *httpwire.Client
	breaker *breaker
	timeout time.Duration

	// Propagation runs off the request path: jobs queue here and one
	// worker drains them; a full queue drops (and counts) rather than
	// stalling a client response.
	jobs   chan propagation
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	c meshCounters
}

// propagation is one queued piggyback re-propagation: the origin host the
// message describes, its wire encoding, and the peers to send it to.
type propagation struct {
	originHost string
	msg        core.Message
	targets    []string
}

// meshCounters are the peer.* telemetry counters.
type meshCounters struct {
	forwards             *obs.Counter // forward attempts to an owner peer
	serves               *obs.Counter // forwards answered with a usable response
	fallbacks            *obs.Counter // forwards that fell back to the origin
	requestsServed       *obs.Counter // peer-marked requests served for our partition
	propagationsSent     *obs.Counter // piggyback messages pushed to peers
	elementsPropagated   *obs.Counter // elements in those messages (per target)
	propagationsReceived *obs.Counter // messages received from peers
	elementsReceived     *obs.Counter // elements in received messages
	propagationDrops     *obs.Counter // queue-full drops + failed sends
	peersGauge           *obs.Counter // gauge: ring size
	recentGauge          *obs.Counter // gauge-ish: recent requesters at last propagation
}

// propagationQueueLen bounds the async propagation backlog; beyond it, new
// piggybacks are dropped (and counted) instead of blocking the fetch path.
const propagationQueueLen = 256

// newMesh wires the peer tier for cfg; returns nil when the config does
// not describe a mesh (fewer than two peers or no self identity).
func newMesh(cfg Config, reg *obs.Registry) *mesh {
	if cfg.PeerSelf == "" {
		return nil
	}
	peers := cfg.Peers
	ring := peer.NewRing(append(append([]string{}, peers...), cfg.PeerSelf), cfg.PeerVNodes)
	if ring.Size() < 2 {
		return nil
	}
	window := cfg.PeerWindow
	if window <= 0 {
		window = cfg.RPVTimeout
	}
	timeout := cfg.PeerTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &mesh{
		self:    cfg.PeerSelf,
		ring:    ring,
		tracker: peer.NewTracker(window),
		client:  httpwire.NewClient(),
		timeout: timeout,
		jobs:    make(chan propagation, propagationQueueLen),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		c: meshCounters{
			forwards:             reg.Counter("peer.forwards"),
			serves:               reg.Counter("peer.serves"),
			fallbacks:            reg.Counter("peer.fallbacks"),
			requestsServed:       reg.Counter("peer.requests_served"),
			propagationsSent:     reg.Counter("peer.propagations_sent"),
			elementsPropagated:   reg.Counter("peer.elements_propagated"),
			propagationsReceived: reg.Counter("peer.propagations_received"),
			elementsReceived:     reg.Counter("peer.elements_received"),
			propagationDrops:     reg.Counter("peer.propagation_drops"),
			peersGauge:           reg.Counter("peer.peers"),
			recentGauge:          reg.Counter("peer.recent_requesters"),
		},
	}
	m.c.peersGauge.Add(int64(ring.Size()))
	if !cfg.BreakerDisabled {
		seed := cfg.BreakerSeed
		if seed == 0 {
			seed = 1
		}
		m.breaker = newBreaker(breakerSettings{
			failures:   cfg.BreakerFailures,
			backoff:    cfg.BreakerBackoff,
			maxBackoff: cfg.BreakerMaxBackoff,
		}, reg, "peer.breaker", seed)
	}
	m.client.Obs = obs.NewWireMetrics(reg, "wire.peer")
	m.client.RequestTimeout = timeout
	go m.propagateLoop()
	return m
}

// close stops the propagation worker and shuts the peer client.
func (m *mesh) close() {
	m.cancel()
	<-m.done
	m.client.Close()
}

// owner returns the ring owner for key and whether it is a remote peer.
func (m *mesh) owner(key string) (string, bool) {
	o := m.ring.Owner(key)
	return o, o != m.self
}

// forwardToPeer routes one request to the owner peer and returns the
// response to serve, or nil when the caller should fall back to the origin
// (owner circuit open, wire failure, or an unusable status). A usable peer
// response is cached locally — the mesh is an L1 everywhere with the owner
// as its partition's L2 — and tagged X-Cache: PEER.
func (p *Proxy) forwardToPeer(ctx context.Context, owner string, st upstreamState, now int64) *httpwire.Response {
	m := p.mesh
	m.c.forwards.Inc()
	if !m.breaker.Allow(owner) {
		m.client.Obs.CountErrClass("circuit_open")
		m.c.fallbacks.Inc()
		return nil
	}
	req := httpwire.NewRequest("GET", "http://"+st.host+st.path)
	httpwire.SetPeerFrom(req, m.self)
	resp, err := m.client.DoContext(ctx, owner, req)
	if err != nil {
		if qualifyingFailure(err) {
			m.breaker.Failure(owner)
		}
		m.c.fallbacks.Inc()
		return nil
	}
	m.breaker.Success(owner)
	if resp.Status != 200 {
		// The owner could not produce a body (its own origin leg failed,
		// or the resource is gone). Let the local origin path decide.
		m.c.fallbacks.Inc()
		return nil
	}
	lm, _ := resp.LastModified()
	ct := resp.Header.Get("Content-Type")
	lmDate := resp.Header.Get("Last-Modified")
	p.cache.Put(cache.Entry{
		URL:              st.key,
		Size:             int64(len(resp.Body)),
		LastModified:     lm,
		LastModifiedHTTP: lmDate,
		Expires:          now + p.delta(st.key),
		FetchedAt:        now,
		Body:             resp.Body,
		ContentType:      ct,
	}, now)
	out := serveCopy(resp.Body, lm, lmDate, ct)
	out.Header.Set("X-Cache", "PEER")
	m.c.serves.Inc()
	return out
}

// servePeerPiggyback handles a POST to PeerPiggybackPath: a peer
// re-propagating origin volume state into our cache. The message is
// applied exactly like a trailer received from the origin (freshen,
// invalidate, prefetch, adaptive Δ) but is never propagated onward —
// propagation is one hop deep by construction, mirroring the request-path
// hop marker.
func (p *Proxy) servePeerPiggyback(req *httpwire.Request) *httpwire.Response {
	if _, ok := httpwire.PeerFrom(req); !ok {
		return httpwire.NewResponse(400)
	}
	host, m, err := httpwire.ParsePeerPiggyback(req)
	if err != nil {
		return httpwire.NewResponse(400)
	}
	p.mesh.c.propagationsReceived.Inc()
	p.mesh.c.elementsReceived.Add(int64(len(m.Elements)))
	p.processPiggyback(host, m, p.cfg.Clock())
	return httpwire.NewResponse(200)
}

// notePeerRequest records a peer-forwarded request into our partition: the
// sender becomes a re-propagation target for the tracker window.
func (p *Proxy) notePeerRequest(from string, now int64) {
	p.mesh.tracker.Note(from, now)
	p.mesh.c.requestsServed.Inc()
}

// enqueuePropagation queues an origin piggyback for re-propagation to the
// peers that recently requested into this proxy's partition. Never blocks:
// with the queue full the message is dropped and counted.
func (p *Proxy) enqueuePropagation(originHost string, msg core.Message, now int64) {
	m := p.mesh
	targets := m.tracker.Recent(now)
	if g := m.c.recentGauge; g != nil {
		g.Add(int64(len(targets)) - g.Load())
	}
	if len(targets) == 0 {
		return
	}
	select {
	case m.jobs <- propagation{originHost: originHost, msg: msg, targets: targets}:
	default:
		m.c.propagationDrops.Inc()
	}
}

// propagateLoop is the mesh's single background sender: it drains queued
// piggybacks and POSTs each to its targets, bounded per send by the peer
// timeout. Failed sends count as drops and feed the per-peer breaker so a
// dead peer stops costing dials.
func (m *mesh) propagateLoop() {
	defer close(m.done)
	for {
		select {
		case <-m.ctx.Done():
			return
		case job := <-m.jobs:
			for _, target := range job.targets {
				if m.ctx.Err() != nil {
					return
				}
				if !m.breaker.Allow(target) {
					m.client.Obs.CountErrClass("circuit_open")
					m.c.propagationDrops.Inc()
					continue
				}
				req := httpwire.NewPeerPiggybackRequest(job.originHost, m.self, job.msg)
				ctx, cancel := context.WithTimeout(m.ctx, m.timeout)
				resp, err := m.client.DoContext(ctx, target, req)
				cancel()
				if err != nil || resp.Status != 200 {
					if qualifyingFailure(err) {
						m.breaker.Failure(target)
					}
					m.c.propagationDrops.Inc()
					continue
				}
				m.breaker.Success(target)
				m.c.propagationsSent.Inc()
				m.c.elementsPropagated.Add(int64(len(job.msg.Elements)))
			}
		}
	}
}
