package proxy

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piggyback/internal/httpwire"
)

// startOrigin runs a raw httpwire handler as the upstream origin and
// returns its address.
func startOrigin(t *testing.T, h httpwire.Handler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: h}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func proxyGet(p *Proxy, url string) *httpwire.Response {
	return p.ServeWire(context.Background(), httpwire.NewRequest("GET", "http://"+url))
}

// TestServeWireConcurrentHammer is the -race regression test for the
// hot-path race: before the fix, ServeWire read entry.Body after
// releasing p.mu, while concurrent Puts (from other goroutines' 200
// handling) rewrote the same entry. One key is hammered by many
// goroutines with a fast-running clock so every request finds a stale
// copy, validates upstream, and rewrites the cache.
// TestStaleReadRacesWithConcurrentRewrite deterministically overlaps one
// request's upstream exchange with a rewrite of the same cache entry.
// The victim request is parked inside the test's Resolve hook — which
// runs in the unlocked span of ServeWire, after the cached body has been
// captured for delta encoding — purely on wall-clock time, with no
// channel or mutex handoff that would order the accesses for the race
// detector. While the victim sleeps, the main goroutine re-fetches the
// same key, and its cache.Put rewrites the entry the victim captured.
// Before the fix, the victim read entry.Body after releasing p.mu, so
// this test fails under -race; with the body copied under the lock it is
// race-free.
func TestStaleReadRacesWithConcurrentRewrite(t *testing.T) {
	var version atomic.Int64
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		v := version.Add(1)
		resp := httpwire.NewResponse(200)
		resp.Body = []byte(fmt.Sprintf("rewrite-version-%06d", v))
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(1000+v))
		return resp
	}))

	// Timing, not synchronization, sequences the two requests: any
	// channel or lock handoff from the victim after its racy read would
	// give the rewriter a happens-before edge and hide the race.
	var parkFrom time.Time // written by main between requests only
	parked := false        // written by the victim, read after it is joined
	var now atomic.Int64
	now.Store(1_000_000)
	p := New(Config{
		Delta:         60,
		DeltaEncoding: true,
		Clock:         func() int64 { return now.Add(10_000) },
		Resolve: func(string) (string, error) {
			if !parkFrom.IsZero() {
				if since := time.Since(parkFrom); since < 100*time.Millisecond {
					parked = true
					time.Sleep(600*time.Millisecond - since)
				}
			}
			return origin, nil
		},
	})
	defer p.Close()

	const key = "www.park.test/hot.html"
	if resp := proxyGet(p, key); resp.Status != 200 {
		t.Fatalf("prime: status %d", resp.Status)
	}

	parkFrom = time.Now()
	victimDone := make(chan *httpwire.Response, 1)
	go func() { victimDone <- proxyGet(p, key) }()

	// The victim is asleep in Resolve holding its captured cache state.
	// Rewrite the entry underneath it; its Resolve call falls outside
	// the park window and proceeds immediately.
	time.Sleep(200 * time.Millisecond)
	if resp := proxyGet(p, key); resp.Status != 200 {
		t.Fatalf("rewrite: status %d", resp.Status)
	}

	resp := <-victimDone
	if resp.Status != 200 {
		t.Errorf("victim: status %d", resp.Status)
	}
	if !parked {
		t.Fatal("victim request never parked in Resolve; race window not exercised")
	}
}

func TestServeWireConcurrentHammer(t *testing.T) {
	var version atomic.Int64
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		v := version.Add(1)
		resp := httpwire.NewResponse(200)
		resp.Body = []byte(fmt.Sprintf("body-version-%06d", v))
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(1000+v))
		return resp
	}))

	// Each Clock call jumps far past the freshness interval, so every
	// request sees its cached copy as stale and goes upstream.
	var now atomic.Int64
	now.Store(1_000_000)
	p := New(Config{
		Delta:         60,
		DeltaEncoding: true, // exercises the cachedBody path too
		Clock:         func() int64 { return now.Add(10_000) },
		Resolve:       func(string) (string, error) { return origin, nil },
	})
	defer p.Close()

	const goroutines, perG = 16, 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp := proxyGet(p, "www.hammer.test/hot.html")
				if resp.Status != 200 {
					t.Errorf("hammer: status %d", resp.Status)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := p.Stats(); s.ClientRequests != goroutines*perG {
		t.Errorf("client requests = %d, want %d", s.ClientRequests, goroutines*perG)
	}
}

// TestSingleFlightDeduplicatesMisses checks that N concurrent requests
// for one cold key cost one origin fetch: a leader fetches while the
// rest wait on its flight and share the response.
func TestSingleFlightDeduplicatesMisses(t *testing.T) {
	var originReqs atomic.Int64
	leaderIn := make(chan struct{}, 1)
	release := make(chan struct{})
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		originReqs.Add(1)
		leaderIn <- struct{}{}
		<-release
		resp := httpwire.NewResponse(200)
		resp.Body = []byte("cold body")
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(5000))
		return resp
	}))

	p := New(Config{
		Delta:   600,
		Clock:   func() int64 { return 10_000 },
		Resolve: func(string) (string, error) { return origin, nil },
	})
	defer p.Close()

	const clients = 8
	// Start the leader and wait until its request is inside the origin,
	// then pile on the followers; they must all join the leader's flight.
	results := make(chan *httpwire.Response, clients)
	go func() { results <- proxyGet(p, "www.sf.test/cold.html") }()
	<-leaderIn

	var started sync.WaitGroup
	for i := 1; i < clients; i++ {
		started.Add(1)
		go func() {
			started.Done()
			results <- proxyGet(p, "www.sf.test/cold.html")
		}()
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let followers reach the flight
	close(release)

	shared := 0
	for i := 0; i < clients; i++ {
		resp := <-results
		if resp.Status != 200 || string(resp.Body) != "cold body" {
			t.Fatalf("response %d: %d %q", i, resp.Status, resp.Body)
		}
		if resp.Header.Get("X-Cache") == "SHARED" {
			shared++
		}
	}
	if got := originReqs.Load(); got != 1 {
		t.Errorf("%d concurrent cold requests cost %d origin fetches, want 1", clients, got)
	}
	if shared != clients-1 {
		t.Errorf("shared responses = %d, want %d", shared, clients-1)
	}
	if s := p.Stats(); s.SingleflightShared != clients-1 {
		t.Errorf("Stats.SingleflightShared = %d, want %d", s.SingleflightShared, clients-1)
	}
}

// TestUnexpectedConditionalStatusMapsTo502 covers the wire-framing bugfix:
// an origin answering a plain GET with 304 or 226 (statuses only valid for
// conditional requests) must not be passed through to the client.
func TestUnexpectedConditionalStatusMapsTo502(t *testing.T) {
	for _, status := range []int{304, 226} {
		t.Run(fmt.Sprintf("status%d", status), func(t *testing.T) {
			origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
				if req.Header.Has("If-Modified-Since") {
					t.Errorf("unconditional request carried If-Modified-Since")
				}
				resp := httpwire.NewResponse(status)
				if status == 226 {
					resp.Header.Set("IM", "blockdiff")
					resp.Body = []byte("not a real patch")
				}
				return resp
			}))
			p := New(Config{
				Delta:   600,
				Clock:   func() int64 { return 10_000 },
				Resolve: func(string) (string, error) { return origin, nil },
			})
			defer p.Close()

			resp := proxyGet(p, "www.confused.test/cold.html")
			if resp.Status != 502 {
				t.Fatalf("origin %d for plain GET passed through as %d, want 502", status, resp.Status)
			}
			// The bogus response must not have been cached.
			resp2 := proxyGet(p, "www.confused.test/cold.html")
			if resp2.Status != 502 || resp2.Header.Get("X-Cache") == "HIT" {
				t.Fatalf("second request: %d %s", resp2.Status, resp2.Header.Get("X-Cache"))
			}
			if s := p.Stats(); s.UpstreamErrors != 2 {
				t.Errorf("upstream errors = %d, want 2", s.UpstreamErrors)
			}
		})
	}
}

// TestStaleValidationServesValidatedCopy pins the 304 arm to the copy that
// was actually validated: when a concurrent fetch replaces the entry
// between unlock and re-lock, the validated body is served, not a torn
// pointer into the cache.
func TestStaleValidationServesValidatedCopy(t *testing.T) {
	var mode atomic.Int64 // 0: serve v1; 1: 304 everything
	origin := startOrigin(t, httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		if mode.Load() == 1 && req.Header.Has("If-Modified-Since") {
			return httpwire.NewResponse(304)
		}
		resp := httpwire.NewResponse(200)
		resp.Body = []byte("validated body v1")
		resp.Header.Set("Last-Modified", httpwire.FormatHTTPDate(2000))
		return resp
	}))
	var now atomic.Int64
	now.Store(10_000)
	p := New(Config{
		Delta:   600,
		Clock:   func() int64 { return now.Load() },
		Resolve: func(string) (string, error) { return origin, nil },
	})
	defer p.Close()

	if resp := proxyGet(p, "www.v.test/page.html"); string(resp.Body) != "validated body v1" {
		t.Fatalf("prime: %q", resp.Body)
	}
	mode.Store(1)
	now.Store(11_000) // past Delta: stale, must validate
	resp := proxyGet(p, "www.v.test/page.html")
	if resp.Status != 200 || string(resp.Body) != "validated body v1" {
		t.Fatalf("revalidated: %d %q", resp.Status, resp.Body)
	}
	if s := p.Stats(); s.NotModified != 1 {
		t.Errorf("not modified = %d, want 1", s.NotModified)
	}
}
