// Package server implements the cooperating origin server (§2.1): an
// in-memory resource store served over httpwire with If-Modified-Since
// validation, a pluggable volume engine, and piggyback generation — the
// P-Volume message rides in the chunked trailer of each response when the
// request carries a Piggy-Filter and accepts chunked coding (§2.3).
package server

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"

	"piggyback/internal/core"
	"piggyback/internal/delta"
	"piggyback/internal/httpwire"
	"piggyback/internal/obs"
	"piggyback/internal/trace"
)

// Resource is one resource at the origin.
type Resource struct {
	URL string
	// Size is the authoritative resource size (advertised in piggyback
	// elements and Content-Length).
	Size int64
	// LastModified is the current version's modification time.
	LastModified int64
	// ContentType is the MIME type; empty derives it from the URL.
	ContentType string
	// lmDate caches the HTTP-date rendering of LastModified, computed when
	// the store learns the time (Put, Modify) instead of on every response.
	lmDate string
}

// httpDate returns the resource's Last-Modified as an HTTP-date, using the
// cached rendering when the store filled it.
func (r *Resource) httpDate() string {
	if r.lmDate == "" {
		return httpwire.FormatHTTPDate(r.LastModified)
	}
	return r.lmDate
}

// maxBodyBytes caps synthesized bodies: huge resources are served
// truncated (this is a protocol testbed, not a file server), with
// Content-Length matching the bytes actually sent.
const maxBodyBytes = 256 << 10

// body synthesizes deterministic content for the given version of the
// resource: mostly version-independent blocks, with the version stamped
// into block 0 and one version-dependent block — so successive versions
// differ in at most a few blocks, the regime where delta encoding shines
// (§4, ref [23]). Determinism in (URL, size, version) stands in for a
// server that retains recent versions for delta generation.
func (r *Resource) body(version int64) []byte {
	n := r.Size
	if n > maxBodyBytes {
		n = maxBodyBytes
	}
	if n <= 0 {
		return nil
	}
	pattern := []byte("<!-- " + r.URL + " -->\n")
	out := bytes.Repeat(pattern, int(n)/len(pattern)+1)[:n]
	stamp := []byte(fmt.Sprintf("<!-- version %d -->", version))
	copy(out, stamp)
	if nBlocks := int(n) / delta.DefaultBlockSize; nBlocks > 1 {
		b := 1 + int(version)%(nBlocks-1)
		copy(out[b*delta.DefaultBlockSize:], stamp)
	}
	return out
}

// Store is a concurrent resource table.
type Store struct {
	mu  sync.RWMutex
	res map[string]*Resource
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{res: make(map[string]*Resource)} }

// Put inserts or replaces a resource.
func (s *Store) Put(r Resource) {
	if r.ContentType == "" {
		r.ContentType = trace.ContentType(r.URL)
	}
	r.lmDate = httpwire.FormatHTTPDate(r.LastModified)
	s.mu.Lock()
	s.res[r.URL] = &r
	s.mu.Unlock()
}

// Get returns a copy of the resource.
func (s *Store) Get(url string) (Resource, bool) {
	s.mu.RLock()
	r, ok := s.res[url]
	s.mu.RUnlock()
	if !ok {
		return Resource{}, false
	}
	return *r, true
}

// Remove deletes a resource.
func (s *Store) Remove(url string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.res[url]; !ok {
		return false
	}
	delete(s.res, url)
	return true
}

// Modify bumps the resource's Last-Modified time (and optionally its
// size), modeling a content update.
func (s *Store) Modify(url string, lastModified, newSize int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.res[url]
	if !ok {
		return false
	}
	r.LastModified = lastModified
	r.lmDate = httpwire.FormatHTTPDate(lastModified)
	if newSize > 0 {
		r.Size = newSize
	}
	return true
}

// Len returns the number of resources.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.res)
}

// Server is the piggybacking origin server.
type Server struct {
	store *Store
	vols  core.Provider
	// Clock returns the current Unix time; injectable so trace replays
	// and tests control time. nil panics at first use — set it.
	Clock func() int64

	obs *obs.Registry
	c   serverCounters
}

// serverCounters caches the registry's counter pointers so the request
// path is pure atomic adds — no map lookups, no locks.
type serverCounters struct {
	requests        *obs.Counter
	notModified     *obs.Counter
	notFound        *obs.Counter
	piggybacksSent  *obs.Counter
	piggybackElems  *obs.Counter
	piggybackBytes  *obs.Counter
	hitReports      *obs.Counter
	deltasSent      *obs.Counter
	deltaBytesSaved *obs.Counter
}

// Stats counts server-side protocol activity.
type Stats struct {
	Requests       int
	NotModified    int
	NotFound       int
	PiggybacksSent int
	PiggybackElems int
	PiggybackBytes int64
	// HitReports counts cache-hit URLs received via Piggy-Hits headers
	// (§5): proxy-satisfied accesses folded back into volume upkeep.
	HitReports int
	// DeltasSent counts 226 delta responses; DeltaBytesSaved the body
	// bytes they avoided transferring (§4, ref [23]).
	DeltasSent      int
	DeltaBytesSaved int64
}

// New returns a Server over the store and volume engine.
func New(store *Store, vols core.Provider, clock func() int64) *Server {
	reg := obs.NewRegistry()
	return &Server{store: store, vols: vols, Clock: clock, obs: reg,
		c: serverCounters{
			requests:        reg.Counter("server.requests"),
			notModified:     reg.Counter("server.not_modified"),
			notFound:        reg.Counter("server.not_found"),
			piggybacksSent:  reg.Counter("server.piggybacks_sent"),
			piggybackElems:  reg.Counter("server.piggyback_elems"),
			piggybackBytes:  reg.Counter("server.piggyback_bytes"),
			hitReports:      reg.Counter("server.hit_reports"),
			deltasSent:      reg.Counter("server.deltas_sent"),
			deltaBytesSaved: reg.Counter("server.delta_bytes_saved"),
		}}
}

// Store returns the resource store (for administrative updates).
func (s *Server) Store() *Store { return s.store }

// Volumes returns the volume engine.
func (s *Server) Volumes() core.Provider { return s.vols }

// Obs returns the server's telemetry registry (also served live on
// obs.StatsPath).
func (s *Server) Obs() *obs.Registry { return s.obs }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:        int(s.c.requests.Load()),
		NotModified:     int(s.c.notModified.Load()),
		NotFound:        int(s.c.notFound.Load()),
		PiggybacksSent:  int(s.c.piggybacksSent.Load()),
		PiggybackElems:  int(s.c.piggybackElems.Load()),
		PiggybackBytes:  s.c.piggybackBytes.Load(),
		HitReports:      int(s.c.hitReports.Load()),
		DeltasSent:      int(s.c.deltasSent.Load()),
		DeltaBytesSaved: s.c.deltaBytesSaved.Load(),
	}
}

// refreshElements overwrites piggyback element attributes with the store's
// authoritative values — the server "has considerable knowledge about each
// resource, including the size... as well as the frequency of resource
// modifications" (§2.1), so piggybacked Last-Modified times reflect
// modifications made since the volume last saw a request for the resource.
// Elements for resources no longer in the store are dropped. Delegating to
// core keeps the message's pre-serialized segments coherent with the
// refreshed attributes.
func (s *Server) refreshElements(m *core.Message) {
	m.RefreshElements(func(url string) (int64, int64, bool) {
		res, ok := s.store.Get(url)
		if !ok {
			return 0, 0, false
		}
		return res.Size, res.LastModified, true
	})
}

// acceptsBlockdiff reports whether the request advertises the blockdiff
// instance manipulation (A-IM, RFC 3229 style).
func acceptsBlockdiff(req *httpwire.Request) bool {
	for _, im := range strings.Split(req.Header.Get("A-IM"), ",") {
		if strings.EqualFold(strings.TrimSpace(im), "blockdiff") {
			return true
		}
	}
	return false
}

// ServeWire implements httpwire.Handler: GET/HEAD with If-Modified-Since
// validation, delta encoding (A-IM: blockdiff), and piggyback trailers.
// The origin answers from memory, so the request context is unused beyond
// satisfying the handler contract.
func (s *Server) ServeWire(_ context.Context, req *httpwire.Request) *httpwire.Response {
	if httpwire.IsStatsRequest(req) {
		return httpwire.StatsResponse(s.obs)
	}
	if httpwire.IsPprofRequest(req) {
		return httpwire.PprofResponse(req)
	}
	now := s.Clock()
	s.c.requests.Inc()

	if req.Method != "GET" && req.Method != "HEAD" {
		return httpwire.NewResponse(501)
	}
	res, ok := s.store.Get(req.Path)
	if !ok {
		s.c.notFound.Inc()
		return httpwire.NewResponse(404)
	}

	// The server observes every request to maintain its volumes; the
	// source is the requesting proxy (§3.3: pairwise probabilities are
	// per-source).
	elem := core.Element{URL: res.URL, Size: res.Size, LastModified: res.LastModified}
	if s.vols != nil {
		s.vols.Observe(core.Access{Source: req.RemoteAddr, Time: now, Element: elem})
		// Piggy-Hits: accesses the proxy satisfied from its cache
		// count toward volume popularity too (§5 future work).
		if hits := httpwire.GetHits(req); len(hits) > 0 {
			for _, h := range hits {
				if r, ok := s.store.Get(h); ok {
					s.vols.Observe(core.Access{Source: req.RemoteAddr, Time: now,
						Element: core.Element{URL: r.URL, Size: r.Size, LastModified: r.LastModified}})
				}
			}
			s.c.hitReports.Add(int64(len(hits)))
		}
	}

	var resp *httpwire.Response
	ims, hasIMS := req.IfModifiedSince()
	switch {
	case hasIMS && ims >= res.LastModified:
		// §2.1: "if the proxy-specified Last-Modified time is greater
		// or equal to the Last-Modified time at the server, the
		// server simply validates the resource".
		resp = httpwire.NewResponse(304)
		s.c.notModified.Inc()
	case hasIMS && acceptsBlockdiff(req):
		// §4 delta encoding [23]: the resource changed; transmit only
		// the difference between the proxy's version and the current
		// one. Fall back to a full response when the delta does not
		// pay off.
		oldBody := res.body(ims)
		newBody := res.body(res.LastModified)
		patch := delta.Make(oldBody, newBody, delta.DefaultBlockSize)
		if enc := patch.Encode(); len(enc) < len(newBody) {
			resp = httpwire.NewResponse(226)
			resp.Body = enc
			resp.Header.Set("IM", "blockdiff")
			resp.Header.Set("Content-Type", res.ContentType)
			s.c.deltasSent.Inc()
			s.c.deltaBytesSaved.Add(int64(len(newBody) - len(enc)))
		} else {
			resp = httpwire.NewResponse(200)
			resp.Body = newBody
			resp.Header.Set("Content-Type", res.ContentType)
		}
	default:
		resp = httpwire.NewResponse(200)
		resp.Body = res.body(res.LastModified)
		resp.Header.Set("Content-Type", res.ContentType)
	}
	resp.Header.Set("Last-Modified", res.httpDate())

	// Piggyback generation: only for cooperating proxies that sent a
	// filter and accept chunked trailers (§2.3).
	if s.vols != nil {
		if f, ok := httpwire.GetFilter(req); ok && req.AcceptsChunkedTrailer() {
			if m, ok := s.vols.Piggyback(req.Path, now, f); ok {
				s.refreshElements(&m)
				if !m.Empty() {
					httpwire.AttachPiggyback(resp, m)
					s.c.piggybacksSent.Inc()
					s.c.piggybackElems.Add(int64(len(m.Elements)))
					s.c.piggybackBytes.Add(int64(m.WireBytes()))
				}
			}
		}
	}
	return resp
}
