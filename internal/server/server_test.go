package server

import (
	"bytes"
	"context"
	"testing"

	"piggyback/internal/core"
	"piggyback/internal/httpwire"
)

func testServer(clockAt int64) (*Server, *Store) {
	st := NewStore()
	st.Put(Resource{URL: "/a/x.html", Size: 100, LastModified: 1000})
	st.Put(Resource{URL: "/a/y.gif", Size: 50, LastModified: 1500})
	st.Put(Resource{URL: "/b/z.html", Size: 70, LastModified: 900})
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true})
	now := clockAt
	return New(st, vols, func() int64 { return now }), st
}

func get(path string) *httpwire.Request { return httpwire.NewRequest("GET", path) }

func TestServeBasicGet(t *testing.T) {
	s, _ := testServer(2000)
	resp := s.ServeWire(context.Background(), get("/a/x.html"))
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if int64(len(resp.Body)) != 100 {
		t.Errorf("body length = %d, want 100", len(resp.Body))
	}
	if lm, ok := resp.LastModified(); !ok || lm != 1000 {
		t.Errorf("Last-Modified = %d, %v", lm, ok)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html" {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestServe404And501(t *testing.T) {
	s, _ := testServer(2000)
	if resp := s.ServeWire(context.Background(), get("/missing")); resp.Status != 404 {
		t.Errorf("status = %d, want 404", resp.Status)
	}
	req := httpwire.NewRequest("DELETE", "/a/x.html")
	if resp := s.ServeWire(context.Background(), req); resp.Status != 501 {
		t.Errorf("status = %d, want 501", resp.Status)
	}
	st := s.Stats()
	if st.NotFound != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIfModifiedSinceValidation(t *testing.T) {
	s, _ := testServer(2000)
	req := get("/a/x.html")
	req.Header.Set("If-Modified-Since", httpwire.FormatHTTPDate(1000))
	resp := s.ServeWire(context.Background(), req)
	if resp.Status != 304 {
		t.Fatalf("status = %d, want 304 (IMS == LM)", resp.Status)
	}
	if len(resp.Body) != 0 {
		t.Error("304 carried a body")
	}
	// Older copy: full response.
	req2 := get("/a/x.html")
	req2.Header.Set("If-Modified-Since", httpwire.FormatHTTPDate(500))
	if resp := s.ServeWire(context.Background(), req2); resp.Status != 200 {
		t.Errorf("status = %d, want 200 (stale copy)", resp.Status)
	}
	if s.Stats().NotModified != 1 {
		t.Errorf("NotModified = %d", s.Stats().NotModified)
	}
}

func TestPiggybackOnlyForCooperatingProxies(t *testing.T) {
	s, _ := testServer(2000)
	// Warm the volume.
	s.ServeWire(context.Background(), get("/a/y.gif"))

	// Plain request: no piggyback even though the volume has content.
	resp := s.ServeWire(context.Background(), get("/a/x.html"))
	if _, ok := httpwire.ExtractPiggyback(resp); ok {
		t.Error("piggyback sent without a filter")
	}

	// Filter but no TE: chunked: still no piggyback.
	req := get("/a/x.html")
	req.Header.Set(httpwire.FieldPiggyFilter, "maxpiggy=5")
	resp = s.ServeWire(context.Background(), req)
	if _, ok := httpwire.ExtractPiggyback(resp); ok {
		t.Error("piggyback sent without TE: chunked")
	}

	// Proper piggybacking request.
	req2 := get("/a/x.html")
	httpwire.SetFilter(req2, core.Filter{MaxPiggy: 5})
	resp = s.ServeWire(context.Background(), req2)
	m, ok := httpwire.ExtractPiggyback(resp)
	if !ok {
		t.Fatal("no piggyback for cooperating proxy")
	}
	found := false
	for _, e := range m.Elements {
		if e.URL == "/a/y.gif" && e.Size == 50 && e.LastModified == 1500 {
			found = true
		}
		if e.URL == "/a/x.html" {
			t.Error("piggyback includes the requested resource")
		}
		if e.URL == "/b/z.html" {
			t.Error("piggyback crossed volumes")
		}
	}
	if !found {
		t.Errorf("expected /a/y.gif in piggyback: %+v", m.Elements)
	}
	if st := s.Stats(); st.PiggybacksSent != 1 || st.PiggybackElems == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPiggybackOn304(t *testing.T) {
	s, _ := testServer(2000)
	s.ServeWire(context.Background(), get("/a/y.gif"))
	req := get("/a/x.html")
	req.Header.Set("If-Modified-Since", httpwire.FormatHTTPDate(1000))
	httpwire.SetFilter(req, core.Filter{MaxPiggy: 5})
	resp := s.ServeWire(context.Background(), req)
	if resp.Status != 304 {
		t.Fatalf("status = %d", resp.Status)
	}
	if _, ok := httpwire.ExtractPiggyback(resp); !ok {
		t.Error("304 should still carry the piggyback trailer")
	}
}

func TestModifyInvalidatesValidation(t *testing.T) {
	s, store := testServer(2000)
	store.Modify("/a/x.html", 1800, 0)
	req := get("/a/x.html")
	req.Header.Set("If-Modified-Since", httpwire.FormatHTTPDate(1000))
	resp := s.ServeWire(context.Background(), req)
	if resp.Status != 200 {
		t.Fatalf("status = %d, want 200 after modification", resp.Status)
	}
	if lm, _ := resp.LastModified(); lm != 1800 {
		t.Errorf("Last-Modified = %d", lm)
	}
}

func TestStoreOperations(t *testing.T) {
	st := NewStore()
	st.Put(Resource{URL: "/x", Size: 10, LastModified: 5})
	if st.Len() != 1 {
		t.Fatal("Len")
	}
	r, ok := st.Get("/x")
	if !ok || r.ContentType == "" {
		t.Fatalf("Get = %+v, %v (content type should default)", r, ok)
	}
	if !st.Modify("/x", 9, 20) {
		t.Fatal("Modify")
	}
	r, _ = st.Get("/x")
	if r.LastModified != 9 || r.Size != 20 {
		t.Errorf("after Modify: %+v", r)
	}
	if st.Modify("/zz", 1, 1) {
		t.Error("Modify missing resource")
	}
	if !st.Remove("/x") || st.Remove("/x") {
		t.Error("Remove semantics")
	}
}

func TestBodySynthesisDeterministicAndSized(t *testing.T) {
	r := &Resource{URL: "/a/x.html", Size: 1000}
	b1, b2 := r.body(7), r.body(7)
	if !bytes.Equal(b1, b2) {
		t.Error("body not deterministic")
	}
	if int64(len(b1)) != 1000 {
		t.Errorf("body length = %d", len(b1))
	}
	big := &Resource{URL: "/big", Size: 10 << 20}
	if len(big.body(7)) != maxBodyBytes {
		t.Errorf("big body = %d, want capped at %d", len(big.body(7)), maxBodyBytes)
	}
	empty := &Resource{URL: "/e", Size: 0}
	if len(empty.body(7)) != 0 {
		t.Error("zero-size body")
	}
}

func TestBodyVersionsDifferSparsely(t *testing.T) {
	r := &Resource{URL: "/a/x.html", Size: 8192}
	v1, v2 := r.body(1000), r.body(2000)
	if bytes.Equal(v1, v2) {
		t.Fatal("versions identical")
	}
	// Versions differ in at most a few 512-byte blocks.
	diff := 0
	for i := 0; i < len(v1); i += 512 {
		hi := i + 512
		if hi > len(v1) {
			hi = len(v1)
		}
		if !bytes.Equal(v1[i:hi], v2[i:hi]) {
			diff++
		}
	}
	if diff == 0 || diff > 3 {
		t.Errorf("versions differ in %d blocks, want 1-3", diff)
	}
}

func TestServerWithoutVolumes(t *testing.T) {
	st := NewStore()
	st.Put(Resource{URL: "/x", Size: 5, LastModified: 1})
	s := New(st, nil, func() int64 { return 10 })
	req := get("/x")
	httpwire.SetFilter(req, core.Filter{MaxPiggy: 5})
	resp := s.ServeWire(context.Background(), req)
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if _, ok := httpwire.ExtractPiggyback(resp); ok {
		t.Error("volume-less server sent a piggyback")
	}
}
