package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 2} // (<=10), (10,100], overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 || s.Sum != 1+10+11+100+101+5000 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if s.Min != 1 || s.Max != 5000 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	s := NewHistogram([]int64{10}).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Error("empty quantile/mean should be NaN")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 300, 400})
	// 100 uniform observations in (0, 400]: quantiles should land within
	// one bucket width of the exact value.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i * 4))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 200}, {0.9, 360}, {0.99, 396},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > 100 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if got := s.Quantile(0); got != 4 {
		t.Errorf("Quantile(0) = %v, want exact min 4", got)
	}
	if got := s.Quantile(1); got != 400 {
		t.Errorf("Quantile(1) = %v, want exact max 400", got)
	}
}

func TestHistogramQuantileClampsToObserved(t *testing.T) {
	h := NewHistogram([]int64{1000})
	h.Observe(400)
	h.Observe(500)
	s := h.Snapshot()
	if got := s.Quantile(0.99); got < 400 || got > 500 {
		t.Errorf("Quantile(0.99) = %v, want within observed [400, 500]", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]int64{10, 100})
	b := NewHistogram([]int64{10, 100})
	a.Observe(5)
	b.Observe(50)
	b.Observe(500)
	m, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 3 || m.Min != 5 || m.Max != 500 || m.Sum != 555 {
		t.Errorf("merged = %+v", m)
	}
	if _, err := a.Snapshot().Merge(NewHistogram([]int64{7}).Snapshot()); err == nil {
		t.Error("merge with different bounds should fail")
	}
}

func TestHistogramSub(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	h.Observe(5)
	before := h.Snapshot()
	h.Observe(50)
	h.Observe(60)
	win := h.Snapshot().Sub(before)
	if win.Count != 2 || win.Sum != 110 {
		t.Errorf("window = %+v", win)
	}
	if win.Counts[0] != 0 || win.Counts[1] != 2 {
		t.Errorf("window counts = %v", win.Counts)
	}
}

func TestRegistrySnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.requests").Add(7)
	r.Histogram("a.latency_us", LatencyBuckets()).Observe(123)
	if r.Counter("a.requests") != r.Counter("a.requests") {
		t.Fatal("Counter not idempotent")
	}
	s := r.Snapshot()
	if s.Counter("a.requests") != 7 {
		t.Errorf("counter = %d", s.Counter("a.requests"))
	}
	h, ok := s.Hist("a.latency_us")
	if !ok || h.Count != 1 {
		t.Errorf("hist = %+v ok=%v", h, ok)
	}

	parsed, err := ParseSnapshot(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Counter("a.requests") != 7 {
		t.Errorf("parsed counter = %d", parsed.Counter("a.requests"))
	}
	ph, _ := parsed.Hist("a.latency_us")
	if ph.Count != 1 || ph.Min != 123 || ph.Max != 123 {
		t.Errorf("parsed hist = %+v", ph)
	}
}

func TestSnapshotSubAndMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(3)
	before := r.Snapshot()
	r.Counter("x").Add(4)
	r.Counter("y").Inc()
	win := r.Snapshot().Sub(before)
	if win.Counter("x") != 4 || win.Counter("y") != 1 {
		t.Errorf("window = %+v", win.Counters)
	}
	m := win.Merge(before)
	if m.Counter("x") != 7 {
		t.Errorf("merged x = %d", m.Counter("x"))
	}
}

func TestWireMetricsNames(t *testing.T) {
	r := NewRegistry()
	w := NewWireMetrics(r, "wire.server")
	w.Requests.Inc()
	w.Latency.Observe(99)
	s := r.Snapshot()
	if s.Counter("wire.server.requests") != 1 {
		t.Error("requests counter not registered under prefix")
	}
	if h, ok := s.Hist("wire.server.latency_us"); !ok || h.Count != 1 {
		t.Error("latency histogram not registered under prefix")
	}
}

// TestConcurrentObserve exercises the lock-free paths under the race
// detector: concurrent counter adds, histogram observations, and
// snapshots.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("reqs")
			h := r.Histogram("lat", LatencyBuckets())
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(w*per + i + 1))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("reqs") != workers*per {
		t.Errorf("reqs = %d, want %d", s.Counter("reqs"), workers*per)
	}
	h, _ := s.Hist("lat")
	if h.Count != workers*per || h.Min != 1 || h.Max != workers*per {
		t.Errorf("hist = count %d min %d max %d", h.Count, h.Min, h.Max)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Count {
		t.Errorf("bucket sum %d != count %d", sum, h.Count)
	}
}
