// Package obs provides lock-free runtime telemetry for the live
// server/proxy/center stack: atomic counters and fixed-bucket histograms
// with snapshot, merge, and percentile support. Every hot-path operation
// (Counter.Add, Histogram.Observe) is a handful of atomic instructions —
// no locks, no allocation — so instrumentation stays cheap enough to leave
// on under full load.
//
// A Registry names a set of counters and histograms and produces immutable
// Snapshots that serialize to JSON; the reserved path StatsPath exposes a
// live snapshot over the wire protocol, which the load generator reads
// before and after a run to attribute cache hits, piggyback traffic, and
// upstream activity to the measured window (Snapshot.Sub).
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// StatsPath is the reserved origin-form request path on which the live
// handlers (server, proxy, volume center) serve a JSON telemetry snapshot.
const StatsPath = "/.piggy/stats"

// Counter is a lock-free monotonic (or gauge-style) counter. The zero
// value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations (latencies
// in microseconds, sizes in bytes). Bucket i counts observations v with
// bounds[i-1] < v <= bounds[i]; a final overflow bucket catches the rest.
// Count, sum, min, and max are tracked exactly; quantiles are estimated by
// linear interpolation within the containing bucket. All operations are
// lock-free.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns a histogram over the given strictly-increasing
// inclusive upper bounds. The bounds slice is copied.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	h := &Histogram{
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// LatencyBuckets returns exponential bounds suited to request latencies in
// microseconds: 25µs up to ~50s, doubling each bucket.
func LatencyBuckets() []int64 {
	var b []int64
	for v := int64(25); v <= 50_000_000; v *= 2 {
		b = append(b, v)
	}
	return b
}

// SizeBuckets returns exponential bounds suited to message sizes in bytes:
// 64 B up to 16 MiB, doubling each bucket.
func SizeBuckets() []int64 {
	var b []int64
	for v := int64(64); v <= 16<<20; v *= 2 {
		b = append(b, v)
	}
	return b
}

// BatchBuckets returns bounds suited to small coalesced-batch sizes
// (messages per syscall): 1 up to 64, doubling each bucket.
func BatchBuckets() []int64 {
	var b []int64
	for v := int64(1); v <= 64; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram's current state. Concurrent Observe
// calls may land partially in the snapshot (a bucket increment without its
// count increment or vice versa); totals are consistent to within the
// observations in flight at the instant of the snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.Min = min
	}
	if max := h.max.Load(); max != math.MinInt64 {
		s.Max = max
	}
	return s
}

// HistSnapshot is an immutable histogram state.
type HistSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts has one extra final
	// element for the overflow bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// Mean returns the average observation, or NaN when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count)
}

// lowerEdge returns bucket i's exclusive lower bound (0 for the first).
func (s HistSnapshot) lowerEdge(i int) int64 {
	if i == 0 {
		return 0
	}
	return s.Bounds[i-1]
}

// upperEdge returns bucket i's inclusive upper bound (Max for overflow).
func (s HistSnapshot) upperEdge(i int) int64 {
	if i < len(s.Bounds) {
		return s.Bounds[i]
	}
	return s.Max
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the bucket
// containing the target rank and interpolating linearly inside it, clamped
// to the exact observed [Min, Max]. Empty snapshots yield NaN.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo, hi := float64(s.lowerEdge(i)), float64(s.upperEdge(i))
			frac := (rank - float64(cum)) / float64(c)
			v := lo + frac*(hi-lo)
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum += c
	}
	return float64(s.Max)
}

// Merge returns the element-wise sum of two snapshots of histograms with
// identical bounds (e.g. per-worker histograms combined into a run total).
func (s HistSnapshot) Merge(o HistSnapshot) (HistSnapshot, error) {
	if len(o.Counts) == 0 {
		return s, nil
	}
	if len(s.Counts) == 0 {
		return o, nil
	}
	if !boundsEqual(s.Bounds, o.Bounds) {
		return HistSnapshot{}, fmt.Errorf("obs: merge of histograms with different bounds")
	}
	out := HistSnapshot{
		Bounds: append([]int64(nil), s.Bounds...),
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Min:    s.Min,
		Max:    s.Max,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	switch {
	case s.Count == 0:
		out.Min, out.Max = o.Min, o.Max
	case o.Count == 0:
	default:
		if o.Min < out.Min {
			out.Min = o.Min
		}
		if o.Max > out.Max {
			out.Max = o.Max
		}
	}
	return out, nil
}

// Sub returns the per-bucket difference s - prev, for windowing a live
// histogram between two snapshots. Min and Max cannot be recovered for the
// window, so the later snapshot's values are kept (they bound the window's
// true extremes).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	if len(prev.Counts) == 0 || !boundsEqual(s.Bounds, prev.Bounds) {
		return s
	}
	out := HistSnapshot{
		Bounds: append([]int64(nil), s.Bounds...),
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
		Min:    s.Min,
		Max:    s.Max,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return out
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Registry is a named collection of counters and histograms. Metric
// lookups take a lock; the returned pointers are cached by callers so the
// hot path never touches the registry again.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Later calls return the existing histogram regardless of
// bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time capture of a registry, serializable to JSON
// (the /.piggy/stats payload).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Counter returns the named counter value, or 0 when absent.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Hist returns the named histogram snapshot.
func (s Snapshot) Hist(name string) (HistSnapshot, bool) {
	h, ok := s.Histograms[name]
	return h, ok
}

// Sub returns the windowed difference s - prev: counter deltas and
// histogram bucket deltas. Metrics absent from prev pass through unchanged.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, h := range s.Histograms {
		if p, ok := prev.Histograms[name]; ok {
			h = h.Sub(p)
		}
		out.Histograms[name] = h
	}
	return out
}

// Merge returns the element-wise sum of two snapshots (counters added,
// same-name histograms merged; mismatched histogram bounds keep s's).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range o.Counters {
		out.Counters[name] += v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h
	}
	for name, h := range o.Histograms {
		if cur, ok := out.Histograms[name]; ok {
			if m, err := cur.Merge(h); err == nil {
				out.Histograms[name] = m
			}
		} else {
			out.Histograms[name] = h
		}
	}
	return out
}

// JSON serializes the snapshot.
func (s Snapshot) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Maps of plain values cannot fail to marshal.
		panic(err)
	}
	return b
}

// ParseSnapshot decodes a snapshot produced by JSON (or the stats
// endpoint).
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse snapshot: %v", err)
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistSnapshot)
	}
	return s, nil
}

// WireMetrics bundles the metrics one side of the wire protocol maintains:
// exchange counts, failures, reconnects, body bytes, per-exchange latency,
// and — on the client side — the connection-pool gauges. Constructed
// against a registry so the values appear in its snapshots under
// prefix-qualified names.
type WireMetrics struct {
	Requests *Counter // completed exchanges
	Errors   *Counter // failed exchanges
	Retries  *Counter // client: exchanges retried on a fresh connection
	Dials    *Counter // client: connections established
	BytesIn  *Counter // message body bytes received
	BytesOut *Counter // message body bytes sent
	Latency  *Histogram

	// Connection-pool gauges (client side; a server leaves them zero).
	ConnsOpen  *Counter // gauge: open pooled connections (idle + in use)
	ConnsIdle  *Counter // gauge: connections parked on the idle list
	PoolWaits  *Counter // acquisitions that blocked on the per-host bound
	IdleClosed *Counter // idle connections reaped past IdleConnTimeout

	// Syscall-budget counters (prefix.syscalls.*): WriteOps counts write
	// syscalls issued (one per writev batch), ReadOps counts read syscalls
	// (one per bufio fill), and WriteBatch is the distribution of messages
	// coalesced per write. writes/op = syscalls.writes ÷ requests.
	WriteOps   *Counter
	ReadOps    *Counter
	WriteBatch *Histogram

	// Per-class failure counters, one per wireerr taxonomy class
	// (prefix.err.dial_timeout and peers). Errors above stays the total.
	ErrDialTimeout    *Counter
	ErrRequestTimeout *Counter
	ErrCanceled       *Counter
	ErrCircuitOpen    *Counter
	ErrTruncated      *Counter
	ErrOther          *Counter
}

// CountErrClass increments the failure counter for a wireerr class string
// (as returned by wireerr.Class): "dial_timeout", "request_timeout",
// "canceled", "circuit_open", "truncated", or anything else → other. The
// parameter is a string rather than an error so obs stays free of wire
// dependencies. A nil receiver or empty class is a no-op.
func (m *WireMetrics) CountErrClass(class string) {
	if m == nil || class == "" {
		return
	}
	switch class {
	case "dial_timeout":
		m.ErrDialTimeout.Inc()
	case "request_timeout":
		m.ErrRequestTimeout.Inc()
	case "canceled":
		m.ErrCanceled.Inc()
	case "circuit_open":
		m.ErrCircuitOpen.Inc()
	case "truncated":
		m.ErrTruncated.Inc()
	default:
		m.ErrOther.Inc()
	}
}

// NewWireMetrics registers wire metrics under prefix (e.g. "wire.server")
// in r: prefix.requests, prefix.errors, prefix.retries, prefix.dials,
// prefix.bytes_in, prefix.bytes_out, prefix.latency_us, the pool gauges
// prefix.conns_open, prefix.conns_idle, prefix.pool_waits, and
// prefix.idle_closed, the syscall-budget metrics prefix.syscalls.writes,
// prefix.syscalls.reads, and prefix.syscalls.batch, plus per-class failure
// counters prefix.err.{dial_timeout,request_timeout,canceled,circuit_open,
// truncated,other}.
func NewWireMetrics(r *Registry, prefix string) *WireMetrics {
	return &WireMetrics{
		Requests:          r.Counter(prefix + ".requests"),
		Errors:            r.Counter(prefix + ".errors"),
		Retries:           r.Counter(prefix + ".retries"),
		Dials:             r.Counter(prefix + ".dials"),
		BytesIn:           r.Counter(prefix + ".bytes_in"),
		BytesOut:          r.Counter(prefix + ".bytes_out"),
		Latency:           r.Histogram(prefix+".latency_us", LatencyBuckets()),
		ConnsOpen:         r.Counter(prefix + ".conns_open"),
		ConnsIdle:         r.Counter(prefix + ".conns_idle"),
		PoolWaits:         r.Counter(prefix + ".pool_waits"),
		IdleClosed:        r.Counter(prefix + ".idle_closed"),
		WriteOps:          r.Counter(prefix + ".syscalls.writes"),
		ReadOps:           r.Counter(prefix + ".syscalls.reads"),
		WriteBatch:        r.Histogram(prefix+".syscalls.batch", BatchBuckets()),
		ErrDialTimeout:    r.Counter(prefix + ".err.dial_timeout"),
		ErrRequestTimeout: r.Counter(prefix + ".err.request_timeout"),
		ErrCanceled:       r.Counter(prefix + ".err.canceled"),
		ErrCircuitOpen:    r.Counter(prefix + ".err.circuit_open"),
		ErrTruncated:      r.Counter(prefix + ".err.truncated"),
		ErrOther:          r.Counter(prefix + ".err.other"),
	}
}
