// Package center implements the transparent volume center: "volume
// maintenance and piggyback generation [performed] transparently at a
// router or gateway along the path between the proxy and server. This
// volume center can construct volumes, apply filters, and generate
// piggyback messages on behalf of several servers, allowing piggyback
// messages to include information about resources at multiple sites"
// (§1), obviating server modifications (§5).
//
// The center is an httpwire relay: it forwards requests upstream with the
// piggybacking headers stripped (the origin need not cooperate), observes
// the request/response stream to maintain volumes keyed by host-qualified
// URL, and injects P-Volume trailers into responses for proxies that sent
// a Piggy-Filter.
package center

import (
	"context"
	"fmt"
	"strings"

	"piggyback/internal/core"
	"piggyback/internal/httpwire"
	"piggyback/internal/obs"
)

// Config parameterizes a Center.
type Config struct {
	// Volumes is the volume engine, keyed by host-qualified URL so one
	// center can cover several origin servers. nil defaults to 1-level
	// directory volumes with move-to-front (host-qualified level 1 is
	// the site's first-level directory).
	Volumes core.Provider
	// Resolve maps a host name to the origin's dialable address.
	Resolve func(host string) (string, error)
	// Clock returns the current Unix time.
	Clock func() int64
}

// Stats counts center activity.
type Stats struct {
	Relayed         int
	PiggybacksSent  int
	PiggybackElems  int
	UpstreamErrors  int
	OriginPiggyback int // responses that already carried a P-Volume
	// HitReports counts cache-hit URLs consumed from Piggy-Hits headers
	// (§5): the center folds proxy-satisfied accesses into its volumes
	// and strips the header before the origin sees it.
	HitReports int
}

// Center is a transparent piggybacking intermediary.
type Center struct {
	cfg    Config
	vols   core.Provider
	client *httpwire.Client
	obs    *obs.Registry
	c      centerCounters
}

// centerCounters caches the registry's counter pointers so relaying does
// pure atomic adds.
type centerCounters struct {
	relayed         *obs.Counter
	piggybacksSent  *obs.Counter
	piggybackElems  *obs.Counter
	upstreamErrors  *obs.Counter
	originPiggyback *obs.Counter
	hitReports      *obs.Counter
}

// New returns a Center for cfg.
func New(cfg Config) *Center {
	vols := cfg.Volumes
	if vols == nil {
		vols = core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, PartitionByType: true})
	}
	reg := obs.NewRegistry()
	ctr := &Center{cfg: cfg, vols: vols, client: httpwire.NewClient(), obs: reg,
		c: centerCounters{
			relayed:         reg.Counter("center.relayed"),
			piggybacksSent:  reg.Counter("center.piggybacks_sent"),
			piggybackElems:  reg.Counter("center.piggyback_elems"),
			upstreamErrors:  reg.Counter("center.upstream_errors"),
			originPiggyback: reg.Counter("center.origin_piggyback"),
			hitReports:      reg.Counter("center.hit_reports"),
		}}
	ctr.client.Obs = obs.NewWireMetrics(reg, "wire.upstream")
	return ctr
}

// Volumes returns the engine maintained by the center.
func (c *Center) Volumes() core.Provider { return c.vols }

// Obs returns the center's telemetry registry (also served live on
// obs.StatsPath).
func (c *Center) Obs() *obs.Registry { return c.obs }

// Stats returns a snapshot of the counters.
func (c *Center) Stats() Stats {
	return Stats{
		Relayed:         int(c.c.relayed.Load()),
		PiggybacksSent:  int(c.c.piggybacksSent.Load()),
		PiggybackElems:  int(c.c.piggybackElems.Load()),
		UpstreamErrors:  int(c.c.upstreamErrors.Load()),
		OriginPiggyback: int(c.c.originPiggyback.Load()),
		HitReports:      int(c.c.hitReports.Load()),
	}
}

// Close releases upstream connections.
func (c *Center) Close() { c.client.Close() }

func splitTarget(req *httpwire.Request) (host, path string, err error) {
	t := req.Path
	if strings.HasPrefix(t, "http://") {
		rest := strings.TrimPrefix(t, "http://")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return rest[:i], rest[i:], nil
		}
		return rest, "/", nil
	}
	host = req.Header.Get("Host")
	if host == "" {
		return "", "", fmt.Errorf("center: request has neither absolute URI nor Host header")
	}
	if !strings.HasPrefix(t, "/") {
		t = "/" + t
	}
	return host, t, nil
}

// ServeWire implements httpwire.Handler: relay, observe, inject. The
// request context bounds the upstream relay, so a torn-down client
// connection abandons its origin exchange.
func (c *Center) ServeWire(ctx context.Context, req *httpwire.Request) *httpwire.Response {
	if httpwire.IsStatsRequest(req) {
		return httpwire.StatsResponse(c.obs)
	}
	if httpwire.IsPprofRequest(req) {
		return httpwire.PprofResponse(req)
	}
	now := c.cfg.Clock()
	host, path, err := splitTarget(req)
	if err != nil {
		return httpwire.NewResponse(400)
	}
	filter, hasFilter := httpwire.GetFilter(req)
	wantsTrailer := req.AcceptsChunkedTrailer()

	// Consume Piggy-Hits here (§5): the center maintains the volumes,
	// so proxy-satisfied accesses feed its popularity order directly.
	if hits := httpwire.GetHits(req); len(hits) > 0 {
		hitTime := c.cfg.Clock()
		for _, h := range hits {
			c.vols.Observe(core.Access{Source: req.RemoteAddr, Time: hitTime,
				Element: core.Element{URL: host + h}})
		}
		c.c.hitReports.Add(int64(len(hits)))
	}

	// Forward upstream with the piggybacking headers stripped — the
	// origin server need not know the protocol exists.
	oreq := httpwire.NewRequest(req.Method, path)
	oreq.Header = req.Header.Clone()
	oreq.Header.Del(httpwire.FieldPiggyFilter)
	oreq.Header.Del(httpwire.FieldPiggyHits)
	oreq.Header.Del("TE")
	oreq.Header.Set("Host", host)
	oreq.Body = req.Body

	addr, err := c.cfg.Resolve(host)
	if err != nil {
		c.countError()
		return httpwire.NewResponse(502)
	}
	resp, err := c.client.DoContext(ctx, addr, oreq)
	if err != nil {
		c.countError()
		return httpwire.NewResponse(502)
	}

	c.c.relayed.Inc()

	qualified := host + path
	if resp.Status == 200 || resp.Status == 304 {
		lm, _ := resp.LastModified()
		size := int64(len(resp.Body))
		if cl := resp.Header.Get("Content-Length"); resp.Status == 304 && cl != "" {
			// Keep the advertised size for validations.
			fmt.Sscanf(cl, "%d", &size)
		}
		c.vols.Observe(core.Access{
			Source:  req.RemoteAddr,
			Time:    now,
			Element: core.Element{URL: qualified, Size: size, LastModified: lm},
		})
	}

	out := &httpwire.Response{
		Proto:   "HTTP/1.1",
		Status:  resp.Status,
		Reason:  resp.Reason,
		Header:  resp.Header.Clone(),
		Body:    resp.Body,
		Trailer: resp.Trailer,
	}
	out.Header.Del("Connection")
	// Framing is recomputed on write.
	out.Header.Del("Transfer-Encoding")
	out.Header.Del("Trailer")

	if len(resp.Trailer) > 0 && resp.Trailer.Get(httpwire.FieldPVolume) != "" {
		// A cooperating origin already piggybacked; pass it through.
		c.c.originPiggyback.Inc()
		return out
	}
	if hasFilter && wantsTrailer {
		if m, ok := c.vols.Piggyback(qualified, now, filter); ok {
			httpwire.AttachPiggyback(out, m)
			c.c.piggybacksSent.Inc()
			c.c.piggybackElems.Add(int64(len(m.Elements)))
		}
	}
	return out
}

func (c *Center) countError() { c.c.upstreamErrors.Inc() }
