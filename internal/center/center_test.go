package center

import (
	"context"
	"net"
	"strings"
	"testing"

	"piggyback/internal/core"
	"piggyback/internal/httpwire"
	"piggyback/internal/proxy"
	"piggyback/internal/server"
)

// plainOrigin is a NON-cooperating origin: it serves resources but knows
// nothing about volumes or piggybacking.
func plainOrigin(t *testing.T, clock func() int64, hosts map[string]*server.Store) string {
	t.Helper()
	// One listener serving all hosts, dispatching on the Host header.
	h := httpwire.HandlerFunc(func(_ context.Context, req *httpwire.Request) *httpwire.Response {
		if req.Header.Has(httpwire.FieldPiggyFilter) || req.Header.Has(httpwire.FieldPiggyHits) {
			t.Errorf("piggyback header leaked to origin")
		}
		st, ok := hosts[req.Header.Get("Host")]
		if !ok {
			return httpwire.NewResponse(404)
		}
		// A plain static server: no volume engine at all.
		return server.New(st, nil, clock).ServeWire(context.Background(), req)
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: h}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func newCenterBed(t *testing.T) (ctr *Center, ctrAddr string, now *int64, stores map[string]*server.Store) {
	t.Helper()
	n := int64(10000)
	now = &n
	clock := func() int64 { return *now }

	stores = map[string]*server.Store{
		"www.one.com": server.NewStore(),
		"www.two.com": server.NewStore(),
	}
	stores["www.one.com"].Put(server.Resource{URL: "/a/x.html", Size: 100, LastModified: 1000})
	stores["www.one.com"].Put(server.Resource{URL: "/a/y.gif", Size: 50, LastModified: 1500})
	stores["www.two.com"].Put(server.Resource{URL: "/a/z.html", Size: 70, LastModified: 800})
	originAddr := plainOrigin(t, clock, stores)

	ctr = New(Config{
		Resolve: func(host string) (string, error) { return originAddr, nil },
		Clock:   clock,
	})
	t.Cleanup(ctr.Close)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: ctr}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return ctr, l.Addr().String(), now, stores
}

func doVia(t *testing.T, c *httpwire.Client, addr, host, path string, f *core.Filter) *httpwire.Response {
	t.Helper()
	req := httpwire.NewRequest("GET", path)
	req.Header.Set("Host", host)
	if f != nil {
		httpwire.SetFilter(req, *f)
	}
	resp, err := c.DoContext(context.Background(), addr, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCenterRelaysTransparently(t *testing.T) {
	_, addr, _, _ := newCenterBed(t)
	c := httpwire.NewClient()
	defer c.Close()
	resp := doVia(t, c, addr, "www.one.com", "/a/x.html", nil)
	if resp.Status != 200 || len(resp.Body) != 100 {
		t.Fatalf("relay: %d, %d bytes", resp.Status, len(resp.Body))
	}
	if _, ok := httpwire.ExtractPiggyback(resp); ok {
		t.Error("piggyback injected for a filterless client")
	}
}

func TestCenterInjectsPiggybackOnBehalfOfOrigin(t *testing.T) {
	ctr, addr, _, _ := newCenterBed(t)
	c := httpwire.NewClient()
	defer c.Close()
	f := &core.Filter{MaxPiggy: 10}
	// Warm the center's volumes.
	doVia(t, c, addr, "www.one.com", "/a/y.gif", f)
	resp := doVia(t, c, addr, "www.one.com", "/a/x.html", f)
	m, ok := httpwire.ExtractPiggyback(resp)
	if !ok {
		t.Fatal("center did not inject a piggyback")
	}
	found := false
	for _, e := range m.Elements {
		if !strings.HasPrefix(e.URL, "www.one.com/") {
			t.Errorf("center element not host-qualified: %q", e.URL)
		}
		if e.URL == "www.one.com/a/y.gif" {
			found = true
			if e.LastModified != 1500 || e.Size != 50 {
				t.Errorf("element attributes: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("expected www.one.com/a/y.gif, got %+v", m.Elements)
	}
	if st := ctr.Stats(); st.PiggybacksSent != 1 || st.Relayed != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCenterKeepsSitesInSeparateVolumes(t *testing.T) {
	_, addr, _, _ := newCenterBed(t)
	c := httpwire.NewClient()
	defer c.Close()
	f := &core.Filter{MaxPiggy: 10}
	doVia(t, c, addr, "www.two.com", "/a/z.html", f)
	resp := doVia(t, c, addr, "www.one.com", "/a/x.html", f)
	if m, ok := httpwire.ExtractPiggyback(resp); ok {
		for _, e := range m.Elements {
			if strings.HasPrefix(e.URL, "www.two.com/") {
				t.Errorf("cross-site element in one.com volume: %q", e.URL)
			}
		}
	}
}

func TestCenterHonorsRPVFilter(t *testing.T) {
	ctr, addr, _, _ := newCenterBed(t)
	c := httpwire.NewClient()
	defer c.Close()
	f := &core.Filter{MaxPiggy: 10}
	doVia(t, c, addr, "www.one.com", "/a/y.gif", f)
	resp := doVia(t, c, addr, "www.one.com", "/a/x.html", f)
	m, ok := httpwire.ExtractPiggyback(resp)
	if !ok {
		t.Fatal("no piggyback")
	}
	f2 := &core.Filter{MaxPiggy: 10, RPV: []core.VolumeID{m.Volume}}
	resp2 := doVia(t, c, addr, "www.one.com", "/a/x.html", f2)
	if _, ok := httpwire.ExtractPiggyback(resp2); ok {
		t.Error("RPV-listed volume piggybacked anyway")
	}
	if ctr.Stats().PiggybacksSent != 1 {
		t.Errorf("stats = %+v", ctr.Stats())
	}
}

func TestCenterPassesThroughConditionalRequests(t *testing.T) {
	_, addr, _, _ := newCenterBed(t)
	c := httpwire.NewClient()
	defer c.Close()
	req := httpwire.NewRequest("GET", "/a/x.html")
	req.Header.Set("Host", "www.one.com")
	req.Header.Set("If-Modified-Since", httpwire.FormatHTTPDate(1000))
	resp, err := c.DoContext(context.Background(), addr, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 304 {
		t.Errorf("status = %d, want 304 through the center", resp.Status)
	}
}

func TestCenterUpstreamError(t *testing.T) {
	clock := func() int64 { return 1 }
	ctr := New(Config{
		Resolve: func(host string) (string, error) { return "127.0.0.1:1", nil },
		Clock:   clock,
	})
	defer ctr.Close()
	req := httpwire.NewRequest("GET", "/x")
	req.Header.Set("Host", "dead.example.com")
	if resp := ctr.ServeWire(context.Background(), req); resp.Status != 502 {
		t.Errorf("status = %d, want 502", resp.Status)
	}
}

func TestProxyThroughCenterEndToEnd(t *testing.T) {
	// The full §1 deployment: client -> caching proxy -> volume center ->
	// plain origin. The proxy's piggyback machinery works unchanged even
	// though the origin knows nothing about the protocol.
	_, ctrAddr, nowp, _ := newCenterBed(t)

	px := proxy.New(proxy.Config{
		Delta:   600,
		Clock:   func() int64 { return *nowp },
		Resolve: func(host string) (string, error) { return ctrAddr, nil },
	})
	defer px.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	psrv := &httpwire.Server{Handler: px}
	go psrv.Serve(l)
	defer psrv.Close()

	c := httpwire.NewClient()
	defer c.Close()
	get := func(url string) *httpwire.Response {
		resp, err := c.DoContext(context.Background(), l.Addr().String(), httpwire.NewRequest("GET", "http://"+url))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get("www.one.com/a/y.gif")
	*nowp += 5
	get("www.one.com/a/x.html")
	st := px.Stats()
	if st.PiggybacksReceived == 0 {
		t.Fatal("proxy received no piggyback through the center")
	}
	if st.Refreshes == 0 {
		t.Errorf("piggyback did not refresh the cached entry: %+v", st)
	}
}

func TestCenterConsumesPiggyHits(t *testing.T) {
	ctr, addr, _, _ := newCenterBed(t)
	c := httpwire.NewClient()
	defer c.Close()
	req := httpwire.NewRequest("GET", "/a/x.html")
	req.Header.Set("Host", "www.one.com")
	httpwire.SetHits(req, []string{"/a/y.gif", "/a/x.html"})
	resp, err := c.DoContext(context.Background(), addr, req)
	if err != nil || resp.Status != 200 {
		t.Fatalf("relay: %v %d", err, resp.Status)
	}
	if got := ctr.Stats().HitReports; got != 2 {
		t.Errorf("HitReports = %d, want 2", got)
	}
	// The plain origin asserts (in plainOrigin) that Piggy-Filter never
	// leaks; verify Piggy-Hits is also stripped by checking the volume
	// learned the hit: y.gif should now be in one.com's volume.
	if id, ok := ctr.Volumes().(interface {
		VolumeOf(string) (core.VolumeID, bool)
	}); ok {
		if _, found := id.VolumeOf("www.one.com/a/y.gif"); !found {
			t.Error("hit-reported resource not folded into volumes")
		}
	}
}
