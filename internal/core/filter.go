package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Filter is a proxy-generated filter that customizes piggyback messages
// (§2.2). It is carried on the request in the Piggy-Filter header:
//
//	Piggy-Filter: maxpiggy=10; rpv="3,4"; minaccess=50; maxsize=65536;
//	              pt=0.25; notypes="image"
//
// The zero Filter requests piggybacking with no restrictions.
type Filter struct {
	// Disabled suppresses piggybacking entirely for this request — the
	// proxy's frequency-control enable/disable bit (§2.2).
	Disabled bool
	// MaxPiggy caps the number of piggybacked elements; zero means no
	// explicit cap (the server may still impose its own).
	MaxPiggy int
	// RPV lists recently piggybacked volumes: the server omits the
	// piggyback when the requested resource's volume is listed (§2.2).
	RPV []VolumeID
	// MinAccess omits resources accessed fewer than this many times —
	// the access filter of §3.2.2 (e.g. "filter of 100").
	MinAccess int
	// MaxSize omits resources larger than this many bytes; zero means
	// unlimited (§2.2: avoid fetching and storing large resources).
	MaxSize int64
	// ProbThreshold requires piggybacked elements to co-occur with the
	// requested resource with probability >= this threshold (§2.3);
	// meaningful with probability-based volumes.
	ProbThreshold float64
	// NoTypes lists content-type prefixes to exclude, e.g. "image" for a
	// proxy serving low-bandwidth wireless clients (§2.2).
	NoTypes []string
}

// AllowsType reports whether the filter admits a resource of the given
// content type.
func (f Filter) AllowsType(contentType string) bool {
	for _, t := range f.NoTypes {
		if strings.HasPrefix(contentType, t) {
			return false
		}
	}
	return true
}

// HasRPV reports whether the volume id appears in the filter's RPV list.
func (f Filter) HasRPV(id VolumeID) bool {
	for _, v := range f.RPV {
		if v == id {
			return true
		}
	}
	return false
}

// Admits reports whether an element passes the filter's per-element
// constraints (size and content-type); access-count and probability
// constraints are applied by the volume provider, which holds that state.
func (f Filter) Admits(e Element, contentType string) bool {
	if f.MaxSize > 0 && e.Size > f.MaxSize {
		return false
	}
	return f.AllowsType(contentType)
}

// Cap returns the effective element cap given the server-side limit:
// the smaller of the two non-zero values.
func (f Filter) Cap(serverMax int) int {
	switch {
	case f.MaxPiggy <= 0:
		return serverMax
	case serverMax <= 0:
		return f.MaxPiggy
	case f.MaxPiggy < serverMax:
		return f.MaxPiggy
	default:
		return serverMax
	}
}

// Header renders the filter as a Piggy-Filter field value. A disabled
// filter renders as "off". Zero-valued attributes are omitted.
func (f Filter) Header() string {
	if f.Disabled {
		return "off"
	}
	var parts []string
	if f.MaxPiggy > 0 {
		parts = append(parts, "maxpiggy="+strconv.Itoa(f.MaxPiggy))
	}
	if len(f.RPV) > 0 {
		ids := make([]string, len(f.RPV))
		sorted := append([]VolumeID(nil), f.RPV...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, v := range sorted {
			ids[i] = strconv.Itoa(int(v))
		}
		parts = append(parts, `rpv="`+strings.Join(ids, ",")+`"`)
	}
	if f.MinAccess > 0 {
		parts = append(parts, "minaccess="+strconv.Itoa(f.MinAccess))
	}
	if f.MaxSize > 0 {
		parts = append(parts, "maxsize="+strconv.FormatInt(f.MaxSize, 10))
	}
	if f.ProbThreshold > 0 {
		parts = append(parts, "pt="+strconv.FormatFloat(f.ProbThreshold, 'g', -1, 64))
	}
	if len(f.NoTypes) > 0 {
		parts = append(parts, `notypes="`+strings.Join(f.NoTypes, ",")+`"`)
	}
	if len(parts) == 0 {
		return "on"
	}
	return strings.Join(parts, "; ")
}

// ParseFilter parses a Piggy-Filter field value produced by Header.
// The values "on" and "" parse as the zero filter; "off" as disabled.
func ParseFilter(s string) (Filter, error) {
	var f Filter
	s = strings.TrimSpace(s)
	switch s {
	case "", "on":
		return f, nil
	case "off":
		f.Disabled = true
		return f, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return f, fmt.Errorf("core: bad filter attribute %q", part)
		}
		key = strings.TrimSpace(strings.ToLower(key))
		val = strings.Trim(strings.TrimSpace(val), `"`)
		switch key {
		case "maxpiggy":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return f, fmt.Errorf("core: bad maxpiggy %q", val)
			}
			f.MaxPiggy = n
		case "rpv":
			if val == "" {
				continue
			}
			for _, idStr := range strings.Split(val, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(idStr))
				if err != nil || id < 0 || VolumeID(id) > MaxVolumeID {
					return f, fmt.Errorf("core: bad rpv id %q", idStr)
				}
				f.RPV = append(f.RPV, VolumeID(id))
			}
		case "minaccess":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return f, fmt.Errorf("core: bad minaccess %q", val)
			}
			f.MinAccess = n
		case "maxsize":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return f, fmt.Errorf("core: bad maxsize %q", val)
			}
			f.MaxSize = n
		case "pt":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return f, fmt.Errorf("core: bad pt %q", val)
			}
			f.ProbThreshold = p
		case "notypes":
			if val == "" {
				continue
			}
			for _, t := range strings.Split(val, ",") {
				f.NoTypes = append(f.NoTypes, strings.TrimSpace(t))
			}
		default:
			// Unknown attributes are ignored for forward
			// compatibility; the paper's future work anticipates a
			// richer filter language (§5).
		}
	}
	return f, nil
}
