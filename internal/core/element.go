// Package core implements the paper's primary contribution: server volumes,
// proxy filters, and piggyback message generation (Cohen, Krishnamurthy,
// Rexford, SIGCOMM 1998).
//
// A server groups related resources into volumes — either statically by
// directory prefix (DirVolumes, §3.2) or by measured pairwise access
// probabilities (ProbVolumes, §3.3) — and, on each response, piggybacks a
// small list of volume elements (URL, size, Last-Modified) likely to be
// requested soon by the same proxy. The proxy tailors that list with a
// Filter carried on the request, and paces it with a recently-piggybacked-
// volume (RPV) list so the server needs no per-proxy state.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// VolumeID identifies a volume within one server. The wire format is a
// 2-byte identifier allowing up to 32767 volumes per server (§2.3).
type VolumeID uint16

// MaxVolumeID is the largest representable volume identifier.
const MaxVolumeID VolumeID = 32767

// Element is one piggyback element: the identifier, size, and Last-Modified
// time of a resource in the same volume as a requested resource (§2.1).
type Element struct {
	// URL is the resource identifier, with the redundant server-name
	// portion omitted (§2.3).
	URL string
	// Size is the resource size in bytes.
	Size int64
	// LastModified is the resource's Last-Modified time in Unix seconds.
	LastModified int64
}

// WireBytes is the paper's estimate of the wire cost of one piggyback
// element: a ~50-byte URL plus 8-byte Last-Modified and 8-byte size (§2.3).
func (e Element) WireBytes() int { return len(e.URL) + 16 }

// Message is a piggyback message: a volume identifier followed by a
// sequence of piggyback elements (§2.3).
type Message struct {
	Volume   VolumeID
	Elements []Element
	// enc holds the pre-serialized wire segment of each element, parallel
	// to Elements — rendered once per volume update by the volume engine
	// (mtfNode caches it) rather than once per response. Encode memcpys
	// these instead of re-formatting; nil (engines without segment
	// support, parsed messages) falls back to formatting.
	enc []string
}

// Empty reports whether the message carries no elements.
func (m Message) Empty() bool { return len(m.Elements) == 0 }

// WireBytes returns the encoded size of the message: a 2-byte volume
// identifier plus the per-element costs (§2.3).
func (m Message) WireBytes() int {
	n := 2
	for _, e := range m.Elements {
		n += e.WireBytes()
	}
	return n
}

// elementSegment renders one element's wire segment, leading space
// included: " url last-modified size".
func elementSegment(e Element) string {
	b := make([]byte, 0, len(e.URL)+24)
	b = append(b, ' ')
	b = append(b, e.URL...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, e.LastModified, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, e.Size, 10)
	return string(b)
}

// Encode renders the message as the P-Volume trailer field value:
//
//	P-Volume: 17; /a/b.html 866268400 4096, /a/c.gif 866268401 512
//
// Each element is "url last-modified size"; elements are comma-separated.
// When the volume engine supplied pre-serialized segments, encoding is a
// size computation plus memcpys — the hot path never re-formats integers.
func (m Message) Encode() string {
	var b strings.Builder
	if len(m.enc) == len(m.Elements) && len(m.Elements) > 0 {
		n := 8
		for _, s := range m.enc {
			n += len(s) + 1
		}
		b.Grow(n)
		b.WriteString(strconv.Itoa(int(m.Volume)))
		b.WriteByte(';')
		for i, s := range m.enc {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(s)
		}
		return b.String()
	}
	b.WriteString(strconv.Itoa(int(m.Volume)))
	b.WriteString(";")
	for i, e := range m.Elements {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(elementSegment(e))
	}
	return b.String()
}

// RefreshElements overwrites each element's attributes with the
// authoritative values from get (the server "has considerable knowledge
// about each resource", §2.1), dropping elements get rejects — and keeps
// the pre-serialized segments coherent: a segment is re-rendered only when
// the attributes actually changed, so an unmodified resource (the common
// case) costs a comparison, not a format.
func (m *Message) RefreshElements(get func(url string) (size, lastModified int64, ok bool)) {
	out := m.Elements[:0]
	hasEnc := len(m.enc) == len(m.Elements)
	var enc []string
	if hasEnc {
		enc = m.enc[:0]
	}
	for i, e := range m.Elements {
		size, lm, ok := get(e.URL)
		if !ok {
			continue
		}
		switch {
		case !hasEnc:
		case size == e.Size && lm == e.LastModified:
			enc = append(enc, m.enc[i])
		default:
			enc = append(enc, elementSegment(Element{URL: e.URL, Size: size, LastModified: lm}))
		}
		e.Size, e.LastModified = size, lm
		out = append(out, e)
	}
	m.Elements = out
	m.enc = enc
}

// ParseMessage parses a P-Volume field value produced by Encode.
func ParseMessage(s string) (Message, error) {
	var m Message
	vol, rest, found := strings.Cut(s, ";")
	if !found {
		return m, fmt.Errorf("core: malformed P-Volume value %q: missing volume id", s)
	}
	id, err := strconv.Atoi(strings.TrimSpace(vol))
	if err != nil || id < 0 || VolumeID(id) > MaxVolumeID {
		return m, fmt.Errorf("core: bad volume id %q", vol)
	}
	m.Volume = VolumeID(id)
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return m, nil
	}
	for _, part := range strings.Split(rest, ",") {
		fields := strings.Fields(part)
		if len(fields) != 3 {
			return m, fmt.Errorf("core: bad piggyback element %q", part)
		}
		lm, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return m, fmt.Errorf("core: bad Last-Modified in element %q", part)
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return m, fmt.Errorf("core: bad size in element %q", part)
		}
		m.Elements = append(m.Elements, Element{URL: fields[0], LastModified: lm, Size: size})
	}
	return m, nil
}

// Access describes one observed request, as fed to a volume provider.
type Access struct {
	// Source identifies the requesting proxy or client.
	Source string
	// Time is the request time in Unix seconds.
	Time int64
	// Element carries the requested resource's identifier and current
	// attributes (size, Last-Modified) as known at the server.
	Element Element
}

// Provider is a volume engine: it observes the server's request stream and
// generates piggyback messages customized by a proxy filter.
//
// Piggyback returns the message for a request for url at the given time
// under filter f, and whether a piggyback should be attached at all (false
// when the filter disables it, the resource's volume is in the filter's RPV
// list, or the volume has nothing to offer).
type Provider interface {
	Observe(a Access)
	Piggyback(url string, now int64, f Filter) (Message, bool)
}

// VolumeOf is implemented by providers that can name the volume a resource
// currently belongs to. The proxy never needs this mapping (§2.2: it learns
// volume ids only from piggyback replies); it is exported for the
// evaluation harness and for volume-center administration.
type VolumeOf interface {
	VolumeOf(url string) (VolumeID, bool)
}
