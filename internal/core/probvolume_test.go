package core

import (
	"math"
	"strconv"
	"testing"

	"piggyback/internal/trace"
)

// pageTrace builds a log where every request for /a/page.html by any client
// is followed by /a/img.gif within 2 seconds (an embedded image), and half
// the time by /b/next.html within 100 seconds (a followed link).
func pageTrace(nClients, visits int) trace.Log {
	var l trace.Log
	t := int64(1000)
	for c := 0; c < nClients; c++ {
		client := "c" + strconv.Itoa(c)
		for v := 0; v < visits; v++ {
			l = append(l, trace.Record{Time: t, Client: client, URL: "/a/page.html", Size: 5000, Method: "GET", Status: 200})
			l = append(l, trace.Record{Time: t + 2, Client: client, URL: "/a/img.gif", Size: 800, Method: "GET", Status: 200})
			if v%2 == 0 {
				l = append(l, trace.Record{Time: t + 100, Client: client, URL: "/b/next.html", Size: 3000, Method: "GET", Status: 200})
			}
			t += 1000 // next visit outside the window
		}
	}
	l.SortByTime()
	return l
}

func TestProbBuilderEstimatesPairwiseProbabilities(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.1})
	b.ObserveLog(log)
	v := b.Build(0)

	imps := v.Implications("/a/page.html")
	if len(imps) == 0 {
		t.Fatal("no implications for /a/page.html")
	}
	probs := map[string]float64{}
	for _, imp := range imps {
		probs[imp.Elem.URL] = imp.P
	}
	if p := probs["/a/img.gif"]; math.Abs(p-1.0) > 1e-9 {
		t.Errorf("p(img|page) = %v, want 1.0", p)
	}
	if p := probs["/b/next.html"]; math.Abs(p-0.5) > 1e-9 {
		t.Errorf("p(next|page) = %v, want 0.5", p)
	}
}

func TestProbBuilderWindowExpiry(t *testing.T) {
	// Requests more than T apart must not be paired.
	var l trace.Log
	l = append(l, trace.Record{Time: 0, Client: "c", URL: "/a/x.html"})
	l = append(l, trace.Record{Time: 400, Client: "c", URL: "/a/y.html"})
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.01})
	b.ObserveLog(l)
	v := b.Build(0)
	if got := v.Implications("/a/x.html"); len(got) != 0 {
		t.Errorf("pair across window: %+v", got)
	}
}

func TestProbBuilderCreditsOncePerOccurrence(t *testing.T) {
	// One occurrence of r followed by THREE requests for s within T must
	// credit c_{s|r} once: p(s|r) is a probability, never > 1.
	var l trace.Log
	l = append(l, trace.Record{Time: 0, Client: "c", URL: "/a/r.html"})
	for i := 1; i <= 3; i++ {
		l = append(l, trace.Record{Time: int64(i), Client: "c", URL: "/a/s.html"})
	}
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.01})
	b.ObserveLog(l)
	v := b.Build(0)
	imps := v.Implications("/a/r.html")
	if len(imps) != 1 || imps[0].P != 1.0 {
		t.Fatalf("implications = %+v, want single p=1", imps)
	}
}

func TestProbBuilderDifferentSourcesDontPair(t *testing.T) {
	var l trace.Log
	l = append(l, trace.Record{Time: 0, Client: "c1", URL: "/a/x.html"})
	l = append(l, trace.Record{Time: 1, Client: "c2", URL: "/a/y.html"})
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.01})
	b.ObserveLog(l)
	if got := b.Build(0).Implications("/a/x.html"); len(got) != 0 {
		t.Errorf("cross-source pair: %+v", got)
	}
}

func TestProbBuilderSelfPairsExcluded(t *testing.T) {
	var l trace.Log
	for i := 0; i < 5; i++ {
		l = append(l, trace.Record{Time: int64(i), Client: "c", URL: "/a/x.html"})
	}
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.01})
	b.ObserveLog(l)
	if got := b.Build(0).Implications("/a/x.html"); len(got) != 0 {
		t.Errorf("self pair: %+v", got)
	}
}

func TestProbBuilderSameDirRestriction(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.1, SameDirLevel: 1})
	b.ObserveLog(log)
	v := b.Build(0)
	for _, imp := range v.Implications("/a/page.html") {
		if trace.DirPrefix(imp.Elem.URL, 1) != "/a" {
			t.Errorf("cross-directory pair survived: %s", imp.Elem.URL)
		}
	}
	// img.gif is in the same directory, so it must survive.
	found := false
	for _, imp := range v.Implications("/a/page.html") {
		if imp.Elem.URL == "/a/img.gif" {
			found = true
		}
	}
	if !found {
		t.Error("same-directory pair missing")
	}
}

func TestProbVolumesPiggybackThreshold(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	v := b.Build(0)

	// With base Pt=0.2 both pairs (p=1.0 and p=0.5) pass.
	m, ok := v.Piggyback("/a/page.html", 9999, Filter{})
	if !ok || len(m.Elements) != 2 {
		t.Fatalf("base piggyback = %+v, %v", m, ok)
	}
	// Element order follows P descending.
	if m.Elements[0].URL != "/a/img.gif" {
		t.Errorf("highest-p element should come first: %+v", m.Elements)
	}
	// Filter raises the threshold above 0.5: only the image survives.
	m, ok = v.Piggyback("/a/page.html", 9999, Filter{ProbThreshold: 0.8})
	if !ok || len(m.Elements) != 1 || m.Elements[0].URL != "/a/img.gif" {
		t.Fatalf("thresholded piggyback = %+v, %v", m, ok)
	}
	// A filter threshold below the base cannot lower it... base applies.
	m, _ = v.Piggyback("/a/page.html", 9999, Filter{ProbThreshold: 0.05})
	if len(m.Elements) != 2 {
		t.Errorf("filter must not lower base threshold: %+v", m.Elements)
	}
}

func TestProbVolumesRPVAndDisabled(t *testing.T) {
	log := pageTrace(2, 5)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	v := b.Build(0)
	id, ok := v.VolumeOf("/a/page.html")
	if !ok {
		t.Fatal("VolumeOf missing")
	}
	if _, ok := v.Piggyback("/a/page.html", 1, Filter{RPV: []VolumeID{id}}); ok {
		t.Error("RPV-listed volume must suppress piggyback")
	}
	if _, ok := v.Piggyback("/a/page.html", 1, Filter{Disabled: true}); ok {
		t.Error("disabled filter must suppress piggyback")
	}
	if _, ok := v.Piggyback("/unknown.html", 1, Filter{}); ok {
		t.Error("unknown resource must not piggyback")
	}
}

func TestProbVolumesPerResourceIDs(t *testing.T) {
	log := pageTrace(2, 5)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	v := b.Build(0)
	if v.Resources() != 3 {
		t.Fatalf("Resources = %d, want 3", v.Resources())
	}
	ids := map[VolumeID]bool{}
	for _, url := range []string{"/a/page.html", "/a/img.gif", "/b/next.html"} {
		id, ok := v.VolumeOf(url)
		if !ok {
			t.Fatalf("missing id for %s", url)
		}
		if ids[id] {
			t.Errorf("duplicate volume id %d", id)
		}
		ids[id] = true
	}
}

func TestProbVolumesStats(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	v := b.Build(0)
	st := v.Stats(0.2)
	if st.SelfMembers != 0 {
		t.Errorf("SelfMembers = %d, want 0", st.SelfMembers)
	}
	if st.Pairs == 0 {
		t.Error("expected some pairs")
	}
	// page -> img (1.0) and img -> ??? : img is followed by next 50% of
	// the time within T... page->next, img->next, page->img. next->
	// nothing mostly. Symmetry should be rare.
	if st.SymmetricPairs > st.Pairs {
		t.Errorf("SymmetricPairs %d > Pairs %d", st.SymmetricPairs, st.Pairs)
	}
}

func TestProbVolumesSamplingKeepsFrequentPairs(t *testing.T) {
	log := pageTrace(16, 40)
	sampled := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2, Sampling: true, SampleK: 2, Seed: 7})
	sampled.ObserveLog(log)

	// The high-probability pair co-occurs from the first request, when
	// c_r is tiny and the creation probability is 1, so its counter is
	// exact and the estimate unharmed.
	v := sampled.Build(0)
	var p float64
	for _, imp := range v.Implications("/a/page.html") {
		if imp.Elem.URL == "/a/img.gif" {
			p = imp.P
		}
	}
	if p < 0.9 {
		t.Errorf("sampled p(img|page) = %v, want ~1", p)
	}
}

func TestProbVolumesSamplingSkipsRarePairs(t *testing.T) {
	// /a/r.html becomes popular first; each rare successor then
	// co-occurs once, when the creation probability K/(c_r*Pt) is small,
	// so most of these one-shot pairs never get counters.
	var l trace.Log
	tt := int64(0)
	for i := 0; i < 200; i++ {
		l = append(l, trace.Record{Time: tt, Client: "c", URL: "/a/r.html"})
		tt += 1000
	}
	for i := 0; i < 20; i++ {
		l = append(l, trace.Record{Time: tt, Client: "c", URL: "/a/r.html"})
		l = append(l, trace.Record{Time: tt + 1, Client: "c", URL: "/a/rare" + strconv.Itoa(i) + ".html"})
		tt += 1000
	}
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2, Sampling: true, SampleK: 2, Seed: 7})
	b.ObserveLog(l)
	if b.PairsSkipped == 0 {
		t.Errorf("sampling skipped no pairs (created %d)", b.CountersCreated)
	}
	exact := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	exact.ObserveLog(l)
	if b.NumCounters() >= exact.NumCounters() {
		t.Errorf("sampling should use fewer counters: %d vs %d",
			b.NumCounters(), exact.NumCounters())
	}
}

func TestProbVolumesSamplingUnbiasedInit(t *testing.T) {
	log := pageTrace(16, 40)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2, Sampling: true, SampleK: 1, UnbiasedInit: true, Seed: 3})
	b.ObserveLog(log)
	v := b.Build(0)
	for _, imp := range v.Implications("/a/page.html") {
		if imp.P > 1 {
			t.Errorf("probability must clamp at 1: %+v", imp)
		}
	}
}

func TestProbVolumesMinKeepDiscards(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	v := b.Build(0.9) // keep only near-certain pairs
	for r, imps := range v.imps {
		for _, imp := range imps {
			if imp.P < 0.9 {
				t.Errorf("pair %s->%s p=%v below minKeep", r, imp.Elem.URL, imp.P)
			}
		}
	}
}

func TestRestrictSameDir(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	v := b.Build(0).RestrictSameDir(1)
	for r, imps := range v.imps {
		rp := trace.DirPrefix(r, 1)
		for _, imp := range imps {
			if trace.DirPrefix(imp.Elem.URL, 1) != rp {
				t.Errorf("cross-dir pair survived RestrictSameDir: %s -> %s", r, imp.Elem.URL)
			}
		}
	}
}

func TestWithPtSweepsThreshold(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.1})
	b.ObserveLog(log)
	v := b.Build(0)
	low, _ := v.WithPt(0.1).Piggyback("/a/page.html", 1, Filter{})
	high, ok := v.WithPt(0.9).Piggyback("/a/page.html", 1, Filter{})
	if !ok {
		t.Fatal("high-threshold piggyback vanished entirely")
	}
	if len(high.Elements) >= len(low.Elements) {
		t.Errorf("raising pt should shrink piggyback: %d vs %d", len(high.Elements), len(low.Elements))
	}
}

func TestProbDistributionSorted(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.01})
	b.ObserveLog(log)
	ps := b.Build(0).ProbDistribution()
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatal("ProbDistribution not sorted")
		}
	}
	if len(ps) == 0 {
		t.Fatal("empty distribution")
	}
}

func TestProbVolumesAttributesCarried(t *testing.T) {
	log := pageTrace(2, 5)
	for i := range log {
		log[i].LastModified = 777
	}
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	m, ok := b.Build(0).Piggyback("/a/page.html", 1, Filter{})
	if !ok {
		t.Fatal("no piggyback")
	}
	for _, e := range m.Elements {
		if e.Size == 0 || e.LastModified != 777 {
			t.Errorf("element attributes missing: %+v", e)
		}
	}
}

func TestProbVolumesObserveNoOpAndAccessCount(t *testing.T) {
	log := pageTrace(2, 5)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	v := b.Build(0)
	before := v.AccessCount("/a/page.html")
	if before == 0 {
		t.Fatal("no access count")
	}
	v.Observe(Access{Source: "x", Time: 1, Element: Element{URL: "/a/page.html"}})
	if v.AccessCount("/a/page.html") != before {
		t.Error("Observe mutated static volumes")
	}
}
