package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Persistence for probability-based volumes. The paper builds volumes
// offline ("once a day or once a week", §3.3.1) and applies one set for the
// duration of a log; a production server therefore needs to store the
// built volumes and reload them at startup. The format is a line-oriented
// text table, deliberately diff- and grep-friendly:
//
//	pbvol 1
//	T 300
//	Pt 0.25
//	R <url> <volume-id> <access-count> <size> <last-modified>
//	I <r-url> <s-url> <p> <effp>
//
// R lines declare resources (one per volume anchor); I lines declare
// implications, referencing previously declared resources.

const persistMagic = "pbvol 1"

// WriteTo serializes the volume set. It returns the number of bytes
// written.
func (v *ProbVolumes) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(format string, args ...interface{}) error {
		m, err := fmt.Fprintf(bw, format, args...)
		n += int64(m)
		return err
	}
	if err := write("%s\n", persistMagic); err != nil {
		return n, err
	}
	if err := write("T %d\n", v.T); err != nil {
		return n, err
	}
	if err := write("Pt %s\n", strconv.FormatFloat(v.Pt, 'g', -1, 64)); err != nil {
		return n, err
	}
	if err := write("SameDir %d\n", v.sameDir); err != nil {
		return n, err
	}
	if err := write("MaxPiggy %d\n", v.ServerMaxPiggy); err != nil {
		return n, err
	}

	urls := make([]string, 0, len(v.ids))
	for url := range v.ids {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		e := v.attrs[url]
		if err := write("R %s %d %d %d %d\n", url, v.ids[url], v.counts[url], e.Size, e.LastModified); err != nil {
			return n, err
		}
	}
	rs := make([]string, 0, len(v.imps))
	for r := range v.imps {
		rs = append(rs, r)
	}
	sort.Strings(rs)
	for _, r := range rs {
		for _, imp := range v.imps[r] {
			if err := write("I %s %s %s %s\n", r, imp.Elem.URL,
				strconv.FormatFloat(imp.P, 'g', -1, 64),
				strconv.FormatFloat(imp.EffP, 'g', -1, 64)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadProbVolumes deserializes a volume set written by WriteTo.
func ReadProbVolumes(r io.Reader) (*ProbVolumes, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	fail := func(msg string, args ...interface{}) error {
		return fmt.Errorf("core: volumes line %d: %s", line, fmt.Sprintf(msg, args...))
	}

	s, ok := next()
	if !ok || s != persistMagic {
		return nil, fail("bad magic %q", s)
	}
	v := &ProbVolumes{
		imps:    make(map[string][]Implication),
		ids:     make(map[string]VolumeID),
		counts:  make(map[string]int),
		attrs:   make(map[string]Element),
		sameDir: -1,
	}
	for {
		s, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(s)
		switch fields[0] {
		case "T", "Pt", "SameDir", "MaxPiggy":
			if len(fields) != 2 {
				return nil, fail("bad header line %q", s)
			}
			switch fields[0] {
			case "T":
				t, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil {
					return nil, fail("bad T: %v", err)
				}
				v.T = t
			case "Pt":
				p, err := strconv.ParseFloat(fields[1], 64)
				if err != nil {
					return nil, fail("bad Pt: %v", err)
				}
				v.Pt = p
			case "SameDir":
				d, err := strconv.Atoi(fields[1])
				if err != nil {
					return nil, fail("bad SameDir: %v", err)
				}
				v.sameDir = d
			case "MaxPiggy":
				m, err := strconv.Atoi(fields[1])
				if err != nil {
					return nil, fail("bad MaxPiggy: %v", err)
				}
				v.ServerMaxPiggy = m
			}
		case "R":
			if len(fields) != 6 {
				return nil, fail("bad R line %q", s)
			}
			url := fields[1]
			id, err1 := strconv.Atoi(fields[2])
			cnt, err2 := strconv.Atoi(fields[3])
			size, err3 := strconv.ParseInt(fields[4], 10, 64)
			lm, err4 := strconv.ParseInt(fields[5], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
				id < 0 || VolumeID(id) > MaxVolumeID || cnt < 0 {
				return nil, fail("bad R values %q", s)
			}
			v.ids[url] = VolumeID(id)
			v.counts[url] = cnt
			v.attrs[url] = Element{URL: url, Size: size, LastModified: lm}
		case "I":
			if len(fields) != 5 {
				return nil, fail("bad I line %q", s)
			}
			rURL, sURL := fields[1], fields[2]
			p, err1 := strconv.ParseFloat(fields[3], 64)
			effp, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil || p < 0 || p > 1 {
				return nil, fail("bad I values %q", s)
			}
			if _, ok := v.ids[rURL]; !ok {
				return nil, fail("implication references undeclared resource %q", rURL)
			}
			e, ok := v.attrs[sURL]
			if !ok {
				return nil, fail("implication references undeclared successor %q", sURL)
			}
			v.imps[rURL] = append(v.imps[rURL], Implication{Elem: e, P: p, EffP: effp})
		default:
			return nil, fail("unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Restore the P-descending invariant queries depend on.
	for r, imps := range v.imps {
		sort.Slice(imps, func(i, j int) bool {
			if imps[i].P != imps[j].P {
				return imps[i].P > imps[j].P
			}
			return imps[i].Elem.URL < imps[j].Elem.URL
		})
		v.imps[r] = imps
	}
	return v, nil
}
