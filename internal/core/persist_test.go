package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestProbVolumesPersistRoundTrip(t *testing.T) {
	log := pageTrace(4, 10)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.2})
	b.ObserveLog(log)
	orig := b.Build(0)
	orig.ServerMaxPiggy = 7

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadProbVolumes(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.T != orig.T || got.Pt != orig.Pt || got.ServerMaxPiggy != 7 {
		t.Errorf("header mismatch: %+v vs %+v", got, orig)
	}
	if !reflect.DeepEqual(got.ids, orig.ids) {
		t.Error("ids differ")
	}
	if !reflect.DeepEqual(got.counts, orig.counts) {
		t.Error("counts differ")
	}
	if !reflect.DeepEqual(got.imps, orig.imps) {
		t.Errorf("implications differ:\n got %+v\nwant %+v", got.imps, orig.imps)
	}

	// Behavioral equivalence: identical piggybacks.
	f := Filter{MaxPiggy: 10}
	m1, ok1 := orig.Piggyback("/a/page.html", 1, f)
	m2, ok2 := got.Piggyback("/a/page.html", 1, f)
	if ok1 != ok2 || !reflect.DeepEqual(m1, m2) {
		t.Errorf("piggyback mismatch after reload: %+v vs %+v", m1, m2)
	}
}

func TestProbVolumesPersistThinned(t *testing.T) {
	log := redundantTrace(10)
	v := buildVolumes(t, log, 0.2).Thin(log, 0.2)
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProbVolumes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != v.NumPairs() {
		t.Errorf("pairs %d vs %d", got.NumPairs(), v.NumPairs())
	}
	// EffP survives the roundtrip.
	if imp, ok := implication(got, "/a/p1.html", "/a/img.gif"); !ok || imp.EffP < 0.99 {
		t.Errorf("EffP lost: %+v, %v", imp, ok)
	}
}

func TestReadProbVolumesErrors(t *testing.T) {
	bad := []string{
		"",
		"not the magic\n",
		"pbvol 1\nT abc\n",
		"pbvol 1\nPt nope\n",
		"pbvol 1\nR /x 1\n",
		"pbvol 1\nR /x 99999 1 2 3\n",
		"pbvol 1\nI /a /b 0.5 0.5\n", // undeclared resources
		"pbvol 1\nR /a 1 2 3 4\nI /a /b 0.5 0.5\n", // undeclared successor
		"pbvol 1\nR /a 1 2 3 4\nR /b 2 2 3 4\nI /a /b 1.5 0.5\n",
		"pbvol 1\nZ what\n",
	}
	for _, s := range bad {
		if _, err := ReadProbVolumes(strings.NewReader(s)); err == nil {
			t.Errorf("ReadProbVolumes(%q) succeeded, want error", s)
		}
	}
}

func TestReadProbVolumesSortsImplications(t *testing.T) {
	input := "pbvol 1\nT 300\nPt 0.1\n" +
		"R /a 1 5 10 20\nR /b 2 5 10 20\nR /c 3 5 10 20\n" +
		"I /a /b 0.3 1\nI /a /c 0.9 1\n"
	v, err := ReadProbVolumes(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	imps := v.Implications("/a")
	if len(imps) != 2 || imps[0].Elem.URL != "/c" {
		t.Errorf("implications not sorted by P desc: %+v", imps)
	}
}
