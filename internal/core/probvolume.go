package core

import (
	"sort"

	"piggyback/internal/trace"
)

// Implication is one membership pair in a probability-based volume:
// resource s (Elem) belongs to r's volume with implication probability
// P = p(s|r), and — after thinning — effective probability EffP.
type Implication struct {
	Elem Element
	P    float64
	EffP float64
}

// ProbVolumes is the probability-based volume engine (§3.3): each resource
// r has its own volume, the set of resources s with p(s|r) >= Pt. Volumes
// are built offline by a ProbBuilder ("in our experiments, we applied a
// single set of volumes for the duration of each log") and are immutable;
// concurrent readers are safe.
type ProbVolumes struct {
	// T is the co-occurrence window the volumes were built with.
	T int64
	// Pt is the base membership threshold.
	Pt float64
	// ServerMaxPiggy caps elements per message server-side; zero means
	// no cap.
	ServerMaxPiggy int

	imps    map[string][]Implication // r -> implications sorted by P desc
	ids     map[string]VolumeID      // r -> volume id
	counts  map[string]int           // c_r, for access filters
	attrs   map[string]Element       // latest attributes per resource
	sameDir int
}

// Observe is a no-op: probability-based volumes are constructed offline and
// held fixed for the duration of a log, per the paper's evaluation.
func (v *ProbVolumes) Observe(a Access) {}

// Piggyback builds the piggyback message for a request for url: the
// implications of url with P >= max(Pt, f.ProbThreshold) and EffP surviving
// any applied thinning, restricted by the filter's element constraints and
// capped at the effective maxpiggy. ok=false when the filter disables
// piggybacking, lists the resource's volume in its RPV, or nothing passes.
func (v *ProbVolumes) Piggyback(url string, now int64, f Filter) (Message, bool) {
	if f.Disabled {
		return Message{}, false
	}
	id, ok := v.ids[url]
	if !ok {
		return Message{}, false
	}
	if f.HasRPV(id) {
		return Message{}, false
	}
	imps := v.imps[url]
	if len(imps) == 0 {
		return Message{}, false
	}
	pt := v.Pt
	if f.ProbThreshold > pt {
		pt = f.ProbThreshold
	}
	max := f.Cap(v.ServerMaxPiggy)
	if max <= 0 {
		max = 1 << 30
	}
	var elems []Element
	for i := range imps {
		if imps[i].P < pt {
			break // sorted by P descending
		}
		e := imps[i].Elem
		if f.MinAccess > 0 && v.counts[e.URL] < f.MinAccess {
			continue
		}
		if !f.Admits(e, trace.ContentType(e.URL)) {
			continue
		}
		elems = append(elems, e)
		if len(elems) >= max {
			break
		}
	}
	if len(elems) == 0 {
		return Message{}, false
	}
	return Message{Volume: id, Elements: elems}, true
}

// VolumeOf returns the volume id of url (each resource anchors its own
// volume).
func (v *ProbVolumes) VolumeOf(url string) (VolumeID, bool) {
	id, ok := v.ids[url]
	return id, ok
}

// Implications returns url's membership list (sorted by P descending).
// The returned slice is shared; callers must not modify it.
func (v *ProbVolumes) Implications(url string) []Implication { return v.imps[url] }

// Resources returns the number of resources with a volume id.
func (v *ProbVolumes) Resources() int { return len(v.ids) }

// NumPairs returns the total implication pairs across all volumes.
func (v *ProbVolumes) NumPairs() int {
	n := 0
	for _, imps := range v.imps {
		n += len(imps)
	}
	return n
}

// AccessCount returns c_r for a resource.
func (v *ProbVolumes) AccessCount(url string) int { return v.counts[url] }

// VolumeStats summarizes volume structure for the symmetry analysis of
// §3.3.2: how many resources belong to their own volume (always zero here —
// self-pairs carry no prediction value and are never counted), what
// fraction of memberships are symmetric (s in r's volume and r in s's),
// and the membership-count distribution.
type VolumeStats struct {
	Resources        int
	Pairs            int
	SymmetricPairs   int
	SelfMembers      int
	MeanVolumeSize   float64
	MeanMemberOfVols float64
}

// Stats computes VolumeStats over memberships with P >= pt.
func (v *ProbVolumes) Stats(pt float64) VolumeStats {
	var st VolumeStats
	st.Resources = len(v.ids)
	member := make(map[string]map[string]bool, len(v.imps))
	for r, imps := range v.imps {
		for i := range imps {
			if imps[i].P < pt {
				break
			}
			m := member[r]
			if m == nil {
				m = make(map[string]bool, 4)
				member[r] = m
			}
			m[imps[i].Elem.URL] = true
		}
	}
	memberOf := make(map[string]int)
	for r, m := range member {
		st.Pairs += len(m)
		for s := range m {
			memberOf[s]++
			if s == r {
				st.SelfMembers++
			}
			if back, ok := member[s]; ok && back[r] {
				st.SymmetricPairs++
			}
		}
	}
	if n := len(member); n > 0 {
		st.MeanVolumeSize = float64(st.Pairs) / float64(n)
	}
	if n := len(memberOf); n > 0 {
		total := 0
		for _, c := range memberOf {
			total += c
		}
		st.MeanMemberOfVols = float64(total) / float64(n)
	}
	return st
}

// ProbDistribution returns the implication probabilities of every stored
// pair, sorted ascending — the data behind Fig 5(b)'s distribution of
// implication probabilities.
func (v *ProbVolumes) ProbDistribution() []float64 {
	var ps []float64
	for _, imps := range v.imps {
		for i := range imps {
			ps = append(ps, imps[i].P)
		}
	}
	sort.Float64s(ps)
	return ps
}

// clone duplicates the volume set with fresh implication slices (shared
// Element values are immutable).
func (v *ProbVolumes) clone() *ProbVolumes {
	nv := &ProbVolumes{
		T:              v.T,
		Pt:             v.Pt,
		ServerMaxPiggy: v.ServerMaxPiggy,
		imps:           make(map[string][]Implication, len(v.imps)),
		ids:            v.ids,
		counts:         v.counts,
		attrs:          v.attrs,
		sameDir:        v.sameDir,
	}
	for r, imps := range v.imps {
		nv.imps[r] = append([]Implication(nil), imps...)
	}
	return nv
}

// RestrictSameDir returns a copy of the volumes keeping only pairs whose
// resources share the same level-k directory prefix — applying the
// "combined volumes" restriction after the fact (§3.3.2, bottom curve of
// Fig 5(a)).
func (v *ProbVolumes) RestrictSameDir(level int) *ProbVolumes {
	nv := v.clone()
	nv.sameDir = level
	for r, imps := range nv.imps {
		rp := trace.DirPrefix(r, level)
		kept := imps[:0]
		for i := range imps {
			if trace.DirPrefix(imps[i].Elem.URL, level) == rp {
				kept = append(kept, imps[i])
			}
		}
		if len(kept) == 0 {
			delete(nv.imps, r)
		} else {
			nv.imps[r] = kept
		}
	}
	return nv
}

// WithPt returns a copy whose base membership threshold is pt — used by the
// harness to sweep thresholds over one built volume set.
func (v *ProbVolumes) WithPt(pt float64) *ProbVolumes {
	nv := v.clone()
	nv.Pt = pt
	return nv
}
