package core

import (
	"sync"
	"testing"
)

func feedOnline(o *OnlineProbVolumes, visits int) {
	t := int64(1000)
	for v := 0; v < visits; v++ {
		src := "c" + string(rune('0'+v%3))
		o.Observe(Access{Source: src, Time: t, Element: Element{URL: "/a/page.html", Size: 100, LastModified: 1}})
		o.Observe(Access{Source: src, Time: t + 2, Element: Element{URL: "/a/img.gif", Size: 50, LastModified: 1}})
		t += 1000
	}
}

func TestOnlineLearnsAndServes(t *testing.T) {
	o := NewOnlineProbVolumes(ProbConfig{T: 300, Pt: 0.2}, 10)
	feedOnline(o, 20)
	m, ok := o.Piggyback("/a/page.html", 99999, Filter{})
	if !ok {
		t.Fatal("online volumes never produced a piggyback")
	}
	found := false
	for _, e := range m.Elements {
		if e.URL == "/a/img.gif" {
			found = true
		}
	}
	if !found {
		t.Errorf("learned pair missing: %+v", m.Elements)
	}
	if o.Rebuilds() < 2 {
		t.Errorf("Rebuilds = %d, want >= 2", o.Rebuilds())
	}
}

func TestOnlineEmptyBeforeFirstObservation(t *testing.T) {
	o := NewOnlineProbVolumes(ProbConfig{T: 300, Pt: 0.2}, 10)
	if _, ok := o.Piggyback("/a/x.html", 1, Filter{}); ok {
		t.Error("piggyback before any observation")
	}
	if o.Snapshot() != nil {
		t.Error("snapshot before any observation")
	}
}

func TestOnlineAdaptsToShiftingPatterns(t *testing.T) {
	o := NewOnlineProbVolumes(ProbConfig{T: 300, Pt: 0.4}, 20)
	// Phase 1: page -> old.gif.
	tt := int64(1000)
	for v := 0; v < 30; v++ {
		src := "c" + string(rune('0'+v%3))
		o.Observe(Access{Source: src, Time: tt, Element: Element{URL: "/a/page.html", Size: 100}})
		o.Observe(Access{Source: src, Time: tt + 2, Element: Element{URL: "/a/old.gif", Size: 50}})
		tt += 1000
	}
	// Phase 2: the page is redesigned; now page -> new.gif, much more often.
	for v := 0; v < 300; v++ {
		src := "c" + string(rune('0'+v%3))
		o.Observe(Access{Source: src, Time: tt, Element: Element{URL: "/a/page.html", Size: 100}})
		o.Observe(Access{Source: src, Time: tt + 2, Element: Element{URL: "/a/new.gif", Size: 50}})
		tt += 1000
	}
	o.Rebuild()
	m, ok := o.Piggyback("/a/page.html", tt, Filter{})
	if !ok {
		t.Fatal("no piggyback")
	}
	hasNew, hasOld := false, false
	for _, e := range m.Elements {
		if e.URL == "/a/new.gif" {
			hasNew = true
		}
		if e.URL == "/a/old.gif" {
			hasOld = true
		}
	}
	if !hasNew {
		t.Errorf("new association not learned: %+v", m.Elements)
	}
	// p(old|page) fell to 30/330 < 0.4: dropped from the volume.
	if hasOld {
		t.Errorf("stale association retained at pt=0.4: %+v", m.Elements)
	}
}

func TestOnlineConcurrent(t *testing.T) {
	o := NewOnlineProbVolumes(ProbConfig{T: 300, Pt: 0.1}, 50)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tt := int64(g * 100000)
			for i := 0; i < 500; i++ {
				src := "g" + string(rune('0'+g))
				o.Observe(Access{Source: src, Time: tt, Element: Element{URL: "/a/p.html", Size: 10}})
				o.Piggyback("/a/p.html", tt, Filter{MaxPiggy: 5})
				tt += 7
			}
		}(g)
	}
	wg.Wait()
	if o.Counters() < 0 {
		t.Fatal("unreachable")
	}
}

func TestOnlineSamplingDefaultedOn(t *testing.T) {
	o := NewOnlineProbVolumes(ProbConfig{T: 300, Pt: 0.2}, 10)
	o.mu.RLock()
	sampling := o.builder.cfg.Sampling
	o.mu.RUnlock()
	if !sampling {
		t.Error("online mode must bound memory via sampling by default")
	}
}
