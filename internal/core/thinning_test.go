package core

import (
	"strconv"
	"testing"

	"piggyback/internal/trace"
)

// redundantTrace builds a log where /a/p1.html and /a/p2.html are ALWAYS
// requested together (p1 first), both followed by /a/img.gif. p1's
// prediction of img is effective (it comes first); p2's prediction of img
// is always redundant — img is already predicted when p2 arrives.
func redundantTrace(visits int) trace.Log {
	var l trace.Log
	t := int64(1000)
	for v := 0; v < visits; v++ {
		client := "c" + strconv.Itoa(v%3)
		l = append(l, trace.Record{Time: t, Client: client, URL: "/a/p1.html", Size: 100})
		l = append(l, trace.Record{Time: t + 5, Client: client, URL: "/a/p2.html", Size: 100})
		l = append(l, trace.Record{Time: t + 10, Client: client, URL: "/a/img.gif", Size: 100})
		t += 1000
	}
	l.SortByTime()
	return l
}

func buildVolumes(t *testing.T, log trace.Log, pt float64) *ProbVolumes {
	t.Helper()
	b := NewProbBuilder(ProbConfig{T: 300, Pt: pt})
	b.ObserveLog(log)
	return b.Build(0)
}

func implication(v *ProbVolumes, r, s string) (Implication, bool) {
	for _, imp := range v.Implications(r) {
		if imp.Elem.URL == s {
			return imp, true
		}
	}
	return Implication{}, false
}

func TestThinRemovesRedundantPredictions(t *testing.T) {
	log := redundantTrace(12)
	v := buildVolumes(t, log, 0.2)

	// Before thinning, both p1->img and p2->img have p = 1.
	if imp, ok := implication(v, "/a/p2.html", "/a/img.gif"); !ok || imp.P < 0.99 {
		t.Fatalf("pre-thinning p2->img = %+v, %v", imp, ok)
	}

	thinned := v.Thin(log, 0.2)

	// p1's prediction of img is effective (new + true) every time.
	if imp, ok := implication(thinned, "/a/p1.html", "/a/img.gif"); !ok || imp.EffP < 0.99 {
		t.Errorf("p1->img should survive with EffP ~1: %+v, %v", imp, ok)
	}
	// p2's prediction of img is always redundant: removed.
	if imp, ok := implication(thinned, "/a/p2.html", "/a/img.gif"); ok {
		t.Errorf("p2->img should be thinned away, still present: %+v", imp)
	}
}

func TestThinShrinksPiggybackWithoutLosingRecall(t *testing.T) {
	log := redundantTrace(12)
	v := buildVolumes(t, log, 0.2)
	thinned := v.Thin(log, 0.2)

	before, _ := v.Piggyback("/a/p2.html", 1, Filter{})
	after, okAfter := thinned.Piggyback("/a/p2.html", 1, Filter{})
	if okAfter && len(after.Elements) >= len(before.Elements) {
		t.Errorf("thinning should shrink p2's piggyback: %d -> %d",
			len(before.Elements), len(after.Elements))
	}
	// p1's volume keeps predicting img: recall preserved.
	m, ok := thinned.Piggyback("/a/p1.html", 1, Filter{})
	if !ok {
		t.Fatal("p1 lost its piggyback entirely")
	}
	found := false
	for _, e := range m.Elements {
		if e.URL == "/a/img.gif" {
			found = true
		}
	}
	if !found {
		t.Error("effective prediction p1->img lost")
	}
}

func TestThinDoesNotModifyInput(t *testing.T) {
	log := redundantTrace(8)
	v := buildVolumes(t, log, 0.2)
	nBefore := v.NumPairs()
	_ = v.Thin(log, 0.5)
	if v.NumPairs() != nBefore {
		t.Error("Thin mutated its receiver")
	}
}

func TestMeasureEffectivenessNewnessNotTrueness(t *testing.T) {
	// Effectiveness measures redundancy, not fulfilment: a sole
	// predictor keeps effectiveness 1 even when s never arrives (the
	// paper's thinning "does not have a significant impact on the
	// prediction rate" precisely because sole predictors survive).
	var l trace.Log
	for v := 0; v < 6; v++ {
		tt := int64(1000 * (v + 1))
		l = append(l, trace.Record{Time: tt, Client: "c", URL: "/a/r.html"})
		l = append(l, trace.Record{Time: tt + 5, Client: "c", URL: "/a/s.html"})
	}
	vols := buildVolumes(t, l, 0.2)

	// Replay a phase where s never follows r: each r-occurrence is far
	// from the previous (window expired), so every prediction is new.
	var replay trace.Log
	for v := 0; v < 6; v++ {
		tt := int64(1000 * (v + 1))
		replay = append(replay, trace.Record{Time: tt, Client: "c", URL: "/a/r.html"})
	}
	eff := vols.MeasureEffectiveness(replay)
	if em := eff["/a/r.html"]; em["/a/s.html"] < 0.99 {
		t.Errorf("sole predictor eff = %v, want ~1 (newness-based)", em["/a/s.html"])
	}
}

func TestMeasureEffectivenessRedundantWithinWindow(t *testing.T) {
	// r requested twice within T: the second prediction of s is
	// redundant, so effectiveness is 1/2.
	var l trace.Log
	for v := 0; v < 6; v++ {
		tt := int64(1000 * (v + 1))
		l = append(l, trace.Record{Time: tt, Client: "c", URL: "/a/r.html"})
		l = append(l, trace.Record{Time: tt + 5, Client: "c", URL: "/a/s.html"})
	}
	vols := buildVolumes(t, l, 0.2)

	var replay trace.Log
	for v := 0; v < 6; v++ {
		tt := int64(1000 * (v + 1))
		replay = append(replay, trace.Record{Time: tt, Client: "c", URL: "/a/r.html"})
		replay = append(replay, trace.Record{Time: tt + 10, Client: "c", URL: "/a/r.html"})
	}
	eff := vols.MeasureEffectiveness(replay)
	got := eff["/a/r.html"]["/a/s.html"]
	if got < 0.49 || got > 0.51 {
		t.Errorf("eff = %v, want 0.5 (half the predictions redundant)", got)
	}
}

func TestMeasureEffectivenessExpiryAllowsReCredit(t *testing.T) {
	// Visits are far apart (> T): each r-occurrence's prediction of s is
	// new again, and each comes true, so effectiveness is 1.
	var l trace.Log
	for v := 0; v < 10; v++ {
		tt := int64(10000 * (v + 1))
		l = append(l, trace.Record{Time: tt, Client: "c", URL: "/a/r.html"})
		l = append(l, trace.Record{Time: tt + 5, Client: "c", URL: "/a/s.html"})
	}
	vols := buildVolumes(t, l, 0.2)
	eff := vols.MeasureEffectiveness(l)
	if em := eff["/a/r.html"]; em["/a/s.html"] < 0.99 {
		t.Errorf("eff(r->s) = %v, want ~1", em["/a/s.html"])
	}
}

func TestThinZeroThresholdKeepsEverything(t *testing.T) {
	log := redundantTrace(8)
	v := buildVolumes(t, log, 0.2)
	thinned := v.Thin(log, 0)
	if thinned.NumPairs() != v.NumPairs() {
		t.Errorf("eff=0 thinning dropped pairs: %d -> %d", v.NumPairs(), thinned.NumPairs())
	}
}
