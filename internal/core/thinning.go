package core

import (
	"piggyback/internal/trace"
)

// Volume thinning (§3.3.1): "Quite often, a request for resource s is
// preceded by accesses to several other resources, each of which is
// credited with generating a prediction for s... With a small amount of
// additional processing, it is possible to measure how often an access to r
// generates a new prediction for s. If most of r's predictions are
// redundant (subject to an effectiveness threshold), then s is removed from
// r's volume, leaving only the effective predictions."
//
// We measure effectiveness by replaying the log with unfiltered
// piggybacking: an r-occurrence's prediction of s is *effective* when s was
// not already predicted for that source — i.e. it is new rather than
// redundant. Effective probability = effective count / c_r. Removing
// redundant pairs shrinks piggyback messages while the first predictor of s
// remains in place, which is why the paper finds thinning "does not have a
// significant impact on the prediction rate" (Fig 5(a)) while improving
// precision per byte (Fig 7).

// Thin replays the log against the volumes and returns a copy in which
// every implication carries its measured effective probability (EffP) and
// pairs with EffP < effThreshold are removed. The input volumes are not
// modified.
//
// The replay predicts with membership threshold v.Pt, matching how the
// volumes would be used at runtime.
func (v *ProbVolumes) Thin(log trace.Log, effThreshold float64) *ProbVolumes {
	eff := v.MeasureEffectiveness(log)
	nv := v.clone()
	for r, imps := range nv.imps {
		em := eff[r]
		kept := imps[:0]
		for i := range imps {
			imp := imps[i]
			imp.EffP = 0
			if em != nil {
				imp.EffP = em[imp.Elem.URL]
			}
			if imp.P >= nv.Pt && imp.EffP < effThreshold {
				continue // redundant prediction: drop from volume
			}
			kept = append(kept, imp)
		}
		if len(kept) == 0 {
			delete(nv.imps, r)
		} else {
			nv.imps[r] = kept
		}
	}
	return nv
}

// MeasureEffectiveness replays the log and returns, for each pair (r,s)
// with p(s|r) >= v.Pt, the effective probability: the fraction of
// r-occurrences whose piggybacked prediction of s was new — s was not
// already predicted for that source by an earlier piggyback still within
// its window.
func (v *ProbVolumes) MeasureEffectiveness(log trace.Log) map[string]map[string]float64 {
	// Per source: when each URL's live prediction window ends.
	predUntil := make(map[string]map[string]int64)
	effCount := make(map[string]map[string]int)
	rOccur := make(map[string]int)

	credit := func(r, s string) {
		m := effCount[r]
		if m == nil {
			m = make(map[string]int, 4)
			effCount[r] = m
		}
		m[s]++
	}

	for i := range log {
		rec := &log[i]
		src, url, now := rec.Client, rec.URL, rec.Time

		pu := predUntil[src]
		if pu == nil {
			pu = make(map[string]int64)
			predUntil[src] = pu
		}

		rOccur[url]++
		for _, imp := range v.imps[url] {
			if imp.P < v.Pt {
				break // sorted descending
			}
			s := imp.Elem.URL
			if until, live := pu[s]; !live || now > until {
				// New prediction: this r-occurrence did the work.
				credit(url, s)
			}
			if until := now + v.T; pu[s] < until {
				pu[s] = until
			}
		}
	}

	eff := make(map[string]map[string]float64, len(effCount))
	for r, m := range effCount {
		cr := rOccur[r]
		if cr == 0 {
			continue
		}
		em := make(map[string]float64, len(m))
		for s, c := range m {
			em[s] = float64(c) / float64(cr)
		}
		eff[r] = em
	}
	return eff
}
