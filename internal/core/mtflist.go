package core

// mtfList is an intrusive doubly-linked list with move-to-front semantics
// and a URL index, the data structure behind directory-based volumes
// (§3.2.1): "An approximate way to rank volume elements in order of
// popularity is using move-to-front semantics to place a requested resource
// at the head of its FIFO; this ensures that piggyback messages include the
// most recently accessed elements in the volume. The server can control the
// size of volumes by removing unpopular entries from the tail."
//
// All operations are O(1) except iteration.
type mtfList struct {
	head, tail *mtfNode
	index      map[string]*mtfNode
}

type mtfNode struct {
	prev, next *mtfNode

	elem        Element
	contentType string
	// accessCount is the number of requests observed for this resource,
	// used to apply the proxy's access filter (§3.2.2).
	accessCount int
	// lastAccess is the time of the most recent request, the popularity
	// metric for adding, removing, updating, and filtering (§3.2.1).
	lastAccess int64
	// seg caches the element's pre-serialized piggyback wire segment,
	// invalidated whenever the element's attributes change. Rendering
	// happens once per volume update instead of once per response.
	seg string
}

// segment returns the node's wire segment, rendering it on first use after
// an attribute change.
func (n *mtfNode) segment() string {
	if n.seg == "" {
		n.seg = elementSegment(n.elem)
	}
	return n.seg
}

// setElem refreshes the stored element, invalidating the cached segment
// only when the attributes actually changed (the common re-access of an
// unmodified resource keeps the rendered bytes).
func (n *mtfNode) setElem(e Element) {
	if n.elem != e {
		n.elem = e
		n.seg = ""
	}
}

func newMTFList() *mtfList {
	return &mtfList{index: make(map[string]*mtfNode)}
}

// Len returns the number of elements in the list.
func (l *mtfList) Len() int { return len(l.index) }

// Touch records an access to e at time now, inserting the element if absent
// and moving it to the front. The element's attributes (size, Last-Modified)
// are refreshed from e. It returns the node.
func (l *mtfList) Touch(e Element, contentType string, now int64) *mtfNode {
	n, ok := l.index[e.URL]
	if !ok {
		n = &mtfNode{elem: e, contentType: contentType}
		l.index[e.URL] = n
		l.pushFront(n)
	} else {
		n.setElem(e)
		n.contentType = contentType
		l.moveToFront(n)
	}
	n.accessCount++
	n.lastAccess = now
	return n
}

// Update refreshes the stored attributes of e without counting an access or
// reordering — used when the server modifies a resource (new Last-Modified)
// rather than serving it.
func (l *mtfList) Update(e Element) bool {
	n, ok := l.index[e.URL]
	if !ok {
		return false
	}
	n.setElem(e)
	return true
}

// Remove deletes the element with the given URL.
func (l *mtfList) Remove(url string) bool {
	n, ok := l.index[url]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.index, url)
	return true
}

// TrimTail removes elements from the tail until the list has at most max
// elements, returning how many were removed. max <= 0 means unlimited.
func (l *mtfList) TrimTail(max int) int {
	if max <= 0 {
		return 0
	}
	removed := 0
	for len(l.index) > max && l.tail != nil {
		t := l.tail
		l.unlink(t)
		delete(l.index, t.elem.URL)
		removed++
	}
	return removed
}

// Get returns the node for url, if present.
func (l *mtfList) Get(url string) (*mtfNode, bool) {
	n, ok := l.index[url]
	return n, ok
}

// Walk calls fn on each node front-to-back until fn returns false.
func (l *mtfList) Walk(fn func(*mtfNode) bool) {
	for n := l.head; n != nil; n = n.next {
		if !fn(n) {
			return
		}
	}
}

func (l *mtfList) pushFront(n *mtfNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *mtfList) moveToFront(n *mtfNode) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

func (l *mtfList) unlink(n *mtfNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
