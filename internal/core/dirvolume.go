package core

import (
	"sync"

	"piggyback/internal/trace"
)

// DirConfig configures directory-based volumes (§3.2).
type DirConfig struct {
	// Level is the directory-prefix depth defining volume membership:
	// 0 groups the whole site into one volume, 1 groups by first-level
	// directory, and so on.
	Level int
	// MaxVolumeElements trims each volume to this many elements by
	// "removing unpopular entries from the tail of the logical FIFO"
	// (§3.2.1). Zero means unlimited.
	MaxVolumeElements int
	// ServerMaxPiggy is the server-side cap on elements per piggyback
	// message, combined with the filter's maxpiggy. Zero means no
	// server-side cap.
	ServerMaxPiggy int
	// PartitionByType maintains separate FIFO lists per content class
	// within each volume ("one list for large images, and another list
	// for small text pages", §3.2.1), so type- and size-restricted
	// filters skip whole lists. Off, a single list is kept.
	PartitionByType bool
	// MTF enables move-to-front reordering on access. Off, elements
	// keep plain FIFO (insertion) order — the ablation baseline.
	MTF bool
}

// contentClass buckets a resource into one of the partition lists.
func contentClass(contentType string, size int64) string {
	const smallLimit = 8 << 10
	var kind string
	switch {
	case contentType == "text/html":
		kind = "html"
	case len(contentType) >= 6 && contentType[:6] == "image/":
		kind = "image"
	default:
		kind = "other"
	}
	if size > smallLimit {
		return kind + "/large"
	}
	return kind + "/small"
}

// DirVolumes is the directory-based volume engine (§3.2): resources with a
// common level-k directory prefix form a volume, maintained as move-to-
// front FIFO lists partitioned by content class, with per-element access
// counts to apply the proxy's access filter.
//
// DirVolumes is safe for concurrent use.
type DirVolumes struct {
	cfg DirConfig

	mu     sync.Mutex
	vols   map[string]*dirVolume
	nextID VolumeID
}

type dirVolume struct {
	id     VolumeID
	prefix string
	lists  map[string]*mtfList
	order  []string // deterministic iteration order over lists
}

// NewDirVolumes returns a directory-based volume engine with the given
// configuration. The zero DirConfig gives site-wide (level-0) volumes with
// move-to-front disabled; most callers want Level >= 1 and MTF true.
func NewDirVolumes(cfg DirConfig) *DirVolumes {
	return &DirVolumes{cfg: cfg, vols: make(map[string]*dirVolume)}
}

// Level returns the configured prefix depth.
func (d *DirVolumes) Level() int { return d.cfg.Level }

// Observe records a request, creating the resource's volume on first sight
// and updating popularity order and access counts.
func (d *DirVolumes) Observe(a Access) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.volume(trace.DirPrefix(a.Element.URL, d.cfg.Level))
	l := v.list(d.contentClassOf(a.Element))
	if d.cfg.MTF {
		l.Touch(a.Element, trace.ContentType(a.Element.URL), a.Time)
	} else {
		// FIFO ablation: count the access but keep insertion order.
		if n, ok := l.Get(a.Element.URL); ok {
			n.setElem(a.Element)
			n.accessCount++
			n.lastAccess = a.Time
		} else {
			l.Touch(a.Element, trace.ContentType(a.Element.URL), a.Time)
		}
	}
	if d.cfg.MaxVolumeElements > 0 {
		// Trim across the volume's lists proportionally: each list is
		// individually capped so the volume total stays bounded.
		per := d.cfg.MaxVolumeElements
		if len(v.order) > 1 {
			per = (d.cfg.MaxVolumeElements + len(v.order) - 1) / len(v.order)
		}
		for _, key := range v.order {
			v.lists[key].TrimTail(per)
		}
	}
}

// Update refreshes a resource's attributes (e.g. a new Last-Modified after
// a modification at the server) without recording an access.
func (d *DirVolumes) Update(e Element) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.vols[trace.DirPrefix(e.URL, d.cfg.Level)]
	if !ok {
		return false
	}
	for _, key := range v.order {
		if v.lists[key].Update(e) {
			return true
		}
	}
	return false
}

// Remove deletes a resource from its volume (e.g. the file was removed).
func (d *DirVolumes) Remove(url string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.vols[trace.DirPrefix(url, d.cfg.Level)]
	if !ok {
		return false
	}
	for _, key := range v.order {
		if v.lists[key].Remove(url) {
			return true
		}
	}
	return false
}

// Piggyback builds the piggyback message for a request for url under
// filter f (§2.1, §3.2): the most recently accessed elements of the
// requested resource's volume, excluding the requested resource itself and
// anything the filter rejects. It returns ok=false when piggybacking is
// disabled, the volume is unknown, the volume appears in the filter's RPV
// list, or no elements survive filtering.
func (d *DirVolumes) Piggyback(url string, now int64, f Filter) (Message, bool) {
	if f.Disabled {
		return Message{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.vols[trace.DirPrefix(url, d.cfg.Level)]
	if !ok {
		return Message{}, false
	}
	if f.HasRPV(v.id) {
		return Message{}, false
	}
	cap := f.Cap(d.cfg.ServerMaxPiggy)
	elems, segs := v.collect(url, f, cap)
	if len(elems) == 0 {
		return Message{}, false
	}
	return Message{Volume: v.id, Elements: elems, enc: segs}, true
}

// VolumeOf returns the volume id currently assigned to url's prefix.
func (d *DirVolumes) VolumeOf(url string) (VolumeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.vols[trace.DirPrefix(url, d.cfg.Level)]
	if !ok {
		return 0, false
	}
	return v.id, true
}

// NumVolumes returns the number of volumes created so far.
func (d *DirVolumes) NumVolumes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.vols)
}

// NumElements returns the total elements across all volumes.
func (d *DirVolumes) NumElements() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, v := range d.vols {
		for _, key := range v.order {
			n += v.lists[key].Len()
		}
	}
	return n
}

func (d *DirVolumes) contentClassOf(e Element) string {
	if !d.cfg.PartitionByType {
		return "all"
	}
	return contentClass(trace.ContentType(e.URL), e.Size)
}

// volume returns the volume for prefix, creating it with the next id.
// Caller holds d.mu.
func (d *DirVolumes) volume(prefix string) *dirVolume {
	v, ok := d.vols[prefix]
	if !ok {
		id := d.nextID
		d.nextID++
		if d.nextID > MaxVolumeID {
			d.nextID = 0 // wrap: ids are transient hints, not keys
		}
		v = &dirVolume{id: id, prefix: prefix, lists: make(map[string]*mtfList)}
		d.vols[prefix] = v
	}
	return v
}

func (v *dirVolume) list(class string) *mtfList {
	l, ok := v.lists[class]
	if !ok {
		l = newMTFList()
		v.lists[class] = l
		v.order = append(v.order, class)
	}
	return l
}

// collect merges the volume's lists most-recently-accessed-first and
// returns up to max elements passing the filter, alongside each element's
// cached wire segment so the response path never re-serializes.
func (v *dirVolume) collect(requested string, f Filter, max int) ([]Element, []string) {
	if max <= 0 {
		max = 1 << 30
	}
	// k-way merge by lastAccess (k = number of content classes, small).
	cursors := make([]*mtfNode, 0, len(v.order))
	for _, key := range v.order {
		if n := v.lists[key].head; n != nil {
			cursors = append(cursors, n)
		}
	}
	var out []Element
	var segs []string
	for len(out) < max {
		best := -1
		for i, c := range cursors {
			if c == nil {
				continue
			}
			if best < 0 || c.lastAccess > cursors[best].lastAccess {
				best = i
			}
		}
		if best < 0 {
			break
		}
		n := cursors[best]
		cursors[best] = n.next
		if n.elem.URL == requested {
			continue
		}
		if f.MinAccess > 0 && n.accessCount < f.MinAccess {
			continue
		}
		if !f.Admits(n.elem, n.contentType) {
			continue
		}
		out = append(out, n.elem)
		segs = append(segs, n.segment())
	}
	return out, segs
}
