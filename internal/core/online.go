package core

import (
	"sync"

	"piggyback/internal/trace"
)

// OnlineProbVolumes implements the §3.3.1 online alternative: "The server
// can estimate the probabilities p(s|r) from the stream of requests in a
// periodic fashion, such as once a day or once a week, or in an online
// fashion if access patterns and resource characteristics change
// frequently."
//
// It keeps a ProbBuilder fed with live traffic and periodically rebuilds
// the query snapshot, so volume membership tracks shifting access
// patterns. Piggyback always serves from the latest built snapshot;
// Observe feeds the builder and triggers rebuilds every RebuildEvery
// observations (sampled counter creation bounds the builder's memory).
// It is safe for concurrent use.
type OnlineProbVolumes struct {
	// RebuildEvery rebuilds the snapshot after this many observations;
	// zero means 10000.
	RebuildEvery int
	// MinKeep discards pairs below this probability at build time.
	MinKeep float64
	// ServerMaxPiggy caps elements per message.
	ServerMaxPiggy int

	mu       sync.RWMutex
	builder  *ProbBuilder
	snapshot *ProbVolumes
	sinceB   int
	rebuilds int
}

// NewOnlineProbVolumes returns an online engine with the given builder
// configuration. Sampling is enabled by default to bound counter memory on
// an endless stream.
func NewOnlineProbVolumes(cfg ProbConfig, rebuildEvery int) *OnlineProbVolumes {
	if !cfg.Sampling {
		cfg.Sampling = true
		cfg.UnbiasedInit = true
		if cfg.SampleK == 0 {
			cfg.SampleK = 4
		}
	}
	return &OnlineProbVolumes{
		RebuildEvery: rebuildEvery,
		builder:      NewProbBuilder(cfg),
	}
}

func (o *OnlineProbVolumes) rebuildEvery() int {
	if o.RebuildEvery <= 0 {
		return 10000
	}
	return o.RebuildEvery
}

// Observe implements Provider: feed the builder; rebuild when due.
func (o *OnlineProbVolumes) Observe(a Access) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.builder.Observe(trace.Record{
		Time:         a.Time,
		Client:       a.Source,
		URL:          a.Element.URL,
		Size:         a.Element.Size,
		LastModified: a.Element.LastModified,
	})
	o.sinceB++
	if o.sinceB >= o.rebuildEvery() || o.snapshot == nil {
		o.rebuildLocked()
	}
}

// rebuildLocked regenerates the query snapshot. Caller holds o.mu.
func (o *OnlineProbVolumes) rebuildLocked() {
	snap := o.builder.Build(o.MinKeep)
	snap.ServerMaxPiggy = o.ServerMaxPiggy
	o.snapshot = snap
	o.sinceB = 0
	o.rebuilds++
}

// Rebuild forces an immediate snapshot rebuild (e.g. from a timer rather
// than an observation count).
func (o *OnlineProbVolumes) Rebuild() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rebuildLocked()
}

// Rebuilds returns how many snapshots have been built.
func (o *OnlineProbVolumes) Rebuilds() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.rebuilds
}

// Piggyback implements Provider against the latest snapshot.
func (o *OnlineProbVolumes) Piggyback(url string, now int64, f Filter) (Message, bool) {
	o.mu.RLock()
	snap := o.snapshot
	o.mu.RUnlock()
	if snap == nil {
		return Message{}, false
	}
	return snap.Piggyback(url, now, f)
}

// Snapshot returns the current query snapshot (nil before any build).
func (o *OnlineProbVolumes) Snapshot() *ProbVolumes {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.snapshot
}

// Counters reports the live pair-counter count — the memory the sampling
// policy is bounding.
func (o *OnlineProbVolumes) Counters() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.builder.NumCounters()
}
