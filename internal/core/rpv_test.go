package core

import (
	"sync"
	"testing"
)

func TestRPVNoteAndSnapshot(t *testing.T) {
	l := NewRPVList(60, 4)
	l.Note(1, 100)
	l.Note(2, 110)
	l.Note(3, 120)
	got := l.Snapshot(125)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Snapshot = %v", got)
	}
	if !l.Contains(2, 125) || l.Contains(9, 125) {
		t.Error("Contains wrong")
	}
}

func TestRPVTimeout(t *testing.T) {
	l := NewRPVList(60, 10)
	l.Note(1, 100)
	l.Note(2, 130)
	if got := l.Snapshot(159); len(got) != 2 {
		t.Fatalf("before timeout: %v", got)
	}
	// Entry 1 expires at 160 (timeout inclusive at >= 60s).
	if got := l.Snapshot(160); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after timeout: %v", got)
	}
	if got := l.Snapshot(300); got != nil {
		t.Fatalf("all expired: %v", got)
	}
}

func TestRPVMaxLenEvictsOldest(t *testing.T) {
	l := NewRPVList(0, 3) // no timeout
	for id := VolumeID(1); id <= 5; id++ {
		l.Note(id, int64(id))
	}
	got := l.Snapshot(10)
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("Snapshot = %v, want [3 4 5]", got)
	}
}

func TestRPVRefreshMovesToBack(t *testing.T) {
	l := NewRPVList(0, 3)
	l.Note(1, 1)
	l.Note(2, 2)
	l.Note(3, 3)
	l.Note(1, 4) // refresh
	l.Note(4, 5) // evicts oldest, which is now 2
	got := l.Snapshot(6)
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 4 {
		t.Fatalf("Snapshot = %v, want [3 1 4]", got)
	}
}

func TestRPVTimeoutMustNotExceedFreshness(t *testing.T) {
	// The timeout bounds how long refreshes are suppressed: a volume
	// noted at t is absent from snapshots at t+Timeout, so the server
	// can piggyback again within any freshness interval >= Timeout.
	const delta = 300 // freshness interval
	l := NewRPVList(delta, 8)
	l.Note(7, 1000)
	if l.Contains(7, 1000+delta) {
		t.Error("entry must expire by the freshness interval")
	}
}

func TestRPVTableConcurrent(t *testing.T) {
	tbl := NewRPVTable(60, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			server := "s" + string(rune('a'+i%3))
			for j := 0; j < 200; j++ {
				tbl.Note(server, VolumeID(j%10), int64(j))
				tbl.Snapshot(server, int64(j))
			}
		}(i)
	}
	wg.Wait()
	if tbl.Servers() > 3 {
		t.Errorf("Servers = %d, want <= 3", tbl.Servers())
	}
}

func TestRPVTableDropsEmptyLists(t *testing.T) {
	tbl := NewRPVTable(10, 8)
	tbl.Note("s1", 1, 100)
	if got := tbl.Snapshot("s1", 105); len(got) != 1 {
		t.Fatalf("Snapshot = %v", got)
	}
	if got := tbl.Snapshot("s1", 500); got != nil {
		t.Fatalf("expired Snapshot = %v", got)
	}
	if tbl.Servers() != 0 {
		t.Errorf("empty list should be dropped, Servers = %d", tbl.Servers())
	}
}

func TestFrequencyControlMinInterval(t *testing.T) {
	c := NewFrequencyControl(60, 0, 1)
	if !c.Enabled("s", 100) {
		t.Fatal("first request should be enabled")
	}
	c.Received("s", 100)
	if c.Enabled("s", 130) {
		t.Error("within min interval should be disabled")
	}
	if !c.Enabled("s", 160) {
		t.Error("after min interval should be enabled")
	}
	if !c.Enabled("other", 130) {
		t.Error("other servers unaffected")
	}
}

func TestFrequencyControlRandomized(t *testing.T) {
	c := NewFrequencyControl(0, 0.5, 42)
	on := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if c.Enabled("s", int64(i)) {
			on++
		}
	}
	frac := float64(on) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("enable fraction = %v, want ~0.5", frac)
	}
}

func TestFrequencyControlAlwaysOn(t *testing.T) {
	c := NewFrequencyControl(0, 0, 1)
	for i := 0; i < 10; i++ {
		if !c.Enabled("s", int64(i)) {
			t.Fatal("zero config should always enable")
		}
	}
}

func TestRPVLenAndDefaults(t *testing.T) {
	l := NewRPVList(0, 0) // default max length
	for id := VolumeID(0); id < 40; id++ {
		l.Note(id, int64(id))
	}
	if got := l.Len(100); got != 32 {
		t.Errorf("default MaxLen: Len = %d, want 32", got)
	}
}
