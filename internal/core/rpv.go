package core

import (
	"math/rand"
	"sync"
)

// RPVList tracks recently piggybacked volumes for one server (§2.2): "the
// proxy stores a list of recently piggybacked volumes (RPVs) for each
// server... Each list element includes the volume identifier and the time
// the last piggyback message for that volume was received. The proxy can
// limit the RPV list based on a timeout or a maximum size basis."
//
// Entries expire after Timeout seconds and the list holds at most MaxLen
// entries (oldest evicted first, FIFO). An RPVList is not safe for
// concurrent use; RPVTable provides the synchronized per-server map.
type RPVList struct {
	// Timeout is the entry lifetime in seconds. It must not exceed the
	// cache's freshness interval Δ, "since this would preclude the
	// server from sending refresh information for resources in this
	// volume"; smaller values trade piggyback traffic for freshness.
	Timeout int64
	// MaxLen caps the number of entries; zero means 32.
	MaxLen int

	entries []rpvEntry // FIFO: oldest first
}

type rpvEntry struct {
	id   VolumeID
	seen int64
}

// NewRPVList returns an RPV list with the given timeout (seconds) and
// maximum length.
func NewRPVList(timeout int64, maxLen int) *RPVList {
	return &RPVList{Timeout: timeout, MaxLen: maxLen}
}

func (l *RPVList) maxLen() int {
	if l.MaxLen <= 0 {
		return 32
	}
	return l.MaxLen
}

// Note records that a piggyback for volume id arrived at time now. An
// existing entry for the same volume is refreshed (and moved to the back of
// the FIFO).
func (l *RPVList) Note(id VolumeID, now int64) {
	l.expire(now)
	for i := range l.entries {
		if l.entries[i].id == id {
			copy(l.entries[i:], l.entries[i+1:])
			l.entries[len(l.entries)-1] = rpvEntry{id: id, seen: now}
			return
		}
	}
	if len(l.entries) >= l.maxLen() {
		copy(l.entries, l.entries[1:])
		l.entries = l.entries[:len(l.entries)-1]
	}
	l.entries = append(l.entries, rpvEntry{id: id, seen: now})
}

// Snapshot returns the live volume ids at time now, in FIFO order. The
// result is what the proxy places in the request filter's rpv attribute.
func (l *RPVList) Snapshot(now int64) []VolumeID {
	l.expire(now)
	if len(l.entries) == 0 {
		return nil
	}
	ids := make([]VolumeID, len(l.entries))
	for i, e := range l.entries {
		ids[i] = e.id
	}
	return ids
}

// Contains reports whether volume id is live at time now.
func (l *RPVList) Contains(id VolumeID, now int64) bool {
	l.expire(now)
	for _, e := range l.entries {
		if e.id == id {
			return true
		}
	}
	return false
}

// Len returns the number of live entries at time now.
func (l *RPVList) Len(now int64) int {
	l.expire(now)
	return len(l.entries)
}

func (l *RPVList) expire(now int64) {
	if l.Timeout <= 0 {
		return
	}
	cut := 0
	for cut < len(l.entries) && now-l.entries[cut].seen >= l.Timeout {
		cut++
	}
	if cut > 0 {
		l.entries = append(l.entries[:0], l.entries[cut:]...)
	}
}

// RPVTable maintains RPV lists for the servers a proxy talks to, "as FIFO
// lists in a hash table keyed on the server IP address" (§2.2). It is safe
// for concurrent use.
type RPVTable struct {
	timeout int64
	maxLen  int

	mu    sync.Mutex
	lists map[string]*RPVList
}

// NewRPVTable returns a table whose per-server lists use the given timeout
// (seconds) and maximum length.
func NewRPVTable(timeout int64, maxLen int) *RPVTable {
	return &RPVTable{timeout: timeout, maxLen: maxLen, lists: make(map[string]*RPVList)}
}

// Note records a piggyback for volume id from the given server.
func (t *RPVTable) Note(server string, id VolumeID, now int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.lists[server]
	if !ok {
		l = NewRPVList(t.timeout, t.maxLen)
		t.lists[server] = l
	}
	l.Note(id, now)
}

// Snapshot returns the live RPV ids for the server at time now.
func (t *RPVTable) Snapshot(server string, now int64) []VolumeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.lists[server]
	if !ok {
		return nil
	}
	ids := l.Snapshot(now)
	if len(l.entries) == 0 {
		// Drop empty lists so the table holds only transient
		// per-server state for recently visited servers.
		delete(t.lists, server)
	}
	return ids
}

// Servers returns the number of servers with live lists.
func (t *RPVTable) Servers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lists)
}

// FrequencyControl implements the stateless piggyback pacing of §2.2 for
// servers with many volumes, where RPV lists are impractical: "the proxy
// can randomly set an enable/disable bit, or employ simple frequency
// control techniques, such as disabling piggybacks from servers which have
// sent piggybacks within the last minute. The frequency control techniques
// can be randomized."
//
// A FrequencyControl is not safe for concurrent use.
type FrequencyControl struct {
	// MinInterval disables piggybacks from a server for this many
	// seconds after one arrives; zero disables interval control.
	MinInterval int64
	// EnableProb, when in (0,1), randomly enables piggybacking with this
	// probability per request; 0 or 1 means always enabled (subject to
	// MinInterval).
	EnableProb float64

	rng  *rand.Rand
	last map[string]int64 // server -> time of last piggyback received
}

// NewFrequencyControl returns a frequency controller. Seed fixes the random
// enable/disable stream for reproducibility.
func NewFrequencyControl(minInterval int64, enableProb float64, seed int64) *FrequencyControl {
	return &FrequencyControl{
		MinInterval: minInterval,
		EnableProb:  enableProb,
		rng:         rand.New(rand.NewSource(seed)),
		last:        make(map[string]int64),
	}
}

// Enabled reports whether the proxy should enable piggybacking on a request
// to server at time now.
func (c *FrequencyControl) Enabled(server string, now int64) bool {
	if c.MinInterval > 0 {
		if t, ok := c.last[server]; ok && now-t < c.MinInterval {
			return false
		}
	}
	if c.EnableProb > 0 && c.EnableProb < 1 {
		return c.rng.Float64() < c.EnableProb
	}
	return true
}

// Received records that a piggyback arrived from server at time now.
func (c *FrequencyControl) Received(server string, now int64) {
	if c.MinInterval > 0 {
		c.last[server] = now
	}
}
