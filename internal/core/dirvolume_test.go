package core

import (
	"strconv"
	"sync"
	"testing"
)

func obs(d *DirVolumes, src, url string, size int64, at int64) {
	d.Observe(Access{Source: src, Time: at, Element: Element{URL: url, Size: size, LastModified: at - 1000}})
}

func TestDirVolumesGrouping(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	obs(d, "p1", "/a/b.html", 100, 1)
	obs(d, "p1", "/a/d/e.html", 100, 2)
	obs(d, "p1", "/f/g.html", 100, 3)

	ida, ok := d.VolumeOf("/a/b.html")
	if !ok {
		t.Fatal("volume missing")
	}
	idae, _ := d.VolumeOf("/a/d/e.html")
	idf, _ := d.VolumeOf("/f/g.html")
	// §3.2.1: one-level volumes put /a/b.html and /a/d/e.html together,
	// but /f/g.html in a different volume.
	if ida != idae {
		t.Errorf("/a/b.html and /a/d/e.html should share a volume: %d vs %d", ida, idae)
	}
	if ida == idf {
		t.Errorf("/f/g.html should be a different volume")
	}
	if d.NumVolumes() != 2 {
		t.Errorf("NumVolumes = %d, want 2", d.NumVolumes())
	}
}

func TestDirVolumesZeroLevelIsSiteWide(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 0, MTF: true})
	obs(d, "p1", "/a/b.html", 100, 1)
	obs(d, "p1", "/f/g.html", 100, 2)
	if d.NumVolumes() != 1 {
		t.Fatalf("NumVolumes = %d, want 1 (site-wide)", d.NumVolumes())
	}
	m, ok := d.Piggyback("/a/b.html", 3, Filter{})
	if !ok || len(m.Elements) != 1 || m.Elements[0].URL != "/f/g.html" {
		t.Fatalf("Piggyback = %+v, %v", m, ok)
	}
}

func TestDirVolumesPiggybackExcludesRequested(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	obs(d, "p1", "/a/x.html", 10, 1)
	obs(d, "p1", "/a/y.html", 10, 2)
	m, ok := d.Piggyback("/a/x.html", 3, Filter{})
	if !ok {
		t.Fatal("expected piggyback")
	}
	for _, e := range m.Elements {
		if e.URL == "/a/x.html" {
			t.Error("piggyback must not include the requested resource")
		}
	}
}

func TestDirVolumesMostRecentFirst(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	obs(d, "p1", "/a/1.html", 10, 1)
	obs(d, "p1", "/a/2.html", 10, 2)
	obs(d, "p1", "/a/3.html", 10, 3)
	obs(d, "p1", "/a/1.html", 10, 4) // /a/1 back to front
	m, ok := d.Piggyback("/a/9.html", 5, Filter{MaxPiggy: 2})
	if !ok || len(m.Elements) != 2 {
		t.Fatalf("Piggyback = %+v, %v", m, ok)
	}
	if m.Elements[0].URL != "/a/1.html" || m.Elements[1].URL != "/a/3.html" {
		t.Errorf("elements not in recency order: %+v", m.Elements)
	}
}

func TestDirVolumesRPVSuppression(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	obs(d, "p1", "/a/x.html", 10, 1)
	obs(d, "p1", "/a/y.html", 10, 2)
	id, _ := d.VolumeOf("/a/x.html")
	if _, ok := d.Piggyback("/a/x.html", 3, Filter{RPV: []VolumeID{id}}); ok {
		t.Error("piggyback should be suppressed for RPV-listed volume")
	}
	if _, ok := d.Piggyback("/a/x.html", 3, Filter{RPV: []VolumeID{id + 1}}); !ok {
		t.Error("unrelated RPV id must not suppress")
	}
}

func TestDirVolumesDisabledFilter(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	obs(d, "p1", "/a/x.html", 10, 1)
	obs(d, "p1", "/a/y.html", 10, 2)
	if _, ok := d.Piggyback("/a/x.html", 3, Filter{Disabled: true}); ok {
		t.Error("disabled filter must suppress piggyback")
	}
}

func TestDirVolumesAccessFilter(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	for i := 0; i < 5; i++ {
		obs(d, "p1", "/a/hot.html", 10, int64(i))
	}
	obs(d, "p1", "/a/cold.html", 10, 100)
	m, ok := d.Piggyback("/a/q.html", 101, Filter{MinAccess: 3})
	if !ok || len(m.Elements) != 1 || m.Elements[0].URL != "/a/hot.html" {
		t.Fatalf("access filter failed: %+v, %v", m, ok)
	}
	// Filter of 10 excludes everything: no piggyback at all.
	if _, ok := d.Piggyback("/a/q.html", 101, Filter{MinAccess: 10}); ok {
		t.Error("all-excluded filter should suppress the piggyback")
	}
}

func TestDirVolumesSizeAndTypeFilter(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, PartitionByType: true, MTF: true})
	obs(d, "p1", "/a/big.html", 100000, 1)
	obs(d, "p1", "/a/img.gif", 500, 2)
	obs(d, "p1", "/a/small.html", 400, 3)

	m, ok := d.Piggyback("/a/q.html", 4, Filter{MaxSize: 1000, NoTypes: []string{"image"}})
	if !ok || len(m.Elements) != 1 || m.Elements[0].URL != "/a/small.html" {
		t.Fatalf("size/type filter failed: %+v, %v", m, ok)
	}
}

func TestDirVolumesMaxPiggyCaps(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 0, ServerMaxPiggy: 5, MTF: true})
	for i := 0; i < 20; i++ {
		obs(d, "p1", "/a/r"+strconv.Itoa(i)+".html", 10, int64(i))
	}
	m, _ := d.Piggyback("/a/q.html", 30, Filter{})
	if len(m.Elements) != 5 {
		t.Errorf("server cap: got %d elements, want 5", len(m.Elements))
	}
	m, _ = d.Piggyback("/a/q.html", 30, Filter{MaxPiggy: 2})
	if len(m.Elements) != 2 {
		t.Errorf("filter cap: got %d elements, want 2", len(m.Elements))
	}
}

func TestDirVolumesTrim(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 0, MaxVolumeElements: 8, MTF: true})
	for i := 0; i < 100; i++ {
		obs(d, "p1", "/a/r"+strconv.Itoa(i)+".html", 10, int64(i))
	}
	if n := d.NumElements(); n > 8 {
		t.Errorf("NumElements = %d, want <= 8", n)
	}
}

func TestDirVolumesUpdateAndRemove(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	obs(d, "p1", "/a/x.html", 10, 1)
	obs(d, "p1", "/a/y.html", 10, 2)
	if !d.Update(Element{URL: "/a/x.html", Size: 999, LastModified: 555}) {
		t.Fatal("Update failed")
	}
	m, _ := d.Piggyback("/a/y.html", 3, Filter{})
	if len(m.Elements) != 1 || m.Elements[0].Size != 999 || m.Elements[0].LastModified != 555 {
		t.Fatalf("updated attributes not reflected: %+v", m.Elements)
	}
	if !d.Remove("/a/x.html") || d.Remove("/a/x.html") {
		t.Error("Remove semantics wrong")
	}
	if _, ok := d.Piggyback("/a/y.html", 4, Filter{}); ok {
		t.Error("empty volume should not piggyback")
	}
	if d.Update(Element{URL: "/zz/q.html"}) || d.Remove("/zz/q.html") {
		t.Error("unknown prefix should return false")
	}
}

func TestDirVolumesUnknownURL(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	if _, ok := d.Piggyback("/nowhere/x.html", 1, Filter{}); ok {
		t.Error("unknown volume should not piggyback")
	}
	if _, ok := d.VolumeOf("/nowhere/x.html"); ok {
		t.Error("VolumeOf should report missing")
	}
}

func TestDirVolumesFIFOAblation(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 0, MTF: false})
	obs(d, "p1", "/a/1.html", 10, 1)
	obs(d, "p1", "/a/2.html", 10, 2)
	obs(d, "p1", "/a/1.html", 10, 3) // re-access must NOT reorder
	m, _ := d.Piggyback("/a/q.html", 4, Filter{})
	if len(m.Elements) != 2 || m.Elements[0].URL != "/a/2.html" {
		t.Errorf("FIFO order violated: %+v", m.Elements)
	}
	// But access counts still accumulate.
	m, ok := d.Piggyback("/a/q.html", 4, Filter{MinAccess: 2})
	if !ok || len(m.Elements) != 1 || m.Elements[0].URL != "/a/1.html" {
		t.Errorf("FIFO access counting broken: %+v, %v", m, ok)
	}
}

func TestDirVolumesConcurrent(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MaxVolumeElements: 50, MTF: true, PartitionByType: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				url := "/d" + strconv.Itoa(i%5) + "/r" + strconv.Itoa(i%40) + ".html"
				obs(d, "p"+strconv.Itoa(g), url, int64(i), int64(i))
				d.Piggyback(url, int64(i), Filter{MaxPiggy: 10})
			}
		}(g)
	}
	wg.Wait()
	if d.NumVolumes() != 5 {
		t.Errorf("NumVolumes = %d, want 5", d.NumVolumes())
	}
}

func TestDirVolumesLevelAccessor(t *testing.T) {
	if lvl := NewDirVolumes(DirConfig{Level: 3}).Level(); lvl != 3 {
		t.Errorf("Level = %d", lvl)
	}
}
