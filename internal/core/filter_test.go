package core

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestFilterHeaderRoundTrip(t *testing.T) {
	f := Filter{
		MaxPiggy:      10,
		RPV:           []VolumeID{3, 4},
		MinAccess:     50,
		MaxSize:       65536,
		ProbThreshold: 0.25,
		NoTypes:       []string{"image"},
	}
	got, err := ParseFilter(f.Header())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestFilterHeaderPaperExample(t *testing.T) {
	// §2.3: Piggy-filter: maxpiggy=10; rpv="3,4";
	f, err := ParseFilter(`maxpiggy=10; rpv="3,4";`)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxPiggy != 10 {
		t.Errorf("MaxPiggy = %d", f.MaxPiggy)
	}
	if len(f.RPV) != 2 || f.RPV[0] != 3 || f.RPV[1] != 4 {
		t.Errorf("RPV = %v", f.RPV)
	}
}

func TestFilterOnOff(t *testing.T) {
	for _, s := range []string{"", "on"} {
		f, err := ParseFilter(s)
		if err != nil || f.Disabled {
			t.Errorf("ParseFilter(%q) = %+v, %v", s, f, err)
		}
	}
	f, err := ParseFilter("off")
	if err != nil || !f.Disabled {
		t.Errorf("ParseFilter(off) = %+v, %v", f, err)
	}
	if (Filter{Disabled: true}).Header() != "off" {
		t.Error("disabled filter should render as off")
	}
	if (Filter{}).Header() != "on" {
		t.Error("zero filter should render as on")
	}
}

func TestFilterUnknownAttributeIgnored(t *testing.T) {
	f, err := ParseFilter("maxpiggy=5; future=xyz")
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxPiggy != 5 {
		t.Errorf("MaxPiggy = %d", f.MaxPiggy)
	}
}

func TestFilterParseErrors(t *testing.T) {
	bad := []string{
		"maxpiggy=-1",
		"maxpiggy=abc",
		"rpv=\"x\"",
		"rpv=\"99999\"",
		"minaccess=no",
		"maxsize=-5",
		"pt=1.5",
		"pt=-0.1",
		"pt=xx",
		"garbage",
	}
	for _, s := range bad {
		if _, err := ParseFilter(s); err == nil {
			t.Errorf("ParseFilter(%q) succeeded, want error", s)
		}
	}
}

func TestFilterRoundTripProperty(t *testing.T) {
	f := func(maxPiggy uint8, nRPV uint8, minAcc uint16, maxSize uint32, pt uint8) bool {
		in := Filter{
			MaxPiggy:      int(maxPiggy),
			MinAccess:     int(minAcc),
			MaxSize:       int64(maxSize),
			ProbThreshold: float64(pt%101) / 100,
		}
		for i := 0; i < int(nRPV%6); i++ {
			in.RPV = append(in.RPV, VolumeID(i*7+1))
		}
		out, err := ParseFilter(in.Header())
		if err != nil {
			return false
		}
		// Header sorts RPV ids; compare as sets.
		sort.Slice(in.RPV, func(i, j int) bool { return in.RPV[i] < in.RPV[j] })
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterAdmits(t *testing.T) {
	f := Filter{MaxSize: 1000, NoTypes: []string{"image"}}
	if f.Admits(Element{URL: "/a.gif", Size: 10}, "image/gif") {
		t.Error("image should be rejected by notypes")
	}
	if f.Admits(Element{URL: "/a.html", Size: 2000}, "text/html") {
		t.Error("oversize element should be rejected")
	}
	if !f.Admits(Element{URL: "/a.html", Size: 500}, "text/html") {
		t.Error("small html should pass")
	}
	if !(Filter{}).Admits(Element{Size: 1 << 40}, "anything") {
		t.Error("zero filter should admit everything")
	}
}

func TestFilterCap(t *testing.T) {
	cases := []struct {
		fMax, sMax, want int
	}{
		{0, 0, 0},
		{10, 0, 10},
		{0, 20, 20},
		{10, 20, 10},
		{30, 20, 20},
	}
	for _, c := range cases {
		f := Filter{MaxPiggy: c.fMax}
		if got := f.Cap(c.sMax); got != c.want {
			t.Errorf("Cap(f=%d, s=%d) = %d, want %d", c.fMax, c.sMax, got, c.want)
		}
	}
}

func TestFilterHasRPV(t *testing.T) {
	f := Filter{RPV: []VolumeID{1, 9, 200}}
	if !f.HasRPV(9) || f.HasRPV(2) {
		t.Error("HasRPV wrong")
	}
}
