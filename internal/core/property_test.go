package core

import (
	"math/rand"
	"strconv"
	"testing"

	"piggyback/internal/trace"
)

// Property tests over the Provider contract: every message a volume engine
// emits must respect the filter that requested it, regardless of the
// workload or filter drawn.

// randomLog builds a deterministic random session-ish log.
func randomLog(seed int64, n int) trace.Log {
	rng := rand.New(rand.NewSource(seed))
	var l trace.Log
	t := int64(1000)
	for i := 0; i < n; i++ {
		dir := "/d" + strconv.Itoa(rng.Intn(6))
		kind := ".html"
		if rng.Intn(3) == 0 {
			kind = ".gif"
		}
		l = append(l, trace.Record{
			Time:   t,
			Client: "c" + strconv.Itoa(rng.Intn(8)),
			URL:    dir + "/r" + strconv.Itoa(rng.Intn(30)) + kind,
			Size:   int64(rng.Intn(20000) + 1),
			Status: 200,
		})
		t += int64(rng.Intn(90))
	}
	return l
}

// randomFilter draws a filter with a mix of constraints.
func randomFilter(rng *rand.Rand) Filter {
	f := Filter{}
	if rng.Intn(4) == 0 {
		f.MaxPiggy = rng.Intn(8) + 1
	}
	if rng.Intn(4) == 0 {
		f.MinAccess = rng.Intn(10)
	}
	if rng.Intn(4) == 0 {
		f.MaxSize = int64(rng.Intn(15000) + 1)
	}
	if rng.Intn(5) == 0 {
		f.NoTypes = []string{"image"}
	}
	if rng.Intn(5) == 0 {
		f.ProbThreshold = rng.Float64()
	}
	for i := rng.Intn(3); i > 0; i-- {
		f.RPV = append(f.RPV, VolumeID(rng.Intn(40)))
	}
	return f
}

// checkMessage asserts the filter contract on one message.
func checkMessage(t *testing.T, m Message, f Filter, requested string, counts map[string]int) {
	t.Helper()
	if f.MaxPiggy > 0 && len(m.Elements) > f.MaxPiggy {
		t.Fatalf("maxpiggy violated: %d > %d", len(m.Elements), f.MaxPiggy)
	}
	if f.HasRPV(m.Volume) {
		t.Fatalf("RPV-listed volume %d piggybacked", m.Volume)
	}
	for _, e := range m.Elements {
		if e.URL == requested {
			t.Fatalf("requested resource %q in its own piggyback", requested)
		}
		if f.MaxSize > 0 && e.Size > f.MaxSize {
			t.Fatalf("maxsize violated: %d > %d (%s)", e.Size, f.MaxSize, e.URL)
		}
		if !f.AllowsType(trace.ContentType(e.URL)) {
			t.Fatalf("notypes violated: %s", e.URL)
		}
		if counts != nil && f.MinAccess > 0 && counts[e.URL] < f.MinAccess {
			t.Fatalf("minaccess violated: %s has %d < %d", e.URL, counts[e.URL], f.MinAccess)
		}
	}
}

func TestDirVolumesFilterContractProperty(t *testing.T) {
	log := randomLog(21, 3000)
	counts := log.AccessCounts()
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true, PartitionByType: true, MaxVolumeElements: 40})
	rng := rand.New(rand.NewSource(22))
	for i := range log {
		rec := &log[i]
		d.Observe(Access{Source: rec.Client, Time: rec.Time,
			Element: Element{URL: rec.URL, Size: rec.Size, LastModified: rec.Time - 100}})
		f := randomFilter(rng)
		if m, ok := d.Piggyback(rec.URL, rec.Time, f); ok {
			if m.Empty() {
				t.Fatal("ok with empty message")
			}
			// Access counts at this point are <= final counts, so
			// only the structural parts are checked against counts
			// loosely (MinAccess uses live counts; skip that check
			// here by passing nil).
			checkMessage(t, m, f, rec.URL, nil)
		}
	}
	_ = counts
}

func TestProbVolumesFilterContractProperty(t *testing.T) {
	log := randomLog(31, 3000)
	b := NewProbBuilder(ProbConfig{T: 300, Pt: 0.05})
	b.ObserveLog(log)
	v := b.Build(0)
	counts := log.AccessCounts()
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 2000; i++ {
		rec := &log[rng.Intn(len(log))]
		f := randomFilter(rng)
		if m, ok := v.Piggyback(rec.URL, rec.Time, f); ok {
			if m.Empty() {
				t.Fatal("ok with empty message")
			}
			checkMessage(t, m, f, rec.URL, counts)
			// Probability threshold: every element's implication
			// must meet max(Pt, f.ProbThreshold).
			pt := v.Pt
			if f.ProbThreshold > pt {
				pt = f.ProbThreshold
			}
			for _, e := range m.Elements {
				found := false
				for _, imp := range v.Implications(rec.URL) {
					if imp.Elem.URL == e.URL && imp.P >= pt {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("element %s below threshold %v", e.URL, pt)
				}
			}
		}
	}
}

func TestPopularProviderFilterContractProperty(t *testing.T) {
	log := randomLog(41, 2000)
	inner := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	p := NewPopularProvider(inner, 8)
	rng := rand.New(rand.NewSource(42))
	for i := range log {
		rec := &log[i]
		p.Observe(Access{Source: rec.Client, Time: rec.Time,
			Element: Element{URL: rec.URL, Size: rec.Size}})
		f := randomFilter(rng)
		if m, ok := p.Piggyback("/unknown/u"+strconv.Itoa(i%7)+".html", rec.Time, f); ok {
			checkMessage(t, m, f, "/unknown", nil)
		}
	}
}

func TestMessageEncodeParseProperty(t *testing.T) {
	// Any message a provider can emit survives the wire encoding.
	log := randomLog(51, 2000)
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	for i := range log {
		rec := &log[i]
		d.Observe(Access{Source: rec.Client, Time: rec.Time,
			Element: Element{URL: rec.URL, Size: rec.Size, LastModified: rec.Time}})
		if m, ok := d.Piggyback(rec.URL, rec.Time, Filter{}); ok {
			got, err := ParseMessage(m.Encode())
			if err != nil {
				t.Fatalf("encode/parse failed: %v (%q)", err, m.Encode())
			}
			if got.Volume != m.Volume || len(got.Elements) != len(m.Elements) {
				t.Fatalf("roundtrip mismatch")
			}
		}
	}
}
