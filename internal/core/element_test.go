package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMessageEncodeParseRoundTrip(t *testing.T) {
	m := Message{
		Volume: 17,
		Elements: []Element{
			{URL: "/a/b.html", Size: 4096, LastModified: 866268400},
			{URL: "/a/c.gif", Size: 512, LastModified: 866268401},
		},
	}
	got, err := ParseMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Volume != m.Volume || len(got.Elements) != len(m.Elements) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Elements {
		if got.Elements[i] != m.Elements[i] {
			t.Errorf("element %d: %+v != %+v", i, got.Elements[i], m.Elements[i])
		}
	}
}

func TestMessageEncodeEmptyElements(t *testing.T) {
	m := Message{Volume: 5}
	got, err := ParseMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Volume != 5 || len(got.Elements) != 0 {
		t.Fatalf("got %+v", got)
	}
	if !m.Empty() {
		t.Error("Empty() should be true")
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(vol uint16, n uint8, sz, lm uint32) bool {
		m := Message{Volume: VolumeID(vol) % (MaxVolumeID + 1)}
		for i := 0; i < int(n%8); i++ {
			m.Elements = append(m.Elements, Element{
				URL:          "/d/r" + string(rune('a'+i)) + ".html",
				Size:         int64(sz) + int64(i),
				LastModified: int64(lm) + int64(i),
			})
		}
		got, err := ParseMessage(m.Encode())
		if err != nil {
			return false
		}
		if got.Volume != m.Volume || len(got.Elements) != len(m.Elements) {
			return false
		}
		for i := range m.Elements {
			if got.Elements[i] != m.Elements[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseMessageErrors(t *testing.T) {
	bad := []string{
		"",
		"noid",
		"99999; /a 1 2",
		"-3; /a 1 2",
		"5; /a 1",
		"5; /a one 2",
		"5; /a 1 two",
		"5; /a 1 2 3",
	}
	for _, s := range bad {
		if _, err := ParseMessage(s); err == nil {
			t.Errorf("ParseMessage(%q) succeeded, want error", s)
		}
	}
}

func TestWireBytesMatchesPaperEstimate(t *testing.T) {
	// §2.3: a typical ~50-byte URL plus two 8-byte integers gives ~66
	// bytes per element.
	url := "/products/java/docs/api/javax/swing/JComponent.html" // 52 bytes
	e := Element{URL: url, Size: 13900, LastModified: 899637753}
	if got := e.WireBytes(); got != len(url)+16 {
		t.Errorf("WireBytes = %d, want %d", got, len(url)+16)
	}
	m := Message{Volume: 3, Elements: []Element{e, e, e, e, e, e}}
	// 2-byte volume id + 6 elements.
	want := 2 + 6*(len(url)+16)
	if got := m.WireBytes(); got != want {
		t.Errorf("Message.WireBytes = %d, want %d", got, want)
	}
}

func TestEncodeIsSingleLine(t *testing.T) {
	m := Message{Volume: 1, Elements: []Element{{URL: "/a", Size: 1, LastModified: 2}}}
	if s := m.Encode(); strings.ContainsAny(s, "\r\n") {
		t.Errorf("Encode produced newline: %q", s)
	}
}
