package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMessageEncodeParseRoundTrip(t *testing.T) {
	m := Message{
		Volume: 17,
		Elements: []Element{
			{URL: "/a/b.html", Size: 4096, LastModified: 866268400},
			{URL: "/a/c.gif", Size: 512, LastModified: 866268401},
		},
	}
	got, err := ParseMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Volume != m.Volume || len(got.Elements) != len(m.Elements) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Elements {
		if got.Elements[i] != m.Elements[i] {
			t.Errorf("element %d: %+v != %+v", i, got.Elements[i], m.Elements[i])
		}
	}
}

func TestMessageEncodeEmptyElements(t *testing.T) {
	m := Message{Volume: 5}
	got, err := ParseMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Volume != 5 || len(got.Elements) != 0 {
		t.Fatalf("got %+v", got)
	}
	if !m.Empty() {
		t.Error("Empty() should be true")
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(vol uint16, n uint8, sz, lm uint32) bool {
		m := Message{Volume: VolumeID(vol) % (MaxVolumeID + 1)}
		for i := 0; i < int(n%8); i++ {
			m.Elements = append(m.Elements, Element{
				URL:          "/d/r" + string(rune('a'+i)) + ".html",
				Size:         int64(sz) + int64(i),
				LastModified: int64(lm) + int64(i),
			})
		}
		got, err := ParseMessage(m.Encode())
		if err != nil {
			return false
		}
		if got.Volume != m.Volume || len(got.Elements) != len(m.Elements) {
			return false
		}
		for i := range m.Elements {
			if got.Elements[i] != m.Elements[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseMessageErrors(t *testing.T) {
	bad := []string{
		"",
		"noid",
		"99999; /a 1 2",
		"-3; /a 1 2",
		"5; /a 1",
		"5; /a one 2",
		"5; /a 1 two",
		"5; /a 1 2 3",
	}
	for _, s := range bad {
		if _, err := ParseMessage(s); err == nil {
			t.Errorf("ParseMessage(%q) succeeded, want error", s)
		}
	}
}

func TestWireBytesMatchesPaperEstimate(t *testing.T) {
	// §2.3: a typical ~50-byte URL plus two 8-byte integers gives ~66
	// bytes per element.
	url := "/products/java/docs/api/javax/swing/JComponent.html" // 52 bytes
	e := Element{URL: url, Size: 13900, LastModified: 899637753}
	if got := e.WireBytes(); got != len(url)+16 {
		t.Errorf("WireBytes = %d, want %d", got, len(url)+16)
	}
	m := Message{Volume: 3, Elements: []Element{e, e, e, e, e, e}}
	// 2-byte volume id + 6 elements.
	want := 2 + 6*(len(url)+16)
	if got := m.WireBytes(); got != want {
		t.Errorf("Message.WireBytes = %d, want %d", got, want)
	}
}

func TestEncodeIsSingleLine(t *testing.T) {
	m := Message{Volume: 1, Elements: []Element{{URL: "/a", Size: 1, LastModified: 2}}}
	if s := m.Encode(); strings.ContainsAny(s, "\r\n") {
		t.Errorf("Encode produced newline: %q", s)
	}
}

func TestEncodeSegmentFastPathMatchesSlow(t *testing.T) {
	elems := []Element{
		{URL: "/a/b.html", Size: 4096, LastModified: 866268400},
		{URL: "/a/c.gif", Size: 512, LastModified: 866268401},
		{URL: "/a/d.png", Size: 0, LastModified: 0},
	}
	slow := Message{Volume: 17, Elements: elems}
	fast := Message{Volume: 17, Elements: elems,
		enc: []string{elementSegment(elems[0]), elementSegment(elems[1]), elementSegment(elems[2])}}
	if s, f := slow.Encode(), fast.Encode(); s != f {
		t.Fatalf("segment fast path diverged:\nslow %q\nfast %q", s, f)
	}
}

func TestRefreshElementsKeepsSegmentsCoherent(t *testing.T) {
	elems := []Element{
		{URL: "/keep", Size: 10, LastModified: 100},
		{URL: "/gone", Size: 20, LastModified: 200},
		{URL: "/changed", Size: 30, LastModified: 300},
	}
	m := Message{Volume: 9, Elements: elems,
		enc: []string{elementSegment(elems[0]), elementSegment(elems[1]), elementSegment(elems[2])}}
	m.RefreshElements(func(url string) (int64, int64, bool) {
		switch url {
		case "/keep":
			return 10, 100, true
		case "/changed":
			return 31, 301, true
		}
		return 0, 0, false
	})
	want := []Element{
		{URL: "/keep", Size: 10, LastModified: 100},
		{URL: "/changed", Size: 31, LastModified: 301},
	}
	if len(m.Elements) != len(want) {
		t.Fatalf("elements = %+v, want %+v", m.Elements, want)
	}
	for i := range want {
		if m.Elements[i] != want[i] {
			t.Errorf("element %d = %+v, want %+v", i, m.Elements[i], want[i])
		}
	}
	// The cached segments must still describe exactly the refreshed
	// elements — Encode via segments equals Encode via formatting.
	plain := Message{Volume: m.Volume, Elements: m.Elements}
	if got, wantEnc := m.Encode(), plain.Encode(); got != wantEnc {
		t.Fatalf("refreshed segments diverged:\ngot  %q\nwant %q", got, wantEnc)
	}
}

func TestDirVolumesPiggybackCarriesSegments(t *testing.T) {
	d := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	for i, url := range []string{"/a/x.html", "/a/y.html", "/a/z.html"} {
		d.Observe(Access{Source: "p1", Time: int64(100 + i),
			Element: Element{URL: url, Size: int64(10 * (i + 1)), LastModified: int64(1000 + i)}})
	}
	m, ok := d.Piggyback("/a/x.html", 200, Filter{})
	if !ok || len(m.Elements) == 0 {
		t.Fatalf("Piggyback = %+v, %v", m, ok)
	}
	if len(m.enc) != len(m.Elements) {
		t.Fatalf("enc len %d != elements len %d", len(m.enc), len(m.Elements))
	}
	plain := Message{Volume: m.Volume, Elements: m.Elements}
	if got, want := m.Encode(), plain.Encode(); got != want {
		t.Fatalf("piggyback segments diverged:\ngot  %q\nwant %q", got, want)
	}
}
