package core

import (
	"sort"
	"sync"

	"piggyback/internal/trace"
)

// PopularProvider implements the §5 extension: "Additional information
// that could be piggybacked includes information about popular resources
// gathered in a separate volume."
//
// It wraps another volume engine. When the inner engine has nothing to
// piggyback for a request — the resource is new, its volume is empty, or
// its volume is in the proxy's RPV list — the response instead carries the
// server's most popular resources as a dedicated volume with the reserved
// identifier PopularVolumeID. Since the popular volume has a stable id,
// the proxy's RPV list paces it like any other volume, so a proxy sees the
// site's hot set roughly once per RPV timeout.
type PopularProvider struct {
	// Inner is the primary volume engine.
	Inner Provider
	// TopN is the popular-volume size; zero means 10.
	TopN int
	// RecomputeEvery rebuilds the top-N after this many observations;
	// zero means 256.
	RecomputeEvery int

	mu     sync.Mutex
	counts map[string]int
	attrs  map[string]Element
	top    []Element
	sinceR int
}

// PopularVolumeID is the reserved id of the popular-resources volume — the
// last representable id, never assigned by DirVolumes (which wraps earlier)
// or by ProbVolumes built with fewer than 32767 resources.
const PopularVolumeID = MaxVolumeID

// NewPopularProvider wraps inner with a popular-resources fallback volume.
func NewPopularProvider(inner Provider, topN int) *PopularProvider {
	return &PopularProvider{
		Inner:  inner,
		TopN:   topN,
		counts: make(map[string]int),
		attrs:  make(map[string]Element),
	}
}

func (p *PopularProvider) topN() int {
	if p.TopN <= 0 {
		return 10
	}
	return p.TopN
}

func (p *PopularProvider) recomputeEvery() int {
	if p.RecomputeEvery <= 0 {
		return 256
	}
	return p.RecomputeEvery
}

// Observe implements Provider: counts popularity and feeds the inner
// engine.
func (p *PopularProvider) Observe(a Access) {
	p.mu.Lock()
	p.counts[a.Element.URL]++
	p.attrs[a.Element.URL] = a.Element
	p.sinceR++
	if p.sinceR >= p.recomputeEvery() || p.top == nil {
		p.recomputeLocked()
		p.sinceR = 0
	}
	p.mu.Unlock()
	p.Inner.Observe(a)
}

// recomputeLocked rebuilds the top-N list. Caller holds p.mu.
func (p *PopularProvider) recomputeLocked() {
	type cu struct {
		url string
		c   int
	}
	all := make([]cu, 0, len(p.counts))
	for url, c := range p.counts {
		all = append(all, cu{url, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].url < all[j].url
	})
	n := p.topN()
	if n > len(all) {
		n = len(all)
	}
	p.top = p.top[:0]
	for _, e := range all[:n] {
		p.top = append(p.top, p.attrs[e.url])
	}
}

// Piggyback implements Provider: the inner engine's message when it has
// one, otherwise the popular volume (subject to the filter).
func (p *PopularProvider) Piggyback(url string, now int64, f Filter) (Message, bool) {
	if m, ok := p.Inner.Piggyback(url, now, f); ok {
		return m, ok
	}
	if f.Disabled || f.HasRPV(PopularVolumeID) {
		return Message{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	max := f.Cap(p.topN())
	if max <= 0 {
		max = p.topN()
	}
	var elems []Element
	for _, e := range p.top {
		if e.URL == url {
			continue
		}
		if f.MinAccess > 0 && p.counts[e.URL] < f.MinAccess {
			continue
		}
		if !f.Admits(e, trace.ContentType(e.URL)) {
			continue
		}
		elems = append(elems, e)
		if len(elems) >= max {
			break
		}
	}
	if len(elems) == 0 {
		return Message{}, false
	}
	return Message{Volume: PopularVolumeID, Elements: elems}, true
}

// Popular returns the current top-N snapshot.
func (p *PopularProvider) Popular() []Element {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Element(nil), p.top...)
}
