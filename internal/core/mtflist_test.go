package core

import (
	"math/rand"
	"strconv"
	"testing"
)

func listURLs(l *mtfList) []string {
	var out []string
	l.Walk(func(n *mtfNode) bool {
		out = append(out, n.elem.URL)
		return true
	})
	return out
}

func TestMTFTouchOrdering(t *testing.T) {
	l := newMTFList()
	l.Touch(Element{URL: "/a"}, "text/html", 1)
	l.Touch(Element{URL: "/b"}, "text/html", 2)
	l.Touch(Element{URL: "/c"}, "text/html", 3)
	got := listURLs(l)
	if got[0] != "/c" || got[1] != "/b" || got[2] != "/a" {
		t.Fatalf("order after inserts: %v", got)
	}
	l.Touch(Element{URL: "/a"}, "text/html", 4)
	got = listURLs(l)
	if got[0] != "/a" || got[1] != "/c" || got[2] != "/b" {
		t.Fatalf("order after re-touch: %v", got)
	}
	if n, _ := l.Get("/a"); n.accessCount != 2 {
		t.Errorf("accessCount = %d, want 2", n.accessCount)
	}
}

func TestMTFTrimTail(t *testing.T) {
	l := newMTFList()
	for i := 0; i < 10; i++ {
		l.Touch(Element{URL: "/r" + strconv.Itoa(i)}, "text/html", int64(i))
	}
	if removed := l.TrimTail(4); removed != 6 {
		t.Fatalf("TrimTail removed %d, want 6", removed)
	}
	got := listURLs(l)
	want := []string{"/r9", "/r8", "/r7", "/r6"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after trim: %v, want %v", got, want)
		}
	}
	if l.TrimTail(0) != 0 {
		t.Error("TrimTail(0) should be a no-op (unlimited)")
	}
}

func TestMTFRemoveAndUpdate(t *testing.T) {
	l := newMTFList()
	l.Touch(Element{URL: "/a", Size: 1}, "text/html", 1)
	l.Touch(Element{URL: "/b", Size: 2}, "text/html", 2)
	if !l.Update(Element{URL: "/a", Size: 99, LastModified: 7}) {
		t.Fatal("Update existing failed")
	}
	if n, _ := l.Get("/a"); n.elem.Size != 99 || n.elem.LastModified != 7 {
		t.Errorf("Update did not refresh attributes: %+v", n.elem)
	}
	if l.Update(Element{URL: "/zzz"}) {
		t.Error("Update of missing element should return false")
	}
	if !l.Remove("/a") || l.Remove("/a") {
		t.Error("Remove semantics wrong")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1", l.Len())
	}
	// Removing the only element empties head and tail.
	l.Remove("/b")
	if l.head != nil || l.tail != nil || l.Len() != 0 {
		t.Error("empty list should have nil head/tail")
	}
}

// checkInvariants verifies the doubly-linked structure matches the index.
func checkInvariants(t *testing.T, l *mtfList) {
	t.Helper()
	seen := 0
	var prev *mtfNode
	for n := l.head; n != nil; n = n.next {
		seen++
		if n.prev != prev {
			t.Fatalf("node %q has wrong prev", n.elem.URL)
		}
		if got, ok := l.index[n.elem.URL]; !ok || got != n {
			t.Fatalf("node %q not indexed", n.elem.URL)
		}
		prev = n
		if seen > len(l.index)+1 {
			t.Fatal("list longer than index (cycle?)")
		}
	}
	if l.tail != prev {
		t.Fatal("tail pointer wrong")
	}
	if seen != len(l.index) {
		t.Fatalf("list has %d nodes, index has %d", seen, len(l.index))
	}
}

func TestMTFRandomOperationsKeepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := newMTFList()
	for i := 0; i < 3000; i++ {
		url := "/r" + strconv.Itoa(rng.Intn(50))
		switch rng.Intn(10) {
		case 0:
			l.Remove(url)
		case 1:
			l.TrimTail(rng.Intn(30) + 1)
		case 2:
			l.Update(Element{URL: url, Size: int64(i)})
		default:
			l.Touch(Element{URL: url, Size: int64(i)}, "text/html", int64(i))
		}
		if i%250 == 0 {
			checkInvariants(t, l)
		}
	}
	checkInvariants(t, l)
}

func TestMTFMostRecentFirstProperty(t *testing.T) {
	// After any Touch sequence, lastAccess is nonincreasing front to
	// back — the invariant that makes piggyback messages carry the most
	// recently accessed elements first.
	rng := rand.New(rand.NewSource(5))
	l := newMTFList()
	for i := 0; i < 2000; i++ {
		url := "/r" + strconv.Itoa(rng.Intn(40))
		l.Touch(Element{URL: url}, "text/html", int64(i))
	}
	last := int64(1 << 62)
	l.Walk(func(n *mtfNode) bool {
		if n.lastAccess > last {
			t.Fatalf("lastAccess not monotone: %d after %d", n.lastAccess, last)
		}
		last = n.lastAccess
		return true
	})
}
