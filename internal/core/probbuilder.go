package core

import (
	"math/rand"
	"sort"

	"piggyback/internal/trace"
)

// ProbConfig configures probability-based volume construction (§3.3.1).
type ProbConfig struct {
	// T is the co-occurrence window in seconds: p(s|r) is the proportion
	// of requests for r followed by a request for s by the same source
	// within T seconds. The paper uses T = 300.
	T int64
	// Pt is the base membership threshold: s joins r's volume when
	// p(s|r) >= Pt. Query-time filters can raise (never lower) it.
	Pt float64
	// SameDirLevel, when >= 0, limits counters to pairs of resources
	// sharing the same level-k directory prefix — the paper's "combined"
	// volumes, which cut memory and avoid inadvertent pairs at the
	// expense of cross-directory associations.
	SameDirLevel int
	// Sampling enables random sampled counter creation: when a pair
	// (r,s) has no counter, one is created with probability
	// min(1, SampleK/(c_r * Pt)), so frequently co-occurring pairs get
	// counters without tracking every pair (§3.3.1).
	Sampling bool
	// SampleK is the sampling constant; zero means 4.
	SampleK float64
	// UnbiasedInit, with Sampling, initializes a newly created counter
	// to the inverse of its creation probability so pair-count estimates
	// stay unbiased; otherwise counters start at 1 (underestimates).
	UnbiasedInit bool
	// MaxWindow caps the per-source window length to bound memory on
	// adversarial traces; zero means 256.
	MaxWindow int
	// Seed fixes the sampling randomness.
	Seed int64
}

func (c ProbConfig) sampleK() float64 {
	if c.SampleK <= 0 {
		return 4
	}
	return c.SampleK
}

func (c ProbConfig) maxWindow() int {
	if c.MaxWindow <= 0 {
		return 256
	}
	return c.MaxWindow
}

// ProbBuilder estimates pairwise implication probabilities from a request
// stream (§3.3.1): counters c_r for individual resources and c_{s|r} for
// pairs, where p(s|r) = c_{s|r}/c_r. Feed it a log via Observe (or
// ObserveLog), then call Build.
//
// A ProbBuilder is not safe for concurrent use.
type ProbBuilder struct {
	cfg ProbConfig

	counts  map[string]int            // c_r
	pairs   map[string]map[string]int // r -> s -> c_{s|r}
	windows map[string][]*winEntry    // per-source recent requests
	attrs   map[string]Element        // latest attributes per resource
	rng     *rand.Rand

	// CountersCreated and PairsSkipped expose the memory/accuracy
	// tradeoff of sampled counter creation for the ablation bench.
	CountersCreated int
	PairsSkipped    int
}

type winEntry struct {
	url      string
	time     int64
	credited map[string]struct{}
}

// NewProbBuilder returns a builder with the given configuration. Zero
// fields default to T=300 and Pt=0.1.
func NewProbBuilder(cfg ProbConfig) *ProbBuilder {
	if cfg.T <= 0 {
		cfg.T = 300
	}
	if cfg.Pt <= 0 {
		cfg.Pt = 0.1
	}
	if cfg.SameDirLevel == 0 {
		cfg.SameDirLevel = -1 // zero value means "no restriction"
	}
	return &ProbBuilder{
		cfg:     cfg,
		counts:  make(map[string]int),
		pairs:   make(map[string]map[string]int),
		windows: make(map[string][]*winEntry),
		attrs:   make(map[string]Element),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Observe feeds one log record to the builder. Records must arrive in
// nondecreasing time order per source.
func (b *ProbBuilder) Observe(rec trace.Record) {
	url := rec.URL
	e := Element{URL: url, Size: rec.Size, LastModified: rec.LastModified}
	if old, ok := b.attrs[url]; ok {
		// Keep the largest observed size (304 responses log size 0)
		// and the newest Last-Modified.
		if e.Size == 0 {
			e.Size = old.Size
		}
		if e.LastModified < old.LastModified {
			e.LastModified = old.LastModified
		}
	}
	b.attrs[url] = e
	b.counts[url]++

	w := b.windows[rec.Client]
	// Expire window entries older than T.
	cut := 0
	for cut < len(w) && rec.Time-w[cut].time > b.cfg.T {
		cut++
	}
	if cut > 0 {
		w = append(w[:0], w[cut:]...)
	}

	// Credit each in-window occurrence of a predecessor r at most once
	// per successor s: c_{s|r} counts r-occurrences followed by >= 1
	// request for s within T.
	for _, entry := range w {
		if entry.url == url {
			continue // self-pairs carry no prediction value
		}
		if _, done := entry.credited[url]; done {
			continue
		}
		if b.cfg.SameDirLevel >= 0 &&
			trace.DirPrefix(entry.url, b.cfg.SameDirLevel) != trace.DirPrefix(url, b.cfg.SameDirLevel) {
			continue
		}
		if entry.credited == nil {
			entry.credited = make(map[string]struct{}, 4)
		}
		entry.credited[url] = struct{}{}
		b.creditPair(entry.url, url)
	}

	w = append(w, &winEntry{url: url, time: rec.Time})
	if max := b.cfg.maxWindow(); len(w) > max {
		w = append(w[:0], w[len(w)-max:]...)
	}
	b.windows[rec.Client] = w
}

// creditPair increments c_{s|r}, creating the counter per the sampling
// policy when absent.
func (b *ProbBuilder) creditPair(r, s string) {
	m, ok := b.pairs[r]
	if !ok {
		m = make(map[string]int, 4)
		b.pairs[r] = m
	}
	if _, ok := m[s]; ok {
		m[s]++
		return
	}
	if !b.cfg.Sampling {
		m[s] = 1
		b.CountersCreated++
		return
	}
	// Create with probability inversely proportional to c_r * Pt: pairs
	// that co-occur often get counters; rare pairs are mostly skipped.
	p := b.cfg.sampleK() / (float64(b.counts[r]) * b.cfg.Pt)
	if p > 1 {
		p = 1
	}
	if b.rng.Float64() >= p {
		b.PairsSkipped++
		return
	}
	init := 1
	if b.cfg.UnbiasedInit && p < 1 {
		init = int(1/p + 0.5)
	}
	m[s] = init
	b.CountersCreated++
}

// ObserveLog feeds an entire log, in time order.
func (b *ProbBuilder) ObserveLog(l trace.Log) {
	for i := range l {
		b.Observe(l[i])
	}
}

// NumCounters returns the number of live pair counters — the memory cost
// sampling is designed to bound.
func (b *ProbBuilder) NumCounters() int {
	n := 0
	for _, m := range b.pairs {
		n += len(m)
	}
	return n
}

// Build computes implication probabilities and assembles the volumes.
// Pairs with p(s|r) < minKeep are discarded to bound memory; the runtime
// membership threshold remains cfg.Pt (raised further by query filters).
// Pass minKeep = 0 to keep every counted pair.
func (b *ProbBuilder) Build(minKeep float64) *ProbVolumes {
	v := &ProbVolumes{
		T:       b.cfg.T,
		Pt:      b.cfg.Pt,
		imps:    make(map[string][]Implication, len(b.pairs)),
		ids:     make(map[string]VolumeID, len(b.counts)),
		counts:  b.counts,
		attrs:   b.attrs,
		sameDir: b.cfg.SameDirLevel,
	}
	// Deterministic id assignment: sort resources by URL.
	urls := make([]string, 0, len(b.counts))
	for url := range b.counts {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	var next VolumeID
	for _, url := range urls {
		v.ids[url] = next
		next++
		if next > MaxVolumeID {
			next = 0
		}
	}
	for r, m := range b.pairs {
		cr := b.counts[r]
		if cr == 0 {
			continue
		}
		imps := make([]Implication, 0, len(m))
		for s, csr := range m {
			p := float64(csr) / float64(cr)
			if p > 1 {
				p = 1 // unbiased-init overshoot clamps at certainty
			}
			if p < minKeep {
				continue
			}
			imps = append(imps, Implication{
				Elem: b.attrs[s],
				P:    p,
				EffP: 1, // until thinning measures otherwise
			})
		}
		if len(imps) == 0 {
			continue
		}
		sort.Slice(imps, func(i, j int) bool {
			if imps[i].P != imps[j].P {
				return imps[i].P > imps[j].P
			}
			return imps[i].Elem.URL < imps[j].Elem.URL
		})
		v.imps[r] = imps
	}
	return v
}
