package core

import (
	"strconv"
	"testing"
)

func popObserve(p *PopularProvider, url string, n int, at int64) {
	for i := 0; i < n; i++ {
		p.Observe(Access{Source: "s", Time: at + int64(i), Element: Element{URL: url, Size: 100, LastModified: 1}})
	}
}

func TestPopularFallbackWhenInnerEmpty(t *testing.T) {
	inner := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	p := NewPopularProvider(inner, 3)
	p.RecomputeEvery = 1
	popObserve(p, "/a/hot.html", 10, 1)
	popObserve(p, "/a/warm.html", 5, 100)
	popObserve(p, "/b/cold.html", 1, 200)

	// A request for an unknown resource: the inner engine has no volume,
	// so the popular volume answers.
	m, ok := p.Piggyback("/zzz/new.html", 300, Filter{})
	if !ok {
		t.Fatal("no popular fallback")
	}
	if m.Volume != PopularVolumeID {
		t.Errorf("volume id = %d, want reserved %d", m.Volume, PopularVolumeID)
	}
	if len(m.Elements) != 3 || m.Elements[0].URL != "/a/hot.html" {
		t.Errorf("elements = %+v", m.Elements)
	}
}

func TestPopularPrefersInner(t *testing.T) {
	inner := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	p := NewPopularProvider(inner, 3)
	p.RecomputeEvery = 1
	popObserve(p, "/a/x.html", 3, 1)
	popObserve(p, "/a/y.html", 3, 10)
	m, ok := p.Piggyback("/a/x.html", 20, Filter{})
	if !ok {
		t.Fatal("no piggyback")
	}
	if m.Volume == PopularVolumeID {
		t.Error("popular volume used although the inner engine had content")
	}
}

func TestPopularRPVSuppression(t *testing.T) {
	inner := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	p := NewPopularProvider(inner, 3)
	p.RecomputeEvery = 1
	popObserve(p, "/a/hot.html", 5, 1)
	if _, ok := p.Piggyback("/new.html", 10, Filter{RPV: []VolumeID{PopularVolumeID}}); ok {
		t.Error("popular volume ignored the RPV list")
	}
	if _, ok := p.Piggyback("/new.html", 10, Filter{Disabled: true}); ok {
		t.Error("popular volume ignored Disabled")
	}
}

func TestPopularExcludesRequestedAndFilters(t *testing.T) {
	inner := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	p := NewPopularProvider(inner, 5)
	p.RecomputeEvery = 1
	popObserve(p, "/a/hot.html", 10, 1)
	popObserve(p, "/a/big.pdf", 8, 50)
	m, ok := p.Piggyback("/a/hot.html", 100, Filter{})
	if !ok {
		t.Fatal("no piggyback")
	}
	for _, e := range m.Elements {
		if e.URL == "/a/hot.html" {
			t.Error("popular volume included the requested resource")
		}
	}
	// MinAccess filter.
	if m, ok := p.Piggyback("/new.html", 100, Filter{MinAccess: 9}); ok {
		if len(m.Elements) != 1 || m.Elements[0].URL != "/a/hot.html" {
			t.Errorf("MinAccess not applied: %+v", m.Elements)
		}
	} else {
		t.Error("expected filtered popular piggyback")
	}
}

func TestPopularTopNOrderAndRecompute(t *testing.T) {
	inner := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	p := NewPopularProvider(inner, 2)
	p.RecomputeEvery = 4
	for i := 0; i < 8; i++ {
		popObserve(p, "/a/r"+strconv.Itoa(i%4)+".html", 1, int64(i))
	}
	popObserve(p, "/a/r3.html", 8, 100)
	top := p.Popular()
	if len(top) != 2 || top[0].URL != "/a/r3.html" {
		t.Errorf("top = %+v", top)
	}
}

func TestPopularMaxPiggyCap(t *testing.T) {
	inner := NewDirVolumes(DirConfig{Level: 1, MTF: true})
	p := NewPopularProvider(inner, 10)
	p.RecomputeEvery = 1
	for i := 0; i < 10; i++ {
		popObserve(p, "/a/r"+strconv.Itoa(i)+".html", 2, int64(i*10))
	}
	m, ok := p.Piggyback("/new.html", 1000, Filter{MaxPiggy: 3})
	if !ok || len(m.Elements) != 3 {
		t.Fatalf("cap not applied: %+v, %v", m, ok)
	}
}
