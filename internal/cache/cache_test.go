package cache

import (
	"container/heap"
	"math/rand"
	"strconv"
	"testing"
)

func put(c *Cache, url string, size int64, now int64) []string {
	return c.Put(Entry{URL: url, Size: size, Expires: now + 300, FetchedAt: now}, now)
}

func TestCacheBasicPutGet(t *testing.T) {
	c := New(1000, LRU{})
	put(c, "/a", 100, 1)
	e, ok := c.Get("/a", 2)
	if !ok || e.Size != 100 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := c.Get("/b", 3); ok {
		t.Fatal("phantom hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if got := c.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v", got)
	}
}

func TestCacheCapacityEnforced(t *testing.T) {
	c := New(250, LRU{})
	put(c, "/a", 100, 1)
	put(c, "/b", 100, 2)
	evicted := put(c, "/c", 100, 3)
	if c.Used() > c.Capacity() {
		t.Fatalf("used %d > capacity %d", c.Used(), c.Capacity())
	}
	if len(evicted) != 1 || evicted[0] != "/a" {
		t.Fatalf("evicted %v, want [/a] (LRU)", evicted)
	}
}

func TestLRUEvictionOrderRespectsAccess(t *testing.T) {
	c := New(250, LRU{})
	put(c, "/a", 100, 1)
	put(c, "/b", 100, 2)
	c.Get("/a", 5) // /a now more recent than /b
	evicted := put(c, "/c", 100, 6)
	if len(evicted) != 1 || evicted[0] != "/b" {
		t.Fatalf("evicted %v, want [/b]", evicted)
	}
}

func TestOversizeObjectNotCached(t *testing.T) {
	c := New(100, LRU{})
	put(c, "/big", 500, 1)
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("oversize object cached")
	}
	// Replacing an existing entry with an oversize version drops it.
	put(c, "/a", 50, 2)
	put(c, "/a", 500, 3)
	if _, ok := c.Peek("/a"); ok {
		t.Fatal("oversize replacement retained stale copy")
	}
}

func TestPutReplaceAdjustsUsed(t *testing.T) {
	c := New(1000, LRU{})
	put(c, "/a", 100, 1)
	put(c, "/a", 300, 2)
	if c.Used() != 300 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestDelete(t *testing.T) {
	c := New(1000, LRU{})
	put(c, "/a", 100, 1)
	if !c.Delete("/a") || c.Delete("/a") {
		t.Fatal("Delete semantics")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("Delete did not release space")
	}
}

func TestFreshnessLifecycle(t *testing.T) {
	c := New(1000, LRU{})
	c.Put(Entry{URL: "/a", Size: 10, Expires: 100}, 50)
	e, _ := c.Peek("/a")
	if !e.Fresh(99) || e.Fresh(100) {
		t.Error("Fresh boundary wrong")
	}
	if !c.Freshen("/a", 500) {
		t.Fatal("Freshen failed")
	}
	if !e.Fresh(400) {
		t.Error("Freshen did not extend expiry")
	}
	// Freshen never shortens.
	c.Freshen("/a", 300)
	if e.Expires != 500 {
		t.Error("Freshen shortened expiry")
	}
	if c.Freshen("/missing", 1) {
		t.Error("Freshen of missing entry")
	}
}

func TestGDSizeFavorsSmallObjects(t *testing.T) {
	g := &GDSize{}
	c := New(1000, g)
	put(c, "/small", 10, 1)
	put(c, "/large", 900, 2)
	// Adding more forces one eviction: the large object has the lower
	// H = L + 1/size.
	evicted := put(c, "/c", 200, 3)
	if len(evicted) != 1 || evicted[0] != "/large" {
		t.Fatalf("evicted %v, want [/large]", evicted)
	}
	if g.L() == 0 {
		t.Error("GD-Size aging term not updated on eviction")
	}
}

func TestGDSizeAgingAllowsEvictingSmallCold(t *testing.T) {
	g := &GDSize{}
	c := New(300, g)
	put(c, "/cold-small", 50, 1)
	// Stream of moderate objects raises L past the cold entry's H.
	for i := 0; i < 20; i++ {
		put(c, "/s"+strconv.Itoa(i), 120, int64(2+i))
	}
	if _, ok := c.Peek("/cold-small"); ok {
		// L must eventually exceed the untouched small entry's H.
		t.Error("cold small object never aged out")
	}
}

func TestLFUKeepsFrequentEntries(t *testing.T) {
	c := New(250, LFU{})
	put(c, "/hot", 100, 1)
	put(c, "/cold", 100, 2)
	for i := 0; i < 5; i++ {
		c.Get("/hot", int64(3+i))
	}
	evicted := put(c, "/new", 100, 10)
	if len(evicted) != 1 || evicted[0] != "/cold" {
		t.Fatalf("evicted %v, want [/cold]", evicted)
	}
}

func TestPiggybackLRUProtectsPinned(t *testing.T) {
	c := New(250, PiggybackLRU{})
	put(c, "/pred", 100, 1) // oldest, but predicted
	put(c, "/other", 100, 5)
	if !c.Pin("/pred", 1000, 6) {
		t.Fatal("Pin failed")
	}
	evicted := put(c, "/new", 100, 7)
	if len(evicted) != 1 || evicted[0] != "/other" {
		t.Fatalf("evicted %v, want [/other] (pinned protected)", evicted)
	}
	if c.Pin("/missing", 10, 6) {
		t.Error("Pin of missing entry")
	}
}

func TestPinExpires(t *testing.T) {
	c := New(250, PiggybackLRU{})
	put(c, "/pred", 100, 1)
	c.Pin("/pred", 50, 2) // pin expires at t=50
	put(c, "/other", 100, 100)
	// At t=200 the pin has lapsed; /pred is oldest again. Reprioritize
	// happens on events: a Get on /other refreshes it past the pin.
	c.Get("/other", 200)
	evicted := put(c, "/new", 100, 201)
	if len(evicted) != 1 || evicted[0] != "/pred" {
		t.Fatalf("evicted %v, want [/pred] after pin lapse", evicted)
	}
}

func TestHeapInvariantUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := New(5000, LRU{})
	for i := 0; i < 5000; i++ {
		url := "/r" + strconv.Itoa(rng.Intn(200))
		switch rng.Intn(5) {
		case 0:
			c.Delete(url)
		case 1:
			c.Get(url, int64(i))
		default:
			put(c, url, int64(rng.Intn(400)+1), int64(i))
		}
		if c.Used() > c.Capacity() {
			t.Fatalf("over capacity at step %d: %d", i, c.Used())
		}
	}
	// Heap and map must agree.
	if len(c.h) != c.Len() {
		t.Fatalf("heap %d entries, map %d", len(c.h), c.Len())
	}
	var sum int64
	for _, e := range c.h {
		if c.entries[e.URL] != e {
			t.Fatal("heap entry not in map")
		}
		if c.h[e.heapIdx] != e {
			t.Fatal("heapIdx wrong")
		}
		sum += e.Size
	}
	if sum != c.Used() {
		t.Fatalf("used accounting drifted: %d vs %d", sum, c.Used())
	}
	// Min-heap property.
	for i := 1; i < len(c.h); i++ {
		parent := (i - 1) / 2
		if c.h[parent].priority > c.h[i].priority {
			t.Fatal("heap property violated")
		}
	}
}

func TestMakeRoomNeverEvictsNewest(t *testing.T) {
	// With LRU, the entry just inserted has the highest priority, but
	// construct a policy where the new entry is the minimum: GD-Size
	// with a huge object (tiny 1/size) among small ones.
	g := &GDSize{}
	c := New(1000, g)
	for i := 0; i < 9; i++ {
		put(c, "/s"+strconv.Itoa(i), 100, int64(i+1))
	}
	evicted := put(c, "/huge", 900, 100) // H = L + 1/900: the minimum
	if _, ok := c.Peek("/huge"); !ok {
		t.Fatalf("newly inserted entry was evicted (evicted=%v)", evicted)
	}
	if c.Used() > c.Capacity() {
		t.Fatal("over capacity")
	}
}

func TestHeapRemoveMiddle(t *testing.T) {
	c := New(10000, LRU{})
	for i := 0; i < 10; i++ {
		put(c, "/r"+strconv.Itoa(i), 10, int64(i))
	}
	c.Delete("/r5")
	if c.Len() != 9 {
		t.Fatal("Delete miscounted")
	}
	// Drain via eviction; all remaining URLs must come out exactly once.
	seen := map[string]bool{}
	for c.Len() > 0 {
		victim := c.h[0]
		heap.Pop(&c.h)
		delete(c.entries, victim.URL)
		if seen[victim.URL] {
			t.Fatalf("duplicate %s", victim.URL)
		}
		seen[victim.URL] = true
	}
	if len(seen) != 9 || seen["/r5"] {
		t.Fatalf("drain saw %v", seen)
	}
}

func TestServerGDFavorsHintedEntries(t *testing.T) {
	g := &ServerGD{}
	c := New(300, g)
	put(c, "/hinted", 100, 1)
	put(c, "/plain", 100, 2)
	// The server keeps naming /hinted in piggybacks.
	for i := 0; i < 5; i++ {
		if !c.Hint("/hinted", int64(100+i), int64(3+i)) {
			t.Fatal("Hint failed")
		}
	}
	evicted := put(c, "/new", 150, 10)
	for _, url := range evicted {
		if url == "/hinted" {
			t.Fatal("hinted entry evicted before plain one")
		}
	}
	if _, ok := c.Peek("/hinted"); !ok {
		t.Fatal("hinted entry gone")
	}
	e, _ := c.Peek("/hinted")
	if e.HintCount() != 5 {
		t.Errorf("HintCount = %d", e.HintCount())
	}
	if c.Hint("/missing", 1, 1) {
		t.Error("Hint on missing entry")
	}
}

func TestServerGDAging(t *testing.T) {
	g := &ServerGD{}
	c := New(200, g)
	put(c, "/old", 100, 1)
	for i := 0; i < 30; i++ {
		put(c, "/s"+strconv.Itoa(i), 150, int64(2+i))
	}
	if g.L() == 0 {
		t.Error("aging term never advanced")
	}
}

func TestAccessorsAndPolicyNames(t *testing.T) {
	c := New(1000, LRU{})
	if c.Policy().Name() != "lru" {
		t.Errorf("Policy().Name() = %q", c.Policy().Name())
	}
	for _, p := range []Policy{LRU{}, LFU{}, &GDSize{}, &ServerGD{}, PiggybackLRU{}} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
		p.OnEvict(&Entry{}) // must not panic for stateless policies
	}
	put(c, "/a", 10, 5)
	c.Get("/a", 9)
	e, _ := c.Peek("/a")
	if e.Hits() != 1 || e.LastAccess() != 9 || e.PinnedUntil() != 0 {
		t.Errorf("accessors: hits=%d la=%d pin=%d", e.Hits(), e.LastAccess(), e.PinnedUntil())
	}
	if urls := c.URLs(); len(urls) != 1 || urls[0] != "/a" {
		t.Errorf("URLs = %v", urls)
	}
}
