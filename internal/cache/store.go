package cache

import "piggyback/internal/obs"

// Store is the cache surface the proxy serves from. Three implementations
// satisfy it: the plain single-threaded Cache (simulators, reference for
// differential tests), the concurrent Sharded RAM cache, and
// tiered.Tiered, which layers an append-only disk tier under a Sharded
// RAM tier. The proxy holds a Store, so swapping tiers is a Config change,
// not a code change.
//
// Hit/miss accounting lives behind Stats(): each implementation counts a
// logical lookup exactly once, wherever it is satisfied (a tiered disk hit
// is one hit, not a RAM miss plus a disk hit).
type Store interface {
	// Lookup returns the entry's servable state, counting a hit or miss,
	// updating replacement recency, and clearing the prefetch mark.
	Lookup(url string, now int64) (View, bool)
	// PeekView returns the entry's state without side effects.
	PeekView(url string) (View, bool)
	// Contains reports whether url is cached (no side effects).
	Contains(url string) bool
	// Put inserts or replaces the entry for e.URL, evicting as needed,
	// and returns the evicted URLs.
	Put(e Entry, now int64) (evicted []string)
	// Delete removes url, returning whether it was present. Deleted
	// entries are dropped, never demoted: deletion means invalidation.
	Delete(url string) bool
	// Freshen extends the entry's expiration without a body transfer.
	Freshen(url string, expires int64) bool
	// Pin protects the entry from eviction preference until the given
	// time (§4 cache replacement).
	Pin(url string, until, now int64) bool
	// Hint records that a piggyback message named the entry; also pins.
	Hint(url string, until, now int64) bool
	// ApplyPiggyback applies one piggyback element atomically per key.
	ApplyPiggyback(url string, lastModified, freshenTo, pinUntil, now int64) PiggybackOutcome
	// Stats returns the store's aggregate counters.
	Stats() StoreStats
	// Instrument registers the store's gauges and counters in reg under
	// prefix (e.g. "cache"). Safe to call again with a fresh registry.
	Instrument(reg *obs.Registry, prefix string)
	// Capacity, Used, and Len describe occupancy across all tiers.
	Capacity() int64
	Used() int64
	Len() int
	// Close flushes any durable state (a disk tier snapshots its index
	// and demotes the RAM working set) and releases resources. A Store
	// must not be used after Close.
	Close() error
}

// StoreStats is the accounting every Store keeps. The tier fields stay
// zero for RAM-only stores.
type StoreStats struct {
	// Hits and Misses count logical lookups: a lookup satisfied by any
	// tier is one hit.
	Hits, Misses int64
	// Evictions counts entries evicted for capacity (RAM tier).
	Evictions int64
	// Demotions counts RAM-evicted entries written to the disk tier;
	// Promotions counts disk entries moved back to RAM on a hit.
	Demotions, Promotions int64
	// DiskHits counts lookups satisfied from the disk tier (each is also
	// counted in Hits, exactly once).
	DiskHits int64
	// DiskBytes is the disk tier's current segment footprint in bytes.
	DiskBytes int64
	// Compactions counts segment rewrites that reclaimed holes.
	Compactions int64
}

// HitRate returns hits/(hits+misses).
func (s StoreStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Compile-time conformance: the two in-package implementations satisfy
// Store (tiered.Tiered asserts its own conformance).
var (
	_ Store = (*Cache)(nil)
	_ Store = (*Sharded)(nil)
)
