package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"piggyback/internal/obs"
)

// refPiggyback mirrors Sharded.ApplyPiggyback against a plain Cache, so the
// differential test can drive both with one op sequence.
func refPiggyback(c *Cache, url string, lastModified, freshenTo, pinUntil, now int64) PiggybackOutcome {
	e, ok := c.Peek(url)
	if !ok {
		return PiggybackMiss
	}
	if lastModified > e.LastModified {
		c.Delete(url)
		return PiggybackInvalidated
	}
	c.Freshen(url, freshenTo)
	c.Hint(url, pinUntil, now)
	return PiggybackRefreshed
}

// refLookup mirrors Sharded.Lookup (Get + clear the prefetch mark) against
// a plain Cache.
func refLookup(c *Cache, url string, now int64) (View, bool) {
	e, ok := c.Get(url, now)
	if !ok {
		return View{}, false
	}
	v := viewOf(e)
	if e.Prefetched {
		e.Prefetched = false
		v.WasPrefetched = true
	}
	return v, true
}

// compareState deep-compares the reference Cache against the single shard
// of a shards==1 Sharded: every entry field that influences observable
// behaviour or future eviction decisions must match exactly.
func compareState(t *testing.T, step int, ref *Cache, s *Sharded) {
	t.Helper()
	sc := s.shards[0].c
	if ref.Len() != sc.Len() || ref.Used() != sc.Used() {
		t.Fatalf("step %d: len/used diverged: ref %d/%d sharded %d/%d",
			step, ref.Len(), ref.Used(), sc.Len(), sc.Used())
	}
	if ref.Hits != s.Hits() || ref.Misses != s.Misses() || ref.Evictions != s.Evictions() {
		t.Fatalf("step %d: stats diverged: ref %d/%d/%d sharded %d/%d/%d",
			step, ref.Hits, ref.Misses, ref.Evictions, s.Hits(), s.Misses(), s.Evictions())
	}
	for url, re := range ref.entries {
		se, ok := sc.entries[url]
		if !ok {
			t.Fatalf("step %d: %s cached in reference, missing in sharded", step, url)
		}
		if re.Size != se.Size || re.LastModified != se.LastModified ||
			re.Expires != se.Expires || re.FetchedAt != se.FetchedAt ||
			re.ContentType != se.ContentType || re.Prefetched != se.Prefetched ||
			re.lastAccess != se.lastAccess || re.hits != se.hits ||
			re.pinnedUntil != se.pinnedUntil || re.hintCount != se.hintCount ||
			re.priority != se.priority {
			t.Fatalf("step %d: entry %s diverged:\nref     %+v\nsharded %+v", step, url, *re, *se)
		}
		if string(re.Body) != string(se.Body) {
			t.Fatalf("step %d: entry %s body diverged", step, url)
		}
	}
	for url := range sc.entries {
		if _, ok := ref.entries[url]; !ok {
			t.Fatalf("step %d: %s cached in sharded, missing in reference", step, url)
		}
	}
}

// TestShardedDifferential drives a shards==1 Sharded and a plain Cache with
// one randomized op sequence (Put/Lookup/Freshen/Hint/Pin/Delete/piggyback,
// with capacity pressure forcing evictions) and asserts identical
// observable state after every step, for every built-in policy.
func TestShardedDifferential(t *testing.T) {
	policies := []struct {
		name  string
		ref   func() Policy
		proto Policy
	}{
		{"piggyback-lru", func() Policy { return PiggybackLRU{} }, PiggybackLRU{}},
		{"lru", func() Policy { return LRU{} }, LRU{}},
		{"lfu", func() Policy { return LFU{} }, LFU{}},
		{"gdsize", func() Policy { return &GDSize{} }, &GDSize{}},
		{"server-gd", func() Policy { return &ServerGD{} }, &ServerGD{}},
	}
	const capacity = 4 << 10
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			ref := New(capacity, pol.ref())
			s := NewSharded(capacity, 1, PolicyFactory(pol.proto))
			if s.ShardCount() != 1 {
				t.Fatalf("want 1 shard, got %d", s.ShardCount())
			}
			now := int64(1000)
			for step := 0; step < 4000; step++ {
				now++
				url := fmt.Sprintf("http://o/u%02d", rng.Intn(40))
				switch op := rng.Intn(100); {
				case op < 40: // Put, sizes large enough to force evictions
					size := int64(64 + rng.Intn(int(capacity/4)))
					e := Entry{
						URL:          url,
						Size:         size,
						LastModified: now - int64(rng.Intn(500)),
						Expires:      now + int64(rng.Intn(300)),
						FetchedAt:    now,
						Body:         []byte(url),
						ContentType:  "text/html",
						Prefetched:   rng.Intn(4) == 0,
					}
					ev1 := ref.Put(e, now)
					ev2 := s.Put(e, now)
					if fmt.Sprint(ev1) != fmt.Sprint(ev2) {
						t.Fatalf("step %d: evicted diverged: ref %v sharded %v", step, ev1, ev2)
					}
				case op < 65: // Lookup
					v1, ok1 := refLookup(ref, url, now)
					v2, ok2 := s.Lookup(url, now)
					if ok1 != ok2 || v1.Expires != v2.Expires ||
						v1.WasPrefetched != v2.WasPrefetched ||
						v1.ContentType != v2.ContentType ||
						string(v1.Body) != string(v2.Body) {
						t.Fatalf("step %d: lookup diverged: %v/%+v vs %v/%+v", step, ok1, v1, ok2, v2)
					}
				case op < 75: // Freshen
					exp := now + int64(rng.Intn(400))
					if ref.Freshen(url, exp) != s.Freshen(url, exp) {
						t.Fatalf("step %d: freshen diverged", step)
					}
				case op < 85: // Hint
					until := now + int64(rng.Intn(400))
					if ref.Hint(url, until, now) != s.Hint(url, until, now) {
						t.Fatalf("step %d: hint diverged", step)
					}
				case op < 90: // Pin
					until := now + int64(rng.Intn(400))
					if ref.Pin(url, until, now) != s.Pin(url, until, now) {
						t.Fatalf("step %d: pin diverged", step)
					}
				case op < 95: // Delete
					if ref.Delete(url) != s.Delete(url) {
						t.Fatalf("step %d: delete diverged", step)
					}
				default: // piggyback element
					lm := now - int64(rng.Intn(600))
					o1 := refPiggyback(ref, url, lm, now+300, now+600, now)
					o2 := s.ApplyPiggyback(url, lm, now+300, now+600, now)
					if o1 != o2 {
						t.Fatalf("step %d: piggyback outcome diverged: %v vs %v", step, o1, o2)
					}
				}
				compareState(t, step, ref, s)
			}
			if ref.Hits == 0 || ref.Evictions == 0 {
				t.Fatalf("sequence exercised no hits (%d) or evictions (%d) — test is vacuous",
					ref.Hits, ref.Evictions)
			}
		})
	}
}

// TestShardedInvariants churns a multi-shard cache and checks the
// partition invariants: per-shard occupancy within the shard's capacity
// slice, aggregate accounting consistent, and every URL stored in the
// shard its hash selects.
func TestShardedInvariants(t *testing.T) {
	const capacity = 1 << 20 // 8 shards x 128 KiB
	s := NewSharded(capacity, 8, nil)
	if s.ShardCount() != 8 {
		t.Fatalf("want 8 shards, got %d", s.ShardCount())
	}
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	for i := 0; i < 5000; i++ {
		now++
		url := fmt.Sprintf("http://o/res%03d", rng.Intn(300))
		switch rng.Intn(4) {
		case 0, 1:
			s.Put(Entry{URL: url, Size: int64(1 + rng.Intn(8<<10)), Expires: now + 100, Body: []byte(url)}, now)
		case 2:
			s.Lookup(url, now)
		default:
			s.Delete(url)
		}
	}
	var used int64
	var n int
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.c.Used() > sh.c.Capacity() {
			t.Fatalf("shard %d over capacity: %d > %d", i, sh.c.Used(), sh.c.Capacity())
		}
		var shardUsed int64
		for url, e := range sh.c.entries {
			if int(fnv1a(url)&s.mask) != i {
				t.Fatalf("url %s stored in shard %d, hashes to %d", url, i, fnv1a(url)&s.mask)
			}
			shardUsed += e.Size
		}
		if shardUsed != sh.c.Used() {
			t.Fatalf("shard %d used accounting off: sum %d, Used %d", i, shardUsed, sh.c.Used())
		}
		used += shardUsed
		n += sh.c.Len()
	}
	if used != s.Used() || n != s.Len() {
		t.Fatalf("aggregate accounting off: %d/%d vs %d/%d", used, n, s.Used(), s.Len())
	}
	var totalCap int64
	for i := range s.shards {
		totalCap += s.shards[i].c.Capacity()
	}
	if totalCap != capacity {
		t.Fatalf("partitioned capacity %d != configured %d", totalCap, capacity)
	}
	if s.Evictions() == 0 {
		t.Fatal("churn produced no evictions — test is vacuous")
	}
}

// TestShardedConcurrentHammer hammers one Sharded from many goroutines
// with the full op mix (run under -race); afterwards the atomic aggregate
// stats must equal the sum of per-goroutine observations.
func TestShardedConcurrentHammer(t *testing.T) {
	const (
		workers = 8
		opsEach = 3000
		keys    = 200
	)
	s := NewSharded(1<<20, 8, PolicyFactory(&GDSize{}))
	reg := obs.NewRegistry()
	s.Instrument(reg, "cache")
	var wg sync.WaitGroup
	hits := make([]int, workers)
	misses := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				now := int64(i)
				url := fmt.Sprintf("http://o/res%03d", rng.Intn(keys))
				switch rng.Intn(10) {
				case 0, 1, 2:
					s.Put(Entry{URL: url, Size: int64(1 + rng.Intn(4<<10)), Expires: now + 50, Body: []byte(url), ContentType: "text/plain"}, now)
				case 3, 4, 5, 6:
					if _, ok := s.Lookup(url, now); ok {
						hits[w]++
					} else {
						misses[w]++
					}
				case 7:
					s.ApplyPiggyback(url, now-10, now+50, now+100, now)
				case 8:
					s.Freshen(url, now+20)
				default:
					s.Delete(url)
				}
			}
		}(w)
	}
	wg.Wait()
	var wantHits, wantMisses int
	for w := 0; w < workers; w++ {
		wantHits += hits[w]
		wantMisses += misses[w]
	}
	if s.Hits() != wantHits || s.Misses() != wantMisses {
		t.Fatalf("aggregate stats lost updates: got %d/%d, want %d/%d",
			s.Hits(), s.Misses(), wantHits, wantMisses)
	}
	if wantHits == 0 {
		t.Fatal("hammer produced no hits — test is vacuous")
	}
	// Gauges settle to the true occupancy once mutations stop.
	snap := reg.Snapshot()
	var gaugeBytes, gaugeEntries int64
	for i := range s.shards {
		gaugeBytes += snap.Counter(fmt.Sprintf("cache.shard%02d.bytes", i))
		gaugeEntries += snap.Counter(fmt.Sprintf("cache.shard%02d.entries", i))
	}
	if gaugeBytes != s.Used() || gaugeEntries != int64(s.Len()) {
		t.Fatalf("occupancy gauges drifted: %d/%d vs %d/%d",
			gaugeBytes, gaugeEntries, s.Used(), s.Len())
	}
	if got := snap.Counter("cache.evictions"); got != int64(s.Evictions()) {
		t.Fatalf("eviction gauge %d != evictions %d", got, s.Evictions())
	}
}

// TestShardedCapacityClamp verifies tiny caches degrade to fewer shards
// rather than making ordinary objects uncachable.
func TestShardedCapacityClamp(t *testing.T) {
	if got := NewSharded(150, 8, nil).ShardCount(); got != 1 {
		t.Fatalf("150-byte cache should collapse to 1 shard, got %d", got)
	}
	if got := NewSharded(1<<20, 8, nil).ShardCount(); got != 8 {
		t.Fatalf("1 MiB cache should keep 8 shards, got %d", got)
	}
	if got := NewSharded(1<<20, 5, nil).ShardCount(); got != 8 {
		t.Fatalf("shards should round up to a power of two, got %d", got)
	}
	// A 150-byte single-shard cache must still hold a 100-byte object —
	// the behaviour TestProxyEvictionUnderPressure depends on.
	s := NewSharded(150, 8, nil)
	s.Put(Entry{URL: "http://o/x", Size: 100, Expires: 10, Body: make([]byte, 100)}, 0)
	if !s.Contains("http://o/x") {
		t.Fatal("100-byte object uncachable in 150-byte cache")
	}
	d := DefaultShards()
	if d < 1 || d&(d-1) != 0 {
		t.Fatalf("DefaultShards not a power of two: %d", d)
	}
}

// TestPolicyFactoryInstances checks the sharing rules: stateless policies
// shared, stateful ones cloned per shard, unknown implementations wrapped
// once behind a shared lock.
func TestPolicyFactoryInstances(t *testing.T) {
	f := PolicyFactory(LRU{})
	if f() != f() {
		t.Fatal("LRU instances should be shared")
	}
	g := PolicyFactory(&GDSize{})
	a, b := g().(*GDSize), g().(*GDSize)
	if a == b {
		t.Fatal("GDSize instances must be independent per shard")
	}
	// Aging one instance must not age the other.
	e := &Entry{URL: "u", Size: 10, priority: 5}
	a.OnEvict(e)
	if a.L() == 0 || b.L() != 0 {
		t.Fatalf("GDSize aging leaked across instances: a.L=%v b.L=%v", a.L(), b.L())
	}
	u := PolicyFactory(custom{})
	lp1, ok1 := u().(*lockedPolicy)
	lp2, ok2 := u().(*lockedPolicy)
	if !ok1 || !ok2 || lp1 != lp2 {
		t.Fatal("unknown policy should be one shared lockedPolicy")
	}
	if lp1.Name() != "custom" {
		t.Fatalf("lockedPolicy should delegate Name, got %q", lp1.Name())
	}
	if PolicyFactory(nil) != nil {
		t.Fatal("nil prototype should map to nil factory (default policy)")
	}
}

type custom struct{}

func (custom) Name() string                         { return "custom" }
func (custom) Priority(e *Entry, now int64) float64 { return 0 }
func (custom) OnEvict(e *Entry)                     {}

// TestShardedApplyPiggyback checks the three outcomes of one piggyback
// element against a cached copy.
func TestShardedApplyPiggyback(t *testing.T) {
	s := NewSharded(1<<20, 1, nil)
	now := int64(100)
	if got := s.ApplyPiggyback("http://o/a", 50, now+10, now+20, now); got != PiggybackMiss {
		t.Fatalf("uncached resource: want PiggybackMiss, got %v", got)
	}
	s.Put(Entry{URL: "http://o/a", Size: 10, LastModified: 50, Expires: now + 5, Body: []byte("aa")}, now)
	if got := s.ApplyPiggyback("http://o/a", 50, now+30, now+40, now); got != PiggybackRefreshed {
		t.Fatalf("current copy: want PiggybackRefreshed, got %v", got)
	}
	v, ok := s.Peek("http://o/a")
	if !ok || v.Expires != now+30 {
		t.Fatalf("refresh should extend expiration to %d, got %+v %v", now+30, v, ok)
	}
	if got := s.ApplyPiggyback("http://o/a", 60, now+50, now+60, now); got != PiggybackInvalidated {
		t.Fatalf("newer Last-Modified: want PiggybackInvalidated, got %v", got)
	}
	if s.Contains("http://o/a") {
		t.Fatal("invalidated copy should be deleted")
	}
}

// TestEntryContentTypeRoundTrip covers the Content-Type satellite at the
// cache layer: the header survives insert, replace, and view.
func TestEntryContentTypeRoundTrip(t *testing.T) {
	s := NewSharded(1<<20, 1, nil)
	s.Put(Entry{URL: "u", Size: 5, Expires: 10, Body: []byte("hello"), ContentType: "text/html"}, 0)
	v, ok := s.Lookup("u", 1)
	if !ok || v.ContentType != "text/html" {
		t.Fatalf("content type lost on insert: %+v %v", v, ok)
	}
	s.Put(Entry{URL: "u", Size: 5, Expires: 10, Body: []byte("bytes"), ContentType: "image/gif"}, 2)
	v, _ = s.Peek("u")
	if v.ContentType != "image/gif" {
		t.Fatalf("content type not updated on replace: %+v", v)
	}
}
