// Package cache implements the proxy cache: a byte-capacity store with
// pluggable replacement policies (LRU, LFU, the cost-aware GD-Size baseline
// of Cao & Irani [5], and a piggyback-aware policy that protects resources
// predicted by recent piggyback messages, §4) and the freshness bookkeeping
// the coherency protocol needs (expiration time Δ, Last-Modified tracking).
package cache

import (
	"container/heap"

	"piggyback/internal/obs"
)

// Entry is one cached resource.
type Entry struct {
	URL string
	// Size is the resource size in bytes, charged against capacity.
	Size int64
	// LastModified is the version of the resource at the server, as of
	// the last fetch or piggyback refresh (§2.1).
	LastModified int64
	// Expires is when the cached copy requires validation before use:
	// fetch time + the freshness interval Δ (§2.1).
	Expires int64
	// FetchedAt is when the body was last transferred.
	FetchedAt int64
	// Body holds the cached response body (the capacity charge is Size,
	// the resource's authoritative size, even when the stored body is a
	// truncated testbed synthesis).
	Body []byte
	// ContentType is the MIME type the origin sent with the body, served
	// back on cache hits and 304-validated responses.
	ContentType string
	// LastModifiedHTTP is the HTTP-date rendering of LastModified, filled
	// by the inserter (usually the origin's own Last-Modified header) so
	// serving a hit never re-formats the time. Empty means "format on
	// demand"; it is never updated independently of LastModified.
	LastModifiedHTTP string
	// Prefetched marks entries fetched speculatively from piggyback
	// information; cleared on the first client hit so useful prefetches
	// can be counted (§4).
	Prefetched bool

	// Replacement bookkeeping.
	lastAccess int64
	hits       int
	// pinnedUntil protects the entry from eviction preference while a
	// recent piggyback message predicted it (§4 cache replacement).
	pinnedUntil int64
	// hintCount accumulates how many piggyback messages have named this
	// entry — the server-assisted popularity signal of the paper's
	// follow-up work on cache replacement ([24]).
	hintCount int
	// priority is the policy-assigned eviction priority (lowest first).
	priority float64
	heapIdx  int
}

// Fresh reports whether the entry can be served without validation at now.
func (e *Entry) Fresh(now int64) bool { return now < e.Expires }

// Hits returns the number of cache hits the entry has served.
func (e *Entry) Hits() int { return e.hits }

// LastAccess returns the entry's last access time.
func (e *Entry) LastAccess() int64 { return e.lastAccess }

// PinnedUntil returns the prediction-protection horizon.
func (e *Entry) PinnedUntil() int64 { return e.pinnedUntil }

// HintCount returns how many piggyback messages have named this entry.
func (e *Entry) HintCount() int { return e.hintCount }

// Priority returns the policy-assigned eviction priority as of the last
// recomputation (insert, hit, pin). Custom demotion gates on a tiered
// store can read it to rank eviction victims.
func (e *Entry) Priority() float64 { return e.priority }

// Policy assigns eviction priorities. The cache evicts the entry with the
// lowest priority. Priorities are recomputed on insert, hit, and pin — the
// event-driven discipline GD-Size is defined by.
type Policy interface {
	Name() string
	// Priority computes the entry's eviction priority at an event.
	Priority(e *Entry, now int64) float64
	// OnEvict observes an eviction (GD-Size updates its aging term L).
	OnEvict(e *Entry)
}

// Cache is a byte-capacity cache. It is not safe for concurrent use: the
// trace-driven simulators drive it single-threaded, and Sharded wraps one
// Cache per shard — each under its own mutex — for the proxy's concurrent
// hot path.
type Cache struct {
	capacity int64
	used     int64
	entries  map[string]*Entry
	h        entryHeap
	policy   Policy

	// evictObserver, when set, sees every entry evicted for capacity
	// (not explicit deletes or invalidations) before it is dropped — the
	// demotion hook a tiered store hangs eviction on. The entry must be
	// treated as read-only and not retained; copy what is needed.
	evictObserver func(e *Entry, now int64)

	// Stats.
	Hits, Misses, Evictions int
}

// New returns a cache with the given byte capacity and policy.
func New(capacity int64, p Policy) *Cache {
	return &Cache{capacity: capacity, entries: make(map[string]*Entry), policy: p}
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 { return c.used }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Get returns the entry for url, counting a hit or miss and updating
// replacement state.
func (c *Cache) Get(url string, now int64) (*Entry, bool) {
	e, ok := c.entries[url]
	if !ok {
		c.Misses++
		return nil, false
	}
	c.Hits++
	e.hits++
	e.lastAccess = now
	c.reprioritize(e, now)
	return e, true
}

// Peek returns the entry without side effects.
func (c *Cache) Peek(url string) (*Entry, bool) {
	e, ok := c.entries[url]
	return e, ok
}

// Put inserts or replaces the entry for e.URL, evicting low-priority
// entries as needed. It returns the evicted URLs. Resources larger than
// the whole capacity are not cached.
func (c *Cache) Put(e Entry, now int64) (evicted []string) {
	if e.Size > c.capacity {
		// Replacing an existing copy with an uncachable version drops
		// the old copy.
		c.Delete(e.URL)
		return nil
	}
	if old, ok := c.entries[e.URL]; ok {
		c.used -= old.Size
		c.used += e.Size
		old.Size = e.Size
		old.LastModified = e.LastModified
		old.Expires = e.Expires
		old.FetchedAt = e.FetchedAt
		old.Body = e.Body
		old.ContentType = e.ContentType
		old.LastModifiedHTTP = e.LastModifiedHTTP
		old.Prefetched = e.Prefetched
		old.lastAccess = now
		c.reprioritize(old, now)
		return c.makeRoom(now, old)
	}
	ne := new(Entry)
	*ne = e
	ne.lastAccess = now
	c.entries[ne.URL] = ne
	c.used += ne.Size
	ne.priority = c.policy.Priority(ne, now)
	heap.Push(&c.h, ne)
	return c.makeRoom(now, ne)
}

// makeRoom evicts until used <= capacity, never evicting keep.
func (c *Cache) makeRoom(now int64, keep *Entry) (evicted []string) {
	for c.used > c.capacity && len(c.h) > 0 {
		victim := c.h[0]
		if victim == keep {
			// The newest entry is the lowest priority: evict the
			// next-lowest instead (pop, evict new min, push back).
			heap.Pop(&c.h)
			if len(c.h) == 0 {
				heap.Push(&c.h, victim)
				break
			}
			next := heap.Pop(&c.h).(*Entry)
			heap.Push(&c.h, victim)
			c.evict(next, now)
			evicted = append(evicted, next.URL)
			continue
		}
		heap.Pop(&c.h)
		c.evict(victim, now)
		evicted = append(evicted, victim.URL)
	}
	return evicted
}

func (c *Cache) evict(e *Entry, now int64) {
	delete(c.entries, e.URL)
	c.used -= e.Size
	c.Evictions++
	c.policy.OnEvict(e)
	if c.evictObserver != nil {
		c.evictObserver(e, now)
	}
}

// SetEvictObserver installs fn to observe capacity evictions (nil
// removes it). fn runs inside the eviction path — under the shard lock
// when the Cache is a Sharded shard — so it must be fast and must not
// call back into the cache.
func (c *Cache) SetEvictObserver(fn func(e *Entry, now int64)) { c.evictObserver = fn }

// Delete removes url, returning whether it was present.
func (c *Cache) Delete(url string) bool {
	e, ok := c.entries[url]
	if !ok {
		return false
	}
	heap.Remove(&c.h, e.heapIdx)
	delete(c.entries, url)
	c.used -= e.Size
	return true
}

// Freshen extends the entry's expiration (a validation or a piggyback
// refresh, §2.1) without transferring the body.
func (c *Cache) Freshen(url string, expires int64) bool {
	e, ok := c.entries[url]
	if !ok {
		return false
	}
	if expires > e.Expires {
		e.Expires = expires
	}
	return true
}

// Pin protects the entry from eviction preference until the given time —
// "the proxy could continue to cache items that have appeared in recent
// piggyback messages" (§4).
func (c *Cache) Pin(url string, until, now int64) bool {
	e, ok := c.entries[url]
	if !ok {
		return false
	}
	if until > e.pinnedUntil {
		e.pinnedUntil = until
	}
	c.reprioritize(e, now)
	return true
}

// Hint records that a piggyback message named the entry, feeding
// server-assisted replacement policies ([24]); it also pins like Pin.
func (c *Cache) Hint(url string, until, now int64) bool {
	e, ok := c.entries[url]
	if !ok {
		return false
	}
	e.hintCount++
	if until > e.pinnedUntil {
		e.pinnedUntil = until
	}
	c.reprioritize(e, now)
	return true
}

// HitRate returns hits/(hits+misses).
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

func (c *Cache) reprioritize(e *Entry, now int64) {
	e.priority = c.policy.Priority(e, now)
	heap.Fix(&c.h, e.heapIdx)
}

// URLs returns the cached URLs (unspecified order).
func (c *Cache) URLs() []string {
	out := make([]string, 0, len(c.entries))
	for u := range c.entries {
		out = append(out, u)
	}
	return out
}

// --- Store conformance -------------------------------------------------
//
// The plain Cache satisfies Store so differential tests (and simulators
// that want the interface) can drive it interchangeably with Sharded and
// tiered.Tiered. Lookup/ApplyPiggyback mirror Sharded's semantics exactly;
// they are the single-threaded reference implementations.

// Lookup returns the entry's servable state, counting a hit or miss,
// updating replacement recency, and clearing the prefetch mark.
func (c *Cache) Lookup(url string, now int64) (View, bool) {
	e, ok := c.Get(url, now)
	if !ok {
		return View{}, false
	}
	v := viewOf(e)
	if e.Prefetched {
		e.Prefetched = false
		v.WasPrefetched = true
	}
	return v, true
}

// PeekView returns the entry's state without side effects. (Peek returns
// the live *Entry for the simulators; PeekView is the Store form.)
func (c *Cache) PeekView(url string) (View, bool) {
	e, ok := c.Peek(url)
	if !ok {
		return View{}, false
	}
	return viewOf(e), true
}

// Contains reports whether url is cached.
func (c *Cache) Contains(url string) bool {
	_, ok := c.entries[url]
	return ok
}

// ApplyPiggyback applies one piggyback element (§4 cache coherency and
// replacement): invalidate an outdated copy, or freshen and hint a
// current one.
func (c *Cache) ApplyPiggyback(url string, lastModified, freshenTo, pinUntil, now int64) PiggybackOutcome {
	e, ok := c.Peek(url)
	if !ok {
		return PiggybackMiss
	}
	if lastModified > e.LastModified {
		c.Delete(url)
		return PiggybackInvalidated
	}
	c.Freshen(url, freshenTo)
	c.Hint(url, pinUntil, now)
	return PiggybackRefreshed
}

// Stats returns the cache's counters.
func (c *Cache) Stats() StoreStats {
	return StoreStats{
		Hits:      int64(c.Hits),
		Misses:    int64(c.Misses),
		Evictions: int64(c.Evictions),
	}
}

// Instrument is a no-op: the plain Cache is the single-threaded building
// block; telemetry lives on the concurrent stores wrapping it.
func (c *Cache) Instrument(reg *obs.Registry, prefix string) {}

// Close is a no-op; the plain Cache holds no external resources.
func (c *Cache) Close() error { return nil }

// entryHeap is a min-heap on Entry.priority.
type entryHeap []*Entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].priority < h[j].priority }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *entryHeap) Push(x interface{}) { e := x.(*Entry); e.heapIdx = len(*h); *h = append(*h, e) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
