package tiered

import (
	"fmt"
	"testing"

	"piggyback/internal/cache"
)

// BenchmarkTieredRAMHit measures the RAM-hit fast path through the
// Tiered wrapper. CI gates it (benchgate) so the disk tier's existence
// costs the hot path nothing: the delta vs a bare Sharded lookup must
// stay at 0 allocs/op.
func BenchmarkTieredRAMHit(b *testing.B) {
	for _, tier := range []string{"bare", "tiered"} {
		b.Run(tier, func(b *testing.B) {
			ram := cache.NewSharded(64<<20, 4, nil)
			var s cache.Store = ram
			if tier == "tiered" {
				ts, err := New(cache.NewSharded(64<<20, 4, nil), Config{Dir: b.TempDir()})
				if err != nil {
					b.Fatal(err)
				}
				defer ts.Close()
				s = ts
			}
			now := int64(1000)
			for i := 0; i < 64; i++ {
				s.Put(entry(fmt.Sprintf("http://o/h%02d", i), 2048, now), now)
			}
			urls := make([]string, 64)
			for i := range urls {
				urls[i] = fmt.Sprintf("http://o/h%02d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := s.Lookup(urls[i&63], now); !ok {
					b.Fatal("miss on warm set")
				}
			}
		})
	}
}

// BenchmarkTieredPromote measures the disk round trip: a synchronous
// demote (append to the active segment) followed by a Lookup that
// promotes the entry back to RAM. This is the cost of a disk hit.
func BenchmarkTieredPromote(b *testing.B) {
	ts, err := New(cache.NewSharded(64<<20, 4, nil), Config{
		Dir: b.TempDir(), DiskBytes: 1 << 30, SegmentBytes: 64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ts.Close()
	now := int64(1000)
	e := entry("http://o/cycle", 4096, now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Demote synchronously (bypassing the queue keeps the benchmark
		// deterministic) and promote via the public lookup path.
		ts.demoteOne(&e)
		ts.RAM().Delete(e.URL)
		if _, ok := ts.Lookup(e.URL, now); !ok {
			b.Fatal("promotion missed")
		}
		ts.RAM().Delete(e.URL)
	}
}
