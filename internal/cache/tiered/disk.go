// Package tiered layers an append-only segment-file disk tier under the
// sharded RAM cache, behind the cache.Store interface: RAM evictions the
// replacement policy judged worth keeping are *demoted* to disk, a disk
// hit is *promoted* back to RAM and served without an origin fetch, and
// the in-memory index snapshots on shutdown so a restarted proxy re-opens
// its segments and serves warm instead of stampeding the origin
// (ROADMAP item 4; sizing follows the proxy-cache construction papers in
// PAPERS.md).
package tiered

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"piggyback/internal/cache"
)

// Segment files hold a sequence of CRC-framed records:
//
//	magic   u32  recMagic
//	urlLen  u32
//	ctLen   u32  (Content-Type)
//	lmdLen  u32  (pre-rendered Last-Modified HTTP date)
//	bodyLen u32
//	size    i64  (capacity charge; may exceed len(body) in testbeds)
//	lm      i64  (Last-Modified)
//	expires i64
//	fetched i64
//	flags   u8   (bit0: prefetched)
//	url, ct, lmDate, body bytes
//	crc     u32  IEEE over everything between magic and crc
//
// Records are immutable once written; replacing or promoting an entry
// leaves a hole, and segments whose live ratio drops below the compaction
// threshold are rewritten into the active segment.

const (
	recMagic  = 0x50475631 // "PGV1"
	recHdrLen = 4 + 4*4 + 8*4 + 1
	recTail   = 4 // trailing CRC
)

// loc is one index entry: where a record lives and the freshness state
// piggyback processing may update without rewriting the record.
type loc struct {
	seg     int
	off     int64
	n       int64 // full record length in bytes
	size    int64 // Entry.Size (capacity charge)
	lm      int64
	expires int64
}

// segment is one append-only file. live tracks the bytes of records still
// referenced by the index; the difference to size is reclaimable holes.
type segment struct {
	id   int
	f    *os.File
	size int64
	live int64
}

// diskTier is the on-disk half of a Tiered store. One mutex guards it:
// disk operations are off the RAM-hit path, and serializing them keeps
// the append-only invariants trivial.
type diskTier struct {
	dir          string
	capBytes     int64
	segBytes     int64
	compactRatio float64
	logf         func(format string, args ...interface{})

	index  map[string]loc
	segs   map[int]*segment
	cur    *segment
	nextID int
	bytes  int64 // sum of segment sizes (the disk footprint)

	compactions int64
	corrupt     int64 // records dropped on CRC/decode failure
	enc         []byte
}

func segName(id int) string { return fmt.Sprintf("seg-%06d.dat", id) }

// openDisk opens (or creates) the tier in dir, loading the index snapshot
// when a valid one exists. Corruption never fails the open: a truncated
// segment is quarantined, a corrupt snapshot is logged and ignored, and
// the proxy serves cold for whatever was lost.
func openDisk(dir string, capBytes, segBytes int64, ratio float64, logf func(string, ...interface{})) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &diskTier{
		dir:          dir,
		capBytes:     capBytes,
		segBytes:     segBytes,
		compactRatio: ratio,
		logf:         logf,
		index:        make(map[string]loc),
		segs:         make(map[int]*segment),
	}
	// Any existing segment bumps the id floor, referenced by the
	// snapshot or not, so a fresh active segment never collides.
	if matches, _ := filepath.Glob(filepath.Join(dir, "seg-*.dat")); len(matches) > 0 {
		for _, m := range matches {
			var id int
			if _, err := fmt.Sscanf(filepath.Base(m), "seg-%06d.dat", &id); err == nil && id >= d.nextID {
				d.nextID = id + 1
			}
		}
	}
	d.loadSnapshot()
	// Orphaned segments (present on disk, referenced by no loaded index
	// entry) are unreachable; quarantine them rather than deleting data.
	if matches, _ := filepath.Glob(filepath.Join(dir, "seg-*.dat")); len(matches) > 0 {
		for _, m := range matches {
			var id int
			if _, err := fmt.Sscanf(filepath.Base(m), "seg-%06d.dat", &id); err != nil {
				continue
			}
			if _, ok := d.segs[id]; !ok {
				d.quarantineFile(m, "orphaned (not in index snapshot)")
			}
		}
	}
	if err := d.newSegment(); err != nil {
		d.closeFiles()
		return nil, err
	}
	return d, nil
}

func (d *diskTier) quarantineFile(path, why string) {
	q := path + ".quarantined"
	if err := os.Rename(path, q); err != nil {
		d.logf("tiered: quarantine %s (%s): rename failed: %v", filepath.Base(path), why, err)
		return
	}
	d.logf("tiered: quarantined %s: %s", filepath.Base(path), why)
}

// newSegment starts a fresh active segment.
func (d *diskTier) newSegment() error {
	id := d.nextID
	d.nextID++
	f, err := os.OpenFile(filepath.Join(d.dir, segName(id)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	s := &segment{id: id, f: f}
	d.segs[id] = s
	d.cur = s
	return nil
}

// encode serializes e into d.enc (reused across calls) and returns it.
func (d *diskTier) encode(e *cache.Entry) []byte {
	n := recHdrLen + len(e.URL) + len(e.ContentType) + len(e.LastModifiedHTTP) + len(e.Body) + recTail
	if cap(d.enc) < n {
		d.enc = make([]byte, n)
	}
	b := d.enc[:n]
	binary.LittleEndian.PutUint32(b[0:], recMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(e.URL)))
	binary.LittleEndian.PutUint32(b[8:], uint32(len(e.ContentType)))
	binary.LittleEndian.PutUint32(b[12:], uint32(len(e.LastModifiedHTTP)))
	binary.LittleEndian.PutUint32(b[16:], uint32(len(e.Body)))
	binary.LittleEndian.PutUint64(b[20:], uint64(e.Size))
	binary.LittleEndian.PutUint64(b[28:], uint64(e.LastModified))
	binary.LittleEndian.PutUint64(b[36:], uint64(e.Expires))
	binary.LittleEndian.PutUint64(b[44:], uint64(e.FetchedAt))
	var flags byte
	if e.Prefetched {
		flags |= 1
	}
	b[52] = flags
	p := recHdrLen
	p += copy(b[p:], e.URL)
	p += copy(b[p:], e.ContentType)
	p += copy(b[p:], e.LastModifiedHTTP)
	p += copy(b[p:], e.Body)
	binary.LittleEndian.PutUint32(b[p:], crc32.ChecksumIEEE(b[4:p]))
	return b
}

// decode parses one record. It returns false on any framing or CRC
// mismatch; the caller drops the index entry.
func decode(b []byte) (cache.Entry, bool) {
	if len(b) < recHdrLen+recTail || binary.LittleEndian.Uint32(b[0:]) != recMagic {
		return cache.Entry{}, false
	}
	urlLen := int(binary.LittleEndian.Uint32(b[4:]))
	ctLen := int(binary.LittleEndian.Uint32(b[8:]))
	lmdLen := int(binary.LittleEndian.Uint32(b[12:]))
	bodyLen := int(binary.LittleEndian.Uint32(b[16:]))
	want := recHdrLen + urlLen + ctLen + lmdLen + bodyLen + recTail
	if urlLen < 0 || ctLen < 0 || lmdLen < 0 || bodyLen < 0 || len(b) != want {
		return cache.Entry{}, false
	}
	p := want - recTail
	if crc32.ChecksumIEEE(b[4:p]) != binary.LittleEndian.Uint32(b[p:]) {
		return cache.Entry{}, false
	}
	e := cache.Entry{
		Size:         int64(binary.LittleEndian.Uint64(b[20:])),
		LastModified: int64(binary.LittleEndian.Uint64(b[28:])),
		Expires:      int64(binary.LittleEndian.Uint64(b[36:])),
		FetchedAt:    int64(binary.LittleEndian.Uint64(b[44:])),
		Prefetched:   b[52]&1 != 0,
	}
	p = recHdrLen
	e.URL = string(b[p : p+urlLen])
	p += urlLen
	e.ContentType = string(b[p : p+ctLen])
	p += ctLen
	e.LastModifiedHTTP = string(b[p : p+lmdLen])
	p += lmdLen
	e.Body = append([]byte(nil), b[p:p+bodyLen]...)
	return e, true
}

// append writes e to the active segment and indexes it. A record that
// alone exceeds the disk capacity is refused. An existing copy of the URL
// becomes a hole.
func (d *diskTier) append(e *cache.Entry) bool {
	rec := d.encode(e)
	n := int64(len(rec))
	if n > d.capBytes {
		return false
	}
	if d.cur.size > 0 && d.cur.size+n > d.segBytes {
		if err := d.newSegment(); err != nil {
			d.logf("tiered: segment rotation failed: %v", err)
			return false
		}
	}
	if _, err := d.cur.f.WriteAt(rec, d.cur.size); err != nil {
		d.logf("tiered: append to %s failed: %v", segName(d.cur.id), err)
		return false
	}
	d.dropIndexed(e.URL)
	d.index[e.URL] = loc{
		seg: d.cur.id, off: d.cur.size, n: n,
		size: e.Size, lm: e.LastModified, expires: e.Expires,
	}
	d.cur.size += n
	d.cur.live += n
	d.bytes += n
	return true
}

// dropIndexed removes url from the index, turning its record into a hole.
func (d *diskTier) dropIndexed(url string) bool {
	l, ok := d.index[url]
	if !ok {
		return false
	}
	delete(d.index, url)
	if s, ok := d.segs[l.seg]; ok {
		s.live -= l.n
	}
	return true
}

// get reads the record for url. consume removes it from the index (the
// promotion path: the RAM tier takes ownership). A CRC or framing failure
// drops the entry and reads as a miss — never a panic.
func (d *diskTier) get(url string, consume bool) (cache.Entry, bool) {
	l, ok := d.index[url]
	if !ok {
		return cache.Entry{}, false
	}
	s, ok := d.segs[l.seg]
	if !ok {
		delete(d.index, url)
		return cache.Entry{}, false
	}
	buf := make([]byte, l.n)
	if _, err := s.f.ReadAt(buf, l.off); err != nil {
		d.corrupt++
		d.dropIndexed(url)
		d.logf("tiered: read %s@%d+%d failed: %v", segName(l.seg), l.off, l.n, err)
		return cache.Entry{}, false
	}
	e, ok := decode(buf)
	if !ok || e.URL != url {
		d.corrupt++
		d.dropIndexed(url)
		d.logf("tiered: corrupt record for %s in %s@%d", url, segName(l.seg), l.off)
		return cache.Entry{}, false
	}
	// The index owns freshness: piggyback refreshes update it without
	// rewriting the record.
	e.Expires = l.expires
	e.LastModified = l.lm
	if consume {
		d.dropIndexed(url)
	}
	return e, true
}

// freshen extends the indexed expiration.
func (d *diskTier) freshen(url string, expires int64) bool {
	l, ok := d.index[url]
	if !ok {
		return false
	}
	if expires > l.expires {
		l.expires = expires
		d.index[url] = l
	}
	return true
}

// applyPiggyback is the disk half of Store.ApplyPiggyback: invalidate an
// outdated copy or freshen a current one. Replacement hints only matter
// in RAM, where the policy lives.
func (d *diskTier) applyPiggyback(url string, lastModified, freshenTo int64) cache.PiggybackOutcome {
	l, ok := d.index[url]
	if !ok {
		return cache.PiggybackMiss
	}
	if lastModified > l.lm {
		d.dropIndexed(url)
		return cache.PiggybackInvalidated
	}
	if freshenTo > l.expires {
		l.expires = freshenTo
		d.index[url] = l
	}
	return cache.PiggybackRefreshed
}

// maintain enforces the disk capacity (oldest sealed segment dropped
// whole — append order approximates demotion order) and compacts sealed
// segments whose live ratio fell below the threshold. Returns the number
// of compactions performed.
func (d *diskTier) maintain() int {
	for d.bytes > d.capBytes {
		victim := d.oldestSealed()
		if victim == nil {
			break
		}
		d.removeSegment(victim, true)
	}
	compacted := 0
	for {
		var target *segment
		for _, s := range d.segs {
			if s == d.cur {
				continue
			}
			if float64(s.live) < float64(s.size)*d.compactRatio {
				target = s
				break
			}
		}
		if target == nil {
			break
		}
		d.compact(target)
		compacted++
	}
	d.compactions += int64(compacted)
	return compacted
}

func (d *diskTier) oldestSealed() *segment {
	var victim *segment
	for _, s := range d.segs {
		if s == d.cur {
			continue
		}
		if victim == nil || s.id < victim.id {
			victim = s
		}
	}
	return victim
}

// removeSegment drops s and (dropIndex) every index entry pointing at it.
func (d *diskTier) removeSegment(s *segment, dropIndex bool) {
	if dropIndex {
		for url, l := range d.index {
			if l.seg == s.id {
				delete(d.index, url)
			}
		}
	}
	d.bytes -= s.size
	delete(d.segs, s.id)
	s.f.Close()
	os.Remove(filepath.Join(d.dir, segName(s.id)))
}

// compact rewrites s's live records into the active segment and removes
// s. Records that fail their CRC on the way through are dropped.
func (d *diskTier) compact(s *segment) {
	type liveRec struct {
		url string
		l   loc
	}
	var recs []liveRec
	for url, l := range d.index {
		if l.seg == s.id {
			recs = append(recs, liveRec{url, l})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].l.off < recs[j].l.off })
	for _, r := range recs {
		e, ok := d.get(r.url, true)
		if !ok {
			continue
		}
		d.append(&e)
	}
	d.removeSegment(s, false)
}

func (d *diskTier) closeFiles() {
	for _, s := range d.segs {
		s.f.Close()
	}
}

// --- index snapshot ----------------------------------------------------
//
// The snapshot follows internal/core/persist.go's line-oriented text
// idiom (magic line, typed records, line-numbered errors on load):
//
//	pvtier 1
//	S <segment-id> <byte-size>
//	E <segment-id> <offset> <record-len> <size> <lm> <expires> <url>
//
// S lines declare segments with their expected sizes; E lines declare
// index entries into previously declared segments. URLs are
// strconv-quoted (last field, so the line splits on the first 7 spaces).

const snapMagic = "pvtier 1"

func (d *diskTier) snapPath() string { return filepath.Join(d.dir, "index.snap") }

// writeSnapshot persists the index atomically (temp file + rename).
func (d *diskTier) writeSnapshot() error {
	tmp := d.snapPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", snapMagic)
	ids := make([]int, 0, len(d.segs))
	for id := range d.segs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&sb, "S %d %d\n", id, d.segs[id].size)
	}
	urls := make([]string, 0, len(d.index))
	for url := range d.index {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		l := d.index[url]
		fmt.Fprintf(&sb, "E %d %d %d %d %d %d %s\n",
			l.seg, l.off, l.n, l.size, l.lm, l.expires, strconv.Quote(url))
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, d.snapPath())
}

// loadSnapshot reads the index snapshot, validating every entry against
// the segment files actually on disk. All failure modes degrade to
// serving cold: a corrupt snapshot is ignored, a truncated or missing
// segment is quarantined and its entries dropped, an entry pointing past
// its segment's end is dropped.
func (d *diskTier) loadSnapshot() {
	data, err := os.ReadFile(d.snapPath())
	if err != nil {
		if !os.IsNotExist(err) {
			d.logf("tiered: index snapshot unreadable, serving cold: %v", err)
		}
		return
	}
	lines := strings.Split(string(data), "\n")
	lineNo := 0
	fail := func(msg string, args ...interface{}) {
		d.logf("tiered: index snapshot line %d: %s — serving cold", lineNo, fmt.Sprintf(msg, args...))
		// Abandon everything loaded so far; records remain on disk for
		// forensics but nothing references them (open() quarantines the
		// now-orphaned segments).
		for _, s := range d.segs {
			s.f.Close()
		}
		d.index = make(map[string]loc)
		d.segs = make(map[int]*segment)
		d.bytes = 0
	}
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != snapMagic {
		lineNo = 1
		fail("bad magic %q", strings.TrimSpace(lines[0]))
		return
	}
	sizes := make(map[int]int64) // declared sizes, for truncation checks
	for i := 1; i < len(lines); i++ {
		lineNo = i + 1
		s := strings.TrimSpace(lines[i])
		if s == "" {
			continue
		}
		switch {
		case strings.HasPrefix(s, "S "):
			var id int
			var size int64
			if _, err := fmt.Sscanf(s, "S %d %d", &id, &size); err != nil || size < 0 {
				fail("bad S line %q", s)
				return
			}
			path := filepath.Join(d.dir, segName(id))
			st, err := os.Stat(path)
			if err != nil {
				d.logf("tiered: segment %s in snapshot but missing on disk, dropped", segName(id))
				continue
			}
			if st.Size() < size {
				// Truncated mid-write (crash): quarantine the file and
				// serve its entries cold.
				d.quarantineFile(path, fmt.Sprintf("truncated: %d < declared %d bytes", st.Size(), size))
				continue
			}
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				d.logf("tiered: segment %s unopenable: %v", segName(id), err)
				continue
			}
			d.segs[id] = &segment{id: id, f: f, size: size}
			d.bytes += size
			sizes[id] = size
		case strings.HasPrefix(s, "E "):
			parts := strings.SplitN(s, " ", 8)
			if len(parts) != 8 {
				fail("bad E line %q", s)
				return
			}
			var l loc
			var errs [6]error
			l.seg, errs[0] = strconv.Atoi(parts[1])
			l.off, errs[1] = strconv.ParseInt(parts[2], 10, 64)
			l.n, errs[2] = strconv.ParseInt(parts[3], 10, 64)
			l.size, errs[3] = strconv.ParseInt(parts[4], 10, 64)
			l.lm, errs[4] = strconv.ParseInt(parts[5], 10, 64)
			l.expires, errs[5] = strconv.ParseInt(parts[6], 10, 64)
			for _, e := range errs {
				if e != nil {
					fail("bad E values %q", s)
					return
				}
			}
			url, err := strconv.Unquote(parts[7])
			if err != nil || l.off < 0 || l.n <= 0 {
				fail("bad E values %q", s)
				return
			}
			seg, ok := d.segs[l.seg]
			if !ok {
				continue // segment quarantined or missing
			}
			if l.off+l.n > sizes[l.seg] {
				d.logf("tiered: entry %s points past %s end, dropped", url, segName(l.seg))
				continue
			}
			d.index[url] = l
			seg.live += l.n
		default:
			fail("unknown record %q", s)
			return
		}
	}
}
