package tiered

import (
	"log"
	"sync"
	"sync/atomic"

	"piggyback/internal/cache"
	"piggyback/internal/obs"
)

// Config parameterizes the disk tier under a Tiered store.
type Config struct {
	// Dir is the segment directory. Empty disables the disk tier: the
	// Tiered store becomes a transparent wrapper over its RAM tier
	// (useful for differential tests and for -disk-dir-less deployments
	// sharing one code path).
	Dir string
	// DiskBytes caps the on-disk segment footprint; zero means 256 MiB.
	DiskBytes int64
	// SegmentBytes is the rotation size of one append-only segment file;
	// zero means 4 MiB.
	SegmentBytes int64
	// CompactLiveRatio: a sealed segment whose live-byte ratio falls
	// below this is rewritten into the active segment (hole compaction);
	// zero means 0.5.
	CompactLiveRatio float64
	// QueueLen bounds the async demotion queue between the RAM tier's
	// eviction path and the disk writer; evictions arriving on a full
	// queue are dropped (counted), never blocked on. Zero means 256.
	QueueLen int
	// Demote decides whether an evicted entry is worth disk space. Nil
	// means DefaultDemote: keep entries the paper's policy machinery
	// showed utility for (hits, piggyback hints/pins, prefetches) —
	// GD-Size/PB-informed, not blind spill-everything.
	Demote func(e *cache.Entry, now int64) bool
	// Logf reports quarantines and I/O degradations; nil means log.Printf.
	Logf func(format string, args ...interface{})
}

// DefaultDemote keeps an evicted entry when the replacement machinery saw
// utility in it: it served hits, a piggyback message named it (hint) or
// pinned it, or it was prefetched on a server's prediction. Entries
// evicted without ever showing utility are the policy's losers (GD-Size
// aged them out, PB-LRU never protected them) and are not worth a disk
// write.
func DefaultDemote(e *cache.Entry, now int64) bool {
	return e.Hits() > 0 || e.HintCount() > 0 || e.PinnedUntil() > now || e.Prefetched
}

// demoteItem is one eviction crossing from the shard lock to the disk
// writer: a value copy of the entry (the body slice is shared — cached
// bodies are immutable once stored).
type demoteItem struct {
	e   cache.Entry
	now int64
	// flush, when non-nil, marks a synchronization barrier instead of a
	// demotion: the writer closes it once every earlier item is on disk
	// and maintenance has run.
	flush chan struct{}
}

// tierCounters mirrors the internal atomics into an obs registry
// (cache.tier.* when instrumented with prefix "cache").
type tierCounters struct {
	demotions   *obs.Counter
	promotions  *obs.Counter
	diskHits    *obs.Counter
	diskBytes   *obs.Counter
	compactions *obs.Counter
	drops       *obs.Counter
}

// Tiered is a two-tier cache.Store: a Sharded RAM tier over an
// append-only segment-file disk tier. The RAM-hit path is a single
// delegation with no extra allocation; only misses touch the disk tier's
// mutex.
type Tiered struct {
	ram  *cache.Sharded
	cfg  Config
	disk *diskTier // nil in RAM-only mode

	mu sync.Mutex // guards disk

	demoteQ chan demoteItem
	kick    chan struct{} // wakes the writer for post-promotion maintenance
	stop    chan struct{}
	wg      sync.WaitGroup
	closed  sync.Once

	demotions   atomic.Int64
	promotions  atomic.Int64
	diskHits    atomic.Int64
	compactions atomic.Int64
	drops       atomic.Int64

	obsC atomic.Pointer[tierCounters]
}

var _ cache.Store = (*Tiered)(nil)

// New layers a disk tier under ram. With cfg.Dir == "" it returns a
// RAM-only wrapper (no files, no goroutine). Otherwise it opens the
// segment directory, loads the index snapshot when a valid one exists
// (restart-warm), installs the demotion hook on ram, and starts the
// background writer.
func New(ram *cache.Sharded, cfg Config) (*Tiered, error) {
	if cfg.DiskBytes <= 0 {
		cfg.DiskBytes = 256 << 20
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if cfg.CompactLiveRatio <= 0 {
		cfg.CompactLiveRatio = 0.5
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.Demote == nil {
		cfg.Demote = DefaultDemote
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	t := &Tiered{ram: ram, cfg: cfg}
	if cfg.Dir == "" {
		return t, nil
	}
	disk, err := openDisk(cfg.Dir, cfg.DiskBytes, cfg.SegmentBytes, cfg.CompactLiveRatio, cfg.Logf)
	if err != nil {
		return nil, err
	}
	t.disk = disk
	t.demoteQ = make(chan demoteItem, cfg.QueueLen)
	t.kick = make(chan struct{}, 1)
	t.stop = make(chan struct{})
	ram.SetEvictObserver(t.observeEvict)
	t.wg.Add(1)
	go t.writer()
	return t, nil
}

// RAM exposes the RAM tier (tests and callers that need shard controls).
func (t *Tiered) RAM() *cache.Sharded { return t.ram }

// observeEvict runs under the evicting shard's lock: gate, copy, and a
// non-blocking channel send — the disk write happens on the writer
// goroutine so eviction never waits on I/O.
func (t *Tiered) observeEvict(e *cache.Entry, now int64) {
	if !t.cfg.Demote(e, now) {
		return
	}
	select {
	case t.demoteQ <- demoteItem{e: *e, now: now}:
	case <-t.stop:
	default:
		t.drops.Add(1)
		if c := t.obsC.Load(); c != nil {
			c.drops.Inc()
		}
	}
}

// writer drains the demotion queue and runs disk maintenance (capacity
// enforcement, hole compaction) off the serving path.
func (t *Tiered) writer() {
	defer t.wg.Done()
	for {
		select {
		case it := <-t.demoteQ:
			t.handle(it)
		case <-t.kick:
			t.maintain()
		case <-t.stop:
			for {
				select {
				case it := <-t.demoteQ:
					t.handle(it)
				default:
					return
				}
			}
		}
	}
}

func (t *Tiered) handle(it demoteItem) {
	if it.flush != nil {
		t.maintain()
		close(it.flush)
		return
	}
	t.demoteOne(&it.e)
}

// Flush blocks until every demotion enqueued before the call is on disk
// (or was dropped) and maintenance has run — a barrier for tests and for
// reading consistent tier stats mid-run. RAM-only stores return
// immediately.
func (t *Tiered) Flush() {
	if t.disk == nil {
		return
	}
	ch := make(chan struct{})
	select {
	case t.demoteQ <- demoteItem{flush: ch}:
		select {
		case <-ch:
		case <-t.stop:
		}
	case <-t.stop:
	}
}

func (t *Tiered) demoteOne(e *cache.Entry) {
	t.mu.Lock()
	ok := t.disk.append(e)
	t.mu.Unlock()
	if ok {
		t.demotions.Add(1)
		if c := t.obsC.Load(); c != nil {
			c.demotions.Inc()
		}
	}
	t.maintain()
}

// maintain runs disk-tier upkeep and syncs the telemetry gauges.
func (t *Tiered) maintain() {
	t.mu.Lock()
	n := t.disk.maintain()
	bytes := t.disk.bytes
	t.mu.Unlock()
	if n > 0 {
		t.compactions.Add(int64(n))
	}
	if c := t.obsC.Load(); c != nil {
		if n > 0 {
			c.compactions.Add(int64(n))
		}
		c.diskBytes.Add(bytes - c.diskBytes.Load())
	}
}

// Lookup serves from RAM when possible; on a RAM miss it probes the disk
// index, and a disk hit promotes the entry back into RAM (the Sharded
// tier re-runs its replacement policy; displaced entries may in turn
// demote). Accounting: the RAM tier counted the miss, the disk hit
// re-classifies it — Stats() folds the two so one logical lookup counts
// once.
func (t *Tiered) Lookup(url string, now int64) (cache.View, bool) {
	if v, ok := t.ram.Lookup(url, now); ok {
		return v, true
	}
	if t.disk == nil {
		return cache.View{}, false
	}
	t.mu.Lock()
	e, ok := t.disk.get(url, true)
	t.mu.Unlock()
	if !ok {
		return cache.View{}, false
	}
	t.diskHits.Add(1)
	t.promotions.Add(1)
	if c := t.obsC.Load(); c != nil {
		c.diskHits.Inc()
		c.promotions.Inc()
	}
	v := cache.View{
		Body:             e.Body,
		Size:             e.Size,
		LastModified:     e.LastModified,
		Expires:          e.Expires,
		ContentType:      e.ContentType,
		LastModifiedHTTP: e.LastModifiedHTTP,
	}
	if e.Prefetched {
		// First client touch of a speculative fetch, same as the RAM
		// tier's semantics: report it once and clear the mark.
		v.WasPrefetched = true
		e.Prefetched = false
	}
	// Promote: the RAM tier re-runs its replacement policy on insert, so
	// the promoted entry lands as a just-used entry.
	t.ram.Put(e, now)
	t.kickWriter()
	return v, true
}

func (t *Tiered) kickWriter() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// PeekView checks RAM then disk without side effects (no promotion).
func (t *Tiered) PeekView(url string) (cache.View, bool) {
	if v, ok := t.ram.PeekView(url); ok {
		return v, true
	}
	if t.disk == nil {
		return cache.View{}, false
	}
	t.mu.Lock()
	e, ok := t.disk.get(url, false)
	t.mu.Unlock()
	if !ok {
		return cache.View{}, false
	}
	return cache.View{
		Body:             e.Body,
		Size:             e.Size,
		LastModified:     e.LastModified,
		Expires:          e.Expires,
		ContentType:      e.ContentType,
		LastModifiedHTTP: e.LastModifiedHTTP,
	}, true
}

// Contains reports whether url is cached in either tier.
func (t *Tiered) Contains(url string) bool {
	if t.ram.Contains(url) {
		return true
	}
	if t.disk == nil {
		return false
	}
	t.mu.Lock()
	_, ok := t.disk.index[url]
	t.mu.Unlock()
	return ok
}

// Put inserts into the RAM tier (demotion of displaced entries happens
// via the eviction hook). A stale disk copy of the same URL is dropped so
// the tiers never disagree about a key's version.
func (t *Tiered) Put(e cache.Entry, now int64) []string {
	if t.disk != nil {
		t.mu.Lock()
		t.disk.dropIndexed(e.URL)
		t.mu.Unlock()
	}
	return t.ram.Put(e, now)
}

// Delete removes url from both tiers. Deletion is invalidation: the disk
// copy is dropped, not demoted to.
func (t *Tiered) Delete(url string) bool {
	ok := t.ram.Delete(url)
	if t.disk != nil {
		t.mu.Lock()
		dok := t.disk.dropIndexed(url)
		t.mu.Unlock()
		ok = ok || dok
	}
	return ok
}

// Freshen extends the expiration wherever the entry lives.
func (t *Tiered) Freshen(url string, expires int64) bool {
	if t.ram.Freshen(url, expires) {
		return true
	}
	if t.disk == nil {
		return false
	}
	t.mu.Lock()
	ok := t.disk.freshen(url, expires)
	t.mu.Unlock()
	return ok
}

// Pin protects a RAM entry from eviction preference. A disk-resident
// entry has no eviction rank to protect; presence is still reported so
// callers treating false as "not cached" stay correct.
func (t *Tiered) Pin(url string, until, now int64) bool {
	if t.ram.Pin(url, until, now) {
		return true
	}
	return t.diskContains(url)
}

// Hint records a piggyback mention on a RAM entry (and pins it); for a
// disk-resident entry it reports presence.
func (t *Tiered) Hint(url string, until, now int64) bool {
	if t.ram.Hint(url, until, now) {
		return true
	}
	return t.diskContains(url)
}

func (t *Tiered) diskContains(url string) bool {
	if t.disk == nil {
		return false
	}
	t.mu.Lock()
	_, ok := t.disk.index[url]
	t.mu.Unlock()
	return ok
}

// ApplyPiggyback applies one piggyback element to whichever tier holds
// the entry: the RAM tier's shard-local critical section first, then the
// disk index (invalidate an outdated record, freshen a current one).
func (t *Tiered) ApplyPiggyback(url string, lastModified, freshenTo, pinUntil, now int64) cache.PiggybackOutcome {
	out := t.ram.ApplyPiggyback(url, lastModified, freshenTo, pinUntil, now)
	if out != cache.PiggybackMiss || t.disk == nil {
		return out
	}
	t.mu.Lock()
	out = t.disk.applyPiggyback(url, lastModified, freshenTo)
	t.mu.Unlock()
	return out
}

// Stats folds the two tiers into one logical accounting: every disk hit
// was first counted as a RAM miss, so it moves from Misses to Hits —
// a lookup satisfied anywhere is exactly one hit.
func (t *Tiered) Stats() cache.StoreStats {
	s := t.ram.Stats()
	dh := t.diskHits.Load()
	s.Hits += dh
	s.Misses -= dh
	s.DiskHits = dh
	s.Demotions = t.demotions.Load()
	s.Promotions = t.promotions.Load()
	s.Compactions = t.compactions.Load()
	if t.disk != nil {
		t.mu.Lock()
		s.DiskBytes = t.disk.bytes
		t.mu.Unlock()
	}
	return s
}

// HitRate returns the tier-folded hit rate.
func (t *Tiered) HitRate() float64 { return t.Stats().HitRate() }

// Instrument registers the RAM tier's gauges plus the tier counters:
// prefix.tier.{demotions,promotions,disk_hits,disk_bytes,compactions,
// demote_drops}. Safe to call again with a fresh registry (a restarted
// proxy re-instruments the store it reopened).
func (t *Tiered) Instrument(reg *obs.Registry, prefix string) {
	t.ram.Instrument(reg, prefix)
	if t.disk == nil {
		return
	}
	c := &tierCounters{
		demotions:   reg.Counter(prefix + ".tier.demotions"),
		promotions:  reg.Counter(prefix + ".tier.promotions"),
		diskHits:    reg.Counter(prefix + ".tier.disk_hits"),
		diskBytes:   reg.Counter(prefix + ".tier.disk_bytes"),
		compactions: reg.Counter(prefix + ".tier.compactions"),
		drops:       reg.Counter(prefix + ".tier.demote_drops"),
	}
	c.demotions.Add(t.demotions.Load() - c.demotions.Load())
	c.promotions.Add(t.promotions.Load() - c.promotions.Load())
	c.diskHits.Add(t.diskHits.Load() - c.diskHits.Load())
	c.compactions.Add(t.compactions.Load() - c.compactions.Load())
	c.drops.Add(t.drops.Load() - c.drops.Load())
	t.mu.Lock()
	bytes := t.disk.bytes
	t.mu.Unlock()
	c.diskBytes.Add(bytes - c.diskBytes.Load())
	t.obsC.Store(c)
}

// Capacity is the combined byte capacity of both tiers.
func (t *Tiered) Capacity() int64 {
	c := t.ram.Capacity()
	if t.disk != nil {
		c += t.cfg.DiskBytes
	}
	return c
}

// Used is the bytes held across both tiers (disk counts live record
// bytes, not hole-laden file footprint).
func (t *Tiered) Used() int64 {
	u := t.ram.Used()
	if t.disk != nil {
		t.mu.Lock()
		for _, s := range t.disk.segs {
			u += s.live
		}
		t.mu.Unlock()
	}
	return u
}

// Len is the number of entries across both tiers.
func (t *Tiered) Len() int {
	n := t.ram.Len()
	if t.disk != nil {
		t.mu.Lock()
		n += len(t.disk.index)
		t.mu.Unlock()
	}
	return n
}

// Close makes the store restart-warm: it detaches the eviction hook,
// drains the demotion queue, flushes the entire RAM working set to disk
// (bypassing the demotion gate — on shutdown everything resident is the
// working set), snapshots the index, and closes the segment files.
func (t *Tiered) Close() error {
	var err error
	t.closed.Do(func() {
		t.ram.SetEvictObserver(nil)
		if t.disk == nil {
			return
		}
		close(t.stop)
		t.wg.Wait()
		t.mu.Lock()
		defer t.mu.Unlock()
		for _, e := range t.ram.Dump() {
			if l, ok := t.disk.index[e.URL]; ok && l.lm == e.LastModified && l.expires >= e.Expires {
				continue // identical copy already on disk
			}
			if t.disk.append(&e) {
				t.demotions.Add(1)
			}
		}
		t.disk.maintain()
		err = t.disk.writeSnapshot()
		t.disk.closeFiles()
	})
	return err
}
