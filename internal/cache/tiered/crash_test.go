package tiered

// Crash-safety suite (faultconn-style deterministic corruption, applied
// to files instead of sockets): every scenario corrupts on-disk state
// between a clean Close and a reopen, then asserts the store starts,
// logs, quarantines or drops what it cannot trust, and serves cold for
// the damaged keys — never panics, never serves a corrupt body.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// populate fills dir with n disk-resident entries and returns their URLs.
func populate(t *testing.T, dir string, n int) []string {
	t.Helper()
	ts := newTiered(t, dir, 1<<20, Config{SegmentBytes: 4096})
	now := int64(1000)
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://o/c%02d", i)
		ts.Put(entry(urls[i], 512, now), now)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	return urls
}

// segFiles returns the segment files in dir, sorted by name (= by id).
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "seg-*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(m)
	if len(m) == 0 {
		t.Fatal("populate produced no segment files")
	}
	return m
}

// truncateFile chops the file to frac of its size — a torn write or a
// crash mid-append.
func truncateFile(t *testing.T, path string, frac float64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(float64(fi.Size())*frac)); err != nil {
		t.Fatal(err)
	}
}

// flipByte XORs one byte at off — bit rot inside a record body.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// reopenLogged reopens dir collecting log output.
func reopenLogged(t *testing.T, dir string) (*Tiered, *[]string) {
	t.Helper()
	var logs []string
	ts := newTiered(t, dir, 1<<20, Config{
		SegmentBytes: 4096,
		Logf: func(format string, args ...interface{}) {
			logs = append(logs, fmt.Sprintf(format, args...))
		},
	})
	return ts, &logs
}

// TestCrashTruncatedSegment: a segment shorter than the snapshot declared
// is quarantined on startup; its entries serve cold, other segments stay
// warm, and nothing panics.
func TestCrashTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	urls := populate(t, dir, 20)
	segs := segFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments to isolate damage, got %d", len(segs))
	}
	truncateFile(t, segs[0], 0.5)

	ts, logs := reopenLogged(t, dir)
	defer ts.Close()
	if _, err := os.Stat(segs[0] + ".quarantined"); err != nil {
		t.Fatalf("truncated segment not quarantined: %v", err)
	}
	if _, err := os.Stat(segs[0]); !os.IsNotExist(err) {
		t.Fatal("truncated segment still present under its live name")
	}
	warm, cold := 0, 0
	for _, u := range urls {
		if _, ok := ts.Lookup(u, 2000); ok {
			warm++
		} else {
			cold++
		}
	}
	if cold == 0 {
		t.Fatal("quarantine dropped nothing — truncation was not exercised")
	}
	if warm == 0 {
		t.Fatal("quarantine of one segment went cold for everything")
	}
	if !logContains(*logs, "quarantin") {
		t.Fatalf("quarantine not logged: %q", *logs)
	}
}

// TestCrashCorruptSnapshot: an unreadable index snapshot means the store
// cannot trust any of the disk state — it logs, starts cold, and keeps
// working (new demotions land in fresh segments).
func TestCrashCorruptSnapshot(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(t *testing.T, snap string)
	}{
		{"bad-magic", func(t *testing.T, snap string) {
			rewriteLine(t, snap, 0, "pvtier 999")
		}},
		{"garbled-entry", func(t *testing.T, snap string) {
			rewriteLine(t, snap, 2, "E not numbers at all")
		}},
		{"truncated-mid-line", func(t *testing.T, snap string) {
			truncateFile(t, snap, 0.7)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			urls := populate(t, dir, 8)
			snap := filepath.Join(dir, "index.snap")
			tc.corrupt(t, snap)

			ts, logs := reopenLogged(t, dir)
			defer ts.Close()
			for _, u := range urls {
				if _, ok := ts.Lookup(u, 2000); ok {
					t.Fatalf("%s served from untrusted disk state", u)
				}
			}
			if len(*logs) == 0 {
				t.Fatal("corrupt snapshot not logged")
			}
			// The store must still function as a cold tiered cache.
			now := int64(3000)
			ts.Put(entry("http://o/new", 512, now), now)
			if _, ok := ts.Lookup("http://o/new", now); !ok {
				t.Fatal("store unusable after cold start")
			}
		})
	}
}

// TestCrashBitFlippedRecord: a flipped byte inside a record body fails
// the CRC on read; the entry turns into a cold miss (and is dropped from
// the index), not a corrupt response.
func TestCrashBitFlippedRecord(t *testing.T) {
	dir := t.TempDir()
	urls := populate(t, dir, 4)
	segs := segFiles(t, dir)
	// Flip a byte well inside the first record's body (past the 53-byte
	// header and the URL bytes).
	flipByte(t, segs[0], recHdrLen+int64(len(urls[0]))+40)

	ts, logs := reopenLogged(t, dir)
	defer ts.Close()
	served, dropped := 0, ""
	for _, u := range urls {
		if v, ok := ts.Lookup(u, 2000); ok {
			if len(v.Body) == 0 {
				t.Fatalf("%s served an empty body", u)
			}
			served++
		} else if dropped != "" {
			t.Fatalf("more than one entry dropped: %s and %s", dropped, u)
		} else {
			dropped = u
		}
	}
	if dropped == "" {
		t.Fatalf("no entry CRC-dropped (served %d)", served)
	}
	if !logContains(*logs, "corrupt record") {
		t.Fatalf("corrupt record not logged: %q", *logs)
	}
	// The dropped key is gone from the index, so the next lookup is a
	// plain miss, not a repeated decode attempt.
	if ts.Contains(dropped) {
		t.Fatal("CRC-failed entry still indexed")
	}
}

// TestCrashOrphanSegment: a segment file the snapshot does not mention
// (written after the snapshot, or a leftover) is quarantined, not
// silently re-used or re-indexed.
func TestCrashOrphanSegment(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir, 4)
	orphan := filepath.Join(dir, "seg-990000.dat")
	if err := os.WriteFile(orphan, []byte("stray bytes from a torn run"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, _ := reopenLogged(t, dir)
	defer ts.Close()
	if _, err := os.Stat(orphan + ".quarantined"); err != nil {
		t.Fatalf("orphan segment not quarantined: %v", err)
	}
	// New segment ids must not collide with the quarantined orphan.
	now := int64(3000)
	for i := 0; i < 4; i++ {
		u := fmt.Sprintf("http://o/post%d", i)
		ts.Put(entry(u, 512, now), now)
		ts.Lookup(u, now)
	}
	ts.Flush()
}

// TestCrashMissingSegment: the snapshot names a segment whose file was
// deleted entirely — its entries drop, the rest of the store opens.
func TestCrashMissingSegment(t *testing.T) {
	dir := t.TempDir()
	urls := populate(t, dir, 20)
	segs := segFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[len(segs)-1]); err != nil {
		t.Fatal(err)
	}
	ts, logs := reopenLogged(t, dir)
	defer ts.Close()
	warm := 0
	for _, u := range urls {
		if _, ok := ts.Lookup(u, 2000); ok {
			warm++
		}
	}
	if warm == 0 || warm == len(urls) {
		t.Fatalf("want partial warmth after losing one segment, got %d/%d", warm, len(urls))
	}
	if len(*logs) == 0 {
		t.Fatal("missing segment not logged")
	}
}

func logContains(logs []string, substr string) bool {
	for _, l := range logs {
		if strings.Contains(strings.ToLower(l), substr) {
			return true
		}
	}
	return false
}

// rewriteLine replaces line idx (0-based) of path.
func rewriteLine(t *testing.T, path string, idx int, repl string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(b), "\n")
	if idx >= len(lines) {
		t.Fatalf("snapshot has %d lines, wanted line %d", len(lines), idx)
	}
	lines[idx] = repl
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}
