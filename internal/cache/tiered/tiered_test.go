package tiered

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"piggyback/internal/cache"
	"piggyback/internal/obs"
)

// newTiered builds a single-shard tiered store over dir (capacity small
// enough that tests can force evictions deterministically).
func newTiered(t testing.TB, dir string, ramBytes int64, cfg Config) *Tiered {
	t.Helper()
	cfg.Dir = dir
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	ts, err := New(cache.NewSharded(ramBytes, 1, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func entry(url string, size int64, now int64) cache.Entry {
	return cache.Entry{
		URL: url, Size: size, LastModified: now - 100, Expires: now + 300,
		FetchedAt: now, Body: []byte(strings.Repeat(url, int(size)/len(url)+1))[:size],
		ContentType: "text/html", LastModifiedHTTP: "Mon, 01 Jan 2024 00:00:00 GMT",
	}
}

// TestTieredDemotePromote: an entry with utility (a hit) demotes on
// eviction, and a later lookup promotes it from disk without data loss.
func TestTieredDemotePromote(t *testing.T) {
	ts := newTiered(t, t.TempDir(), 1<<10, Config{})
	defer ts.Close()
	now := int64(1000)

	a := entry("http://o/a", 600, now)
	ts.Put(a, now)
	if _, ok := ts.Lookup("http://o/a", now); !ok { // utility: one hit
		t.Fatal("a not cached")
	}
	ts.Put(entry("http://o/b", 600, now), now) // evicts a
	ts.Flush()
	if got := ts.Stats().Demotions; got != 1 {
		t.Fatalf("want 1 demotion, got %d", got)
	}
	if !ts.Contains("http://o/a") {
		t.Fatal("a should be disk-resident after demotion")
	}
	v, ok := ts.Lookup("http://o/a", now+1)
	if !ok {
		t.Fatal("disk-resident a should be servable")
	}
	if string(v.Body) != string(a.Body) || v.ContentType != a.ContentType ||
		v.LastModified != a.LastModified || v.LastModifiedHTTP != a.LastModifiedHTTP {
		t.Fatalf("promoted view diverged: %+v", v)
	}
	st := ts.Stats()
	if st.DiskHits != 1 || st.Promotions != 1 {
		t.Fatalf("want 1 disk hit / 1 promotion, got %d/%d", st.DiskHits, st.Promotions)
	}
	// Promotion consumed the disk copy; the entry now lives in RAM.
	if !ts.RAM().Contains("http://o/a") {
		t.Fatal("promoted entry should be RAM-resident")
	}
	if ts.diskContains("http://o/a") {
		t.Fatal("promotion should consume the disk copy")
	}
}

// TestTieredDemoteGate: the policy-informed gate spills only entries the
// replacement machinery saw utility in — a never-hit, never-hinted entry
// is dropped, not written to disk.
func TestTieredDemoteGate(t *testing.T) {
	ts := newTiered(t, t.TempDir(), 1<<10, Config{})
	defer ts.Close()
	now := int64(1000)

	ts.Put(entry("http://o/cold", 600, now), now) // no hit, no hint
	ts.Put(entry("http://o/warm", 600, now), now) // evicts cold
	ts.Lookup("http://o/warm", now)               // utility for warm
	ts.Put(entry("http://o/next", 600, now), now) // evicts warm
	ts.Flush()
	if ts.Contains("http://o/cold") {
		t.Fatal("cold entry (no utility) must not demote")
	}
	if !ts.Contains("http://o/warm") {
		t.Fatal("warm entry (hit) must demote")
	}
	st := ts.Stats()
	if st.Demotions != 1 {
		t.Fatalf("want exactly 1 demotion, got %d", st.Demotions)
	}
}

// TestTieredStatsFold is the satellite-3 regression: hit/miss accounting
// behind the Store interface counts each logical lookup exactly once —
// a disk hit is one hit, not a RAM miss plus a disk hit, and the
// hit-rate arithmetic stays consistent.
func TestTieredStatsFold(t *testing.T) {
	ts := newTiered(t, t.TempDir(), 1<<10, Config{})
	defer ts.Close()
	now := int64(1000)
	lookups := int64(0)

	ts.Put(entry("http://o/a", 600, now), now)
	ts.Lookup("http://o/a", now) // RAM hit
	lookups++
	ts.Put(entry("http://o/b", 600, now), now) // evicts + demotes a
	ts.Flush()
	ts.Lookup("http://o/a", now) // disk hit
	lookups++
	ts.Lookup("http://o/missing", now) // miss
	lookups++
	ts.Lookup("http://o/a", now) // RAM hit again (promoted)
	lookups++

	st := ts.Stats()
	if st.Hits+st.Misses != lookups {
		t.Fatalf("lookup accounting double-counts: hits %d + misses %d != %d lookups",
			st.Hits, st.Misses, lookups)
	}
	if st.Hits != 3 || st.Misses != 1 || st.DiskHits != 1 {
		t.Fatalf("want hits/misses/diskHits 3/1/1, got %d/%d/%d", st.Hits, st.Misses, st.DiskHits)
	}
	if want := 0.75; st.HitRate() != want {
		t.Fatalf("hit rate %v, want %v", st.HitRate(), want)
	}
}

// TestTieredRestartWarm: Close flushes the RAM working set and snapshots
// the index; a new store over the same directory serves every entry from
// disk without any origin involvement.
func TestTieredRestartWarm(t *testing.T) {
	dir := t.TempDir()
	now := int64(1000)
	const n = 20

	ts := newTiered(t, dir, 1<<20, Config{})
	bodies := make(map[string]string)
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://o/r%02d", i)
		e := entry(url, 512, now)
		ts.Put(e, now)
		bodies[url] = string(e.Body)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	re := newTiered(t, dir, 1<<20, Config{})
	defer re.Close()
	if got := re.Len(); got != n {
		t.Fatalf("reopened store indexes %d entries, want %d", got, n)
	}
	for url, body := range bodies {
		v, ok := re.Lookup(url, now+10)
		if !ok || string(v.Body) != body {
			t.Fatalf("restart-warm lookup of %s failed: ok=%v", url, ok)
		}
	}
	st := re.Stats()
	if st.DiskHits != n || st.Hits != n || st.Misses != 0 {
		t.Fatalf("warm restart stats: diskHits=%d hits=%d misses=%d, want %d/%d/0",
			st.DiskHits, st.Hits, st.Misses, n, n)
	}
}

// TestTieredRestartFreshness: piggyback freshening of a disk-resident
// entry survives the snapshot (the index owns freshness, not the record).
func TestTieredRestartFreshness(t *testing.T) {
	dir := t.TempDir()
	now := int64(1000)
	ts := newTiered(t, dir, 1<<10, Config{})
	ts.Put(entry("http://o/a", 600, now), now)
	ts.Lookup("http://o/a", now)
	ts.Put(entry("http://o/b", 600, now), now) // demote a
	ts.Flush()
	if got := ts.ApplyPiggyback("http://o/a", now-100, now+9999, now+9999, now); got != cache.PiggybackRefreshed {
		t.Fatalf("disk-resident refresh: got %v", got)
	}
	// Invalidation of a disk-resident copy deletes it.
	ts.Lookup("http://o/b", now)
	ts.Put(entry("http://o/c", 600, now), now) // demote b
	ts.Flush()
	if got := ts.ApplyPiggyback("http://o/b", now+500, now, now, now); got != cache.PiggybackInvalidated {
		t.Fatalf("disk-resident invalidation: got %v", got)
	}
	if ts.Contains("http://o/b") {
		t.Fatal("invalidated disk entry still present")
	}
	ts.Close()

	re := newTiered(t, dir, 1<<10, Config{})
	defer re.Close()
	v, ok := re.PeekView("http://o/a")
	if !ok || v.Expires != now+9999 {
		t.Fatalf("freshened expiry lost across restart: %+v %v", v, ok)
	}
}

// TestTieredCompaction: promoting (consuming) most of a sealed segment's
// records leaves holes; maintenance rewrites the survivors and reclaims
// the space.
func TestTieredCompaction(t *testing.T) {
	// Tiny segments so a handful of records spans several files.
	ts := newTiered(t, t.TempDir(), 1<<10, Config{SegmentBytes: 2048})
	defer ts.Close()
	now := int64(1000)
	const n = 16
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://o/r%02d", i)
		ts.Put(entry(url, 600, now), now)
		ts.Lookup(url, now) // utility so eviction demotes
	}
	ts.Flush()
	before := ts.Stats()
	if before.Demotions < n-1 {
		t.Fatalf("expected ≥%d demotions, got %d", n-1, before.Demotions)
	}
	// Promote most disk entries; each promotion punches a hole (and the
	// displaced RAM entry re-demotes into the active segment).
	for i := 0; i < n-1; i++ {
		ts.Lookup(fmt.Sprintf("http://o/r%02d", i), now+int64(i))
	}
	ts.Flush()
	st := ts.Stats()
	if st.Compactions == 0 {
		t.Fatalf("hole churn triggered no compactions: %+v", st)
	}
	// Everything still indexed must still be readable.
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://o/r%02d", i)
		if ts.Contains(url) {
			if _, ok := ts.PeekView(url); !ok {
				t.Fatalf("%s indexed but unreadable after compaction", url)
			}
		}
	}
}

// TestTieredDiskCapacity: the disk footprint stays bounded; overflow
// drops whole oldest segments.
func TestTieredDiskCapacity(t *testing.T) {
	ts := newTiered(t, t.TempDir(), 1<<10, Config{SegmentBytes: 2048, DiskBytes: 8 << 10})
	defer ts.Close()
	now := int64(1000)
	for i := 0; i < 64; i++ {
		url := fmt.Sprintf("http://o/r%03d", i)
		ts.Put(entry(url, 600, now), now)
		ts.Lookup(url, now)
	}
	ts.Flush()
	st := ts.Stats()
	if st.DiskBytes > 8<<10 {
		t.Fatalf("disk footprint %d exceeds cap %d", st.DiskBytes, 8<<10)
	}
	if st.Demotions < 32 {
		t.Fatalf("expected sustained demotions, got %d", st.Demotions)
	}
}

// TestTieredInstrument: the cache.tier.* counters mirror the internal
// atomics, including when re-instrumented into a fresh registry (the
// restart path re-uses the store with a new proxy).
func TestTieredInstrument(t *testing.T) {
	ts := newTiered(t, t.TempDir(), 1<<10, Config{})
	defer ts.Close()
	now := int64(1000)
	ts.Put(entry("http://o/a", 600, now), now)
	ts.Lookup("http://o/a", now)
	ts.Put(entry("http://o/b", 600, now), now)
	ts.Flush()
	ts.Lookup("http://o/a", now) // disk hit + promotion

	reg := obs.NewRegistry()
	ts.Instrument(reg, "cache")
	snap := reg.Snapshot()
	st := ts.Stats()
	for name, want := range map[string]int64{
		"cache.tier.demotions":  st.Demotions,
		"cache.tier.promotions": st.Promotions,
		"cache.tier.disk_hits":  st.DiskHits,
		"cache.tier.disk_bytes": st.DiskBytes,
	} {
		if got := snap.Counter(name); got != want {
			t.Fatalf("%s = %d, want %d (stats %+v)", name, got, want, st)
		}
	}
	// Re-instrument into a second registry: counters must resync, and
	// live increments must land in the new one.
	reg2 := obs.NewRegistry()
	ts.Instrument(reg2, "cache")
	ts.Put(entry("http://o/c", 600, now), now) // evicts + demotes a (hit above)
	ts.Flush()
	if got, want := reg2.Snapshot().Counter("cache.tier.demotions"), ts.Stats().Demotions; got != want {
		t.Fatalf("re-instrumented demotions = %d, want %d", got, want)
	}
}

// TestTieredRAMOnly: Dir == "" is a transparent wrapper — no files, no
// demotions, Store semantics identical to the RAM tier.
func TestTieredRAMOnly(t *testing.T) {
	ts, err := New(cache.NewSharded(1<<10, 1, nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	now := int64(1000)
	ts.Put(entry("http://o/a", 600, now), now)
	ts.Lookup("http://o/a", now)
	ts.Put(entry("http://o/b", 600, now), now) // evicts a — nowhere to go
	ts.Flush()                                 // must not block
	if ts.Contains("http://o/a") {
		t.Fatal("RAM-only store resurrected an evicted entry")
	}
	st := ts.Stats()
	if st.Demotions != 0 || st.DiskHits != 0 || st.DiskBytes != 0 {
		t.Fatalf("RAM-only store has tier activity: %+v", st)
	}
}

// TestTieredDifferential (satellite 1) drives the plain Cache, a
// shards==1 Sharded, and a RAM-only Tiered through one randomized op
// sequence via the cache.Store interface and asserts identical observable
// behaviour at every step — the three implementations are
// interchangeable wherever a Store is accepted.
func TestTieredDifferential(t *testing.T) {
	const capacity = 4 << 10
	plain := cache.New(capacity, cache.PiggybackLRU{})
	sharded := cache.NewSharded(capacity, 1, nil)
	tiered, err := New(cache.NewSharded(capacity, 1, nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	stores := []struct {
		name string
		s    cache.Store
	}{{"plain", plain}, {"sharded", sharded}, {"tiered-ram", tiered}}

	rng := rand.New(rand.NewSource(99))
	now := int64(1000)
	for step := 0; step < 3000; step++ {
		now++
		url := fmt.Sprintf("http://o/u%02d", rng.Intn(40))
		// Draw the op and its parameters once, apply to all three stores.
		op := rng.Intn(100)
		size := int64(64 + rng.Intn(capacity/4))
		lm := now - int64(rng.Intn(500))
		exp := now + int64(rng.Intn(400))
		pre := rng.Intn(4) == 0
		var outs [3]string
		for i, st := range stores {
			switch {
			case op < 40:
				e := cache.Entry{URL: url, Size: size, LastModified: lm,
					Expires: exp, FetchedAt: now, Body: []byte(url),
					ContentType: "text/html", Prefetched: pre}
				outs[i] = fmt.Sprint(st.s.Put(e, now))
			case op < 65:
				v, ok := st.s.Lookup(url, now)
				outs[i] = fmt.Sprint(ok, v.Expires, v.WasPrefetched, string(v.Body))
			case op < 72:
				outs[i] = fmt.Sprint(st.s.Freshen(url, exp))
			case op < 79:
				outs[i] = fmt.Sprint(st.s.Hint(url, exp, now))
			case op < 84:
				outs[i] = fmt.Sprint(st.s.Pin(url, exp, now))
			case op < 89:
				outs[i] = fmt.Sprint(st.s.Delete(url))
			case op < 94:
				v, ok := st.s.PeekView(url)
				outs[i] = fmt.Sprint(ok, v.Expires, string(v.Body), st.s.Contains(url))
			default:
				outs[i] = fmt.Sprint(st.s.ApplyPiggyback(url, lm, now+300, now+600, now))
			}
		}
		for i := 1; i < 3; i++ {
			if outs[i] != outs[0] {
				t.Fatalf("step %d: %s diverged from plain: %q vs %q",
					step, stores[i].name, outs[i], outs[0])
			}
		}
		s0, si := stores[0].s.Stats(), stores[1].s.Stats()
		st2 := stores[2].s.Stats()
		if s0 != si || s0 != st2 {
			t.Fatalf("step %d: stats diverged: plain %+v sharded %+v tiered %+v", step, s0, si, st2)
		}
		if stores[0].s.Used() != stores[1].s.Used() || stores[0].s.Used() != stores[2].s.Used() ||
			stores[0].s.Len() != stores[1].s.Len() || stores[0].s.Len() != stores[2].s.Len() {
			t.Fatalf("step %d: occupancy diverged", step)
		}
	}
	st := stores[0].s.Stats()
	if st.Hits == 0 || st.Evictions == 0 {
		t.Fatalf("sequence exercised no hits (%d) or evictions (%d) — test is vacuous", st.Hits, st.Evictions)
	}
}

// TestTieredCloseIdempotent: double Close must not panic or double-flush.
func TestTieredCloseIdempotent(t *testing.T) {
	ts := newTiered(t, t.TempDir(), 1<<10, Config{})
	ts.Put(entry("http://o/a", 100, 1000), 1000)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredSnapshotAtomic: a crash during snapshot write (simulated by a
// leftover .tmp) must not shadow the real snapshot.
func TestTieredSnapshotAtomic(t *testing.T) {
	dir := t.TempDir()
	now := int64(1000)
	ts := newTiered(t, dir, 1<<20, Config{})
	ts.Put(entry("http://o/a", 512, now), now)
	ts.Close()
	if err := os.WriteFile(filepath.Join(dir, "index.snap.tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := newTiered(t, dir, 1<<20, Config{})
	defer re.Close()
	if _, ok := re.Lookup("http://o/a", now); !ok {
		t.Fatal("leftover snapshot temp file broke the restart")
	}
}
