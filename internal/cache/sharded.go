package cache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"piggyback/internal/obs"
)

// Sharded is a concurrent byte-capacity cache: N power-of-two shards keyed
// by URL hash, each holding its own mutex, entry map, eviction heap, and
// policy instance, with the byte capacity partitioned across shards. Two
// requests for different shards never contend, so a proxy serving parallel
// clients scales with cores instead of serializing on one cache lock.
//
// The partition changes one observable behaviour relative to a single
// Cache of the same total capacity: an object larger than its shard's
// slice of the capacity (roughly capacity/shards) is uncachable, because
// eviction decisions never cross shards. With shards == 1 a Sharded is
// observationally identical to a Cache.
type Sharded struct {
	shards []shard
	mask   uint32

	// Aggregate stats, atomically maintained so readers never take a
	// shard lock.
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	capacity int64

	// Optional telemetry, set by Instrument.
	evGauge *obs.Counter
}

// shard is one lock domain: a plain Cache guarded by a mutex, plus its
// slice of telemetry gauges.
type shard struct {
	mu sync.Mutex
	c  *Cache

	bytesGauge   *obs.Counter
	entriesGauge *obs.Counter
	evGauge      *obs.Counter
}

// DefaultShards is the shard count used when the caller passes zero: the
// smallest power of two covering the machine's logical CPUs, clamped to
// [defaultMinShards, defaultMaxShards]. More shards than cores buys
// nothing; fewer serializes independent requests.
func DefaultShards() int {
	n := nextPow2(runtime.GOMAXPROCS(0))
	if n < defaultMinShards {
		n = defaultMinShards
	}
	if n > defaultMaxShards {
		n = defaultMaxShards
	}
	return n
}

const (
	defaultMinShards = 8
	defaultMaxShards = 64
	// minShardBytes is the smallest per-shard capacity NewSharded will
	// partition down to.
	minShardBytes = 64 << 10
)

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewSharded returns a sharded cache with the given total byte capacity.
// shards is rounded up to a power of two; zero or negative means
// DefaultShards. newPolicy constructs one independent policy instance per
// shard (stateful policies like GD-Size carry per-shard aging state — use
// PolicyFactory to derive a constructor from a prototype instance); nil
// means PiggybackLRU.
func NewSharded(capacity int64, shards int, newPolicy func() Policy) *Sharded {
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = nextPow2(shards)
	// Partitioning a small capacity would make ordinary objects
	// uncachable (nothing larger than capacity/shards ever caches), so
	// halve the shard count until each shard's slice is at least
	// minShardBytes. Tiny caches degrade gracefully to one shard.
	for shards > 1 && capacity/int64(shards) < minShardBytes {
		shards >>= 1
	}
	if newPolicy == nil {
		newPolicy = func() Policy { return PiggybackLRU{} }
	}
	s := &Sharded{
		shards:   make([]shard, shards),
		mask:     uint32(shards - 1),
		capacity: capacity,
	}
	per := capacity / int64(shards)
	rem := capacity % int64(shards)
	for i := range s.shards {
		c := per
		if int64(i) < rem {
			c++
		}
		s.shards[i].c = New(c, newPolicy())
	}
	return s
}

// fnv1a is the 32-bit FNV-1a hash, inlined so the hot path costs one pass
// over the key and no allocation.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (s *Sharded) shard(url string) *shard {
	return &s.shards[fnv1a(url)&s.mask]
}

// View is one entry's servable state, copied out under the shard lock so
// no *Entry pointer escapes it. Body is shared, not copied: cached bodies
// are immutable once stored (Put replaces the slice wholesale).
type View struct {
	Body         []byte
	Size         int64
	LastModified int64
	Expires      int64
	ContentType  string
	// LastModifiedHTTP mirrors Entry.LastModifiedHTTP: the pre-rendered
	// HTTP-date served on hits without re-formatting.
	LastModifiedHTTP string
	// WasPrefetched reports that this access was the first client touch
	// of a speculatively fetched entry (the access clears the mark, so
	// useful prefetches are counted once).
	WasPrefetched bool
}

// Fresh reports whether the viewed entry can be served without validation.
func (v View) Fresh(now int64) bool { return now < v.Expires }

// Lookup returns the entry's servable state, counting a hit or miss,
// updating replacement recency, and clearing the prefetch mark — the whole
// read side of a client request in one shard-lock critical section.
func (s *Sharded) Lookup(url string, now int64) (View, bool) {
	sh := s.shard(url)
	sh.mu.Lock()
	e, ok := sh.c.Get(url, now)
	if !ok {
		sh.mu.Unlock()
		s.misses.Add(1)
		return View{}, false
	}
	v := viewOf(e)
	if e.Prefetched {
		e.Prefetched = false
		v.WasPrefetched = true
	}
	sh.mu.Unlock()
	s.hits.Add(1)
	return v, true
}

// Peek returns the entry's state without side effects.
func (s *Sharded) Peek(url string) (View, bool) {
	sh := s.shard(url)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.c.Peek(url)
	if !ok {
		return View{}, false
	}
	return viewOf(e), true
}

func viewOf(e *Entry) View {
	return View{
		Body:             e.Body,
		Size:             e.Size,
		LastModified:     e.LastModified,
		Expires:          e.Expires,
		ContentType:      e.ContentType,
		LastModifiedHTTP: e.LastModifiedHTTP,
	}
}

// PeekView is Peek under its Store name.
func (s *Sharded) PeekView(url string) (View, bool) { return s.Peek(url) }

// Contains reports whether url is cached.
func (s *Sharded) Contains(url string) bool {
	sh := s.shard(url)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.c.Peek(url)
	return ok
}

// Put inserts or replaces the entry for e.URL in its shard, evicting
// low-priority entries of that shard as needed, and returns the evicted
// URLs. Resources larger than the shard's capacity are not cached.
func (s *Sharded) Put(e Entry, now int64) (evicted []string) {
	sh := s.shard(e.URL)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	before := sh.c.Evictions
	evicted = sh.c.Put(e, now)
	s.noteMutation(sh, sh.c.Evictions-before)
	return evicted
}

// Delete removes url, returning whether it was present.
func (s *Sharded) Delete(url string) bool {
	sh := s.shard(url)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ok := sh.c.Delete(url)
	if ok {
		s.noteMutation(sh, 0)
	}
	return ok
}

// Freshen extends the entry's expiration without transferring the body.
func (s *Sharded) Freshen(url string, expires int64) bool {
	sh := s.shard(url)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.Freshen(url, expires)
}

// Pin protects the entry from eviction preference until the given time.
func (s *Sharded) Pin(url string, until, now int64) bool {
	sh := s.shard(url)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.Pin(url, until, now)
}

// Hint records that a piggyback message named the entry; it also pins.
func (s *Sharded) Hint(url string, until, now int64) bool {
	sh := s.shard(url)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.Hint(url, until, now)
}

// PiggybackOutcome is the effect of one piggyback element on the cache.
type PiggybackOutcome int

const (
	// PiggybackMiss: the named resource is not cached.
	PiggybackMiss PiggybackOutcome = iota
	// PiggybackInvalidated: the cached copy predates the element's
	// Last-Modified and was deleted (§4 cache coherency).
	PiggybackInvalidated
	// PiggybackRefreshed: the cached copy is current; its expiration was
	// extended and its replacement hint count bumped.
	PiggybackRefreshed
)

// ApplyPiggyback applies one piggyback element to the cache (§4 cache
// coherency and replacement) as a single shard-local critical section: the
// compare-against-cached-Last-Modified, the invalidate-or-freshen, and the
// replacement hint happen atomically per key, and a large P-Volume trailer
// only ever holds one shard's lock at a time.
func (s *Sharded) ApplyPiggyback(url string, lastModified, freshenTo, pinUntil, now int64) PiggybackOutcome {
	sh := s.shard(url)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.c.Peek(url)
	if !ok {
		return PiggybackMiss
	}
	if lastModified > e.LastModified {
		sh.c.Delete(url)
		s.noteMutation(sh, 0)
		return PiggybackInvalidated
	}
	sh.c.Freshen(url, freshenTo)
	sh.c.Hint(url, pinUntil, now)
	return PiggybackRefreshed
}

// noteMutation refreshes the shard's occupancy gauges and the aggregate
// eviction counters after a mutating operation. Caller holds sh.mu.
func (s *Sharded) noteMutation(sh *shard, evicted int) {
	if evicted > 0 {
		s.evictions.Add(int64(evicted))
		if sh.evGauge != nil {
			sh.evGauge.Add(int64(evicted))
		}
	}
	if sh.bytesGauge != nil {
		sh.bytesGauge.Add(sh.c.Used() - sh.bytesGauge.Load())
		sh.entriesGauge.Add(int64(sh.c.Len()) - sh.entriesGauge.Load())
	}
}

// Instrument registers shard-occupancy and eviction gauges in reg under
// prefix: prefix.evictions (aggregate counter), and per shard
// prefix.shardNN.bytes / prefix.shardNN.entries (occupancy gauges kept
// current by every mutating operation).
func (s *Sharded) Instrument(reg *obs.Registry, prefix string) {
	s.evGauge = reg.Counter(prefix + ".evictions")
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.evGauge = s.evGauge
		sh.bytesGauge = reg.Counter(fmt.Sprintf("%s.shard%02d.bytes", prefix, i))
		sh.entriesGauge = reg.Counter(fmt.Sprintf("%s.shard%02d.entries", prefix, i))
		sh.bytesGauge.Add(sh.c.Used() - sh.bytesGauge.Load())
		sh.entriesGauge.Add(int64(sh.c.Len()) - sh.entriesGauge.Load())
		sh.mu.Unlock()
	}
}

// ShardCount returns the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// Capacity returns the configured total byte capacity.
func (s *Sharded) Capacity() int64 { return s.capacity }

// Used returns the bytes currently cached across all shards.
func (s *Sharded) Used() int64 {
	var used int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		used += sh.c.Used()
		sh.mu.Unlock()
	}
	return used
}

// Len returns the number of cached entries across all shards.
func (s *Sharded) Len() int {
	var n int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.c.Len()
		sh.mu.Unlock()
	}
	return n
}

// Hits returns the number of Lookup hits.
func (s *Sharded) Hits() int { return int(s.hits.Load()) }

// Misses returns the number of Lookup misses.
func (s *Sharded) Misses() int { return int(s.misses.Load()) }

// Evictions returns the number of entries evicted for capacity.
func (s *Sharded) Evictions() int { return int(s.evictions.Load()) }

// HitRate returns hits/(hits+misses).
func (s *Sharded) HitRate() float64 {
	h, m := s.hits.Load(), s.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Stats returns the aggregate lookup and eviction counters.
func (s *Sharded) Stats() StoreStats {
	return StoreStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
	}
}

// Close is a no-op; the RAM tier holds no external resources.
func (s *Sharded) Close() error { return nil }

// SetEvictObserver installs fn on every shard to observe capacity
// evictions (nil removes it). fn runs under the evicting shard's lock:
// it must be fast, must not call back into the cache, and must copy
// anything it keeps from the entry.
func (s *Sharded) SetEvictObserver(fn func(e *Entry, now int64)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.c.SetEvictObserver(fn)
		sh.mu.Unlock()
	}
}

// Dump copies out every cached entry (bodies shared, not copied: cached
// bodies are immutable once stored). The snapshot is per-shard
// consistent; a tiered store uses it to flush the RAM working set to
// disk on shutdown.
func (s *Sharded) Dump() []Entry {
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.c.entries {
			out = append(out, *e)
		}
		sh.mu.Unlock()
	}
	return out
}

// URLs returns the cached URLs (unspecified order). Concurrent mutations
// may or may not be reflected; the snapshot is per-shard consistent.
func (s *Sharded) URLs() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.c.URLs()...)
		sh.mu.Unlock()
	}
	return out
}

// PolicyName returns the replacement policy's name.
func (s *Sharded) PolicyName() string {
	sh := &s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.Policy().Name()
}

// PolicyFactory derives a per-shard policy constructor from a prototype
// instance, preserving the Policy values callers already configure. The
// built-in stateless policies (LRU, LFU, PiggybackLRU) are shared as-is;
// the stateful ones (GD-Size, ServerGD) get an independent instance per
// shard so their aging terms never race. An unknown policy type is shared
// across shards behind one mutex — correct for any implementation, at the
// cost of serializing its priority computations.
func PolicyFactory(p Policy) func() Policy {
	switch q := p.(type) {
	case nil:
		return nil
	case LRU, LFU, PiggybackLRU:
		return func() Policy { return p }
	case *GDSize:
		return func() Policy { return &GDSize{Cost: q.Cost} }
	case *ServerGD:
		return func() Policy { return &ServerGD{} }
	default:
		shared := &lockedPolicy{p: p}
		return func() Policy { return shared }
	}
}

// lockedPolicy serializes an unknown (possibly stateful) policy shared
// across shards. Shard locks order calls within a shard; this mutex orders
// them across shards.
type lockedPolicy struct {
	mu sync.Mutex
	p  Policy
}

func (l *lockedPolicy) Name() string { return l.p.Name() }

func (l *lockedPolicy) Priority(e *Entry, now int64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p.Priority(e, now)
}

func (l *lockedPolicy) OnEvict(e *Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.p.OnEvict(e)
}
