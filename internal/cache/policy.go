package cache

// LRU evicts the least recently used entry: priority = last access time.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "lru" }

// Priority implements Policy.
func (LRU) Priority(e *Entry, now int64) float64 { return float64(e.lastAccess) }

// OnEvict implements Policy.
func (LRU) OnEvict(e *Entry) {}

// LFU evicts the least frequently used entry, breaking ties toward older
// access.
type LFU struct{}

// Name implements Policy.
func (LFU) Name() string { return "lfu" }

// Priority implements Policy.
func (LFU) Priority(e *Entry, now int64) float64 {
	// Hits dominate; recency breaks ties (scaled small).
	return float64(e.hits) + float64(e.lastAccess)*1e-12
}

// OnEvict implements Policy.
func (LFU) OnEvict(e *Entry) {}

// GDSize is the GreedyDual-Size policy of Cao & Irani [5], the strongest
// conventional baseline the paper cites for cost-aware replacement: each
// entry carries H = L + cost/size, where L is an aging term set to the H
// value of the last eviction. With cost = 1 this is GD-Size(1), favoring
// small objects (cheap to re-fetch per byte of cache) while aging out cold
// ones.
type GDSize struct {
	// Cost returns the retrieval cost of an entry; nil means uniform
	// cost 1 (GD-Size(1)).
	Cost func(e *Entry) float64

	l float64
}

// Name implements Policy.
func (g *GDSize) Name() string { return "gdsize" }

// Priority implements Policy.
func (g *GDSize) Priority(e *Entry, now int64) float64 {
	cost := 1.0
	if g.Cost != nil {
		cost = g.Cost(e)
	}
	size := float64(e.Size)
	if size < 1 {
		size = 1
	}
	return g.l + cost/size
}

// OnEvict implements Policy: L rises to the victim's H value, aging the
// whole cache.
func (g *GDSize) OnEvict(e *Entry) {
	if e.priority > g.l {
		g.l = e.priority
	}
}

// L exposes the current aging term (for tests and diagnostics).
func (g *GDSize) L() float64 { return g.l }

// ServerGD is server-assisted GreedyDual-Size, modeled on the paper's
// follow-up study of server-assisted cache replacement ([24], ESA 1998):
// the GD-Size priority H = L + cost/size is scaled by the server's
// popularity signal — the number of piggyback messages that have named
// the entry — so resources the server keeps predicting are worth keeping
// even when they are large or momentarily cold.
type ServerGD struct {
	l float64
}

// Name implements Policy.
func (g *ServerGD) Name() string { return "server-gd" }

// Priority implements Policy.
func (g *ServerGD) Priority(e *Entry, now int64) float64 {
	size := float64(e.Size)
	if size < 1 {
		size = 1
	}
	return g.l + float64(1+e.hintCount)/size
}

// OnEvict implements Policy.
func (g *ServerGD) OnEvict(e *Entry) {
	if e.priority > g.l {
		g.l = e.priority
	}
}

// L exposes the aging term.
func (g *ServerGD) L() float64 { return g.l }

// PiggybackLRU is the paper's §4 cache-replacement application: LRU order,
// but entries predicted by a recent piggyback message (pinned) are
// preferred for retention — their priority is lifted to the pin horizon, so
// unpinned entries evict first.
type PiggybackLRU struct{}

// Name implements Policy.
func (PiggybackLRU) Name() string { return "piggyback-lru" }

// Priority implements Policy.
func (PiggybackLRU) Priority(e *Entry, now int64) float64 {
	p := float64(e.lastAccess)
	if e.pinnedUntil > now && float64(e.pinnedUntil) > p {
		p = float64(e.pinnedUntil)
	}
	return p
}

// OnEvict implements Policy.
func (PiggybackLRU) OnEvict(e *Entry) {}
