package loadgen

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/httpwire"
	"piggyback/internal/obs"
	"piggyback/internal/proxy"
	"piggyback/internal/server"
	"piggyback/internal/trace"
)

// testStack is a live origin + proxy pair on loopback.
type testStack struct {
	origin *server.Server
	proxy  *proxy.Proxy
	// ProxyAddr is what clients hit.
	ProxyAddr string
}

func newTestStack(t testing.TB, nRes int) *testStack {
	t.Helper()
	clock := func() int64 { return time.Now().Unix() }
	st := server.NewStore()
	for i := 0; i < nRes; i++ {
		st.Put(server.Resource{
			URL: fmt.Sprintf("/a/r%03d.html", i), Size: 1500,
			LastModified: time.Now().Unix() - 86400,
		})
	}
	vols := core.NewDirVolumes(core.DirConfig{Level: 1, MTF: true, ServerMaxPiggy: 10})
	origin := server.New(st, vols, clock)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	osrv := &httpwire.Server{Handler: origin}
	go osrv.Serve(ol)
	t.Cleanup(func() { osrv.Close() })

	px := proxy.New(proxy.Config{
		Delta: 3600, Clock: clock,
		Resolve:    func(string) (string, error) { return ol.Addr().String(), nil },
		BaseFilter: core.Filter{MaxPiggy: 10},
	})
	t.Cleanup(px.Close)
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	psrv := &httpwire.Server{Handler: px}
	go psrv.Serve(pl)
	t.Cleanup(func() { psrv.Close() })

	return &testStack{origin: origin, proxy: px, ProxyAddr: pl.Addr().String()}
}

// workload builds a log cycling over nRes resources.
func workload(n, nRes int) trace.Log {
	log := make(trace.Log, n)
	for i := range log {
		log[i] = trace.Record{Method: "GET", URL: fmt.Sprintf("/a/r%03d.html", i%nRes)}
	}
	return log
}

func TestTargets(t *testing.T) {
	log := trace.Log{
		{Method: "GET", URL: "/x.html"},
		{Method: "POST", URL: "/cgi"},
		{Method: "GET", URL: "http://other.example/y.html"},
		{Method: "", URL: "z.html"},
	}
	got := targets(log, "www.h.test")
	want := []string{
		"http://www.h.test/x.html",
		"http://other.example/y.html",
		"http://www.h.test/z.html",
	}
	if len(got) != len(want) {
		t.Fatalf("targets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("targets[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunContext(context.Background(), Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := RunContext(context.Background(), Config{Addr: "x", Records: workload(4, 2), Mode: Open}); err == nil {
		t.Error("open loop without rate should fail")
	}
	if _, err := RunContext(context.Background(), Config{Addr: "x", Records: workload(4, 2), Warmup: 10}); err == nil {
		t.Error("warmup >= total should fail")
	}
}

// TestClosedLoopE2E drives the full server→proxy stack and cross-checks
// the client-side report against the proxy's live stats endpoint — the
// acceptance criterion that the /.piggy/stats counters match the load
// report.
func TestClosedLoopE2E(t *testing.T) {
	const nRes, total, warm = 20, 300, 40
	ts := newTestStack(t, nRes)
	rep, err := RunContext(context.Background(), Config{
		Addr:      ts.ProxyAddr,
		Records:   workload(total, nRes),
		Mode:      Closed,
		Workers:   4,
		Requests:  total,
		Warmup:    warm,
		StatsAddr: ts.ProxyAddr,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, report %+v", rep.Errors, rep)
	}
	if rep.Requests != total {
		t.Errorf("requests = %d, want %d", rep.Requests, total)
	}
	if rep.Measured != total-warm {
		t.Errorf("measured = %d, want %d", rep.Measured, total-warm)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", rep.ThroughputRPS)
	}
	if !(rep.P50us > 0 && rep.P50us <= rep.P99us && rep.P99us <= float64(rep.MaxUs)) {
		t.Errorf("latency ordering broken: p50=%v p99=%v max=%v", rep.P50us, rep.P99us, rep.MaxUs)
	}

	// 20 resources cycled 300 times through a big fresh cache: almost
	// everything after the first pass is a fresh hit.
	if rep.HitRatio < 0.8 {
		t.Errorf("client-side hit ratio = %v, want > 0.8", rep.HitRatio)
	}

	// Live stats endpoint must agree with the load report.
	ps := ts.proxy.Stats()
	if ps.ClientRequests != total {
		t.Errorf("proxy saw %d requests, report says %d", ps.ClientRequests, total)
	}
	if rep.ProxyHitRatio < 0 {
		t.Fatal("stats endpoint delta missing")
	}
	wholeRun := float64(ps.FreshHits) / float64(ps.ClientRequests)
	if diff := rep.ProxyHitRatio - wholeRun; diff > 0.01 || diff < -0.01 {
		t.Errorf("stats-delta hit ratio %v != whole-run %v", rep.ProxyHitRatio, wholeRun)
	}
	// The windowed endpoint ratio covers warmup (cache fill), so it lags
	// the client-side measured-window ratio, but both must be high here.
	if rep.ProxyHitRatio < 0.7 {
		t.Errorf("proxy hit ratio = %v, want > 0.7", rep.ProxyHitRatio)
	}
	if rep.StatsDelta.Counter("proxy.client_requests") != int64(total) {
		t.Errorf("stats delta client_requests = %d, want %d",
			rep.StatsDelta.Counter("proxy.client_requests"), total)
	}
}

// TestOpenLoop paces arrivals against a trivial origin-only stack.
func TestOpenLoop(t *testing.T) {
	ts := newTestStack(t, 5)
	rep, err := RunContext(context.Background(), Config{
		Addr:     ts.ProxyAddr,
		Records:  workload(100, 5),
		Mode:     Open,
		Workers:  4,
		Rate:     2000,
		Requests: 100,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.Rate != 2000 {
		t.Errorf("mode/rate = %v/%v", rep.Mode, rep.Rate)
	}
	if rep.Requests+rep.Dropped+rep.Errors != 100 {
		t.Errorf("requests %d + dropped %d + errors %d != 100",
			rep.Requests, rep.Dropped, rep.Errors)
	}
	if rep.Requests == 0 {
		t.Error("no requests completed")
	}
}

// TestWarmupExclusion pins the warmup boundary arithmetic.
func TestWarmupExclusion(t *testing.T) {
	ts := newTestStack(t, 3)
	rep, err := RunContext(context.Background(), Config{
		Addr: ts.ProxyAddr, Records: workload(30, 3),
		Workers: 1, Requests: 30, Warmup: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warmup != 10 || rep.Measured != 20 || rep.Requests != 30 {
		t.Errorf("warmup/measured/requests = %d/%d/%d", rep.Warmup, rep.Measured, rep.Requests)
	}
	// Single worker, 3 resources, warmup 10 > first pass: every measured
	// request is a cache hit.
	if rep.HitRatio != 1 {
		t.Errorf("hit ratio = %v, want 1 after warmup", rep.HitRatio)
	}
}

func TestFetchStatsDirectFromServer(t *testing.T) {
	ts := newTestStack(t, 2)
	// The proxy answers the origin-form stats path itself.
	s, err := FetchStats(ts.ProxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Counters["proxy.client_requests"]; !ok {
		t.Errorf("proxy snapshot missing client_requests: %v", s.Counters)
	}
	if _, ok := s.Hist("wire.upstream.latency_us"); !ok {
		t.Error("proxy snapshot missing upstream wire histogram")
	}
	_ = obs.StatsPath
}
