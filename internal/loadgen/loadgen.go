// Package loadgen is a concurrent workload driver for the live
// server/proxy/center stack: it replays tracegen-style access logs against
// real loopback sockets and reports end-to-end throughput and latency
// percentiles. Two modes:
//
//   - Closed loop: N workers, each with its own persistent connection,
//     issuing the next request when the previous response (plus optional
//     think time) completes — models a fixed client population.
//   - Open loop: arrivals paced at a target request rate with a bounded
//     number in flight — models offered load independent of service time;
//     arrivals that find every slot busy are shed and counted, so an
//     overloaded stack degrades visibly instead of silently back-pressuring
//     the generator.
//
// Each worker reuses one persistent connection (reconnect handling comes
// from httpwire.Client's retry-on-stale-connection logic). The first
// Warmup completions are excluded from the measured window, and if
// StatsAddr is set the driver snapshots the target's /.piggy/stats
// endpoint around the run so the report can attribute proxy cache hits and
// piggyback traffic to this workload.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"piggyback/internal/httpwire"
	"piggyback/internal/obs"
	"piggyback/internal/trace"
)

// Mode selects the load-generation discipline.
type Mode int

const (
	// Closed runs a fixed worker population with think time.
	Closed Mode = iota
	// Open paces arrivals at a target rate with bounded in-flight.
	Open
)

// String returns "closed" or "open".
func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// Config parameterizes a load run.
type Config struct {
	// Addr is the target address ("host:port"), usually the proxy.
	Addr string
	// Addrs, when set, targets a fleet: closed-loop workers pin to
	// Addrs[w % len] (one persistent connection per worker per proxy) and
	// open-loop arrivals round-robin. Overrides Addr.
	Addrs []string
	// Records is the workload; each GET record contributes its URL.
	// Server-relative URLs are qualified with Host (absolute-URI proxy
	// form).
	Records trace.Log
	// Host names the origin site in request URLs; empty means
	// "www.load.test".
	Host string
	// Mode selects closed or open loop.
	Mode Mode
	// Workers is the closed-loop population, and the in-flight bound in
	// open loop; zero means 8.
	Workers int
	// Think is the mean think time between a closed-loop worker's
	// requests (exponentially distributed); zero means none.
	Think time.Duration
	// Rate is the open-loop arrival rate in requests/second. Required
	// when Mode is Open.
	Rate float64
	// Requests is the total to issue, cycling over Records; zero means
	// one pass over Records.
	Requests int
	// Warmup is the number of leading completions excluded from the
	// measured window (cache fill, connection establishment).
	Warmup int
	// Seed makes think times and any per-worker jitter reproducible.
	Seed int64
	// StatsAddr, when set, is polled for /.piggy/stats snapshots before
	// and after the run (normally Addr itself).
	StatsAddr string
	// StatsAddrs polls a fleet's stats endpoints and merges the windowed
	// snapshots (counters sum), so per-tier ratios describe the whole
	// fleet. Overrides StatsAddr.
	StatsAddrs []string
	// RequestTimeout bounds one exchange; zero uses the client default.
	RequestTimeout time.Duration
}

func (cfg *Config) fillDefaults() error {
	if len(cfg.Addrs) == 0 && cfg.Addr != "" {
		cfg.Addrs = []string{cfg.Addr}
	}
	if len(cfg.Addrs) == 0 {
		return fmt.Errorf("loadgen: Addr is required")
	}
	if len(cfg.StatsAddrs) == 0 && cfg.StatsAddr != "" {
		cfg.StatsAddrs = []string{cfg.StatsAddr}
	}
	if len(cfg.Records) == 0 {
		return fmt.Errorf("loadgen: empty workload")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Host == "" {
		cfg.Host = "www.load.test"
	}
	if cfg.Mode == Open && cfg.Rate <= 0 {
		return fmt.Errorf("loadgen: open loop requires Rate > 0")
	}
	return nil
}

// Report is the outcome of one load run. Latencies are microseconds,
// estimated from a fixed-bucket histogram (exact min/max).
type Report struct {
	Mode     string  `json:"mode"`
	Workers  int     `json:"workers"`
	Rate     float64 `json:"rate_rps,omitempty"` // open loop target
	Requests int64   `json:"requests"`           // completed exchanges
	Errors   int64   `json:"errors"`
	Dropped  int64   `json:"dropped"`  // open loop: arrivals shed at the in-flight bound
	Warmup   int64   `json:"warmup"`   // completions excluded from the window
	Measured int64   `json:"measured"` // latency samples in the window
	ElapsedS float64 `json:"elapsed_s"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50us         float64 `json:"p50_us"`
	P90us         float64 `json:"p90_us"`
	P99us         float64 `json:"p99_us"`
	MaxUs         int64   `json:"max_us"`
	MeanUs        float64 `json:"mean_us"`
	BytesIn       int64   `json:"bytes_in"`

	// CacheHits counts X-Cache: HIT responses in the measured window;
	// HitRatio is their share of measured completions.
	CacheHits int64   `json:"cache_hits"`
	HitRatio  float64 `json:"hit_ratio"`

	// StaleHits counts X-Cache: STALE responses in the measured window —
	// expired entries the proxy served because the upstream was failing.
	StaleHits int64 `json:"stale_hits"`

	// PeerHits counts X-Cache: PEER responses in the measured window —
	// misses answered by the key's ring owner on the cooperative mesh
	// instead of the origin; PeerHitRatio is their share of measured
	// completions.
	PeerHits     int64   `json:"peer_hits"`
	PeerHitRatio float64 `json:"peer_hit_ratio"`

	// ProxyHitRatio is fresh_hits/client_requests from the stats
	// endpoint over the whole run; -1 when StatsAddr was not set or the
	// endpoint was unreachable. StatsDelta holds the full windowed
	// snapshot for deeper digging.
	ProxyHitRatio float64       `json:"proxy_hit_ratio"`
	StatsDelta    *obs.Snapshot `json:"stats_delta,omitempty"`

	Latency obs.HistSnapshot `json:"-"`
}

// run carries the shared mutable state of one load run.
type run struct {
	cfg       Config
	urls      []string
	total     int64
	issued    atomic.Int64
	completed atomic.Int64
	errors    atomic.Int64
	dropped   atomic.Int64
	bytesIn   atomic.Int64
	cacheHits atomic.Int64
	staleHits atomic.Int64
	peerHits  atomic.Int64
	measStart atomic.Int64 // UnixNano of the warmup boundary
	hist      *obs.Histogram
}

// RunContext executes the configured workload and returns its report.
// Cancelling ctx stops issuing new requests and interrupts in-flight
// exchanges (counted as errors).
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	r := &run{
		cfg:  cfg,
		urls: targets(cfg.Records, cfg.Host),
		hist: obs.NewHistogram(obs.LatencyBuckets()),
	}
	if len(r.urls) == 0 {
		return nil, fmt.Errorf("loadgen: workload has no GET records")
	}
	r.total = int64(cfg.Requests)
	if r.total <= 0 {
		r.total = int64(len(r.urls))
	}
	if int64(cfg.Warmup) >= r.total {
		return nil, fmt.Errorf("loadgen: warmup %d >= total requests %d", cfg.Warmup, r.total)
	}

	var statsBefore obs.Snapshot
	haveStats := false
	if len(cfg.StatsAddrs) > 0 {
		if s, err := fetchStatsMerged(cfg.StatsAddrs); err == nil {
			statsBefore, haveStats = s, true
		}
	}

	start := time.Now()
	if cfg.Warmup == 0 {
		r.measStart.Store(start.UnixNano())
	}
	if cfg.Mode == Open {
		r.runOpen(ctx)
	} else {
		r.runClosed(ctx)
	}
	end := time.Now()

	rep := r.report(end)
	if haveStats {
		if after, err := fetchStatsMerged(cfg.StatsAddrs); err == nil {
			delta := after.Sub(statsBefore)
			rep.StatsDelta = &delta
			rep.ProxyHitRatio = proxyHitRatio(delta)
		}
	}
	return rep, nil
}

// targets renders the workload's GET records as request URLs.
func targets(records trace.Log, host string) []string {
	urls := make([]string, 0, len(records))
	for i := range records {
		rec := &records[i]
		if rec.Method != "" && rec.Method != "GET" {
			continue
		}
		if strings.HasPrefix(rec.URL, "http://") {
			urls = append(urls, rec.URL)
			continue
		}
		u := rec.URL
		if !strings.HasPrefix(u, "/") {
			u = "/" + u
		}
		urls = append(urls, "http://"+host+u)
	}
	return urls
}

// exchange issues one request to addr and records its outcome. It returns
// false on error (the caller's loop continues either way; pacing is
// unaffected).
func (r *run) exchange(ctx context.Context, client *httpwire.Client, addr string, n int64) bool {
	url := r.urls[(n-1)%int64(len(r.urls))]
	t0 := time.Now()
	resp, err := client.DoContext(ctx, addr, httpwire.NewRequest("GET", url))
	if err != nil {
		r.errors.Add(1)
		return false
	}
	lat := time.Since(t0)
	done := r.completed.Add(1)
	warm := int64(r.cfg.Warmup)
	switch {
	case done == warm:
		// Last warmup completion opens the measured window.
		r.measStart.Store(time.Now().UnixNano())
	case done > warm:
		r.hist.Observe(lat.Microseconds())
		r.bytesIn.Add(int64(len(resp.Body)))
		switch resp.Header.Get("X-Cache") {
		case "HIT":
			r.cacheHits.Add(1)
		case "STALE":
			r.staleHits.Add(1)
		case "PEER":
			r.peerHits.Add(1)
		}
	}
	return true
}

func (r *run) newClient() *httpwire.Client {
	c := httpwire.NewClient()
	c.RequestTimeout = r.cfg.RequestTimeout
	return c
}

// runClosed runs the fixed worker population.
func (r *run) runClosed(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := r.newClient()
			defer client.Close()
			addr := r.cfg.Addrs[w%len(r.cfg.Addrs)]
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(w)*7919))
			for {
				if ctx.Err() != nil {
					return
				}
				n := r.issued.Add(1)
				if n > r.total {
					return
				}
				r.exchange(ctx, client, addr, n)
				if r.cfg.Think > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() * float64(r.cfg.Think)))
				}
			}
		}(w)
	}
	wg.Wait()
}

// runOpen paces arrivals at cfg.Rate. The in-flight bound doubles as a
// connection pool: a channel of clients is the semaphore, so each
// concurrent exchange rides its own persistent connection.
func (r *run) runOpen(ctx context.Context) {
	slots := make(chan *httpwire.Client, r.cfg.Workers)
	for i := 0; i < r.cfg.Workers; i++ {
		slots <- r.newClient()
	}
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	var wg sync.WaitGroup
	next := time.Now()
	for n := int64(1); n <= r.total; n++ {
		if ctx.Err() != nil {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		select {
		case client := <-slots:
			wg.Add(1)
			go func(client *httpwire.Client, n int64) {
				defer wg.Done()
				r.exchange(ctx, client, r.cfg.Addrs[int((n-1)%int64(len(r.cfg.Addrs)))], n)
				slots <- client
			}(client, n)
		default:
			// Every slot busy: shed the arrival (open-loop overload).
			r.dropped.Add(1)
		}
	}
	wg.Wait()
	close(slots)
	for client := range slots {
		client.Close()
	}
}

func (r *run) report(end time.Time) *Report {
	lat := r.hist.Snapshot()
	elapsed := end.Sub(time.Unix(0, r.measStart.Load())).Seconds()
	rep := &Report{
		Mode:          r.cfg.Mode.String(),
		Workers:       r.cfg.Workers,
		Requests:      r.completed.Load(),
		Errors:        r.errors.Load(),
		Dropped:       r.dropped.Load(),
		Warmup:        int64(r.cfg.Warmup),
		Measured:      lat.Count,
		ElapsedS:      elapsed,
		P50us:         lat.Quantile(0.50),
		P90us:         lat.Quantile(0.90),
		P99us:         lat.Quantile(0.99),
		MaxUs:         lat.Max,
		MeanUs:        lat.Mean(),
		BytesIn:       r.bytesIn.Load(),
		CacheHits:     r.cacheHits.Load(),
		StaleHits:     r.staleHits.Load(),
		PeerHits:      r.peerHits.Load(),
		ProxyHitRatio: -1,
		Latency:       lat,
	}
	if r.cfg.Mode == Open {
		rep.Rate = r.cfg.Rate
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(lat.Count) / elapsed
	}
	if lat.Count > 0 {
		rep.HitRatio = float64(rep.CacheHits) / float64(lat.Count)
		rep.PeerHitRatio = float64(rep.PeerHits) / float64(lat.Count)
	}
	if lat.Count == 0 {
		// NaN quantiles don't survive JSON encoding.
		rep.P50us, rep.P90us, rep.P99us, rep.MeanUs = 0, 0, 0, 0
	}
	return rep
}

// FetchStats retrieves and parses the live telemetry snapshot from the
// obs.StatsPath endpoint at addr.
func FetchStats(addr string) (obs.Snapshot, error) {
	client := httpwire.NewClient()
	defer client.Close()
	resp, err := client.DoContext(context.Background(), addr, httpwire.NewRequest("GET", obs.StatsPath))
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Status != 200 {
		return obs.Snapshot{}, fmt.Errorf("loadgen: stats endpoint returned %d", resp.Status)
	}
	return obs.ParseSnapshot(resp.Body)
}

// fetchStatsMerged snapshots every listed stats endpoint and merges them
// (counters sum), so a fleet reads as one aggregate. Any unreachable
// endpoint fails the whole fetch — a partial merge would silently misstate
// fleet ratios.
func fetchStatsMerged(addrs []string) (obs.Snapshot, error) {
	var out obs.Snapshot
	for i, a := range addrs {
		s, err := FetchStats(a)
		if err != nil {
			return obs.Snapshot{}, err
		}
		if i == 0 {
			out = s
		} else {
			out = out.Merge(s)
		}
	}
	return out, nil
}

// proxyHitRatio derives the proxy's fresh-hit ratio from a windowed stats
// snapshot, or -1 when the window saw no client requests.
func proxyHitRatio(delta obs.Snapshot) float64 {
	reqs := delta.Counter("proxy.client_requests")
	if reqs <= 0 {
		return -1
	}
	return float64(delta.Counter("proxy.fresh_hits")) / float64(reqs)
}
