// Package faultconn injects network faults at the net.Conn layer so the
// failure paths of the wire stack — timeouts, truncated bodies, dead
// peers, connection resets — can be exercised deterministically in tests
// and load runs. A Listener wraps a real listener and assigns each
// accepted connection a Fault drawn from a seeded schedule (or a fixed
// override), so the same seed replays the same brownout.
//
// Faults model the upstream misbehaviors the paper's best-effort piggyback
// protocol must survive: a server that answers slowly (Latency), cuts a
// response mid-chunk (TruncateAfter), accepts but never answers
// (Blackhole), or slams the connection (Reset).
package faultconn

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault describes what one connection does to its traffic. The zero value
// is a transparent pass-through.
type Fault struct {
	// Latency is slept once, before the first byte is written back to the
	// peer — modeling a slow first response byte.
	Latency time.Duration
	// TruncateAfter, when > 0, closes the connection abruptly after that
	// many bytes have been written to the peer — the peer sees a response
	// cut off mid-body or mid-chunk.
	TruncateAfter int64
	// Blackhole silently discards everything written to the peer and
	// never delivers it; reads from the peer still proceed, so a client
	// sends its request and then waits forever (until its deadline).
	Blackhole bool
	// Reset closes the connection immediately on the first write.
	Reset bool
	// MaxWriteBytes, when > 0, accepts at most that many bytes per Write
	// call, returning (n, nil) short writes — an adversarial stand-in for
	// a congested socket splitting a vectored write across syscalls.
	// NOTE: this deliberately violates the io.Writer contract (short
	// write with nil error); callers under test must tolerate it the way
	// httpwire's vectored write loop does. All bytes are delivered, just
	// in fragments.
	MaxWriteBytes int
}

// active reports whether the fault does anything.
func (f Fault) active() bool {
	return f.Latency > 0 || f.TruncateAfter > 0 || f.Blackhole || f.Reset ||
		f.MaxWriteBytes > 0
}

// Profile is a probabilistic fault schedule: each accepted connection
// draws at most one fault class, partitioned by the class probabilities
// (which must sum to <= 1; the remainder is healthy).
type Profile struct {
	LatencyP      float64       // probability of a Latency fault
	Latency       time.Duration // latency injected when drawn
	TruncateP     float64       // probability of a TruncateAfter fault
	TruncateBytes int64         // bytes written before the cut
	BlackholeP    float64       // probability of a Blackhole fault
	ResetP        float64       // probability of a Reset fault
}

// draw picks this connection's fault from one uniform variate, so the
// sequence of faults is fully determined by the rng seed and the accept
// order.
func (pr Profile) draw(u float64) Fault {
	switch {
	case u < pr.LatencyP:
		return Fault{Latency: pr.Latency}
	case u < pr.LatencyP+pr.TruncateP:
		return Fault{TruncateAfter: pr.TruncateBytes}
	case u < pr.LatencyP+pr.TruncateP+pr.BlackholeP:
		return Fault{Blackhole: true}
	case u < pr.LatencyP+pr.TruncateP+pr.BlackholeP+pr.ResetP:
		return Fault{Reset: true}
	default:
		return Fault{}
	}
}

// Profiles returns the named fault profile used by cmd/loadtest's -fault
// axis, or false for an unknown name. Names: "none", "latency",
// "truncate", "blackhole", "reset", "brownout" (a mixed degradation:
// 40% slow, 10% truncating, 15% dead, 5% resetting).
func Profiles(name string) (Profile, bool) {
	switch name {
	case "", "none":
		return Profile{}, true
	case "latency":
		return Profile{LatencyP: 1, Latency: 20 * time.Millisecond}, true
	case "truncate":
		return Profile{TruncateP: 0.5, TruncateBytes: 512}, true
	case "blackhole":
		return Profile{BlackholeP: 0.3}, true
	case "reset":
		return Profile{ResetP: 0.3}, true
	case "brownout":
		return Profile{
			LatencyP: 0.4, Latency: 20 * time.Millisecond,
			TruncateP: 0.1, TruncateBytes: 2048,
			BlackholeP: 0.15,
			ResetP:     0.05,
		}, true
	default:
		return Profile{}, false
	}
}

// Conn wraps a net.Conn with a Fault. Write-side faults act on data
// flowing from the wrapped side toward the peer (for a server-side wrap:
// the response).
type Conn struct {
	net.Conn
	fault Fault

	mu      sync.Mutex
	written int64
	slept   bool
	dead    bool
	onClose func()
}

// Wrap returns conn with the fault applied. A zero fault is transparent.
func Wrap(conn net.Conn, f Fault) *Conn {
	return &Conn{Conn: conn, fault: f}
}

// Read delivers peer data. A blackholed connection still reads (the
// request must reach the "server" so the client blocks waiting for the
// response that never comes).
func (c *Conn) Read(b []byte) (int, error) {
	return c.Conn.Read(b)
}

// Write applies the fault schedule to outbound data.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	f := c.fault
	if c.dead {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if f.Reset {
		c.dead = true
		c.mu.Unlock()
		c.Close()
		return 0, net.ErrClosed
	}
	sleep := time.Duration(0)
	if f.Latency > 0 && !c.slept {
		c.slept = true
		sleep = f.Latency
	}
	if f.MaxWriteBytes > 0 && len(b) > f.MaxWriteBytes {
		b = b[:f.MaxWriteBytes]
	}
	written := c.written
	c.written += int64(len(b))
	c.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if f.Blackhole {
		// Report success, deliver nothing.
		return len(b), nil
	}
	if f.TruncateAfter > 0 {
		remain := f.TruncateAfter - written
		if remain <= 0 {
			c.mu.Lock()
			c.dead = true
			c.mu.Unlock()
			c.Close()
			return 0, net.ErrClosed
		}
		if int64(len(b)) > remain {
			n, _ := c.Conn.Write(b[:remain])
			c.mu.Lock()
			c.dead = true
			c.mu.Unlock()
			c.Close()
			return n, net.ErrClosed
		}
	}
	return c.Conn.Write(b)
}

// Close closes the underlying connection and runs the listener's
// bookkeeping hook once.
func (c *Conn) Close() error {
	err := c.Conn.Close()
	c.mu.Lock()
	hook := c.onClose
	c.onClose = nil
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	return err
}

// Listener wraps a net.Listener, applying a fault schedule to accepted
// connections. The schedule is deterministic: connection i's fault is
// decided by the i-th draw from the seeded rng (or by the SetFault
// override when one is installed).
type Listener struct {
	inner net.Listener

	mu       sync.Mutex
	rng      *rand.Rand
	profile  Profile
	override *Fault
	accepted int
	conns    map[*Conn]struct{}
}

// NewListener wraps inner with the profile, drawing per-connection faults
// from a rng seeded with seed.
func NewListener(inner net.Listener, profile Profile, seed int64) *Listener {
	return &Listener{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		profile: profile,
		conns:   make(map[*Conn]struct{}),
	}
}

// SetFault installs a fixed fault applied to every subsequently accepted
// connection, bypassing the profile; nil restores the profile schedule.
// Already-accepted connections keep their faults (use AbortConns to cut
// them).
func (l *Listener) SetFault(f *Fault) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if f == nil {
		l.override = nil
		return
	}
	cp := *f
	l.override = &cp
}

// SetProfile replaces the fault schedule for subsequently accepted
// connections (the rng sequence continues; it is not reseeded). Chaos
// tests use this to warm up healthy and then start a brownout.
func (l *Listener) SetProfile(pr Profile) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.profile = pr
}

// Accepted returns how many connections have been accepted.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

// AbortConns abruptly closes every live accepted connection — the peer
// sees a mid-exchange failure on its next read or write.
func (l *Listener) AbortConns() {
	l.mu.Lock()
	conns := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Accept accepts from the inner listener and wraps the connection with
// its scheduled fault.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.accepted++
	var f Fault
	if l.override != nil {
		f = *l.override
	} else {
		f = l.profile.draw(l.rng.Float64())
	}
	fc := Wrap(conn, f)
	l.conns[fc] = struct{}{}
	fc.onClose = func() {
		l.mu.Lock()
		delete(l.conns, fc)
		l.mu.Unlock()
	}
	l.mu.Unlock()
	return fc, nil
}

// Close closes the inner listener. Accepted connections stay open.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }
