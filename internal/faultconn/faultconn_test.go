package faultconn

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped server-side conn and the client side.
func pipePair(t *testing.T, f Fault) (*Conn, net.Conn) {
	t.Helper()
	server, client := net.Pipe()
	return Wrap(server, f), client
}

func TestTransparentPassThrough(t *testing.T) {
	s, c := pipePair(t, Fault{})
	defer s.Close()
	defer c.Close()
	go s.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
}

func TestTruncateAfter(t *testing.T) {
	s, c := pipePair(t, Fault{TruncateAfter: 4})
	defer c.Close()
	payload := []byte("0123456789")
	errc := make(chan error, 1)
	go func() {
		_, err := s.Write(payload)
		errc <- err
	}()
	got, _ := io.ReadAll(c)
	if !bytes.Equal(got, payload[:4]) {
		t.Fatalf("peer received %q, want first 4 bytes", got)
	}
	if err := <-errc; err == nil {
		t.Fatal("truncating write reported success")
	}
	// The connection is dead: further writes fail.
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write after truncation succeeded")
	}
}

func TestBlackholeDropsWrites(t *testing.T) {
	s, c := pipePair(t, Fault{Blackhole: true})
	defer s.Close()
	defer c.Close()
	if n, err := s.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("blackhole write: n=%d err=%v", n, err)
	}
	// Nothing arrives: a deadline-bounded read times out.
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("blackholed data was delivered")
	}
}

func TestResetOnFirstWrite(t *testing.T) {
	s, c := pipePair(t, Fault{Reset: true})
	defer c.Close()
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("reset write succeeded")
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestLatencyDelaysFirstWrite(t *testing.T) {
	const lat = 60 * time.Millisecond
	s, c := pipePair(t, Fault{Latency: lat})
	defer s.Close()
	defer c.Close()
	start := time.Now()
	go func() {
		s.Write([]byte("a"))
		s.Write([]byte("b"))
	}()
	buf := make([]byte, 1)
	io.ReadFull(c, buf)
	if d := time.Since(start); d < lat {
		t.Fatalf("first byte arrived after %v, want >= %v", d, lat)
	}
	// Only the first write sleeps.
	start = time.Now()
	io.ReadFull(c, buf)
	if d := time.Since(start); d >= lat {
		t.Fatalf("second byte also delayed: %v", d)
	}
}

func TestProfileDrawPartition(t *testing.T) {
	pr := Profile{LatencyP: 0.25, Latency: time.Millisecond, TruncateP: 0.25,
		TruncateBytes: 10, BlackholeP: 0.25, ResetP: 0.25}
	cases := []struct {
		u    float64
		want Fault
	}{
		{0.10, Fault{Latency: time.Millisecond}},
		{0.30, Fault{TruncateAfter: 10}},
		{0.60, Fault{Blackhole: true}},
		{0.90, Fault{Reset: true}},
	}
	for _, tc := range cases {
		if got := pr.draw(tc.u); got != tc.want {
			t.Errorf("draw(%v) = %+v, want %+v", tc.u, got, tc.want)
		}
	}
	healthy := Profile{LatencyP: 0.1, Latency: time.Millisecond}
	if f := healthy.draw(0.5); f.active() {
		t.Errorf("draw above total probability returned active fault %+v", f)
	}
}

func TestListenerDeterministicSchedule(t *testing.T) {
	// Two listeners with the same seed assign identical fault sequences.
	pr, _ := Profiles("brownout")
	schedule := func(seed int64) []Fault {
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer inner.Close()
		l := NewListener(inner, pr, seed)
		var faults []Fault
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 8; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				faults = append(faults, c.(*Conn).fault)
				c.Close()
			}
		}()
		for i := 0; i < 8; i++ {
			c, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			c.Close()
		}
		<-done
		return faults
	}
	a, b := schedule(42), schedule(42)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("accepted %d/%d conns, want 8", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at conn %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestListenerOverrideAndAbort(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	l := NewListener(inner, Profile{}, 1)
	l.SetFault(&Fault{Blackhole: true})

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sc := <-accepted
	if !sc.(*Conn).fault.Blackhole {
		t.Fatal("override not applied")
	}
	if l.Accepted() != 1 {
		t.Fatalf("Accepted() = %d, want 1", l.Accepted())
	}

	// AbortConns cuts the live connection: the client read fails.
	l.AbortConns()
	client.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded after AbortConns")
	}

	l.SetFault(nil) // back to (empty) profile: next conn healthy
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sc2 := <-accepted
	defer sc2.Close()
	if sc2.(*Conn).fault.active() {
		t.Fatalf("profile restored but conn got fault %+v", sc2.(*Conn).fault)
	}
}
