module piggyback

go 1.22
